# Tier-1 verification targets. `make ci` is the full gate: build, vet, the
# whole test suite, and the parallel merge paths under the race detector.

GO ?= go

.PHONY: ci build vet test race bench

ci: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The morsel-parallel executor, scheduler, and partial-merge paths live
# under internal/; run them with the race detector.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...
