# Tier-1 verification targets. `make ci` is the full gate: build, vet, the
# whole test suite, and the parallel merge paths under the race detector.

GO ?= go

.PHONY: ci build vet test race bench bench-json

ci: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The morsel-parallel executor, scheduler, and partial-merge paths live
# under internal/; run them with the race detector.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# bench-json records the scan/gather kernel microbenchmarks as a JSON perf
# snapshot (name → ns/op, allocs/op; min of 3 runs). Not part of the tier-1
# gate — run it when touching a hot path and check in the updated
# BENCH_PR<N>.json so the perf trajectory stays diffable.
BENCH_JSON ?= BENCH_PR10.json
bench-json:
	{ $(GO) test -run xxx -bench 'Filter|Gather|Extract|SumRange|And|BitmapRunIteration|Builder' \
		-benchtime 1x -count 3 ./internal/encoding ./internal/storage ./internal/positions ; \
	  $(GO) test -run xxx -bench 'FusedMultiPredicate' -benchtime 20x -count 3 . ; \
	  $(GO) test -run xxx -bench 'BenchmarkJoin(Build|Probe)$$' -benchtime 20x -count 3 . ; \
	  $(GO) test -run xxx -bench 'BenchmarkServer(JoinBuild(Cold|Cached)|ResultCacheHit)$$' \
		-benchtime 20x -count 3 ./internal/bench ; \
	  $(GO) test -run xxx -bench 'BenchmarkServerClosedLoop(Hit|Miss)$$' \
		-benchtime 5x -count 3 ./internal/bench ; \
	  $(GO) test -run xxx -bench 'BenchmarkCoordinatorOverhead(Direct|1Shard)$$' \
		-benchtime 20x -count 3 ./internal/bench ; \
	  $(GO) test -run xxx -bench 'BenchmarkCoordinatorClosedLoop[124]Shard$$' \
		-benchtime 5x -count 3 ./internal/bench ; \
	  $(GO) test -run xxx -bench 'BenchmarkJoinFanout(Replicated|Copartitioned)[124]Shard$$' \
		-benchtime 5x -count 3 ./internal/bench ; \
	  $(GO) test -run xxx -bench 'BenchmarkAggMerge(Stats|Finalized)[124]Shard$$' \
		-benchtime 5x -count 3 ./internal/bench ; \
	  $(GO) test -run xxx -bench 'BenchmarkServerQueryTrace(Off|On)$$' \
		-benchtime 20x -count 3 ./internal/bench ; \
	  $(GO) test -run xxx -bench 'BenchmarkSpan(Disabled|Enabled)Path$$|BenchmarkHistogramObserve$$' \
		-benchtime 1000x -count 3 ./internal/obs ; } \
		| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)
