package matstore

import (
	"errors"

	"matstore/internal/exec"
	"matstore/internal/model"
	"matstore/internal/storage"
)

// Advice is the analytical model's evaluation of a query: the predicted
// cost of every strategy and the argmin. This is the optimizer integration
// the paper proposes ("an analytical model that can be used … in a query
// optimizer to select a materialization strategy").
type Advice struct {
	// Best is the strategy with the lowest predicted total cost.
	Best Strategy
	// Costs maps every strategy to its predicted cost.
	Costs map[Strategy]Cost
	// Inputs are the derived model inputs (for inspection/debugging).
	Inputs model.SelectionInputs
}

// Advise predicts per-strategy costs for q over a warm buffer pool using
// the DB's current model constants (Table 2 until calibrated), deriving all
// model inputs from catalog statistics. The prediction is for serial
// (one-worker) execution; use AdviseParallel for a morsel-parallel
// prediction.
func (db *DB) Advise(projection string, q Query) (Advice, error) {
	return db.AdviseWith(db.Constants(), projection, q, true)
}

// AdviseParallel predicts per-strategy costs for q executed morsel-parallel
// at the given worker count (0 = one worker per CPU, matching
// Query.Parallelism semantics) over a warm buffer pool: plan-body CPU
// divides across workers, the coordinator tail (partial-result merge and
// output iteration) and the disk-arm I/O term do not.
func (db *DB) AdviseParallel(projection string, q Query, workers int) (Advice, error) {
	in, err := db.adviceInputs(projection, q, true)
	if err != nil {
		return Advice{}, err
	}
	w := exec.Resolve(workers)
	consts := db.Constants()
	adv := Advice{Costs: make(map[Strategy]Cost, len(Strategies)), Inputs: in}
	adv.Best, _ = consts.AdviseParallel(in, w)
	for _, s := range Strategies {
		adv.Costs[s] = consts.ParallelSelectionCost(s, in, w)
	}
	return adv, nil
}

// adviceInputs validates q and derives the model inputs every advisor
// variant shares.
func (db *DB) adviceInputs(projection string, q Query, hot bool) (model.SelectionInputs, error) {
	p, err := db.inner.Projection(projection)
	if err != nil {
		return model.SelectionInputs{}, err
	}
	if len(q.Filters) == 0 {
		return model.SelectionInputs{}, errors.New("matstore: Advise needs at least one filter")
	}
	return deriveInputs(p, q, hot)
}

// AdviseWith is Advise with explicit model constants and pool temperature
// (hot=false charges full scan I/O, the cold-start case).
func (db *DB) AdviseWith(consts Constants, projection string, q Query, hot bool) (Advice, error) {
	in, err := db.adviceInputs(projection, q, hot)
	if err != nil {
		return Advice{}, err
	}
	adv := Advice{Costs: make(map[Strategy]Cost, len(Strategies)), Inputs: in}
	best, bestCost := consts.Advise(in)
	adv.Best = best
	_ = bestCost
	for _, s := range Strategies {
		adv.Costs[s] = consts.SelectionCost(s, in)
	}
	return adv, nil
}

// EstimateSelectCost predicts the serial cost (µs, warm pool) of running q
// under strategy s using the DB's current constants — the grant sizer of the
// serving layer's admission governor calls this on every request, so it
// derives everything from catalog statistics and reads no data. Unlike
// Advise it accepts filterless queries (full scans: every selectivity 1).
func (db *DB) EstimateSelectCost(projection string, q Query, s Strategy) (Cost, error) {
	p, err := db.inner.Projection(projection)
	if err != nil {
		return Cost{}, err
	}
	if len(q.Filters) == 0 {
		// Full scan: model both columns as the widest referenced column at
		// selectivity 1 (positions stay fully dense).
		name := q.GroupBy
		for _, cand := range [][]string{q.Output, {q.AggCol}} {
			for _, c := range cand {
				if name == "" && c != "" {
					name = c
				}
			}
		}
		if name == "" && len(p.Meta.Columns) > 0 {
			name = p.Meta.Columns[0].Name
		}
		c, err := p.Column(name)
		if err != nil {
			return Cost{}, err
		}
		cs := columnStats(c, true)
		in := model.SelectionInputs{
			A: cs, B: cs, SFA: 1, SFB: 1,
			PosRunsA: cs.Tuples, PosRunsB: cs.Tuples,
		}
		if q.Aggregating() {
			in.Aggregating = true
			in.Groups = 1
			if g, err := p.Column(q.GroupBy); err == nil && g.Distinct() > 0 {
				in.Groups = float64(g.Distinct())
			}
		}
		return db.Constants().SelectionCost(s, in), nil
	}
	in, err := deriveInputs(p, q, true)
	if err != nil {
		return Cost{}, err
	}
	return db.Constants().SelectionCost(s, in), nil
}

// deriveInputs maps catalog statistics onto the model's SelectionInputs:
// column sizes and run lengths come from column headers, selectivities from
// predicate bounds against column min/max, and position-run lengths from
// the projection sort key (a predicate over the k-th sort-key column emits
// contiguous position runs within each combination of the preceding key
// columns, so the cluster count is the product of their distinct counts).
func deriveInputs(p *storage.Projection, q Query, hot bool) (model.SelectionInputs, error) {
	f0 := q.Filters[0]
	colA, err := p.Column(f0.Col)
	if err != nil {
		return model.SelectionInputs{}, err
	}
	statsA := columnStats(colA, hot)
	loA, hiA := colA.MinMax()
	sfA := f0.Pred.Selectivity(loA, hiA)

	statsB := statsA
	sfB := 1.0
	colBName := f0.Col
	if len(q.Filters) > 1 {
		f1 := q.Filters[1]
		colB, err := p.Column(f1.Col)
		if err != nil {
			return model.SelectionInputs{}, err
		}
		statsB = columnStats(colB, hot)
		loB, hiB := colB.MinMax()
		sfB = f1.Pred.Selectivity(loB, hiB)
		colBName = f1.Col
		// Fold any further predicates into SFB (the model is two-column;
		// extra predicates only scale the surviving fraction).
		for _, f := range q.Filters[2:] {
			c, err := p.Column(f.Col)
			if err != nil {
				return model.SelectionInputs{}, err
			}
			lo, hi := c.MinMax()
			sfB *= f.Pred.Selectivity(lo, hi)
		}
	}

	sortedA, clustersA := sortPosition(p, f0.Col)
	sortedB, clustersB := sortPosition(p, colBName)
	in := model.SelectionInputs{
		A: statsA, B: statsB, SFA: sfA, SFB: sfB,
		PosRunsA: model.EstimatePosRuns(statsA, sfA, sortedA, clustersA),
		PosRunsB: model.EstimatePosRuns(statsB, sfB, sortedB, clustersB),
	}
	if q.Aggregating() {
		in.Aggregating = true
		g, err := p.Column(q.GroupBy)
		if err != nil {
			return model.SelectionInputs{}, err
		}
		groups := float64(g.Distinct()) * sfA * sfB
		if groups < 1 {
			groups = 1
		}
		in.Groups = groups
	}
	return in, nil
}

func columnStats(c *storage.Column, hot bool) model.ColumnStats {
	f := 0.0
	if hot {
		f = 1.0
	}
	return model.ColumnStats{
		Blocks: float64(c.NumBlocks()),
		Tuples: float64(c.TupleCount()),
		RunLen: c.AvgRunLen(),
		F:      f,
	}
}

// sortPosition reports whether col is part of the projection's sort key
// and, if so, how many clusters a predicate's matches split across (the
// product of the distinct counts of the preceding sort-key columns).
func sortPosition(p *storage.Projection, col string) (sorted bool, clusters float64) {
	clusters = 1
	for _, key := range p.Meta.SortKey {
		if key == col {
			return true, clusters
		}
		for _, cm := range p.Meta.Columns {
			if cm.Name == key {
				clusters *= float64(cm.Distinct)
				break
			}
		}
	}
	return false, 1
}
