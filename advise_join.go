package matstore

import (
	"matstore/internal/model"
	"matstore/internal/pred"
)

// JoinAdvice is the analytical model's evaluation of a join query: the
// predicted end-to-end cost of each inner-table materialization strategy
// (Section 4.3 build + probe terms composed with the outer scan and output
// iteration) and the argmin — the Figure 13 winner at the query's
// selectivity.
type JoinAdvice struct {
	// Best is the inner-table strategy with the lowest predicted total cost.
	Best RightStrategy
	// Costs maps every inner-table strategy to its predicted cost.
	Costs map[RightStrategy]Cost
	// Inputs are the derived model inputs (for inspection/debugging).
	Inputs model.JoinInputs
}

// JoinStrategies lists the three inner-table strategies in presentation
// order.
var JoinStrategies = model.JoinStrategies

// AdviseJoin predicts per-strategy costs for the join left ⋈ right over a
// warm buffer pool using the paper's Table 2 constants, deriving all model
// inputs from catalog statistics: the outer predicate's selectivity from the
// outer key's min/max, and the matches-per-key fan-out from the inner key's
// distinct count (exact for the paper's foreign-key join).
func (db *DB) AdviseJoin(left, right string, q JoinQuery) (JoinAdvice, error) {
	in, err := db.deriveJoinInputs(left, right, q)
	if err != nil {
		return JoinAdvice{}, err
	}
	consts := db.Constants()
	adv := JoinAdvice{Costs: make(map[RightStrategy]Cost, len(JoinStrategies)), Inputs: in}
	adv.Best, _ = consts.AdviseJoin(in)
	for _, rs := range JoinStrategies {
		adv.Costs[rs] = consts.JoinCost(in, rs)
	}
	return adv, nil
}

// EstimateJoinCost predicts the end-to-end cost (µs, warm pool) of the join
// under one inner-table strategy using the DB's current constants — the
// catalog-statistics-only estimate the admission governor's grant sizer
// uses.
func (db *DB) EstimateJoinCost(left, right string, q JoinQuery, rs RightStrategy) (Cost, error) {
	in, err := db.deriveJoinInputs(left, right, q)
	if err != nil {
		return Cost{}, err
	}
	return db.Constants().JoinCost(in, rs), nil
}

// EstimateJoinMemory predicts the resident heap bytes the join's blocking
// hash-build side will pin under the given inner-table strategy, from catalog
// statistics alone (inner tuple count, distinct key count, payload block
// counts). The admission governor reserves this many bytes before granting an
// in-memory join, and sizes the spill budget from it when the grant doesn't
// fit.
func (db *DB) EstimateJoinMemory(right string, q JoinQuery, rs RightStrategy) (int64, error) {
	rp, err := db.inner.Projection(right)
	if err != nil {
		return 0, err
	}
	rightKey, err := rp.Column(q.RightKey)
	if err != nil {
		return 0, err
	}
	blocks := make([]int64, 0, len(q.RightOutput))
	for _, name := range q.RightOutput {
		c, err := rp.Column(name)
		if err != nil {
			return 0, err
		}
		blocks = append(blocks, int64(c.NumBlocks()))
	}
	return model.EstimateJoinMemory(rightKey.TupleCount(), rightKey.Distinct(), blocks, rs), nil
}

// deriveJoinInputs maps catalog statistics onto the model's JoinInputs: the
// outer predicate's selectivity from the outer key's min/max, and the
// matches-per-key fan-out from the inner key's distinct count.
func (db *DB) deriveJoinInputs(left, right string, q JoinQuery) (model.JoinInputs, error) {
	lp, err := db.inner.Projection(left)
	if err != nil {
		return model.JoinInputs{}, err
	}
	rp, err := db.inner.Projection(right)
	if err != nil {
		return model.JoinInputs{}, err
	}
	leftKey, err := lp.Column(q.LeftKey)
	if err != nil {
		return model.JoinInputs{}, err
	}
	rightKey, err := rp.Column(q.RightKey)
	if err != nil {
		return model.JoinInputs{}, err
	}
	in := model.JoinInputs{
		Outer:       columnStats(leftKey, true),
		Key:         columnStats(rightKey, true),
		NumLeftCols: len(q.LeftOutput),
		SF:          1,
		MatchPerKey: 1,
	}
	for _, name := range q.RightOutput {
		c, err := rp.Column(name)
		if err != nil {
			return model.JoinInputs{}, err
		}
		in.Payload = append(in.Payload, columnStats(c, true))
	}
	if q.LeftPred.Op != pred.All {
		lo, hi := leftKey.MinMax()
		in.SF = q.LeftPred.Selectivity(lo, hi)
	}
	if d := rightKey.Distinct(); d > 0 {
		in.MatchPerKey = in.Key.Tuples / float64(d)
	}
	return in, nil
}
