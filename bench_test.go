// Benchmarks regenerating every table and figure of the paper's evaluation:
//
//	BenchmarkTable2Constants — the Table 2 model-constant microbenchmarks
//	BenchmarkFig10           — model-vs-measured selection (RLE), LM and EM
//	BenchmarkFig11           — selection × {plain, RLE, bit-vector} × strategy
//	BenchmarkFig12           — aggregation × {plain, RLE, bit-vector} × strategy
//	BenchmarkFig13           — join × inner-table strategy
//	BenchmarkAblation*       — the DESIGN.md ablations
//
// Figure benchmarks report the measured time per query; Fig10 additionally
// reports the analytical model's prediction as the custom metric
// "model_ms/op" so shape agreement is visible in benchmark output. The
// full sweeps behind EXPERIMENTS.md come from cmd/csbench, which prints
// whole curves.
package matstore_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"matstore"
	"matstore/internal/bench"
	"matstore/internal/core"
	"matstore/internal/encoding"
	"matstore/internal/operators"
	"matstore/internal/pred"
	"matstore/internal/storage"
	"matstore/internal/tpch"
)

const benchScale = 0.01 // 60k lineitem rows per query: each op is a full query

var (
	benchOnce sync.Once
	benchDir  string
	benchErr  error
	benchE    *bench.Env
)

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "matstore-bench")
		if benchErr != nil {
			return
		}
		benchE, benchErr = bench.Setup(filepath.Join(benchDir, "data"), benchScale, 11)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchE
}

// benchCleanup is called from TestMain in matstore_test.go.
func benchCleanup() {
	if benchE != nil {
		benchE.Close()
	}
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
}

func benchDB(b *testing.B) *matstore.DB {
	b.Helper()
	e := benchEnv(b)
	db, err := matstore.Open(e.Dir)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func selQuery(enc encoding.Kind, sel float64, agg bool) matstore.Query {
	linenum := tpch.LinenumColumn(enc)
	q := matstore.Query{
		Filters: []matstore.Filter{
			{Col: tpch.ColShipdate, Pred: pred.LessThan(tpch.ShipdateForSelectivity(sel))},
			{Col: linenum, Pred: pred.LessThan(tpch.LinenumMax)},
		},
	}
	if agg {
		q.GroupBy = tpch.ColShipdate
		q.AggCol = linenum
	} else {
		q.Output = []string{tpch.ColShipdate, linenum}
	}
	return q
}

func runSelect(b *testing.B, db *matstore.DB, q matstore.Query, s matstore.Strategy) {
	b.Helper()
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		_, stats, err := db.Select(tpch.LineitemProj, q, s)
		if err != nil {
			b.Fatal(err)
		}
		sink += stats.OutputChecksum
	}
	_ = sink
}

// BenchmarkTable2Constants regenerates Table 2: the per-call costs of the
// four CPU constants of the analytical model.
func BenchmarkTable2Constants(b *testing.B) {
	b.Run("FC/function-call", func(b *testing.B) {
		b.ReportAllocs()
		var acc int64
		f := func(x int64) int64 { return x + 1 }
		for i := 0; i < b.N; i++ {
			acc = f(acc)
		}
		_ = acc
	})
	b.Run("TICCOL/column-iterator", func(b *testing.B) {
		b.ReportAllocs()
		vals := make([]int64, 1<<16)
		var acc int64
		for i := 0; i < b.N; i++ {
			acc += vals[i&(1<<16-1)]
		}
		_ = acc
	})
	b.Run("TICTUP/tuple-iterator", func(b *testing.B) {
		b.ReportAllocs()
		x := make([]int64, 1<<16)
		y := make([]int64, 1<<16)
		type tup struct{ a, b int64 }
		var acc int64
		for i := 0; i < b.N; i++ {
			j := i & (1<<16 - 1)
			t := tup{x[j], y[j]}
			acc += t.a + t.b
		}
		_ = acc
	})
	b.Run("BIC/block-iterator", func(b *testing.B) {
		e := benchEnv(b)
		db, err := matstore.Open(e.Dir)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		// One full-column scan per op, cost dominated by per-block dispatch.
		q := matstore.Query{Output: []string{tpch.ColRetflag}}
		runSelectRaw(b, db, q)
	})
}

func runSelectRaw(b *testing.B, db *matstore.DB, q matstore.Query) {
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		_, stats, err := db.Select(tpch.LineitemProj, q, matstore.LMParallel)
		if err != nil {
			b.Fatal(err)
		}
		sink += stats.TuplesOut
	}
	_ = sink
}

// BenchmarkFig10 regenerates Figure 10: measured runtime per strategy on
// the RLE selection query, with the analytical prediction reported as
// model_ms/op.
func BenchmarkFig10(b *testing.B) {
	e := benchEnv(b)
	db := benchDB(b)
	for _, sel := range []float64{0.1, 0.5, 0.9} {
		in, err := e.ModelInputs(encoding.RLE, sel, false)
		if err != nil {
			b.Fatal(err)
		}
		q := selQuery(encoding.RLE, sel, false)
		for _, s := range matstore.Strategies {
			b.Run(fmt.Sprintf("%s/sel=%.1f", s, sel), func(b *testing.B) {
				runSelect(b, db, q, s)
				predicted := e.Constants.SelectionCost(s, in).Total() / 1e3
				b.ReportMetric(predicted, "model_ms/op")
			})
		}
	}
}

// BenchmarkFig11 regenerates Figure 11: the selection query across LINENUM
// encodings and strategies.
func BenchmarkFig11(b *testing.B) {
	db := benchDB(b)
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		strategies := matstore.Strategies
		if enc == encoding.BitVector {
			strategies = []matstore.Strategy{matstore.EMPipelined, matstore.EMParallel, matstore.LMParallel}
		}
		for _, sel := range []float64{0.1, 0.9} {
			q := selQuery(enc, sel, false)
			for _, s := range strategies {
				b.Run(fmt.Sprintf("%s/%s/sel=%.1f", enc, s, sel), func(b *testing.B) {
					runSelect(b, db, q, s)
				})
			}
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: the aggregation query across
// LINENUM encodings and strategies.
func BenchmarkFig12(b *testing.B) {
	db := benchDB(b)
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		strategies := matstore.Strategies
		if enc == encoding.BitVector {
			strategies = []matstore.Strategy{matstore.EMPipelined, matstore.EMParallel, matstore.LMParallel}
		}
		for _, sel := range []float64{0.1, 0.9} {
			q := selQuery(enc, sel, true)
			for _, s := range strategies {
				b.Run(fmt.Sprintf("%s/%s/sel=%.1f", enc, s, sel), func(b *testing.B) {
					runSelect(b, db, q, s)
				})
			}
		}
	}
}

// BenchmarkFig13 regenerates Figure 13: the orders ⋈ customer join under
// the three inner-table materialization strategies.
func BenchmarkFig13(b *testing.B) {
	e := benchEnv(b)
	db := benchDB(b)
	nCust := tpch.Config{Scale: benchScale}.CustomerRows()
	_ = e
	for _, rs := range []matstore.RightStrategy{
		matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
	} {
		for _, sel := range []float64{0.1, 0.9} {
			q := matstore.JoinQuery{
				LeftKey:     tpch.ColCustkey,
				LeftPred:    pred.LessThan(tpch.CustkeyForSelectivity(sel, nCust)),
				LeftOutput:  []string{tpch.ColOrderShipdate},
				RightKey:    tpch.ColCustkey,
				RightOutput: []string{tpch.ColNationcode},
			}
			b.Run(fmt.Sprintf("%s/sel=%.1f", rs, sel), func(b *testing.B) {
				b.ReportAllocs()
				var sink int64
				for i := 0; i < b.N; i++ {
					_, stats, err := db.Join(tpch.OrdersProj, tpch.CustomerProj, q, rs)
					if err != nil {
						b.Fatal(err)
					}
					sink += stats.TuplesOut
				}
				_ = sink
			})
		}
	}
}

// BenchmarkParallelSelection measures the morsel-parallel speedup on a
// low-selectivity multi-predicate selection: the same query at worker
// counts 1, 2 and 4 (compare ns/op across sub-benchmarks; on a multi-core
// host parallelism 4 should run ≥ 1.8× faster than parallelism 1). A small
// chunk size splits the dataset into enough chunks that every worker count
// gets multiple morsels.
func BenchmarkParallelSelection(b *testing.B) {
	e := benchEnv(b)
	db, err := matstore.Open(e.Dir, matstore.Options{Exec: core.Options{ChunkSize: 4096}})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	q := matstore.Query{
		Output: []string{tpch.ColShipdate, tpch.ColLinenum, tpch.ColQuantity},
		Filters: []matstore.Filter{
			{Col: tpch.ColShipdate, Pred: pred.LessThan(tpch.ShipdateForSelectivity(0.1))},
			{Col: tpch.ColQuantity, Pred: pred.LessThan(40)},
			{Col: tpch.ColLinenum, Pred: pred.LessThan(7)},
		},
	}
	for _, s := range []matstore.Strategy{matstore.LMParallel, matstore.EMParallel} {
		for _, par := range []int{1, 2, 4} {
			q.Parallelism = par
			b.Run(fmt.Sprintf("%v/parallelism=%d", s, par), func(b *testing.B) {
				runSelect(b, db, q, s)
			})
		}
	}
}

// BenchmarkParallelAggregation measures the morsel-parallel speedup of the
// partial-aggregate merge path.
func BenchmarkParallelAggregation(b *testing.B) {
	e := benchEnv(b)
	db, err := matstore.Open(e.Dir, matstore.Options{Exec: core.Options{ChunkSize: 4096}})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	q := matstore.Query{
		Filters: []matstore.Filter{
			{Col: tpch.ColShipdate, Pred: pred.LessThan(tpch.ShipdateForSelectivity(0.5))},
		},
		GroupBy: tpch.ColShipdate,
		AggCol:  tpch.ColQuantity,
	}
	for _, par := range []int{1, 4} {
		q.Parallelism = par
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			runSelect(b, db, q, matstore.LMParallel)
		})
	}
}

// BenchmarkAblationMultiColumn isolates the LM re-access penalty the
// multi-column structure avoids (Sections 2.2 and 3.6).
func BenchmarkAblationMultiColumn(b *testing.B) {
	e := benchEnv(b)
	q := selQuery(encoding.RLE, 0.5, false)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"multi-column", false}, {"re-access", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := matstore.Open(e.Dir, matstore.Options{Exec: core.Options{DisableMultiColumn: mode.disable}})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			runSelect(b, db, q, matstore.LMParallel)
		})
	}
}

// BenchmarkAblationPositionRep compares adaptive position representations
// against forced bitmaps (Section 3.3).
func BenchmarkAblationPositionRep(b *testing.B) {
	e := benchEnv(b)
	q := selQuery(encoding.RLE, 0.5, false)
	for _, mode := range []struct {
		name  string
		force bool
	}{{"adaptive", false}, {"forced-bitmap", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := matstore.Open(e.Dir, matstore.Options{Exec: core.Options{ForceBitmapPositions: mode.force}})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			runSelect(b, db, q, matstore.LMParallel)
		})
	}
}

// BenchmarkAblationChunkSize sweeps the horizontal-partition width.
func BenchmarkAblationChunkSize(b *testing.B) {
	e := benchEnv(b)
	q := selQuery(encoding.RLE, 0.5, false)
	for _, cs := range []int64{4096, 16384, 65536, 262144} {
		b.Run(fmt.Sprintf("chunk=%d", cs), func(b *testing.B) {
			db, err := matstore.Open(e.Dir, matstore.Options{Exec: core.Options{ChunkSize: cs}})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			runSelect(b, db, q, matstore.LMParallel)
		})
	}
}

// BenchmarkAblationZoneIndex compares scan-derived vs index-derived
// positions (Section 2.1.1).
func BenchmarkAblationZoneIndex(b *testing.B) {
	e := benchEnv(b)
	q := selQuery(encoding.RLE, 0.3, false)
	for _, mode := range []struct {
		name string
		zone bool
	}{{"scan-derived", false}, {"index-derived", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := matstore.Open(e.Dir, matstore.Options{Exec: core.Options{UseZoneIndex: mode.zone}})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			runSelect(b, db, q, matstore.LMParallel)
		})
	}
}

// BenchmarkAblationAggCompressed compares aggregation directly on
// compressed data (LM) against decompress-then-hash (EM), Section 4.2.
func BenchmarkAblationAggCompressed(b *testing.B) {
	db := benchDB(b)
	q := selQuery(encoding.RLE, 0.5, true)
	b.Run("direct-on-compressed", func(b *testing.B) { runSelect(b, db, q, matstore.LMParallel) })
	b.Run("decompress-then-hash", func(b *testing.B) { runSelect(b, db, q, matstore.EMParallel) })
}

// BenchmarkJoinBuildSide isolates per-strategy join cost at mid selectivity
// including the right-table build.
func BenchmarkJoinBuildSide(b *testing.B) {
	e := benchEnv(b)
	for _, rs := range []operators.RightStrategy{
		operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
	} {
		b.Run(rs.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats, err := e.JoinStatsAt(0.5, rs)
				if err != nil {
					b.Fatal(err)
				}
				if stats.TuplesOut == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

// BenchmarkFusedMultiPredicate measures whole-query multi-predicate fusion:
// a selective two-predicate range conjunction over one unsorted column
// (quantity), executed with the planner fusing consecutive same-column
// filters into one scan pass (default) vs. one scan node per predicate
// (DisableFusion, the unfused reference). The query is scan-dominated (few
// survivors, cheap materialization), so the fused single pass vs. two DS1
// passes plus a position AND is what the numbers show; LM-parallel makes
// the difference purest.
func BenchmarkFusedMultiPredicate(b *testing.B) {
	e := benchEnv(b)
	q := matstore.Query{
		Output: []string{tpch.ColShipdate, tpch.ColQuantity},
		Filters: []matstore.Filter{
			{Col: tpch.ColQuantity, Pred: pred.AtLeast(10)},
			{Col: tpch.ColQuantity, Pred: pred.LessThan(13)},
		},
	}
	for _, mode := range []struct {
		name string
		opt  core.Options
	}{
		{"fused", core.Options{}},
		{"unfused", core.Options{DisableFusion: true}},
	} {
		db, err := matstore.Open(e.Dir, matstore.Options{Exec: mode.opt})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			runSelect(b, db, q, matstore.LMParallel)
		})
		db.Close()
	}
}

// BenchmarkJoinBuild isolates the hash-build phase of the join: the
// radix-partitioned parallel build (BuildPartitioned, worker counts 1 and
// 4) against the retained serial reference (BuildRightTable), per
// inner-table materialization strategy. On the 1-CPU CI container the
// radix/serial gap at w4 reflects partitioning overhead only; multi-core
// hosts show the build-phase speedup PR 1 left on the table.
func BenchmarkJoinBuild(b *testing.B) {
	e := benchEnv(b)
	customer, err := e.DB.Projection(tpch.CustomerProj)
	if err != nil {
		b.Fatal(err)
	}
	keyCol, err := customer.Column(tpch.ColCustkey)
	if err != nil {
		b.Fatal(err)
	}
	valCol, err := customer.Column(tpch.ColNationcode)
	if err != nil {
		b.Fatal(err)
	}
	payload := []string{tpch.ColNationcode}
	const chunkSize = 65536
	for _, rs := range []operators.RightStrategy{
		operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
	} {
		b.Run(fmt.Sprintf("%s/serial", rs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt, err := operators.BuildRightTable(customer, tpch.ColCustkey, payload, rs, chunkSize)
				if err != nil {
					b.Fatal(err)
				}
				if rt.Probe(1) == nil {
					b.Fatal("empty build")
				}
			}
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/radix-w%d", rs, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rt, err := operators.BuildPartitioned(keyCol, []*storage.Column{valCol}, payload, rs, chunkSize, workers, 0)
					if err != nil {
						b.Fatal(err)
					}
					if rt.Probe(1) == nil {
						b.Fatal("empty build")
					}
				}
			})
		}
	}
}

// BenchmarkJoinProbe isolates the streaming probe phase (batched key and
// payload gathers, radix-routed lookups, and the single-column strategy's
// deferred batched fetch) by reusing one built hash side across iterations
// via Plan.ReuseBuild.
func BenchmarkJoinProbe(b *testing.B) {
	e := benchEnv(b)
	orders, err := e.DB.Projection(tpch.OrdersProj)
	if err != nil {
		b.Fatal(err)
	}
	customer, err := e.DB.Projection(tpch.CustomerProj)
	if err != nil {
		b.Fatal(err)
	}
	exec := core.NewExecutor(e.DB.Pool(), core.Options{})
	q := core.JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    pred.LessThan(tpch.CustkeyForSelectivity(0.5, customer.TupleCount())),
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
	for _, rs := range []operators.RightStrategy{
		operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
	} {
		pl, err := exec.BuildJoinPlan(orders, customer, q, rs)
		if err != nil {
			b.Fatal(err)
		}
		pl.ReuseBuild = true
		if _, _, err := exec.RunJoinPlan(pl, 1, false); err != nil {
			b.Fatal(err) // populate the reused build
		}
		b.Run(rs.String(), func(b *testing.B) {
			b.ReportAllocs()
			var sink int64
			for i := 0; i < b.N; i++ {
				_, stats, err := exec.RunJoinPlan(pl, 1, false)
				if err != nil {
					b.Fatal(err)
				}
				sink += stats.TuplesOut
			}
			_ = sink
		})
	}
}
