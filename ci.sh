#!/bin/sh
# Tier-1 gate: build, vet, full tests, and the parallel merge paths under
# the race detector. Mirrors `make ci` for environments without make.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/...

# Smoke-check the perf-recording pipeline (not a perf gate: single run,
# throwaway output). `make bench-json` writes the real BENCH_PR<N>.json.
go test -run xxx -bench 'BenchmarkFilterPlain$' -benchtime 1x ./internal/encoding \
	| go run ./cmd/benchjson -o /tmp/bench_smoke.json
