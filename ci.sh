#!/bin/sh
# Tier-1 gate: build, vet, full tests, and the parallel merge paths under
# the race detector. Mirrors `make ci` for environments without make.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/...

# The extended fault-injection suite (shed-under-saturation with slow-IO
# faults, build-cache demotion faults) sits behind the faultinject build tag
# so the hot path carries no test-only hooks by default; run it explicitly.
go test -race -tags faultinject -run TestFaultinject -count=1 ./internal/service/

# Smoke-check the perf-recording pipeline (not a perf gate: single run,
# throwaway output). `make bench-json` writes the real BENCH_PR<N>.json.
go test -run xxx -bench 'BenchmarkFilterPlain$' -benchtime 1x ./internal/encoding \
	| go run ./cmd/benchjson -o /tmp/bench_smoke.json

# Smoke-run EXPLAIN end to end: generate a small dataset, print an annotated
# physical plan (modeled vs observed per node) for a fused-scan query.
ci_explain_dir=$(mktemp -d)
trap 'rm -rf "$ci_explain_dir"' EXIT
go run ./cmd/csgen -dir "$ci_explain_dir" -scale 0.001 -seed 7
go run ./cmd/csquery -dir "$ci_explain_dir" -proj lineitem \
	-out shipdate,linenum -where 'shipdate>=100,shipdate<400,linenum<5' \
	-strategy lm-parallel -parallelism 2 -explain | grep -q 'fused x2'
go run ./cmd/csquery -dir "$ci_explain_dir" -proj lineitem \
	-where 'shipdate<300' -groupby returnflag -sum quantity \
	-strategy em-pipelined -explain | grep -q 'AGG sum(quantity)'

# Smoke-run join EXPLAIN: the radix-build join plan must render both join
# nodes with modeled vs observed stats (and the resolved partition count).
go run ./cmd/csquery -dir "$ci_explain_dir" -proj orders -join customer \
	-leftkey custkey -rightkey custkey -out shipdate -rightout nationcode \
	-where 'custkey<200' -rightstrategy right-singlecolumn -parallelism 2 \
	-explain | grep -q 'JOINBUILD'

# Smoke-run the join advisor: the Section 4.3 cost terms pick the inner-table
# strategy and print all three predicted costs.
go run ./cmd/csquery -dir "$ci_explain_dir" -proj orders -join customer \
	-leftkey custkey -rightkey custkey -out shipdate -rightout nationcode \
	-where 'custkey<200' -advise | grep -q 'advisor chose right-'

# Smoke-run the query service end to end: start csserve on the generated
# data, issue queries and joins over HTTP (using the binary's built-in
# client so CI needs no curl), and require the repeated identical query to
# hit the result cache, a reshaped join to hit the shared build cache, and
# a repeated identical join to be served from cached result bytes.
go build -o "$ci_explain_dir/csserve" ./cmd/csserve
"$ci_explain_dir/csserve" -dir "$ci_explain_dir" -addr 127.0.0.1:18977 \
	-worker-budget 2 -max-concurrent 4 &
ci_serve_pid=$!
trap 'kill "$ci_serve_pid" 2>/dev/null; rm -rf "$ci_explain_dir"' EXIT
for i in $(seq 1 50); do
	if "$ci_explain_dir/csserve" -get http://127.0.0.1:18977/stats >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
done
ci_query_body='{"projection":"lineitem","output":["shipdate","linenum"],"where":["shipdate<400","linenum<7"],"strategy":"lm-parallel"}'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18977/query -data "$ci_query_body" \
	| grep -q '"row_count"'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18977/query -data "$ci_query_body" \
	| grep -q '"result_cache_hit":true'
ci_join_body='{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"where":["custkey<200"]}'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18977/join -data "$ci_join_body" \
	| grep -q '"build_cache_hit":false'
# A different left predicate is a new result shape but the same hash side:
# it must miss the result cache yet reuse the shared build.
ci_join_body2='{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"where":["custkey<150"]}'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18977/join -data "$ci_join_body2" \
	| grep -q '"build_cache_hit":true'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18977/join -data "$ci_join_body" \
	| grep -q '"result_cache_hit":true'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18977/explain -data "$ci_join_body" \
	| grep -q 'JOINBUILD'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18977/stats \
	| grep -q '"peak_workers_in_use":'

# Memory-governance smoke: restart csserve under a byte budget with the
# allocation-pressure failpoint armed (the CI dataset is far smaller than
# the flag's 1 MiB minimum, so the failpoint is what deterministically
# denies the in-memory reservation). The governed join must run in Grace
# spill mode and report it, /stats must expose the governor block, and the
# health endpoints must serve.
kill "$ci_serve_pid" 2>/dev/null
"$ci_explain_dir/csserve" -dir "$ci_explain_dir" -addr 127.0.0.1:18978 \
	-worker-budget 2 -memory-budget-mb 1 -spill-dir "$ci_explain_dir/spill-smoke" \
	-faults mem.reserve=error &
ci_serve_pid=$!
for i in $(seq 1 50); do
	if "$ci_explain_dir/csserve" -get http://127.0.0.1:18978/healthz >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
done
"$ci_explain_dir/csserve" -get http://127.0.0.1:18978/readyz | grep -q '"ready":true'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18978/join -data "$ci_join_body" \
	| grep -q '"spilled":true'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18978/stats \
	| grep -q '"spilled_joins":1'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18978/stats \
	| grep -q '"peak_reserved":'

# Smoke-run calibration: refit the Table 2 CPU constants from the mixed
# workload's observed per-node times; the report must show the refit.
go run ./cmd/csmodel -dir "$ci_explain_dir" -calibrate | grep -q 'calibrated over'

# Sharded-serving smoke: generate a 2-shard layout, boot one engine per
# shard plus the scatter-gather coordinator over them, and drive a
# selection, an aggregation, a join and an explain through the coordinator.
# The stats snapshot must show requests fanning out over both shards.
ci_shard_root="$ci_explain_dir/sharded"
go run ./cmd/csgen -dir "$ci_shard_root" -scale 0.001 -seed 7 -shards 2
# The calibrate smoke above regenerates $ci_explain_dir from scratch
# (bench.Setup removes the dir on marker mismatch), which deletes the
# csserve binary built into it — rebuild it.
go build -o "$ci_explain_dir/csserve" ./cmd/csserve
"$ci_explain_dir/csserve" -dir "$ci_shard_root/shard-000" -addr 127.0.0.1:18981 \
	-worker-budget 2 -max-concurrent 4 &
ci_shard0_pid=$!
"$ci_explain_dir/csserve" -dir "$ci_shard_root/shard-001" -addr 127.0.0.1:18982 \
	-worker-budget 2 -max-concurrent 4 &
ci_shard1_pid=$!
"$ci_explain_dir/csserve" -coordinator -dir "$ci_shard_root" -addr 127.0.0.1:18980 \
	-shard-endpoints http://127.0.0.1:18981,http://127.0.0.1:18982 &
ci_coord_pid=$!
trap 'kill "$ci_serve_pid" "$ci_shard0_pid" "$ci_shard1_pid" "$ci_coord_pid" 2>/dev/null; rm -rf "$ci_explain_dir"' EXIT
for i in $(seq 1 50); do
	if "$ci_explain_dir/csserve" -get http://127.0.0.1:18980/readyz >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
done
"$ci_explain_dir/csserve" -post http://127.0.0.1:18980/query -data "$ci_query_body" \
	| grep -q '"row_count"'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18980/query \
	-data '{"projection":"lineitem","groupby":"returnflag","aggcol":"quantity","agg":"avg","where":["shipdate<1500"],"limit":-1}' \
	| grep -q '"row_count"'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18980/join -data "$ci_join_body" \
	| grep -q '"row_count"'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18980/explain -data "$ci_query_body" \
	| grep -q 'shard 1'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18980/stats \
	| grep -q '"fanned_out":'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18980/stats \
	| grep -q '"shard_requests":'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18980/readyz | grep -q '"ready":true'

# Observability smoke: the coordinator serves Prometheus text with the
# request-latency histogram and the per-shard fan-out counter, and a
# `"trace": true` query returns an inline span tree whose grafted shard
# sub-trees carry per-plan-node spans (the DS1 scan leaf).
"$ci_explain_dir/csserve" -get http://127.0.0.1:18980/metrics \
	| grep -q 'cs_request_seconds_bucket'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18980/metrics \
	| grep -q 'cs_shard_requests'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18981/metrics \
	| grep -q 'cs_request_seconds_bucket'
# A fresh predicate so the shard result caches (warmed by the smoke above)
# miss and the trace shows real execution, not just result_cache.lookup hits.
ci_traced_body='{"projection":"lineitem","output":["shipdate","linenum"],"where":["shipdate<390","linenum<7"],"strategy":"lm-parallel","trace":true}'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18980/query -data "$ci_traced_body" \
	| grep -q 'DS1 scan'

# Key-partitioned smoke: regenerate the 2-shard layout hash-partitioned on
# the orders/customer join key. The join must fan out shard-local with no
# inner replication (the copartitioned_joins counter), and a group-by on the
# partition key must take the finalized-row pushdown instead of the
# statistics wire (the finalized_aggs counter).
ci_keypart_root="$ci_explain_dir/keypart"
go run ./cmd/csgen -dir "$ci_keypart_root" -scale 0.001 -seed 7 -shards 2 \
	-partition-key orders.custkey,customer.custkey
"$ci_explain_dir/csserve" -dir "$ci_keypart_root/shard-000" -addr 127.0.0.1:18984 \
	-worker-budget 2 -max-concurrent 4 &
ci_kp0_pid=$!
"$ci_explain_dir/csserve" -dir "$ci_keypart_root/shard-001" -addr 127.0.0.1:18985 \
	-worker-budget 2 -max-concurrent 4 &
ci_kp1_pid=$!
"$ci_explain_dir/csserve" -coordinator -dir "$ci_keypart_root" -addr 127.0.0.1:18983 \
	-shard-endpoints http://127.0.0.1:18984,http://127.0.0.1:18985 &
ci_kpcoord_pid=$!
trap 'kill "$ci_serve_pid" "$ci_shard0_pid" "$ci_shard1_pid" "$ci_coord_pid" "$ci_kp0_pid" "$ci_kp1_pid" "$ci_kpcoord_pid" 2>/dev/null; rm -rf "$ci_explain_dir"' EXIT
for i in $(seq 1 50); do
	if "$ci_explain_dir/csserve" -get http://127.0.0.1:18983/readyz >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
done
"$ci_explain_dir/csserve" -post http://127.0.0.1:18983/join -data "$ci_join_body" \
	| grep -q '"row_count"'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18983/stats \
	| grep -q '"copartitioned_joins":1'
"$ci_explain_dir/csserve" -post http://127.0.0.1:18983/query \
	-data '{"projection":"orders","groupby":"custkey","aggcol":"shipdate","agg":"min","limit":-1}' \
	| grep -q '"row_count"'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18983/stats \
	| grep -q '"finalized_aggs":1'
"$ci_explain_dir/csserve" -get http://127.0.0.1:18983/stats \
	| grep -q '"rowid_merges":'
