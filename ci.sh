#!/bin/sh
# Tier-1 gate: build, vet, full tests, and the parallel merge paths under
# the race detector. Mirrors `make ci` for environments without make.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/...

# Smoke-check the perf-recording pipeline (not a perf gate: single run,
# throwaway output). `make bench-json` writes the real BENCH_PR<N>.json.
go test -run xxx -bench 'BenchmarkFilterPlain$' -benchtime 1x ./internal/encoding \
	| go run ./cmd/benchjson -o /tmp/bench_smoke.json

# Smoke-run EXPLAIN end to end: generate a small dataset, print an annotated
# physical plan (modeled vs observed per node) for a fused-scan query.
ci_explain_dir=$(mktemp -d)
trap 'rm -rf "$ci_explain_dir"' EXIT
go run ./cmd/csgen -dir "$ci_explain_dir" -scale 0.001 -seed 7
go run ./cmd/csquery -dir "$ci_explain_dir" -proj lineitem \
	-out shipdate,linenum -where 'shipdate>=100,shipdate<400,linenum<5' \
	-strategy lm-parallel -parallelism 2 -explain | grep -q 'fused x2'
go run ./cmd/csquery -dir "$ci_explain_dir" -proj lineitem \
	-where 'shipdate<300' -groupby returnflag -sum quantity \
	-strategy em-pipelined -explain | grep -q 'AGG sum(quantity)'

# Smoke-run join EXPLAIN: the radix-build join plan must render both join
# nodes with modeled vs observed stats (and the resolved partition count).
go run ./cmd/csquery -dir "$ci_explain_dir" -proj orders -join customer \
	-leftkey custkey -rightkey custkey -out shipdate -rightout nationcode \
	-where 'custkey<200' -rightstrategy right-singlecolumn -parallelism 2 \
	-explain | grep -q 'JOINBUILD'
