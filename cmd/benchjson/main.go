// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON perf record: benchmark name → {ns_op, allocs_op, b_op,
// samples, p50/p95/p99 µs tail latency when the benchmark reports them}. With -count > 1 runs, the minimum ns/op across samples is kept
// (the least-noise estimate on a shared CI box) along with every sample, so
// BENCH_<PR>.json files checked in per PR form a perf trajectory that can be
// diffed mechanically.
//
// Usage:
//
//	go test -bench Filter -benchtime 1x -count 3 ./... | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches e.g.
//
//	BenchmarkFilterPlain-4   	     300	     47420 ns/op	    8768 B/op	       4 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) model_ms/op)?(?:\s+[0-9.]+ p\d+_us)*(?:\s+([0-9]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

// metricRe pulls testing.B.ReportMetric outputs such as `123 p95_us` off the
// same line (order-independent; ReportMetric units sort alphabetically).
var metricRe = regexp.MustCompile(`\s([0-9.]+) (p50_us|p95_us|p99_us)`)

// Entry is the recorded result for one benchmark.
type Entry struct {
	NsOp     float64   `json:"ns_op"`               // minimum across samples
	AllocsOp *int64    `json:"allocs_op,omitempty"` // from the min-ns sample
	BOp      *int64    `json:"b_op,omitempty"`
	P50US    *float64  `json:"p50_us,omitempty"` // tail latency, min-ns sample
	P95US    *float64  `json:"p95_us,omitempty"`
	P99US    *float64  `json:"p99_us,omitempty"`
	Samples  []float64 `json:"samples_ns_op"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	entries := map[string]*Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		e := entries[name]
		if e == nil {
			e = &Entry{NsOp: ns}
			entries[name] = e
		}
		e.Samples = append(e.Samples, ns)
		if ns <= e.NsOp || len(e.Samples) == 1 {
			e.NsOp = ns
			if m[4] != "" {
				b, _ := strconv.ParseInt(m[4], 10, 64)
				e.BOp = &b
			}
			if m[5] != "" {
				a, _ := strconv.ParseInt(m[5], 10, 64)
				e.AllocsOp = &a
			}
			for _, mm := range metricRe.FindAllStringSubmatch(line, -1) {
				v, err := strconv.ParseFloat(mm[1], 64)
				if err != nil {
					continue
				}
				switch mm[2] {
				case "p50_us":
					e.P50US = &v
				case "p95_us":
					e.P95US = &v
				case "p99_us":
					e.P99US = &v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// encoding/json marshals map keys in sorted order, so the file is
	// deterministic and diffable as-is.
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(entries), *out)
}
