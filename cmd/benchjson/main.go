// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON perf record: benchmark name → {ns_op, allocs_op, b_op,
// samples, p50/p95/p99 µs tail latency, plus any other testing.B.ReportMetric
// units under "metrics"}. With -count > 1 runs, the minimum ns/op across
// samples is kept (the least-noise estimate on a shared CI box) along with
// every sample, so BENCH_<PR>.json files checked in per PR form a perf
// trajectory that can be diffed mechanically.
//
// Usage:
//
//	go test -bench Filter -benchtime 1x -count 3 ./... | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is the recorded result for one benchmark.
type Entry struct {
	NsOp     float64  `json:"ns_op"`               // minimum across samples
	AllocsOp *int64   `json:"allocs_op,omitempty"` // from the min-ns sample
	BOp      *int64   `json:"b_op,omitempty"`
	P50US    *float64 `json:"p50_us,omitempty"` // tail latency, min-ns sample
	P95US    *float64 `json:"p95_us,omitempty"`
	P99US    *float64 `json:"p99_us,omitempty"`
	// Metrics holds every other ReportMetric unit on the min-ns sample's
	// line (e.g. build_tuples, shard_resp_bytes, model_ms/op).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Samples []float64          `json:"samples_ns_op"`
}

// parseBenchLine tokenizes one `go test -bench` result line:
//
//	BenchmarkFilterPlain-4   300   47420 ns/op   123 build_tuples   8768 B/op   4 allocs/op
//
// i.e. a Benchmark name (GOMAXPROCS suffix stripped), an iteration count,
// then (value, unit) pairs in any order — which is how ReportMetric renders
// custom units (sorted alphabetically, interleaved with the built-ins).
func parseBenchLine(line string) (name string, metrics map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics = map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if _, ok := metrics["ns/op"]; !ok {
		return "", nil, false
	}
	return name, metrics, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	entries := map[string]*Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		name, metrics, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		ns := metrics["ns/op"]
		e := entries[name]
		if e == nil {
			e = &Entry{NsOp: ns}
			entries[name] = e
		}
		e.Samples = append(e.Samples, ns)
		if ns > e.NsOp && len(e.Samples) > 1 {
			continue
		}
		// This sample is the new minimum: its line's metrics become the
		// entry's recorded values.
		e.NsOp = ns
		e.BOp, e.AllocsOp = nil, nil
		e.P50US, e.P95US, e.P99US = nil, nil, nil
		e.Metrics = nil
		for unit, v := range metrics {
			v := v
			switch unit {
			case "ns/op":
			case "B/op":
				b := int64(v)
				e.BOp = &b
			case "allocs/op":
				a := int64(v)
				e.AllocsOp = &a
			case "p50_us":
				e.P50US = &v
			case "p95_us":
				e.P95US = &v
			case "p99_us":
				e.P99US = &v
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// encoding/json marshals map keys in sorted order, so the file is
	// deterministic and diffable as-is.
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(entries), *out)
}
