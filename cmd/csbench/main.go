// Command csbench regenerates the paper's evaluation: Table 2 and Figures
// 10–13, plus the ablation experiments, printing each as a text table (or
// CSV) of runtime versus selectivity per strategy.
//
// Usage:
//
//	csbench -dir ./benchdata -scale 0.04 -exp all
//	csbench -exp fig11 -enc bv -points 21
//	csbench -exp fig13 -csv > fig13.csv
//
// The dataset is generated on first use (a marker file keyed by scale and
// seed prevents regeneration).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"matstore/internal/bench"
	"matstore/internal/encoding"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csbench: ")
	dir := flag.String("dir", "./benchdata", "dataset directory (generated if missing)")
	scale := flag.Float64("scale", 0.04, "TPC-H scale factor for the dataset")
	seed := flag.Uint64("seed", 42, "generator seed")
	exp := flag.String("exp", "all", "experiment: table2|fig10|fig11|fig12|fig13|ablations|all")
	encFlag := flag.String("enc", "", "restrict fig11/fig12 to one LINENUM encoding: plain|rle|bv")
	points := flag.Int("points", len(bench.DefaultSelectivities), "number of selectivity points (2..)")
	runs := flag.Int("runs", 3, "timed repetitions per point (minimum is reported)")
	parallelism := flag.Int("parallelism", 1, "morsel-parallel workers per query (0 = one per CPU, 1 = the paper's serial execution)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	calibrate := flag.Bool("calibrate", false, "calibrate model constants on this host for fig10 predictions")
	flag.Parse()

	env, err := bench.Setup(*dir, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	env.Runs = *runs
	env.Parallelism = *parallelism
	if *calibrate {
		host, _ := bench.Table2()
		env.Constants = host
	}

	sels := selPoints(*points)
	emit := func(f bench.Figure) {
		if *csv {
			f.CSV(os.Stdout)
		} else {
			f.Render(os.Stdout)
			lo, hi := bench.CrossoverCheck(f)
			fmt.Printf("shape: lowest-selectivity winner=%q, highest-selectivity winner=%q\n\n", lo, hi)
		}
	}

	encodings := []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector}
	if *encFlag != "" {
		k, err := encoding.ParseKind(*encFlag)
		if err != nil {
			log.Fatal(err)
		}
		encodings = []encoding.Kind{k}
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }

	if want("table2") {
		host, paper := bench.Table2()
		bench.RenderTable2(os.Stdout, host, paper)
		fmt.Println()
	}
	if want("fig10") {
		lm, em, err := env.Fig10(sels)
		if err != nil {
			log.Fatal(err)
		}
		emit(lm)
		emit(em)
	}
	if want("fig11") {
		for _, k := range encodings {
			fig, err := env.Fig11(k, sels)
			if err != nil {
				log.Fatal(err)
			}
			emit(fig)
		}
	}
	if want("fig12") {
		for _, k := range encodings {
			fig, err := env.Fig12(k, sels)
			if err != nil {
				log.Fatal(err)
			}
			emit(fig)
		}
	}
	if want("fig13") {
		fig, err := env.Fig13(sels)
		if err != nil {
			log.Fatal(err)
		}
		emit(fig)
	}
	if want("ablations") {
		type ablation func([]float64) (bench.Figure, error)
		for _, a := range []ablation{env.AblationMultiColumn, env.AblationPositionRep, env.AblationAggCompressed, env.AblationZoneIndex, env.AblationJoinBuild} {
			fig, err := a(sels)
			if err != nil {
				log.Fatal(err)
			}
			emit(fig)
		}
		fig, err := env.AblationChunkSize([]int64{4096, 16384, 65536, 262144})
		if err != nil {
			log.Fatal(err)
		}
		emit(fig)
	}
}

// selPoints spreads n selectivities over (0, 1].
func selPoints(n int) []float64 {
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n-1)
		if out[i] == 0 {
			out[i] = 0.001
		}
	}
	return out
}
