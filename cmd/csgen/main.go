// Command csgen generates the TPC-H-shaped sample database (lineitem,
// orders, customer projections) used by the experiments.
//
// Usage:
//
//	csgen -dir ./data -scale 0.1 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"matstore"
	"matstore/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csgen: ")
	dir := flag.String("dir", "./data", "output directory")
	scale := flag.Float64("scale", 0.1, "TPC-H scale factor (1.0 = 6M lineitem rows; the paper used 10)")
	seed := flag.Uint64("seed", 42, "generator seed")
	parallelism := flag.Int("parallelism", 0, "generation workers (0 = one per CPU; output is byte-identical at every count)")
	flag.Parse()

	cfg := tpch.Config{Scale: *scale, Seed: *seed, Workers: *parallelism}
	fmt.Printf("generating scale %g: lineitem=%d orders=%d customer=%d rows under %s\n",
		*scale, cfg.LineitemRows(), cfg.OrdersRows(), cfg.CustomerRows(), *dir)
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := tpch.Generate(*dir, cfg); err != nil {
		log.Fatal(err)
	}

	db, err := matstore.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println("projections:", db.Projections())
	fmt.Println("done")
}
