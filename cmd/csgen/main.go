// Command csgen generates the TPC-H-shaped sample database (lineitem,
// orders, customer projections) used by the experiments.
//
// Usage:
//
//	csgen -dir ./data -scale 0.1 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"matstore"
	"matstore/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csgen: ")
	dir := flag.String("dir", "./data", "output directory")
	scale := flag.Float64("scale", 0.1, "TPC-H scale factor (1.0 = 6M lineitem rows; the paper used 10)")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	cfg := tpch.Config{Scale: *scale, Seed: *seed}
	fmt.Printf("generating scale %g: lineitem=%d orders=%d customer=%d rows under %s\n",
		*scale, cfg.LineitemRows(), cfg.OrdersRows(), cfg.CustomerRows(), *dir)
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := matstore.Generate(*dir, *scale, *seed); err != nil {
		log.Fatal(err)
	}

	db, err := matstore.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println("projections:", db.Projections())
	fmt.Println("done")
}
