// Command csgen generates the TPC-H-shaped sample database (lineitem,
// orders, customer projections) used by the experiments.
//
// Usage:
//
//	csgen -dir ./data -scale 0.1 -seed 42
//	csgen -dir ./data -scale 0.1 -shards 4   # sharded layout + shards.json
//	csgen -dir ./data -scale 0.1 -shards 4 \
//	      -partition-key orders.custkey,customer.custkey
//
// With -shards N the root receives one full database directory per shard
// (shard-000 ... shard-N-1) plus a shards.json manifest: lineitem and
// orders are horizontally partitioned on chunk-aligned row ranges
// (byte-identical to row-slicing the single-directory output), customer is
// replicated into every shard so shard-local joins see the full inner
// table. -partition-key table.col hash-partitions a table on that column
// instead (rows land on shard HashKey(col) mod N, in global row order, with
// a hidden _rowid column recording each row's global index): projections
// partitioned on both sides of a join key are co-partitioned, so the
// coordinator fans the join out shard-locally with no inner replication,
// and a group-by on the partition key finalizes on the shards. Serve each
// shard with csserve -dir root/shard-00k and front them with csserve
// -coordinator.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"matstore"
	"matstore/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csgen: ")
	dir := flag.String("dir", "./data", "output directory")
	scale := flag.Float64("scale", 0.1, "TPC-H scale factor (1.0 = 6M lineitem rows; the paper used 10)")
	seed := flag.Uint64("seed", 42, "generator seed")
	parallelism := flag.Int("parallelism", 0, "generation workers (0 = one per CPU; output is byte-identical at every count)")
	shards := flag.Int("shards", 0, "write a sharded layout with this many shards (0 = single directory)")
	partitionKey := flag.String("partition-key", "",
		"comma-separated table.column list to hash-partition by key instead of range-slicing (needs -shards)")
	flag.Parse()

	cfg := tpch.Config{Scale: *scale, Seed: *seed, Workers: *parallelism}
	fmt.Printf("generating scale %g: lineitem=%d orders=%d customer=%d rows under %s\n",
		*scale, cfg.LineitemRows(), cfg.OrdersRows(), cfg.CustomerRows(), *dir)
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	keys, err := tpch.ParsePartitionKeys(*partitionKey)
	if err != nil {
		log.Fatal(err)
	}
	if len(keys) > 0 && *shards <= 0 {
		log.Fatal("-partition-key needs -shards")
	}

	if *shards > 0 {
		layout := tpch.ShardLayout{PartitionKeys: keys}
		m, err := tpch.GenerateShardedLayout(*dir, cfg, *shards, layout)
		if err != nil {
			log.Fatal(err)
		}
		for k, d := range m.Dirs {
			db, err := matstore.Open(filepath.Join(*dir, d))
			if err != nil {
				log.Fatal(err)
			}
			li, _ := m.Placement(tpch.LineitemProj)
			if li.KeyPartitioned() {
				fmt.Printf("shard %d (%s): projections %v, lineitem hash(%s) mod %d == %d\n",
					k, d, db.Projections(), li.Partition.Column, li.Partition.Shards, k)
			} else {
				fmt.Printf("shard %d (%s): projections %v, lineitem rows [%d,%d)\n",
					k, d, db.Projections(), li.Ranges[k].Start, li.Ranges[k].End)
			}
			db.Close()
		}
		for _, t := range layout.PartitionedTables() {
			pl, _ := m.Placement(t)
			fmt.Printf("partitioned: %s on %s (%s mod %d)\n", t, pl.Partition.Column, pl.Partition.Hash, pl.Partition.Shards)
		}
		fmt.Println("manifest:", filepath.Join(*dir, "shards.json"))
		fmt.Println("done")
		return
	}

	if err := tpch.Generate(*dir, cfg); err != nil {
		log.Fatal(err)
	}

	db, err := matstore.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println("projections:", db.Projections())
	fmt.Println("done")
}
