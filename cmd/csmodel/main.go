// Command csmodel explores the analytical cost model: it prints per-strategy
// predicted costs across a selectivity sweep for the paper's selection and
// aggregation queries, and the advisor's choice at each point — the
// optimizer decision surface of Section 3.
//
// Usage:
//
//	csmodel                        # paper constants, paper-sized columns
//	csmodel -measure               # constants micro-measured on this host
//	csmodel -dir ./data -calibrate # constants refit by least squares over
//	                               # the mixed workload's observed node times
//	csmodel -dir ./data -enc rle   # derive column stats from a real dataset
package main

import (
	"flag"
	"fmt"
	"log"

	"matstore"
	"matstore/internal/bench"
	"matstore/internal/core"
	"matstore/internal/encoding"
	"matstore/internal/model"
	"matstore/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csmodel: ")
	dir := flag.String("dir", "", "derive column statistics from a dataset directory (optional)")
	scale := flag.Float64("scale", 0.04, "scale for -dir generation if missing")
	encFlag := flag.String("enc", "rle", "LINENUM encoding for -dir stats: plain|rle|bv")
	calibrate := flag.Bool("calibrate", false, "refit constants by least squares over the mixed workload's observed per-node times (needs -dir, generated at -scale if missing)")
	measure := flag.Bool("measure", false, "micro-measure constants on this host instead of Table 2 values")
	agg := flag.Bool("agg", false, "model the aggregation query instead of the selection")
	flag.Parse()

	consts := matstore.PaperConstants()
	if *measure {
		consts = matstore.Calibrate()
		fmt.Printf("measured constants: BIC=%.4f TICTUP=%.4f TICCOL=%.4f FC=%.4f µs\n\n",
			consts.BIC, consts.TICTUP, consts.TICCOL, consts.FC)
	}

	inputsAt := paperInputs
	if *dir != "" {
		env, err := bench.Setup(*dir, *scale, 42)
		if err != nil {
			log.Fatal(err)
		}
		defer env.Close()
		k, err := encoding.ParseKind(*encFlag)
		if err != nil {
			log.Fatal(err)
		}
		inputsAt = func(sel float64, agg bool) model.SelectionInputs {
			in, err := env.ModelInputs(k, sel, agg)
			if err != nil {
				log.Fatal(err)
			}
			return in
		}
	}

	if *calibrate {
		if *dir == "" {
			log.Fatal("-calibrate refits from executed queries and needs -dir")
		}
		db, err := matstore.Open(*dir)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		db.SetConstants(consts)
		nCust := int64(0)
		if p, err := db.Storage().Projection(tpch.CustomerProj); err == nil {
			if c, err := p.Column(tpch.ColCustkey); err == nil {
				nCust = c.TupleCount()
			}
		}
		rep, err := bench.CalibrateDB(db, bench.MixedWorkload(nCust))
		if err != nil {
			log.Fatal(err)
		}
		consts = db.Constants()
		fmt.Printf("calibrated over %d node observations: rms modeled-vs-observed error %.1fµs -> %.1fµs\n",
			rep.Observations, rep.PriorErrUS, rep.FittedErrUS)
		fmt.Printf("  prior:  BIC=%.4f TICTUP=%.4f TICCOL=%.4f FC=%.4f µs\n",
			rep.Prior.BIC, rep.Prior.TICTUP, rep.Prior.TICCOL, rep.Prior.FC)
		fmt.Printf("  fitted: BIC=%.4f TICTUP=%.4f TICCOL=%.4f FC=%.4f µs\n\n",
			rep.Fitted.BIC, rep.Fitted.TICTUP, rep.Fitted.TICCOL, rep.Fitted.FC)
	}

	kind := "selection"
	if *agg {
		kind = "aggregation"
	}
	fmt.Printf("predicted cost (ms) for the %s query, by strategy and selectivity:\n\n", kind)
	fmt.Printf("%-12s%16s%16s%16s%16s%18s\n", "selectivity",
		core.EMPipelined, core.EMParallel, core.LMPipelined, core.LMParallel, "advisor")
	for _, sel := range bench.DefaultSelectivities {
		in := inputsAt(sel, *agg)
		fmt.Printf("%-12.3f", sel)
		for _, s := range core.Strategies {
			fmt.Printf("%16.3f", consts.SelectionCost(s, in).Total()/1e3)
		}
		best, _ := consts.Advise(in)
		fmt.Printf("%18s\n", best)
	}
}

// paperInputs models the paper's scale-10 lineitem projection: 60M tuples,
// RLE shipdate and linenum with the Section 3.7 encoded sizes scaled up.
func paperInputs(sel float64, agg bool) model.SelectionInputs {
	a := model.ColumnStats{Blocks: 10, Tuples: 60_000_000, RunLen: 60_000_000 / (3 * tpch.ShipdateDays), F: 0}
	b := model.ColumnStats{Blocks: 50, Tuples: 60_000_000, RunLen: 8, F: 0}
	sfB := 1.0 - 1.0/float64(tpch.LinenumWeightSum)
	return model.SelectionInputs{
		A: a, B: b, SFA: sel, SFB: sfB,
		PosRunsA:    model.EstimatePosRuns(a, sel, true, 3),
		PosRunsB:    model.EstimatePosRuns(b, sfB, true, 3*tpch.ShipdateDays),
		Aggregating: agg,
		Groups:      sel * tpch.ShipdateDays,
	}
}
