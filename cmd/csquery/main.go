// Command csquery runs a single selection/aggregation query against a
// generated database under a chosen materialization strategy and prints the
// first rows plus execution statistics.
//
// Usage:
//
//	csquery -dir ./data -proj lineitem -out shipdate,linenum \
//	        -where 'shipdate<400,linenum<7' -strategy lm-parallel
//	csquery -dir ./data -proj lineitem -where 'shipdate<400' \
//	        -groupby shipdate -sum linenum -strategy lm-pipelined
//	csquery ... -strategy advise   # let the cost model pick
//	csquery ... -parallelism 0     # morsel-parallel across all CPUs
//	csquery ... -explain           # print the physical plan, modeled vs observed
//
// Join mode probes -proj (outer) against -join (inner) on -leftkey/-rightkey,
// with the inner side materialized per -rightstrategy; -where may carry one
// predicate over the outer join key (the paper's Section 4.3 experiment):
//
//	csquery -dir ./data -proj orders -join customer -leftkey custkey \
//	        -rightkey custkey -out shipdate -rightout nationcode \
//	        -where 'custkey<200' -rightstrategy right-singlecolumn -explain
//
// -spill-budget-kb caps the resident build side: over-budget radix
// partitions Grace-spill to temp files under the database's .spill
// directory, with results byte-identical to the in-memory build.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"matstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csquery: ")
	dir := flag.String("dir", "./data", "database directory")
	proj := flag.String("proj", "lineitem", "projection name")
	out := flag.String("out", "", "comma-separated output columns")
	where := flag.String("where", "", "comma-separated predicates, e.g. 'shipdate<400,linenum<7'")
	groupby := flag.String("groupby", "", "GROUP BY column (with -sum)")
	sum := flag.String("sum", "", "aggregated column (with -groupby)")
	aggFn := flag.String("agg", "sum", "aggregate function: sum|count|avg|min|max")
	strategy := flag.String("strategy", "lm-parallel", "em-pipelined|em-parallel|lm-pipelined|lm-parallel|advise")
	parallelism := flag.Int("parallelism", 1, "morsel-parallel workers (0 = one per CPU, 1 = serial)")
	limit := flag.Int("limit", 10, "max rows to print")
	explain := flag.Bool("explain", false, "print the physical plan with modeled vs. observed per-node stats instead of rows")
	joinProj := flag.String("join", "", "inner projection: join -proj (outer) against it")
	leftKey := flag.String("leftkey", "", "outer join key column (with -join)")
	rightKey := flag.String("rightkey", "", "inner join key column (with -join)")
	rightOut := flag.String("rightout", "", "comma-separated inner output columns (with -join)")
	rightStrategy := flag.String("rightstrategy", "right-materialized", "inner-table materialization: right-materialized|right-multicolumn|right-singlecolumn")
	advise := flag.Bool("advise", false, "join mode: let the Section 4.3 cost terms pick the inner-table strategy")
	spillKB := flag.Int64("spill-budget-kb", 0, "join mode: cap the resident build side at this many KiB, Grace-spilling over-budget partitions to temp files (0 = in-memory build)")
	flag.Parse()

	db, err := matstore.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fn, err := matstore.ParseAggFunc(*aggFn)
	if err != nil {
		log.Fatal(err)
	}
	filters, err := matstore.ParseWhere(*where)
	if err != nil {
		log.Fatal(err)
	}

	if *joinProj != "" {
		// Selection-only flags would be silently ignored in join mode;
		// reject them instead of returning surprising output.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "groupby", "sum", "agg", "strategy":
				log.Fatalf("-%s does not apply in join mode (-join)", f.Name)
			}
		})
		runJoin(db, *proj, *joinProj, *leftKey, *rightKey, *out, *rightOut,
			*rightStrategy, filters, *parallelism, *limit, *explain, *advise, *spillKB<<10)
		return
	}
	if *spillKB != 0 {
		log.Fatal("-spill-budget-kb applies only in join mode (-join)")
	}
	if *advise {
		log.Fatal("-advise applies only in join mode (-join); use -strategy advise for selections")
	}

	q := matstore.Query{GroupBy: *groupby, AggCol: *sum, Agg: fn}
	if *out != "" {
		q.Output = strings.Split(*out, ",")
	}
	q.Filters = filters
	q.Parallelism = *parallelism

	var s matstore.Strategy
	if *strategy == "advise" {
		adv, err := db.AdviseParallel(*proj, q, *parallelism)
		if err != nil {
			log.Fatal(err)
		}
		s = adv.Best
		fmt.Printf("advisor chose %v; predicted costs at parallelism=%d:\n", s, *parallelism)
		for _, st := range matstore.Strategies {
			fmt.Printf("  %-14v %s\n", st, adv.Costs[st])
		}
	} else {
		if s, err = matstore.ParseStrategy(*strategy); err != nil {
			log.Fatal(err)
		}
	}

	if *explain {
		ex, err := db.Explain(*proj, q, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(ex)
		return
	}

	res, stats, err := db.Select(*proj, q, s)
	if err != nil {
		log.Fatal(err)
	}
	printRows(res, *limit)
	fmt.Printf("\nstrategy=%v wall=%v workers=%d morsels=%d tuples_out=%d tuples_constructed=%d positions=%d chunks_skipped=%d\n",
		stats.Strategy, stats.Wall, stats.Workers, stats.Morsels, stats.TuplesOut,
		stats.TuplesConstructed, stats.PositionsMatched, stats.ChunksSkipped)
	consts := matstore.PaperConstants()
	simIO := stats.Buffer.SimulatedIO(1,
		time.Duration(consts.SEEK)*time.Microsecond,
		time.Duration(consts.READ)*time.Microsecond)
	fmt.Printf("buffer: reads=%d hits=%d seeks=%d (modelled cold-disk I/O: %v)\n",
		stats.Buffer.Reads, stats.Buffer.Hits, stats.Buffer.Seeks, simIO)
}

// runJoin executes (or explains) the join mode: outer ⋈ inner on the key
// columns, inner side materialized per the right strategy (or, with advise,
// per the cost model's Figure 13 pick).
func runJoin(db *matstore.DB, outer, inner, leftKey, rightKey, out, rightOut, rightStrategy string, filters []matstore.Filter, parallelism, limit int, explain, advise bool, spillBudget int64) {
	if leftKey == "" || rightKey == "" {
		log.Fatal("join mode needs -leftkey and -rightkey")
	}
	var rs matstore.RightStrategy
	var err error
	if !advise {
		if rs, err = matstore.ParseRightStrategy(rightStrategy); err != nil {
			log.Fatal(err)
		}
	}
	q := matstore.JoinQuery{
		LeftKey:          leftKey,
		LeftPred:         matstore.MatchAll,
		RightKey:         rightKey,
		Parallelism:      parallelism,
		SpillBudgetBytes: spillBudget,
	}
	if out != "" {
		q.LeftOutput = strings.Split(out, ",")
	}
	if rightOut != "" {
		q.RightOutput = strings.Split(rightOut, ",")
	}
	switch len(filters) {
	case 0:
	case 1:
		if filters[0].Col != leftKey {
			log.Fatalf("join -where must predicate the outer join key %q, got %q", leftKey, filters[0].Col)
		}
		q.LeftPred = filters[0].Pred
	default:
		log.Fatal("join mode accepts at most one -where predicate (over the outer join key)")
	}

	if advise {
		adv, err := db.AdviseJoin(outer, inner, q)
		if err != nil {
			log.Fatal(err)
		}
		rs = adv.Best
		fmt.Printf("advisor chose %v; predicted join costs:\n", rs)
		for _, s := range matstore.JoinStrategies {
			fmt.Printf("  %-20v %s\n", s, adv.Costs[s])
		}
	}

	if explain {
		ex, err := db.ExplainJoin(outer, inner, q, rs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(ex)
		return
	}
	res, stats, err := db.Join(outer, inner, q, rs)
	if err != nil {
		log.Fatal(err)
	}
	printRows(res, limit)
	fmt.Printf("\nouter=%v right=%v wall=%v workers=%d morsels=%d partitions=%d build_workers=%d\n",
		stats.Strategy, stats.RightStrategy, stats.Wall, stats.Workers, stats.Morsels,
		stats.Join.Partitions, stats.Join.BuildWorkers)
	fmt.Printf("probes=%d tuples_out=%d build_tuples=%d deferred_fetches=%d\n",
		stats.Join.LeftProbes, stats.TuplesOut, stats.Join.RightBuildTuples, stats.Join.DeferredFetches)
	if stats.Join.Spilled {
		fmt.Printf("spill: partitions=%d/%d bytes=%d probes=%d\n",
			stats.Join.SpilledParts, stats.Join.Partitions, stats.Join.SpillBytes, stats.Join.SpillProbes)
	}
}

// printRows prints the result header plus up to limit rows.
func printRows(res *matstore.Result, limit int) {
	fmt.Println(strings.Join(res.Columns, "\t"))
	n := res.NumRows()
	shown := n
	if shown > limit {
		shown = limit
	}
	for i := 0; i < shown; i++ {
		row := res.Row(i)
		parts := make([]string, len(row))
		for c, v := range row {
			parts[c] = strconv.FormatInt(v, 10)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	if shown < n {
		fmt.Printf("... (%d rows total)\n", n)
	}
}
