// Command csquery runs a single selection/aggregation query against a
// generated database under a chosen materialization strategy and prints the
// first rows plus execution statistics.
//
// Usage:
//
//	csquery -dir ./data -proj lineitem -out shipdate,linenum \
//	        -where 'shipdate<400,linenum<7' -strategy lm-parallel
//	csquery -dir ./data -proj lineitem -where 'shipdate<400' \
//	        -groupby shipdate -sum linenum -strategy lm-pipelined
//	csquery ... -strategy advise   # let the cost model pick
//	csquery ... -parallelism 0     # morsel-parallel across all CPUs
//	csquery ... -explain           # print the physical plan, modeled vs observed
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"matstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csquery: ")
	dir := flag.String("dir", "./data", "database directory")
	proj := flag.String("proj", "lineitem", "projection name")
	out := flag.String("out", "", "comma-separated output columns")
	where := flag.String("where", "", "comma-separated predicates, e.g. 'shipdate<400,linenum<7'")
	groupby := flag.String("groupby", "", "GROUP BY column (with -sum)")
	sum := flag.String("sum", "", "aggregated column (with -groupby)")
	aggFn := flag.String("agg", "sum", "aggregate function: sum|count|avg|min|max")
	strategy := flag.String("strategy", "lm-parallel", "em-pipelined|em-parallel|lm-pipelined|lm-parallel|advise")
	parallelism := flag.Int("parallelism", 1, "morsel-parallel workers (0 = one per CPU, 1 = serial)")
	limit := flag.Int("limit", 10, "max rows to print")
	explain := flag.Bool("explain", false, "print the physical plan with modeled vs. observed per-node stats instead of rows")
	flag.Parse()

	db, err := matstore.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fn, err := matstore.ParseAggFunc(*aggFn)
	if err != nil {
		log.Fatal(err)
	}
	q := matstore.Query{GroupBy: *groupby, AggCol: *sum, Agg: fn}
	if *out != "" {
		q.Output = strings.Split(*out, ",")
	}
	filters, err := parseWhere(*where)
	if err != nil {
		log.Fatal(err)
	}
	q.Filters = filters
	q.Parallelism = *parallelism

	var s matstore.Strategy
	if *strategy == "advise" {
		adv, err := db.AdviseParallel(*proj, q, *parallelism)
		if err != nil {
			log.Fatal(err)
		}
		s = adv.Best
		fmt.Printf("advisor chose %v; predicted costs at parallelism=%d:\n", s, *parallelism)
		for _, st := range matstore.Strategies {
			fmt.Printf("  %-14v %s\n", st, adv.Costs[st])
		}
	} else {
		if s, err = matstore.ParseStrategy(*strategy); err != nil {
			log.Fatal(err)
		}
	}

	if *explain {
		ex, err := db.Explain(*proj, q, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(ex)
		return
	}

	res, stats, err := db.Select(*proj, q, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Join(res.Columns, "\t"))
	n := res.NumRows()
	shown := n
	if shown > *limit {
		shown = *limit
	}
	for i := 0; i < shown; i++ {
		row := res.Row(i)
		parts := make([]string, len(row))
		for c, v := range row {
			parts[c] = strconv.FormatInt(v, 10)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	if shown < n {
		fmt.Printf("... (%d rows total)\n", n)
	}
	fmt.Printf("\nstrategy=%v wall=%v workers=%d morsels=%d tuples_out=%d tuples_constructed=%d positions=%d chunks_skipped=%d\n",
		stats.Strategy, stats.Wall, stats.Workers, stats.Morsels, stats.TuplesOut,
		stats.TuplesConstructed, stats.PositionsMatched, stats.ChunksSkipped)
	consts := matstore.PaperConstants()
	simIO := stats.Buffer.SimulatedIO(1,
		time.Duration(consts.SEEK)*time.Microsecond,
		time.Duration(consts.READ)*time.Microsecond)
	fmt.Printf("buffer: reads=%d hits=%d seeks=%d (modelled cold-disk I/O: %v)\n",
		stats.Buffer.Reads, stats.Buffer.Hits, stats.Buffer.Seeks, simIO)
}

// parseWhere parses 'col<op>value' predicates separated by commas.
// Supported operators: <, <=, =, !=, >=, >.
func parseWhere(s string) ([]matstore.Filter, error) {
	if s == "" {
		return nil, nil
	}
	var out []matstore.Filter
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		f, err := parsePredicate(part)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parsePredicate(s string) (matstore.Filter, error) {
	// Two-character operators first.
	for _, op := range []string{"<=", ">=", "!=", "<", ">", "="} {
		i := strings.Index(s, op)
		if i <= 0 {
			continue
		}
		col := strings.TrimSpace(s[:i])
		val, err := strconv.ParseInt(strings.TrimSpace(s[i+len(op):]), 10, 64)
		if err != nil {
			return matstore.Filter{}, fmt.Errorf("predicate %q: %v", s, err)
		}
		var p matstore.Predicate
		switch op {
		case "<":
			p = matstore.LessThan(val)
		case "<=":
			p = matstore.AtMost(val)
		case "=":
			p = matstore.Equals(val)
		case "!=":
			p = matstore.NotEquals(val)
		case ">=":
			p = matstore.AtLeast(val)
		case ">":
			p = matstore.GreaterThan(val)
		}
		return matstore.Filter{Col: col, Pred: p}, nil
	}
	return matstore.Filter{}, fmt.Errorf("cannot parse predicate %q", s)
}
