// Command csserve serves a generated database over HTTP: the concurrent
// query service of internal/service (admission-controlled sessions, shared
// join-build and plan caches, fair-share worker derating) behind JSON
// endpoints.
//
// Usage:
//
//	csserve -dir ./data -addr :8088 -worker-budget 4 -max-concurrent 8
//
//	curl -s localhost:8088/query -d '{"projection":"lineitem",
//	     "output":["shipdate","linenum"], "where":["shipdate<400"],
//	     "strategy":"lm-parallel"}'
//	curl -s localhost:8088/join -d '{"left":"orders","right":"customer",
//	     "leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],
//	     "rightout":["nationcode"],"where":["custkey<200"]}'
//	curl -s localhost:8088/explain -d '{...}'     # plan tree, modeled vs observed
//	curl -s localhost:8088/stats                  # admission + cache counters
//
// Client mode (for scripts and CI environments without curl): -get URL
// performs a GET, -post URL with -data BODY performs a POST; either prints
// the response body and exits.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"matstore"
	"matstore/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csserve: ")
	dir := flag.String("dir", "./data", "database directory")
	addr := flag.String("addr", ":8088", "listen address")
	budget := flag.Int("worker-budget", 0, "global worker budget shared by in-flight queries (0 = one per CPU)")
	maxConc := flag.Int("max-concurrent", 0, "admission limit; requests past it queue (0 = 2x budget)")
	buildMB := flag.Int64("build-cache-mb", 0, "join-build cache budget in MiB (0 = 64, negative = disabled)")
	planEntries := flag.Int("plan-cache", 0, "plan cache entries (0 = 256, negative = disabled)")
	get := flag.String("get", "", "client mode: GET this URL, print the body, exit")
	post := flag.String("post", "", "client mode: POST -data to this URL, print the body, exit")
	data := flag.String("data", "", "client mode: POST body for -post")
	flag.Parse()

	if *get != "" || *post != "" {
		if err := client(*get, *post, *data); err != nil {
			log.Fatal(err)
		}
		return
	}

	db, err := matstore.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	buildBytes := *buildMB
	if buildBytes > 0 {
		buildBytes <<= 20
	}
	srv := service.New(db, service.Config{
		MaxConcurrent:    *maxConc,
		WorkerBudget:     *budget,
		BuildCacheBytes:  buildBytes,
		PlanCacheEntries: *planEntries,
	})
	cfg := srv.Config()
	log.Printf("serving %s on %s (worker budget %d, admission limit %d, projections %v)",
		*dir, *addr, cfg.WorkerBudget, cfg.MaxConcurrent, db.Projections())
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// client is the curl-free HTTP helper for scripts: one GET or POST, body to
// stdout, non-2xx status as an error.
func client(get, post, data string) error {
	var (
		resp *http.Response
		err  error
	)
	if get != "" {
		resp, err = http.Get(get)
	} else {
		resp, err = http.Post(post, "application/json", strings.NewReader(data))
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}
