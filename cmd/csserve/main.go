// Command csserve serves a generated database over HTTP: the concurrent
// query service of internal/service (admission-controlled sessions with
// cost-sized worker grants, a result cache in front of the shared join-build
// and plan caches) behind JSON endpoints. SIGINT/SIGTERM shut down
// gracefully, draining in-flight sessions.
//
// Usage:
//
//	csserve -dir ./data -addr :8088 -worker-budget 4 -max-concurrent 8 -calibrate
//
//	curl -s localhost:8088/query -d '{"projection":"lineitem",
//	     "output":["shipdate","linenum"], "where":["shipdate<400"],
//	     "strategy":"lm-parallel"}'
//	curl -s localhost:8088/join -d '{"left":"orders","right":"customer",
//	     "leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],
//	     "rightout":["nationcode"],"where":["custkey<200"]}'
//	curl -s localhost:8088/explain -d '{...}'     # plan tree, modeled vs observed
//	curl -s localhost:8088/stats                  # admission + cache counters
//
// Client mode (for scripts and CI environments without curl): -get URL
// performs a GET, -post URL with -data BODY performs a POST; either prints
// the response body and exits. A 503 with a Retry-After header (the
// service's shed signal) and a 502 (a coordinator's shard transport fault)
// are retried with the same bounded backoff (-retries), counted in
// retries_503/retries_502 stats printed to stderr.
//
// Coordinator mode serves a csgen -shards layout by scatter-gather over
// shard engines instead of executing locally:
//
//	csgen   -dir ./data -shards 2
//	csserve -dir ./data/shard-000 -addr :9101 &
//	csserve -dir ./data/shard-001 -addr :9102 &
//	csserve -coordinator -dir ./data -addr :8088 \
//	        -shard-endpoints http://localhost:9101,http://localhost:9102
//
// The coordinator loads only shards.json and per-shard meta.json, fans
// /query, /join and /explain out over the endpoints in parallel, and merges
// partials with the executor's deterministic merge contract, so responses
// are byte-identical to a single engine over the un-sharded directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"matstore"
	"matstore/internal/bench"
	"matstore/internal/faults"
	"matstore/internal/obs"
	"matstore/internal/service"
)

func main() {
	dir := flag.String("dir", "./data", "database directory")
	addr := flag.String("addr", ":8088", "listen address")
	budget := flag.Int("worker-budget", 0, "global worker budget shared by in-flight queries (0 = one per CPU)")
	maxConc := flag.Int("max-concurrent", 0, "admission limit; requests past it queue (0 = 2x budget)")
	buildMB := flag.Int64("build-cache-mb", 0, "join-build cache budget in MiB (0 = 64, negative = disabled)")
	planEntries := flag.Int("plan-cache", 0, "plan cache entries (0 = 256, negative = disabled)")
	resultMB := flag.Int64("result-cache-mb", 0, "result cache budget in MiB (0 = 32, negative = disabled)")
	sliceUS := flag.Float64("grant-slice-us", 0, "modeled µs one worker absorbs when sizing grants (0 = 100, negative = fair-share only)")
	memoryMB := flag.Int64("memory-budget-mb", 0, "byte-budget memory governor in MiB: joins reserve predicted build bytes, spill to disk when over budget, shed with 503 under pile-up (0 = governance off)")
	spillDir := flag.String("spill-dir", "", "directory for spill temp files (default: .spill under -dir)")
	faultSpec := flag.String("faults", "", "debug: arm fault-injection sites, e.g. 'spill.write=error:3,spill.read=slow' (sites: spill.create spill.write spill.read cache.demote cache.rehydrate mem.reserve; modes: error short slow[:afterN])")
	calibrate := flag.Bool("calibrate", false, "refit the cost-model constants to this machine from the mixed workload before serving")
	minCostUS := flag.Float64("result-cache-min-cost-us", 0, "only cache results whose modeled cost exceeds this many µs (0 = cache everything; cheap queries re-execute faster than they amortize cache space)")
	coordinator := flag.Bool("coordinator", false, "scatter-gather mode: -dir is a csgen -shards root; fan /query, /join, /explain out over -shard-endpoints and merge")
	shardEndpoints := flag.String("shard-endpoints", "", "coordinator mode: comma-separated shard base URLs, one per shard in shard order")
	shardTimeoutMS := flag.Int("shard-timeout-ms", 0, "coordinator mode: per-shard fan-out timeout in milliseconds (0 = 30000)")
	get := flag.String("get", "", "client mode: GET this URL, print the body, exit")
	post := flag.String("post", "", "client mode: POST -data to this URL, print the body, exit")
	data := flag.String("data", "", "client mode: POST body for -post")
	retries := flag.Int("retries", 5, "client mode: max retries after a transient 503 (Retry-After) or 502 (shard transport fault)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060) on a separate mux, never on the serving port (\"\" = disabled)")
	slowQueryUS := flag.Int64("slow-query-us", 0, "log requests whose wall time reaches this many µs as structured slow-query records (0 = disabled)")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr).With("component", "csserve", "version", obs.Version)

	if *get != "" || *post != "" {
		if err := client(*get, *post, *data, *retries); err != nil {
			fatal(logger, "client request failed", err)
		}
		return
	}

	startPprof(*pprofAddr, logger)

	if *coordinator {
		if err := serveCoordinator(*dir, *addr, *shardEndpoints, *shardTimeoutMS, *slowQueryUS, logger); err != nil {
			fatal(logger, "coordinator failed", err)
		}
		return
	}

	db, err := matstore.Open(*dir)
	if err != nil {
		fatal(logger, "open failed", err)
	}
	defer db.Close()

	if *calibrate {
		rep, err := bench.CalibrateDB(db, bench.MixedWorkload(customerRows(db)))
		if err != nil {
			fatal(logger, "calibrate failed", err)
		}
		logger.Info("calibrated", "observations", rep.Observations,
			"prior_rms_us", rep.PriorErrUS, "fitted_rms_us", rep.FittedErrUS,
			"bic", rep.Fitted.BIC, "tictup", rep.Fitted.TICTUP,
			"ticcol", rep.Fitted.TICCOL, "fc", rep.Fitted.FC)
	}

	if *faultSpec != "" {
		if err := faults.Parse(*faultSpec); err != nil {
			fatal(logger, "bad -faults spec", err)
		}
		logger.Info("fault injection armed", "spec", *faultSpec)
	}

	buildBytes := *buildMB
	if buildBytes > 0 {
		buildBytes <<= 20
	}
	resultBytes := *resultMB
	if resultBytes > 0 {
		resultBytes <<= 20
	}
	memoryBytes := *memoryMB
	if memoryBytes > 0 {
		memoryBytes <<= 20
	}
	srv := service.New(db, service.Config{
		MaxConcurrent:        *maxConc,
		WorkerBudget:         *budget,
		BuildCacheBytes:      buildBytes,
		PlanCacheEntries:     *planEntries,
		ResultCacheBytes:     resultBytes,
		GrantSliceMicros:     *sliceUS,
		MemoryBudgetBytes:    memoryBytes,
		SpillDir:             *spillDir,
		ResultCacheMinCostUS: *minCostUS,
		Logger:               logger,
		SlowQueryMicros:      *slowQueryUS,
	})
	cfg := srv.Config()
	logger.Info("serving", "dir", *dir, "addr", *addr,
		"worker_budget", cfg.WorkerBudget, "admission_limit", cfg.MaxConcurrent,
		"memory_budget_mb", *memoryMB, "projections", db.Projections())

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(logger, "serve failed", err)
	case sig := <-sigCh:
		logger.Info("draining in-flight sessions", "signal", sig.String())
		srv.MarkDraining() // /readyz flips to 503 before connections close
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fatal(logger, "shutdown failed", err)
		}
		st := srv.Stats()
		logger.Info("drained", "queries", st.Queries,
			"admitted", st.Admission.Admitted, "result_cache_hits", st.ResultCache.Hits)
	}
}

// fatal logs a structured error line and exits non-zero.
func fatal(logger *obs.Logger, msg string, err error) {
	logger.Error(msg, "error", err.Error())
	os.Exit(1)
}

// startPprof serves net/http/pprof on its own mux and listener — profiling
// endpoints are explicitly registered here and never mounted on the serving
// port, so exposing the query API does not expose profiles.
func startPprof(addr string, logger *obs.Logger) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("pprof server exited", "error", err.Error())
		}
	}()
}

// customerRows reads the customer cardinality for the workload's join
// predicate scaling (falls back to the service-test default when the
// projection is missing).
func customerRows(db *matstore.DB) int64 {
	if p, err := db.Storage().Projection("customer"); err == nil && len(p.Meta.Columns) > 0 {
		if c, err := p.Column(p.Meta.Columns[0].Name); err == nil {
			return c.TupleCount()
		}
	}
	return 300
}

// serveCoordinator runs the scatter-gather front-end over shard engines:
// metadata-only startup (shards.json + per-shard meta.json), then the same
// endpoint surface and graceful-drain behavior as a shard engine.
func serveCoordinator(dir, addr, endpoints string, timeoutMS int, slowQueryUS int64, logger *obs.Logger) error {
	if endpoints == "" {
		return fmt.Errorf("-coordinator requires -shard-endpoints")
	}
	var eps []string
	for _, e := range strings.Split(endpoints, ",") {
		if e = strings.TrimSpace(e); e != "" {
			eps = append(eps, strings.TrimRight(e, "/"))
		}
	}
	coord, err := service.NewCoordinator(dir, eps, service.CoordinatorConfig{
		ShardTimeout:    time.Duration(timeoutMS) * time.Millisecond,
		Logger:          logger,
		SlowQueryMicros: slowQueryUS,
	})
	if err != nil {
		return err
	}
	logger.Info("coordinating", "dir", dir, "addr", addr,
		"shards", len(eps), "endpoints", eps, "coordinator", coord.String())

	hs := &http.Server{
		Addr:              addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("draining in-flight requests", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}

// client is the curl-free HTTP helper for scripts: one GET or POST, body to
// stdout, non-2xx status as an error. Two transient statuses retry up to
// retries times with the same bounded backoff: a 503 carrying a Retry-After
// header (the service's load-shed backpressure signal, honoring the
// advertised delay capped at 5s per attempt) and a 502 (the coordinator's
// shard-transport-fault signal — the shard process may be mid-restart, so a
// brief retry rides out the blip). Retries are counted per status and
// reported to stderr as retries_502/retries_503 when any occurred.
func client(get, post, data string, retries int) error {
	do := func() (*http.Response, error) {
		if get != "" {
			return http.Get(get)
		}
		return http.Post(post, "application/json", strings.NewReader(data))
	}
	retries502, retries503 := 0, 0
	defer func() {
		if retries502+retries503 > 0 {
			fmt.Fprintf(os.Stderr, "csserve: retries_502=%d retries_503=%d\n", retries502, retries503)
		}
	}()
	for attempt := 0; ; attempt++ {
		resp, err := do()
		if err != nil {
			return err
		}
		transient := resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusBadGateway
		if transient && attempt < retries {
			delay := retryAfterDelay(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusBadGateway {
				retries502++
			} else {
				retries503++
			}
			fmt.Fprintf(os.Stderr, "csserve: HTTP %d, retrying in %s (%d/%d)\n",
				resp.StatusCode, delay, attempt+1, retries)
			time.Sleep(delay)
			continue
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return nil
	}
}

// retryAfterDelay converts a Retry-After header value into a bounded sleep:
// the advertised seconds clamped to [100ms, 5s], or 250ms when absent.
func retryAfterDelay(h string) time.Duration {
	d := 250 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil {
		d = time.Duration(secs) * time.Second
	}
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
