// Cross-strategy differential suite: randomized selection/aggregation
// queries over generated TPC-H-shaped data must return identical results
// under every materialization strategy × parallelism level. This is the
// paper's core invariant — materialization strategy and worker count are
// pure execution choices — locked in as a property test.
package matstore_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"matstore"
	"matstore/internal/core"
	"matstore/internal/pred"
	"matstore/internal/tpch"
)

// diffDomains describes the generated lineitem columns a random query may
// touch: name, min value, max value (inclusive). linenum_bv is excluded
// from filters (the C-Store executor does not position-filter bit-vector
// data in pipelined LM plans) but allowed as an output/aggregate column.
var diffFilterCols = []struct {
	name     string
	min, max int64
}{
	{tpch.ColShipdate, 0, tpch.ShipdateDays - 1},
	{tpch.ColLinenum, 1, tpch.LinenumMax},
	{tpch.ColLinenumRLE, 1, tpch.LinenumMax},
	{tpch.ColQuantity, 1, tpch.QuantityMax},
	{tpch.ColRetflag, 0, 2},
}

var diffOutputCols = []string{
	tpch.ColShipdate, tpch.ColLinenum, tpch.ColLinenumRLE,
	tpch.ColLinenumBV, tpch.ColQuantity, tpch.ColRetflag,
}

// randPredicate draws a predicate whose accepted fraction of [min, max]
// spans the whole selectivity range, including empty and match-all.
func randPredicate(rng *rand.Rand, min, max int64) matstore.Predicate {
	v := func() int64 { return min + rng.Int63n(max-min+1) }
	switch rng.Intn(8) {
	case 0:
		return matstore.MatchAll
	case 1:
		return matstore.LessThan(v())
	case 2:
		return matstore.AtMost(v())
	case 3:
		return matstore.Equals(v())
	case 4:
		return matstore.NotEquals(v())
	case 5:
		return matstore.AtLeast(v())
	case 6:
		return matstore.GreaterThan(v())
	default:
		a, b := v(), v()
		if b < a {
			a, b = b, a
		}
		return matstore.InRange(a, b+1)
	}
}

// randQuery draws a random selection or aggregation over lineitem.
func randQuery(rng *rand.Rand) matstore.Query {
	var q matstore.Query
	// 0–3 filters over distinct columns, in random order.
	perm := rng.Perm(len(diffFilterCols))
	for _, ci := range perm[:rng.Intn(4)] {
		c := diffFilterCols[ci]
		q.Filters = append(q.Filters, matstore.Filter{
			Col: c.name, Pred: randPredicate(rng, c.min, c.max),
		})
	}
	if rng.Intn(3) == 0 {
		// Aggregation: random group key, aggregate column and function.
		q.GroupBy = []string{tpch.ColRetflag, tpch.ColLinenum, tpch.ColShipdate}[rng.Intn(3)]
		q.AggCol = diffOutputCols[rng.Intn(len(diffOutputCols))]
		q.Agg = []matstore.AggFunc{
			matstore.Sum, matstore.Count, matstore.Avg, matstore.Min, matstore.Max,
		}[rng.Intn(5)]
		return q
	}
	// Selection: 1–3 random output columns (repeats allowed — the merge
	// must keep arity straight).
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		q.Output = append(q.Output, diffOutputCols[rng.Intn(len(diffOutputCols))])
	}
	return q
}

// sortedRows canonicalizes a result as lexicographically sorted row tuples.
func sortedRows(res *matstore.Result) [][]int64 {
	out := make([][]int64, res.NumRows())
	for i := range out {
		out[i] = res.Row(i)
	}
	sort.Slice(out, func(i, j int) bool {
		for c := range out[i] {
			if out[i][c] != out[j][c] {
				return out[i][c] < out[j][c]
			}
		}
		return false
	})
	return out
}

// diffDB opens the shared test dataset with a small chunk size so 12k rows
// split into many chunks and parallel runs use many morsels.
func diffDB(t *testing.T) *matstore.DB {
	t.Helper()
	return open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024}})
}

// TestDifferentialStrategiesAndParallelism is the cross-strategy
// differential suite: every random query must produce identical sorted
// results under all four strategies × parallelism ∈ {1, 4}, and
// byte-identical (order included) results across parallelism levels within
// a strategy.
func TestDifferentialStrategiesAndParallelism(t *testing.T) {
	db := diffDB(t)
	rng := rand.New(rand.NewSource(20260726))
	const numQueries = 40
	for qi := 0; qi < numQueries; qi++ {
		q := randQuery(rng)
		t.Run(fmt.Sprintf("query%02d", qi), func(t *testing.T) {
			type runKey struct {
				s   matstore.Strategy
				par int
			}
			var refSorted [][]int64
			var refKey runKey
			exact := map[matstore.Strategy]*matstore.Result{}
			for _, s := range matstore.Strategies {
				for _, par := range []int{1, 4} {
					q.Parallelism = par
					res, _, err := db.Select(tpch.LineitemProj, q, s)
					if err != nil {
						t.Fatalf("%v/par=%d: %v (query %+v)", s, par, err, q)
					}
					rowsSorted := sortedRows(res)
					if refSorted == nil {
						refSorted, refKey = rowsSorted, runKey{s, par}
					} else if !reflect.DeepEqual(rowsSorted, refSorted) {
						t.Errorf("%v/par=%d disagrees with %v/par=%d on query %+v",
							s, par, refKey.s, refKey.par, q)
					}
					// Within a strategy, parallel output order must equal
					// serial output order exactly (block-order merge).
					if prev, ok := exact[s]; ok {
						if !reflect.DeepEqual(prev.Cols, res.Cols) {
							t.Errorf("%v: parallel row order differs from serial on query %+v", s, q)
						}
					} else {
						exact[s] = res
					}
				}
			}
		})
	}
}

// TestDifferentialParallelismRepeatStable runs one parallel query 10 times:
// output must be byte-identical every run (deterministic merge order).
func TestDifferentialParallelismRepeatStable(t *testing.T) {
	db := diffDB(t)
	q := matstore.Query{
		Output: []string{tpch.ColShipdate, tpch.ColLinenum, tpch.ColQuantity},
		Filters: []matstore.Filter{
			{Col: tpch.ColShipdate, Pred: matstore.LessThan(1200)},
			{Col: tpch.ColQuantity, Pred: matstore.LessThan(40)},
		},
		Parallelism: 4,
	}
	for _, s := range matstore.Strategies {
		var first *matstore.Result
		for run := 0; run < 10; run++ {
			res, _, err := db.Select(tpch.LineitemProj, q, s)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = res
				continue
			}
			if !reflect.DeepEqual(res.Cols, first.Cols) || !reflect.DeepEqual(res.Columns, first.Columns) {
				t.Fatalf("%v: run %d output differs", s, run)
			}
		}
	}
}

// TestDifferentialJoinParallelism checks the three join inner-table
// strategies × parallelism levels agree.
func TestDifferentialJoinParallelism(t *testing.T) {
	db := diffDB(t)
	q := matstore.JoinQuery{
		LeftKey:     "custkey",
		LeftPred:    matstore.LessThan(200),
		LeftOutput:  []string{"shipdate"},
		RightKey:    "custkey",
		RightOutput: []string{"nationcode"},
	}
	var ref [][]int64
	for _, rs := range []matstore.RightStrategy{
		matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
	} {
		for _, par := range []int{1, 4} {
			q.Parallelism = par
			res, _, err := db.Join("orders", "customer", q, rs)
			if err != nil {
				t.Fatalf("%v/par=%d: %v", rs, par, err)
			}
			rowsSorted := sortedRows(res)
			if ref == nil {
				ref = rowsSorted
				if len(ref) == 0 {
					t.Fatal("join reference result empty")
				}
			} else if !reflect.DeepEqual(rowsSorted, ref) {
				t.Errorf("%v/par=%d join result disagrees", rs, par)
			}
		}
	}
}

// TestDifferentialOpSelectivitySweep is the end-to-end acceptance grid for
// the compiled scan/gather kernels: every pred.Op at selectivities spanning
// {0, ~0.01, ~0.5, ~0.99, 1}, under all four strategies × parallelism
// {1, 4}. EM-parallel runs the retained scalar SPC loop while the other
// strategies run the compiled kernels and batched gathers, so agreement here
// checks compiled-vs-scalar equivalence through whole query plans (filter →
// position set → gather → merge), not just per-operator.
func TestDifferentialOpSelectivitySweep(t *testing.T) {
	db := diffDB(t)
	sels := []float64{0, 0.01, 0.5, 0.99, 1}
	for _, tc := range []struct {
		name  string
		preds func(sel float64) matstore.Predicate
	}{
		{"all", func(float64) matstore.Predicate { return matstore.MatchAll }},
		{"none", func(float64) matstore.Predicate { return matstore.Predicate{Op: pred.None} }},
		{"lt", func(s float64) matstore.Predicate { return matstore.LessThan(tpch.ShipdateForSelectivity(s)) }},
		{"le", func(s float64) matstore.Predicate { return matstore.AtMost(tpch.ShipdateForSelectivity(s) - 1) }},
		{"eq", func(s float64) matstore.Predicate { return matstore.Equals(tpch.ShipdateForSelectivity(s)) }},
		{"ne", func(s float64) matstore.Predicate { return matstore.NotEquals(tpch.ShipdateForSelectivity(s)) }},
		{"ge", func(s float64) matstore.Predicate { return matstore.AtLeast(tpch.ShipdateForSelectivity(1 - s)) }},
		{"gt", func(s float64) matstore.Predicate { return matstore.GreaterThan(tpch.ShipdateForSelectivity(1-s) - 1) }},
		{"between", func(s float64) matstore.Predicate {
			lo := tpch.ShipdateForSelectivity((1 - s) / 2)
			hi := tpch.ShipdateForSelectivity((1 + s) / 2)
			return matstore.InRange(lo, hi)
		}},
	} {
		for _, sel := range sels {
			q := matstore.Query{
				// Outputs cover all three encodings, so materialization runs
				// the plain, RLE and bit-vector gather kernels.
				Output: []string{tpch.ColShipdate, tpch.ColLinenumRLE, tpch.ColLinenumBV, tpch.ColQuantity},
				Filters: []matstore.Filter{
					{Col: tpch.ColShipdate, Pred: tc.preds(sel)},
					{Col: tpch.ColQuantity, Pred: matstore.LessThan(45)},
				},
			}
			t.Run(fmt.Sprintf("%s/sel=%v", tc.name, sel), func(t *testing.T) {
				var ref [][]int64
				var refName string
				for _, s := range matstore.Strategies {
					for _, par := range []int{1, 4} {
						q.Parallelism = par
						res, _, err := db.Select(tpch.LineitemProj, q, s)
						if err != nil {
							t.Fatalf("%v/par=%d: %v", s, par, err)
						}
						rowsSorted := sortedRows(res)
						if ref == nil {
							ref, refName = rowsSorted, fmt.Sprintf("%v/par=%d", s, par)
						} else if !reflect.DeepEqual(rowsSorted, ref) {
							t.Errorf("%v/par=%d disagrees with %s", s, par, refName)
						}
					}
				}
			})
		}
	}
}

// TestDifferentialJoinSelectivitySweep sweeps the outer predicate across the
// selectivity grid for all three inner-table strategies: at every point the
// single-column strategy's batched deferred fetch (dense and sparse shapes,
// including the empty-pending case) must agree with the materialized and
// multi-column strategies.
func TestDifferentialJoinSelectivitySweep(t *testing.T) {
	db := diffDB(t)
	for _, sel := range []float64{0, 0.01, 0.5, 0.99, 1} {
		q := matstore.JoinQuery{
			LeftKey:     "custkey",
			LeftPred:    matstore.LessThan(tpch.CustkeyForSelectivity(sel, 1500)),
			LeftOutput:  []string{"shipdate"},
			RightKey:    "custkey",
			RightOutput: []string{"nationcode"},
		}
		var ref [][]int64
		for _, rs := range []matstore.RightStrategy{
			matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
		} {
			for _, par := range []int{1, 4} {
				q.Parallelism = par
				res, _, err := db.Join("orders", "customer", q, rs)
				if err != nil {
					t.Fatalf("sel=%v %v/par=%d: %v", sel, rs, par, err)
				}
				rowsSorted := sortedRows(res)
				if ref == nil {
					ref = rowsSorted
				} else if !reflect.DeepEqual(rowsSorted, ref) {
					t.Errorf("sel=%v %v/par=%d join result disagrees", sel, rs, par)
				}
			}
		}
	}
}

// TestDifferentialJoinRadixBuild pins the radix-partitioned parallel hash
// build byte-identical (row order included) to the retained serial-build
// reference, sweeping the partition count (1, 2, 8, 64 — and 0, the
// worker-derived default) across all three inner-table strategies, worker
// counts and outer selectivities.
func TestDifferentialJoinRadixBuild(t *testing.T) {
	serialDB := open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024, SerialJoinBuild: true}})
	partitionDBs := map[int]*matstore.DB{}
	for _, p := range []int{0, 1, 2, 8, 64} {
		partitionDBs[p] = open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024, JoinPartitions: p}})
	}
	for _, sel := range []float64{0, 0.1, 0.9} {
		q := matstore.JoinQuery{
			LeftKey:     "custkey",
			LeftPred:    matstore.LessThan(tpch.CustkeyForSelectivity(sel, 1500)),
			LeftOutput:  []string{"shipdate"},
			RightKey:    "custkey",
			RightOutput: []string{"nationcode"},
			Parallelism: 1,
		}
		for _, rs := range []matstore.RightStrategy{
			matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
		} {
			ref, _, err := serialDB.Join("orders", "customer", q, rs)
			if err != nil {
				t.Fatal(err)
			}
			for p, db := range partitionDBs {
				for _, par := range []int{1, 4} {
					q.Parallelism = par
					res, stats, err := db.Join("orders", "customer", q, rs)
					if err != nil {
						t.Fatalf("sel=%v %v/p=%d/par=%d: %v", sel, rs, p, par, err)
					}
					if !reflect.DeepEqual(res.Cols, ref.Cols) {
						t.Errorf("sel=%v %v/p=%d/par=%d: radix result not byte-identical to serial build",
							sel, rs, p, par)
					}
					if p > 0 && stats.Join.Partitions != p {
						t.Errorf("sel=%v %v/p=%d: reported partitions = %d", sel, rs, p, stats.Join.Partitions)
					}
				}
			}
		}
	}
}

// TestDifferentialFusedScans is the acceptance grid for multi-predicate
// fusion: queries whose consecutive filters hit the same column — the shape
// the planner fuses into one k-predicate scan pass — must return identical
// results with fusion enabled (default) and disabled (one scan node per
// predicate, the reference path), across conjunction shapes × filter
// encodings × selectivities × all four strategies × parallelism {1, 4}.
func TestDifferentialFusedScans(t *testing.T) {
	fused := diffDB(t)
	unfused := open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024, DisableFusion: true}})
	conjs := []struct {
		name  string
		preds func(lo, hi int64) []matstore.Predicate
	}{
		{"ge-lt", func(lo, hi int64) []matstore.Predicate {
			return []matstore.Predicate{matstore.AtLeast(lo), matstore.LessThan(hi)}
		}},
		{"gt-le", func(lo, hi int64) []matstore.Predicate {
			return []matstore.Predicate{matstore.GreaterThan(lo - 1), matstore.AtMost(hi - 1)}
		}},
		{"ge-lt-ne", func(lo, hi int64) []matstore.Predicate {
			return []matstore.Predicate{matstore.AtLeast(lo), matstore.LessThan(hi), matstore.NotEquals((lo + hi) / 2)}
		}},
		{"between-ne", func(lo, hi int64) []matstore.Predicate {
			return []matstore.Predicate{matstore.InRange(lo, hi), matstore.NotEquals(lo)}
		}},
		{"contradiction", func(lo, hi int64) []matstore.Predicate {
			return []matstore.Predicate{matstore.AtLeast(hi), matstore.LessThan(lo)}
		}},
		{"all-and-lt", func(lo, hi int64) []matstore.Predicate {
			return []matstore.Predicate{matstore.MatchAll, matstore.LessThan(hi)}
		}},
	}
	filterCols := []struct {
		name     string
		min, max int64
	}{
		{tpch.ColShipdate, 0, tpch.ShipdateDays - 1}, // plain, sorted
		{tpch.ColLinenumRLE, 1, tpch.LinenumMax},     // RLE
		{tpch.ColQuantity, 1, tpch.QuantityMax},      // plain, random
	}
	sels := []float64{0, 0.01, 0.5, 0.99, 1}
	for _, col := range filterCols {
		for _, conj := range conjs {
			for _, sel := range sels {
				span := float64(col.max-col.min) * sel
				lo := col.min + int64((float64(col.max-col.min)-span)/2)
				hi := lo + int64(span) + 1
				q := matstore.Query{
					Output: []string{col.name, tpch.ColShipdate, tpch.ColLinenumBV},
				}
				for _, p := range conj.preds(lo, hi) {
					q.Filters = append(q.Filters, matstore.Filter{Col: col.name, Pred: p})
				}
				// A trailing filter on another column keeps the multi-group
				// (fused-then-pipelined) paths honest.
				if col.name != tpch.ColShipdate {
					q.Filters = append(q.Filters, matstore.Filter{
						Col: tpch.ColShipdate, Pred: matstore.LessThan(tpch.ShipdateForSelectivity(0.8)),
					})
				}
				t.Run(fmt.Sprintf("%s/%s/sel=%v", col.name, conj.name, sel), func(t *testing.T) {
					var ref [][]int64
					var refName string
					for _, s := range matstore.Strategies {
						for _, par := range []int{1, 4} {
							q.Parallelism = par
							for dbName, db := range map[string]*matstore.DB{"fused": fused, "unfused": unfused} {
								res, _, err := db.Select(tpch.LineitemProj, q, s)
								if err != nil {
									t.Fatalf("%s/%v/par=%d: %v", dbName, s, par, err)
								}
								rowsSorted := sortedRows(res)
								if ref == nil {
									ref, refName = rowsSorted, fmt.Sprintf("%s/%v/par=%d", dbName, s, par)
								} else if !reflect.DeepEqual(rowsSorted, ref) {
									t.Errorf("%s/%v/par=%d disagrees with %s", dbName, s, par, refName)
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestFusedRepeatedColumnRandom extends the random differential property to
// queries that repeat filter columns (the shape earlier drivers never
// exercised): fused and unfused execution must agree under every strategy.
func TestFusedRepeatedColumnRandom(t *testing.T) {
	fused := diffDB(t)
	unfused := open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024, DisableFusion: true}})
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 20; iter++ {
		c := diffFilterCols[rng.Intn(len(diffFilterCols))]
		var q matstore.Query
		for i, n := 0, 2+rng.Intn(2); i < n; i++ {
			q.Filters = append(q.Filters, matstore.Filter{
				Col: c.name, Pred: randPredicate(rng, c.min, c.max),
			})
		}
		if rng.Intn(2) == 0 {
			// Interleave a different column so same-column filters are both
			// adjacent (fusable) and split across groups.
			mid := diffFilterCols[rng.Intn(len(diffFilterCols))]
			q.Filters[1], q.Filters[len(q.Filters)-1] = q.Filters[len(q.Filters)-1], q.Filters[1]
			q.Filters = append(q.Filters, matstore.Filter{
				Col: mid.name, Pred: randPredicate(rng, mid.min, mid.max),
			})
		}
		q.Output = []string{c.name, diffOutputCols[rng.Intn(len(diffOutputCols))]}
		var ref [][]int64
		for _, s := range matstore.Strategies {
			for _, db := range []*matstore.DB{fused, unfused} {
				q.Parallelism = 1 + 3*rng.Intn(2)
				res, _, err := db.Select(tpch.LineitemProj, q, s)
				if err != nil {
					t.Fatalf("iter %d %v: %v (q=%+v)", iter, s, err, q)
				}
				rowsSorted := sortedRows(res)
				if ref == nil {
					ref = rowsSorted
				} else if !reflect.DeepEqual(rowsSorted, ref) {
					t.Fatalf("iter %d: %v disagrees (q=%+v)", iter, s, q)
				}
			}
		}
	}
}

// TestDifferentialFusedZoneIndex pins the zone-index interplay with fusion:
// a fused interval+Ne conjunction over the sorted column must return
// identical results with and without UseZoneIndex (which routes the
// interval through block zones and applies the Ne residue by a batched
// gather of the sparse survivors, or falls back to the fused window scan
// when survivors are dense), under both LM strategies and vs the unfused
// reference.
func TestDifferentialFusedZoneIndex(t *testing.T) {
	base := diffDB(t)
	zoned := open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024, UseZoneIndex: true}})
	zonedUnfused := open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024, UseZoneIndex: true, DisableFusion: true}})
	for _, sel := range []float64{0, 0.01, 0.3, 0.9, 1} {
		hi := tpch.ShipdateForSelectivity(sel)
		q := matstore.Query{
			Output: []string{tpch.ColShipdate, tpch.ColQuantity},
			Filters: []matstore.Filter{
				{Col: tpch.ColShipdate, Pred: matstore.AtLeast(hi / 4)},
				{Col: tpch.ColShipdate, Pred: matstore.LessThan(hi)},
				{Col: tpch.ColShipdate, Pred: matstore.NotEquals(hi / 2)},
			},
		}
		var ref [][]int64
		for dbName, db := range map[string]*matstore.DB{"plain": base, "zoned": zoned, "zoned-unfused": zonedUnfused} {
			for _, s := range []matstore.Strategy{matstore.LMPipelined, matstore.LMParallel} {
				for _, par := range []int{1, 4} {
					q.Parallelism = par
					res, _, err := db.Select(tpch.LineitemProj, q, s)
					if err != nil {
						t.Fatalf("sel=%v %s/%v: %v", sel, dbName, s, err)
					}
					rowsSorted := sortedRows(res)
					if ref == nil {
						ref = rowsSorted
					} else if !reflect.DeepEqual(rowsSorted, ref) {
						t.Errorf("sel=%v %s/%v/par=%d disagrees", sel, dbName, s, par)
					}
				}
			}
		}
	}
}
