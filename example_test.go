package matstore_test

import (
	"fmt"
	"log"
	"os"

	"matstore"
)

// Example demonstrates the end-to-end flow: generate sample data, run the
// paper's selection query under a late-materialization strategy, and
// aggregate directly on compressed data. Output is deterministic because
// generation is seeded.
func Example() {
	dir, err := os.MkdirTemp("", "matstore-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	if err := matstore.Generate(dir, 0.002, 42); err != nil {
		log.Fatal(err)
	}
	db, err := matstore.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// SELECT shipdate, linenum FROM lineitem
	// WHERE shipdate < 1263 AND linenum < 7
	sel := matstore.Query{
		Output: []string{"shipdate", "linenum"},
		Filters: []matstore.Filter{
			{Col: "shipdate", Pred: matstore.LessThan(1263)}, // ~50% of days
			{Col: "linenum", Pred: matstore.LessThan(7)},     // ~96% of rows
		},
	}
	res, stats, err := db.Select("lineitem", sel, matstore.LMParallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection: %d rows, %d tuples constructed\n",
		res.NumRows(), stats.TuplesConstructed)

	// SELECT returnflag, SUM(quantity) FROM lineitem GROUP BY returnflag
	agg := matstore.Query{
		Filters: []matstore.Filter{{Col: "returnflag", Pred: matstore.MatchAll}},
		GroupBy: "returnflag",
		AggCol:  "quantity",
		Agg:     matstore.Sum,
	}
	res, stats, err = db.Select("lineitem", agg, matstore.LMPipelined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregation: %d groups from %d tuples constructed\n",
		res.NumRows(), stats.TuplesConstructed)

	// The cost model picks a strategy (the paper's optimizer use-case).
	adv, err := db.Advise("lineitem", agg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor class: %v\n", adv.Best == matstore.LMParallel || adv.Best == matstore.LMPipelined)

	// Output:
	// selection: 6718 rows, 6718 tuples constructed
	// aggregation: 3 groups from 3 tuples constructed
	// advisor class: true
}
