// Aggregation on compressed data: the paper's Section 4.2 experiment as a
// warehouse-style report — daily shipped-quantity totals. Late
// materialization aggregates RLE runs and bit-vector popcounts directly,
// constructing only one tuple per group; early materialization must build
// every qualifying tuple first. The gap is the Figure 12 effect.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"matstore"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "matstore-aggregation")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	data := filepath.Join(dir, "data")
	if err := matstore.Generate(data, 0.02, 7); err != nil {
		log.Fatal(err)
	}
	db, err := matstore.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// SELECT shipdate, SUM(linenum) FROM lineitem
	// WHERE shipdate < 1500 AND linenum < 7 GROUP BY shipdate
	q := matstore.Query{
		Filters: []matstore.Filter{
			{Col: "shipdate", Pred: matstore.LessThan(1500)},
			{Col: "linenum_rle", Pred: matstore.LessThan(7)},
		},
		GroupBy: "shipdate",
		AggCol:  "linenum_rle",
	}

	fmt.Println("daily SUM(linenum) report, per strategy:")
	for _, s := range matstore.Strategies {
		// Warm-up, then timed run.
		if _, _, err := db.Select("lineitem", q, s); err != nil {
			log.Fatal(err)
		}
		_, stats, err := db.Select("lineitem", q, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14v %8.2fms  groups=%d  tuples constructed=%d\n",
			s, float64(stats.Wall.Microseconds())/1000, stats.Groups, stats.TuplesConstructed)
	}

	// Show the report head from the cheapest plan.
	res, _, err := db.Select("lineitem", q, matstore.LMParallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nshipdate  sum(linenum)")
	for i := 0; i < 5 && i < res.NumRows(); i++ {
		row := res.Row(i)
		fmt.Printf("%8d  %12d\n", row[0], row[1])
	}
	fmt.Printf("... (%d groups)\n", res.NumRows())
	fmt.Println("\nNote the tuples-constructed column: LM plans construct one tuple per group;")
	fmt.Println("EM plans construct one tuple per qualifying row before aggregating (Figure 12).")
}
