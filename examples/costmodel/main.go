// Cost-model-driven strategy selection: the optimizer use-case of the
// paper's conclusion. For a batch of warehouse queries with very different
// shapes, ask the analytical model to pick a materialization strategy, then
// run all four and check whether the advisor's choice was actually (near-)
// best.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"matstore"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "matstore-costmodel")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	data := filepath.Join(dir, "data")
	if err := matstore.Generate(data, 0.02, 21); err != nil {
		log.Fatal(err)
	}
	db, err := matstore.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	queries := []struct {
		name string
		q    matstore.Query
	}{
		{"selective scan (1% shipdate)", matstore.Query{
			Output: []string{"shipdate", "linenum"},
			Filters: []matstore.Filter{
				{Col: "shipdate", Pred: matstore.LessThan(25)},
				{Col: "linenum", Pred: matstore.LessThan(7)},
			},
		}},
		{"full scan (100% shipdate, uncompressed linenum)", matstore.Query{
			Output: []string{"shipdate", "linenum"},
			Filters: []matstore.Filter{
				{Col: "shipdate", Pred: matstore.LessThan(99999)},
				{Col: "linenum", Pred: matstore.LessThan(7)},
			},
		}},
		{"aggregation over RLE data", matstore.Query{
			Filters: []matstore.Filter{
				{Col: "shipdate", Pred: matstore.LessThan(1800)},
				{Col: "linenum_rle", Pred: matstore.LessThan(7)},
			},
			GroupBy: "shipdate",
			AggCol:  "linenum_rle",
		}},
	}

	for _, tc := range queries {
		adv, err := db.Advise("lineitem", tc.q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n  advisor picks: %v\n", tc.name, adv.Best)
		type run struct {
			s  matstore.Strategy
			ms float64
		}
		var best run
		for _, s := range matstore.Strategies {
			if _, _, err := db.Select("lineitem", tc.q, s); err != nil { // warm-up
				log.Fatal(err)
			}
			var min time.Duration
			for r := 0; r < 3; r++ {
				_, stats, err := db.Select("lineitem", tc.q, s)
				if err != nil {
					log.Fatal(err)
				}
				if min == 0 || stats.Wall < min {
					min = stats.Wall
				}
			}
			ms := float64(min.Microseconds()) / 1000
			mark := " "
			if s == adv.Best {
				mark = "*"
			}
			fmt.Printf("  %s %-14v measured %8.2fms   model %8.2fms\n",
				mark, s, ms, adv.Costs[s].Total()/1000)
			if best.ms == 0 || ms < best.ms {
				best = run{s, ms}
			}
		}
		fmt.Printf("  fastest measured: %v\n", best.s)
	}
}
