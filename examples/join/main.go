// Join inner-table materialization: the Section 4.3 star-schema experiment —
// orders joined to customer on custkey, with the inner (customer) table
// sent to the join as (a) pre-materialized tuples, (b) multi-columns, or
// (c) just the join key column. The single-column variant pays an extra
// out-of-order positional fetch after the join (Figure 13's penalty).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"matstore"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "matstore-join")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	data := filepath.Join(dir, "data")
	if err := matstore.Generate(data, 0.02, 9); err != nil {
		log.Fatal(err)
	}
	db, err := matstore.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// SELECT orders.shipdate, customer.nationcode
	// FROM orders, customer
	// WHERE orders.custkey = customer.custkey AND orders.custkey < X
	nCust := int64(0.02 * 150000)
	for _, sel := range []float64{0.1, 0.5, 1.0} {
		x := int64(sel * float64(nCust))
		q := matstore.JoinQuery{
			LeftKey:     "custkey",
			LeftPred:    matstore.LessThan(x),
			LeftOutput:  []string{"shipdate"},
			RightKey:    "custkey",
			RightOutput: []string{"nationcode"},
		}
		fmt.Printf("\norders.custkey < %d (selectivity %.0f%%):\n", x, sel*100)
		for _, rs := range []matstore.RightStrategy{
			matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
		} {
			// Warm-up, then timed run.
			if _, _, err := db.Join("orders", "customer", q, rs); err != nil {
				log.Fatal(err)
			}
			res, stats, err := db.Join("orders", "customer", q, rs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22v %8.2fms  rows=%d  right tuples built=%d  deferred fetches=%d\n",
				rs, float64(stats.Wall.Microseconds())/1000, res.NumRows(),
				stats.Join.RightBuildTuples, stats.Join.DeferredFetches)
		}
	}
	fmt.Println("\nExpected shape (paper Figure 13): materialized and multi-column run close;")
	fmt.Println("single-column pays for the extra out-of-order positional join on the right table.")
}
