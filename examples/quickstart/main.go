// Quickstart: generate a small TPC-H-shaped database, run the paper's
// selection query under one late- and one early-materialization strategy,
// and print the results and execution statistics.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"matstore"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "matstore-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	data := filepath.Join(dir, "data")

	// 1. Generate sample data: a lineitem projection sorted by
	// (returnflag, shipdate, linenum), plus orders and customer tables.
	if err := matstore.Generate(data, 0.01, 42); err != nil {
		log.Fatal(err)
	}

	// 2. Open the database.
	db, err := matstore.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println("projections:", db.Projections())

	// 3. The paper's selection query:
	//    SELECT shipdate, linenum FROM lineitem
	//    WHERE shipdate < 400 AND linenum < 7
	q := matstore.Query{
		Output: []string{"shipdate", "linenum"},
		Filters: []matstore.Filter{
			{Col: "shipdate", Pred: matstore.LessThan(400)},
			{Col: "linenum", Pred: matstore.LessThan(7)},
		},
	}

	// 4. Run it under two materialization strategies.
	for _, s := range []matstore.Strategy{matstore.LMParallel, matstore.EMParallel} {
		res, stats, err := db.Select("lineitem", q, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v: %d rows in %v (tuples constructed: %d, buffer reads: %d, hits: %d)\n",
			s, res.NumRows(), stats.Wall, stats.TuplesConstructed,
			stats.Buffer.Reads, stats.Buffer.Hits)
		for i := 0; i < 3 && i < res.NumRows(); i++ {
			fmt.Println("   ", res.Row(i))
		}
	}

	// 5. Ask the analytical cost model which strategy it would pick.
	adv, err := db.Advise("lineitem", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncost-model advice: %v\n", adv.Best)
	for _, s := range matstore.Strategies {
		fmt.Printf("  %-14v predicted %s\n", s, adv.Costs[s])
	}
}
