// Selection strategy comparison: reproduces the Figure 11 experiment shape
// interactively — the paper's selection query swept over selectivity, under
// all four materialization strategies and all three LINENUM encodings,
// printed as runtime tables. This is the experiment that shows LM-pipelined
// winning at low selectivity and EM-parallel winning at high selectivity on
// uncompressed data, and LM dominating on RLE data.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"matstore"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "matstore-selection")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	data := filepath.Join(dir, "data")
	if err := matstore.Generate(data, 0.02, 42); err != nil {
		log.Fatal(err)
	}
	db, err := matstore.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const shipdateDays = 2526
	selectivities := []float64{0.01, 0.25, 0.5, 0.75, 1.0}
	// The three redundant LINENUM encodings generated for lineitem.
	for _, linenum := range []string{"linenum", "linenum_rle", "linenum_bv"} {
		fmt.Printf("\nLINENUM column %q:\n", linenum)
		fmt.Printf("%-12s", "selectivity")
		for _, s := range matstore.Strategies {
			fmt.Printf("%16v", s)
		}
		fmt.Println()
		for _, sel := range selectivities {
			q := matstore.Query{
				Output: []string{"shipdate", linenum},
				Filters: []matstore.Filter{
					{Col: "shipdate", Pred: matstore.LessThan(int64(sel * shipdateDays))},
					{Col: linenum, Pred: matstore.LessThan(7)},
				},
			}
			fmt.Printf("%-12.2f", sel)
			for _, s := range matstore.Strategies {
				// Warm the buffer pool once, then time.
				if _, _, err := db.Select("lineitem", q, s); err != nil {
					log.Fatal(err)
				}
				_, stats, err := db.Select("lineitem", q, s)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%14.2fms", float64(stats.Wall.Microseconds())/1000)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nExpected shape (paper Figure 11): on uncompressed data LM-pipelined wins at low")
	fmt.Println("selectivity and EM-parallel at high; on RLE data both LM strategies dominate.")
}
