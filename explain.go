package matstore

import (
	"fmt"

	"matstore/internal/model"
	"matstore/internal/obs"
	"matstore/internal/operators"
	"matstore/internal/plan"
)

// Explanation is the result of DB.Explain or DB.ExplainJoin: the physical
// plan a strategy builds for a query, annotated per node with the analytical
// model's cost prediction AND the counters observed while actually executing
// it. When the advisor's ranking disagrees with reality, the node whose
// modeled and observed columns diverge names the mis-modeled operator.
type Explanation struct {
	// Strategy is the strategy whose plan was explained (for joins: the
	// shape the outer probe side executes).
	Strategy Strategy
	// Plan is the underlying annotated plan tree (for programmatic access).
	Plan *plan.Plan
	// Tree is the rendered node tree, one line per node with modeled and
	// observed columns.
	Tree string
	// Modeled is the sum of the per-node model predictions (µs).
	Modeled Cost
	// Stats is the execution's query-level statistics.
	Stats *Stats
	// JoinStats carries the full join statistics of an ExplainJoin run (nil
	// for selections).
	JoinStats *JoinStats
	// Result is the query result produced by the explain run.
	Result *Result
	// Constants are the model constants the annotation used (the DB's
	// current constants at explain time).
	Constants Constants
}

// Observations extracts the calibration observations of the explained run:
// one (model feature vector, observed self-time) pair per executed plan
// node. Feed batches of these to FitConstants to refit the model's CPU
// constants to this machine.
func (ex *Explanation) Observations() []Observation {
	return model.CollectObservations(ex.Plan, ex.Constants)
}

// String renders the explanation: the node tree followed by the modeled
// total and the observed execution summary (join runs add the join-side
// counters: probes, build tuples, partitions, deferred fetches).
func (ex *Explanation) String() string {
	s := ex.Tree + fmt.Sprintf(
		"modeled total: cpu=%.0fµs io=%.0fµs (%.0fµs)\nobserved: wall=%v workers=%d morsels=%d tuples_out=%d tuples_constructed=%d chunks_skipped=%d\n",
		ex.Modeled.CPU, ex.Modeled.IO, ex.Modeled.Total(),
		ex.Stats.Wall, ex.Stats.Workers, ex.Stats.Morsels,
		ex.Stats.TuplesOut, ex.Stats.TuplesConstructed, ex.Stats.ChunksSkipped)
	if js := ex.JoinStats; js != nil {
		s += fmt.Sprintf(
			"join: right=%v probes=%d build_tuples=%d partitions=%d build_workers=%d deferred_fetches=%d\n",
			js.RightStrategy, js.Join.LeftProbes, js.Join.RightBuildTuples,
			js.Join.Partitions, js.Join.BuildWorkers, js.Join.DeferredFetches)
		if js.Join.Spilled {
			s += fmt.Sprintf("spill: partitions=%d/%d bytes=%d probes=%d\n",
				js.Join.SpilledParts, js.Join.Partitions, js.Join.SpillBytes, js.Join.SpillProbes)
		}
	}
	return s
}

// Explain builds the physical plan the strategy would run for q, annotates
// every node with the analytical model's predicted cost (Table 2 constants,
// warm pool), executes the plan with per-node observation enabled, and
// returns the rendered tree with modeled vs. observed stats side by side.
// q.Parallelism controls the observed run exactly as in Select.
func (db *DB) Explain(projection string, q Query, s Strategy) (*Explanation, error) {
	return db.ExplainTraced(projection, q, s, nil)
}

// ExplainTraced is Explain with an optional trace span: the observed run's
// phase and per-node spans attach under tr (nil = no tracing, identical to
// Explain).
func (db *DB) ExplainTraced(projection string, q Query, s Strategy, tr *obs.Span) (*Explanation, error) {
	p, err := db.inner.Projection(projection)
	if err != nil {
		return nil, err
	}
	pl, err := db.exec.BuildPlan(p, q, s)
	if err != nil {
		return nil, err
	}
	consts := db.Constants()
	consts.AnnotatePlan(pl, true)
	res, stats, err := db.exec.RunPlanWith(pl, s, q.Parallelism, plan.RunOptions{Observe: true, Trace: tr})
	if err != nil {
		return nil, err
	}
	total := pl.ModeledTotal()
	return &Explanation{
		Strategy:  s,
		Plan:      pl,
		Tree:      pl.Render(),
		Modeled:   Cost{CPU: total.CPU, IO: total.IO},
		Stats:     stats,
		Result:    res,
		Constants: consts,
	}, nil
}

// ExplainJoin builds the physical join plan for q (left ⋈ right under the
// given inner-table materialization strategy), annotates every node with the
// analytical model's Section 4.3 cost terms, executes the plan with per-node
// observation enabled — radix-partitioned parallel build, batched probe —
// and returns the rendered tree with modeled vs. observed stats side by
// side. q.Parallelism controls both join phases exactly as in Join.
func (db *DB) ExplainJoin(left, right string, q JoinQuery, rs RightStrategy) (*Explanation, error) {
	return db.ExplainJoinTraced(left, right, q, rs, nil)
}

// ExplainJoinTraced is ExplainJoin with an optional trace span (see
// ExplainTraced).
func (db *DB) ExplainJoinTraced(left, right string, q JoinQuery, rs RightStrategy, tr *obs.Span) (*Explanation, error) {
	lp, err := db.inner.Projection(left)
	if err != nil {
		return nil, err
	}
	rp, err := db.inner.Projection(right)
	if err != nil {
		return nil, err
	}
	var pl *plan.Plan
	var spill *operators.SpillConfig
	if q.SpillBudgetBytes > 0 {
		pl, spill, err = db.spillJoinPlan(lp, rp, right, q, rs)
	} else {
		pl, err = db.exec.BuildJoinPlan(lp, rp, q, rs)
	}
	if err != nil {
		return nil, err
	}
	consts := db.Constants()
	consts.AnnotatePlan(pl, true)
	res, stats, err := db.exec.RunJoinPlanWith(pl, q.Parallelism, plan.RunOptions{Observe: true, Spill: spill, Trace: tr})
	if err != nil {
		return nil, err
	}
	total := pl.ModeledTotal()
	return &Explanation{
		Strategy:  stats.Strategy,
		Plan:      pl,
		Tree:      pl.Render(),
		Modeled:   Cost{CPU: total.CPU, IO: total.IO},
		Stats:     &stats.Stats,
		JoinStats: stats,
		Result:    res,
		Constants: consts,
	}, nil
}
