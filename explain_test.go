package matstore_test

import (
	"reflect"
	"strings"
	"testing"

	"matstore"
	"matstore/internal/core"
	"matstore/internal/plan"
	"matstore/internal/tpch"
)

// TestExplainAllStrategies: Explain must execute the query (same result and
// row count as Select), annotate every node with a model prediction, and
// record observed rows on every node that produced output.
func TestExplainAllStrategies(t *testing.T) {
	db := open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024}})
	q := matstore.Query{
		Output: []string{tpch.ColShipdate, tpch.ColLinenum},
		Filters: []matstore.Filter{
			{Col: tpch.ColShipdate, Pred: matstore.AtLeast(100)},
			{Col: tpch.ColShipdate, Pred: matstore.LessThan(900)},
			{Col: tpch.ColLinenum, Pred: matstore.LessThan(5)},
		},
		Parallelism: 2,
	}
	for _, s := range matstore.Strategies {
		ex, err := db.Explain(tpch.LineitemProj, q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		res, stats, err := db.Select(tpch.LineitemProj, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ex.Result.Cols, res.Cols) {
			t.Errorf("%v: explain result differs from Select", s)
		}
		if ex.Stats.TuplesOut != stats.TuplesOut {
			t.Errorf("%v: explain TuplesOut = %d, Select = %d", s, ex.Stats.TuplesOut, stats.TuplesOut)
		}
		if ex.Modeled.Total() <= 0 {
			t.Errorf("%v: modeled total = %v", s, ex.Modeled)
		}
		// Every node must carry a model annotation; the tree must show both
		// columns.
		plan.Walk(ex.Plan.Root, func(n *plan.Node) {
			if !n.HasModel {
				t.Errorf("%v: node %v has no model annotation", s, n.Kind)
			}
		})
		if !strings.Contains(ex.Tree, "model:") || !strings.Contains(ex.Tree, "obs:") {
			t.Errorf("%v: tree missing annotations:\n%s", s, ex.Tree)
		}
		// The root's observed cardinality is the result cardinality.
		if got := ex.Plan.Root.Obs.Rows.Load(); got != stats.TuplesOut {
			t.Errorf("%v: root observed rows = %d, want %d", s, got, stats.TuplesOut)
		}
		// The consecutive shipdate predicates must fuse everywhere except
		// EM-parallel (whose SPC is the deliberately unfused reference).
		if s != matstore.EMParallel {
			if !strings.Contains(ex.Tree, "[fused x2]") {
				t.Errorf("%v: fused scan not visible in tree:\n%s", s, ex.Tree)
			}
		}
	}
}

// TestExplainAggregation: the aggregation root must render with observed
// group counts.
func TestExplainAggregation(t *testing.T) {
	db := open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024}})
	q := matstore.Query{
		Filters: []matstore.Filter{{Col: tpch.ColShipdate, Pred: matstore.LessThan(900)}},
		GroupBy: tpch.ColRetflag,
		AggCol:  tpch.ColQuantity,
	}
	for _, s := range matstore.Strategies {
		ex, err := db.Explain(tpch.LineitemProj, q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !strings.Contains(ex.Tree, "AGG sum(quantity) group by returnflag") {
			t.Errorf("%v: aggregation root missing:\n%s", s, ex.Tree)
		}
		if got := ex.Plan.Root.Obs.Rows.Load(); got != int64(ex.Stats.Groups) {
			t.Errorf("%v: root observed rows = %d, want groups %d", s, got, ex.Stats.Groups)
		}
		if ex.Stats.Groups != 3 {
			t.Errorf("%v: groups = %d, want 3", s, ex.Stats.Groups)
		}
	}
}

// TestExplainDoesNotDisturbSelect: running Explain then Select must produce
// identical results (observation is side-effect-free on plan semantics).
func TestExplainDoesNotDisturbSelect(t *testing.T) {
	db := open(t)
	q := matstore.Query{
		Output:  []string{tpch.ColQuantity},
		Filters: []matstore.Filter{{Col: tpch.ColLinenum, Pred: matstore.LessThan(4)}},
	}
	before, _, err := db.Select(tpch.LineitemProj, q, matstore.LMPipelined)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Explain(tpch.LineitemProj, q, matstore.LMPipelined); err != nil {
		t.Fatal(err)
	}
	after, _, err := db.Select(tpch.LineitemProj, q, matstore.LMPipelined)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Cols, after.Cols) {
		t.Error("Select result changed after Explain")
	}
}

// TestExplainJoin: ExplainJoin must execute the join (same result as Join),
// annotate the build, probe and scan nodes with Section 4.3 model terms, and
// render the join tree with observed counters including the radix build
// phase.
func TestExplainJoin(t *testing.T) {
	db := open(t, matstore.Options{Exec: core.Options{ChunkSize: 1024}})
	q := matstore.JoinQuery{
		LeftKey:     "custkey",
		LeftPred:    matstore.LessThan(200),
		LeftOutput:  []string{"shipdate"},
		RightKey:    "custkey",
		RightOutput: []string{"nationcode"},
		Parallelism: 2,
	}
	for _, rs := range []matstore.RightStrategy{
		matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
	} {
		ex, err := db.ExplainJoin("orders", "customer", q, rs)
		if err != nil {
			t.Fatalf("%v: %v", rs, err)
		}
		res, stats, err := db.Join("orders", "customer", q, rs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ex.Result.Cols, res.Cols) {
			t.Errorf("%v: explain result differs from Join", rs)
		}
		if ex.JoinStats == nil || ex.JoinStats.RightStrategy != rs {
			t.Fatalf("%v: JoinStats = %+v", rs, ex.JoinStats)
		}
		if ex.JoinStats.Join.OutputTuples != stats.Join.OutputTuples {
			t.Errorf("%v: explain OutputTuples = %d, Join = %d",
				rs, ex.JoinStats.Join.OutputTuples, stats.Join.OutputTuples)
		}
		if ex.Strategy != matstore.LMPipelined {
			t.Errorf("%v: outer shape = %v, want %v", rs, ex.Strategy, matstore.LMPipelined)
		}
		if ex.Modeled.Total() <= 0 {
			t.Errorf("%v: modeled total = %v", rs, ex.Modeled)
		}
		plan.Walk(ex.Plan.Root, func(n *plan.Node) {
			if !n.HasModel {
				t.Errorf("%v: node %v has no model annotation", rs, n.Kind)
			}
		})
		for _, want := range []string{"JOINBUILD", "JOINPROBE", "model:", "obs:", "partitions="} {
			if !strings.Contains(ex.Tree, want) {
				t.Errorf("%v: tree missing %q:\n%s", rs, want, ex.Tree)
			}
		}
		if !strings.Contains(ex.String(), "join: right="+rs.String()) {
			t.Errorf("%v: String() missing join summary:\n%s", rs, ex.String())
		}
	}
}
