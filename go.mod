module matstore

go 1.24
