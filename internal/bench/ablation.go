package bench

import (
	"matstore/internal/core"
	"matstore/internal/encoding"
	"matstore/internal/operators"
	"matstore/internal/positions"
	"matstore/internal/pred"
	"matstore/internal/tpch"
)

// This file implements the ablation experiments DESIGN.md calls out: each
// isolates one design choice the paper argues for and measures the query
// with the choice on and off.

// AblationMultiColumn measures the LM re-access penalty (Section 2.2 /
// 3.6): LM-parallel with mini-column reuse versus forced column re-access.
func (e *Env) AblationMultiColumn(sels []float64) (Figure, error) {
	fig := Figure{
		ID:     "Ablation A1",
		Title:  "multi-column optimization on/off (LM-parallel, RLE selection)",
		XLabel: "selectivity",
		YLabel: "runtime ms",
		X:      sels,
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"multi-column", false}, {"re-access", true}} {
		exec := core.NewExecutor(e.DB.Pool(), core.Options{ChunkSize: e.ChunkSize, DisableMultiColumn: mode.disable})
		ser := fig.series(mode.name)
		for _, sel := range sels {
			ms, err := e.timeSelect(exec, e.lineitem, selectionQuery(encoding.RLE, sel, false), core.LMParallel)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}

// AblationPositionRep compares adaptive position representations against
// forced bitmaps (Section 3.3's representation cases).
func (e *Env) AblationPositionRep(sels []float64) (Figure, error) {
	fig := Figure{
		ID:     "Ablation A2",
		Title:  "position representation: adaptive vs forced bitmap (LM-parallel, RLE)",
		XLabel: "selectivity",
		YLabel: "runtime ms",
		X:      sels,
	}
	for _, mode := range []struct {
		name  string
		force bool
	}{{"adaptive (ranges)", false}, {"forced bitmap", true}} {
		exec := core.NewExecutor(e.DB.Pool(), core.Options{ChunkSize: e.ChunkSize, ForceBitmapPositions: mode.force})
		ser := fig.series(mode.name)
		for _, sel := range sels {
			ms, err := e.timeSelect(exec, e.lineitem, selectionQuery(encoding.RLE, sel, false), core.LMParallel)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}

// AblationChunkSize sweeps the horizontal-partition width at a fixed
// mid-range selectivity.
func (e *Env) AblationChunkSize(chunkSizes []int64) (Figure, error) {
	fig := Figure{
		ID:     "Ablation A3",
		Title:  "chunk (horizontal partition) size sweep, selectivity 0.5",
		XLabel: "chunk size",
		YLabel: "runtime ms",
	}
	for _, cs := range chunkSizes {
		fig.X = append(fig.X, float64(cs))
	}
	for _, s := range core.Strategies {
		ser := fig.series(s.String())
		for _, cs := range chunkSizes {
			exec := core.NewExecutor(e.DB.Pool(), core.Options{ChunkSize: cs})
			ms, err := e.timeSelect(exec, e.lineitem, selectionQuery(encoding.RLE, 0.5, false), s)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}

// AblationAggCompressed compares LM aggregation operating directly on
// compressed data against an EM plan that decompresses and hash-aggregates
// constructed tuples (the Section 4.2 effect in isolation).
func (e *Env) AblationAggCompressed(sels []float64) (Figure, error) {
	fig := Figure{
		ID:     "Ablation A4",
		Title:  "aggregation on compressed data (LM) vs on constructed tuples (EM), RLE",
		XLabel: "selectivity",
		YLabel: "runtime ms",
		X:      sels,
	}
	exec := e.executor()
	for _, s := range []core.Strategy{core.LMParallel, core.EMParallel} {
		name := "decompress+hash (EM-parallel)"
		if s == core.LMParallel {
			name = "direct-on-compressed (LM-parallel)"
		}
		ser := fig.series(name)
		for _, sel := range sels {
			ms, err := e.timeSelect(exec, e.lineitem, selectionQuery(encoding.RLE, sel, true), s)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}

// AblationZoneIndex compares scan-derived against index-derived positions
// (Section 2.1.1: "the original column values never have to be accessed")
// for the LM-parallel selection over RLE data.
func (e *Env) AblationZoneIndex(sels []float64) (Figure, error) {
	fig := Figure{
		ID:     "Ablation A5",
		Title:  "positions from scan vs from block index zones (LM-parallel, RLE)",
		XLabel: "selectivity",
		YLabel: "runtime ms",
		X:      sels,
	}
	for _, mode := range []struct {
		name string
		zone bool
	}{{"scan-derived", false}, {"index-derived", true}} {
		exec := core.NewExecutor(e.DB.Pool(), core.Options{ChunkSize: e.ChunkSize, UseZoneIndex: mode.zone})
		ser := fig.series(mode.name)
		for _, sel := range sels {
			ms, err := e.timeSelect(exec, e.lineitem, selectionQuery(encoding.RLE, sel, false), core.LMParallel)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}

// PositionIntersectMicro measures the raw position-AND primitives of
// Section 3.3 (ranges×ranges, bitmap×bitmap, ranges×bitmap) over n
// positions, reporting millions of positions intersected per millisecond.
// It is exercised by the benchmark suite rather than the figure sweeps.
func PositionIntersectMicro(n int64) map[string]positions.Set {
	half := positions.NewRanges(positions.Range{Start: 0, End: n / 2})
	quarter := positions.NewRanges(positions.Range{Start: n / 4, End: 3 * n / 4})
	bmEven := positions.NewBitmap(0, n)
	for i := int64(0); i < n; i += 2 {
		bmEven.Set(i)
	}
	bmThirds := positions.NewBitmap(0, n)
	for i := int64(0); i < n; i += 3 {
		bmThirds.Set(i)
	}
	return map[string]positions.Set{
		"ranges-x-ranges": positions.And(half, quarter),
		"bitmap-x-bitmap": positions.And(bmEven, bmThirds),
		"ranges-x-bitmap": positions.And(half, bmEven),
	}
}

// JoinStatsAt returns the join work counters at a fixed selectivity, used
// to verify Figure 13's mechanism (deferred fetches for the single-column
// strategy).
func (e *Env) JoinStatsAt(sel float64, rs operators.RightStrategy) (*core.JoinStats, error) {
	exec := e.executor()
	q := core.JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    pred.LessThan(tpch.CustkeyForSelectivity(sel, e.customer.TupleCount())),
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
		Parallelism: e.Parallelism,
	}
	_, stats, err := exec.Join(e.orders, e.customer, q, rs)
	return stats, err
}

// AblationJoinBuild compares the radix-partitioned parallel hash build
// against the retained serial-build reference across the outer-selectivity
// sweep (right-materialized inner side, where the build does the most
// work). The serial series is the pre-refactor join driver, kept behind
// core.Options.SerialJoinBuild exactly for this ablation.
func (e *Env) AblationJoinBuild(sels []float64) (Figure, error) {
	fig := Figure{
		ID:     "Ablation: join build",
		Title:  "radix-partitioned parallel build vs serial reference (orders ⋈ customer, right-materialized)",
		XLabel: "selectivity",
		YLabel: "runtime ms, lower is better",
		X:      sels,
	}
	execs := map[string]*core.Executor{
		"radix build":  e.executor(),
		"serial build": core.NewExecutor(e.DB.Pool(), core.Options{ChunkSize: e.ChunkSize, SerialJoinBuild: true}),
	}
	nCust := e.customer.TupleCount()
	for _, name := range []string{"radix build", "serial build"} {
		exec := execs[name]
		ser := fig.series(name)
		for _, sel := range sels {
			q := core.JoinQuery{
				LeftKey:     tpch.ColCustkey,
				LeftPred:    pred.LessThan(tpch.CustkeyForSelectivity(sel, nCust)),
				LeftOutput:  []string{tpch.ColOrderShipdate},
				RightKey:    tpch.ColCustkey,
				RightOutput: []string{tpch.ColNationcode},
			}
			ms, err := e.timeJoin(exec, q, operators.RightMaterialized)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}
