// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table 2, Figures 10–13) plus the
// ablations called out in DESIGN.md, over TPC-H-shaped data produced by
// internal/tpch. Each experiment returns a Figure — an x-axis (selectivity)
// with one runtime series per strategy — which the CLI and the benchmark
// suite render as text tables or CSV.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"matstore/internal/core"
	"matstore/internal/encoding"
	"matstore/internal/model"
	"matstore/internal/operators"
	"matstore/internal/pred"
	"matstore/internal/storage"
	"matstore/internal/tpch"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	Y    []float64 // runtime in milliseconds, parallel to Figure.X
}

// Figure is one regenerated table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Render writes the figure as an aligned text table.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%18s", s.Name)
	}
	fmt.Fprintln(w)
	for i, x := range f.X {
		fmt.Fprintf(w, "%-12.3f", x)
		for _, s := range f.Series {
			fmt.Fprintf(w, "%18.3f", s.Y[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(%s)\n", f.YLabel)
}

// CSV writes the figure as comma-separated values.
func (f Figure) CSV(w io.Writer) {
	fmt.Fprintf(w, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", s.Name)
	}
	fmt.Fprintln(w)
	for i, x := range f.X {
		fmt.Fprintf(w, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%g", s.Y[i])
		}
		fmt.Fprintln(w)
	}
}

// series returns a pointer to the named series, creating it if necessary.
func (f *Figure) series(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	f.Series = append(f.Series, Series{Name: name})
	return &f.Series[len(f.Series)-1]
}

// DefaultSelectivities is the x-axis used for every sweep (the paper sweeps
// 0..1).
var DefaultSelectivities = []float64{0.001, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Env is an opened experiment environment.
type Env struct {
	Dir       string
	DB        *storage.DB
	Scale     float64
	ChunkSize int64
	// Runs is the number of timed repetitions per point; the minimum is
	// reported (the paper reports steady-state runs).
	Runs      int
	Constants model.Constants
	// Parallelism is the morsel-parallel worker count applied to every
	// timed query (0 = one per CPU). The default 1 reproduces the paper's
	// single-threaded experiments.
	Parallelism int

	lineitem *storage.Projection
	orders   *storage.Projection
	customer *storage.Projection
}

// Setup opens (generating if absent) a dataset of the given scale under
// dir. The marker file records the generation parameters so mismatched
// datasets are regenerated.
func Setup(dir string, scale float64, seed uint64) (*Env, error) {
	marker := filepath.Join(dir, fmt.Sprintf("generated-v%d.%d-scale%g-seed%d", storage.FormatVersion, tpch.GenVersion, scale, seed))
	if _, err := os.Stat(marker); err != nil {
		if err := os.RemoveAll(dir); err != nil {
			return nil, err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := tpch.Generate(dir, tpch.Config{Scale: scale, Seed: seed}); err != nil {
			return nil, err
		}
		if err := os.WriteFile(marker, []byte("ok\n"), 0o644); err != nil {
			return nil, err
		}
	}
	db, err := storage.OpenDB(dir, 0)
	if err != nil {
		return nil, err
	}
	env := &Env{
		Dir:         dir,
		DB:          db,
		Scale:       scale,
		ChunkSize:   0, // executor default
		Runs:        3,
		Constants:   model.Default(),
		Parallelism: 1,
	}
	if env.lineitem, err = db.Projection(tpch.LineitemProj); err != nil {
		db.Close()
		return nil, err
	}
	if env.orders, err = db.Projection(tpch.OrdersProj); err != nil {
		db.Close()
		return nil, err
	}
	if env.customer, err = db.Projection(tpch.CustomerProj); err != nil {
		db.Close()
		return nil, err
	}
	return env, nil
}

// Close releases the environment.
func (e *Env) Close() error { return e.DB.Close() }

func (e *Env) executor() *core.Executor {
	return core.NewExecutor(e.DB.Pool(), core.Options{ChunkSize: e.ChunkSize})
}

// timeBest runs one timed query e.Runs+1 times (the first run warms the
// buffer pool, as the paper's properly-pipelined assumption requires) and
// returns the minimum wall time in milliseconds — the timing policy shared
// by every figure and ablation.
func (e *Env) timeBest(run func() (time.Duration, error)) (float64, error) {
	best := time.Duration(0)
	for r := 0; r <= e.Runs; r++ {
		wall, err := run()
		if err != nil {
			return 0, err
		}
		if r == 0 {
			continue // warm-up
		}
		if best == 0 || wall < best {
			best = wall
		}
	}
	return float64(best) / float64(time.Millisecond), nil
}

// timeSelect applies the timeBest policy to a selection query.
func (e *Env) timeSelect(exec *core.Executor, p *storage.Projection, q core.SelectQuery, s core.Strategy) (float64, error) {
	q.Parallelism = e.Parallelism
	return e.timeBest(func() (time.Duration, error) {
		_, stats, err := exec.Select(p, q, s)
		if err != nil {
			return 0, err
		}
		return stats.Wall, nil
	})
}

// timeJoin applies the timeBest policy to a join query.
func (e *Env) timeJoin(exec *core.Executor, q core.JoinQuery, rs operators.RightStrategy) (float64, error) {
	q.Parallelism = e.Parallelism
	return e.timeBest(func() (time.Duration, error) {
		_, stats, err := exec.Join(e.orders, e.customer, q, rs)
		if err != nil {
			return 0, err
		}
		return stats.Wall, nil
	})
}

// selectionQuery builds the paper's Section 4 selection query over the
// chosen LINENUM encoding at shipdate-selectivity sel.
func selectionQuery(enc encoding.Kind, sel float64, agg bool) core.SelectQuery {
	linenum := tpch.LinenumColumn(enc)
	q := core.SelectQuery{
		Filters: []core.Filter{
			{Col: tpch.ColShipdate, Pred: pred.LessThan(tpch.ShipdateForSelectivity(sel))},
			{Col: linenum, Pred: pred.LessThan(tpch.LinenumMax)}, // the fixed 96% predicate
		},
	}
	if agg {
		q.GroupBy = tpch.ColShipdate
		q.AggCol = linenum
	} else {
		q.Output = []string{tpch.ColShipdate, linenum}
	}
	return q
}

// fig11Strategies returns the strategies shown for an encoding: the paper
// omits LM-pipelined for bit-vector data (position filtering on bit-vectors
// is not supported by the C-Store executor).
func fig11Strategies(enc encoding.Kind) []core.Strategy {
	if enc == encoding.BitVector {
		return []core.Strategy{core.EMPipelined, core.EMParallel, core.LMParallel}
	}
	return core.Strategies
}

// Fig11 regenerates one panel of Figure 11 (selection query run-times):
// enc selects the LINENUM encoding — (a) plain, (b) RLE, (c) bit-vector.
func (e *Env) Fig11(enc encoding.Kind, sels []float64) (Figure, error) {
	fig := Figure{
		ID:     "Figure 11(" + panel(enc) + ")",
		Title:  "selection query, LINENUM " + enc.String(),
		XLabel: "selectivity",
		YLabel: "runtime ms, lower is better",
		X:      sels,
	}
	exec := e.executor()
	for _, s := range fig11Strategies(enc) {
		ser := fig.series(s.String())
		for _, sel := range sels {
			ms, err := e.timeSelect(exec, e.lineitem, selectionQuery(enc, sel, false), s)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}

// Fig12 regenerates one panel of Figure 12 (aggregation query run-times).
func (e *Env) Fig12(enc encoding.Kind, sels []float64) (Figure, error) {
	fig := Figure{
		ID:     "Figure 12(" + panel(enc) + ")",
		Title:  "aggregation query, LINENUM " + enc.String(),
		XLabel: "selectivity",
		YLabel: "runtime ms, lower is better",
		X:      sels,
	}
	exec := e.executor()
	for _, s := range fig11Strategies(enc) {
		ser := fig.series(s.String())
		for _, sel := range sels {
			ms, err := e.timeSelect(exec, e.lineitem, selectionQuery(enc, sel, true), s)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}

func panel(enc encoding.Kind) string {
	switch enc {
	case encoding.Plain:
		return "a"
	case encoding.RLE:
		return "b"
	default:
		return "c"
	}
}

// Fig10 regenerates Figure 10: measured versus model-predicted run time for
// the RLE selection query, LM strategies in panel (a) and EM strategies in
// panel (b).
func (e *Env) Fig10(sels []float64) (Figure, Figure, error) {
	lm := Figure{ID: "Figure 10(a)", Title: "LM real vs model (RLE selection)",
		XLabel: "selectivity", YLabel: "runtime ms", X: sels}
	em := Figure{ID: "Figure 10(b)", Title: "EM real vs model (RLE selection)",
		XLabel: "selectivity", YLabel: "runtime ms", X: sels}
	// Pre-create every series: series() pointers are invalidated when a
	// later call grows the slice.
	for _, s := range core.Strategies {
		fig := &em
		if s == core.LMPipelined || s == core.LMParallel {
			fig = &lm
		}
		fig.series(s.String() + " Real")
		fig.series(s.String() + " Model")
	}
	exec := e.executor()
	for _, sel := range sels {
		q := selectionQuery(encoding.RLE, sel, false)
		in, err := e.ModelInputs(encoding.RLE, sel, false)
		if err != nil {
			return lm, em, err
		}
		for _, s := range core.Strategies {
			ms, err := e.timeSelect(exec, e.lineitem, q, s)
			if err != nil {
				return lm, em, err
			}
			predMS := e.Constants.SelectionCost(s, in).Total() / 1e3
			fig := &em
			if s == core.LMPipelined || s == core.LMParallel {
				fig = &lm
			}
			real := fig.series(s.String() + " Real")
			real.Y = append(real.Y, ms)
			mod := fig.series(s.String() + " Model")
			mod.Y = append(mod.Y, predMS)
		}
	}
	return lm, em, nil
}

// ModelInputs derives the analytical-model inputs for the selection query
// from catalog statistics (the F=1 hot-pool configuration matching the
// measured steady state).
func (e *Env) ModelInputs(enc encoding.Kind, sel float64, agg bool) (model.SelectionInputs, error) {
	ship, err := e.lineitem.Column(tpch.ColShipdate)
	if err != nil {
		return model.SelectionInputs{}, err
	}
	linenum, err := e.lineitem.Column(tpch.LinenumColumn(enc))
	if err != nil {
		return model.SelectionInputs{}, err
	}
	a := model.ColumnStats{
		Blocks: float64(ship.NumBlocks()), Tuples: float64(ship.TupleCount()),
		RunLen: ship.AvgRunLen(), F: 1,
	}
	b := model.ColumnStats{
		Blocks: float64(linenum.NumBlocks()), Tuples: float64(linenum.TupleCount()),
		RunLen: linenum.AvgRunLen(), F: 1,
	}
	sfB := 1.0 - 1.0/float64(tpch.LinenumWeightSum) // linenum < 7
	return model.SelectionInputs{
		A: a, B: b, SFA: sel, SFB: sfB,
		PosRunsA:    model.EstimatePosRuns(a, sel, true, 3),
		PosRunsB:    model.EstimatePosRuns(b, sfB, true, 3*tpch.ShipdateDays),
		Aggregating: agg,
		Groups:      sel * tpch.ShipdateDays,
	}, nil
}

// Fig13 regenerates Figure 13: the orders ⋈ customer join under the three
// inner-table materialization strategies, sweeping the orders.custkey
// predicate selectivity.
func (e *Env) Fig13(sels []float64) (Figure, error) {
	fig := Figure{
		ID:     "Figure 13",
		Title:  "join inner-table materialization (orders ⋈ customer)",
		XLabel: "selectivity",
		YLabel: "runtime ms, lower is better",
		X:      sels,
	}
	exec := e.executor()
	nCust := e.customer.TupleCount()
	for _, rs := range []operators.RightStrategy{
		operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
	} {
		ser := fig.series(seriesName(rs))
		for _, sel := range sels {
			q := core.JoinQuery{
				LeftKey:     tpch.ColCustkey,
				LeftPred:    pred.LessThan(tpch.CustkeyForSelectivity(sel, nCust)),
				LeftOutput:  []string{tpch.ColOrderShipdate},
				RightKey:    tpch.ColCustkey,
				RightOutput: []string{tpch.ColNationcode},
			}
			ms, err := e.timeJoin(exec, q, rs)
			if err != nil {
				return fig, err
			}
			ser.Y = append(ser.Y, ms)
		}
	}
	return fig, nil
}

func seriesName(rs operators.RightStrategy) string {
	switch rs {
	case operators.RightMaterialized:
		return "Right Table Materialized"
	case operators.RightMultiColumn:
		return "Right Table Multi-Column"
	default:
		return "Right Table Single Column"
	}
}

// Table2 re-measures the analytical-model constants on this host and
// returns them alongside the paper's values for comparison.
func Table2() (host, paper model.Constants) {
	return model.MeasureConstants(), model.Paper
}

// RenderTable2 prints the Table 2 comparison.
func RenderTable2(w io.Writer, host, paper model.Constants) {
	fmt.Fprintln(w, "Table 2 — analytical model constants (µs)")
	fmt.Fprintf(w, "%-10s%14s%14s\n", "constant", "this host", "paper (P4)")
	rows := []struct {
		name      string
		host, pap float64
	}{
		{"BIC", host.BIC, paper.BIC},
		{"TICTUP", host.TICTUP, paper.TICTUP},
		{"TICCOL", host.TICCOL, paper.TICCOL},
		{"FC", host.FC, paper.FC},
		{"SEEK", host.SEEK, paper.SEEK},
		{"READ", host.READ, paper.READ},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s%14.4f%14.4f\n", r.name, r.host, r.pap)
	}
	fmt.Fprintf(w, "%-10s%14.0f%14.0f  (positions ANDed per instruction)\n",
		"WORD", host.WordSize, paper.WordSize)
}

// CrossoverCheck extracts the qualitative claims of a figure: which series
// wins at the low end, which at the high end — the "shape" EXPERIMENTS.md
// records.
func CrossoverCheck(f Figure) (lowWinner, highWinner string) {
	if len(f.X) == 0 || len(f.Series) == 0 {
		return "", ""
	}
	lo, hi := 0, len(f.X)-1
	lowWinner, highWinner = f.Series[0].Name, f.Series[0].Name
	for _, s := range f.Series[1:] {
		if s.Y[lo] < bySeries(f, lowWinner).Y[lo] {
			lowWinner = s.Name
		}
		if s.Y[hi] < bySeries(f, highWinner).Y[hi] {
			highWinner = s.Name
		}
	}
	return lowWinner, highWinner
}

func bySeries(f Figure, name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return &Series{}
}

// SortedSeriesNames lists a figure's series names, sorted (for stable
// test output).
func SortedSeriesNames(f Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}
