package bench

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"matstore/internal/encoding"
	"matstore/internal/operators"
)

var (
	envOnce sync.Once
	envDir  string
	envErr  error
)

// testEnv builds a tiny experiment environment once per test binary.
func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envDir, envErr = os.MkdirTemp("", "matstore-bench-test")
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	e, err := Setup(envDir, 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	e.Runs = 1
	t.Cleanup(func() { e.Close() })
	return e
}

func TestMain(m *testing.M) {
	code := m.Run()
	if envDir != "" {
		os.RemoveAll(envDir)
	}
	if coordRoot != "" {
		os.RemoveAll(coordRoot)
	}
	if kpBenchRoot != "" {
		os.RemoveAll(kpBenchRoot)
	}
	os.Exit(code)
}

func TestSetupIsIdempotent(t *testing.T) {
	e := testEnv(t)
	if e.lineitem.TupleCount() == 0 {
		t.Fatal("empty lineitem")
	}
	// Second Setup must reuse the generated data, not regenerate.
	e2, err := Setup(envDir, 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.lineitem.TupleCount() != e.lineitem.TupleCount() {
		t.Error("re-setup changed the dataset")
	}
}

func smallSels() []float64 { return []float64{0.1, 0.9} }

func TestFig11AllPanels(t *testing.T) {
	e := testEnv(t)
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		fig, err := e.Fig11(enc, smallSels())
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		wantSeries := 4
		if enc == encoding.BitVector {
			wantSeries = 3 // the paper omits LM-pipelined for bit-vector
		}
		if len(fig.Series) != wantSeries {
			t.Errorf("%v: %d series, want %d (%v)", enc, len(fig.Series), wantSeries, SortedSeriesNames(fig))
		}
		for _, s := range fig.Series {
			if len(s.Y) != len(fig.X) {
				t.Errorf("%v/%s: %d points, want %d", enc, s.Name, len(s.Y), len(fig.X))
			}
			for _, y := range s.Y {
				if y < 0 {
					t.Errorf("%v/%s: negative runtime", enc, s.Name)
				}
			}
		}
	}
}

func TestFig12Runs(t *testing.T) {
	e := testEnv(t)
	fig, err := e.Fig12(encoding.RLE, smallSels())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Errorf("series = %v", SortedSeriesNames(fig))
	}
}

func TestFig10ModelAndReal(t *testing.T) {
	e := testEnv(t)
	lm, em, err := e.Fig10(smallSels())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{lm, em} {
		if len(fig.Series) != 4 { // 2 strategies × {Real, Model}
			t.Errorf("%s: series = %v", fig.ID, SortedSeriesNames(fig))
		}
		for _, s := range fig.Series {
			if len(s.Y) != len(fig.X) {
				t.Errorf("%s/%s: %d points, want %d", fig.ID, s.Name, len(s.Y), len(fig.X))
			}
			if strings.HasSuffix(s.Name, "Model") {
				for _, y := range s.Y {
					if y <= 0 {
						t.Errorf("%s/%s: non-positive model prediction %v", fig.ID, s.Name, y)
					}
				}
			}
		}
	}
}

func TestFig13Runs(t *testing.T) {
	e := testEnv(t)
	fig, err := e.Fig13(smallSels())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Errorf("series = %v", SortedSeriesNames(fig))
	}
}

func TestAblations(t *testing.T) {
	e := testEnv(t)
	if _, err := e.AblationMultiColumn(smallSels()); err != nil {
		t.Error(err)
	}
	if _, err := e.AblationPositionRep(smallSels()); err != nil {
		t.Error(err)
	}
	if _, err := e.AblationChunkSize([]int64{1024, 65536}); err != nil {
		t.Error(err)
	}
	if _, err := e.AblationAggCompressed(smallSels()); err != nil {
		t.Error(err)
	}
	if _, err := e.AblationZoneIndex(smallSels()); err != nil {
		t.Error(err)
	}
}

func TestJoinStatsMechanism(t *testing.T) {
	e := testEnv(t)
	single, err := e.JoinStatsAt(0.5, operators.RightSingleColumn)
	if err != nil {
		t.Fatal(err)
	}
	if single.Join.DeferredFetches == 0 {
		t.Error("single-column join must defer fetches (Figure 13 mechanism)")
	}
	mat, err := e.JoinStatsAt(0.5, operators.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Join.DeferredFetches != 0 {
		t.Error("materialized join must not defer fetches")
	}
	if mat.Join.RightBuildTuples == 0 {
		t.Error("materialized join must construct right tuples at build")
	}
}

func TestRenderAndCSV(t *testing.T) {
	fig := Figure{
		ID: "F", Title: "demo", XLabel: "selectivity", YLabel: "ms",
		X:      []float64{0.1, 0.2},
		Series: []Series{{Name: "a", Y: []float64{1, 2}}, {Name: "b", Y: []float64{3, 4}}},
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "selectivity", "a", "b", "0.100"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	fig.CSV(&buf)
	if got := buf.String(); !strings.HasPrefix(got, "selectivity,a,b\n0.1,1,3\n") {
		t.Errorf("CSV = %q", got)
	}
}

func TestCrossoverCheck(t *testing.T) {
	fig := Figure{
		X: []float64{0, 1},
		Series: []Series{
			{Name: "lo-wins", Y: []float64{1, 10}},
			{Name: "hi-wins", Y: []float64{5, 2}},
		},
	}
	lo, hi := CrossoverCheck(fig)
	if lo != "lo-wins" || hi != "hi-wins" {
		t.Errorf("CrossoverCheck = %q, %q", lo, hi)
	}
	if lo, hi := CrossoverCheck(Figure{}); lo != "" || hi != "" {
		t.Error("empty figure crossover should be empty")
	}
}

func TestTable2(t *testing.T) {
	host, paper := Table2()
	if host.FC <= 0 || paper.FC != 0.009 {
		t.Errorf("Table2 host FC=%v paper FC=%v", host.FC, paper.FC)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, host, paper)
	if !strings.Contains(buf.String(), "TICTUP") {
		t.Error("RenderTable2 missing rows")
	}
}

func TestPositionIntersectMicro(t *testing.T) {
	sets := PositionIntersectMicro(1 << 12)
	if len(sets) != 3 {
		t.Fatalf("got %d micro cases", len(sets))
	}
	// ranges(0..n/2) ∧ even positions: n/4 survivors.
	if got := sets["ranges-x-bitmap"].Count(); got != 1<<10 {
		t.Errorf("ranges-x-bitmap count = %d, want %d", got, 1<<10)
	}
}
