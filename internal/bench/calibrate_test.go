package bench

import (
	"context"
	"testing"

	"matstore"
	"matstore/internal/service"
)

// TestCalibrationReducesError is the closed-loop acceptance test: refitting
// the cost-model constants from the mixed workload's observed per-node times
// must reduce the total modeled-vs-observed error relative to the paper's
// Table 2 constants, install the fit on the DB, and leave the serving path
// fully functional (the closed loop still passes its differential-checked
// execution under the new constants and cost-sized grants).
func TestCalibrationReducesError(t *testing.T) {
	e := testEnv(t)
	e.Close()
	db, err := matstore.Open(envDir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if db.Constants() != matstore.PaperConstants() {
		t.Fatalf("fresh DB not on paper constants: %+v", db.Constants())
	}
	reqs := MixedWorkload(300)
	rep, err := CalibrateDB(db, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observations < 10 {
		t.Fatalf("workload yielded only %d observations", rep.Observations)
	}
	if rep.Prior != matstore.PaperConstants() {
		t.Errorf("calibration prior is not the paper constants: %+v", rep.Prior)
	}
	if rep.FittedErrUS >= rep.PriorErrUS {
		t.Errorf("calibration did not reduce modeled-vs-observed error: %.1fµs -> %.1fµs",
			rep.PriorErrUS, rep.FittedErrUS)
	}
	if db.Constants() != rep.Fitted {
		t.Error("CalibrateDB did not install the fitted constants")
	}
	for _, v := range []float64{
		rep.Fitted.BIC, rep.Fitted.TICTUP, rep.Fitted.TICCOL, rep.Fitted.FC,
	} {
		if v <= 0 {
			t.Errorf("fitted constant not positive: %+v", rep.Fitted)
		}
	}

	// The serving path runs on the fit: advisors, estimates and grants all
	// consume db.Constants() — one closed-loop pass must still succeed.
	srv := service.New(db, service.Config{WorkerBudget: 2, MaxConcurrent: 4})
	stats, err := RunClosedLoop(context.Background(), srv, 2, 1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * len(reqs)); stats.Requests != want {
		t.Errorf("closed loop under calibrated constants ran %d requests, want %d", stats.Requests, want)
	}
}
