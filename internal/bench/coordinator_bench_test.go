package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"matstore"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// Coordinator-overhead benchmarks for the perf snapshot (make bench-json →
// BENCH_PR8.json): the Direct/1Shard pair isolates what the scatter-gather
// hop costs over executing in-process behind the same HTTP surface (one
// extra request round-trip plus partial-merge bookkeeping at identical
// work), and the closed-loop sweep at shard counts {1,2,4} reports
// mixed-workload tail latency as the same dataset spreads over more
// engines.

var (
	coordOnce sync.Once
	coordRoot string
	coordErr  error
)

// coordData generates one sharded layout per benchmarked shard count from
// the same generator config as the bench env dataset.
func coordData(b *testing.B) string {
	b.Helper()
	coordOnce.Do(func() {
		coordRoot, coordErr = os.MkdirTemp("", "matstore-bench-coord")
		if coordErr != nil {
			return
		}
		for _, n := range []int{1, 2, 4} {
			dir := fmt.Sprintf("%s/s%d", coordRoot, n)
			if coordErr = os.MkdirAll(dir, 0o755); coordErr != nil {
				return
			}
			if _, coordErr = tpch.GenerateSharded(dir, tpch.Config{Scale: 0.002, Seed: 7}, n); coordErr != nil {
				return
			}
		}
	})
	if coordErr != nil {
		b.Fatal(coordErr)
	}
	return coordRoot
}

// benchFleet boots one engine per shard behind httptest plus a coordinator
// fronting them, and returns the coordinator's base URL.
func benchFleet(b *testing.B, shards int) string {
	b.Helper()
	root := fmt.Sprintf("%s/s%d", coordData(b), shards)
	var endpoints []string
	for k := 0; k < shards; k++ {
		db, err := matstore.Open(fmt.Sprintf("%s/shard-%03d", root, k))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		// Result cache off so every request exercises the fan-out path.
		srv := service.New(db, service.Config{WorkerBudget: 2, MaxConcurrent: 8, ResultCacheBytes: -1})
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		endpoints = append(endpoints, ts.URL)
	}
	coord, err := service.NewCoordinator(root, endpoints, service.CoordinatorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	b.Cleanup(ts.Close)
	return ts.URL
}

// benchDirect serves the 1-shard directory from a single engine — the
// no-coordinator baseline over the identical data and HTTP surface.
func benchDirect(b *testing.B) string {
	b.Helper()
	db, err := matstore.Open(fmt.Sprintf("%s/s1/shard-000", coordData(b)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	srv := service.New(db, service.Config{WorkerBudget: 2, MaxConcurrent: 8, ResultCacheBytes: -1})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts.URL
}

const coordBenchQuery = `{"projection":"lineitem","output":["shipdate","linenum"],"where":["shipdate<400","linenum<7"],"strategy":"lm-parallel","parallelism":2,"limit":-1}`

// coordBenchBodies is the closed-loop mix: a selection, an aggregation
// (GroupStats merge path) and a join against the replicated inner table.
var coordBenchBodies = []struct{ path, body string }{
	{"/query", coordBenchQuery},
	{"/query", `{"projection":"lineitem","groupby":"returnflag","aggcol":"quantity","agg":"avg","where":["shipdate<1500"],"strategy":"lm-parallel","parallelism":2,"limit":-1}`},
	{"/join", `{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"where":["custkey<150"],"rightstrategy":"right-materialized","parallelism":2,"limit":-1}`},
}

func coordPost(b *testing.B, url, body string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		b.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
}

// BenchmarkCoordinatorOverheadDirect: the reference — one engine executing
// the selection in-process behind HTTP, no coordinator in the path.
func BenchmarkCoordinatorOverheadDirect(b *testing.B) {
	url := benchDirect(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coordPost(b, url+"/query", coordBenchQuery)
	}
}

// BenchmarkCoordinatorOverhead1Shard: the same selection through a 1-shard
// coordinator — the pure scatter-gather hop cost (one fan-out request,
// merge of one partial) at identical execution work.
func BenchmarkCoordinatorOverhead1Shard(b *testing.B) {
	url := benchFleet(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coordPost(b, url+"/query", coordBenchQuery)
	}
}

// runCoordClosedLoop drives 8 client goroutines × 4 rounds of the mix
// through the coordinator and reports latency percentiles alongside ns/op.
func runCoordClosedLoop(b *testing.B, shards int) {
	url := benchFleet(b, shards)
	const clients, rounds = 8, 4
	b.ReportAllocs()
	b.ResetTimer()
	var lats []time.Duration
	for i := 0; i < b.N; i++ {
		all := make([][]time.Duration, clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for _, req := range coordBenchBodies {
						t0 := time.Now()
						coordPost(b, url+req.path, req.body)
						all[c] = append(all[c], time.Since(t0))
					}
				}
			}(c)
		}
		wg.Wait()
		lats = lats[:0]
		for _, l := range all {
			lats = append(lats, l...)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		return float64(lats[int(p*float64(len(lats)-1))].Microseconds())
	}
	b.ReportMetric(pct(0.50), "p50_us")
	b.ReportMetric(pct(0.95), "p95_us")
	b.ReportMetric(pct(0.99), "p99_us")
}

// BenchmarkCoordinatorClosedLoop{1,2,4}Shard: the mixed workload through
// coordinators over 1, 2 and 4 shard engines — how fan-out width moves the
// tail when the same rows spread over more engines.
func BenchmarkCoordinatorClosedLoop1Shard(b *testing.B) { runCoordClosedLoop(b, 1) }
func BenchmarkCoordinatorClosedLoop2Shard(b *testing.B) { runCoordClosedLoop(b, 2) }
func BenchmarkCoordinatorClosedLoop4Shard(b *testing.B) { runCoordClosedLoop(b, 4) }
