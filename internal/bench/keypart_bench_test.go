package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"matstore"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// Key-partitioning benchmarks for the perf snapshot (make bench-json →
// BENCH_PR9.json): each pair runs the SAME request against the same rows
// under two layouts, so the deltas isolate what co-partitioning buys.
//
//   - JoinFanoutReplicated vs JoinFanoutCopartitioned: a fanned-out join
//     whose inner table is replicated builds the FULL customer hash table on
//     every shard (N× build tuples, N× build bytes/allocs); co-partitioned
//     on custkey, each shard builds only its 1/N key slice, so the summed
//     build_tuples metric drops back to 1× at every shard count.
//   - AggMergeStats vs AggMergeFinalized: a custkey group-by over
//     range-sharded orders ships every shard's full per-group statistics
//     (~all groups appear on every shard) for an AbsorbGroups pass;
//     partitioned on custkey the groups are disjoint, shards ship finalized
//     rows, and the summed shard response payload (shard_resp_bytes)
//     shrinks with no statistics wire at all.
//
// Build caches are disabled on both sides of each pair so every operation
// pays its layout's true build cost rather than the first iteration's.

var (
	kpBenchOnce sync.Once
	kpBenchRoot string
	kpBenchErr  error
)

// keypartBenchData generates the co-partitioned counterpart of coordData:
// same generator config, orders and customer hash-partitioned on custkey.
func keypartBenchData(b *testing.B) string {
	b.Helper()
	kpBenchOnce.Do(func() {
		kpBenchRoot, kpBenchErr = os.MkdirTemp("", "matstore-bench-keypart")
		if kpBenchErr != nil {
			return
		}
		layout := tpch.ShardLayout{PartitionKeys: map[string]string{
			tpch.OrdersProj:   tpch.ColCustkey,
			tpch.CustomerProj: tpch.ColCustkey,
		}}
		for _, n := range []int{1, 2, 4} {
			dir := fmt.Sprintf("%s/s%d", kpBenchRoot, n)
			if kpBenchErr = os.MkdirAll(dir, 0o755); kpBenchErr != nil {
				return
			}
			if _, kpBenchErr = tpch.GenerateShardedLayout(dir, tpch.Config{Scale: 0.002, Seed: 7}, n, layout); kpBenchErr != nil {
				return
			}
		}
	})
	if kpBenchErr != nil {
		b.Fatal(kpBenchErr)
	}
	return kpBenchRoot
}

// countingTransport counts shard response body bytes — the coordinator's
// actual merge payload, statistics wire included.
type countingTransport struct {
	bytes atomic.Int64
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	t.bytes.Add(int64(len(raw)))
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp, nil
}

// pairedFleet boots shard engines (build and result caches off, so repeated
// joins rebuild) under root/s<shards> plus a coordinator whose shard client
// counts merge payload bytes.
func pairedFleet(b *testing.B, root string, shards int) (string, *countingTransport) {
	b.Helper()
	dir := fmt.Sprintf("%s/s%d", root, shards)
	var endpoints []string
	for k := 0; k < shards; k++ {
		db, err := matstore.Open(fmt.Sprintf("%s/shard-%03d", dir, k))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		srv := service.New(db, service.Config{
			WorkerBudget: 2, MaxConcurrent: 8,
			ResultCacheBytes: -1, BuildCacheBytes: -1,
		})
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		endpoints = append(endpoints, ts.URL)
	}
	ct := &countingTransport{}
	coord, err := service.NewCoordinator(dir, endpoints, service.CoordinatorConfig{
		Client: &http.Client{Transport: ct},
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	b.Cleanup(ts.Close)
	return ts.URL, ct
}

const (
	// The paired join: orders ⋈ customer on custkey. Replicated layouts build
	// the full customer table per shard; co-partitioned layouts build 1/N.
	kpJoinBody = `{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"rightstrategy":"right-materialized","parallelism":2,"limit":-1}`
	// The paired aggregation: custkey group-by over orders. Range-sharded it
	// takes the statistics wire; custkey-partitioned it finalizes on-shard.
	kpAggBody = `{"projection":"orders","groupby":"custkey","aggcol":"shipdate","agg":"min","parallelism":2,"limit":-1}`
)

// postDecode POSTs and decodes the merged response for its counters.
func postDecode(b *testing.B, url, body string) *service.QueryResponse {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	out := new(service.QueryResponse)
	if err := json.Unmarshal(raw, out); err != nil {
		b.Fatal(err)
	}
	return out
}

// runJoinFanout reports ns/op plus build_tuples, the summed right-side hash
// build size across shards — N× the customer table when replicated, 1× when
// co-partitioned.
func runJoinFanout(b *testing.B, root string, shards int) {
	url, _ := pairedFleet(b, root, shards)
	b.ReportAllocs()
	b.ResetTimer()
	var built int64
	for i := 0; i < b.N; i++ {
		built += postDecode(b, url+"/join", kpJoinBody).BuildTuples
	}
	b.ReportMetric(float64(built)/float64(b.N), "build_tuples")
}

func BenchmarkJoinFanoutReplicated1Shard(b *testing.B) { runJoinFanout(b, coordData(b), 1) }
func BenchmarkJoinFanoutReplicated2Shard(b *testing.B) { runJoinFanout(b, coordData(b), 2) }
func BenchmarkJoinFanoutReplicated4Shard(b *testing.B) { runJoinFanout(b, coordData(b), 4) }

func BenchmarkJoinFanoutCopartitioned1Shard(b *testing.B) { runJoinFanout(b, keypartBenchData(b), 1) }
func BenchmarkJoinFanoutCopartitioned2Shard(b *testing.B) { runJoinFanout(b, keypartBenchData(b), 2) }
func BenchmarkJoinFanoutCopartitioned4Shard(b *testing.B) { runJoinFanout(b, keypartBenchData(b), 4) }

// runAggMerge reports ns/op plus shard_resp_bytes, the summed shard response
// payload the coordinator merges per operation — per-group statistics from
// every shard on the range layout, disjoint finalized rows on the
// partitioned one.
func runAggMerge(b *testing.B, root string, shards int) {
	url, ct := pairedFleet(b, root, shards)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postDecode(b, url+"/query", kpAggBody)
	}
	b.ReportMetric(float64(ct.bytes.Load())/float64(b.N), "shard_resp_bytes")
}

func BenchmarkAggMergeStats1Shard(b *testing.B) { runAggMerge(b, coordData(b), 1) }
func BenchmarkAggMergeStats2Shard(b *testing.B) { runAggMerge(b, coordData(b), 2) }
func BenchmarkAggMergeStats4Shard(b *testing.B) { runAggMerge(b, coordData(b), 4) }

func BenchmarkAggMergeFinalized1Shard(b *testing.B) { runAggMerge(b, keypartBenchData(b), 1) }
func BenchmarkAggMergeFinalized2Shard(b *testing.B) { runAggMerge(b, keypartBenchData(b), 2) }
func BenchmarkAggMergeFinalized4Shard(b *testing.B) { runAggMerge(b, keypartBenchData(b), 4) }
