package bench

import (
	"context"
	"os"
	"testing"

	"matstore"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// Server-path benchmarks for the perf snapshot (make bench-json →
// BENCH_PR6.json): the cold vs cached join build isolates what the shared
// build cache saves per query, the result-cache pair isolates what serving a
// repeated query from cached bytes saves over re-executing it, and the
// closed-loop benchmarks measure mixed-workload throughput and tail latency
// under 8 concurrent sessions on one worker budget, with and without the
// result cache absorbing repeats.

func benchServerCfg(b *testing.B, cfg service.Config) *service.Server {
	b.Helper()
	envOnce.Do(func() {
		envDir, envErr = os.MkdirTemp("", "matstore-bench-test")
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	// Reuse the test env's generated dataset (Setup is idempotent).
	e, err := Setup(envDir, 0.002, 7)
	if err != nil {
		b.Fatal(err)
	}
	e.Close()
	db, err := matstore.Open(envDir)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return service.New(db, cfg)
}

func benchServer(b *testing.B, caches bool) *service.Server {
	cfg := service.Config{WorkerBudget: 2, MaxConcurrent: 8}
	if !caches {
		cfg.BuildCacheBytes = -1
		cfg.PlanCacheEntries = -1
		cfg.ResultCacheBytes = -1
	} else {
		// The execution-cache benchmarks measure plan/build reuse; the result
		// cache would short-circuit the very execution being measured.
		cfg.ResultCacheBytes = -1
	}
	return benchServerCfg(b, cfg)
}

func benchJoin() matstore.JoinQuery {
	return matstore.JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    matstore.LessThan(150),
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
}

// BenchmarkServerJoinBuildCold: every join rebuilds the partitioned hash
// side (caches disabled) — the no-sharing baseline.
func BenchmarkServerJoinBuildCold(b *testing.B) {
	srv := benchServer(b, false)
	sess := srv.NewSession()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, benchJoin(), matstore.RightMaterialized); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerJoinBuildCached: the same join through the shared build
// and plan caches — after the first iteration every probe reuses the
// retained hash side.
func BenchmarkServerJoinBuildCached(b *testing.B) {
	srv := benchServer(b, true)
	sess := srv.NewSession()
	ctx := context.Background()
	if _, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, benchJoin(), matstore.RightMaterialized); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, benchJoin(), matstore.RightMaterialized)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Info.BuildCacheHit {
			b.Fatal("cached join missed the build cache")
		}
	}
}

// BenchmarkServerResultCacheHit: the same join answered from the result
// cache — no admission, no workers, no probe.
func BenchmarkServerResultCacheHit(b *testing.B) {
	srv := benchServerCfg(b, service.Config{WorkerBudget: 2, MaxConcurrent: 8})
	sess := srv.NewSession()
	ctx := context.Background()
	if _, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, benchJoin(), matstore.RightMaterialized); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, benchJoin(), matstore.RightMaterialized)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Info.ResultCacheHit {
			b.Fatal("repeated join missed the result cache")
		}
	}
}

// runClosedLoopBench drives 8 sessions × 2 rounds of the mix and reports
// tail latency alongside ns/op.
func runClosedLoopBench(b *testing.B, srv *service.Server) {
	reqs := MixedWorkload(300)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var last WorkloadStats
	for i := 0; i < b.N; i++ {
		stats, err := RunClosedLoop(ctx, srv, 8, 2, reqs)
		if err != nil {
			b.Fatal(err)
		}
		last = stats
	}
	b.ReportMetric(float64(last.P50.Microseconds()), "p50_us")
	b.ReportMetric(float64(last.P95.Microseconds()), "p95_us")
	b.ReportMetric(float64(last.P99.Microseconds()), "p99_us")
}

// BenchmarkServerClosedLoopMiss: closed-loop mixed workload with the result
// cache disabled — every repeat re-executes (the admission-bound baseline).
func BenchmarkServerClosedLoopMiss(b *testing.B) {
	runClosedLoopBench(b, benchServer(b, true))
}

// BenchmarkServerClosedLoopHit: the same closed loop with the result cache
// on — after the first pass over the mix, repeats are served from cached
// bytes without admission.
func BenchmarkServerClosedLoopHit(b *testing.B) {
	runClosedLoopBench(b, benchServerCfg(b, service.Config{WorkerBudget: 2, MaxConcurrent: 8}))
}
