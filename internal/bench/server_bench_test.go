package bench

import (
	"os"
	"testing"

	"matstore"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// Server-path benchmarks for the perf snapshot (make bench-json →
// BENCH_PR5.json): the cold vs cached join build isolates what the shared
// build cache saves per query, and the admission benchmark measures
// closed-loop mixed-workload throughput under 8 concurrent sessions on one
// worker budget.

func benchServer(b *testing.B, caches bool) *service.Server {
	b.Helper()
	envOnce.Do(func() {
		envDir, envErr = os.MkdirTemp("", "matstore-bench-test")
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	// Reuse the test env's generated dataset (Setup is idempotent).
	e, err := Setup(envDir, 0.002, 7)
	if err != nil {
		b.Fatal(err)
	}
	e.Close()
	db, err := matstore.Open(envDir)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	cfg := service.Config{WorkerBudget: 2, MaxConcurrent: 8}
	if !caches {
		cfg.BuildCacheBytes = -1
		cfg.PlanCacheEntries = -1
	}
	return service.New(db, cfg)
}

func benchJoin() matstore.JoinQuery {
	return matstore.JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    matstore.LessThan(150),
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
}

// BenchmarkServerJoinBuildCold: every join rebuilds the partitioned hash
// side (caches disabled) — the no-sharing baseline.
func BenchmarkServerJoinBuildCold(b *testing.B) {
	srv := benchServer(b, false)
	sess := srv.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Join(tpch.OrdersProj, tpch.CustomerProj, benchJoin(), matstore.RightMaterialized); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerJoinBuildCached: the same join through the shared build
// and plan caches — after the first iteration every probe reuses the
// retained hash side.
func BenchmarkServerJoinBuildCached(b *testing.B) {
	srv := benchServer(b, true)
	sess := srv.NewSession()
	if _, err := sess.Join(tpch.OrdersProj, tpch.CustomerProj, benchJoin(), matstore.RightMaterialized); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sess.Join(tpch.OrdersProj, tpch.CustomerProj, benchJoin(), matstore.RightMaterialized)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Info.BuildCacheHit {
			b.Fatal("cached join missed the build cache")
		}
	}
}

// BenchmarkServerAdmission8Sessions: one closed-loop pass of the mixed
// workload by 8 concurrent sessions through admission control on a 2-worker
// budget (queries queue and derate).
func BenchmarkServerAdmission8Sessions(b *testing.B) {
	srv := benchServer(b, true)
	reqs := MixedWorkload(300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunClosedLoop(srv, 8, 1, reqs); err != nil {
			b.Fatal(err)
		}
	}
}
