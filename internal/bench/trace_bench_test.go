package bench

import (
	"context"
	"testing"

	"matstore"
	"matstore/internal/obs"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// Paired tracing-overhead benchmarks (make bench-json → BENCH_PR10.json):
// the same selection through the session path with tracing off (the default
// — SpanFromContext returns nil and every instrumentation site is a nil
// check) versus on (a trace attached to the request context, per-phase
// spans wall-clocked, per-plan-node spans synthesized, the tree rendered to
// JSON). TraceOff is the regression guard: its ns/op and allocs/op must
// stay at the pre-tracing baseline.

func benchTraceQuery() matstore.Query {
	return matstore.Query{
		Output:      []string{tpch.ColShipdate, tpch.ColLinenum},
		Filters:     []matstore.Filter{{Col: tpch.ColShipdate, Pred: matstore.LessThan(400)}},
		Parallelism: 1,
	}
}

func benchTraceServer(b *testing.B) *service.Server {
	// Result cache off so every iteration executes; plan cache on, the
	// steady-state serving shape (the traced path bypasses it by design, so
	// TraceOn measures the full build+execute cost).
	return benchServerCfg(b, service.Config{
		WorkerBudget: 2, MaxConcurrent: 8, ResultCacheBytes: -1,
	})
}

// BenchmarkServerQueryTraceOff: the default untraced session path.
func BenchmarkServerQueryTraceOff(b *testing.B) {
	srv := benchTraceServer(b)
	sess := srv.NewSession()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Select(ctx, tpch.LineitemProj, benchTraceQuery(), matstore.LMParallel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerQueryTraceOn: the same selection with a span tree attached
// and rendered every iteration.
func BenchmarkServerQueryTraceOn(b *testing.B) {
	srv := benchTraceServer(b)
	sess := srv.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("", "bench")
		ctx := obs.ContextWithSpan(context.Background(), tr.Root())
		if _, err := sess.Select(ctx, tpch.LineitemProj, benchTraceQuery(), matstore.LMParallel); err != nil {
			b.Fatal(err)
		}
		tr.Root().End()
		if tr.JSON() == nil {
			b.Fatal("no trace rendered")
		}
	}
}
