// Mixed-workload closed-loop driver: replays a paper-shaped query mix —
// selections and aggregations under all four materialization strategies plus
// the Figure 13 join under all three inner-table strategies, at several
// selectivities — through a service.Server with N concurrent closed-loop
// sessions. The service differential suite replays the same mix
// request-by-request against serial single-query execution; the server-path
// benchmarks drive it for throughput numbers.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"matstore"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// Request is one workload item: a selection/aggregation or a join.
type Request struct {
	Name   string
	IsJoin bool

	// Selection fields (IsJoin false).
	Projection string
	Query      matstore.Query
	Strategy   matstore.Strategy

	// Join fields (IsJoin true).
	Left, Right   string
	JoinQuery     matstore.JoinQuery
	RightStrategy matstore.RightStrategy
}

// Run executes the request through a server session (parallelism as granted
// by the admission governor) and returns the result with the service info.
func (r Request) Run(sess *service.Session) (*matstore.Result, service.Info, error) {
	if r.IsJoin {
		out, err := sess.Join(r.Left, r.Right, r.JoinQuery, r.RightStrategy)
		if err != nil {
			return nil, service.Info{}, err
		}
		return out.Res, out.Info, nil
	}
	out, err := sess.Select(r.Projection, r.Query, r.Strategy)
	if err != nil {
		return nil, service.Info{}, err
	}
	return out.Res, out.Info, nil
}

// RunSerial executes the request directly against a DB, serial
// chunk-at-a-time (parallelism 1) — the reference the differential suite
// pins served results against.
func (r Request) RunSerial(db *matstore.DB) (*matstore.Result, error) {
	if r.IsJoin {
		q := r.JoinQuery
		q.Parallelism = 1
		res, _, err := db.Join(r.Left, r.Right, q, r.RightStrategy)
		return res, err
	}
	q := r.Query
	q.Parallelism = 1
	res, _, err := db.Select(r.Projection, q, r.Strategy)
	return res, err
}

// MixedWorkload builds the standard mix over the generated TPC-H-shaped
// dataset: the Section 4 selection at low/mid/high selectivity × all four
// strategies, an aggregation under both pipelined strategies, and the
// Figure 13 join at two selectivities × all three inner-table strategies.
// nCust is the customer cardinality (scales the join predicate).
func MixedWorkload(nCust int64) []Request {
	var reqs []Request
	for _, sel := range []float64{0.02, 0.5, 0.9} {
		for _, s := range []matstore.Strategy{
			matstore.EMPipelined, matstore.EMParallel, matstore.LMPipelined, matstore.LMParallel,
		} {
			reqs = append(reqs, Request{
				Name:       fmt.Sprintf("select/%v/sel=%v", s, sel),
				Projection: tpch.LineitemProj,
				Query: matstore.Query{
					Output: []string{tpch.ColShipdate, tpch.ColLinenum},
					Filters: []matstore.Filter{
						{Col: tpch.ColShipdate, Pred: matstore.LessThan(tpch.ShipdateForSelectivity(sel))},
						{Col: tpch.ColLinenum, Pred: matstore.LessThan(tpch.LinenumMax)},
					},
				},
				Strategy: s,
			})
		}
	}
	for _, s := range []matstore.Strategy{matstore.EMPipelined, matstore.LMPipelined} {
		reqs = append(reqs, Request{
			Name:       fmt.Sprintf("agg/%v", s),
			Projection: tpch.LineitemProj,
			Query: matstore.Query{
				Filters: []matstore.Filter{
					{Col: tpch.ColShipdate, Pred: matstore.LessThan(tpch.ShipdateForSelectivity(0.5))},
				},
				GroupBy: tpch.ColRetflag,
				AggCol:  tpch.ColQuantity,
				Agg:     matstore.Sum,
			},
			Strategy: s,
		})
	}
	for _, sel := range []float64{0.1, 0.9} {
		for _, rs := range []matstore.RightStrategy{
			matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
		} {
			reqs = append(reqs, Request{
				Name:   fmt.Sprintf("join/%v/sel=%v", rs, sel),
				IsJoin: true,
				Left:   tpch.OrdersProj,
				Right:  tpch.CustomerProj,
				JoinQuery: matstore.JoinQuery{
					LeftKey:     tpch.ColCustkey,
					LeftPred:    matstore.LessThan(tpch.CustkeyForSelectivity(sel, nCust)),
					LeftOutput:  []string{tpch.ColOrderShipdate},
					RightKey:    tpch.ColCustkey,
					RightOutput: []string{tpch.ColNationcode},
				},
				RightStrategy: rs,
			})
		}
	}
	return reqs
}

// WorkloadStats aggregates one closed-loop run.
type WorkloadStats struct {
	Requests       int64
	PlanCacheHits  int64
	BuildCacheHits int64
	Wall           time.Duration
}

// RunClosedLoop replays the mix through the server: sessions concurrent
// closed-loop clients each perform rounds full passes over reqs, starting at
// staggered offsets so different request shapes overlap in flight. The first
// error aborts the run.
func RunClosedLoop(srv *service.Server, sessions, rounds int, reqs []Request) (WorkloadStats, error) {
	var stats WorkloadStats
	var planHits, buildHits, count atomic.Int64
	errs := make([]error, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := srv.NewSession()
			off := c * len(reqs) / sessions
			for round := 0; round < rounds; round++ {
				for i := range reqs {
					req := reqs[(off+i)%len(reqs)]
					_, info, err := req.Run(sess)
					if err != nil {
						errs[c] = fmt.Errorf("%s: %w", req.Name, err)
						return
					}
					count.Add(1)
					if info.PlanCacheHit {
						planHits.Add(1)
					}
					if info.BuildCacheHit {
						buildHits.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	stats.Requests = count.Load()
	stats.PlanCacheHits = planHits.Load()
	stats.BuildCacheHits = buildHits.Load()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}
