// Mixed-workload closed-loop driver: replays a paper-shaped query mix —
// selections and aggregations under all four materialization strategies plus
// the Figure 13 join under all three inner-table strategies, at several
// selectivities — through a service.Server with N concurrent closed-loop
// sessions. The service differential suite replays the same mix
// request-by-request against serial single-query execution; the server-path
// benchmarks drive it for throughput and tail-latency numbers; the same mix
// executed serially under EXPLAIN yields the observations CalibrateDB refits
// the cost-model constants from.
package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"matstore"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// Request is one workload item: a selection/aggregation or a join.
type Request struct {
	Name   string
	IsJoin bool

	// Selection fields (IsJoin false).
	Projection string
	Query      matstore.Query
	Strategy   matstore.Strategy

	// Join fields (IsJoin true).
	Left, Right   string
	JoinQuery     matstore.JoinQuery
	RightStrategy matstore.RightStrategy
}

// Run executes the request through a server session (parallelism as granted
// by the admission governor) and returns the result with the service info.
func (r Request) Run(ctx context.Context, sess *service.Session) (*matstore.Result, service.Info, error) {
	if r.IsJoin {
		out, err := sess.Join(ctx, r.Left, r.Right, r.JoinQuery, r.RightStrategy)
		if err != nil {
			return nil, service.Info{}, err
		}
		return out.Res, out.Info, nil
	}
	out, err := sess.Select(ctx, r.Projection, r.Query, r.Strategy)
	if err != nil {
		return nil, service.Info{}, err
	}
	return out.Res, out.Info, nil
}

// RunSerial executes the request directly against a DB, serial
// chunk-at-a-time (parallelism 1) — the reference the differential suite
// pins served results against.
func (r Request) RunSerial(db *matstore.DB) (*matstore.Result, error) {
	if r.IsJoin {
		q := r.JoinQuery
		q.Parallelism = 1
		res, _, err := db.Join(r.Left, r.Right, q, r.RightStrategy)
		return res, err
	}
	q := r.Query
	q.Parallelism = 1
	res, _, err := db.Select(r.Projection, q, r.Strategy)
	return res, err
}

// Explain executes the request serially under EXPLAIN (per-node observation
// on) — the calibration path: serial execution keeps each node's observed
// self-time comparable to the model's one-worker prediction.
func (r Request) Explain(db *matstore.DB) (*matstore.Explanation, error) {
	if r.IsJoin {
		q := r.JoinQuery
		q.Parallelism = 1
		return db.ExplainJoin(r.Left, r.Right, q, r.RightStrategy)
	}
	q := r.Query
	q.Parallelism = 1
	return db.Explain(r.Projection, q, r.Strategy)
}

// CalibrateDB refits the DB's cost-model CPU constants from the workload:
// every request is explained serially, the per-node (feature vector,
// observed time) observations are pooled, FitConstants solves for the
// constants that minimize modeled-vs-observed error (never worse than the
// current constants on this pool), and the fit is installed on the DB for
// every subsequent advisor call, EXPLAIN annotation and admission grant.
func CalibrateDB(db *matstore.DB, reqs []Request) (matstore.CalibrationReport, error) {
	var obs []matstore.Observation
	for _, r := range reqs {
		ex, err := r.Explain(db)
		if err != nil {
			return matstore.CalibrationReport{}, fmt.Errorf("%s: %w", r.Name, err)
		}
		obs = append(obs, ex.Observations()...)
	}
	fitted, rep := matstore.FitConstants(obs, db.Constants())
	db.SetConstants(fitted)
	return rep, nil
}

// MixedWorkload builds the standard mix over the generated TPC-H-shaped
// dataset: the Section 4 selection at low/mid/high selectivity × all four
// strategies, an aggregation under both pipelined strategies, and the
// Figure 13 join at two selectivities × all three inner-table strategies.
// nCust is the customer cardinality (scales the join predicate).
func MixedWorkload(nCust int64) []Request {
	var reqs []Request
	for _, sel := range []float64{0.02, 0.5, 0.9} {
		for _, s := range []matstore.Strategy{
			matstore.EMPipelined, matstore.EMParallel, matstore.LMPipelined, matstore.LMParallel,
		} {
			reqs = append(reqs, Request{
				Name:       fmt.Sprintf("select/%v/sel=%v", s, sel),
				Projection: tpch.LineitemProj,
				Query: matstore.Query{
					Output: []string{tpch.ColShipdate, tpch.ColLinenum},
					Filters: []matstore.Filter{
						{Col: tpch.ColShipdate, Pred: matstore.LessThan(tpch.ShipdateForSelectivity(sel))},
						{Col: tpch.ColLinenum, Pred: matstore.LessThan(tpch.LinenumMax)},
					},
				},
				Strategy: s,
			})
		}
	}
	for _, s := range []matstore.Strategy{matstore.EMPipelined, matstore.LMPipelined} {
		reqs = append(reqs, Request{
			Name:       fmt.Sprintf("agg/%v", s),
			Projection: tpch.LineitemProj,
			Query: matstore.Query{
				Filters: []matstore.Filter{
					{Col: tpch.ColShipdate, Pred: matstore.LessThan(tpch.ShipdateForSelectivity(0.5))},
				},
				GroupBy: tpch.ColRetflag,
				AggCol:  tpch.ColQuantity,
				Agg:     matstore.Sum,
			},
			Strategy: s,
		})
	}
	for _, sel := range []float64{0.1, 0.9} {
		for _, rs := range []matstore.RightStrategy{
			matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
		} {
			reqs = append(reqs, Request{
				Name:   fmt.Sprintf("join/%v/sel=%v", rs, sel),
				IsJoin: true,
				Left:   tpch.OrdersProj,
				Right:  tpch.CustomerProj,
				JoinQuery: matstore.JoinQuery{
					LeftKey:     tpch.ColCustkey,
					LeftPred:    matstore.LessThan(tpch.CustkeyForSelectivity(sel, nCust)),
					LeftOutput:  []string{tpch.ColOrderShipdate},
					RightKey:    tpch.ColCustkey,
					RightOutput: []string{tpch.ColNationcode},
				},
				RightStrategy: rs,
			})
		}
	}
	return reqs
}

// WorkloadStats aggregates one closed-loop run.
type WorkloadStats struct {
	Requests        int64
	ResultCacheHits int64
	PlanCacheHits   int64
	BuildCacheHits  int64
	Wall            time.Duration
	// Per-request latency distribution tail.
	P50, P95, P99 time.Duration
}

// RunClosedLoop replays the mix through the server: sessions concurrent
// closed-loop clients each perform rounds full passes over reqs, starting at
// staggered offsets so different request shapes overlap in flight. The first
// error aborts the run; cancelling ctx aborts queued requests.
func RunClosedLoop(ctx context.Context, srv *service.Server, sessions, rounds int, reqs []Request) (WorkloadStats, error) {
	var stats WorkloadStats
	errs := make([]error, sessions)
	lats := make([][]time.Duration, sessions)
	infos := make([]WorkloadStats, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := srv.NewSession()
			off := c * len(reqs) / sessions
			for round := 0; round < rounds; round++ {
				for i := range reqs {
					req := reqs[(off+i)%len(reqs)]
					t := time.Now()
					_, info, err := req.Run(ctx, sess)
					if err != nil {
						errs[c] = fmt.Errorf("%s: %w", req.Name, err)
						return
					}
					lats[c] = append(lats[c], time.Since(t))
					infos[c].Requests++
					if info.ResultCacheHit {
						infos[c].ResultCacheHits++
					}
					if info.PlanCacheHit {
						infos[c].PlanCacheHits++
					}
					if info.BuildCacheHit {
						infos[c].BuildCacheHits++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	var all []time.Duration
	for c := range infos {
		stats.Requests += infos[c].Requests
		stats.ResultCacheHits += infos[c].ResultCacheHits
		stats.PlanCacheHits += infos[c].PlanCacheHits
		stats.BuildCacheHits += infos[c].BuildCacheHits
		all = append(all, lats[c]...)
	}
	stats.P50, stats.P95, stats.P99 = percentiles(all)
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// percentiles returns the p50/p95/p99 of the latency sample (zeros when
// empty) using the nearest-rank method.
func percentiles(lats []time.Duration) (p50, p95, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}
