// Package buffer implements the buffer pool under the column readers. The
// pool caches decoded 64KB blocks keyed by (file, block index) with LRU
// eviction, and maintains the I/O accounting the paper's analytical model
// depends on: the number of block reads (the READ term), the number of
// non-sequential reads (the SEEK term, amortized by the prefetch factor PF),
// and hits (which realize the model's F, the fraction of a column resident
// in the pool; re-accessed columns in properly pipelined plans hit here,
// which is what makes LM's DS3 re-access I/O-free in Section 3.6).
package buffer

import (
	"container/list"
	"sync"
	"time"
)

// Key identifies one block of one registered file.
type Key struct {
	File  uint64
	Block int
}

// Stats counts buffer pool traffic. All fields are monotone counters.
type Stats struct {
	// Hits is the number of Get calls served from the pool.
	Hits int64
	// Misses is the number of Get calls that invoked the loader.
	Misses int64
	// Reads equals Misses: each miss reads one block from the file.
	Reads int64
	// Seeks is the number of misses whose block was not sequential with the
	// previous miss on the same file (the disk-arm movement the model's
	// SEEK term charges, before prefetch amortization).
	Seeks int64
	// Evictions counts blocks dropped by LRU pressure.
	Evictions int64
	// BytesCached is the current (not cumulative) cache footprint estimate.
	BytesCached int64
}

// SimulatedIO returns the modelled I/O time for the traffic so far, using
// the paper's cost terms: (Seeks/PF)*SEEK + Reads*READ. PF is the prefetch
// size in blocks; seek and read are per-operation durations.
func (s Stats) SimulatedIO(pf int, seek, read time.Duration) time.Duration {
	if pf < 1 {
		pf = 1
	}
	seeks := (s.Seeks + int64(pf) - 1) / int64(pf) // prefetch amortizes seeks
	return time.Duration(seeks)*seek + time.Duration(s.Reads)*read
}

// Pool is a byte-capacity-bounded LRU cache of decoded blocks. It is safe
// for concurrent use.
type Pool struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	lru      *list.List // front = most recent; values are *entry
	m        map[Key]*list.Element
	stats    Stats
	lastMiss map[uint64]int // file -> last missed block index
	nextFile uint64
}

type entry struct {
	key  Key
	val  any
	size int64
}

// New returns a pool bounded to capBytes of decoded-block payload.
// capBytes <= 0 means unbounded.
func New(capBytes int64) *Pool {
	return &Pool{
		capBytes: capBytes,
		lru:      list.New(),
		m:        make(map[Key]*list.Element),
		lastMiss: make(map[uint64]int),
	}
}

// RegisterFile allocates a file ID for use in Keys.
func (p *Pool) RegisterFile() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextFile++
	return p.nextFile
}

// Get returns the cached value for key, loading and caching it via load on a
// miss. load returns the decoded block and its approximate size in bytes.
func (p *Pool) Get(key Key, load func() (any, int64, error)) (any, error) {
	p.mu.Lock()
	if el, ok := p.m[key]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		v := el.Value.(*entry).val
		p.mu.Unlock()
		return v, nil
	}
	p.stats.Misses++
	p.stats.Reads++
	if last, ok := p.lastMiss[key.File]; !ok || key.Block != last+1 {
		p.stats.Seeks++
	}
	p.lastMiss[key.File] = key.Block
	p.mu.Unlock()

	// Load outside the lock; concurrent loaders of the same block may
	// duplicate work but converge (single-query engine: rare, harmless).
	val, size, err := load()
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.m[key]; ok {
		// Raced with another loader; keep the existing entry.
		p.lru.MoveToFront(el)
		return el.Value.(*entry).val, nil
	}
	p.m[key] = p.lru.PushFront(&entry{key: key, val: val, size: size})
	p.used += size
	p.stats.BytesCached = p.used
	p.evictLocked()
	return val, nil
}

// evictLocked drops least-recently-used entries until within capacity,
// always retaining at least one entry so a block larger than the capacity
// can still be served.
func (p *Pool) evictLocked() {
	if p.capBytes <= 0 {
		return
	}
	for p.used > p.capBytes && p.lru.Len() > 1 {
		el := p.lru.Back()
		e := el.Value.(*entry)
		p.lru.Remove(el)
		delete(p.m, e.key)
		p.used -= e.size
		p.stats.Evictions++
	}
	p.stats.BytesCached = p.used
}

// Contains reports whether key is cached, without touching LRU order.
func (p *Pool) Contains(key Key) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.m[key]
	return ok
}

// Len returns the number of cached blocks.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters (cache contents are retained). Used by the
// experiment harness between runs.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{BytesCached: p.used}
	p.lastMiss = make(map[uint64]int)
}

// Drop removes every cached block (for cold-cache experiment runs).
func (p *Pool) Drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.m = make(map[Key]*list.Element)
	p.used = 0
	p.stats.BytesCached = 0
	p.lastMiss = make(map[uint64]int)
}
