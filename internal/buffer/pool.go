// Package buffer implements the buffer pool under the column readers. The
// pool caches decoded 64KB blocks keyed by (file, block index) with LRU
// eviction, and maintains the I/O accounting the paper's analytical model
// depends on: the number of block reads (the READ term), the number of
// non-sequential reads (the SEEK term, amortized by the prefetch factor PF),
// and hits (which realize the model's F, the fraction of a column resident
// in the pool; re-accessed columns in properly pipelined plans hit here,
// which is what makes LM's DS3 re-access I/O-free in Section 3.6).
package buffer

import (
	"container/list"
	"sync"
	"time"
)

// Key identifies one block of one registered file.
type Key struct {
	File  uint64
	Block int
}

// Stats counts buffer pool traffic. All fields are monotone counters.
type Stats struct {
	// Hits is the number of Get calls served from the pool.
	Hits int64
	// Misses is the number of Get calls that invoked the loader.
	Misses int64
	// Reads equals Misses: each miss reads one block from the file.
	Reads int64
	// Seeks is the number of misses whose block was not sequential with the
	// previous miss on the same file (the disk-arm movement the model's
	// SEEK term charges, before prefetch amortization).
	Seeks int64
	// Evictions counts blocks dropped by LRU pressure.
	Evictions int64
	// BytesCached is the current (not cumulative) cache footprint estimate.
	BytesCached int64
}

// SimulatedIO returns the modelled I/O time for the traffic so far, using
// the paper's cost terms: (Seeks/PF)*SEEK + Reads*READ. PF is the prefetch
// size in blocks; seek and read are per-operation durations.
func (s Stats) SimulatedIO(pf int, seek, read time.Duration) time.Duration {
	if pf < 1 {
		pf = 1
	}
	seeks := (s.Seeks + int64(pf) - 1) / int64(pf) // prefetch amortizes seeks
	return time.Duration(seeks)*seek + time.Duration(s.Reads)*read
}

// Pool is a byte-capacity-bounded LRU cache of decoded blocks. It is safe
// for concurrent use.
type Pool struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	lru      *list.List // front = most recent; values are *entry
	m        map[Key]*list.Element
	stats    Stats
	lastMiss map[uint64]int // file -> last missed block index
	nextFile uint64
}

type entry struct {
	key  Key
	val  any
	size int64
	// pins counts outstanding Pin holds; pinned entries are never evicted.
	pins int
}

// New returns a pool bounded to capBytes of decoded-block payload.
// capBytes <= 0 means unbounded.
func New(capBytes int64) *Pool {
	return &Pool{
		capBytes: capBytes,
		lru:      list.New(),
		m:        make(map[Key]*list.Element),
		lastMiss: make(map[uint64]int),
	}
}

// RegisterFile allocates a file ID for use in Keys.
func (p *Pool) RegisterFile() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextFile++
	return p.nextFile
}

// Get returns the cached value for key, loading and caching it via load on a
// miss. load returns the decoded block and its approximate size in bytes.
func (p *Pool) Get(key Key, load func() (any, int64, error)) (any, error) {
	return p.get(key, load, false)
}

// Pin is Get plus a pin: the returned block cannot be evicted until a
// matching Unpin. Batched gathers pin each decoded block once and then copy
// from it with tight loops — one lock round-trip per block instead of one
// per position. Pins nest; each Pin needs its own Unpin.
func (p *Pool) Pin(key Key, load func() (any, int64, error)) (any, error) {
	return p.get(key, load, true)
}

// Unpin releases one pin on key. Unpinning a key that is no longer cached
// (e.g. after Drop) is a no-op.
func (p *Pool) Unpin(key Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.m[key]
	if !ok {
		return
	}
	e := el.Value.(*entry)
	if e.pins > 0 {
		e.pins--
		if e.pins == 0 {
			// The pool may have been over capacity while the pin blocked
			// eviction; settle up now.
			p.evictLocked()
		}
	}
}

func (p *Pool) get(key Key, load func() (any, int64, error), pin bool) (any, error) {
	p.mu.Lock()
	if el, ok := p.m[key]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		e := el.Value.(*entry)
		if pin {
			e.pins++
		}
		v := e.val
		p.mu.Unlock()
		return v, nil
	}
	p.stats.Misses++
	p.stats.Reads++
	if last, ok := p.lastMiss[key.File]; !ok || key.Block != last+1 {
		p.stats.Seeks++
	}
	p.lastMiss[key.File] = key.Block
	p.mu.Unlock()

	// Load outside the lock; concurrent loaders of the same block may
	// duplicate work but converge (single-query engine: rare, harmless).
	val, size, err := load()
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.m[key]; ok {
		// Raced with another loader; keep the existing entry.
		p.lru.MoveToFront(el)
		e := el.Value.(*entry)
		if pin {
			e.pins++
		}
		return e.val, nil
	}
	e := &entry{key: key, val: val, size: size}
	if pin {
		e.pins = 1
	}
	p.m[key] = p.lru.PushFront(e)
	p.used += size
	p.stats.BytesCached = p.used
	p.evictLocked()
	return val, nil
}

// evictLocked drops least-recently-used unpinned entries until within
// capacity. The front (most-recent) entry is never evicted — that both
// retains at least one entry so a block larger than the capacity can still
// be served, and protects the entry the current Get is about to return when
// pinned entries hold the pool over budget. Pinned entries are skipped; a
// pool whose overflow is entirely pinned stays temporarily over capacity
// until Unpin.
func (p *Pool) evictLocked() {
	if p.capBytes <= 0 {
		return
	}
	el := p.lru.Back()
	for p.used > p.capBytes && el != nil && el != p.lru.Front() {
		prev := el.Prev()
		if e := el.Value.(*entry); e.pins == 0 {
			p.lru.Remove(el)
			delete(p.m, e.key)
			p.used -= e.size
			p.stats.Evictions++
		}
		el = prev
	}
	p.stats.BytesCached = p.used
}

// Contains reports whether key is cached, without touching LRU order.
func (p *Pool) Contains(key Key) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.m[key]
	return ok
}

// Len returns the number of cached blocks.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters (cache contents are retained). Used by the
// experiment harness between runs.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{BytesCached: p.used}
	p.lastMiss = make(map[uint64]int)
}

// Drop removes every cached block (for cold-cache experiment runs).
func (p *Pool) Drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.m = make(map[Key]*list.Element)
	p.used = 0
	p.stats.BytesCached = 0
	p.lastMiss = make(map[uint64]int)
}
