package buffer

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func load(v int, size int64) func() (any, int64, error) {
	return func() (any, int64, error) { return v, size, nil }
}

func TestGetHitMiss(t *testing.T) {
	p := New(0)
	f := p.RegisterFile()
	v, err := p.Get(Key{f, 0}, load(42, 100))
	if err != nil || v.(int) != 42 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	v, err = p.Get(Key{f, 0}, func() (any, int64, error) {
		t.Error("loader called on hit")
		return nil, 0, nil
	})
	if err != nil || v.(int) != 42 {
		t.Fatalf("Get(hit) = %v, %v", v, err)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Reads != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSeekAccounting(t *testing.T) {
	p := New(0)
	f := p.RegisterFile()
	g := p.RegisterFile()
	// Sequential misses on f: blocks 0,1,2 -> 1 seek.
	for i := 0; i < 3; i++ {
		p.Get(Key{f, i}, load(i, 10))
	}
	// Jump back: another seek.
	p.Get(Key{f, 0}, func() (any, int64, error) {
		t.Error("block 0 should be cached")
		return nil, 0, nil
	})
	p.Get(Key{f, 10}, load(0, 10)) // non-sequential: seek
	// New file: first miss is a seek.
	p.Get(Key{g, 0}, load(0, 10))
	s := p.Stats()
	if s.Seeks != 3 {
		t.Errorf("Seeks = %d, want 3 (initial + jump + new file)", s.Seeks)
	}
	if s.Reads != 5 {
		t.Errorf("Reads = %d, want 5", s.Reads)
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(250)
	f := p.RegisterFile()
	for i := 0; i < 3; i++ {
		p.Get(Key{f, i}, load(i, 100))
	}
	// Capacity 250, three 100-byte blocks: block 0 must have been evicted.
	if p.Contains(Key{f, 0}) {
		t.Error("block 0 not evicted")
	}
	if !p.Contains(Key{f, 1}) || !p.Contains(Key{f, 2}) {
		t.Error("recent blocks evicted")
	}
	if s := p.Stats(); s.Evictions != 1 || s.BytesCached != 200 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUOrderUpdatedOnHit(t *testing.T) {
	p := New(250)
	f := p.RegisterFile()
	p.Get(Key{f, 0}, load(0, 100))
	p.Get(Key{f, 1}, load(1, 100))
	p.Get(Key{f, 0}, load(0, 100)) // touch 0: now 1 is LRU
	p.Get(Key{f, 2}, load(2, 100)) // evicts 1
	if p.Contains(Key{f, 1}) {
		t.Error("block 1 should be evicted")
	}
	if !p.Contains(Key{f, 0}) {
		t.Error("recently touched block 0 evicted")
	}
}

func TestOversizedBlockStillServed(t *testing.T) {
	p := New(10)
	f := p.RegisterFile()
	v, err := p.Get(Key{f, 0}, load(7, 1000))
	if err != nil || v.(int) != 7 {
		t.Fatalf("oversized Get = %v, %v", v, err)
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1 (retain at least one entry)", p.Len())
	}
}

func TestLoaderError(t *testing.T) {
	p := New(0)
	f := p.RegisterFile()
	wantErr := errors.New("disk on fire")
	_, err := p.Get(Key{f, 0}, func() (any, int64, error) { return nil, 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// A failed load must not poison the cache.
	v, err := p.Get(Key{f, 0}, load(1, 1))
	if err != nil || v.(int) != 1 {
		t.Fatalf("retry Get = %v, %v", v, err)
	}
}

func TestDropAndResetStats(t *testing.T) {
	p := New(0)
	f := p.RegisterFile()
	p.Get(Key{f, 0}, load(0, 10))
	p.ResetStats()
	if s := p.Stats(); s.Misses != 0 || s.BytesCached != 10 {
		t.Errorf("after ResetStats: %+v", s)
	}
	// After ResetStats the next miss counts a fresh seek.
	p.Get(Key{f, 1}, load(1, 10))
	if s := p.Stats(); s.Seeks != 1 {
		t.Errorf("Seeks after reset = %d, want 1", s.Seeks)
	}
	p.Drop()
	if p.Len() != 0 {
		t.Error("Drop left entries")
	}
	if p.Contains(Key{f, 0}) {
		t.Error("Drop left block 0")
	}
}

func TestSimulatedIO(t *testing.T) {
	s := Stats{Seeks: 10, Reads: 100}
	// PF=1: 10 seeks * 2500us + 100 reads * 1000us.
	got := s.SimulatedIO(1, 2500*time.Microsecond, 1000*time.Microsecond)
	want := 10*2500*time.Microsecond + 100*1000*time.Microsecond
	if got != want {
		t.Errorf("SimulatedIO(pf=1) = %v, want %v", got, want)
	}
	// PF=4 amortizes seeks: ceil(10/4)=3.
	got = s.SimulatedIO(4, 2500*time.Microsecond, 1000*time.Microsecond)
	want = 3*2500*time.Microsecond + 100*1000*time.Microsecond
	if got != want {
		t.Errorf("SimulatedIO(pf=4) = %v, want %v", got, want)
	}
	if s.SimulatedIO(0, time.Second, 0) != 10*time.Second {
		t.Error("pf<1 not clamped")
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(1 << 20)
	f := p.RegisterFile()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{f, i % 50}
				v, err := p.Get(k, func() (any, int64, error) {
					return fmt.Sprintf("block-%d", k.Block), 64, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(string) != fmt.Sprintf("block-%d", k.Block) {
					t.Errorf("wrong value for %v: %v", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := p.Stats().Hits + p.Stats().Misses; got != 1600 {
		t.Errorf("total accesses = %d, want 1600", got)
	}
}

// TestPinBlocksEviction: pinned entries survive arbitrary capacity pressure;
// unpinning settles the pool back under its budget.
func TestPinBlocksEviction(t *testing.T) {
	p := New(250) // room for two 100-byte blocks (plus the keep-one rule)
	f := p.RegisterFile()
	if _, err := p.Pin(Key{f, 0}, load(0, 100)); err != nil {
		t.Fatal(err)
	}
	// Flood the pool: block 0 is pinned and must survive.
	for i := 1; i <= 10; i++ {
		if _, err := p.Get(Key{f, i}, load(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Contains(Key{f, 0}) {
		t.Fatal("pinned block was evicted")
	}
	// A pinned re-Get must not load again.
	hitsBefore := p.Stats().Hits
	if v, err := p.Get(Key{f, 0}, load(-1, 100)); err != nil || v.(int) != 0 {
		t.Fatalf("re-Get of pinned block = %v, %v", v, err)
	}
	if p.Stats().Hits != hitsBefore+1 {
		t.Fatal("re-Get of pinned block was not a hit")
	}
	p.Unpin(Key{f, 0})
	// After unpinning, pressure can evict it again.
	for i := 11; i <= 20; i++ {
		if _, err := p.Get(Key{f, i}, load(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Contains(Key{f, 0}) {
		t.Fatal("unpinned cold block survived eviction pressure")
	}
}

// TestPinNests: two pins need two unpins before eviction may reclaim.
func TestPinNests(t *testing.T) {
	p := New(150)
	f := p.RegisterFile()
	for i := 0; i < 2; i++ {
		if _, err := p.Pin(Key{f, 0}, load(7, 100)); err != nil {
			t.Fatal(err)
		}
	}
	p.Unpin(Key{f, 0})
	for i := 1; i <= 5; i++ {
		if _, err := p.Get(Key{f, i}, load(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Contains(Key{f, 0}) {
		t.Fatal("block with one remaining pin was evicted")
	}
	p.Unpin(Key{f, 0})
	p.Unpin(Key{f, 0}) // extra unpin of an unpinned entry is a no-op
	for i := 6; i <= 10; i++ {
		if _, err := p.Get(Key{f, i}, load(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Contains(Key{f, 0}) {
		t.Fatal("fully unpinned block survived eviction pressure")
	}
	p.Unpin(Key{f, 99}) // unknown key is a no-op
}

// TestPinConcurrent hammers Pin/Unpin with eviction pressure under -race.
func TestPinConcurrent(t *testing.T) {
	p := New(500)
	f := p.RegisterFile()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{f, (w*31 + i) % 16}
				v, err := p.Pin(k, load(k.Block, 100))
				if err != nil || v.(int) != k.Block {
					t.Errorf("Pin = %v, %v", v, err)
					return
				}
				p.Unpin(k)
			}
		}(w)
	}
	wg.Wait()
}

// TestPinnedPressureKeepsMRU: when pinned entries hold the pool over
// budget, a fresh Get's entry (the MRU) must not be evicted to pay for
// them — otherwise every unpinned block would thrash on reload.
func TestPinnedPressureKeepsMRU(t *testing.T) {
	p := New(250)
	f := p.RegisterFile()
	for i := 0; i < 3; i++ { // 300 pinned bytes: over budget by pins alone
		if _, err := p.Pin(Key{f, i}, load(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Get(Key{f, 7}, load(7, 100)); err != nil {
		t.Fatal(err)
	}
	if !p.Contains(Key{f, 7}) {
		t.Fatal("fresh MRU entry evicted to pay for pinned overflow")
	}
	misses := p.Stats().Misses
	if _, err := p.Get(Key{f, 7}, load(7, 100)); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Misses != misses {
		t.Fatal("re-Get of fresh entry reloaded instead of hitting")
	}
}
