package core

import (
	"reflect"
	"testing"

	"matstore/internal/exec"
	"matstore/internal/operators"
	"matstore/internal/pred"
	"matstore/internal/tpch"
)

// TestAdaptiveMorselsDifferential is the satellite's acceptance property:
// repeated runs of one plan re-carve morsels from the previous run's
// observed per-morsel selectivity skew, and the results stay byte-identical
// to a fresh serial execution at every worker count — adaptive sizing is a
// pure scheduling choice.
func TestAdaptiveMorselsDifferential(t *testing.T) {
	db := openDB(t)
	p, err := db.Projection(tpch.LineitemProj)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(db.Pool(), Options{ChunkSize: 512})
	// A highly skewed predicate over the sorted column: early morsels match
	// everything, late morsels nothing.
	q := SelectQuery{
		Output: []string{tpch.ColShipdate, tpch.ColQuantity},
		Filters: []Filter{
			{Col: tpch.ColShipdate, Pred: pred.LessThan(tpch.ShipdateForSelectivity(0.15))},
		},
	}
	want, _, err := e.Select(p, q, LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies {
		for _, workers := range []int{1, 2, 4, 8} {
			pl, err := e.BuildPlan(p, q, s)
			if err != nil {
				t.Fatal(err)
			}
			var prevMorsels int
			for run := 0; run < 3; run++ {
				res, stats, err := e.RunPlan(pl, s, workers, false)
				if err != nil {
					t.Fatalf("%v/w=%d run %d: %v", s, workers, run, err)
				}
				if !reflect.DeepEqual(res.Cols, want.Cols) {
					t.Fatalf("%v/w=%d run %d: adapted result differs from serial reference", s, workers, run)
				}
				if run > 0 && workers > 1 && stats.Morsels < prevMorsels {
					t.Errorf("%v/w=%d run %d: adaptation coarsened morsels under skew (%d < %d)",
						s, workers, run, stats.Morsels, prevMorsels)
				}
				prevMorsels = stats.Morsels
			}
			if workers > 1 {
				skew := pl.ObservedSkew()
				if skew <= 0 {
					t.Errorf("%v/w=%d: observed skew = %v, want > 0 for a skewed predicate", s, workers, skew)
				}
				if exec.AdaptiveMorselsPerWorker(skew) <= exec.DefaultMorselsPerWorker {
					t.Errorf("%v/w=%d: skew %v did not refine the carving", s, workers, skew)
				}
			}
		}
	}
}

// TestAdaptiveMorselsUniformKeepsDefault checks the other regime: a uniform
// predicate observes ~zero skew and keeps the default carving.
func TestAdaptiveMorselsUniformKeepsDefault(t *testing.T) {
	db := openDB(t)
	p, err := db.Projection(tpch.LineitemProj)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(db.Pool(), Options{ChunkSize: 512})
	q := SelectQuery{Output: []string{tpch.ColShipdate}}
	pl, err := e.BuildPlan(p, q, LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RunPlan(pl, LMParallel, 4, false); err != nil {
		t.Fatal(err)
	}
	skew := pl.ObservedSkew()
	if skew > 0.01 {
		t.Errorf("match-all skew = %v, want ~0", skew)
	}
	if got := exec.AdaptiveMorselsPerWorker(skew); got != exec.DefaultMorselsPerWorker {
		t.Errorf("uniform selectivity re-carved to %d morsels/worker", got)
	}
}

// TestAdaptiveMorselsJoin runs the adaptation loop through the join path:
// repeated runs of one join plan (skewed outer predicate) stay
// byte-identical at several worker counts.
func TestAdaptiveMorselsJoin(t *testing.T) {
	orders, customer, e := joinProjections(t)
	q := joinTestQuery(true)
	want, _, err := e.Join(orders, customer, q, operators.RightSingleColumn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		pl, err := e.BuildJoinPlan(orders, customer, q, operators.RightSingleColumn)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			res, _, err := e.RunJoinPlan(pl, workers, false)
			if err != nil {
				t.Fatalf("w=%d run %d: %v", workers, run, err)
			}
			if !reflect.DeepEqual(res.Cols, want.Cols) {
				t.Fatalf("w=%d run %d: adapted join result differs", workers, run)
			}
		}
	}
}
