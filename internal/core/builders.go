package core

import (
	"fmt"

	"matstore/internal/operators"
	"matstore/internal/plan"
	"matstore/internal/pred"
	"matstore/internal/storage"
)

// This file turns each materialization strategy into a physical-plan
// BUILDER: instead of four hand-written driver loops, every strategy
// assembles a tree of internal/plan operator nodes over the same vocabulary
// (DS1–DS4 scans, SPC, AND, DS3 extraction, MERGE, aggregation) and the
// single generic morsel executor in internal/plan runs whichever tree it is
// handed. Consecutive filters over the same column fuse into one
// multi-predicate scan node (one pass, k compiled predicates per loaded
// word) unless Options.DisableFusion splits them back apart.

// filterGroup is a maximal run of consecutive WHERE predicates over one
// column — the unit that becomes a single (possibly fused) scan node.
type filterGroup struct {
	col   string
	preds []pred.Predicate
}

// fuseFilters groups q's filters into scan units: with fusion enabled,
// consecutive filters over the same column merge into one k-predicate
// group; with fusion disabled every filter stays its own group (the unfused
// reference path differential tests pin against).
func fuseFilters(fs []Filter, fuse bool) []filterGroup {
	var out []filterGroup
	for _, f := range fs {
		if fuse && len(out) > 0 && out[len(out)-1].col == f.Col {
			out[len(out)-1].preds = append(out[len(out)-1].preds, f.Pred)
			continue
		}
		out = append(out, filterGroup{col: f.Col, preds: []pred.Predicate{f.Pred}})
	}
	return out
}

// matCols returns the columns materialized at the top of LM plans (and the
// tuple-emission columns of EM aggregations).
func matCols(q SelectQuery) []string {
	if q.Aggregating() {
		return []string{q.GroupBy, q.AggCol}
	}
	return q.Output
}

// BuildPlan compiles q into the physical plan the given strategy would
// execute against p. The plan is self-contained (columns resolved, chunk
// size and ablation switches captured) and can be annotated with modeled
// costs and executed any number of times.
func (e *Executor) BuildPlan(p *storage.Projection, q SelectQuery, s Strategy) (*plan.Plan, error) {
	if err := q.Validate(p); err != nil {
		return nil, err
	}
	groups := fuseFilters(q.Filters, !e.Opt.DisableFusion)
	var root *plan.Node
	var err error
	switch s {
	case EMPipelined:
		root, err = e.buildEMPipelined(p, q, groups)
	case EMParallel:
		root, err = e.buildEMParallel(p, q)
	case LMPipelined:
		root, err = e.buildLM(p, q, groups, true)
	case LMParallel:
		root, err = e.buildLM(p, q, groups, false)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", s)
	}
	if err != nil {
		return nil, err
	}
	return &plan.Plan{
		Label: s.String(),
		Root:  root,
		Spec: plan.Spec{
			OutNames:           q.outputNames(),
			Output:             q.Output,
			GroupBy:            q.GroupBy,
			AggCol:             q.AggCol,
			Agg:                q.Agg,
			Aggregating:        q.Aggregating(),
			MatCols:            matCols(q),
			Tuples:             p.TupleCount(),
			ChunkSize:          e.Opt.chunkSize(),
			DisableMultiColumn: e.Opt.DisableMultiColumn,
			ForceBitmap:        e.Opt.ForceBitmapPositions,
			UseZoneIndex:       e.Opt.UseZoneIndex,
		},
	}, nil
}

// buildEMPipelined assembles the Figure 7(a) chain: a DS2 leaf on the first
// filter group producing early (position, value) tuples, a DS4 widen+filter
// node per further group, then DS4 widen nodes for the remaining output
// columns, topped by PROJECT (or AGG).
func (e *Executor) buildEMPipelined(p *storage.Projection, q SelectQuery, groups []filterGroup) (*plan.Node, error) {
	resolve := columnResolver(p)
	var cur *plan.Node
	if len(groups) > 0 {
		c, err := resolve(groups[0].col)
		if err != nil {
			return nil, err
		}
		cur = plan.NewDS2(groups[0].col, c, groups[0].preds)
		for _, g := range groups[1:] {
			c, err := resolve(g.col)
			if err != nil {
				return nil, err
			}
			cur = plan.NewDS4(g.col, c, g.preds, cur)
		}
	}
	for _, name := range nonFilterColumns(q) {
		c, err := resolve(name)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = plan.NewDS2(name, c, nil)
		} else {
			cur = plan.NewDS4(name, c, nil, cur)
		}
	}
	return emRoot(q, cur), nil
}

// buildEMParallel assembles the Figure 7(b) plan: one SPC leaf scanning
// every referenced column in lockstep. The SPC's row loop is the retained
// scalar reference (per-filter Predicate.Match dispatch), so it is
// deliberately left unfused.
func (e *Executor) buildEMParallel(p *storage.Projection, q SelectQuery) (*plan.Node, error) {
	order := q.referenced()
	cols := make([]*storage.Column, len(order))
	idx := make(map[string]int, len(order))
	for i, name := range order {
		c, err := p.Column(name)
		if err != nil {
			return nil, err
		}
		cols[i] = c
		idx[name] = i
	}
	filters := make([]operators.IndexedPred, len(q.Filters))
	for i, f := range q.Filters {
		filters[i] = operators.IndexedPred{Col: idx[f.Col], Pred: f.Pred}
	}
	outNames := matCols(q)
	outIdx := make([]int, len(outNames))
	for i, name := range outNames {
		outIdx[i] = idx[name]
	}
	return emRoot(q, plan.NewSPC(order, cols, filters, outIdx)), nil
}

// buildLM assembles the late-materialization plans of Figure 8: a position
// subtree (pipelined: DS1 chained through DS3+pred narrowing nodes;
// parallel: DS1 per group ANDed) under a MERGE of DS3 extractions (or a
// compressed-direct AGG).
func (e *Executor) buildLM(p *storage.Projection, q SelectQuery, groups []filterGroup, pipelined bool) (*plan.Node, error) {
	resolve := columnResolver(p)
	var pos *plan.Node
	switch {
	case len(groups) == 0:
		pos = plan.NewPosAll()
	case pipelined:
		c, err := resolve(groups[0].col)
		if err != nil {
			return nil, err
		}
		pos = plan.NewDS1(groups[0].col, c, groups[0].preds)
		for _, g := range groups[1:] {
			c, err := resolve(g.col)
			if err != nil {
				return nil, err
			}
			pos = plan.NewFilterAt(g.col, c, g.preds, pos)
		}
	default:
		scans := make([]*plan.Node, len(groups))
		for i, g := range groups {
			c, err := resolve(g.col)
			if err != nil {
				return nil, err
			}
			scans[i] = plan.NewDS1(g.col, c, g.preds)
		}
		if len(scans) == 1 {
			pos = scans[0]
		} else {
			pos = plan.NewAND(scans...)
		}
	}

	if q.Aggregating() {
		root := plan.NewAggregate(pos, q.GroupBy, q.AggCol, q.Agg)
		for _, name := range matCols(q) {
			c, err := resolve(name)
			if err != nil {
				return nil, err
			}
			root.MatColumns = append(root.MatColumns, c)
		}
		return root, nil
	}
	extracts := make([]*plan.Node, len(q.Output))
	for i, name := range q.Output {
		c, err := resolve(name)
		if err != nil {
			return nil, err
		}
		extracts[i] = plan.NewDS3(name, c)
	}
	return plan.NewMerge(pos, extracts, q.outputNames()), nil
}

// emRoot tops an EM tuple subtree with the aggregation or projection root.
func emRoot(q SelectQuery, child *plan.Node) *plan.Node {
	if q.Aggregating() {
		return plan.NewAggregate(child, q.GroupBy, q.AggCol, q.Agg)
	}
	return plan.NewProject(child, q.Output)
}

// nonFilterColumns returns the referenced columns that carry no filter, in
// first-use order — the pure widening columns of EM-pipelined plans.
func nonFilterColumns(q SelectQuery) []string {
	filtered := map[string]bool{}
	for _, f := range q.Filters {
		filtered[f.Col] = true
	}
	var out []string
	for _, name := range q.referenced() {
		if !filtered[name] {
			out = append(out, name)
		}
	}
	return out
}

// columnResolver caches column lookups for one build.
func columnResolver(p *storage.Projection) func(string) (*storage.Column, error) {
	cache := map[string]*storage.Column{}
	return func(name string) (*storage.Column, error) {
		if c, ok := cache[name]; ok {
			return c, nil
		}
		c, err := p.Column(name)
		if err != nil {
			return nil, err
		}
		cache[name] = c
		return c, nil
	}
}
