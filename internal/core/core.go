// Package core implements the paper's primary contribution: the four
// materialization strategies for selection/aggregation plans (Section 3.5)
// and the join materialization wrapper (Section 4.3), executed
// chunk-at-a-time over C-Store-style projections.
//
//   - EM-pipelined: DS2 on the first predicate column produces early
//     (position, value) tuples; each further column is a DS4 that jumps to
//     tuple positions, filters, and widens the tuples.
//   - EM-parallel: an SPC leaf scans all needed columns in lockstep and
//     constructs tuples at the very bottom of the plan.
//   - LM-pipelined: DS1 on the first column produces positions; each
//     further predicate column filters those positions in place
//     (DS3+predicate); values are extracted and merged only at the top.
//   - LM-parallel: DS1 on every predicate column in parallel, position
//     lists ANDed, then DS3 extraction and a final MERGE.
//
// Both LM strategies use the multi-column optimization of Section 3.6 by
// default (mini-columns are retained so DS3 never re-reads a block);
// Options.DisableMultiColumn forces the column re-access the paper
// describes as the fundamental LM penalty.
//
// Since PR 3 each strategy is a plan BUILDER (builders.go): it assembles a
// tree of internal/plan operator nodes, and the single generic morsel
// executor in internal/plan runs any such tree. Consecutive same-column
// predicates fuse into one multi-predicate scan node unless
// Options.DisableFusion splits them apart.
package core

import (
	"errors"
	"fmt"
	"time"

	"matstore/internal/buffer"
	"matstore/internal/datasource"
	"matstore/internal/operators"
	"matstore/internal/plan"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

// Strategy selects a materialization strategy.
type Strategy uint8

const (
	// EMPipelined is early materialization, one predicate column at a time.
	EMPipelined Strategy = iota
	// EMParallel is early materialization with an SPC leaf.
	EMParallel
	// LMPipelined is late materialization with pipelined position filtering.
	LMPipelined
	// LMParallel is late materialization with a position-list AND.
	LMParallel
)

// Strategies lists all four strategies in presentation order.
var Strategies = []Strategy{EMPipelined, EMParallel, LMPipelined, LMParallel}

func (s Strategy) String() string {
	switch s {
	case EMPipelined:
		return "EM-pipelined"
	case EMParallel:
		return "EM-parallel"
	case LMPipelined:
		return "LM-pipelined"
	case LMParallel:
		return "LM-parallel"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy converts a string (as used by CLI flags) to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "em-pipelined", "emp", "EM-pipelined":
		return EMPipelined, nil
	case "em-parallel", "eml", "EM-parallel":
		return EMParallel, nil
	case "lm-pipelined", "lmp", "LM-pipelined":
		return LMPipelined, nil
	case "lm-parallel", "lml", "LM-parallel":
		return LMParallel, nil
	default:
		return 0, fmt.Errorf("core: unknown strategy %q", s)
	}
}

// Filter is one single-column SARGable predicate of a query's WHERE clause.
type Filter struct {
	Col  string
	Pred pred.Predicate
}

// SelectQuery describes a selection (and optional single-key aggregation)
// over one projection, the query shape of Sections 3.5–4.2:
//
//	SELECT Output... FROM projection WHERE Filters...
//	[GROUP BY GroupBy -> SELECT GroupBy, Agg(AggCol)]
type SelectQuery struct {
	// Output lists the projected columns (ignored when GroupBy is set).
	Output []string
	// Filters are ANDed single-column predicates, applied in order (order
	// matters for pipelined strategies: put the most selective first).
	Filters []Filter
	// GroupBy, when non-empty, turns the query into an aggregation with
	// Agg(AggCol) grouped by GroupBy.
	GroupBy string
	// AggCol is the aggregated column (required with GroupBy).
	AggCol string
	// Agg is the aggregate function; the zero value is SUM, the paper's
	// experiment aggregate.
	Agg operators.AggFunc
	// Parallelism is the number of workers executing the query's morsels
	// (contiguous, chunk-aligned block ranges). 0 means one worker per CPU;
	// 1 runs the exact serial chunk-at-a-time plan. Results are identical at
	// every level: per-morsel partials are merged in block order.
	Parallelism int
}

// Aggregating reports whether the query has an aggregation on top.
func (q SelectQuery) Aggregating() bool { return q.GroupBy != "" }

// Validate checks structural sanity against a projection.
func (q SelectQuery) Validate(p *storage.Projection) error {
	if q.Aggregating() {
		if q.AggCol == "" {
			return errors.New("core: GROUP BY requires AggCol")
		}
	} else if len(q.Output) == 0 {
		return errors.New("core: query needs output columns or an aggregation")
	}
	for _, name := range q.referenced() {
		if _, err := p.Column(name); err != nil {
			return err
		}
	}
	return nil
}

// referenced returns every column the query touches, filters first,
// deduplicated in first-use order.
func (q SelectQuery) referenced() []string {
	var out []string
	seen := map[string]bool{}
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, f := range q.Filters {
		add(f.Col)
	}
	if q.Aggregating() {
		add(q.GroupBy)
		add(q.AggCol)
	} else {
		for _, n := range q.Output {
			add(n)
		}
	}
	return out
}

// outputNames returns the result schema.
func (q SelectQuery) outputNames() []string {
	if q.Aggregating() {
		return []string{q.GroupBy, q.Agg.String() + "(" + q.AggCol + ")"}
	}
	return q.Output
}

// Options tunes the executor.
type Options struct {
	// ChunkSize is the horizontal-partition width in positions (default
	// datasource.DefaultChunkSize). Must be a positive multiple of 64.
	ChunkSize int64
	// DisableMultiColumn forces LM strategies to re-access columns through
	// the buffer pool at materialization time instead of reusing
	// mini-columns (the Section 2.2 penalty; ablation).
	DisableMultiColumn bool
	// ForceBitmapPositions forces every DS1 position output into bitmap
	// representation (position-representation ablation; Section 3.3).
	ForceBitmapPositions bool
	// UseZoneIndex lets late-materialization scans derive positions from
	// block min/max metadata without reading values where possible
	// (Section 2.1.1's index-derived positions).
	UseZoneIndex bool
	// SkipOutputIteration drops the final scan over output tuples. The
	// paper charges numOutTuples × TIC_TUP for result iteration in both
	// model and experiments, so the default (false) mirrors that.
	SkipOutputIteration bool
	// DisableFusion keeps every WHERE predicate its own scan node instead
	// of fusing consecutive same-column predicates into one multi-predicate
	// pass (the unfused reference path; ablation and differential testing).
	DisableFusion bool
	// JoinPartitions overrides the radix partition count of the parallel
	// join hash build (rounded up to a power of two; 0 derives it from the
	// worker count). Results are identical at every partition count.
	JoinPartitions int
	// SerialJoinBuild routes joins through the retained serial hash build
	// (operators.BuildRightTable + RunHashJoin) instead of the
	// radix-partitioned plan path — the differential-test reference and the
	// build-ablation baseline.
	SerialJoinBuild bool
}

func (o Options) chunkSize() int64 {
	if o.ChunkSize <= 0 {
		return datasource.DefaultChunkSize
	}
	return o.ChunkSize
}

// Stats describes one query execution.
type Stats struct {
	Strategy Strategy
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// TuplesOut is the number of result tuples.
	TuplesOut int64
	// TuplesConstructed counts every intermediate or output tuple stitched
	// together (the quantity LM tries to minimize).
	TuplesConstructed int64
	// PositionsMatched is the number of positions surviving all predicates.
	PositionsMatched int64
	// ChunksSkipped counts chunks whose remaining columns were never read
	// because no positions survived (pipelined block skipping).
	ChunksSkipped int64
	// Groups is the number of aggregation groups (0 for selections).
	Groups int
	// Workers is the resolved worker count the query executed with.
	Workers int
	// Morsels is the number of contiguous block-range partitions the
	// position space was split into (1 in serial execution).
	Morsels int
	// Buffer is the buffer-pool traffic delta attributable to this query.
	Buffer buffer.Stats
	// OutputChecksum is a fold over all output values from the final
	// result-iteration pass (prevents dead-code elimination in benchmarks
	// and doubles as a cheap cross-strategy equivalence probe).
	OutputChecksum int64
	// AggState is the query's final merged aggregator (aggregating queries
	// only): the mergeable per-group statistics behind the emitted rows,
	// which a shard exports so a scatter-gather coordinator can absorb
	// disjoint-range partials and re-emit. Emitted aggregate values do not
	// merge across shards (AVG loses its count); these statistics do.
	AggState *operators.Aggregator
}

// Executor runs queries against projections through a shared buffer pool.
type Executor struct {
	Pool *buffer.Pool
	Opt  Options
}

// NewExecutor returns an executor with the given pool and options.
func NewExecutor(pool *buffer.Pool, opt Options) *Executor {
	return &Executor{Pool: pool, Opt: opt}
}

// Select runs q against p with the chosen materialization strategy,
// morsel-parallel across q.Parallelism workers (0 = one per CPU): the
// strategy builds its physical plan (BuildPlan) and the generic plan
// executor runs it (RunPlan).
func (e *Executor) Select(p *storage.Projection, q SelectQuery, s Strategy) (*rows.Result, *Stats, error) {
	pl, err := e.BuildPlan(p, q, s)
	if err != nil {
		return nil, nil, err
	}
	return e.RunPlan(pl, s, q.Parallelism, false)
}

// RunPlan executes a built physical plan through the generic morsel
// executor, wrapping the run in the query-level accounting (wall time,
// buffer-pool deltas, output iteration). With observe set, every plan node
// accumulates observed rows/time for EXPLAIN.
func (e *Executor) RunPlan(pl *plan.Plan, s Strategy, parallelism int, observe bool) (*rows.Result, *Stats, error) {
	return e.RunPlanWith(pl, s, parallelism, plan.RunOptions{Observe: observe})
}

// RunPlanWith is RunPlan with the full plan.RunOptions (context, tracing,
// spill) instead of just the observe flag.
func (e *Executor) RunPlanWith(pl *plan.Plan, s Strategy, parallelism int, opt plan.RunOptions) (*rows.Result, *Stats, error) {
	stats := &Stats{Strategy: s}
	before := e.Pool.Stats()
	start := time.Now()

	res, runStats, err := pl.RunWith(parallelism, opt)
	if err != nil {
		return nil, nil, err
	}
	stats.TuplesConstructed = runStats.TuplesConstructed
	stats.PositionsMatched = runStats.PositionsMatched
	stats.ChunksSkipped = runStats.ChunksSkipped
	stats.Groups = runStats.Groups
	stats.Workers = runStats.Workers
	stats.Morsels = runStats.Morsels
	stats.AggState = runStats.AggState

	if !e.Opt.SkipOutputIteration {
		stats.OutputChecksum = drainResult(res)
	}
	stats.Wall = time.Since(start)
	stats.TuplesOut = int64(res.NumRows())
	after := e.Pool.Stats()
	stats.Buffer = buffer.Stats{
		Hits:   after.Hits - before.Hits,
		Misses: after.Misses - before.Misses,
		Reads:  after.Reads - before.Reads,
		Seeks:  after.Seeks - before.Seeks,
	}
	return res, stats, nil
}

// drainResult iterates over every output tuple, as the paper's experiments
// do after query execution, returning a checksum of all values.
func drainResult(res *rows.Result) int64 {
	var sum int64
	n := res.NumRows()
	for i := 0; i < n; i++ {
		for c := range res.Cols {
			sum += res.Cols[c][i]
		}
	}
	return sum
}
