package core

import (
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"

	"matstore/internal/encoding"
	"matstore/internal/operators"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
	"matstore/internal/tpch"
)

var (
	dataOnce sync.Once
	dataDir  string
	dataErr  error
)

// testData generates a small TPC-H-shaped dataset once per test binary.
func testData(t *testing.T) string {
	t.Helper()
	dataOnce.Do(func() {
		dataDir, dataErr = os.MkdirTemp("", "matstore-core-test")
		if dataErr != nil {
			return
		}
		dataErr = tpch.Generate(dataDir, tpch.Config{Scale: 0.002, Seed: 1}) // 12k lineitem rows
	})
	if dataErr != nil {
		t.Fatal(dataErr)
	}
	return dataDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if dataDir != "" {
		os.RemoveAll(dataDir)
	}
	os.Exit(code)
}

func openDB(t *testing.T) *storage.DB {
	t.Helper()
	db, err := storage.OpenDB(testData(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func lineitemQuery(linenumCol string, x, y int64) SelectQuery {
	return SelectQuery{
		Output: []string{tpch.ColShipdate, linenumCol},
		Filters: []Filter{
			{Col: tpch.ColShipdate, Pred: pred.LessThan(x)},
			{Col: linenumCol, Pred: pred.LessThan(y)},
		},
	}
}

func resultsEqual(a, b *rows.Result) bool {
	if !reflect.DeepEqual(a.Columns, b.Columns) || a.NumRows() != b.NumRows() {
		return false
	}
	for c := range a.Cols {
		if !reflect.DeepEqual(a.Cols[c], b.Cols[c]) && !(len(a.Cols[c]) == 0 && len(b.Cols[c]) == 0) {
			return false
		}
	}
	return true
}

// naiveSelect recomputes the expected selection result by scanning fully
// decompressed columns.
func naiveSelect(t *testing.T, p *storage.Projection, q SelectQuery) *rows.Result {
	t.Helper()
	decomp := map[string][]int64{}
	for _, f := range q.Filters {
		decomp[f.Col] = decompressAll(t, p, f.Col)
	}
	var matNames []string
	if q.Aggregating() {
		matNames = []string{q.GroupBy, q.AggCol}
	} else {
		matNames = q.Output
	}
	for _, n := range matNames {
		if _, ok := decomp[n]; !ok {
			decomp[n] = decompressAll(t, p, n)
		}
	}
	n := p.TupleCount()
	if q.Aggregating() {
		agg := operators.NewAggregator(q.Agg)
		for i := int64(0); i < n; i++ {
			ok := true
			for _, f := range q.Filters {
				if !f.Pred.Match(decomp[f.Col][i]) {
					ok = false
					break
				}
			}
			if ok {
				agg.AddTuple(decomp[q.GroupBy][i], decomp[q.AggCol][i])
			}
		}
		return agg.Emit(q.GroupBy, q.Agg.String()+"("+q.AggCol+")")
	}
	res := rows.NewResult(q.Output...)
	vals := make([]int64, len(q.Output))
	for i := int64(0); i < n; i++ {
		ok := true
		for _, f := range q.Filters {
			if !f.Pred.Match(decomp[f.Col][i]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for c, name := range q.Output {
			vals[c] = decomp[name][i]
		}
		res.AppendRow(vals...)
	}
	return res
}

func decompressAll(t *testing.T, p *storage.Projection, name string) []int64 {
	t.Helper()
	col, err := p.Column(name)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := col.Window(col.Extent())
	if err != nil {
		t.Fatal(err)
	}
	return mc.Decompress(nil)
}

func TestStrategyEquivalenceSelection(t *testing.T) {
	db := openDB(t)
	p, err := db.Projection(tpch.LineitemProj)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		linenum := tpch.LinenumColumn(enc)
		for _, sel := range []float64{0, 0.05, 0.5, 1.0} {
			q := lineitemQuery(linenum, tpch.ShipdateForSelectivity(sel), tpch.LinenumMax)
			want := naiveSelect(t, p, q)
			for _, s := range Strategies {
				got, stats, err := exec.Select(p, q, s)
				if err != nil {
					t.Fatalf("%v/%v sel=%v: %v", enc, s, sel, err)
				}
				if !resultsEqual(got, want) {
					t.Errorf("%v/%v sel=%v: result differs from naive (%d vs %d rows)",
						enc, s, sel, got.NumRows(), want.NumRows())
				}
				if stats.TuplesOut != int64(want.NumRows()) {
					t.Errorf("%v/%v: TuplesOut = %d, want %d", enc, s, stats.TuplesOut, want.NumRows())
				}
			}
		}
	}
}

func TestStrategyEquivalenceAggregation(t *testing.T) {
	db := openDB(t)
	p, err := db.Projection(tpch.LineitemProj)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		linenum := tpch.LinenumColumn(enc)
		q := SelectQuery{
			Filters: []Filter{
				{Col: tpch.ColShipdate, Pred: pred.LessThan(tpch.ShipdateForSelectivity(0.3))},
				{Col: linenum, Pred: pred.LessThan(tpch.LinenumMax)},
			},
			GroupBy: tpch.ColShipdate,
			AggCol:  linenum,
		}
		want := naiveSelect(t, p, q)
		for _, s := range Strategies {
			got, stats, err := exec.Select(p, q, s)
			if err != nil {
				t.Fatalf("%v/%v: %v", enc, s, err)
			}
			if !resultsEqual(got, want) {
				t.Errorf("%v/%v: aggregation differs from naive", enc, s)
			}
			if stats.Groups != want.NumRows() {
				t.Errorf("%v/%v: Groups = %d, want %d", enc, s, stats.Groups, want.NumRows())
			}
		}
	}
}

// TestAggregateFunctionsEquivalence runs every aggregate function under
// every strategy and encoding against the naive reference.
func TestAggregateFunctionsEquivalence(t *testing.T) {
	db := openDB(t)
	p, err := db.Projection(tpch.LineitemProj)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	fns := []operators.AggFunc{
		operators.AggSum, operators.AggCount, operators.AggAvg, operators.AggMin, operators.AggMax,
	}
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		linenum := tpch.LinenumColumn(enc)
		for _, fn := range fns {
			q := SelectQuery{
				Filters: []Filter{
					{Col: tpch.ColShipdate, Pred: pred.LessThan(tpch.ShipdateForSelectivity(0.4))},
					{Col: linenum, Pred: pred.LessThan(tpch.LinenumMax)},
				},
				GroupBy: tpch.ColShipdate,
				AggCol:  tpch.ColQuantity, // plain, unsorted values
				Agg:     fn,
			}
			want := naiveSelect(t, p, q)
			for _, s := range Strategies {
				got, _, err := exec.Select(p, q, s)
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", enc, fn, s, err)
				}
				if !resultsEqual(got, want) {
					t.Errorf("%v/%v/%v: differs from naive", enc, fn, s)
				}
				if got.Columns[1] != fn.String()+"(quantity)" {
					t.Errorf("%v: output column %q", fn, got.Columns[1])
				}
			}
		}
	}
}

// TestAggregateFunctionsOnEncodedValues aggregates the encoded column
// itself (so the compressed-direct value paths are exercised for every
// function).
func TestAggregateFunctionsOnEncodedValues(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		linenum := tpch.LinenumColumn(enc)
		for _, fn := range []operators.AggFunc{operators.AggCount, operators.AggMin, operators.AggMax, operators.AggAvg} {
			q := SelectQuery{
				Filters: []Filter{{Col: tpch.ColShipdate, Pred: pred.LessThan(tpch.ShipdateForSelectivity(0.6))}},
				GroupBy: tpch.ColRetflag,
				AggCol:  linenum,
				Agg:     fn,
			}
			want := naiveSelect(t, p, q)
			for _, s := range Strategies {
				got, _, err := exec.Select(p, q, s)
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", enc, fn, s, err)
				}
				if !resultsEqual(got, want) {
					t.Errorf("%v/%v/%v: differs from naive", enc, fn, s)
				}
			}
		}
	}
}

func TestAggregationOnSortedKeyUsesFewGroups(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	exec := NewExecutor(db.Pool(), Options{})
	q := SelectQuery{
		Filters: []Filter{{Col: tpch.ColRetflag, Pred: pred.MatchAll}},
		GroupBy: tpch.ColRetflag,
		AggCol:  tpch.ColQuantity,
	}
	got, stats, err := exec.Select(p, q, LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 || stats.Groups != 3 {
		t.Errorf("returnflag groups = %d (stats %d), want 3", got.NumRows(), stats.Groups)
	}
	// Total over groups must equal the ungrouped total.
	var total int64
	for _, v := range decompressAll(t, p, tpch.ColQuantity) {
		total += v
	}
	var gotTotal int64
	for _, v := range got.Cols[1] {
		gotTotal += v
	}
	if gotTotal != total {
		t.Errorf("sum over groups = %d, want %d", gotTotal, total)
	}
}

func TestBlockSkipping(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 512})
	// Very selective first predicate: matching rows cluster in 3 spots
	// (shipdate is secondarily sorted under the 3 returnflag runs).
	q := lineitemQuery(tpch.ColLinenum, tpch.ShipdateForSelectivity(0.02), tpch.LinenumMax)
	for _, s := range []Strategy{EMPipelined, LMPipelined} {
		_, stats, err := exec.Select(p, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ChunksSkipped == 0 {
			t.Errorf("%v: expected chunk skipping under selective pipelined predicate", s)
		}
	}
	// Parallel strategies never skip.
	for _, s := range []Strategy{EMParallel, LMParallel} {
		_, stats, err := exec.Select(p, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ChunksSkipped != 0 {
			t.Errorf("%v: ChunksSkipped = %d, want 0", s, stats.ChunksSkipped)
		}
	}
}

func TestDisableMultiColumnAblation(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	q := lineitemQuery(tpch.ColLinenumRLE, tpch.ShipdateForSelectivity(0.4), tpch.LinenumMax)

	with := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	resWith, _, err := with.Select(p, q, LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	without := NewExecutor(db.Pool(), Options{ChunkSize: 1024, DisableMultiColumn: true})
	resWithout, statsWithout, err := without.Select(p, q, LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(resWith, resWithout) {
		t.Error("DisableMultiColumn changed the result")
	}
	// Re-access goes through the pool: hits must appear (the I/O is free but
	// the blocks are touched again).
	if statsWithout.Buffer.Hits == 0 {
		t.Error("expected buffer hits from column re-access with multi-columns disabled")
	}
}

// TestZoneIndexEquivalence: with index-derived positions enabled, LM
// strategies must return identical results while reading fewer blocks for
// selective predicates over the sorted leading column.
func TestZoneIndexEquivalence(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	plain := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	zoned := NewExecutor(db.Pool(), Options{ChunkSize: 1024, UseZoneIndex: true})
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		for _, sel := range []float64{0.05, 0.5, 1.0} {
			q := lineitemQuery(tpch.LinenumColumn(enc), tpch.ShipdateForSelectivity(sel), tpch.LinenumMax)
			for _, s := range []Strategy{LMParallel, LMPipelined} {
				a, _, err := plain.Select(p, q, s)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := zoned.Select(p, q, s)
				if err != nil {
					t.Fatal(err)
				}
				if !resultsEqual(a, b) {
					t.Errorf("%v/%v sel=%v: zone index changed the result", enc, s, sel)
				}
			}
		}
	}
	// Aggregation under zone index.
	q := SelectQuery{
		Filters: []Filter{{Col: tpch.ColRetflag, Pred: pred.Equals(1)}},
		GroupBy: tpch.ColShipdate,
		AggCol:  tpch.ColQuantity,
	}
	a, _, err := plain.Select(p, q, LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := zoned.Select(p, q, LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(a, b) {
		t.Error("zone index changed aggregation result")
	}
}

func TestForceBitmapAblation(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	q := lineitemQuery(tpch.ColLinenumRLE, tpch.ShipdateForSelectivity(0.4), 4)
	a := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	b := NewExecutor(db.Pool(), Options{ChunkSize: 1024, ForceBitmapPositions: true})
	for _, s := range Strategies {
		ra, _, err := a.Select(p, q, s)
		if err != nil {
			t.Fatal(err)
		}
		rb, _, err := b.Select(p, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(ra, rb) {
			t.Errorf("%v: ForceBitmapPositions changed the result", s)
		}
	}
}

// TestTinyBufferPool runs every strategy with a pool that can hold only one
// block: heavy eviction must not change results (failure-injection for the
// LM re-access path, which silently depends on pool hits).
func TestTinyBufferPool(t *testing.T) {
	db, err := storage.OpenDB(testData(t), encoding.BlockSize) // one block
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	p, _ := db.Projection(tpch.LineitemProj)
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 512})
	q := lineitemQuery(tpch.ColLinenum, tpch.ShipdateForSelectivity(0.5), tpch.LinenumMax)
	var want *rows.Result
	for _, s := range Strategies {
		got, _, err := exec.Select(p, q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if want == nil {
			want = got
		} else if !resultsEqual(want, got) {
			t.Errorf("%v: result changed under eviction pressure", s)
		}
	}
	if db.Pool().Stats().Evictions == 0 {
		t.Error("expected evictions with a one-block pool")
	}
}

func TestQueryValidation(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	exec := NewExecutor(db.Pool(), Options{})
	for _, q := range []SelectQuery{
		{},                                   // no outputs, no aggregation
		{Output: []string{"no_such_column"}}, // unknown output
		{GroupBy: tpch.ColShipdate},          // aggregation without AggCol
		{Output: []string{tpch.ColShipdate}, Filters: []Filter{{Col: "nope", Pred: pred.MatchAll}}},
	} {
		if _, _, err := exec.Select(p, q, LMParallel); err == nil {
			t.Errorf("query %+v accepted", q)
		}
	}
}

func TestNoFilterQuery(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	q := SelectQuery{Output: []string{tpch.ColQuantity}}
	var first *rows.Result
	for _, s := range Strategies {
		got, stats, err := exec.Select(p, q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if int64(got.NumRows()) != p.TupleCount() {
			t.Errorf("%v: %d rows, want %d", s, got.NumRows(), p.TupleCount())
		}
		if stats.TuplesOut != p.TupleCount() {
			t.Errorf("%v: TuplesOut = %d", s, stats.TuplesOut)
		}
		if first == nil {
			first = got
		} else if !resultsEqual(first, got) {
			t.Errorf("%v: differs from first strategy", s)
		}
	}
}

func TestEmptyResultAllStrategies(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	q := lineitemQuery(tpch.ColLinenum, 0, tpch.LinenumMax) // shipdate < 0: empty
	for _, s := range Strategies {
		got, stats, err := exec.Select(p, q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got.NumRows() != 0 || stats.TuplesOut != 0 {
			t.Errorf("%v: expected empty result, got %d rows", s, got.NumRows())
		}
	}
}

// TestStrategyEquivalenceRandom is the central property test: on random
// queries over random filter combinations and encodings, all four
// strategies must return byte-identical results.
func TestStrategyEquivalenceRandom(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	rng := rand.New(rand.NewSource(31))
	allCols := []string{tpch.ColRetflag, tpch.ColShipdate, tpch.ColLinenum,
		tpch.ColLinenumRLE, tpch.ColLinenumBV, tpch.ColQuantity}
	maxOf := map[string]int64{
		tpch.ColRetflag: 2, tpch.ColShipdate: tpch.ShipdateDays,
		tpch.ColLinenum: tpch.LinenumMax, tpch.ColLinenumRLE: tpch.LinenumMax,
		tpch.ColLinenumBV: tpch.LinenumMax, tpch.ColQuantity: tpch.QuantityMax,
	}
	chunkSizes := []int64{512, 1024, 65536}
	for iter := 0; iter < 25; iter++ {
		exec := NewExecutor(db.Pool(), Options{ChunkSize: chunkSizes[iter%len(chunkSizes)]})
		nf := 1 + rng.Intn(3)
		q := SelectQuery{}
		perm := rng.Perm(len(allCols))
		for i := 0; i < nf; i++ {
			col := allCols[perm[i]]
			ops := []pred.Predicate{
				pred.LessThan(rng.Int63n(maxOf[col] + 2)),
				pred.AtLeast(rng.Int63n(maxOf[col] + 1)),
				pred.Equals(rng.Int63n(maxOf[col] + 1)),
				pred.InRange(rng.Int63n(maxOf[col]+1), rng.Int63n(maxOf[col]+2)),
			}
			q.Filters = append(q.Filters, Filter{Col: col, Pred: ops[rng.Intn(len(ops))]})
		}
		if rng.Intn(3) == 0 {
			q.GroupBy = allCols[perm[nf%len(perm)]]
			q.AggCol = allCols[perm[(nf+1)%len(perm)]]
		} else {
			q.Output = []string{allCols[perm[nf%len(perm)]], q.Filters[0].Col}
		}
		var first *rows.Result
		var firstStrat Strategy
		for _, s := range Strategies {
			got, _, err := exec.Select(p, q, s)
			if err != nil {
				t.Fatalf("iter %d %v (%+v): %v", iter, s, q, err)
			}
			if first == nil {
				first, firstStrat = got, s
			} else if !resultsEqual(first, got) {
				t.Fatalf("iter %d: %v and %v disagree on %+v (%d vs %d rows)",
					iter, firstStrat, s, q, first.NumRows(), got.NumRows())
			}
		}
	}
}

func TestJoinStrategiesEquivalence(t *testing.T) {
	db := openDB(t)
	orders, err := db.Projection(tpch.OrdersProj)
	if err != nil {
		t.Fatal(err)
	}
	customer, err := db.Projection(tpch.CustomerProj)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 512})
	nCust := customer.TupleCount()
	for _, sel := range []float64{0, 0.1, 0.6, 1.0} {
		q := JoinQuery{
			LeftKey:     tpch.ColCustkey,
			LeftPred:    pred.LessThan(tpch.CustkeyForSelectivity(sel, nCust)),
			LeftOutput:  []string{tpch.ColOrderShipdate},
			RightKey:    tpch.ColCustkey,
			RightOutput: []string{tpch.ColNationcode},
		}
		want := naiveJoin(t, orders, customer, q)
		for _, rs := range []operators.RightStrategy{
			operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
		} {
			got, stats, err := exec.Join(orders, customer, q, rs)
			if err != nil {
				t.Fatalf("%v sel=%v: %v", rs, sel, err)
			}
			if !resultsEqual(got, want) {
				t.Errorf("%v sel=%v: join result differs from naive (%d vs %d rows)",
					rs, sel, got.NumRows(), want.NumRows())
			}
			if stats.TuplesOut != int64(want.NumRows()) {
				t.Errorf("%v: TuplesOut = %d, want %d", rs, stats.TuplesOut, want.NumRows())
			}
		}
	}
}

func naiveJoin(t *testing.T, left, right *storage.Projection, q JoinQuery) *rows.Result {
	t.Helper()
	lk := decompressAll(t, left, q.LeftKey)
	rk := decompressAll(t, right, q.RightKey)
	lOut := make([][]int64, len(q.LeftOutput))
	for i, n := range q.LeftOutput {
		lOut[i] = decompressAll(t, left, n)
	}
	rOut := make([][]int64, len(q.RightOutput))
	for i, n := range q.RightOutput {
		rOut[i] = decompressAll(t, right, n)
	}
	rIndex := map[int64][]int{}
	for i, k := range rk {
		rIndex[k] = append(rIndex[k], i)
	}
	res := rows.NewResult(append(append([]string{}, q.LeftOutput...), q.RightOutput...)...)
	row := make([]int64, len(q.LeftOutput)+len(q.RightOutput))
	for i, k := range lk {
		if !q.LeftPred.Match(k) {
			continue
		}
		for _, ri := range rIndex[k] {
			for c := range lOut {
				row[c] = lOut[c][i]
			}
			for c := range rOut {
				row[len(lOut)+c] = rOut[c][ri]
			}
			res.AppendRow(row...)
		}
	}
	return res
}

func TestJoinStats(t *testing.T) {
	db := openDB(t)
	orders, _ := db.Projection(tpch.OrdersProj)
	customer, _ := db.Projection(tpch.CustomerProj)
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 512})
	q := JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    pred.MatchAll,
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
	_, stats, err := exec.Join(orders, customer, q, operators.RightSingleColumn)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Join.DeferredFetches == 0 {
		t.Error("single-column strategy should report deferred fetches")
	}
	_, stats, err = exec.Join(orders, customer, q, operators.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Join.RightBuildTuples != customer.TupleCount() {
		t.Errorf("RightBuildTuples = %d, want %d", stats.Join.RightBuildTuples, customer.TupleCount())
	}
	if stats.Join.DeferredFetches != 0 {
		t.Error("materialized strategy should not defer fetches")
	}
}

func TestParseStrategy(t *testing.T) {
	for s, want := range map[string]Strategy{
		"em-pipelined": EMPipelined, "em-parallel": EMParallel,
		"lm-pipelined": LMPipelined, "lm-parallel": LMParallel,
	} {
		got, err := ParseStrategy(s)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		EMPipelined: "EM-pipelined", EMParallel: "EM-parallel",
		LMPipelined: "LM-pipelined", LMParallel: "LM-parallel",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestOutputChecksumStableAcrossStrategies(t *testing.T) {
	db := openDB(t)
	p, _ := db.Projection(tpch.LineitemProj)
	exec := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	q := lineitemQuery(tpch.ColLinenumRLE, tpch.ShipdateForSelectivity(0.7), 5)
	var sum int64
	for i, s := range Strategies {
		_, stats, err := exec.Select(p, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			sum = stats.OutputChecksum
			if sum == 0 {
				t.Fatal("checksum unexpectedly zero; pick a different query")
			}
		} else if stats.OutputChecksum != sum {
			t.Errorf("%v checksum %d != %d", s, stats.OutputChecksum, sum)
		}
	}
}
