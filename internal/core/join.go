package core

import (
	"errors"
	"time"

	"matstore/internal/buffer"
	"matstore/internal/operators"
	"matstore/internal/plan"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

// JoinQuery describes the star-style equi-join of Section 4.3:
//
//	SELECT LeftOutput..., RightOutput...
//	FROM left, right
//	WHERE left.LeftKey = right.RightKey AND LeftPred(left.LeftKey)
//
// (The paper's experiment predicates the join key itself — Orders.custkey <
// X — which is what LeftPred models.)
type JoinQuery struct {
	LeftKey     string
	LeftPred    pred.Predicate
	LeftOutput  []string
	RightKey    string
	RightOutput []string
	// Parallelism is the worker count for BOTH join phases (0 = one per
	// CPU, 1 = serial): the radix-partitioned hash build scans the inner
	// table morsel-parallel into per-partition tables, and the outer-table
	// probe streams morsel-parallel against them.
	Parallelism int
	// SpillBudgetBytes, when > 0, caps the resident bytes of the build side:
	// the build runs in Grace spill mode, writing over-budget partitions to
	// temp files under the database's spill directory and probing them
	// partition-at-a-time. Results are byte-identical to the in-memory build
	// at every budget. 0 (the default) builds fully in memory. (The query
	// service sets the equivalent automatically from its memory governor;
	// this field is the direct-API and CLI switch.)
	SpillBudgetBytes int64
}

// JoinStats extends Stats with join-side counters.
type JoinStats struct {
	Stats
	RightStrategy operators.RightStrategy
	Join          operators.JoinStats
}

// BuildJoinPlan compiles q into the physical join plan: a PROJECT root over
// a JOINPROBE node whose children are the outer-table position subtree (a
// DS1 scan of the outer key when LeftPred filters, ALLPOS otherwise) and
// the blocking JOINBUILD node for the inner side. The plan runs through the
// same generic morsel executor as every selection plan — plan.Plan.Run's
// build-barrier phase constructs the partitioned hash side before the probe
// morsels stream.
func (e *Executor) BuildJoinPlan(left, right *storage.Projection, q JoinQuery, rs operators.RightStrategy) (*plan.Plan, error) {
	if len(q.RightOutput) == 0 && rs != operators.RightMaterialized {
		return nil, errors.New("core: join without right outputs is a semi-join; use RightMaterialized")
	}
	leftKeyCol, err := left.Column(q.LeftKey)
	if err != nil {
		return nil, err
	}
	leftCols := make([]*storage.Column, len(q.LeftOutput))
	for i, name := range q.LeftOutput {
		if leftCols[i], err = left.Column(name); err != nil {
			return nil, err
		}
	}
	rightKeyCol, err := right.Column(q.RightKey)
	if err != nil {
		return nil, err
	}
	rightCols := make([]*storage.Column, len(q.RightOutput))
	for i, name := range q.RightOutput {
		if rightCols[i], err = right.Column(name); err != nil {
			return nil, err
		}
	}

	var pos *plan.Node
	if q.LeftPred.Op == pred.All {
		pos = plan.NewPosAll()
	} else {
		pos = plan.NewDS1(q.LeftKey, leftKeyCol, []pred.Predicate{q.LeftPred})
	}
	build := plan.NewJoinBuild(q.RightKey, rightKeyCol, q.RightOutput, rightCols, rs, e.Opt.JoinPartitions)
	build.Proj = right.Name() // the shared build cache's keying identity
	probe := plan.NewJoinProbe(q.LeftKey, leftKeyCol, q.LeftOutput, leftCols, pos, build)
	outNames := append(append([]string{}, q.LeftOutput...), q.RightOutput...)
	return &plan.Plan{
		Label: "join " + rs.String(),
		Root:  plan.NewProject(probe, outNames),
		Spec: plan.Spec{
			OutNames:           outNames,
			Output:             outNames,
			Tuples:             left.TupleCount(),
			ChunkSize:          e.Opt.chunkSize(),
			DisableMultiColumn: e.Opt.DisableMultiColumn,
			ForceBitmap:        e.Opt.ForceBitmapPositions,
			UseZoneIndex:       e.Opt.UseZoneIndex,
		},
	}, nil
}

// Join executes q with the given inner-table materialization strategy.
// left is the outer (probing) projection, right the inner (built)
// projection. The join is plan-built and plan-run exactly like Select
// (BuildJoinPlan + RunJoinPlan); Options.SerialJoinBuild routes it through
// the retained serial-build reference instead (the ablation baseline the
// differential suite pins the radix build against).
func (e *Executor) Join(left, right *storage.Projection, q JoinQuery, rs operators.RightStrategy) (*rows.Result, *JoinStats, error) {
	if e.Opt.SerialJoinBuild {
		return e.joinSerialBuild(left, right, q, rs)
	}
	pl, err := e.BuildJoinPlan(left, right, q, rs)
	if err != nil {
		return nil, nil, err
	}
	return e.RunJoinPlan(pl, q.Parallelism, false)
}

// RunJoinPlan executes a built join plan through the generic morsel
// executor, wrapping the run in the query-level accounting. With observe
// set, every plan node accumulates observed rows/time for EXPLAIN.
func (e *Executor) RunJoinPlan(pl *plan.Plan, parallelism int, observe bool) (*rows.Result, *JoinStats, error) {
	return e.RunJoinPlanWith(pl, parallelism, plan.RunOptions{Observe: observe})
}

// RunJoinPlanWith is RunJoinPlan with the full run options: a cancellation
// context and, when the memory governor forces it, a Grace spill
// configuration for the build side.
func (e *Executor) RunJoinPlanWith(pl *plan.Plan, parallelism int, opt plan.RunOptions) (*rows.Result, *JoinStats, error) {
	probe := pl.JoinProbe()
	if probe == nil {
		return nil, nil, errors.New("core: RunJoinPlan needs a join plan (PROJECT over JOINPROBE)")
	}
	stats := &JoinStats{RightStrategy: probe.Children[1].RightStrategy}
	stats.Strategy = outerShape(probe)
	before := e.Pool.Stats()
	start := time.Now()

	res, runStats, err := pl.RunWith(parallelism, opt)
	if err != nil {
		return nil, nil, err
	}
	stats.Join = runStats.Join
	stats.Workers = runStats.Workers
	stats.Morsels = runStats.Morsels
	stats.PositionsMatched = runStats.PositionsMatched
	stats.ChunksSkipped = runStats.ChunksSkipped
	if !e.Opt.SkipOutputIteration {
		stats.OutputChecksum = drainResult(res)
	}
	stats.Wall = time.Since(start)
	stats.TuplesOut = int64(res.NumRows())
	stats.TuplesConstructed = runStats.Join.OutputTuples + runStats.Join.RightBuildTuples
	after := e.Pool.Stats()
	stats.Buffer = buffer.Stats{
		Hits:   after.Hits - before.Hits,
		Misses: after.Misses - before.Misses,
		Reads:  after.Reads - before.Reads,
		Seeks:  after.Seeks - before.Seeks,
	}
	return res, stats, nil
}

// outerShape reports the materialization strategy the outer (probe) side of
// a join plan actually executes, for JoinStats.Strategy: the probe streams
// positions from its scan subtree and materializes outer payload values late
// (batched gathers at surviving positions), so a chain subtree is
// LM-pipelined; a position-AND subtree would be LM-parallel.
func outerShape(probe *plan.Node) Strategy {
	shape := LMPipelined
	plan.Walk(probe.Children[0], func(n *plan.Node) {
		if n.Kind == plan.KindAND {
			shape = LMParallel
		}
	})
	return shape
}

// joinSerialBuild is the retained pre-plan join driver: serial hash build
// (operators.BuildRightTable) feeding the morsel-parallel probe of
// operators.RunHashJoin. It exists as the reference implementation the
// radix-partitioned plan path is differential-tested against, and as the
// serial side of the build ablation benchmark.
func (e *Executor) joinSerialBuild(left, right *storage.Projection, q JoinQuery, rs operators.RightStrategy) (*rows.Result, *JoinStats, error) {
	if len(q.RightOutput) == 0 && rs != operators.RightMaterialized {
		return nil, nil, errors.New("core: join without right outputs is a semi-join; use RightMaterialized")
	}
	leftKeyCol, err := left.Column(q.LeftKey)
	if err != nil {
		return nil, nil, err
	}
	leftOutputs := make([]operators.NamedColumn, len(q.LeftOutput))
	for i, name := range q.LeftOutput {
		c, err := left.Column(name)
		if err != nil {
			return nil, nil, err
		}
		leftOutputs[i] = operators.NamedColumn{Name: name, Col: c}
	}

	stats := &JoinStats{RightStrategy: rs}
	stats.Strategy = LMPipelined // DS1 positions chained into the probe
	before := e.Pool.Stats()
	start := time.Now()

	rt, err := operators.BuildRightTable(right, q.RightKey, q.RightOutput, rs, e.Opt.chunkSize())
	if err != nil {
		return nil, nil, err
	}
	res, jstats, err := operators.RunHashJoin(operators.JoinSpec{
		LeftKey:     leftKeyCol,
		LeftPred:    q.LeftPred,
		LeftOutputs: leftOutputs,
		Right:       rt,
		ChunkSize:   e.Opt.chunkSize(),
		Workers:     q.Parallelism,
	})
	if err != nil {
		return nil, nil, err
	}
	stats.Join = jstats
	stats.Workers = jstats.Workers
	stats.Morsels = jstats.Morsels
	if !e.Opt.SkipOutputIteration {
		stats.OutputChecksum = drainResult(res)
	}
	stats.Wall = time.Since(start)
	stats.TuplesOut = int64(res.NumRows())
	stats.TuplesConstructed = jstats.OutputTuples + jstats.RightBuildTuples
	after := e.Pool.Stats()
	stats.Buffer = buffer.Stats{
		Hits:   after.Hits - before.Hits,
		Misses: after.Misses - before.Misses,
		Reads:  after.Reads - before.Reads,
		Seeks:  after.Seeks - before.Seeks,
	}
	return res, stats, nil
}
