package core

import (
	"errors"
	"time"

	"matstore/internal/buffer"
	"matstore/internal/operators"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

// JoinQuery describes the star-style equi-join of Section 4.3:
//
//	SELECT LeftOutput..., RightOutput...
//	FROM left, right
//	WHERE left.LeftKey = right.RightKey AND LeftPred(left.LeftKey)
//
// (The paper's experiment predicates the join key itself — Orders.custkey <
// X — which is what LeftPred models.)
type JoinQuery struct {
	LeftKey     string
	LeftPred    pred.Predicate
	LeftOutput  []string
	RightKey    string
	RightOutput []string
	// Parallelism is the probe-phase worker count (0 = one per CPU, 1 =
	// serial). The hash build and the single-column strategy's deferred
	// payload fetch stay serial; only the outer-table probe is
	// morsel-parallel.
	Parallelism int
}

// JoinStats extends Stats with join-side counters.
type JoinStats struct {
	Stats
	RightStrategy operators.RightStrategy
	Join          operators.JoinStats
}

// Join executes q with the given inner-table materialization strategy.
// left is the outer (probing) projection, right the inner (built)
// projection.
func (e *Executor) Join(left, right *storage.Projection, q JoinQuery, rs operators.RightStrategy) (*rows.Result, *JoinStats, error) {
	if len(q.RightOutput) == 0 && rs != operators.RightMaterialized {
		return nil, nil, errors.New("core: join without right outputs is a semi-join; use RightMaterialized")
	}
	leftKeyCol, err := left.Column(q.LeftKey)
	if err != nil {
		return nil, nil, err
	}
	leftOutputs := make([]operators.NamedColumn, len(q.LeftOutput))
	for i, name := range q.LeftOutput {
		c, err := left.Column(name)
		if err != nil {
			return nil, nil, err
		}
		leftOutputs[i] = operators.NamedColumn{Name: name, Col: c}
	}

	stats := &JoinStats{RightStrategy: rs}
	stats.Strategy = LMParallel // joins always probe from position-filtered outer scans
	before := e.Pool.Stats()
	start := time.Now()

	rt, err := operators.BuildRightTable(right, q.RightKey, q.RightOutput, rs, e.Opt.chunkSize())
	if err != nil {
		return nil, nil, err
	}
	res, jstats, err := operators.RunHashJoin(operators.JoinSpec{
		LeftKey:     leftKeyCol,
		LeftPred:    q.LeftPred,
		LeftOutputs: leftOutputs,
		Right:       rt,
		ChunkSize:   e.Opt.chunkSize(),
		Workers:     q.Parallelism,
	})
	if err != nil {
		return nil, nil, err
	}
	stats.Join = jstats
	stats.Workers = jstats.Workers
	stats.Morsels = jstats.Morsels
	if !e.Opt.SkipOutputIteration {
		stats.OutputChecksum = drainResult(res)
	}
	stats.Wall = time.Since(start)
	stats.TuplesOut = int64(res.NumRows())
	stats.TuplesConstructed = jstats.OutputTuples + jstats.RightBuildTuples
	after := e.Pool.Stats()
	stats.Buffer = buffer.Stats{
		Hits:   after.Hits - before.Hits,
		Misses: after.Misses - before.Misses,
		Reads:  after.Reads - before.Reads,
		Seeks:  after.Seeks - before.Seeks,
	}
	return res, stats, nil
}
