package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"matstore/internal/operators"
	"matstore/internal/pred"
	"matstore/internal/storage"
	"matstore/internal/tpch"
)

func joinProjections(t *testing.T) (orders, customer *storage.Projection, e *Executor) {
	t.Helper()
	db := openDB(t)
	var err error
	if orders, err = db.Projection(tpch.OrdersProj); err != nil {
		t.Fatal(err)
	}
	if customer, err = db.Projection(tpch.CustomerProj); err != nil {
		t.Fatal(err)
	}
	return orders, customer, NewExecutor(db.Pool(), Options{ChunkSize: 512})
}

func joinTestQuery(withPred bool) JoinQuery {
	q := JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    pred.MatchAll,
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
	if withPred {
		q.LeftPred = pred.LessThan(200)
	}
	return q
}

// TestJoinPlanShapesGolden pins the exact node tree BuildJoinPlan assembles
// for every RightStrategy, with and without the outer-key predicate —
// mirroring plan_golden_test.go for the join subsystem.
func TestJoinPlanShapesGolden(t *testing.T) {
	orders, customer, e := joinProjections(t)
	shape := func(rs operators.RightStrategy, pos string) string {
		return fmt.Sprintf(`join %s plan
PROJECT (shipdate, nationcode)
└─ JOINPROBE custkey = custkey [batched gather]
   ├─ %s
   └─ JOINBUILD custkey [radix, %s] payload=(nationcode)
`, rs, pos, rs)
	}
	for _, rs := range []operators.RightStrategy{
		operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
	} {
		for _, withPred := range []bool{true, false} {
			pos := "ALL positions"
			if withPred {
				pos = "DS1 scan custkey (custkey < 200)"
			}
			pl, err := e.BuildJoinPlan(orders, customer, joinTestQuery(withPred), rs)
			if err != nil {
				t.Fatalf("%v/pred=%v: %v", rs, withPred, err)
			}
			if got, want := pl.Shape(), shape(rs, pos); got != want {
				t.Errorf("%v/pred=%v join plan shape changed:\n--- got ---\n%s--- want ---\n%s",
					rs, withPred, got, want)
			}
		}
	}
}

// TestJoinRadixMatchesSerialBuild is the tentpole acceptance property: the
// radix-partitioned parallel build + batched probe must return results
// byte-identical (order included) to the retained serial-build reference,
// across every RightStrategy × worker count × partition count, with and
// without the outer predicate.
func TestJoinRadixMatchesSerialBuild(t *testing.T) {
	orders, customer, _ := joinProjections(t)
	db := openDB(t)
	serial := NewExecutor(db.Pool(), Options{ChunkSize: 512, SerialJoinBuild: true})
	for _, withPred := range []bool{true, false} {
		q := joinTestQuery(withPred)
		for _, rs := range []operators.RightStrategy{
			operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
		} {
			q.Parallelism = 1
			want, wantStats, err := serial.Join(orders, customer, q, rs)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 7} {
				for _, partitions := range []int{0, 1, 2, 8, 64} {
					e := NewExecutor(db.Pool(), Options{ChunkSize: 512, JoinPartitions: partitions})
					q.Parallelism = workers
					got, stats, err := e.Join(orders, customer, q, rs)
					if err != nil {
						t.Fatalf("%v/w=%d/p=%d: %v", rs, workers, partitions, err)
					}
					if !reflect.DeepEqual(got.Cols, want.Cols) || !reflect.DeepEqual(got.Columns, want.Columns) {
						t.Errorf("%v/pred=%v/w=%d/p=%d: result differs from serial build (%d vs %d rows)",
							rs, withPred, workers, partitions, got.NumRows(), want.NumRows())
					}
					if stats.Join.LeftProbes != wantStats.Join.LeftProbes ||
						stats.Join.OutputTuples != wantStats.Join.OutputTuples ||
						stats.Join.RightBuildTuples != wantStats.Join.RightBuildTuples ||
						stats.Join.DeferredFetches != wantStats.Join.DeferredFetches {
						t.Errorf("%v/w=%d/p=%d: join counters %+v, want %+v",
							rs, workers, partitions, stats.Join, wantStats.Join)
					}
					if partitions > 0 && stats.Join.Partitions != partitions {
						t.Errorf("%v/w=%d/p=%d: Partitions = %d", rs, workers, partitions, stats.Join.Partitions)
					}
				}
			}
		}
	}
}

// TestJoinStatsReportActualShape pins the satellite fix: JoinStats.Strategy
// reports the outer side's actual plan shape (a pipelined position chain →
// LM-pipelined, never the old hard-coded LM-parallel), the right strategy is
// surfaced, and the radix build phase is described.
func TestJoinStatsReportActualShape(t *testing.T) {
	orders, customer, e := joinProjections(t)
	q := joinTestQuery(true)
	q.Parallelism = 2
	for _, rs := range []operators.RightStrategy{
		operators.RightMaterialized, operators.RightSingleColumn,
	} {
		_, stats, err := e.Join(orders, customer, q, rs)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Strategy != LMPipelined {
			t.Errorf("%v: Strategy = %v, want %v (the probe's actual outer shape)", rs, stats.Strategy, LMPipelined)
		}
		if stats.RightStrategy != rs {
			t.Errorf("RightStrategy = %v, want %v", stats.RightStrategy, rs)
		}
		if stats.Join.Partitions < 2 {
			t.Errorf("%v: Partitions = %d, want >= 2 at parallelism 2", rs, stats.Join.Partitions)
		}
		if stats.Join.BuildWorkers < 1 || stats.Join.BuildMorsels < 1 {
			t.Errorf("%v: build phase not reported: %+v", rs, stats.Join)
		}
		if stats.PositionsMatched == 0 {
			t.Errorf("%v: PositionsMatched not reported", rs)
		}
	}
	// The serial reference path also reports the actual shape.
	db := openDB(t)
	serial := NewExecutor(db.Pool(), Options{ChunkSize: 512, SerialJoinBuild: true})
	_, stats, err := serial.Join(orders, customer, q, operators.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Strategy != LMPipelined {
		t.Errorf("serial path Strategy = %v, want %v", stats.Strategy, LMPipelined)
	}
}

// TestJoinPlanReuseBuild checks the probe-isolation switch: with ReuseBuild
// set, repeated runs of one join plan share the partitioned hash side and
// keep returning identical results.
func TestJoinPlanReuseBuild(t *testing.T) {
	orders, customer, e := joinProjections(t)
	pl, err := e.BuildJoinPlan(orders, customer, joinTestQuery(true), operators.RightMultiColumn)
	if err != nil {
		t.Fatal(err)
	}
	pl.ReuseBuild = true
	first, _, err := e.RunJoinPlan(pl, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		res, _, err := e.RunJoinPlan(pl, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Cols, first.Cols) {
			t.Fatalf("run %d: reused-build result differs", run)
		}
	}
}

// TestJoinSemiJoinValidation keeps the semi-join guard on the plan path.
func TestJoinSemiJoinValidation(t *testing.T) {
	orders, customer, e := joinProjections(t)
	q := joinTestQuery(true)
	q.RightOutput = nil
	if _, _, err := e.Join(orders, customer, q, operators.RightSingleColumn); err == nil {
		t.Error("semi-join without right outputs accepted for non-materialized strategy")
	}
	if _, _, err := e.Join(orders, customer, q, operators.RightMaterialized); err != nil {
		t.Errorf("materialized semi-join rejected: %v", err)
	}
}

// TestJoinPlanConcurrentRuns executes one shared join plan from several
// goroutines at once (both with and without ReuseBuild): every run must
// return the reference result, and the build-phase handoff must be
// race-clean (exercised under `make ci`'s -race pass).
func TestJoinPlanConcurrentRuns(t *testing.T) {
	orders, customer, e := joinProjections(t)
	q := joinTestQuery(true)
	want, _, err := e.Join(orders, customer, q, operators.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	for _, reuse := range []bool{false, true} {
		pl, err := e.BuildJoinPlan(orders, customer, q, operators.RightMaterialized)
		if err != nil {
			t.Fatal(err)
		}
		pl.ReuseBuild = reuse
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for run := 0; run < 3; run++ {
					res, _, err := e.RunJoinPlan(pl, 2, false)
					if err != nil {
						errs[g] = err
						return
					}
					if !reflect.DeepEqual(res.Cols, want.Cols) {
						errs[g] = fmt.Errorf("goroutine %d run %d: result differs", g, run)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("reuse=%v: %v", reuse, err)
			}
		}
	}
}
