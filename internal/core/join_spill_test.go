package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"matstore/internal/operators"
	"matstore/internal/plan"
)

// TestJoinSpillMatchesInMemory is the memory-governance acceptance property
// at the plan level: a Grace spill build probed partition-at-a-time must
// return results byte-identical (order included) to the in-memory radix
// join, at every budget (everything spilled, partially spilled, nothing
// spilled) × worker count × strategy, with and without the outer predicate.
func TestJoinSpillMatchesInMemory(t *testing.T) {
	orders, customer, e := joinProjections(t)
	dir := t.TempDir()
	for _, withPred := range []bool{true, false} {
		q := joinTestQuery(withPred)
		for _, rs := range []operators.RightStrategy{
			operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
		} {
			pl, err := e.BuildJoinPlan(orders, customer, q, rs)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats, err := e.RunJoinPlan(pl, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := operators.BuildPartitioned(
				pl.JoinProbe().Children[1].Column, pl.JoinProbe().Children[1].RightCols,
				pl.JoinProbe().Children[1].RightPayload, rs, 512, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range []int64{1, ref.SizeBytes / 2, ref.SizeBytes * 100} {
				for _, workers := range []int{1, 4} {
					spl, err := e.BuildJoinPlan(orders, customer, q, rs)
					if err != nil {
						t.Fatal(err)
					}
					got, stats, err := e.RunJoinPlanWith(spl, workers, plan.RunOptions{
						Ctx:   context.Background(),
						Spill: &operators.SpillConfig{BudgetBytes: budget, EstBytes: ref.SizeBytes, Dir: dir},
					})
					if err != nil {
						t.Fatalf("%v/pred=%v/budget=%d/w=%d: %v", rs, withPred, budget, workers, err)
					}
					if !reflect.DeepEqual(got.Cols, want.Cols) || !reflect.DeepEqual(got.Columns, want.Columns) {
						t.Errorf("%v/pred=%v/budget=%d/w=%d: spilled result differs from in-memory (%d vs %d rows)",
							rs, withPred, budget, workers, got.NumRows(), want.NumRows())
					}
					if !stats.Join.Spilled {
						t.Errorf("%v/budget=%d: Spilled not reported", rs, budget)
					}
					if budget == 1 && stats.Join.SpilledParts != stats.Join.Partitions {
						t.Errorf("%v/budget=1/w=%d: SpilledParts = %d, want all %d",
							rs, workers, stats.Join.SpilledParts, stats.Join.Partitions)
					}
					if budget == ref.SizeBytes*100 && stats.Join.SpilledParts != 0 {
						t.Errorf("%v/unlimited/w=%d: SpilledParts = %d, want 0", rs, workers, stats.Join.SpilledParts)
					}
					if stats.Join.SpilledParts > 0 && stats.Join.SpillBytes == 0 {
						t.Errorf("%v/budget=%d: spilled partitions but SpillBytes = 0", rs, budget)
					}
					// BuildTuples counts payload materialized during build — the
					// spill build defers all payload, so only the probe-side
					// counters must match.
					if stats.Join.LeftProbes != wantStats.Join.LeftProbes ||
						stats.Join.OutputTuples != wantStats.Join.OutputTuples {
						t.Errorf("%v/budget=%d/w=%d: counters %+v, want %+v",
							rs, budget, workers, stats.Join, wantStats.Join)
					}
				}
			}
		}
	}
	// Every run owned and removed its temp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), operators.SpillFilePrefix) {
			t.Errorf("leaked spill file %s", filepath.Join(dir, ent.Name()))
		}
	}
}

// TestJoinSpillCancel pins cancellation mid-spill-run: the run returns the
// context error and leaves no temp files behind.
func TestJoinSpillCancel(t *testing.T) {
	orders, customer, e := joinProjections(t)
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pl, err := e.BuildJoinPlan(orders, customer, joinTestQuery(false), operators.RightSingleColumn)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = e.RunJoinPlanWith(pl, 2, plan.RunOptions{
		Ctx:   ctx,
		Spill: &operators.SpillConfig{BudgetBytes: 1, EstBytes: 1 << 20, Dir: dir},
	})
	if err == nil {
		t.Fatal("cancelled spill run succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("cancelled run leaked %d spill files", len(entries))
	}
}
