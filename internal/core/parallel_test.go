package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"matstore/internal/encoding"
	"matstore/internal/operators"
	"matstore/internal/pred"
	"matstore/internal/storage"
	"matstore/internal/tpch"
)

// parallelExecutor returns an executor with a small chunk size so the 12k
// test rows split into many chunks (and therefore many morsels).
func parallelExecutor(t *testing.T) (*Executor, *testProjections) {
	t.Helper()
	db := openDB(t)
	e := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	li, err := db.Projection(tpch.LineitemProj)
	if err != nil {
		t.Fatal(err)
	}
	or, err := db.Projection(tpch.OrdersProj)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := db.Projection(tpch.CustomerProj)
	if err != nil {
		t.Fatal(err)
	}
	return e, &testProjections{lineitem: li, orders: or, customer: cu}
}

type testProjections struct {
	lineitem, orders, customer *storage.Projection
}

var rightStrategies = []operators.RightStrategy{
	operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
}

// TestParallelSelectEquivalence checks every strategy returns identical
// results and counters at parallelism 1, 2, and 4 — morsel merging in block
// order must reproduce serial output exactly, not just up to reordering.
func TestParallelSelectEquivalence(t *testing.T) {
	e, ps := parallelExecutor(t)
	queries := map[string]SelectQuery{
		"selection": lineitemQuery(tpch.ColLinenum, 1200, 7),
		"three-predicates": {
			Output: []string{tpch.ColShipdate, tpch.ColLinenum, tpch.ColQuantity},
			Filters: []Filter{
				{Col: tpch.ColShipdate, Pred: pred.LessThan(250)},
				{Col: tpch.ColQuantity, Pred: pred.LessThan(40)},
				{Col: tpch.ColLinenum, Pred: pred.LessThan(7)},
			},
		},
		"aggregation": {
			Filters: []Filter{{Col: tpch.ColShipdate, Pred: pred.LessThan(800)}},
			GroupBy: tpch.ColRetflag,
			AggCol:  tpch.ColQuantity,
		},
		"no-filter": {Output: []string{tpch.ColQuantity}},
		"empty":     lineitemQuery(tpch.ColLinenum, -1, 7),
	}
	for name, q := range queries {
		for _, s := range Strategies {
			t.Run(fmt.Sprintf("%s/%v", name, s), func(t *testing.T) {
				q.Parallelism = 1
				serialRes, serialStats, err := e.Select(ps.lineitem, q, s)
				if err != nil {
					t.Fatal(err)
				}
				if serialStats.Morsels != 1 || serialStats.Workers != 1 {
					t.Fatalf("serial run used %d morsels / %d workers",
						serialStats.Morsels, serialStats.Workers)
				}
				for _, par := range []int{2, 4} {
					q.Parallelism = par
					res, stats, err := e.Select(ps.lineitem, q, s)
					if err != nil {
						t.Fatal(err)
					}
					if !resultsEqual(res, serialRes) {
						t.Errorf("parallelism=%d result differs from serial", par)
					}
					if stats.Workers != par {
						t.Errorf("parallelism=%d: Workers = %d", par, stats.Workers)
					}
					if name != "empty" && stats.Morsels < 2 {
						t.Errorf("parallelism=%d: only %d morsels", par, stats.Morsels)
					}
					// Morsels are chunk-aligned, so per-chunk counters are
					// identical, not merely equivalent.
					if stats.TuplesConstructed != serialStats.TuplesConstructed ||
						stats.PositionsMatched != serialStats.PositionsMatched ||
						stats.ChunksSkipped != serialStats.ChunksSkipped ||
						stats.Groups != serialStats.Groups ||
						stats.OutputChecksum != serialStats.OutputChecksum {
						t.Errorf("parallelism=%d counters differ: %+v vs serial %+v",
							par, stats, serialStats)
					}
				}
			})
		}
	}
}

// TestParallelSelectDeterministic repeats the same parallel query 10×: the
// output order (not just the output set) must be stable run to run.
func TestParallelSelectDeterministic(t *testing.T) {
	e, ps := parallelExecutor(t)
	q := lineitemQuery(tpch.ColLinenum, 1200, 7)
	q.Parallelism = 4
	for _, s := range Strategies {
		first, _, err := e.Select(ps.lineitem, q, s)
		if err != nil {
			t.Fatal(err)
		}
		for run := 1; run < 10; run++ {
			res, _, err := e.Select(ps.lineitem, q, s)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(res, first) {
				t.Fatalf("%v: run %d differs from run 0", s, run)
			}
		}
	}
}

// TestParallelJoinEquivalence checks the morsel-parallel probe phase
// produces the serial join result for every inner-table strategy.
func TestParallelJoinEquivalence(t *testing.T) {
	e, ps := parallelExecutor(t)
	nCust := ps.customer.TupleCount()
	q := JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    pred.LessThan(nCust / 2),
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
	for _, rs := range rightStrategies {
		q.Parallelism = 1
		serial, serialStats, err := e.Join(ps.orders, ps.customer, q, rs)
		if err != nil {
			t.Fatal(err)
		}
		if serial.NumRows() == 0 {
			t.Fatalf("%v: serial join empty", rs)
		}
		q.Parallelism = 4
		par, parStats, err := e.Join(ps.orders, ps.customer, q, rs)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(par, serial) {
			t.Errorf("%v: parallel join differs from serial", rs)
		}
		if parStats.Join.LeftProbes != serialStats.Join.LeftProbes ||
			parStats.Join.OutputTuples != serialStats.Join.OutputTuples ||
			parStats.Join.DeferredFetches != serialStats.Join.DeferredFetches {
			t.Errorf("%v: join counters differ: %+v vs %+v",
				rs, parStats.Join, serialStats.Join)
		}
	}
}

// TestEmptyProjectionAllStrategies checks a zero-row projection (legal:
// open a writer, append nothing, close) yields an empty result — not a
// panic — at every strategy × parallelism, for selections, aggregations,
// and joins.
func TestEmptyProjectionAllStrategies(t *testing.T) {
	dir := t.TempDir()
	pw, err := storage.NewProjectionWriter(filepath.Join(dir, "empty"), "empty", nil, []storage.ColumnSpec{
		{Name: "a", Encoding: encoding.Plain},
		{Name: "b", Encoding: encoding.Plain},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := storage.OpenDB(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	p, err := db.Projection("empty")
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(db.Pool(), Options{})
	for _, par := range []int{1, 4} {
		for _, s := range Strategies {
			q := SelectQuery{
				Output:      []string{"a"},
				Filters:     []Filter{{Col: "b", Pred: pred.LessThan(10)}},
				Parallelism: par,
			}
			res, stats, err := e.Select(p, q, s)
			if err != nil {
				t.Fatalf("%v/par=%d: %v", s, par, err)
			}
			if res.NumRows() != 0 || stats.TuplesOut != 0 {
				t.Errorf("%v/par=%d: %d rows from empty projection", s, par, res.NumRows())
			}
			q.Output = nil
			q.GroupBy, q.AggCol = "a", "b"
			res, _, err = e.Select(p, q, s)
			if err != nil {
				t.Fatalf("%v/par=%d agg: %v", s, par, err)
			}
			if res.NumRows() != 0 {
				t.Errorf("%v/par=%d agg: %d groups from empty projection", s, par, res.NumRows())
			}
		}
		jq := JoinQuery{
			LeftKey: "a", LeftPred: pred.MatchAll,
			LeftOutput: []string{"b"}, RightKey: "a", RightOutput: []string{"b"},
			Parallelism: par,
		}
		for _, rs := range rightStrategies {
			res, _, err := e.Join(p, p, jq, rs)
			if err != nil {
				t.Fatalf("join %v/par=%d: %v", rs, par, err)
			}
			if res.NumRows() != 0 {
				t.Errorf("join %v/par=%d: %d rows from empty projection", rs, par, res.NumRows())
			}
		}
	}
}

// TestParallelValidationError checks errors surface identically under
// parallel execution.
func TestParallelValidationError(t *testing.T) {
	e, ps := parallelExecutor(t)
	q := SelectQuery{
		Output:      []string{"no_such_column"},
		Parallelism: 4,
	}
	if _, _, err := e.Select(ps.lineitem, q, EMParallel); err == nil {
		t.Error("bad column accepted")
	}
}
