package core

import (
	"testing"

	"matstore/internal/pred"
	"matstore/internal/tpch"
)

// Golden plan-builder shapes: the exact node tree each strategy assembles
// for representative queries, pinned as literal strings so any planner edit
// shows up as a reviewable golden diff. Covered shapes: a 1-filter
// selection, a 3-filter selection whose consecutive same-column predicates
// fuse, an aggregation, and the no-filter multi-output scan that the join's
// right (inner) side materializes.
func TestPlanShapesGolden(t *testing.T) {
	db := openDB(t)
	p, err := db.Projection(tpch.LineitemProj)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(db.Pool(), Options{ChunkSize: 1024})
	unfused := NewExecutor(db.Pool(), Options{ChunkSize: 1024, DisableFusion: true})

	oneFilter := SelectQuery{
		Output:  []string{tpch.ColShipdate, tpch.ColLinenum},
		Filters: []Filter{{Col: tpch.ColShipdate, Pred: pred.LessThan(400)}},
	}
	threeFilter := SelectQuery{
		Output: []string{tpch.ColShipdate, tpch.ColQuantity},
		Filters: []Filter{
			{Col: tpch.ColShipdate, Pred: pred.AtLeast(100)},
			{Col: tpch.ColShipdate, Pred: pred.LessThan(400)},
			{Col: tpch.ColLinenum, Pred: pred.LessThan(5)},
		},
	}
	aggregation := SelectQuery{
		Filters: []Filter{{Col: tpch.ColShipdate, Pred: pred.LessThan(400)}},
		GroupBy: tpch.ColRetflag,
		AggCol:  tpch.ColQuantity,
	}
	joinRightSide := SelectQuery{Output: []string{tpch.ColShipdate, tpch.ColQuantity}}

	cases := []struct {
		name string
		exec *Executor
		q    SelectQuery
		s    Strategy
		want string
	}{
		{"one-filter", e, oneFilter, EMPipelined, `EM-pipelined plan
PROJECT (shipdate, linenum)
└─ DS4 widen linenum
   └─ DS2 scan shipdate (shipdate < 400)
`},
		{"one-filter", e, oneFilter, EMParallel, `EM-parallel plan
PROJECT (shipdate, linenum)
└─ SPC scan (shipdate, linenum) where shipdate < 400
`},
		{"one-filter", e, oneFilter, LMPipelined, `LM-pipelined plan
MERGE out=(shipdate, linenum)
├─ DS1 scan shipdate (shipdate < 400)
├─ DS3 extract shipdate
└─ DS3 extract linenum
`},
		{"one-filter", e, oneFilter, LMParallel, `LM-parallel plan
MERGE out=(shipdate, linenum)
├─ DS1 scan shipdate (shipdate < 400)
├─ DS3 extract shipdate
└─ DS3 extract linenum
`},

		{"three-filter-fused", e, threeFilter, EMPipelined, `EM-pipelined plan
PROJECT (shipdate, quantity)
└─ DS4 widen quantity
   └─ DS4 widen+filter linenum (linenum < 5)
      └─ DS2 scan shipdate (shipdate >= 100 AND shipdate < 400) [fused x2]
`},
		{"three-filter-fused", e, threeFilter, EMParallel, `EM-parallel plan
PROJECT (shipdate, quantity)
└─ SPC scan (shipdate, linenum, quantity) where shipdate >= 100 AND shipdate < 400 AND linenum < 5
`},
		{"three-filter-fused", e, threeFilter, LMPipelined, `LM-pipelined plan
MERGE out=(shipdate, quantity)
├─ DS3+pred filter linenum (linenum < 5)
│  └─ DS1 scan shipdate (shipdate >= 100 AND shipdate < 400) [fused x2]
├─ DS3 extract shipdate
└─ DS3 extract quantity
`},
		{"three-filter-fused", e, threeFilter, LMParallel, `LM-parallel plan
MERGE out=(shipdate, quantity)
├─ AND (2 position lists)
│  ├─ DS1 scan shipdate (shipdate >= 100 AND shipdate < 400) [fused x2]
│  └─ DS1 scan linenum (linenum < 5)
├─ DS3 extract shipdate
└─ DS3 extract quantity
`},
		// With fusion disabled the same query splits back into one scan node
		// per predicate — the unfused reference path.
		{"three-filter-unfused", unfused, threeFilter, LMParallel, `LM-parallel plan
MERGE out=(shipdate, quantity)
├─ AND (3 position lists)
│  ├─ DS1 scan shipdate (shipdate >= 100)
│  ├─ DS1 scan shipdate (shipdate < 400)
│  └─ DS1 scan linenum (linenum < 5)
├─ DS3 extract shipdate
└─ DS3 extract quantity
`},
		{"three-filter-unfused", unfused, threeFilter, LMPipelined, `LM-pipelined plan
MERGE out=(shipdate, quantity)
├─ DS3+pred filter linenum (linenum < 5)
│  └─ DS3+pred filter shipdate (shipdate < 400)
│     └─ DS1 scan shipdate (shipdate >= 100)
├─ DS3 extract shipdate
└─ DS3 extract quantity
`},

		{"aggregation", e, aggregation, EMPipelined, `EM-pipelined plan
AGG sum(quantity) group by returnflag
└─ DS4 widen quantity
   └─ DS4 widen returnflag
      └─ DS2 scan shipdate (shipdate < 400)
`},
		{"aggregation", e, aggregation, EMParallel, `EM-parallel plan
AGG sum(quantity) group by returnflag
└─ SPC scan (shipdate, returnflag, quantity) where shipdate < 400
`},
		{"aggregation", e, aggregation, LMPipelined, `LM-pipelined plan
AGG sum(quantity) group by returnflag
└─ DS1 scan shipdate (shipdate < 400)
`},
		{"aggregation", e, aggregation, LMParallel, `LM-parallel plan
AGG sum(quantity) group by returnflag
└─ DS1 scan shipdate (shipdate < 400)
`},

		{"join-right-side", e, joinRightSide, EMPipelined, `EM-pipelined plan
PROJECT (shipdate, quantity)
└─ DS4 widen quantity
   └─ DS2 scan shipdate
`},
		{"join-right-side", e, joinRightSide, EMParallel, `EM-parallel plan
PROJECT (shipdate, quantity)
└─ SPC scan (shipdate, quantity)
`},
		{"join-right-side", e, joinRightSide, LMPipelined, `LM-pipelined plan
MERGE out=(shipdate, quantity)
├─ ALL positions
├─ DS3 extract shipdate
└─ DS3 extract quantity
`},
		{"join-right-side", e, joinRightSide, LMParallel, `LM-parallel plan
MERGE out=(shipdate, quantity)
├─ ALL positions
├─ DS3 extract shipdate
└─ DS3 extract quantity
`},
	}
	for _, tc := range cases {
		pl, err := tc.exec.BuildPlan(p, tc.q, tc.s)
		if err != nil {
			t.Fatalf("%s/%v: %v", tc.name, tc.s, err)
		}
		if got := pl.Shape(); got != tc.want {
			t.Errorf("%s/%v plan shape changed:\n--- got ---\n%s--- want ---\n%s", tc.name, tc.s, got, tc.want)
		}
	}
}

// TestFuseFilters pins the grouping rule: consecutive same-column filters
// merge, non-consecutive repeats and distinct columns do not; DisableFusion
// keeps singletons.
func TestFuseFilters(t *testing.T) {
	fs := []Filter{
		{Col: "a", Pred: pred.AtLeast(1)},
		{Col: "a", Pred: pred.LessThan(9)},
		{Col: "b", Pred: pred.Equals(3)},
		{Col: "a", Pred: pred.NotEquals(5)},
	}
	got := fuseFilters(fs, true)
	if len(got) != 3 || len(got[0].preds) != 2 || got[0].col != "a" || got[1].col != "b" || got[2].col != "a" {
		t.Errorf("fuseFilters = %+v", got)
	}
	got = fuseFilters(fs, false)
	if len(got) != 4 {
		t.Errorf("unfused groups = %d, want 4", len(got))
	}
	if fuseFilters(nil, true) != nil {
		t.Error("no filters should give no groups")
	}
}
