package core

import (
	"matstore/internal/datasource"
	"matstore/internal/operators"
	"matstore/internal/positions"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

// emPipelinedPlan is the strategy of Figure 7(a): a DS2 leaf scans the
// first predicate column producing (position, value) tuples; every further
// column is a DS4 that jumps to tuple positions, applies its predicate (or
// none, for pure output columns), and widens the tuples. Chunks whose batch
// runs empty skip the remaining columns' blocks — the property that makes
// EM-pipelined competitive under selective predicates.
type emPipelinedPlan struct {
	opt   Options
	q     SelectQuery
	order []string
	preds map[string]pred.Predicate
	cols  map[string]*storage.Column
}

func (e *Executor) compileEMPipelined(p *storage.Projection, q SelectQuery) (morselPlan, error) {
	// Column visit order: filter columns first (in filter order), then any
	// remaining columns the output/aggregation needs.
	order := q.referenced()
	preds := make(map[string]pred.Predicate, len(q.Filters))
	for _, f := range q.Filters {
		preds[f.Col] = f.Pred // queries repeat a column at most once per WHERE
	}
	cols := make(map[string]*storage.Column, len(order))
	for _, name := range order {
		c, err := p.Column(name)
		if err != nil {
			return nil, err
		}
		cols[name] = c
	}
	return &emPipelinedPlan{opt: e.Opt, q: q, order: order, preds: preds, cols: cols}, nil
}

func (pl *emPipelinedPlan) runMorsel(r positions.Range, pt *partial) error {
	agg, res := pt.init(pl.q)
	ch := datasource.NewChunker(r, pl.opt.chunkSize())
	// Compile the plan's data sources once per morsel: the DS2 leaf plus one
	// DS4 (with pre-compiled predicate) per widening column.
	colPred := func(name string) pred.Predicate {
		if p, ok := pl.preds[name]; ok {
			return p
		}
		return pred.MatchAll
	}
	ds2 := datasource.DS2{Col: pl.cols[pl.order[0]], Pred: colPred(pl.order[0])}
	ds4s := make([]datasource.DS4, len(pl.order))
	for i, name := range pl.order[1:] {
		ds4s[i+1] = datasource.DS4{Col: pl.cols[name], Pred: colPred(name)}
		ds4s[i+1].CompilePred()
	}
	var valBuf []int64
	for ci := 0; ci < ch.NumChunks(); ci++ {
		cr := ch.Chunk(ci)
		var batch *rows.Batch
		skipped := false
		for i, name := range pl.order {
			if i == 0 {
				b, err := ds2.ScanChunk(cr, name)
				if err != nil {
					return err
				}
				batch = b
				pt.stats.TuplesConstructed += int64(batch.Len())
				continue
			}
			if batch.Len() == 0 {
				pt.stats.ChunksSkipped++
				skipped = true
				break
			}
			// DS4 widening via the batched block-pinned gather: one fetch
			// for the whole batch's positions instead of a per-tuple jump,
			// touching only the blocks that hold surviving positions.
			var err error
			batch, valBuf, err = ds4s[i].ExtendChunkBatched(batch, name, valBuf)
			if err != nil {
				return err
			}
			pt.stats.TuplesConstructed += int64(batch.Len())
		}
		if skipped || batch.Len() == 0 {
			continue
		}
		pt.stats.PositionsMatched += int64(batch.Len())
		if err := emitBatch(batch, pl.q, agg, res); err != nil {
			return err
		}
	}
	return nil
}

// emParallelPlan is the strategy of Figure 7(b): a single SPC leaf reads
// every needed column, applies all predicates while scanning, and
// constructs complete tuples at the very bottom of the plan. All blocks of
// all input columns are read and processed regardless of selectivity.
type emParallelPlan struct {
	opt     Options
	q       SelectQuery
	cols    []*storage.Column
	filters []operators.IndexedPred
	outIdx  []int
}

func (e *Executor) compileEMParallel(p *storage.Projection, q SelectQuery) (morselPlan, error) {
	order := q.referenced()
	cols := make([]*storage.Column, len(order))
	idx := make(map[string]int, len(order))
	for i, name := range order {
		c, err := p.Column(name)
		if err != nil {
			return nil, err
		}
		cols[i] = c
		idx[name] = i
	}
	filters := make([]operators.IndexedPred, len(q.Filters))
	for i, f := range q.Filters {
		filters[i] = operators.IndexedPred{Col: idx[f.Col], Pred: f.Pred}
	}
	var outNames []string
	if q.Aggregating() {
		outNames = []string{q.GroupBy, q.AggCol}
	} else {
		outNames = q.Output
	}
	outIdx := make([]int, len(outNames))
	for i, name := range outNames {
		outIdx[i] = idx[name]
	}
	return &emParallelPlan{opt: e.Opt, q: q, cols: cols, filters: filters, outIdx: outIdx}, nil
}

func (pl *emParallelPlan) runMorsel(r positions.Range, pt *partial) error {
	agg, res := pt.init(pl.q)
	ch := datasource.NewChunker(r, pl.opt.chunkSize())
	// Scratch buffers are per-morsel (workers share nothing but the pool).
	scratch := make([][]int64, len(pl.cols))
	// SPC constructs tuples column-wise straight into the result (or, for
	// aggregations, into per-chunk key/value vectors feeding the hash
	// aggregator).
	aggDst := make([][]int64, 2)
	for ci := 0; ci < ch.NumChunks(); ci++ {
		cr := ch.Chunk(ci)
		// EM decompresses early: every column's chunk becomes a value
		// vector before predicate evaluation (Section 2.1.2's cost).
		for i, c := range pl.cols {
			mini, err := c.Window(cr)
			if err != nil {
				return err
			}
			scratch[i] = mini.Decompress(scratch[i][:0])
		}
		var constructed int64
		if pl.q.Aggregating() {
			aggDst[0] = aggDst[0][:0]
			aggDst[1] = aggDst[1][:0]
			constructed = operators.SPCChunk(scratch, pl.filters, pl.outIdx, aggDst)
			agg.AddBatch(aggDst[0], aggDst[1])
		} else {
			constructed = operators.SPCChunk(scratch, pl.filters, pl.outIdx, res.Cols)
		}
		pt.stats.TuplesConstructed += constructed
		pt.stats.PositionsMatched += constructed
	}
	return nil
}

// emitBatch routes a constructed-tuple batch into the aggregator or the
// result, in output order.
func emitBatch(batch *rows.Batch, q SelectQuery, agg *operators.Aggregator, res *rows.Result) error {
	if q.Aggregating() {
		keys, err := batch.Col(q.GroupBy)
		if err != nil {
			return err
		}
		vals, err := batch.Col(q.AggCol)
		if err != nil {
			return err
		}
		agg.AddBatch(keys, vals)
		return nil
	}
	for i, name := range q.Output {
		vals, err := batch.Col(name)
		if err != nil {
			return err
		}
		res.Cols[i] = append(res.Cols[i], vals...)
	}
	return nil
}
