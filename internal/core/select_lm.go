package core

import (
	"matstore/internal/datasource"
	"matstore/internal/encoding"
	"matstore/internal/multicol"
	"matstore/internal/operators"
	"matstore/internal/positions"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

// runLM drives both late-materialization strategies. With pipelined=false
// (LM-parallel, Figure 8(b)) every predicate column is scanned by a DS1 and
// the position lists are ANDed. With pipelined=true (LM-pipelined, Figure
// 8(a)) the first column's positions restrict where later predicates are
// even evaluated, the AND disappears, and chunks whose position set runs
// dry skip the remaining columns' blocks entirely.
func (e *Executor) runLM(p *storage.Projection, q SelectQuery, stats *Stats, pipelined bool) (*rows.Result, error) {
	cols := make(map[string]*storage.Column)
	for _, name := range q.referenced() {
		c, err := p.Column(name)
		if err != nil {
			return nil, err
		}
		cols[name] = c
	}

	var agg *operators.Aggregator
	var merger *operators.Merger
	if q.Aggregating() {
		agg = operators.NewAggregator(q.Agg)
	} else {
		merger = operators.NewMerger(q.outputNames()...)
	}

	// matCols are the columns needed at materialization time.
	var matCols []string
	if q.Aggregating() {
		matCols = []string{q.GroupBy, q.AggCol}
	} else {
		matCols = q.Output
	}

	ch := datasource.NewChunker(positions.Range{Start: 0, End: p.TupleCount()}, e.Opt.chunkSize())
	valBufs := make([][]int64, len(matCols))
	for ci := 0; ci < ch.NumChunks(); ci++ {
		r := ch.Chunk(ci)
		mc := multicol.New(r)
		var desc positions.Set

		if pipelined {
			skipped := false
			for i, f := range q.Filters {
				if i > 0 && desc.Count() == 0 {
					// Remaining predicate columns' blocks are never read.
					stats.ChunksSkipped++
					skipped = true
					break
				}
				if i == 0 {
					// The leading scan is a DS1 (optionally index-derived).
					ds1 := datasource.DS1{
						Col: cols[f.Col], Pred: f.Pred,
						ForceBitmap:  e.Opt.ForceBitmapPositions,
						UseZoneIndex: e.Opt.UseZoneIndex,
					}
					ps, mini, err := ds1.ScanChunk(r)
					if err != nil {
						return nil, err
					}
					if mini != nil {
						mc.Attach(f.Col, mini)
					}
					desc = ps
					continue
				}
				// Later predicates narrow the surviving positions in place
				// (DS3+predicate), which requires the column's values.
				mini, err := cols[f.Col].Window(r)
				if err != nil {
					return nil, err
				}
				mc.Attach(f.Col, mini)
				desc = mini.FilterAt(desc, f.Pred)
			}
			if skipped {
				continue
			}
		} else {
			sets := make([]positions.Set, 0, len(q.Filters))
			for _, f := range q.Filters {
				ds1 := datasource.DS1{
					Col: cols[f.Col], Pred: f.Pred,
					ForceBitmap:  e.Opt.ForceBitmapPositions,
					UseZoneIndex: e.Opt.UseZoneIndex,
				}
				ps, mini, err := ds1.ScanChunk(r)
				if err != nil {
					return nil, err
				}
				if mini != nil {
					mc.Attach(f.Col, mini)
				}
				sets = append(sets, ps)
			}
			// The AND operator of Section 3.3 / multi-column AND of 3.6.
			desc = positions.AndAll(sets...)
		}

		if len(q.Filters) == 0 {
			desc = positions.NewRanges(r)
		}
		if desc == nil || desc.Count() == 0 {
			continue
		}
		mc.SetDescriptor(desc)
		stats.PositionsMatched += desc.Count()

		// Materialization: DS3 per needed column, from the multi-column's
		// mini-columns when available (zero re-access), else re-windowed.
		minis := make([]encoding.MiniColumn, len(matCols))
		for i, name := range matCols {
			mini, ok := mc.Mini(name)
			if !ok || e.Opt.DisableMultiColumn {
				var err error
				if mini, err = cols[name].Window(r); err != nil {
					return nil, err
				}
			}
			minis[i] = mini
		}

		if q.Aggregating() {
			// Aggregate directly on compressed data; no tuples constructed.
			operators.AggregateCompressedChunk(agg, minis[0], minis[1], desc)
			continue
		}
		ds3 := datasource.DS3{}
		for i := range matCols {
			valBufs[i] = ds3.ValuesFromMini(minis[i], desc, valBufs[i][:0])
		}
		if err := merger.MergeChunk(valBufs...); err != nil {
			return nil, err
		}
	}

	if q.Aggregating() {
		res := agg.Emit(q.outputNames()[0], q.outputNames()[1])
		stats.Groups = agg.Groups()
		stats.TuplesConstructed += int64(res.NumRows())
		return res, nil
	}
	stats.TuplesConstructed += merger.TuplesConstructed
	return merger.Result(), nil
}
