package core

import (
	"matstore/internal/datasource"
	"matstore/internal/encoding"
	"matstore/internal/multicol"
	"matstore/internal/operators"
	"matstore/internal/positions"
	"matstore/internal/storage"
)

// lmPlan drives both late-materialization strategies. With pipelined=false
// (LM-parallel, Figure 8(b)) every predicate column is scanned by a DS1 and
// the position lists are ANDed. With pipelined=true (LM-pipelined, Figure
// 8(a)) the first column's positions restrict where later predicates are
// even evaluated, the AND disappears, and chunks whose position set runs
// dry skip the remaining columns' blocks entirely.
type lmPlan struct {
	opt       Options
	q         SelectQuery
	pipelined bool
	cols      map[string]*storage.Column
	// matCols are the columns needed at materialization time.
	matCols []string
}

func (e *Executor) compileLM(p *storage.Projection, q SelectQuery, pipelined bool) (morselPlan, error) {
	cols := make(map[string]*storage.Column)
	for _, name := range q.referenced() {
		c, err := p.Column(name)
		if err != nil {
			return nil, err
		}
		cols[name] = c
	}
	var matCols []string
	if q.Aggregating() {
		matCols = []string{q.GroupBy, q.AggCol}
	} else {
		matCols = q.Output
	}
	return &lmPlan{opt: e.Opt, q: q, pipelined: pipelined, cols: cols, matCols: matCols}, nil
}

func (pl *lmPlan) runMorsel(r positions.Range, pt *partial) error {
	var agg *operators.Aggregator
	var merger *operators.Merger
	if pl.q.Aggregating() {
		agg = operators.NewAggregator(pl.q.Agg)
		pt.agg = agg
	} else {
		// The morsel's MERGE accumulates the partial's result (adopted as
		// pt.res below); per-morsel results concatenate in block order at
		// the top.
		merger = operators.NewMerger(pl.q.outputNames()...)
	}

	ch := datasource.NewChunker(r, pl.opt.chunkSize())
	valBufs := make([][]int64, len(pl.matCols))
	for ci := 0; ci < ch.NumChunks(); ci++ {
		cr := ch.Chunk(ci)
		mc := multicol.New(cr)
		var desc positions.Set

		if pl.pipelined {
			skipped := false
			for i, f := range pl.q.Filters {
				if i > 0 && desc.Count() == 0 {
					// Remaining predicate columns' blocks are never read.
					pt.stats.ChunksSkipped++
					skipped = true
					break
				}
				if i == 0 {
					// The leading scan is a DS1 (optionally index-derived).
					ds1 := datasource.DS1{
						Col: pl.cols[f.Col], Pred: f.Pred,
						ForceBitmap:  pl.opt.ForceBitmapPositions,
						UseZoneIndex: pl.opt.UseZoneIndex,
					}
					ps, mini, err := ds1.ScanChunk(cr)
					if err != nil {
						return err
					}
					if mini != nil {
						mc.Attach(f.Col, mini)
					}
					desc = ps
					continue
				}
				// Later predicates narrow the surviving positions in place
				// (DS3+predicate), which requires the column's values.
				mini, err := pl.cols[f.Col].Window(cr)
				if err != nil {
					return err
				}
				mc.Attach(f.Col, mini)
				desc = mini.FilterAt(desc, f.Pred)
			}
			if skipped {
				continue
			}
		} else {
			sets := make([]positions.Set, 0, len(pl.q.Filters))
			for _, f := range pl.q.Filters {
				ds1 := datasource.DS1{
					Col: pl.cols[f.Col], Pred: f.Pred,
					ForceBitmap:  pl.opt.ForceBitmapPositions,
					UseZoneIndex: pl.opt.UseZoneIndex,
				}
				ps, mini, err := ds1.ScanChunk(cr)
				if err != nil {
					return err
				}
				if mini != nil {
					mc.Attach(f.Col, mini)
				}
				sets = append(sets, ps)
			}
			// The AND operator of Section 3.3 / multi-column AND of 3.6.
			desc = positions.AndAll(sets...)
		}

		if len(pl.q.Filters) == 0 {
			desc = positions.NewRanges(cr)
		}
		if desc == nil || desc.Count() == 0 {
			continue
		}
		mc.SetDescriptor(desc)
		pt.matched = append(pt.matched, desc)

		if pl.q.Aggregating() {
			// Aggregate directly on compressed data; no tuples constructed.
			// The aggregator consumes whole mini-columns, so a missing mini
			// is re-windowed rather than gathered.
			minis := make([]encoding.MiniColumn, len(pl.matCols))
			for i, name := range pl.matCols {
				mini, ok := mc.Mini(name)
				if !ok || pl.opt.DisableMultiColumn {
					var err error
					if mini, err = pl.cols[name].Window(cr); err != nil {
						return err
					}
				}
				minis[i] = mini
			}
			operators.AggregateCompressedChunk(agg, minis[0], minis[1], desc)
			continue
		}

		// Materialization: DS3 per needed column — from the multi-column's
		// mini-columns when available (zero re-access); otherwise the
		// batched block-pinned gather touches only the blocks holding
		// surviving positions instead of re-windowing the whole chunk.
		for i, name := range pl.matCols {
			if mini, ok := mc.Mini(name); ok && !pl.opt.DisableMultiColumn {
				valBufs[i] = datasource.DS3{}.ValuesFromMini(mini, desc, valBufs[i][:0])
				continue
			}
			var err error
			ds3 := datasource.DS3{Col: pl.cols[name]}
			if valBufs[i], err = ds3.ValuesGather(desc, valBufs[i][:0]); err != nil {
				return err
			}
		}
		if err := merger.MergeChunk(valBufs...); err != nil {
			return err
		}
	}

	if !pl.q.Aggregating() {
		pt.stats.TuplesConstructed += merger.TuplesConstructed
		pt.res = merger.Result()
	}
	return nil
}
