// Package datasource implements the four data-source operator cases of
// Section 3.2 of the paper, as chunk-at-a-time operators over stored
// columns:
//
//	DS1 — scan a column, apply a predicate, produce positions.
//	DS2 — scan a column, apply a predicate, produce (position, value) pairs.
//	DS3 — given a position list, produce the corresponding values, either
//	      from an already-materialized mini-column (the multi-column
//	      optimization, zero re-access I/O) or by re-accessing the column.
//	DS4 — given early-materialized tuples, jump to each position, apply a
//	      predicate, and widen the tuples that pass.
//
// All data sources work one chunk (horizontal partition) at a time; the
// executor in internal/core drives them across the position space.
package datasource

import (
	"fmt"

	"matstore/internal/encoding"
	"matstore/internal/positions"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

// DefaultChunkSize is the default horizontal-partition width in positions.
// It must be a multiple of 64 so bit-vector windows and bitmap descriptors
// stay word-aligned.
const DefaultChunkSize = 1 << 16

// Chunker enumerates the aligned chunks of a column extent.
type Chunker struct {
	extent positions.Range
	size   int64
}

// NewChunker partitions extent into chunks of the given size (which must be
// a positive multiple of 64).
func NewChunker(extent positions.Range, size int64) Chunker {
	if size <= 0 || size%64 != 0 {
		panic(fmt.Sprintf("datasource: chunk size %d must be a positive multiple of 64", size))
	}
	return Chunker{extent: extent, size: size}
}

// NumChunks returns the number of chunks.
func (c Chunker) NumChunks() int {
	if c.extent.Empty() {
		return 0
	}
	return int((c.extent.Len() + c.size - 1) / c.size)
}

// Chunk returns the position range of chunk i.
func (c Chunker) Chunk(i int) positions.Range {
	start := c.extent.Start + int64(i)*c.size
	end := start + c.size
	if end > c.extent.End {
		end = c.extent.End
	}
	return positions.Range{Start: start, End: end}
}

// DS1 scans a column and produces, per chunk, the positions whose values
// satisfy the predicate conjunction, along with the chunk's mini-column (so
// the caller can attach it to a multi-column for later value extraction).
type DS1 struct {
	Col  *storage.Column
	Pred pred.Predicate
	// Preds, when non-empty, is a fused predicate conjunction replacing Pred:
	// all k predicates are evaluated in a single pass over each loaded chunk
	// (pred.CompileFused) instead of k scans ANDed downstream. Callers should
	// pass the pred.SimplifyConj form so interval conjunctions collapse to
	// one predicate and stay eligible for the zone-index fast path.
	Preds []pred.Predicate
	// ForceBitmap requests bitmap position output regardless of shape (the
	// position-representation ablation).
	ForceBitmap bool
	// UseZoneIndex derives positions from the block index's min/max zones
	// where possible (Section 2.1.1), reading only straddling blocks. When
	// the fast path applies, no mini-column is produced (the values were
	// never accessed) and the returned mini-column is nil.
	UseZoneIndex bool
	// fused caches the compiled k-ary conjunction kernel (CompilePreds).
	fused pred.Kernel
}

// CompilePreds caches the fused conjunction kernel so per-chunk ScanChunk
// calls skip recompilation. Call it once per morsel after constructing the
// DS1; a nil receiver state recompiles lazily.
func (ds *DS1) CompilePreds() {
	if len(ds.Preds) > 1 {
		ds.fused = pred.CompileFused(ds.Preds)
	}
}

// pred1 returns the single effective predicate and true when the data source
// is not running a k-ary fused conjunction.
func (ds *DS1) pred1() (pred.Predicate, bool) {
	switch len(ds.Preds) {
	case 0:
		return ds.Pred, true
	case 1:
		return ds.Preds[0], true
	default:
		return pred.Predicate{}, false
	}
}

// ScanChunk reads the chunk window and applies the predicate(s). The
// returned mini-column is nil when the zone-index fast path resolved the
// predicate without materializing the window.
func (ds *DS1) ScanChunk(r positions.Range) (positions.Set, encoding.MiniColumn, error) {
	if ds.UseZoneIndex {
		if p, single := ds.pred1(); single {
			ps, used, err := ds.Col.ZonePositions(r, p)
			if err != nil {
				return nil, nil, err
			}
			if used {
				return ds.forceBitmap(ps, r.Intersect(ds.Col.Extent())), nil, nil
			}
		} else if ps, used, err := ds.zoneFusedScan(r); err != nil {
			return nil, nil, err
		} else if used {
			return ds.forceBitmap(ps, r.Intersect(ds.Col.Extent())), nil, nil
		}
	}
	mc, err := ds.Col.Window(r)
	if err != nil {
		return nil, nil, err
	}
	var ps positions.Set
	if p, single := ds.pred1(); single {
		ps = mc.Filter(p)
	} else {
		k := ds.fused
		if k == nil {
			k = pred.CompileFused(ds.Preds)
		}
		ps = encoding.FilterFusedKernel(mc, ds.Preds, k)
	}
	return ds.forceBitmap(ps, mc.Covering()), mc, nil
}

// zoneFusedScan is the zone-index path for a fused conjunction of one
// interval predicate plus Ne residue (the only multi-predicate shape
// pred.SimplifyConj leaves): the interval part derives positions from the
// block zones exactly as the single-predicate path does, and when the
// survivors are sparse the residue is applied by a batched block-pinned
// gather of just their values — so fusion keeps the zone index's block
// skipping instead of regressing to a full window scan. Dense survivor
// sets fall back to the window + fused-kernel path (used=false), which is
// cheaper than gathering most of the chunk.
func (ds *DS1) zoneFusedScan(r positions.Range) (positions.Set, bool, error) {
	if _, _, ok := ds.Preds[0].Interval(); !ok {
		return nil, false, nil // pure-Ne conjunction: zones carry no information
	}
	for _, p := range ds.Preds[1:] {
		if p.Op != pred.Ne {
			return nil, false, nil
		}
	}
	ps, used, err := ds.Col.ZonePositions(r, ds.Preds[0])
	if err != nil || !used {
		return nil, used, err
	}
	n := ps.Count()
	window := r.Intersect(ds.Col.Extent())
	if n == 0 {
		return positions.Empty{}, true, nil
	}
	if n*4 > window.Len() {
		return nil, false, nil // dense: let the fused window scan handle it
	}
	vals, err := ds.Col.GatherAt(ps, make([]int64, 0, n))
	if err != nil {
		return nil, false, err
	}
	match := pred.CompileFusedMatcher(ds.Preds[1:])
	b := positions.NewBuilder(window)
	i := 0
	it := ps.Runs()
	for {
		run, ok := it.Next()
		if !ok {
			break
		}
		runStart := int64(-1)
		for p := run.Start; p < run.End; p++ {
			if match(vals[i]) {
				if runStart < 0 {
					runStart = p
				}
			} else if runStart >= 0 {
				b.AddRange(positions.Range{Start: runStart, End: p})
				runStart = -1
			}
			i++
		}
		if runStart >= 0 {
			b.AddRange(positions.Range{Start: runStart, End: run.End})
		}
	}
	return b.Build(), true, nil
}

// forceBitmap applies the position-representation ablation to a scan's
// output set.
func (ds *DS1) forceBitmap(ps positions.Set, extent positions.Range) positions.Set {
	if ds.ForceBitmap && ps.Kind() != positions.KindBitmap && ps.Kind() != positions.KindEmpty {
		return positions.ToBitmap(ps, extent)
	}
	return ps
}

// DS2 scans a column and produces, per chunk, early-materialized
// (position, value) pairs for the values satisfying the predicate. This is
// the EM leaf: values are glued to positions immediately (the TIC_TUP cost
// in the model's Case 2).
type DS2 struct {
	Col  *storage.Column
	Pred pred.Predicate
	// Preds, when non-empty, is a fused predicate conjunction replacing Pred
	// (see DS1.Preds): one pass over the chunk evaluates all k predicates.
	Preds []pred.Predicate
	// fused caches the compiled conjunction kernel (CompilePreds).
	fused pred.Kernel
}

// CompilePreds caches the fused conjunction kernel so per-chunk calls skip
// recompilation. Call it once per morsel after constructing the DS2.
func (ds *DS2) CompilePreds() {
	if len(ds.Preds) > 1 {
		ds.fused = pred.CompileFused(ds.Preds)
	}
}

// ScanChunk returns a batch with one column named after the stored column.
func (ds *DS2) ScanChunk(r positions.Range, name string) (*rows.Batch, error) {
	mc, err := ds.Col.Window(r)
	if err != nil {
		return nil, err
	}
	var ps positions.Set
	switch len(ds.Preds) {
	case 0:
		ps = mc.Filter(ds.Pred)
	case 1:
		ps = mc.Filter(ds.Preds[0])
	default:
		k := ds.fused
		if k == nil {
			k = pred.CompileFused(ds.Preds)
		}
		ps = encoding.FilterFusedKernel(mc, ds.Preds, k)
	}
	batch := rows.NewBatch(name)
	it := ps.Runs()
	scratch := positions.Ranges{{}}
	for {
		run, ok := it.Next()
		if !ok {
			return batch, nil
		}
		scratch[0] = run
		batch.Cols[0] = mc.Extract(batch.Cols[0], scratch)
		for p := run.Start; p < run.End; p++ {
			batch.Pos = append(batch.Pos, p)
		}
	}
}

// DS3 produces values for a list of positions (Case 3). With the
// multi-column optimization the values come from an in-memory mini-column
// and the I/O cost is zero; without it the column is re-accessed through
// the buffer pool (warm, but paying the CPU cost of re-scanning — the LM
// re-access penalty of Section 2.2).
type DS3 struct {
	Col *storage.Column
}

// ValuesFromMini extracts the values at ps from an attached mini-column.
func (DS3) ValuesFromMini(mc encoding.MiniColumn, ps positions.Set, dst []int64) []int64 {
	return mc.Extract(dst, ps)
}

// ValuesReaccess re-reads the chunk window from the column and extracts the
// values at ps. It is the retained scalar reference for the re-access path;
// query execution uses ValuesGather.
func (ds DS3) ValuesReaccess(r positions.Range, ps positions.Set, dst []int64) ([]int64, error) {
	mc, err := ds.Col.Window(r)
	if err != nil {
		return nil, err
	}
	return mc.Extract(dst, ps), nil
}

// ValuesGather re-accesses the stored column through the batched
// block-pinned gather: only the blocks containing surviving positions are
// touched (a window re-read decodes every block overlapping the chunk), each
// pinned once with a tight per-encoding copy loop.
func (ds DS3) ValuesGather(ps positions.Set, dst []int64) ([]int64, error) {
	return ds.Col.GatherAt(ps, dst)
}

// DS4 widens early-materialized tuples (Case 4): for each input tuple it
// jumps to the tuple's position in this column, applies the predicate, and
// emits the input tuple extended with this column's value when it passes.
type DS4 struct {
	Col  *storage.Column
	Pred pred.Predicate
	// Preds, when non-empty, is a fused predicate conjunction replacing Pred:
	// the compiled matcher evaluates all k predicates per gathered value.
	Preds []pred.Predicate
	// match is the cached compiled form of the predicate(s) (see CompilePred).
	match pred.Matcher
}

// ExtendChunk processes one input batch against the chunk's mini-column.
// The returned batch carries the input attributes plus colName. It is the
// retained scalar reference path (one ValueAt jump and one Predicate.Match
// dispatch per tuple); query execution uses ExtendChunkBatched.
func (ds *DS4) ExtendChunk(mc encoding.MiniColumn, in *rows.Batch, colName string) *rows.Batch {
	out := rows.NewBatch(append(append([]string{}, in.Names...), colName)...)
	last := len(out.Cols) - 1
	for i := 0; i < in.Len(); i++ {
		pos := in.Pos[i]
		v := mc.ValueAt(pos)
		if !ds.Pred.Match(v) {
			continue
		}
		out.Pos = append(out.Pos, pos)
		for c := range in.Cols {
			out.Cols[c] = append(out.Cols[c], in.Cols[c][i])
		}
		out.Cols[last] = append(out.Cols[last], v)
	}
	return out
}

// ExtendChunkBatched widens the input tuples with one batched block-pinned
// gather of this column's values at the batch's positions (which are
// ascending and distinct within a chunk), then filters with the compiled
// predicate — replacing the per-tuple position jump (a block search plus a
// buffer-pool lock per tuple) and the per-value predicate dispatch. valBuf
// is a scratch slice recycled across chunks; the updated scratch is
// returned alongside the widened batch.
func (ds *DS4) ExtendChunkBatched(in *rows.Batch, colName string, valBuf []int64) (*rows.Batch, []int64, error) {
	out := rows.NewBatch(append(append([]string{}, in.Names...), colName)...)
	if in.Len() == 0 {
		return out, valBuf, nil
	}
	valBuf, err := ds.Col.GatherAt(positions.List(in.Pos), valBuf[:0])
	if err != nil {
		return nil, valBuf, err
	}
	match := ds.match
	if match == nil {
		match = ds.compileMatcher()
	}
	last := len(out.Cols) - 1
	for i, v := range valBuf {
		if !match(v) {
			continue
		}
		out.Pos = append(out.Pos, in.Pos[i])
		for c := range in.Cols {
			out.Cols[c] = append(out.Cols[c], in.Cols[c][i])
		}
		out.Cols[last] = append(out.Cols[last], v)
	}
	return out, valBuf, nil
}

// CompilePred caches the compiled form of the predicate(s) so per-chunk
// calls skip recompilation. Call it once after constructing the DS4.
func (ds *DS4) CompilePred() { ds.match = ds.compileMatcher() }

func (ds *DS4) compileMatcher() pred.Matcher {
	if len(ds.Preds) > 0 {
		return pred.CompileFusedMatcher(ds.Preds)
	}
	return pred.CompileMatcher(ds.Pred)
}
