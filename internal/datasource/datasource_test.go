package datasource

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/positions"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

func writeColumn(t *testing.T, enc encoding.Kind, vals []int64) (*storage.Column, *buffer.Pool) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.col")
	w, err := storage.NewColumnWriter(path, enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := w.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(0)
	c, err := storage.Open(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, pool
}

func sortedVals(n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i / 10)
	}
	return vals
}

func TestChunker(t *testing.T) {
	ch := NewChunker(positions.Range{Start: 0, End: 1000}, 256)
	if ch.NumChunks() != 4 {
		t.Fatalf("NumChunks = %d", ch.NumChunks())
	}
	if ch.Chunk(0) != (positions.Range{Start: 0, End: 256}) {
		t.Errorf("Chunk(0) = %v", ch.Chunk(0))
	}
	if ch.Chunk(3) != (positions.Range{Start: 768, End: 1000}) {
		t.Errorf("Chunk(3) = %v (must clip at extent)", ch.Chunk(3))
	}
	if NewChunker(positions.Range{}, 64).NumChunks() != 0 {
		t.Error("empty extent should have no chunks")
	}
}

func TestChunkerAlignmentPanics(t *testing.T) {
	for _, size := range []int64{0, -64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("chunk size %d accepted", size)
				}
			}()
			NewChunker(positions.Range{Start: 0, End: 10}, size)
		}()
	}
}

func TestDS1ScanChunk(t *testing.T) {
	vals := sortedVals(1000)
	col, _ := writeColumn(t, encoding.RLE, vals)
	ds := DS1{Col: col, Pred: pred.LessThan(5)} // values 0..4: positions 0..49
	ps, mc, err := ds.ScanChunk(positions.Range{Start: 0, End: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !positions.Equal(ps, positions.NewRanges(positions.Range{Start: 0, End: 50})) {
		t.Errorf("positions = %v", positions.Slice(ps))
	}
	if mc.Covering() != (positions.Range{Start: 0, End: 512}) {
		t.Errorf("mini covers %v", mc.Covering())
	}
}

func TestDS1ForceBitmap(t *testing.T) {
	col, _ := writeColumn(t, encoding.RLE, sortedVals(1000))
	ds := DS1{Col: col, Pred: pred.LessThan(5), ForceBitmap: true}
	ps, _, err := ds.ScanChunk(positions.Range{Start: 0, End: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Kind() != positions.KindBitmap {
		t.Errorf("kind = %v, want bitmap", ps.Kind())
	}
	if ps.Count() != 50 {
		t.Errorf("count = %d", ps.Count())
	}
}

func TestDS2ProducesPosValPairs(t *testing.T) {
	vals := []int64{9, 1, 8, 2, 7, 3}
	col, _ := writeColumn(t, encoding.Plain, vals)
	ds := DS2{Col: col, Pred: pred.LessThan(5)}
	batch, err := ds.ScanChunk(positions.Range{Start: 0, End: 64}, "v")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch.Pos, []int64{1, 3, 5}) {
		t.Errorf("Pos = %v", batch.Pos)
	}
	v, _ := batch.Col("v")
	if !reflect.DeepEqual(v, []int64{1, 2, 3}) {
		t.Errorf("vals = %v", v)
	}
}

func TestDS3FromMiniAndReaccessAgree(t *testing.T) {
	vals := sortedVals(2000)
	col, pool := writeColumn(t, encoding.RLE, vals)
	r := positions.Range{Start: 0, End: 1024}
	mc, err := col.Window(r)
	if err != nil {
		t.Fatal(err)
	}
	ps := positions.NewRanges(positions.Range{Start: 100, End: 150}, positions.Range{Start: 900, End: 910})
	ds := DS3{Col: col}
	fromMini := ds.ValuesFromMini(mc, ps, nil)
	pool.ResetStats()
	reaccess, err := ds.ValuesReaccess(r, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromMini, reaccess) {
		t.Error("mini and re-access extraction disagree")
	}
	// Re-access must be served by the buffer pool (no disk reads).
	if s := pool.Stats(); s.Reads != 0 || s.Hits == 0 {
		t.Errorf("re-access stats = %+v, want pure hits", s)
	}
	if len(fromMini) != 60 {
		t.Errorf("extracted %d values", len(fromMini))
	}
}

func TestDS4ExtendChunk(t *testing.T) {
	vals := []int64{10, 20, 30, 40, 50}
	col, _ := writeColumn(t, encoding.Plain, vals)
	mc, err := col.Window(col.Extent())
	if err != nil {
		t.Fatal(err)
	}
	in := rows.NewBatch("a")
	in.Append(0, 100)
	in.Append(2, 300)
	in.Append(4, 500)
	ds := DS4{Col: col, Pred: pred.LessThan(50)} // drops position 4 (value 50)
	out := ds.ExtendChunk(mc, in, "b")
	if !reflect.DeepEqual(out.Pos, []int64{0, 2}) {
		t.Errorf("Pos = %v", out.Pos)
	}
	a, _ := out.Col("a")
	b, _ := out.Col("b")
	if !reflect.DeepEqual(a, []int64{100, 300}) || !reflect.DeepEqual(b, []int64{10, 30}) {
		t.Errorf("cols = %v / %v", a, b)
	}
	if !reflect.DeepEqual(out.Names, []string{"a", "b"}) {
		t.Errorf("Names = %v", out.Names)
	}
}

func TestDS4EmptyInput(t *testing.T) {
	col, _ := writeColumn(t, encoding.Plain, []int64{1, 2, 3})
	mc, _ := col.Window(col.Extent())
	ds := DS4{Col: col, Pred: pred.MatchAll}
	out := ds.ExtendChunk(mc, rows.NewBatch("a"), "b")
	if out.Len() != 0 {
		t.Errorf("Len = %d", out.Len())
	}
}

// TestDS1AcrossChunksCoversColumn verifies chunked DS1 output over every
// encoding equals a whole-column filter.
func TestDS1AcrossChunksCoversColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(rng.Intn(7))
	}
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		col, _ := writeColumn(t, enc, vals)
		ds := DS1{Col: col, Pred: pred.Equals(3)}
		ch := NewChunker(col.Extent(), 512)
		var got []int64
		for i := 0; i < ch.NumChunks(); i++ {
			ps, _, err := ds.ScanChunk(ch.Chunk(i))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, positions.Slice(ps)...)
		}
		var want []int64
		for i, v := range vals {
			if v == 3 {
				want = append(want, int64(i))
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: chunked DS1 differs from naive (%d vs %d matches)", enc, len(got), len(want))
		}
	}
}
