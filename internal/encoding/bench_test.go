package encoding

import (
	"math/rand"
	"testing"

	"matstore/internal/positions"
	"matstore/internal/pred"
)

// Micro-benchmarks for the per-encoding mini-column primitives that
// dominate query CPU.

func benchVals(n, distinct int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i * distinct / n) // sorted, runs of n/distinct
	}
	return vals
}

// benchValsRandom is unsorted data with the given distinct count: the
// branch-unfriendly case for per-value predicate evaluation.
func benchValsRandom(n, distinct int) []int64 {
	vals := make([]int64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = rng.Int63n(int64(distinct))
	}
	return vals
}

// BenchmarkFilterPlain measures the compiled word-at-a-time scan kernel;
// BenchmarkFilterPlainScalar is the retained per-value reference path the
// kernel must beat (PR 2's acceptance target: ≥ 2x on ns/op).
func BenchmarkFilterPlain(b *testing.B) {
	m := PlainMiniFromValues(0, benchVals(1<<16, 7))
	p := pred.LessThan(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Filter(p).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterPlainScalar(b *testing.B) {
	m := PlainMiniFromValues(0, benchVals(1<<16, 7))
	p := pred.LessThan(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.filterScalar(p).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterPlainRandom(b *testing.B) {
	m := PlainMiniFromValues(0, benchValsRandom(1<<16, 7))
	p := pred.LessThan(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Filter(p).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterPlainRandomScalar(b *testing.B) {
	m := PlainMiniFromValues(0, benchValsRandom(1<<16, 7))
	p := pred.LessThan(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.filterScalar(p).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterRLE(b *testing.B) {
	m := RLEMiniFromValues(0, benchVals(1<<16, 7))
	p := pred.LessThan(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Filter(p).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterBV(b *testing.B) {
	m := BVMiniFromValues(0, benchVals(1<<16, 7))
	p := pred.LessThan(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Filter(p).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func benchExtract(b *testing.B, m MiniColumn) {
	b.Helper()
	ps := positions.NewRanges(
		positions.Range{Start: 1000, End: 20000},
		positions.Range{Start: 30000, End: 50000},
	)
	var dst []int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = m.Extract(dst[:0], ps)
		if len(dst) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkExtractPlain(b *testing.B) {
	benchExtract(b, PlainMiniFromValues(0, benchVals(1<<16, 7)))
}
func BenchmarkExtractRLE(b *testing.B) { benchExtract(b, RLEMiniFromValues(0, benchVals(1<<16, 7))) }
func BenchmarkExtractBV(b *testing.B)  { benchExtract(b, BVMiniFromValues(0, benchVals(1<<16, 7))) }

func benchSumRange(b *testing.B, m MiniColumn) {
	b.Helper()
	r := positions.Range{Start: 100, End: 60000}
	b.ReportAllocs()
	b.ResetTimer()
	var acc int64
	for i := 0; i < b.N; i++ {
		acc += SumRange(m, r)
	}
	_ = acc
}

func BenchmarkSumRangePlain(b *testing.B) {
	benchSumRange(b, PlainMiniFromValues(0, benchVals(1<<16, 7)))
}
func BenchmarkSumRangeRLE(b *testing.B) { benchSumRange(b, RLEMiniFromValues(0, benchVals(1<<16, 7))) }
func BenchmarkSumRangeBV(b *testing.B)  { benchSumRange(b, BVMiniFromValues(0, benchVals(1<<16, 7))) }

func BenchmarkDecodePlainBlock(b *testing.B) {
	buf := make([]byte, BlockSize)
	vals := benchVals(PlainBlockCap, 100)
	EncodePlainBlock(buf, 0, vals)
	b.SetBytes(int64(8 * PlainBlockCap))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePlainBlock(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRLEBlock(b *testing.B) {
	buf := make([]byte, BlockSize)
	ts := make([]Triple, RLEBlockCap)
	pos := int64(0)
	for i := range ts {
		ts[i] = Triple{Value: int64(i % 7), Start: pos, Len: 10}
		pos += 10
	}
	EncodeRLEBlock(buf, ts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRLEBlock(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Fused multi-predicate scan benchmarks: FilterFused evaluates k predicates
// over one column in a single pass; the unfused reference runs k Filter
// scans and ANDs the resulting position sets. The interval pair collapses
// to one compiled kernel (the planner's common case); the +Ne variant keeps
// a genuine 2-ary fused kernel.
func BenchmarkFilterFused2(b *testing.B) {
	m := PlainMiniFromValues(0, benchValsRandom(1<<16, 1000))
	ps := []pred.Predicate{pred.AtLeast(100), pred.LessThan(900)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if FilterFused(m, ps).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterUnfused2(b *testing.B) {
	m := PlainMiniFromValues(0, benchValsRandom(1<<16, 1000))
	ps := []pred.Predicate{pred.AtLeast(100), pred.LessThan(900)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := positions.And(m.Filter(ps[0]), m.Filter(ps[1]))
		if out.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterFused3Ne(b *testing.B) {
	m := PlainMiniFromValues(0, benchValsRandom(1<<16, 1000))
	ps := []pred.Predicate{pred.AtLeast(100), pred.LessThan(900), pred.NotEquals(500)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if FilterFused(m, ps).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterUnfused3Ne(b *testing.B) {
	m := PlainMiniFromValues(0, benchValsRandom(1<<16, 1000))
	ps := []pred.Predicate{pred.AtLeast(100), pred.LessThan(900), pred.NotEquals(500)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m.Filter(ps[0])
		for _, p := range ps[1:] {
			out = positions.And(out, m.Filter(p))
		}
		if out.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

// Adaptive FilterAt benchmarks: the dense regime (a near-full candidate set,
// where the compiled kernel path wins) and the sparse regime (a few
// candidates, where the run-builder path wins), both driven through the
// adaptive policy as the executor drives them.
func BenchmarkFilterAtAdaptiveDense(b *testing.B) {
	m := PlainMiniFromValues(0, benchValsRandom(1<<16, 1000))
	cand := positions.NewRanges(positions.Range{Start: 0, End: 1 << 16})
	p := pred.LessThan(500)
	var pol AdaptiveFilterAt
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pol.FilterAt(m, cand, p).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFilterAtAdaptiveSparse(b *testing.B) {
	m := PlainMiniFromValues(0, benchValsRandom(1<<16, 1000))
	var cand positions.List
	for p := int64(0); p < 1<<16; p += 1024 {
		cand = append(cand, p)
	}
	p := pred.LessThan(999)
	var pol AdaptiveFilterAt
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pol.FilterAt(m, cand, p).Count() == 0 {
			b.Fatal("empty")
		}
	}
}
