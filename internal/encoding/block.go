package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"

	"matstore/internal/positions"
)

// On-disk block layout. Every data block is exactly BlockSize bytes (the
// paper's 64KB blocks), beginning with a fixed 32-byte header:
//
//	off  0: kind      uint8
//	off  1: flags     uint8  (unused, zero)
//	off  2: reserved  uint16
//	off  4: count     uint32 — #values (plain), #triples (RLE), #bits (BV)
//	off  8: start     int64  — first position (plain/RLE) or first bit (BV)
//	off 16: value     int64  — the distinct value (BV only)
//	off 24: checksum  uint64 — FNV-1a of the payload, for corruption detection
//
// The payload occupies the remaining BlockSize-32 bytes.
const (
	// BlockSize is the on-disk block size: 64KB, as in C-Store.
	BlockSize = 64 * 1024
	// BlockHeaderSize is the fixed per-block header length.
	BlockHeaderSize = 32
	// BlockPayload is the usable payload per block.
	BlockPayload = BlockSize - BlockHeaderSize

	// PlainBlockCap is the number of 8-byte values per plain block.
	PlainBlockCap = BlockPayload / 8 // 8188
	// RLEBlockCap is the number of 24-byte triples per RLE block.
	RLEBlockCap = BlockPayload / 24 // 2729
	// BVBlockBits is the number of bits per bit-vector block. It is a
	// multiple of 64 (8188 words), so any 64-aligned chunk boundary falls on
	// a word boundary inside a block.
	BVBlockBits = (BlockPayload / 8) * 64 // 523,... = 8188*64
)

// ErrCorruptBlock is returned when a block fails structural validation or
// its checksum does not match.
var ErrCorruptBlock = errors.New("encoding: corrupt block")

// PlainBlock is a decoded uncompressed block.
type PlainBlock struct {
	Start int64
	Vals  []int64
}

// Cover returns the positions spanned by the block.
func (b *PlainBlock) Cover() positions.Range {
	return positions.Range{Start: b.Start, End: b.Start + int64(len(b.Vals))}
}

// RLEBlock is a decoded run-length-encoded block.
type RLEBlock struct {
	Triples []Triple
}

// Cover returns the positions spanned by the block's runs.
func (b *RLEBlock) Cover() positions.Range {
	if len(b.Triples) == 0 {
		return positions.Range{}
	}
	return positions.Range{Start: b.Triples[0].Start, End: b.Triples[len(b.Triples)-1].End()}
}

// BVBlock is a decoded bit-vector block: a window of one value's bit-string.
type BVBlock struct {
	Value    int64
	StartBit int64
	NBits    int64
	Words    []uint64
}

// Cover returns the bit positions spanned by the block.
func (b *BVBlock) Cover() positions.Range {
	return positions.Range{Start: b.StartBit, End: b.StartBit + b.NBits}
}

// fnv1a is a small stdlib-free checksum (FNV-1a 64) over payload bytes.
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

func putHeader(buf []byte, kind Kind, count uint32, start, value int64) {
	buf[0] = byte(kind)
	buf[1] = 0
	binary.LittleEndian.PutUint16(buf[2:], 0)
	binary.LittleEndian.PutUint32(buf[4:], count)
	binary.LittleEndian.PutUint64(buf[8:], uint64(start))
	binary.LittleEndian.PutUint64(buf[16:], uint64(value))
}

func sealBlock(buf []byte, payloadLen int) {
	binary.LittleEndian.PutUint64(buf[24:], fnv1a(buf[BlockHeaderSize:BlockHeaderSize+payloadLen]))
	// Zero any slack so blocks are deterministic on disk.
	for i := BlockHeaderSize + payloadLen; i < BlockSize; i++ {
		buf[i] = 0
	}
}

type blockHeader struct {
	kind  Kind
	count uint32
	start int64
	value int64
	sum   uint64
}

func readHeader(buf []byte) (blockHeader, error) {
	if len(buf) < BlockSize {
		return blockHeader{}, fmt.Errorf("%w: short block (%d bytes)", ErrCorruptBlock, len(buf))
	}
	return blockHeader{
		kind:  Kind(buf[0]),
		count: binary.LittleEndian.Uint32(buf[4:]),
		start: int64(binary.LittleEndian.Uint64(buf[8:])),
		value: int64(binary.LittleEndian.Uint64(buf[16:])),
		sum:   binary.LittleEndian.Uint64(buf[24:]),
	}, nil
}

// EncodePlainBlock writes up to PlainBlockCap values from vals into buf
// (which must be BlockSize bytes) and returns the number consumed.
func EncodePlainBlock(buf []byte, startPos int64, vals []int64) int {
	n := len(vals)
	if n > PlainBlockCap {
		n = PlainBlockCap
	}
	putHeader(buf, Plain, uint32(n), startPos, 0)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[BlockHeaderSize+8*i:], uint64(vals[i]))
	}
	sealBlock(buf, 8*n)
	return n
}

// DecodePlainBlock parses a plain block, verifying its checksum.
func DecodePlainBlock(buf []byte) (*PlainBlock, error) {
	h, err := readHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.kind != Plain {
		return nil, fmt.Errorf("%w: kind %v, want plain", ErrCorruptBlock, h.kind)
	}
	n := int(h.count)
	if n > PlainBlockCap {
		return nil, fmt.Errorf("%w: plain count %d exceeds capacity", ErrCorruptBlock, n)
	}
	if fnv1a(buf[BlockHeaderSize:BlockHeaderSize+8*n]) != h.sum {
		return nil, fmt.Errorf("%w: plain checksum mismatch", ErrCorruptBlock)
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(buf[BlockHeaderSize+8*i:]))
	}
	return &PlainBlock{Start: h.start, Vals: vals}, nil
}

// EncodeRLEBlock writes up to RLEBlockCap triples into buf and returns the
// number consumed.
func EncodeRLEBlock(buf []byte, triples []Triple) int {
	n := len(triples)
	if n > RLEBlockCap {
		n = RLEBlockCap
	}
	start := int64(0)
	if n > 0 {
		start = triples[0].Start
	}
	putHeader(buf, RLE, uint32(n), start, 0)
	for i := 0; i < n; i++ {
		off := BlockHeaderSize + 24*i
		binary.LittleEndian.PutUint64(buf[off:], uint64(triples[i].Value))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(triples[i].Start))
		binary.LittleEndian.PutUint64(buf[off+16:], uint64(triples[i].Len))
	}
	sealBlock(buf, 24*n)
	return n
}

// DecodeRLEBlock parses an RLE block, verifying its checksum and that runs
// are sorted and non-overlapping.
func DecodeRLEBlock(buf []byte) (*RLEBlock, error) {
	h, err := readHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.kind != RLE {
		return nil, fmt.Errorf("%w: kind %v, want rle", ErrCorruptBlock, h.kind)
	}
	n := int(h.count)
	if n > RLEBlockCap {
		return nil, fmt.Errorf("%w: rle count %d exceeds capacity", ErrCorruptBlock, n)
	}
	if fnv1a(buf[BlockHeaderSize:BlockHeaderSize+24*n]) != h.sum {
		return nil, fmt.Errorf("%w: rle checksum mismatch", ErrCorruptBlock)
	}
	ts := make([]Triple, n)
	for i := range ts {
		off := BlockHeaderSize + 24*i
		ts[i] = Triple{
			Value: int64(binary.LittleEndian.Uint64(buf[off:])),
			Start: int64(binary.LittleEndian.Uint64(buf[off+8:])),
			Len:   int64(binary.LittleEndian.Uint64(buf[off+16:])),
		}
		if ts[i].Len <= 0 || (i > 0 && ts[i].Start < ts[i-1].End()) {
			return nil, fmt.Errorf("%w: rle runs unsorted or empty", ErrCorruptBlock)
		}
	}
	return &RLEBlock{Triples: ts}, nil
}

// EncodeBVBlock writes up to BVBlockBits bits of value's bit-string,
// starting at bit startBit (word offset startBit/64 of words), into buf.
// nbits is the number of valid bits remaining from startBit; the return
// value is the number of bits consumed.
func EncodeBVBlock(buf []byte, value int64, startBit int64, words []uint64, nbits int64) int64 {
	n := nbits
	if n > BVBlockBits {
		n = BVBlockBits
	}
	putHeader(buf, BitVector, uint32(n), startBit, value)
	nw := (n + 63) / 64
	base := startBit / 64
	for i := int64(0); i < nw; i++ {
		binary.LittleEndian.PutUint64(buf[BlockHeaderSize+8*i:], words[base+i])
	}
	sealBlock(buf, int(8*nw))
	return n
}

// DecodeBVBlock parses a bit-vector block, verifying its checksum.
func DecodeBVBlock(buf []byte) (*BVBlock, error) {
	h, err := readHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.kind != BitVector {
		return nil, fmt.Errorf("%w: kind %v, want bitvector", ErrCorruptBlock, h.kind)
	}
	n := int64(h.count)
	if n > BVBlockBits {
		return nil, fmt.Errorf("%w: bv count %d exceeds capacity", ErrCorruptBlock, n)
	}
	nw := (n + 63) / 64
	if fnv1a(buf[BlockHeaderSize:BlockHeaderSize+8*nw]) != h.sum {
		return nil, fmt.Errorf("%w: bv checksum mismatch", ErrCorruptBlock)
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[BlockHeaderSize+8*i:])
	}
	return &BVBlock{Value: h.value, StartBit: h.start, NBits: n, Words: words}, nil
}

// DecodeBlock decodes any block by dispatching on its header kind.
func DecodeBlock(buf []byte) (any, error) {
	h, err := readHeader(buf)
	if err != nil {
		return nil, err
	}
	switch h.kind {
	case Plain:
		return DecodePlainBlock(buf)
	case RLE:
		return DecodeRLEBlock(buf)
	case BitVector:
		return DecodeBVBlock(buf)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorruptBlock, buf[0])
	}
}
