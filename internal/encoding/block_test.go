package encoding

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestBlockConstants(t *testing.T) {
	if BlockSize != 65536 {
		t.Errorf("BlockSize = %d, want 65536 (the paper's 64KB blocks)", BlockSize)
	}
	if BVBlockBits%64 != 0 {
		t.Errorf("BVBlockBits = %d not a multiple of 64", BVBlockBits)
	}
	if PlainBlockCap*8 > BlockPayload || RLEBlockCap*24 > BlockPayload {
		t.Error("block capacities exceed payload")
	}
}

func TestPlainBlockRoundTrip(t *testing.T) {
	buf := make([]byte, BlockSize)
	vals := make([]int64, PlainBlockCap+100)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	n := EncodePlainBlock(buf, 1000, vals)
	if n != PlainBlockCap {
		t.Fatalf("consumed %d, want %d", n, PlainBlockCap)
	}
	got, err := DecodePlainBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Start != 1000 {
		t.Errorf("Start = %d", got.Start)
	}
	if !reflect.DeepEqual(got.Vals, vals[:n]) {
		t.Error("values mismatch after round trip")
	}
	if got.Cover() != (rangeOf(1000, 1000+int64(n))) {
		t.Errorf("Cover = %v", got.Cover())
	}
}

func TestPlainBlockPartial(t *testing.T) {
	buf := make([]byte, BlockSize)
	vals := []int64{1, -2, 3}
	if n := EncodePlainBlock(buf, 0, vals); n != 3 {
		t.Fatalf("consumed %d", n)
	}
	got, err := DecodePlainBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Vals, vals) {
		t.Errorf("Vals = %v", got.Vals)
	}
}

func TestRLEBlockRoundTrip(t *testing.T) {
	buf := make([]byte, BlockSize)
	ts := []Triple{{Value: 5, Start: 0, Len: 10}, {Value: -7, Start: 10, Len: 3}, {Value: 5, Start: 13, Len: 1}}
	if n := EncodeRLEBlock(buf, ts); n != 3 {
		t.Fatalf("consumed %d", n)
	}
	got, err := DecodeRLEBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Triples, ts) {
		t.Errorf("Triples = %v", got.Triples)
	}
	if got.Cover() != rangeOf(0, 14) {
		t.Errorf("Cover = %v", got.Cover())
	}
}

func TestRLEBlockCapacity(t *testing.T) {
	buf := make([]byte, BlockSize)
	ts := make([]Triple, RLEBlockCap+10)
	pos := int64(0)
	for i := range ts {
		ts[i] = Triple{Value: int64(i % 3), Start: pos, Len: 2}
		pos += 2
	}
	if n := EncodeRLEBlock(buf, ts); n != RLEBlockCap {
		t.Fatalf("consumed %d, want %d", n, RLEBlockCap)
	}
	got, err := DecodeRLEBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Triples) != RLEBlockCap {
		t.Errorf("decoded %d triples", len(got.Triples))
	}
}

func TestBVBlockRoundTrip(t *testing.T) {
	buf := make([]byte, BlockSize)
	nbits := int64(1000)
	words := make([]uint64, (nbits+63)/64)
	rng := rand.New(rand.NewSource(2))
	for i := range words {
		words[i] = rng.Uint64()
	}
	// Clamp trailing bits (invariant for bitmaps).
	words[len(words)-1] &= (1 << uint(nbits%64)) - 1
	n := EncodeBVBlock(buf, 42, 0, words, nbits)
	if n != nbits {
		t.Fatalf("consumed %d bits", n)
	}
	got, err := DecodeBVBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != 42 || got.StartBit != 0 || got.NBits != nbits {
		t.Errorf("header = %+v", got)
	}
	if !reflect.DeepEqual(got.Words, words) {
		t.Error("words mismatch")
	}
}

func TestBVBlockSpansMultiple(t *testing.T) {
	buf := make([]byte, BlockSize)
	nbits := int64(BVBlockBits + 100)
	words := make([]uint64, (nbits+63)/64)
	for i := range words {
		words[i] = ^uint64(0)
	}
	n := EncodeBVBlock(buf, 1, 0, words, nbits)
	if n != BVBlockBits {
		t.Fatalf("first block consumed %d bits, want %d", n, BVBlockBits)
	}
	n2 := EncodeBVBlock(buf, 1, n, words, nbits-n)
	if n2 != 100 {
		t.Fatalf("second block consumed %d bits, want 100", n2)
	}
	got, err := DecodeBVBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.StartBit != BVBlockBits || got.NBits != 100 {
		t.Errorf("second block header = %+v", got)
	}
}

func TestDecodeBlockDispatch(t *testing.T) {
	buf := make([]byte, BlockSize)
	EncodePlainBlock(buf, 0, []int64{1})
	if v, err := DecodeBlock(buf); err != nil {
		t.Fatal(err)
	} else if _, ok := v.(*PlainBlock); !ok {
		t.Errorf("got %T", v)
	}
	EncodeRLEBlock(buf, []Triple{{Value: 1, Start: 0, Len: 1}})
	if v, err := DecodeBlock(buf); err != nil {
		t.Fatal(err)
	} else if _, ok := v.(*RLEBlock); !ok {
		t.Errorf("got %T", v)
	}
}

func TestCorruptionDetection(t *testing.T) {
	buf := make([]byte, BlockSize)
	EncodePlainBlock(buf, 0, []int64{1, 2, 3})
	buf[BlockHeaderSize] ^= 0xff // flip a payload bit
	if _, err := DecodePlainBlock(buf); !errors.Is(err, ErrCorruptBlock) {
		t.Errorf("corrupt payload: err = %v, want ErrCorruptBlock", err)
	}

	EncodeRLEBlock(buf, []Triple{{Value: 1, Start: 0, Len: 5}})
	buf[40] ^= 0x01
	if _, err := DecodeRLEBlock(buf); !errors.Is(err, ErrCorruptBlock) {
		t.Errorf("corrupt rle: err = %v", err)
	}

	// Wrong kind.
	EncodePlainBlock(buf, 0, []int64{1})
	if _, err := DecodeRLEBlock(buf); !errors.Is(err, ErrCorruptBlock) {
		t.Errorf("wrong kind: err = %v", err)
	}
	// Unknown kind byte.
	buf[0] = 0x7f
	if _, err := DecodeBlock(buf); !errors.Is(err, ErrCorruptBlock) {
		t.Errorf("unknown kind: err = %v", err)
	}
	// Short buffer.
	if _, err := DecodeBlock(buf[:10]); !errors.Is(err, ErrCorruptBlock) {
		t.Errorf("short block: err = %v", err)
	}
	// Absurd count.
	EncodePlainBlock(buf, 0, []int64{1})
	buf[4] = 0xff
	buf[5] = 0xff
	buf[6] = 0xff
	if _, err := DecodePlainBlock(buf); !errors.Is(err, ErrCorruptBlock) {
		t.Errorf("oversized count: err = %v", err)
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Kind
	}{{"plain", Plain}, {"uncompressed", Plain}, {"rle", RLE}, {"bitvector", BitVector}, {"bv", BitVector}} {
		got, err := ParseKind(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v", tc.s, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted junk")
	}
}
