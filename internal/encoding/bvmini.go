package encoding

import (
	"fmt"
	"math/bits"
	"sort"

	"matstore/internal/positions"
	"matstore/internal/pred"
)

// BVMini is a mini-column over bit-vector-encoded data: for each distinct
// value, a bitmap covering the window. Predicate application ORs the
// bit-strings of matching values (as the paper describes for range
// predicates over bit-vector data); value reconstruction must consult every
// bit-string, which is why position-filtered access (DS3) is expensive here
// and the paper's executor does not support it natively — Extract and
// ValueAt are provided but cost O(distinct values).
type BVMini struct {
	cov  positions.Range
	vals []int64
	bms  []*positions.Bitmap
}

// NewBVMini builds a bit-vector mini-column. vals must be ascending and
// bms[i] must cover cov for each i.
func NewBVMini(cov positions.Range, vals []int64, bms []*positions.Bitmap) *BVMini {
	if len(vals) != len(bms) {
		panic("encoding: bit-vector values/bitmaps length mismatch")
	}
	for i, bm := range bms {
		if bm.Covering() != cov {
			panic(fmt.Sprintf("encoding: bit-string %d covers %v, want %v", i, bm.Covering(), cov))
		}
		if i > 0 && vals[i] <= vals[i-1] {
			panic("encoding: bit-vector values not ascending")
		}
	}
	return &BVMini{cov: cov, vals: vals, bms: bms}
}

// BVMiniFromValues bit-vector-encodes vals — a convenience for tests.
// start must be 64-aligned.
func BVMiniFromValues(start int64, vals []int64) *BVMini {
	cov := positions.Range{Start: start, End: start + int64(len(vals))}
	distinct := map[int64]*positions.Bitmap{}
	var order []int64
	for i, v := range vals {
		bm, ok := distinct[v]
		if !ok {
			bm = positions.NewBitmap(start, cov.Len())
			distinct[v] = bm
			order = append(order, v)
		}
		bm.Set(start + int64(i))
	}
	// Insertion sort the small distinct-value list.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	bms := make([]*positions.Bitmap, len(order))
	for i, v := range order {
		bms[i] = distinct[v]
	}
	return NewBVMini(cov, order, bms)
}

// Kind returns BitVector.
func (m *BVMini) Kind() Kind { return BitVector }

// Covering returns the window's position range.
func (m *BVMini) Covering() positions.Range { return m.cov }

// DistinctValues returns the encoded distinct values, ascending.
func (m *BVMini) DistinctValues() []int64 { return m.vals }

// BitString returns the bitmap for distinct value index i.
func (m *BVMini) BitString(i int) *positions.Bitmap { return m.bms[i] }

// Filter ORs together the bit-strings of the values matching p. The
// predicate is applied once per distinct value, never per position: this is
// the "predicate has already been applied a-priori" property of bit-vector
// data. Interval-shaped predicates locate the contiguous matching value
// range by binary search over the ascending distinct values, so the
// per-value predicate work is O(log distinct) before the word-at-a-time ORs.
func (m *BVMini) Filter(p pred.Predicate) positions.Set {
	if lo, hi, ok := p.Interval(); ok {
		i0 := sort.Search(len(m.vals), func(i int) bool { return m.vals[i] >= lo })
		i1 := sort.Search(len(m.vals), func(i int) bool { return m.vals[i] > hi })
		if i1 <= i0 { // no distinct value in [lo, hi] (including reversed Between)
			return positions.Empty{}
		}
		return m.orStrings(i0, i1)
	}
	// Non-interval predicate (Ne): the matching values need not be
	// contiguous; test each distinct value with a compiled matcher.
	match := pred.CompileMatcher(p)
	var idxs []int
	for i, v := range m.vals {
		if match(v) {
			idxs = append(idxs, i)
		}
	}
	switch len(idxs) {
	case 0:
		return positions.Empty{}
	case 1:
		return m.bms[idxs[0]]
	default:
		acc := m.bms[idxs[0]].Clone()
		for _, i := range idxs[1:] {
			acc.Or(m.bms[i])
		}
		return acc
	}
}

// orStrings ORs the bit-strings of the contiguous distinct-value index range
// [i0, i1) into one position set.
func (m *BVMini) orStrings(i0, i1 int) positions.Set {
	switch i1 - i0 {
	case 0:
		return positions.Empty{}
	case 1:
		// A single matching value shares its bit-string without copying.
		return m.bms[i0]
	default:
		acc := m.bms[i0].Clone()
		for i := i0 + 1; i < i1; i++ {
			acc.Or(m.bms[i])
		}
		return acc
	}
}

// filterScalar is the retained reference implementation of Filter: one
// Predicate.Match dispatch per distinct value. The differential kernel suite
// checks the interval path against it; it is not used by query execution.
func (m *BVMini) filterScalar(p pred.Predicate) positions.Set {
	var idxs []int
	for i, v := range m.vals {
		if p.Match(v) {
			idxs = append(idxs, i)
		}
	}
	switch len(idxs) {
	case 0:
		return positions.Empty{}
	case 1:
		return m.bms[idxs[0]]
	default:
		acc := m.bms[idxs[0]].Clone()
		for _, i := range idxs[1:] {
			acc.Or(m.bms[i])
		}
		return acc
	}
}

// FilterAt restricts Filter's result to ps.
func (m *BVMini) FilterAt(ps positions.Set, p pred.Predicate) positions.Set {
	return positions.And(m.Filter(p), ps)
}

// ValueAt scans the distinct values' bit-strings for the one holding pos.
func (m *BVMini) ValueAt(pos int64) int64 {
	for i, bm := range m.bms {
		if bm.Contains(pos) {
			return m.vals[i]
		}
	}
	panic(fmt.Sprintf("encoding: position %d set in no bit-string of %v", pos, m.cov))
}

// Extract decompresses the window once and then gathers the requested
// positions. This mirrors the paper's observation that the dominant cost of
// querying bit-vector data is decompression, for EM and LM alike.
func (m *BVMini) Extract(dst []int64, ps positions.Set) []int64 {
	if ps.Count() == 0 {
		return dst
	}
	scratch := make([]int64, m.cov.Len())
	m.decompressInto(scratch)
	it := ps.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return dst
		}
		r = r.Intersect(m.cov)
		if r.Empty() {
			continue
		}
		dst = append(dst, scratch[r.Start-m.cov.Start:r.End-m.cov.Start]...)
	}
}

// Decompress appends the full window to dst.
func (m *BVMini) Decompress(dst []int64) []int64 {
	n := len(dst)
	dst = append(dst, make([]int64, m.cov.Len())...)
	m.decompressInto(dst[n:])
	return dst
}

// MemBytes estimates the window's heap footprint: one full-cover bitmap per
// distinct value plus the value list.
func (m *BVMini) MemBytes() int64 {
	words := (m.cov.Len() + 63) / 64
	return int64(len(m.vals))*(8+24+8*words) + 8*int64(len(m.vals))
}

func (m *BVMini) decompressInto(out []int64) {
	for i, bm := range m.bms {
		v := m.vals[i]
		it := bm.Runs()
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			for p := r.Start; p < r.End; p++ {
				out[p-m.cov.Start] = v
			}
		}
	}
}

// sumRange computes sum over [r) as Σ value × popcount(bit-string ∧ r):
// aggregation directly on compressed data.
func (m *BVMini) sumRange(r positions.Range) int64 {
	r = r.Intersect(m.cov)
	if r.Empty() {
		return 0
	}
	var sum int64
	for i, bm := range m.bms {
		sum += m.vals[i] * popcountRange(bm, r)
	}
	return sum
}

// statsRange aggregates via one popcount per distinct value: count and sum
// come from popcounts, min/max from the smallest/largest distinct value
// with a non-zero popcount (distinct values are stored ascending).
func (m *BVMini) statsRange(r positions.Range) RunStats {
	r = r.Intersect(m.cov)
	if r.Empty() {
		return RunStats{}
	}
	var st RunStats
	for i, bm := range m.bms {
		n := popcountRange(bm, r)
		if n == 0 {
			continue
		}
		v := m.vals[i]
		st.merge(RunStats{Sum: v * n, Count: n, Min: v, Max: v})
	}
	return st
}

// popcountRange counts set bits of bm within r.
func popcountRange(bm *positions.Bitmap, r positions.Range) int64 {
	r = r.Intersect(bm.Covering())
	if r.Empty() {
		return 0
	}
	words := bm.Words()
	lo, hi := r.Start-bm.Start(), r.End-bm.Start()
	lw, hw := lo>>6, (hi-1)>>6
	var n int
	if lw == hw {
		mask := (^uint64(0) << uint(lo&63)) & (^uint64(0) >> uint(63-(hi-1)&63))
		return int64(bits.OnesCount64(words[lw] & mask))
	}
	n += bits.OnesCount64(words[lw] & (^uint64(0) << uint(lo&63)))
	for w := lw + 1; w < hw; w++ {
		n += bits.OnesCount64(words[w])
	}
	n += bits.OnesCount64(words[hw] & (^uint64(0) >> uint(63-(hi-1)&63)))
	return int64(n)
}
