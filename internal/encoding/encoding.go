// Package encoding implements the column encodings of the C-Store storage
// layer reproduced here (Section 1.1 of the paper): uncompressed (plain)
// values, run-length encoding as (value, start, length) triples, and
// bit-vector encoding with one bit-string per distinct value. It also
// provides the MiniColumn abstraction — the in-memory, still-compressed
// window over a column that multi-columns carry through query plans
// (Section 3.6).
package encoding

import (
	"fmt"

	"matstore/internal/positions"
	"matstore/internal/pred"
)

// Kind identifies a column encoding.
type Kind uint8

const (
	// Plain is uncompressed 8-byte values.
	Plain Kind = iota
	// RLE is run-length encoding: (value, start position, run length) triples.
	RLE
	// BitVector stores one bit-string per distinct value; bit i of value v's
	// string is set iff the column holds v at position i.
	BitVector
)

func (k Kind) String() string {
	switch k {
	case Plain:
		return "plain"
	case RLE:
		return "rle"
	case BitVector:
		return "bitvector"
	default:
		return fmt.Sprintf("encoding(%d)", uint8(k))
	}
}

// ParseKind converts a string (as stored in catalog metadata) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "plain", "uncompressed":
		return Plain, nil
	case "rle":
		return RLE, nil
	case "bitvector", "bv", "bit-vector":
		return BitVector, nil
	default:
		return 0, fmt.Errorf("encoding: unknown kind %q", s)
	}
}

// Triple is one RLE run: Len copies of Value starting at position Start.
type Triple struct {
	Value int64
	Start int64
	Len   int64
}

// End returns the position one past the run.
func (t Triple) End() int64 { return t.Start + t.Len }

// Cover returns the position range of the run.
func (t Triple) Cover() positions.Range { return positions.Range{Start: t.Start, End: t.End()} }

// MiniColumn is a read-only window over one column restricted to a covering
// position range, kept in the column's native compressed form. Mini-columns
// are the unit that flows between operators inside a multi-column; every
// data-source case of Section 3.2 reduces to one of these methods.
type MiniColumn interface {
	// Kind reports the underlying encoding.
	Kind() Kind
	// Covering returns the position range this window spans.
	Covering() positions.Range
	// Filter applies p to every value in the window and returns the set of
	// positions whose values match (data source case 1 per chunk).
	Filter(p pred.Predicate) positions.Set
	// FilterAt applies p only at the positions in ps, returning the subset
	// that match (the pipelined-LM narrowing step).
	FilterAt(ps positions.Set, p pred.Predicate) positions.Set
	// Extract appends to dst the values at the positions in ps, in position
	// order (data source case 3 per chunk).
	Extract(dst []int64, ps positions.Set) []int64
	// ValueAt returns the value at pos, which must lie inside Covering()
	// (data source case 4's jump, and the join's inner-table fetch).
	ValueAt(pos int64) int64
	// Decompress appends every value in the window to dst in position order.
	Decompress(dst []int64) []int64
	// MemBytes estimates the window's resident heap footprint — the
	// accounting unit of caches that retain mini-columns (the join build
	// cache's multi-column payload entries).
	MemBytes() int64
}

// SumRange returns the sum of the values at positions [r.Start, r.End) of mc,
// exploiting the encoding: O(runs) for RLE, O(distinct) popcounts for
// bit-vector. It is the primitive behind aggregation directly on compressed
// data (Section 4.2).
func SumRange(mc MiniColumn, r positions.Range) int64 {
	switch m := mc.(type) {
	case *RLEMini:
		return m.sumRange(r)
	case *BVMini:
		return m.sumRange(r)
	case *PlainMini:
		return m.sumRange(r)
	default:
		var sum int64
		for p := r.Start; p < r.End; p++ {
			sum += mc.ValueAt(p)
		}
		return sum
	}
}

// SumSet sums mc's values over an arbitrary position set.
func SumSet(mc MiniColumn, ps positions.Set) int64 {
	var sum int64
	it := ps.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return sum
		}
		sum += SumRange(mc, r)
	}
}

// RunStats are the aggregate statistics of one run of values, the unit of
// work for aggregation directly on compressed data: a whole run contributes
// in O(1) (RLE) or O(distinct) (bit-vector) instead of O(values).
type RunStats struct {
	Sum   int64
	Count int64
	Min   int64
	Max   int64
}

// merge folds another run's statistics into s.
func (s *RunStats) merge(o RunStats) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = o
		return
	}
	s.Sum += o.Sum
	s.Count += o.Count
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// StatsRange computes RunStats over [r.Start, r.End) of mc, exploiting the
// encoding like SumRange.
func StatsRange(mc MiniColumn, r positions.Range) RunStats {
	switch m := mc.(type) {
	case *RLEMini:
		return m.statsRange(r)
	case *BVMini:
		return m.statsRange(r)
	case *PlainMini:
		return m.statsRange(r)
	default:
		var st RunStats
		r = r.Intersect(mc.Covering())
		for p := r.Start; p < r.End; p++ {
			v := mc.ValueAt(p)
			st.merge(RunStats{Sum: v, Count: 1, Min: v, Max: v})
		}
		return st
	}
}

// StatsSet computes RunStats over an arbitrary position set.
func StatsSet(mc MiniColumn, ps positions.Set) RunStats {
	var st RunStats
	it := ps.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return st
		}
		st.merge(StatsRange(mc, r))
	}
}
