package encoding

import (
	"matstore/internal/kernels"
	"matstore/internal/positions"
	"matstore/internal/pred"
)

// This file implements the mini-column side of multi-predicate fusion: a
// conjunction of predicates over one column evaluated in a single pass over
// the window, instead of k passes producing k position sets that are ANDed.

// FilterFused applies the conjunction ps to every value in mc, returning the
// positions satisfying ALL predicates — semantically identical to
// mc.Filter(ps[0]) ∩ … ∩ mc.Filter(ps[k-1]) but evaluated in one pass.
// The conjunction is simplified first (interval predicates intersect into
// one), so the common multi-bound range query runs a single compiled kernel.
// Chunk-at-a-time callers should simplify and compile once per morsel and
// use FilterFusedKernel instead of paying recompilation per chunk.
func FilterFused(mc MiniColumn, ps []pred.Predicate) positions.Set {
	ps = pred.SimplifyConj(ps)
	if len(ps) == 1 {
		return mc.Filter(ps[0])
	}
	return FilterFusedKernel(mc, ps, pred.CompileFused(ps))
}

// FilterFusedKernel is the precompiled fused scan: ps is a simplified
// conjunction of at least two predicates and k its pred.CompileFused
// kernel. Plain data runs the fused kernel (k compiled predicates per
// loaded value, comparison words ANDed in registers); compressed encodings
// filter once and narrow in place, never re-reading the window.
func FilterFusedKernel(mc MiniColumn, ps []pred.Predicate, k pred.Kernel) positions.Set {
	if pm, ok := mc.(*PlainMini); ok {
		return pm.filterFusedKernel(k)
	}
	out := mc.Filter(ps[0])
	for _, p := range ps[1:] {
		if out.Count() == 0 {
			return positions.Empty{}
		}
		out = mc.FilterAt(out, p)
	}
	return out
}

// FilterAtFused applies the conjunction ps at the candidate positions in
// cand, narrowing in place. The predicates are applied as given — callers
// wanting algebraic collapse pass a pred.SimplifyConj form (the planner
// stores exactly that on its nodes). The adaptive dense/sparse choice uses
// pol when non-nil, consulted for the first conjunct only: the policy
// tracks the node's CANDIDATE density across chunks, which later conjuncts'
// already-narrowed inputs would corrupt.
func FilterAtFused(mc MiniColumn, cand positions.Set, ps []pred.Predicate, pol *AdaptiveFilterAt) positions.Set {
	out := cand
	for i, p := range ps {
		if out.Count() == 0 {
			return positions.Empty{}
		}
		if pol != nil && i == 0 {
			out = pol.FilterAt(mc, out, p)
		} else {
			out = mc.FilterAt(out, p)
		}
	}
	return out
}

// filterFusedKernel is the plain-data fused scan: one pass over the
// window's segments through the fused kernel, emitting straight into the
// filter bitmap exactly like Filter.
func (m *PlainMini) filterFusedKernel(k pred.Kernel) positions.Set {
	bm := m.newFilterBitmap()
	for _, s := range m.segs {
		kernels.FilterIntoBitmap(bm, s.start, s.vals, k)
	}
	if bm.Count() == 0 {
		return positions.Empty{}
	}
	return bm
}

// AdaptiveFilterAt chooses the FilterAt dense/sparse execution path per
// chunk from the candidate-set density observed on the previous chunk,
// replacing the fixed absolute cutoff: selectivity is strongly correlated
// across neighbouring chunks (sorted and clustered columns especially), so
// last chunk's candidate density is a better predictor of whether the
// word-at-a-time kernel (dense) or the run-builder (sparse) pays off than a
// static count threshold that ignores the window width. The zero value is
// ready to use; the first chunk falls back to the static cutoff. One policy
// instance serves one scan chain inside one morsel (it is not safe for
// concurrent use — each worker keeps its own).
type AdaptiveFilterAt struct {
	prevDensity float64
	seen        bool
}

// FilterAt runs mc.FilterAt with the adaptively chosen path for plain
// windows (other encodings have no dense/sparse split) and records the
// chunk's candidate density for the next decision.
func (a *AdaptiveFilterAt) FilterAt(mc MiniColumn, ps positions.Set, p pred.Predicate) positions.Set {
	pm, ok := mc.(*PlainMini)
	if !ok {
		return mc.FilterAt(ps, p)
	}
	count := ps.Count()
	width := pm.Covering().Len()
	out := pm.FilterAtChoice(ps, p, a.dense(count, width))
	a.observe(count, width)
	return out
}

// dense decides the path for a candidate set of count positions over a
// window of width: predicted count from the previous chunk's density when
// available, the static cutoff on the current count otherwise.
func (a *AdaptiveFilterAt) dense(count, width int64) bool {
	if a.seen && width > 0 {
		return a.prevDensity*float64(width) > filterAtDenseCutoff
	}
	return count > filterAtDenseCutoff
}

// observe records the chunk's candidate density.
func (a *AdaptiveFilterAt) observe(count, width int64) {
	if width > 0 {
		a.prevDensity = float64(count) / float64(width)
		a.seen = true
	}
}
