package encoding

import (
	"fmt"
	"math/rand"
	"testing"

	"matstore/internal/positions"
	"matstore/internal/pred"
)

// Differential kernel suite: the compiled scan kernels (word-at-a-time plain
// filtering, run-at-a-time RLE interval tests, binary-searched bit-vector
// string selection) must produce exactly the same position sets as the
// retained scalar reference implementations, for every encoding × every
// pred.Op × selectivities spanning {0, ~0.01, ~0.5, ~0.99, 1}, over data
// shapes that exercise every alignment path.

const diffDomain = 1000 // values drawn from [0, diffDomain)

// diffPredicates builds, for one op, predicates whose accepted fraction of
// [0, diffDomain) sweeps the five selectivity points (for Eq/Ne the
// achievable selectivities are ~0 and ~1; the sweep still varies the
// constant across the domain, including out-of-domain constants).
func diffPredicates(op pred.Op) []pred.Predicate {
	cuts := []int64{0, diffDomain / 100, diffDomain / 2, diffDomain * 99 / 100, diffDomain}
	var out []pred.Predicate
	switch op {
	case pred.All:
		return []pred.Predicate{pred.MatchAll}
	case pred.None:
		return []pred.Predicate{{Op: pred.None}}
	case pred.Between:
		for _, q := range cuts {
			lo := (diffDomain - q) / 2
			out = append(out, pred.InRange(lo, lo+q))
		}
		// Reversed and empty intervals: InRange does not validate argument
		// order, so kernels must treat B <= A as matching nothing.
		out = append(out,
			pred.InRange(diffDomain*3/4, diffDomain/4),
			pred.InRange(diffDomain/2, diffDomain/2))
		return out
	default:
		for _, q := range cuts {
			// Constants at the quantile, plus just outside the domain.
			for _, a := range []int64{q, -1, diffDomain + 1} {
				out = append(out, pred.Predicate{Op: op, A: a})
			}
		}
		return out
	}
}

var diffOps = []pred.Op{pred.All, pred.Lt, pred.Le, pred.Eq, pred.Ne, pred.Ge, pred.Gt, pred.Between, pred.None}

// diffMiniCase is one (data shape, encoding) instance with its scalar
// reference hooks.
type diffMiniCase struct {
	name     string
	mc       MiniColumn
	filter   func(pred.Predicate) positions.Set
	filterAt func(positions.Set, pred.Predicate) positions.Set
}

func diffMinis(t *testing.T) []diffMiniCase {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	const n = 10000 // not a multiple of 64: every bitmap tail path runs
	random := make([]int64, n)
	sorted := make([]int64, n)
	lowCard := make([]int64, n)
	for i := range random {
		random[i] = rng.Int63n(diffDomain)
		sorted[i] = int64(i) * diffDomain / n
		lowCard[i] = rng.Int63n(8) * (diffDomain / 8)
	}
	var cases []diffMiniCase
	addPlain := func(name string, m *PlainMini) {
		cases = append(cases, diffMiniCase{name, m, m.filterScalar, m.filterAtScalar})
	}
	addPlain("plain/random", PlainMiniFromValues(64, random))
	addPlain("plain/sorted", PlainMiniFromValues(0, sorted))
	// Multi-segment windows mirror storage: plain blocks hold 8188 values,
	// so mid-window segments start at non-64-aligned positions.
	seg := NewPlainMini(positions.Range{Start: 128, End: 128 + n})
	seg.AddSegment(128, random[:8188])
	seg.AddSegment(128+8188, random[8188:])
	addPlain("plain/blockseg", seg)
	odd := NewPlainMini(positions.Range{Start: 0, End: n})
	for off := 0; off < n; {
		l := 97 + (off % 61)
		if off+l > n {
			l = n - off
		}
		odd.AddSegment(int64(off), random[off:off+l])
		off += l
	}
	addPlain("plain/oddseg", odd)

	rle := RLEMiniFromValues(192, sorted)
	cases = append(cases, diffMiniCase{"rle/sorted", rle, rle.filterScalar, rle.filterAtScalar})
	rleRnd := RLEMiniFromValues(0, lowCard)
	cases = append(cases, diffMiniCase{"rle/lowcard", rleRnd, rleRnd.filterScalar, rleRnd.filterAtScalar})

	bv := BVMiniFromValues(64, lowCard)
	cases = append(cases, diffMiniCase{"bv/lowcard", bv, bv.filterScalar,
		func(ps positions.Set, p pred.Predicate) positions.Set {
			return positions.And(bv.filterScalar(p), ps)
		}})
	return cases
}

// diffCandidates builds FilterAt candidate sets over cov in each
// representation and density class (both sides of the dense cutoff).
func diffCandidates(cov positions.Range) map[string]positions.Set {
	full := positions.NewRanges(cov)
	sparseList := positions.List{}
	for p := cov.Start; p < cov.End; p += 97 {
		sparseList = append(sparseList, p)
	}
	tiny := positions.List{cov.Start, cov.Start + 1, cov.End - 1}
	var runs positions.Ranges
	for p := cov.Start; p+5 < cov.End; p += 64 {
		runs = append(runs, positions.Range{Start: p, End: p + 5})
	}
	bm := positions.NewBitmap(cov.Start&^63, cov.End-cov.Start&^63)
	rng := rand.New(rand.NewSource(7))
	for p := cov.Start; p < cov.End; p++ {
		if rng.Intn(2) == 0 {
			bm.Set(p)
		}
	}
	return map[string]positions.Set{
		"full":   full,
		"sparse": sparseList,
		"tiny":   tiny,
		"runs":   runs,
		"bitmap": bm,
		"empty":  positions.Empty{},
	}
}

func TestDifferentialFilterKernels(t *testing.T) {
	for _, c := range diffMinis(t) {
		cands := diffCandidates(c.mc.Covering())
		for _, op := range diffOps {
			for pi, p := range diffPredicates(op) {
				got := c.mc.Filter(p)
				want := c.filter(p)
				if !positions.Equal(got, want) {
					t.Fatalf("%s Filter(%v) [case %d]: kernel %d positions, scalar %d",
						c.name, p, pi, got.Count(), want.Count())
				}
				for cname, ps := range cands {
					gotAt := c.mc.FilterAt(ps, p)
					wantAt := c.filterAt(ps, p)
					if !positions.Equal(gotAt, wantAt) {
						t.Fatalf("%s FilterAt(%s, %v) [case %d]: kernel %d positions, scalar %d",
							c.name, cname, p, pi, gotAt.Count(), wantAt.Count())
					}
				}
			}
		}
	}
}

// TestDifferentialExtractAfterKernels closes the loop from filter output to
// value extraction: whatever representation the kernel emits, Extract must
// return the same values as extracting the scalar reference's output.
func TestDifferentialExtractAfterKernels(t *testing.T) {
	for _, c := range diffMinis(t) {
		for _, p := range []pred.Predicate{
			pred.LessThan(diffDomain / 2), pred.Equals(0), pred.NotEquals(diffDomain / 2), pred.MatchAll,
		} {
			got := c.mc.Extract(nil, c.mc.Filter(p))
			want := c.mc.Extract(nil, c.filter(p))
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s Extract after Filter(%v): values differ (%d vs %d)", c.name, p, len(got), len(want))
			}
		}
	}
}

// fusedConjCases draws conjunctions spanning the shapes SimplifyConj and the
// fused kernel must handle: pure interval pairs (collapse to one kernel),
// interval+Ne residue (true k-ary fused kernel), contradictions, and
// trivial conjuncts.
func fusedConjCases() [][]pred.Predicate {
	d := int64(diffDomain)
	return [][]pred.Predicate{
		{pred.AtLeast(d / 4), pred.LessThan(3 * d / 4)},
		{pred.LessThan(3 * d / 4), pred.AtLeast(d / 4), pred.NotEquals(d / 2)},
		{pred.NotEquals(d / 3), pred.NotEquals(d / 2)},
		{pred.MatchAll, pred.LessThan(d / 100)},
		{pred.AtLeast(d), pred.LessThan(1)}, // contradiction
		{pred.InRange(0, d), pred.InRange(d/2, d/2+1), pred.NotEquals(d / 2)}, // collapses to None
		{pred.GreaterThan(d * 99 / 100), pred.NotEquals(d - 1)},
		{pred.MatchAll, pred.MatchAll, pred.MatchAll},
	}
}

// TestDifferentialFilterFused: for every encoding and conjunction shape, the
// single-pass fused filter must equal the AND of per-predicate scalar
// reference filters — the unfused path.
func TestDifferentialFilterFused(t *testing.T) {
	for _, c := range diffMinis(t) {
		for ci, ps := range fusedConjCases() {
			got := FilterFused(c.mc, ps)
			want := c.filter(ps[0])
			for _, p := range ps[1:] {
				want = positions.And(want, c.filter(p))
			}
			if !positions.Equal(got, want) {
				t.Fatalf("%s FilterFused case %d (%v): fused %d positions, unfused %d",
					c.name, ci, ps, got.Count(), want.Count())
			}
		}
	}
}

// TestDifferentialFilterAtFused checks the fused candidate-narrowing path
// (with and without the adaptive policy) against sequential per-predicate
// FilterAt over every candidate representation.
func TestDifferentialFilterAtFused(t *testing.T) {
	for _, c := range diffMinis(t) {
		cands := diffCandidates(c.mc.Covering())
		for ci, ps := range fusedConjCases() {
			for cname, cand := range cands {
				want := cand
				for _, p := range ps {
					want = c.filterAt(want, p)
				}
				got := FilterAtFused(c.mc, cand, ps, nil)
				if !positions.Equal(got, want) {
					t.Fatalf("%s FilterAtFused(%s) case %d: fused %d positions, sequential %d",
						c.name, cname, ci, got.Count(), want.Count())
				}
				var pol AdaptiveFilterAt
				gotPol := FilterAtFused(c.mc, cand, ps, &pol)
				if !positions.Equal(gotPol, want) {
					t.Fatalf("%s FilterAtFused(%s, adaptive) case %d: %d positions, want %d",
						c.name, cname, ci, gotPol.Count(), want.Count())
				}
			}
		}
	}
}

// TestDifferentialFilterAtChoice forces BOTH the dense (kernel+bitmap) and
// sparse (run-builder) FilterAt paths for every plain case, candidate shape
// and predicate — each regime must match the scalar reference regardless of
// what the cutoff would have chosen.
func TestDifferentialFilterAtChoice(t *testing.T) {
	for _, c := range diffMinis(t) {
		pm, ok := c.mc.(*PlainMini)
		if !ok {
			continue
		}
		cands := diffCandidates(c.mc.Covering())
		for _, op := range diffOps {
			for pi, p := range diffPredicates(op) {
				for cname, ps := range cands {
					want := c.filterAt(ps, p)
					for _, dense := range []bool{false, true} {
						got := pm.FilterAtChoice(ps, p, dense)
						if !positions.Equal(got, want) {
							t.Fatalf("%s FilterAtChoice(%s, %v, dense=%v) [case %d]: %d positions, scalar %d",
								c.name, cname, p, dense, pi, got.Count(), want.Count())
						}
					}
				}
			}
		}
	}
}

// TestAdaptiveFilterAtPolicy pins the decision rule: the first chunk uses
// the static cutoff, later chunks predict from the previous chunk's
// candidate density, and the policy actually switches regimes when density
// crosses the threshold.
func TestAdaptiveFilterAtPolicy(t *testing.T) {
	var a AdaptiveFilterAt
	const width = 1 << 16
	// No history: static cutoff on the current count.
	if a.dense(filterAtDenseCutoff, width) {
		t.Error("first chunk: count at cutoff should be sparse")
	}
	if !a.dense(filterAtDenseCutoff+1, width) {
		t.Error("first chunk: count above cutoff should be dense")
	}
	// Dense history: a dense previous chunk predicts dense even when the
	// current count is small.
	a.observe(width/2, width)
	if !a.dense(8, width) {
		t.Error("dense history should choose the dense path")
	}
	// Sparse history: predicts sparse even for a count above the cutoff.
	a.observe(4, width)
	if a.dense(100000, width) {
		t.Error("sparse history should choose the sparse path")
	}
	// The policy-driven path must agree with the static path on results
	// across a chunk sequence whose density flips between regimes.
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i % 251)
	}
	m := PlainMiniFromValues(0, vals)
	p := pred.LessThan(200)
	var pol AdaptiveFilterAt
	for chunk, cand := range []positions.Set{
		positions.NewRanges(positions.Range{Start: 0, End: 4096}), // dense
		positions.List{1, 2, 4093},                                // sparse
		positions.NewRanges(positions.Range{Start: 64, End: 3200}),
		positions.List{700},
	} {
		got := pol.FilterAt(m, cand, p)
		want := m.filterAtScalar(cand, p)
		if !positions.Equal(got, want) {
			t.Fatalf("adaptive chunk %d: %d positions, want %d", chunk, got.Count(), want.Count())
		}
	}
}
