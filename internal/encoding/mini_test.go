package encoding

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"matstore/internal/positions"
	"matstore/internal/pred"
)

func rangeOf(s, e int64) positions.Range { return positions.Range{Start: s, End: e} }

// minis builds all three encodings of the same logical column so that every
// test can assert cross-encoding agreement. start must be 64-aligned.
func minis(start int64, vals []int64) []MiniColumn {
	return []MiniColumn{
		PlainMiniFromValues(start, vals),
		RLEMiniFromValues(start, vals),
		BVMiniFromValues(start, vals),
	}
}

func TestMiniFilterAgreement(t *testing.T) {
	vals := []int64{5, 5, 5, 2, 2, 9, 9, 9, 9, 1, 5, 5}
	want := positions.NewRanges(rangeOf(64, 67), rangeOf(74, 76)) // values == 5
	for _, m := range minis(64, vals) {
		got := m.Filter(pred.Equals(5))
		if !positions.Equal(got, want) {
			t.Errorf("%v Filter(=5) = %v, want %v", m.Kind(), positions.Slice(got), positions.Slice(want))
		}
	}
}

func TestMiniFilterRangePred(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, m := range minis(0, vals) {
		got := m.Filter(pred.InRange(3, 6)) // 3,4,5 at positions 2,3,4
		if !positions.Equal(got, positions.NewRanges(rangeOf(2, 5))) {
			t.Errorf("%v Filter(between) = %v", m.Kind(), positions.Slice(got))
		}
	}
}

func TestMiniValueAt(t *testing.T) {
	vals := []int64{10, 20, 20, 30, 30, 30}
	for _, m := range minis(128, vals) {
		for i, v := range vals {
			if got := m.ValueAt(128 + int64(i)); got != v {
				t.Errorf("%v ValueAt(%d) = %d, want %d", m.Kind(), 128+i, got, v)
			}
		}
	}
}

func TestMiniExtract(t *testing.T) {
	vals := []int64{10, 20, 20, 30, 30, 30, 40, 50}
	ps := positions.NewRanges(rangeOf(1, 3), rangeOf(5, 7))
	want := []int64{20, 20, 30, 40}
	for _, m := range minis(0, vals) {
		got := m.Extract(nil, ps)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v Extract = %v, want %v", m.Kind(), got, want)
		}
	}
}

func TestMiniExtractEmpty(t *testing.T) {
	for _, m := range minis(0, []int64{1, 2, 3}) {
		if got := m.Extract(nil, positions.Empty{}); len(got) != 0 {
			t.Errorf("%v Extract(empty) = %v", m.Kind(), got)
		}
	}
}

func TestMiniDecompress(t *testing.T) {
	vals := []int64{7, 7, 8, 9, 9, 9}
	for _, m := range minis(64, vals) {
		got := m.Decompress(nil)
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("%v Decompress = %v, want %v", m.Kind(), got, vals)
		}
	}
}

func TestMiniFilterAt(t *testing.T) {
	vals := []int64{1, 5, 5, 2, 5, 3, 5, 5}
	restrict := positions.NewRanges(rangeOf(0, 4), rangeOf(6, 7))
	// =5 within restrict: positions 1,2 and 6.
	want := positions.NewRanges(rangeOf(1, 3), rangeOf(6, 7))
	for _, m := range minis(0, vals) {
		got := m.FilterAt(restrict, pred.Equals(5))
		if !positions.Equal(got, want) {
			t.Errorf("%v FilterAt = %v, want %v", m.Kind(), positions.Slice(got), positions.Slice(want))
		}
	}
}

func TestMiniSumRange(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, m := range minis(0, vals) {
		if got := SumRange(m, rangeOf(2, 7)); got != 3+4+5+6+7 {
			t.Errorf("%v SumRange = %d, want 25", m.Kind(), got)
		}
		if got := SumRange(m, rangeOf(0, 10)); got != 55 {
			t.Errorf("%v SumRange(all) = %d, want 55", m.Kind(), got)
		}
		if got := SumRange(m, rangeOf(20, 30)); got != 0 {
			t.Errorf("%v SumRange(outside) = %d, want 0", m.Kind(), got)
		}
	}
}

func TestMiniSumSet(t *testing.T) {
	vals := []int64{1, 10, 100, 1000, 10000}
	ps := positions.List{0, 2, 4}
	for _, m := range minis(0, vals) {
		if got := SumSet(m, ps); got != 10101 {
			t.Errorf("%v SumSet = %d, want 10101", m.Kind(), got)
		}
	}
}

func TestPlainMiniSegmented(t *testing.T) {
	m := NewPlainMini(rangeOf(0, 10))
	m.AddSegment(0, []int64{0, 1, 2, 3})
	m.AddSegment(4, []int64{4, 5, 6})
	m.AddSegment(7, []int64{7, 8, 9})
	for i := int64(0); i < 10; i++ {
		if m.ValueAt(i) != i {
			t.Fatalf("ValueAt(%d) = %d", i, m.ValueAt(i))
		}
	}
	// Extraction across segment boundaries.
	got := m.Extract(nil, positions.NewRanges(rangeOf(2, 9)))
	if !reflect.DeepEqual(got, []int64{2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("Extract across segments = %v", got)
	}
	// Filter across segment boundaries.
	ps := m.Filter(pred.AtLeast(3))
	if !positions.Equal(ps, positions.NewRanges(rangeOf(3, 10))) {
		t.Errorf("Filter across segments = %v", positions.Slice(ps))
	}
	if got := SumRange(m, rangeOf(3, 8)); got != 3+4+5+6+7 {
		t.Errorf("sumRange across segments = %d", got)
	}
}

func TestPlainMiniGapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on gapped segments")
		}
	}()
	m := NewPlainMini(rangeOf(0, 10))
	m.AddSegment(0, []int64{1})
	m.AddSegment(5, []int64{2})
}

func TestRLEMiniRunsExposed(t *testing.T) {
	m := RLEMiniFromValues(0, []int64{4, 4, 4, 4, 7, 7})
	ts := m.Triples()
	want := []Triple{{Value: 4, Start: 0, Len: 4}, {Value: 7, Start: 4, Len: 2}}
	if !reflect.DeepEqual(ts, want) {
		t.Errorf("Triples = %v", ts)
	}
	if got := m.AvgRunLen(); got != 3 {
		t.Errorf("AvgRunLen = %v, want 3", got)
	}
}

func TestRLEMiniValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cov  positions.Range
		ts   []Triple
	}{
		{"gap", rangeOf(0, 5), []Triple{{1, 0, 2}, {2, 3, 2}}},
		{"does-not-tile", rangeOf(0, 5), []Triple{{1, 0, 4}}},
		{"empty-run", rangeOf(0, 1), []Triple{{1, 0, 0}, {1, 0, 1}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			NewRLEMini(tc.cov, tc.ts)
		}()
	}
}

func TestBVMiniSharedBitstring(t *testing.T) {
	// Single matching value must not copy the bit-string.
	m := BVMiniFromValues(0, []int64{1, 2, 1, 2})
	got := m.Filter(pred.Equals(1))
	if got != positions.Set(m.BitString(0)) {
		t.Error("single-value filter should share the bit-string")
	}
}

func TestBVMiniDistinct(t *testing.T) {
	m := BVMiniFromValues(0, []int64{3, 1, 2, 1})
	if !reflect.DeepEqual(m.DistinctValues(), []int64{1, 2, 3}) {
		t.Errorf("DistinctValues = %v", m.DistinctValues())
	}
}

// TestMiniPropertyAgreement cross-checks all encodings against the plain
// reference on random data: Filter, FilterAt, Extract, ValueAt, SumRange
// must agree exactly regardless of encoding.
func TestMiniPropertyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(300)
		distinct := 1 + rng.Intn(8)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(distinct))
		}
		// Sometimes sort to create long runs (the RLE-friendly case).
		if rng.Intn(2) == 0 {
			for i := 1; i < n; i++ {
				for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
					vals[j], vals[j-1] = vals[j-1], vals[j]
				}
			}
		}
		start := int64(rng.Intn(4)) * 64
		ms := minis(start, vals)
		ref := ms[0]
		p := pred.Predicate{Op: pred.Op(1 + rng.Intn(6)), A: int64(rng.Intn(distinct + 1))}

		wantFilter := ref.Filter(p)
		restrict, _ := randomSubset(rng, start, int64(n))
		wantFilterAt := ref.FilterAt(restrict, p)
		wantExtract := ref.Extract(nil, restrict)
		for _, m := range ms[1:] {
			if got := m.Filter(p); !positions.Equal(got, wantFilter) {
				t.Fatalf("iter %d: %v Filter(%v) disagrees with plain: %v vs %v",
					iter, m.Kind(), p, positions.Slice(got), positions.Slice(wantFilter))
			}
			if got := m.FilterAt(restrict, p); !positions.Equal(got, wantFilterAt) {
				t.Fatalf("iter %d: %v FilterAt disagrees", iter, m.Kind())
			}
			if got := m.Extract(nil, restrict); !reflect.DeepEqual(got, wantExtract) &&
				!(len(got) == 0 && len(wantExtract) == 0) {
				t.Fatalf("iter %d: %v Extract disagrees: %v vs %v", iter, m.Kind(), got, wantExtract)
			}
			for k := 0; k < 10; k++ {
				pos := start + int64(rng.Intn(n))
				if m.ValueAt(pos) != ref.ValueAt(pos) {
					t.Fatalf("iter %d: %v ValueAt(%d) disagrees", iter, m.Kind(), pos)
				}
			}
			r := rangeOf(start+int64(rng.Intn(n)), start+int64(rng.Intn(n+1)))
			if SumRange(m, r) != SumRange(ref, r) {
				t.Fatalf("iter %d: %v SumRange(%v) disagrees", iter, m.Kind(), r)
			}
		}
	}
}

func randomSubset(rng *rand.Rand, start, n int64) (positions.Set, []bool) {
	ref := make([]bool, n)
	b := positions.NewBuilder(rangeOf(start, start+n))
	if rng.Intn(4) == 0 {
		b.ForceBitmap()
	}
	density := rng.Float64()
	for i := int64(0); i < n; i++ {
		if rng.Float64() < density {
			ref[i] = true
			b.Add(start + i)
		}
	}
	return b.Build(), ref
}

// TestRLERoundTripQuick uses testing/quick to verify that RLE encoding of an
// arbitrary value sequence decompresses to the original.
func TestRLERoundTripQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]int64, len(raw))
		for i, b := range raw {
			vals[i] = int64(b % 5)
		}
		if len(vals) == 0 {
			return true
		}
		m := RLEMiniFromValues(0, vals)
		return reflect.DeepEqual(m.Decompress(nil), vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBVRoundTripQuick does the same for bit-vector encoding.
func TestBVRoundTripQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]int64, len(raw))
		for i, b := range raw {
			vals[i] = int64(b % 7)
		}
		if len(vals) == 0 {
			return true
		}
		m := BVMiniFromValues(0, vals)
		return reflect.DeepEqual(m.Decompress(nil), vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
