package encoding

import (
	"fmt"
	"sort"

	"matstore/internal/kernels"
	"matstore/internal/positions"
	"matstore/internal/pred"
)

// PlainMini is a mini-column over uncompressed data. Because chunk
// boundaries need not align with block boundaries, the window is a sequence
// of contiguous segments, each a zero-copy slice into a decoded block.
type PlainMini struct {
	cov  positions.Range
	segs []plainSeg
}

type plainSeg struct {
	start int64
	vals  []int64
}

func (s plainSeg) end() int64 { return s.start + int64(len(s.vals)) }

// NewPlainMini builds a plain mini-column covering cov. Segments must be
// contiguous, in order, and exactly tile cov.
func NewPlainMini(cov positions.Range) *PlainMini {
	return &PlainMini{cov: cov}
}

// AddSegment appends a segment of values starting at position start.
// Segments must be added in ascending, gap-free order.
func (m *PlainMini) AddSegment(start int64, vals []int64) {
	if len(vals) == 0 {
		return
	}
	if n := len(m.segs); n > 0 && m.segs[n-1].end() != start {
		panic(fmt.Sprintf("encoding: plain segment gap: prev ends %d, next starts %d", m.segs[n-1].end(), start))
	}
	m.segs = append(m.segs, plainSeg{start: start, vals: vals})
}

// PlainMiniFromValues is a convenience constructor for tests and in-memory
// tables: the window holds vals at positions [start, start+len(vals)).
func PlainMiniFromValues(start int64, vals []int64) *PlainMini {
	m := NewPlainMini(positions.Range{Start: start, End: start + int64(len(vals))})
	m.AddSegment(start, vals)
	return m
}

// Kind returns Plain.
func (m *PlainMini) Kind() Kind { return Plain }

// Covering returns the window's position range.
func (m *PlainMini) Covering() positions.Range { return m.cov }

// seg returns the index of the segment containing pos.
func (m *PlainMini) seg(pos int64) int {
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].end() > pos })
	if i == len(m.segs) || pos < m.segs[i].start {
		panic(fmt.Sprintf("encoding: position %d outside plain mini-column %v", pos, m.cov))
	}
	return i
}

// ValueAt returns the value at pos.
func (m *PlainMini) ValueAt(pos int64) int64 {
	// Fast path: chunks no larger than a block have a single segment.
	if len(m.segs) == 1 {
		return m.segs[0].vals[pos-m.segs[0].start]
	}
	s := m.segs[m.seg(pos)]
	return s.vals[pos-s.start]
}

// Filter applies p to every value in the window. As in C-Store, a scan of
// uncompressed data emits its positions as a bit-string: without encoded
// runs to exploit, the data source does not try to discover value runs on
// the fly (predicates over sorted or RLE columns are the ones that produce
// position ranges). The predicate is compiled once and the comparison loop
// emits 64 results at a time directly into the bitmap — no per-value
// operator dispatch, no intermediate run list.
func (m *PlainMini) Filter(p pred.Predicate) positions.Set {
	bm := m.newFilterBitmap()
	k := pred.Compile(p)
	for _, s := range m.segs {
		kernels.FilterIntoBitmap(bm, s.start, s.vals, k)
	}
	if bm.Count() == 0 {
		return positions.Empty{}
	}
	return bm
}

// newFilterBitmap allocates the window's filter-output bitmap, 64-aligned
// like Builder's forced-bitmap output.
func (m *PlainMini) newFilterBitmap() *positions.Bitmap {
	start := m.cov.Start &^ 63
	return positions.NewBitmap(start, m.cov.End-start)
}

// filterAtDenseCutoff is the static position count above which FilterAt
// switches from the run-builder output to the compiled word-at-a-time kernel
// emitting a bitmap: below it the candidate set is sparse enough that a
// compact list/range output is worth keeping for downstream intersections.
// It is the fallback decision rule; the executor drives the per-chunk choice
// through AdaptiveFilterAt, which predicts from the previous chunk's
// observed candidate density instead.
const filterAtDenseCutoff = 128

// FilterAt applies p only at the positions in ps, choosing the execution
// path by the static cutoff on the candidate count. Chunk-at-a-time callers
// should prefer AdaptiveFilterAt, which feeds FilterAtChoice from observed
// density.
func (m *PlainMini) FilterAt(ps positions.Set, p pred.Predicate) positions.Set {
	return m.FilterAtChoice(ps, p, ps.Count() > filterAtDenseCutoff)
}

// FilterAtChoice is FilterAt with the dense/sparse decision made by the
// caller. Dense candidate sets run through the compiled kernel run-by-run
// straight into a bitmap; sparse sets keep the adaptive run-builder
// representation, evaluated with a compiled scalar matcher. Both paths
// return exactly the same position set — only the work profile and output
// representation differ.
func (m *PlainMini) FilterAtChoice(ps positions.Set, p pred.Predicate, dense bool) positions.Set {
	if !dense {
		return m.filterAtSparse(ps, pred.CompileMatcher(p))
	}
	bm := m.newFilterBitmap()
	k := pred.Compile(p)
	it := ps.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		r = r.Intersect(m.cov)
		if r.Empty() {
			continue
		}
		si := m.seg(r.Start)
		for pos := r.Start; pos < r.End; {
			s := m.segs[si]
			end := r.End
			if s.end() < end {
				end = s.end()
			}
			kernels.FilterIntoBitmap(bm, pos, s.vals[pos-s.start:end-s.start], k)
			pos = end
			si++
		}
	}
	if bm.Count() == 0 {
		return positions.Empty{}
	}
	return bm
}

// filterAtSparse is the sparse-candidate FilterAt path: the old run-builder
// output shape, with the predicate compiled to a scalar matcher.
func (m *PlainMini) filterAtSparse(ps positions.Set, match pred.Matcher) positions.Set {
	b := positions.NewBuilder(m.cov)
	it := ps.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return b.Build()
		}
		r = r.Intersect(m.cov)
		if r.Empty() {
			continue
		}
		si := m.seg(r.Start)
		for pos := r.Start; pos < r.End; {
			s := m.segs[si]
			end := r.End
			if s.end() < end {
				end = s.end()
			}
			vals := s.vals[pos-s.start : end-s.start]
			runStart := int64(-1)
			for i, v := range vals {
				if match(v) {
					if runStart < 0 {
						runStart = pos + int64(i)
					}
				} else if runStart >= 0 {
					b.AddRange(positions.Range{Start: runStart, End: pos + int64(i)})
					runStart = -1
				}
			}
			if runStart >= 0 {
				b.AddRange(positions.Range{Start: runStart, End: end})
			}
			pos = end
			si++
		}
	}
}

// filterScalar is the retained per-value reference implementation of Filter:
// one Predicate.Match dispatch per value, runs accumulated through the
// Builder and replayed into a forced bitmap. The differential kernel suite
// checks the compiled path against it; it is not used by query execution.
func (m *PlainMini) filterScalar(p pred.Predicate) positions.Set {
	b := positions.NewBuilder(m.cov)
	b.ForceBitmap()
	for _, s := range m.segs {
		base := s.start
		runStart := int64(-1)
		for i, v := range s.vals {
			if p.Match(v) {
				if runStart < 0 {
					runStart = base + int64(i)
				}
			} else if runStart >= 0 {
				b.AddRange(positions.Range{Start: runStart, End: base + int64(i)})
				runStart = -1
			}
		}
		if runStart >= 0 {
			b.AddRange(positions.Range{Start: runStart, End: s.end()})
		}
	}
	return b.Build()
}

// filterAtScalar is the retained per-value reference implementation of
// FilterAt (see filterScalar).
func (m *PlainMini) filterAtScalar(ps positions.Set, p pred.Predicate) positions.Set {
	b := positions.NewBuilder(m.cov)
	it := ps.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return b.Build()
		}
		r = r.Intersect(m.cov)
		if r.Empty() {
			continue
		}
		si := m.seg(r.Start)
		for pos := r.Start; pos < r.End; {
			s := m.segs[si]
			end := r.End
			if s.end() < end {
				end = s.end()
			}
			vals := s.vals[pos-s.start : end-s.start]
			runStart := int64(-1)
			for i, v := range vals {
				if p.Match(v) {
					if runStart < 0 {
						runStart = pos + int64(i)
					}
				} else if runStart >= 0 {
					b.AddRange(positions.Range{Start: runStart, End: pos + int64(i)})
					runStart = -1
				}
			}
			if runStart >= 0 {
				b.AddRange(positions.Range{Start: runStart, End: end})
			}
			pos = end
			si++
		}
	}
}

// Extract appends the values at ps to dst.
func (m *PlainMini) Extract(dst []int64, ps positions.Set) []int64 {
	it := ps.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return dst
		}
		r = r.Intersect(m.cov)
		if r.Empty() {
			continue
		}
		si := m.seg(r.Start)
		for pos := r.Start; pos < r.End; {
			s := m.segs[si]
			end := r.End
			if s.end() < end {
				end = s.end()
			}
			dst = append(dst, s.vals[pos-s.start:end-s.start]...)
			pos = end
			si++
		}
	}
}

// Decompress appends the full window to dst.
func (m *PlainMini) Decompress(dst []int64) []int64 {
	for _, s := range m.segs {
		dst = append(dst, s.vals...)
	}
	return dst
}

// MemBytes estimates the window's heap footprint: one word per value plus
// per-segment bookkeeping.
func (m *PlainMini) MemBytes() int64 {
	var b int64
	for _, s := range m.segs {
		b += 24 + 8*int64(len(s.vals))
	}
	return b
}

func (m *PlainMini) statsRange(r positions.Range) RunStats {
	r = r.Intersect(m.cov)
	if r.Empty() {
		return RunStats{}
	}
	var st RunStats
	si := m.seg(r.Start)
	for pos := r.Start; pos < r.End; {
		s := m.segs[si]
		end := r.End
		if s.end() < end {
			end = s.end()
		}
		for _, v := range s.vals[pos-s.start : end-s.start] {
			if st.Count == 0 {
				st.Min, st.Max = v, v
			} else {
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
			}
			st.Sum += v
			st.Count++
		}
		pos = end
		si++
	}
	return st
}

func (m *PlainMini) sumRange(r positions.Range) int64 {
	r = r.Intersect(m.cov)
	if r.Empty() {
		return 0
	}
	var sum int64
	si := m.seg(r.Start)
	for pos := r.Start; pos < r.End; {
		s := m.segs[si]
		end := r.End
		if s.end() < end {
			end = s.end()
		}
		for _, v := range s.vals[pos-s.start : end-s.start] {
			sum += v
		}
		pos = end
		si++
	}
	return sum
}
