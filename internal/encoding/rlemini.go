package encoding

import (
	"fmt"
	"sort"

	"matstore/internal/positions"
	"matstore/internal/pred"
)

// RLEMini is a mini-column over run-length-encoded data: a sorted slice of
// triples exactly tiling the covering range. It supports the paper's
// "operate an entire run length in one operator loop" style: filtering is
// O(runs), extraction is a merge of runs with the position descriptor, and
// summation multiplies value by overlap length.
type RLEMini struct {
	cov     positions.Range
	triples []Triple
}

// NewRLEMini builds an RLE mini-column from triples clipped to cov. Triples
// must be sorted, non-overlapping, and tile cov exactly.
func NewRLEMini(cov positions.Range, triples []Triple) *RLEMini {
	for i, t := range triples {
		if t.Len <= 0 {
			panic(fmt.Sprintf("encoding: empty RLE run %+v", t))
		}
		if i > 0 && t.Start != triples[i-1].End() {
			panic(fmt.Sprintf("encoding: RLE runs not contiguous at %d", t.Start))
		}
	}
	if len(triples) > 0 {
		if triples[0].Start != cov.Start || triples[len(triples)-1].End() != cov.End {
			panic(fmt.Sprintf("encoding: RLE runs %v..%v do not tile cover %v",
				triples[0].Cover(), triples[len(triples)-1].Cover(), cov))
		}
	} else if !cov.Empty() {
		panic("encoding: non-empty cover with no RLE runs")
	}
	return &RLEMini{cov: cov, triples: triples}
}

// RLEMiniFromValues RLE-encodes vals (positions start..start+len) — a
// convenience for tests.
func RLEMiniFromValues(start int64, vals []int64) *RLEMini {
	var ts []Triple
	for i := 0; i < len(vals); {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		ts = append(ts, Triple{Value: vals[i], Start: start + int64(i), Len: int64(j - i)})
		i = j
	}
	return NewRLEMini(positions.Range{Start: start, End: start + int64(len(vals))}, ts)
}

// Kind returns RLE.
func (m *RLEMini) Kind() Kind { return RLE }

// Covering returns the window's position range.
func (m *RLEMini) Covering() positions.Range { return m.cov }

// Triples exposes the runs (read-only) for operators that work directly on
// compressed data, e.g. the RLE-aware aggregator.
func (m *RLEMini) Triples() []Triple { return m.triples }

// AvgRunLen returns the mean run length (the RL model parameter).
func (m *RLEMini) AvgRunLen() float64 {
	if len(m.triples) == 0 {
		return 1
	}
	return float64(m.cov.Len()) / float64(len(m.triples))
}

func (m *RLEMini) triple(pos int64) int {
	i := sort.Search(len(m.triples), func(i int) bool { return m.triples[i].End() > pos })
	if i == len(m.triples) || pos < m.triples[i].Start {
		panic(fmt.Sprintf("encoding: position %d outside RLE mini-column %v", pos, m.cov))
	}
	return i
}

// ValueAt returns the value at pos.
func (m *RLEMini) ValueAt(pos int64) int64 { return m.triples[m.triple(pos)].Value }

// Filter applies p once per run, emitting whole runs (this is why RLE
// predicate outputs are naturally position ranges). Interval-shaped
// predicates compile to one two-comparison interval test per run —
// compressed data is filtered without expansion and without per-run operator
// dispatch; non-interval predicates fall back to a compiled scalar matcher.
func (m *RLEMini) Filter(p pred.Predicate) positions.Set {
	b := positions.NewBuilder(m.cov)
	if lo, hi, ok := p.Interval(); ok {
		for _, t := range m.triples {
			if t.Value >= lo && t.Value <= hi {
				b.AddRange(t.Cover())
			}
		}
		return b.Build()
	}
	match := pred.CompileMatcher(p)
	for _, t := range m.triples {
		if match(t.Value) {
			b.AddRange(t.Cover())
		}
	}
	return b.Build()
}

// FilterAt applies p to the runs overlapping ps, with the same run-at-a-time
// interval kernel as Filter.
func (m *RLEMini) FilterAt(ps positions.Set, p pred.Predicate) positions.Set {
	lo, hi, intervalOK := p.Interval()
	var match pred.Matcher
	if !intervalOK {
		match = pred.CompileMatcher(p)
	}
	b := positions.NewBuilder(m.cov)
	it := ps.Runs()
	ti := 0
	for {
		r, ok := it.Next()
		if !ok {
			return b.Build()
		}
		r = r.Intersect(m.cov)
		if r.Empty() {
			continue
		}
		// Runs arrive in ascending order, so advance ti monotonically.
		for ti < len(m.triples) && m.triples[ti].End() <= r.Start {
			ti++
		}
		for tj := ti; tj < len(m.triples) && m.triples[tj].Start < r.End; tj++ {
			v := m.triples[tj].Value
			if intervalOK {
				if v < lo || v > hi {
					continue
				}
			} else if !match(v) {
				continue
			}
			if o := m.triples[tj].Cover().Intersect(r); !o.Empty() {
				b.AddRange(o)
			}
		}
	}
}

// filterScalar is the retained per-run reference implementation of Filter:
// one Predicate.Match dispatch per run. The differential kernel suite checks
// the interval kernel against it; it is not used by query execution.
func (m *RLEMini) filterScalar(p pred.Predicate) positions.Set {
	b := positions.NewBuilder(m.cov)
	for _, t := range m.triples {
		if p.Match(t.Value) {
			b.AddRange(t.Cover())
		}
	}
	return b.Build()
}

// filterAtScalar is the retained reference implementation of FilterAt (see
// filterScalar).
func (m *RLEMini) filterAtScalar(ps positions.Set, p pred.Predicate) positions.Set {
	b := positions.NewBuilder(m.cov)
	it := ps.Runs()
	ti := 0
	for {
		r, ok := it.Next()
		if !ok {
			return b.Build()
		}
		r = r.Intersect(m.cov)
		if r.Empty() {
			continue
		}
		for ti < len(m.triples) && m.triples[ti].End() <= r.Start {
			ti++
		}
		for tj := ti; tj < len(m.triples) && m.triples[tj].Start < r.End; tj++ {
			if p.Match(m.triples[tj].Value) {
				if o := m.triples[tj].Cover().Intersect(r); !o.Empty() {
					b.AddRange(o)
				}
			}
		}
	}
}

// Extract appends the values at ps to dst; each overlapping run contributes
// value × overlap copies.
func (m *RLEMini) Extract(dst []int64, ps positions.Set) []int64 {
	it := ps.Runs()
	ti := 0
	for {
		r, ok := it.Next()
		if !ok {
			return dst
		}
		r = r.Intersect(m.cov)
		if r.Empty() {
			continue
		}
		for ti < len(m.triples) && m.triples[ti].End() <= r.Start {
			ti++
		}
		for tj := ti; tj < len(m.triples) && m.triples[tj].Start < r.End; tj++ {
			o := m.triples[tj].Cover().Intersect(r)
			for k := int64(0); k < o.Len(); k++ {
				dst = append(dst, m.triples[tj].Value)
			}
		}
	}
}

// Decompress expands every run into dst.
func (m *RLEMini) Decompress(dst []int64) []int64 {
	for _, t := range m.triples {
		for k := int64(0); k < t.Len; k++ {
			dst = append(dst, t.Value)
		}
	}
	return dst
}

// MemBytes estimates the window's heap footprint: one triple (value, start,
// length) per run.
func (m *RLEMini) MemBytes() int64 { return 24 * int64(len(m.triples)) }

// statsRange aggregates whole runs: each overlapping triple contributes
// value×overlap to the sum and overlap to the count in O(1).
func (m *RLEMini) statsRange(r positions.Range) RunStats {
	r = r.Intersect(m.cov)
	if r.Empty() {
		return RunStats{}
	}
	var st RunStats
	for ti := m.triple(r.Start); ti < len(m.triples) && m.triples[ti].Start < r.End; ti++ {
		o := m.triples[ti].Cover().Intersect(r)
		if o.Empty() {
			continue
		}
		v := m.triples[ti].Value
		st.merge(RunStats{Sum: v * o.Len(), Count: o.Len(), Min: v, Max: v})
	}
	return st
}

func (m *RLEMini) sumRange(r positions.Range) int64 {
	r = r.Intersect(m.cov)
	if r.Empty() {
		return 0
	}
	var sum int64
	for ti := m.triple(r.Start); ti < len(m.triples) && m.triples[ti].Start < r.End; ti++ {
		o := m.triples[ti].Cover().Intersect(r)
		sum += m.triples[ti].Value * o.Len()
	}
	return sum
}
