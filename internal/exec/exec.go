// Package exec implements the morsel-driven parallel execution layer: it
// partitions a projection's position space into contiguous, chunk-aligned
// morsels (runs of 64KB-block chunks), fans them out to a bounded worker
// pool, and leaves deterministic recombination of the per-morsel partial
// results to the caller (partials are indexed by morsel, so merging in
// morsel order reproduces sequential block order exactly).
//
// The unit of parallelism is the independent column block range — the same
// horizontal partition the chunk-at-a-time executor already uses — so a
// morsel worker runs an unmodified single-threaded strategy plan over its
// sub-range. Workers share nothing but the (concurrency-safe) buffer pool.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"matstore/internal/positions"
)

// DefaultMorselsPerWorker is the number of morsels carved per worker when
// the extent allows it: a few morsels per worker lets fast workers steal
// trailing work from slow ones (predicate selectivity can be very skewed
// across a sorted column) without fragmenting results.
const DefaultMorselsPerWorker = 4

// MaxMorselsPerWorker bounds adaptive morsel refinement: past this point the
// per-morsel scheduling and merge overhead outweighs any stealing benefit.
const MaxMorselsPerWorker = 16

// AdaptiveMorselsPerWorker maps an observed per-morsel selectivity skew —
// the coefficient of variation of matched-positions density across a prior
// run's morsels — to a morsels-per-worker factor. Uniform selectivity
// (skew ~0) keeps the default coarse carving; heavily skewed predicates
// (e.g. a range over a sorted column, where most morsels match nothing and
// a few match everything) carve finer morsels so the workers stuck in the
// dense region shed trailing work to idle ones. NaN or non-positive skew
// (no observation yet) selects the default.
func AdaptiveMorselsPerWorker(skew float64) int64 {
	if skew != skew || skew <= 0 { // NaN-safe: unobserved or uniform
		return DefaultMorselsPerWorker
	}
	per := DefaultMorselsPerWorker * (1 + 2*skew)
	if per > MaxMorselsPerWorker {
		return MaxMorselsPerWorker
	}
	return int64(per)
}

// Resolve maps a query's requested parallelism to an effective worker
// count: 0 (auto) becomes the scheduler's CPU allowance, negative values
// are treated as auto, and explicit counts pass through.
func Resolve(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Share returns the fair per-query slice of a global worker budget divided
// across inflight concurrent queries: budget/inflight rounded down, never
// below 1 (every admitted query makes progress) and never above the budget.
// The admission governor derates each query's parallelism with this so P
// concurrent queries never oversubscribe the pool.
func Share(budget, inflight int) int {
	if budget < 1 {
		budget = 1
	}
	if inflight < 1 {
		inflight = 1
	}
	share := budget / inflight
	if share < 1 {
		return 1
	}
	return share
}

// Morsels partitions extent into contiguous morsels whose boundaries fall
// on chunk boundaries relative to extent.Start, so that chunking a morsel
// reproduces exactly the chunks sequential execution would have visited.
// With one worker (or one chunk) the extent is returned whole — the serial
// path stays byte-for-byte the chunk-at-a-time executor. extent.Start must
// be 64-aligned (it is 0 for every stored column) so bit-vector windows and
// bitmap descriptors stay word-aligned inside every morsel.
func Morsels(extent positions.Range, chunkSize int64, workers int) []positions.Range {
	return MorselsN(extent, chunkSize, workers, DefaultMorselsPerWorker)
}

// MorselsN is Morsels with an explicit morsels-per-worker factor — the knob
// adaptive sizing turns (AdaptiveMorselsPerWorker). Any factor produces the
// same covering partition of extent in the same block order, so result
// merging is byte-identical regardless of the carving.
func MorselsN(extent positions.Range, chunkSize int64, workers int, perWorker int64) []positions.Range {
	if extent.Empty() {
		return nil
	}
	if chunkSize <= 0 || chunkSize%64 != 0 {
		panic(fmt.Sprintf("exec: chunk size %d must be a positive multiple of 64", chunkSize))
	}
	if extent.Start%64 != 0 {
		panic(fmt.Sprintf("exec: extent start %d not 64-aligned", extent.Start))
	}
	if perWorker < 1 {
		perWorker = 1
	}
	numChunks := (extent.Len() + chunkSize - 1) / chunkSize
	if workers <= 1 || numChunks <= 1 {
		return []positions.Range{extent}
	}
	target := int64(workers) * perWorker
	if target > numChunks {
		target = numChunks
	}
	chunksPer := (numChunks + target - 1) / target
	step := chunksPer * chunkSize
	out := make([]positions.Range, 0, (extent.Len()+step-1)/step)
	for start := extent.Start; start < extent.End; start += step {
		end := start + step
		if end > extent.End {
			end = extent.End
		}
		out = append(out, positions.Range{Start: start, End: end})
	}
	return out
}

// Run executes fn(task) for every task in [0, tasks) on at most workers
// goroutines, handing out tasks from a shared counter (morsel-driven
// work stealing: whichever worker is free takes the next morsel). With one
// worker it degenerates to an in-place loop on the calling goroutine.
//
// On failure the first error in task order is returned and no new tasks are
// started; already-running tasks finish first, so fn never runs after Run
// returns.
func Run(workers, tasks int, fn func(task int) error) error {
	if tasks <= 0 {
		return nil
	}
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			if err := fn(t); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, tasks)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				if err := fn(t); err != nil {
					errs[t] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
