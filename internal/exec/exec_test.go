package exec

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"matstore/internal/positions"
)

func TestMorselsCoverExtentExactly(t *testing.T) {
	for _, tc := range []struct {
		extent    positions.Range
		chunkSize int64
		workers   int
	}{
		{positions.Range{Start: 0, End: 60_000}, 65536, 4}, // fewer rows than one chunk
		{positions.Range{Start: 0, End: 60_000}, 1024, 4},
		{positions.Range{Start: 0, End: 60_000}, 1024, 1},
		{positions.Range{Start: 0, End: 1}, 64, 8},
		{positions.Range{Start: 0, End: 1 << 20}, 65536, 3},
		{positions.Range{Start: 0, End: 65536*7 + 13}, 65536, 2},
	} {
		ms := Morsels(tc.extent, tc.chunkSize, tc.workers)
		if len(ms) == 0 {
			t.Fatalf("%+v: no morsels", tc)
		}
		// Morsels are contiguous, ordered, non-empty, chunk-aligned, and
		// cover the extent exactly.
		if ms[0].Start != tc.extent.Start || ms[len(ms)-1].End != tc.extent.End {
			t.Errorf("%+v: morsels %v do not span extent", tc, ms)
		}
		for i, m := range ms {
			if m.Empty() {
				t.Errorf("%+v: empty morsel %v", tc, m)
			}
			if i > 0 && m.Start != ms[i-1].End {
				t.Errorf("%+v: gap between %v and %v", tc, ms[i-1], m)
			}
			if (m.Start-tc.extent.Start)%tc.chunkSize != 0 {
				t.Errorf("%+v: morsel start %d not chunk-aligned", tc, m.Start)
			}
		}
	}
}

func TestMorselsSerialIsWholeExtent(t *testing.T) {
	extent := positions.Range{Start: 0, End: 1 << 20}
	ms := Morsels(extent, 65536, 1)
	if len(ms) != 1 || ms[0] != extent {
		t.Errorf("workers=1 morsels = %v, want [%v]", ms, extent)
	}
}

func TestMorselsEmptyExtent(t *testing.T) {
	if ms := Morsels(positions.Range{}, 65536, 4); ms != nil {
		t.Errorf("empty extent morsels = %v", ms)
	}
}

func TestMorselsParallelSplits(t *testing.T) {
	// 16 chunks, 4 workers: expect more than one morsel and at most
	// workers*DefaultMorselsPerWorker.
	ms := Morsels(positions.Range{Start: 0, End: 16 * 1024}, 1024, 4)
	if len(ms) < 2 || len(ms) > 4*DefaultMorselsPerWorker {
		t.Errorf("got %d morsels", len(ms))
	}
}

func TestResolve(t *testing.T) {
	if Resolve(3) != 3 {
		t.Error("explicit parallelism not passed through")
	}
	if Resolve(0) < 1 || Resolve(-1) < 1 {
		t.Error("auto parallelism below 1")
	}
}

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const tasks = 100
		var counts [tasks]atomic.Int64
		err := Run(workers, tasks, func(task int) error {
			counts[task].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if n := counts[i].Load(); n != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestRunReturnsFirstErrorInTaskOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Run(workers, 50, func(task int) error {
			if task >= 10 {
				return fmt.Errorf("task %d failed", task)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// Serial execution stops at the first failing task; parallel
		// execution reports the lowest-index failure among those started.
		if workers == 1 && err.Error() != "task 10 failed" {
			t.Errorf("serial error = %v", err)
		}
	}
}

func TestRunStopsDispatchAfterError(t *testing.T) {
	sentinel := errors.New("boom")
	var started atomic.Int64
	err := Run(2, 1000, func(task int) error {
		started.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n > 2 {
		t.Errorf("%d tasks started after failure", n)
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestMorselsNCoversAtEveryFactor checks that every morsels-per-worker
// factor produces a contiguous, chunk-aligned, covering partition — the
// invariant that makes adaptive re-carving safe for byte-identical merges.
func TestMorselsNCoversAtEveryFactor(t *testing.T) {
	extent := positions.Range{Start: 0, End: 64*37 + 11}
	for _, perWorker := range []int64{0, 1, 4, 16, 100} {
		ms := MorselsN(extent, 64, 4, perWorker)
		if len(ms) == 0 {
			t.Fatalf("perWorker=%d: no morsels", perWorker)
		}
		if ms[0].Start != extent.Start || ms[len(ms)-1].End != extent.End {
			t.Errorf("perWorker=%d: morsels %v do not span extent", perWorker, ms)
		}
		for i, m := range ms {
			if m.Empty() || (i > 0 && m.Start != ms[i-1].End) || (m.Start-extent.Start)%64 != 0 {
				t.Errorf("perWorker=%d: bad morsel %d: %v", perWorker, i, m)
			}
		}
	}
	// A larger factor must not carve fewer morsels.
	coarse := MorselsN(extent, 64, 4, 2)
	fine := MorselsN(extent, 64, 4, 8)
	if len(fine) < len(coarse) {
		t.Errorf("finer factor carved fewer morsels: %d < %d", len(fine), len(coarse))
	}
}

// TestAdaptiveMorselsPerWorker pins the skew → factor mapping: unobserved or
// uniform selectivity keeps the default, increasing skew carves finer
// morsels, bounded by MaxMorselsPerWorker, and NaN is treated as unobserved.
func TestAdaptiveMorselsPerWorker(t *testing.T) {
	if got := AdaptiveMorselsPerWorker(0); got != DefaultMorselsPerWorker {
		t.Errorf("skew 0 → %d, want %d", got, DefaultMorselsPerWorker)
	}
	if got := AdaptiveMorselsPerWorker(-1); got != DefaultMorselsPerWorker {
		t.Errorf("negative skew → %d, want %d", got, DefaultMorselsPerWorker)
	}
	if got := AdaptiveMorselsPerWorker(math.NaN()); got != DefaultMorselsPerWorker {
		t.Errorf("NaN skew → %d, want %d", got, DefaultMorselsPerWorker)
	}
	mid := AdaptiveMorselsPerWorker(0.5)
	if mid <= DefaultMorselsPerWorker || mid > MaxMorselsPerWorker {
		t.Errorf("skew 0.5 → %d, want in (%d, %d]", mid, DefaultMorselsPerWorker, MaxMorselsPerWorker)
	}
	high := AdaptiveMorselsPerWorker(10)
	if high != MaxMorselsPerWorker {
		t.Errorf("skew 10 → %d, want %d", high, MaxMorselsPerWorker)
	}
	if mid > high {
		t.Errorf("factor not monotone: %d > %d", mid, high)
	}
}

// TestShare pins the fair-share derating the admission governor applies:
// budget/inflight rounded down, floored at 1, capped at the budget.
func TestShare(t *testing.T) {
	for _, tc := range []struct {
		budget, inflight, want int
	}{
		{4, 1, 4},
		{4, 2, 2},
		{4, 3, 1},
		{4, 4, 1},
		{4, 100, 1}, // oversubscribed: everyone still makes progress
		{1, 1, 1},
		{1, 8, 1},
		{8, 3, 2},
		{0, 1, 1}, // degenerate budget
		{4, 0, 4}, // degenerate inflight
		{-2, -1, 1},
	} {
		if got := Share(tc.budget, tc.inflight); got != tc.want {
			t.Errorf("Share(%d, %d) = %d, want %d", tc.budget, tc.inflight, got, tc.want)
		}
	}
}
