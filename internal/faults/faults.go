// Package faults is a site-keyed failpoint registry for fault-injection
// testing. Production code calls Check (or WriteOutcome for write paths) at
// named sites; tests and the csserve -faults flag arm sites with a Failpoint
// describing what to inject: a hard error, a short write, or slow IO. With no
// sites armed the hot-path cost is one atomic load, so the hooks stay compiled
// into release binaries and the fault matrix runs against the real code.
//
// Sites currently wired:
//
//	spill.create   – creating a spill partition temp file
//	spill.write    – writing a spill frame (error and short-write modes)
//	spill.read     – reading a spill frame back during the probe
//	cache.demote   – writing a demoted build-cache entry
//	cache.rehydrate– reading a demoted build-cache entry back
//	mem.reserve    – allocation-pressure hook inside memory.Governor.TryReserve
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by armed Error/ShortWrite sites.
var ErrInjected = errors.New("faults: injected failure")

// Mode selects what an armed site injects.
type Mode uint8

const (
	// Error makes Check/WriteOutcome return ErrInjected (or Failpoint.Err).
	Error Mode = iota
	// ShortWrite makes WriteOutcome report half the buffer written before
	// failing, so partially-flushed files exist on disk. Check treats it
	// like Error.
	ShortWrite
	// Slow sleeps Failpoint.Delay (default 10ms) and then proceeds.
	Slow
)

// Failpoint describes one armed site.
type Failpoint struct {
	Mode Mode
	// After skips the first After hits: the fault fires from hit After+1 on.
	// Zero fires on every hit.
	After int64
	// Delay is the Slow-mode sleep; zero means 10ms.
	Delay time.Duration
	// Err overrides ErrInjected for Error/ShortWrite.
	Err error
}

type site struct {
	fp   Failpoint
	hits atomic.Int64
}

var (
	mu     sync.Mutex
	sites  = map[string]*site{}
	hits   = map[string]*atomic.Int64{} // survives Disable, for test assertions
	nArmed atomic.Int64
)

// Enable arms a site. Re-enabling replaces the failpoint but keeps the
// cumulative hit counter.
func Enable(name string, fp Failpoint) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; !ok {
		nArmed.Add(1)
	}
	sites[name] = &site{fp: fp}
	if hits[name] == nil {
		hits[name] = &atomic.Int64{}
	}
}

// Disable disarms a site; its hit counter is preserved until Reset.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		nArmed.Add(-1)
	}
}

// Reset disarms every site and clears all hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	nArmed.Add(-int64(len(sites)))
	sites = map[string]*site{}
	hits = map[string]*atomic.Int64{}
}

// Hits reports how many times an armed site was reached (armed hits only).
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if h := hits[name]; h != nil {
		return h.Load()
	}
	return 0
}

// Armed reports the armed site names, sorted, for diagnostics.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for name := range sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func lookup(name string) (Failpoint, bool) {
	mu.Lock()
	defer mu.Unlock()
	s, ok := sites[name]
	if !ok {
		return Failpoint{}, false
	}
	hits[name].Add(1)
	n := s.hits.Add(1)
	if n <= s.fp.After {
		return Failpoint{}, false
	}
	return s.fp, true
}

// Check is the generic hook: nil unless the site is armed and past its After
// threshold. Slow mode sleeps and returns nil.
func Check(name string) error {
	if nArmed.Load() == 0 {
		return nil
	}
	fp, fire := lookup(name)
	if !fire {
		return nil
	}
	switch fp.Mode {
	case Slow:
		d := fp.Delay
		if d == 0 {
			d = 10 * time.Millisecond
		}
		time.Sleep(d)
		return nil
	default:
		if fp.Err != nil {
			return fp.Err
		}
		return ErrInjected
	}
}

// WriteOutcome is the write-path hook: for a pending write of size bytes it
// returns (-1, nil) when the write should proceed normally, or (n, err) when
// the caller must write only the first n bytes and fail with err. ShortWrite
// yields n = size/2 so tests exercise truncated frames on disk.
func WriteOutcome(name string, size int) (int, error) {
	if nArmed.Load() == 0 {
		return -1, nil
	}
	fp, fire := lookup(name)
	if !fire {
		return -1, nil
	}
	err := fp.Err
	if err == nil {
		err = ErrInjected
	}
	switch fp.Mode {
	case Slow:
		d := fp.Delay
		if d == 0 {
			d = 10 * time.Millisecond
		}
		time.Sleep(d)
		return -1, nil
	case ShortWrite:
		return size / 2, err
	default:
		return 0, err
	}
}

// Parse arms sites from a csserve-style spec: comma-separated
// "site=mode[:after]" clauses where mode is error|short|slow, e.g.
// "spill.write=error,spill.read=slow:3".
func Parse(spec string) error {
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok || name == "" {
			return fmt.Errorf("faults: bad clause %q (want site=mode[:after])", clause)
		}
		modeStr, afterStr, _ := strings.Cut(rest, ":")
		var fp Failpoint
		switch modeStr {
		case "error":
			fp.Mode = Error
		case "short":
			fp.Mode = ShortWrite
		case "slow":
			fp.Mode = Slow
		default:
			return fmt.Errorf("faults: bad mode %q in %q (want error|short|slow)", modeStr, clause)
		}
		if afterStr != "" {
			n, err := strconv.ParseInt(afterStr, 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("faults: bad after count in %q", clause)
			}
			fp.After = n
		}
		Enable(name, fp)
	}
	return nil
}
