package faults

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedIsFree(t *testing.T) {
	Reset()
	if err := Check("nope"); err != nil {
		t.Fatalf("unarmed Check: %v", err)
	}
	if n, err := WriteOutcome("nope", 100); n != -1 || err != nil {
		t.Fatalf("unarmed WriteOutcome: n=%d err=%v", n, err)
	}
	if Hits("nope") != 0 {
		t.Fatalf("unarmed site counted hits")
	}
}

func TestErrorModeAndAfter(t *testing.T) {
	Reset()
	defer Reset()
	Enable("x", Failpoint{Mode: Error, After: 2})
	for i := 0; i < 2; i++ {
		if err := Check("x"); err != nil {
			t.Fatalf("hit %d fired early: %v", i+1, err)
		}
	}
	if err := Check("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3 should inject, got %v", err)
	}
	if got := Hits("x"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
	Disable("x")
	if err := Check("x"); err != nil {
		t.Fatalf("disabled site fired: %v", err)
	}
	// Hit counter survives Disable for post-run assertions.
	if got := Hits("x"); got != 3 {
		t.Fatalf("Hits after disable = %d, want 3", got)
	}
}

func TestShortWrite(t *testing.T) {
	Reset()
	defer Reset()
	custom := errors.New("disk gremlin")
	Enable("w", Failpoint{Mode: ShortWrite, Err: custom})
	n, err := WriteOutcome("w", 64)
	if n != 32 || !errors.Is(err, custom) {
		t.Fatalf("short write: n=%d err=%v, want 32/%v", n, err, custom)
	}
	// Check treats ShortWrite as a plain error.
	if err := Check("w"); !errors.Is(err, custom) {
		t.Fatalf("Check on short-write site: %v", err)
	}
}

func TestSlowMode(t *testing.T) {
	Reset()
	defer Reset()
	Enable("s", Failpoint{Mode: Slow, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := Check("s"); err != nil {
		t.Fatalf("slow mode errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("slow mode returned in %v", elapsed)
	}
	if n, err := WriteOutcome("s", 10); n != -1 || err != nil {
		t.Fatalf("slow WriteOutcome should proceed: n=%d err=%v", n, err)
	}
}

func TestParse(t *testing.T) {
	Reset()
	defer Reset()
	if err := Parse("a.b=error, c.d=short:5 ,e.f=slow"); err != nil {
		t.Fatal(err)
	}
	armed := Armed()
	if len(armed) != 3 || armed[0] != "a.b" || armed[1] != "c.d" || armed[2] != "e.f" {
		t.Fatalf("Armed = %v", armed)
	}
	if err := Check("a.b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("parsed error site: %v", err)
	}
	// c.d has After=5: first five hits pass.
	for i := 0; i < 5; i++ {
		if err := Check("c.d"); err != nil {
			t.Fatalf("c.d fired early: %v", err)
		}
	}
	if err := Check("c.d"); err == nil {
		t.Fatal("c.d should fire on hit 6")
	}
	for _, bad := range []string{"noequals", "x=banana", "x=error:-1", "=error"} {
		if err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}
