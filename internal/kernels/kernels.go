// Package kernels implements the specialized scan and gather inner loops the
// data sources run on: compiled-predicate filtering that emits 64 results at
// a time as bitmap words (no per-value operator dispatch, no intermediate
// run list), and bit-scatter loops for gathering values out of bit-vector
// blocks. It sits below encoding and storage — those layers supply the data
// in its native format and this layer supplies the tight loops — mirroring
// the format-direct operator style of MorphStore and C-Store.
package kernels

import (
	"math/bits"

	"matstore/internal/positions"
	"matstore/internal/pred"
)

// filterTileVals is the number of values a compiled kernel evaluates per
// tile: 64 output words on the stack, merged into the destination bitmap in
// one pass. Tiling keeps the unaligned (shifted) merge allocation-free.
const filterTileVals = 64 * 64

// FilterIntoBitmap evaluates the compiled kernel k over vals — whose first
// value sits at position base — and ORs the resulting comparison bits into
// bm. The bitmap must cover [base, base+len(vals)); base need not be
// 64-aligned (plain blocks hold 8188 values, so mid-chunk segments start at
// arbitrary bit offsets) — misaligned emissions are shifted word-at-a-time.
func FilterIntoBitmap(bm *positions.Bitmap, base int64, vals []int64, k pred.Kernel) {
	off := base - bm.Start()
	var tile [filterTileVals / 64]uint64
	for len(vals) > 0 {
		n := len(vals)
		if n > filterTileVals {
			n = filterTileVals
		}
		nw := (n + 63) / 64
		k(vals[:n], tile[:nw])
		orWords(bm, off, tile[:nw])
		off += int64(n)
		vals = vals[n:]
	}
}

// orWords ORs the given result words into bm starting at bit offset bitOff
// (relative to the bitmap start). Zero words are skipped, so sparse filter
// results cost only the comparison loop.
func orWords(bm *positions.Bitmap, bitOff int64, words []uint64) {
	wi := bitOff >> 6
	sh := uint(bitOff & 63)
	if sh == 0 {
		for i, w := range words {
			if w != 0 {
				bm.OrWordAt(wi+int64(i), w)
			}
		}
		return
	}
	for i, w := range words {
		if w == 0 {
			continue
		}
		bm.OrWordAt(wi+int64(i), w<<sh)
		if hi := w >> (64 - sh); hi != 0 {
			bm.OrWordAt(wi+int64(i)+1, hi)
		}
	}
}

// ScatterBits writes v into out at the slots of the set bits of words within
// the window r: a set bit at global position p (with words[j] holding bits
// [bitBase+64j, bitBase+64j+64)) stores v at out[dstOff+(p-r.Start)]. It is
// the per-(distinct value, block, run) inner loop of the batched bit-vector
// gather: each decoded block's words are consumed in place, one
// TrailingZeros per set bit, with edge words masked rather than tested
// bit-by-bit. r must lie within the bit range covered by words.
func ScatterBits(out []int64, v int64, words []uint64, bitBase int64, r positions.Range, dstOff int64) {
	if r.Empty() {
		return
	}
	lo, hi := r.Start-bitBase, r.End-bitBase
	lw, hw := lo>>6, (hi-1)>>6
	outBase := dstOff - (r.Start - bitBase) // out index of local bit 0
	for wj := lw; wj <= hw; wj++ {
		w := words[wj]
		if wj == lw {
			w &= ^uint64(0) << uint(lo&63)
		}
		if wj == hw {
			if t := hi & 63; t != 0 {
				w &= (1 << uint(t)) - 1
			}
		}
		for w != 0 {
			b := int64(bits.TrailingZeros64(w))
			out[outBase+wj<<6+b] = v
			w &= w - 1
		}
	}
}
