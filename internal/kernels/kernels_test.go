package kernels

import (
	"math/rand"
	"testing"

	"matstore/internal/positions"
	"matstore/internal/pred"
)

// TestFilterIntoBitmapAlignment drives the word-emission path across every
// alignment class a plain window can produce: segment bases on and off word
// boundaries (plain blocks hold 8188 values, 8188 % 64 = 60), segment
// lengths spanning full-word, partial-word and tile boundaries, and adjacent
// segments whose emissions meet inside a shared word.
func TestFilterIntoBitmapAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := pred.InRange(3, 8)
	k := pred.Compile(p)
	for _, base := range []int64{0, 1, 60, 63, 64, 127, 8188} {
		for _, n := range []int{0, 1, 4, 63, 64, 65, 100, 4095, 4096, 4097, 8200} {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = rng.Int63n(10)
			}
			bm := positions.NewBitmap(0, base+int64(n)+7)
			FilterIntoBitmap(bm, base, vals, k)
			for i, v := range vals {
				want := p.Match(v)
				if got := bm.Contains(base + int64(i)); got != want {
					t.Fatalf("base=%d n=%d i=%d v=%d: got %v want %v", base, n, i, v, got, want)
				}
			}
			// No bit outside [base, base+n) may be set.
			if c := bm.Count(); c != countMatches(vals, p) {
				t.Fatalf("base=%d n=%d: count %d, want %d", base, n, c, countMatches(vals, p))
			}
		}
	}
}

// TestFilterIntoBitmapAdjacentSegments checks that two emissions meeting
// mid-word OR together instead of clobbering each other.
func TestFilterIntoBitmapAdjacentSegments(t *testing.T) {
	k := pred.Compile(pred.MatchAll)
	bm := positions.NewBitmap(0, 256)
	FilterIntoBitmap(bm, 0, make([]int64, 100), k)   // [0,100)
	FilterIntoBitmap(bm, 100, make([]int64, 60), k)  // [100,160), both ends mid-word
	FilterIntoBitmap(bm, 200, make([]int64, 56), k)  // [200,256), gap before
	want := positions.NewRanges(positions.Range{Start: 0, End: 160}, positions.Range{Start: 200, End: 256})
	if !positions.Equal(bm, want) {
		t.Fatalf("got %v want %v", positions.ToRanges(bm), want)
	}
}

func countMatches(vals []int64, p pred.Predicate) int64 {
	var n int64
	for _, v := range vals {
		if p.Match(v) {
			n++
		}
	}
	return n
}

// TestScatterBits exercises the bit-scatter gather loop across window edges
// that start and end mid-word and bit patterns with empty and full words.
func TestScatterBits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const bitBase, nbits = 128, 512
	words := make([]uint64, nbits/64)
	for i := range words {
		switch i % 3 {
		case 0:
			words[i] = rng.Uint64()
		case 1:
			words[i] = 0
		default:
			words[i] = ^uint64(0)
		}
	}
	contains := func(p int64) bool {
		i := p - bitBase
		return words[i>>6]&(1<<uint(i&63)) != 0
	}
	for _, r := range []positions.Range{
		{Start: 128, End: 640},
		{Start: 130, End: 139},
		{Start: 191, End: 193},
		{Start: 200, End: 200}, // empty
		{Start: 576, End: 640},
	} {
		const dstOff = 5
		out := make([]int64, dstOff+r.Len()+3)
		for i := range out {
			out[i] = -1
		}
		ScatterBits(out, 42, words, bitBase, r, dstOff)
		for p := r.Start; p < r.End; p++ {
			want := int64(-1)
			if contains(p) {
				want = 42
			}
			if got := out[dstOff+p-r.Start]; got != want {
				t.Fatalf("window %v pos %d: got %d want %d", r, p, got, want)
			}
		}
		// Slots outside the window untouched.
		for i := 0; i < dstOff; i++ {
			if out[i] != -1 {
				t.Fatalf("window %v: wrote before dstOff", r)
			}
		}
		for i := dstOff + int(r.Len()); i < len(out); i++ {
			if out[i] != -1 {
				t.Fatalf("window %v: wrote past window", r)
			}
		}
	}
}
