// Package memory is the process-wide byte-budget governor. Queries reserve
// their predicted working-set bytes before allocating; the reservation is
// released when the query finishes or its context is cancelled. The invariant
// the concurrent suite pins: the sum of outstanding reservations never
// exceeds the budget, so a correctly-estimated workload cannot OOM — it
// either runs in memory, runs in spill mode under a smaller reservation,
// queues, or is shed.
package memory

import (
	"context"
	"errors"
	"sync"
	"time"

	"matstore/internal/faults"
)

// ErrShed is returned when the governor refuses to queue a request: either
// the ask exceeds the whole budget's spill floor or too many requests are
// already waiting. Servers map it to HTTP 503 + Retry-After.
var ErrShed = errors.New("memory: overloaded, shedding load")

// DefaultMaxWaiters bounds the Reserve queue before the governor sheds.
const DefaultMaxWaiters = 32

// Governor tracks reserved bytes against a fixed budget.
type Governor struct {
	mu   sync.Mutex
	cond *sync.Cond

	budget     int64
	reserved   int64
	peak       int64
	waiters    int
	maxWaiters int

	grants    int64
	waited    int64
	shed      int64
	waitNanos int64
}

// New returns a governor over budget bytes. maxWaiters <= 0 uses
// DefaultMaxWaiters.
func New(budget int64, maxWaiters int) *Governor {
	if maxWaiters <= 0 {
		maxWaiters = DefaultMaxWaiters
	}
	g := &Governor{budget: budget, maxWaiters: maxWaiters}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Budget reports the configured byte budget.
func (g *Governor) Budget() int64 { return g.budget }

// A Reservation holds bytes against the governor until Release.
type Reservation struct {
	g     *Governor
	bytes int64
	once  sync.Once
}

// Bytes reports the reserved size.
func (r *Reservation) Bytes() int64 { return r.bytes }

// Release returns the bytes to the budget. Safe to call more than once and
// from deferred paths.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.once.Do(func() {
		g := r.g
		g.mu.Lock()
		g.reserved -= r.bytes
		g.mu.Unlock()
		g.cond.Broadcast()
	})
}

// TryReserve grants bytes immediately if they fit, else returns nil without
// queueing. The faults site "mem.reserve" simulates allocation pressure:
// when armed, TryReserve fails as if the budget were exhausted.
func (g *Governor) TryReserve(bytes int64) *Reservation {
	if bytes <= 0 {
		bytes = 1
	}
	if faults.Check("mem.reserve") != nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.reserved+bytes > g.budget {
		return nil
	}
	return g.grantLocked(bytes)
}

func (g *Governor) grantLocked(bytes int64) *Reservation {
	g.reserved += bytes
	if g.reserved > g.peak {
		g.peak = g.reserved
	}
	g.grants++
	return &Reservation{g: g, bytes: bytes}
}

// Reserve blocks until bytes fit within the budget, the context is cancelled,
// or the governor sheds. bytes larger than the whole budget are shed
// immediately (they could never be granted); more than maxWaiters queued
// requests also shed.
func (g *Governor) Reserve(ctx context.Context, bytes int64) (*Reservation, error) {
	if bytes <= 0 {
		bytes = 1
	}
	g.mu.Lock()
	if bytes > g.budget {
		g.shed++
		g.mu.Unlock()
		return nil, ErrShed
	}
	if g.reserved+bytes <= g.budget {
		r := g.grantLocked(bytes)
		g.mu.Unlock()
		return r, nil
	}
	if g.waiters >= g.maxWaiters {
		g.shed++
		g.mu.Unlock()
		return nil, ErrShed
	}
	g.waiters++
	g.waited++
	waitStart := time.Now()
	// Wake the cond.Wait below when the context dies; cond.Wait cannot
	// observe ctx on its own.
	stop := context.AfterFunc(ctx, func() { g.cond.Broadcast() })
	defer stop()
	for g.reserved+bytes > g.budget {
		if ctx.Err() != nil {
			g.waiters--
			g.waitNanos += time.Since(waitStart).Nanoseconds()
			g.mu.Unlock()
			return nil, ctx.Err()
		}
		g.cond.Wait()
	}
	g.waiters--
	g.waitNanos += time.Since(waitStart).Nanoseconds()
	r := g.grantLocked(bytes)
	g.mu.Unlock()
	return r, nil
}

// Pressured reports whether requests are currently queued for memory — the
// signal /readyz uses to fail fast before a load balancer sends more work.
func (g *Governor) Pressured() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters > 0
}

// Stats is a point-in-time snapshot.
type Stats struct {
	Budget       int64 `json:"budget"`
	Reserved     int64 `json:"reserved"`
	PeakReserved int64 `json:"peak_reserved"`
	Reservations int64 `json:"reservations"`
	Waiters      int   `json:"waiters"`
	Waited       int64 `json:"waited"`
	Shed         int64 `json:"shed_count"`
	// WaitNanos is the cumulative time Reserve calls spent blocked in the
	// queue (including waits that ended in cancellation).
	WaitNanos int64 `json:"wait_nanos"`
}

// Stats snapshots the governor counters.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Budget:       g.budget,
		Reserved:     g.reserved,
		PeakReserved: g.peak,
		Reservations: g.grants,
		Waiters:      g.waiters,
		Waited:       g.waited,
		Shed:         g.shed,
		WaitNanos:    g.waitNanos,
	}
}
