package memory

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"matstore/internal/faults"
)

func TestTryReserveBudget(t *testing.T) {
	g := New(100, 0)
	a := g.TryReserve(60)
	if a == nil {
		t.Fatal("first reservation should fit")
	}
	if g.TryReserve(50) != nil {
		t.Fatal("overcommit granted")
	}
	b := g.TryReserve(40)
	if b == nil {
		t.Fatal("exact fit refused")
	}
	a.Release()
	a.Release() // idempotent
	c := g.TryReserve(60)
	if c == nil {
		t.Fatal("release did not return bytes")
	}
	st := g.Stats()
	if st.Reserved != 100 || st.PeakReserved != 100 || st.Reservations != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReserveQueuesAndSheds(t *testing.T) {
	g := New(100, 1)
	hold := g.TryReserve(100)
	if hold == nil {
		t.Fatal("setup reservation failed")
	}
	// Oversized asks shed immediately.
	if _, err := g.Reserve(context.Background(), 101); !errors.Is(err, ErrShed) {
		t.Fatalf("oversized ask: %v", err)
	}
	// One waiter queues; a second exceeds maxWaiters=1 and sheds.
	got := make(chan *Reservation, 1)
	go func() {
		r, err := g.Reserve(context.Background(), 50)
		if err != nil {
			t.Error(err)
		}
		got <- r
	}()
	for !g.Pressured() {
		time.Sleep(time.Millisecond)
	}
	if _, err := g.Reserve(context.Background(), 10); !errors.Is(err, ErrShed) {
		t.Fatalf("second waiter should shed, got %v", err)
	}
	hold.Release()
	r := <-got
	if r == nil || r.Bytes() != 50 {
		t.Fatalf("queued reservation = %v", r)
	}
	r.Release()
	st := g.Stats()
	if st.Shed != 2 || st.Waited != 1 || st.Reserved != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReserveCancel(t *testing.T) {
	g := New(10, 0)
	hold := g.TryReserve(10)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Reserve(ctx, 5)
		errCh <- err
	}()
	for !g.Pressured() {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Reserve: %v", err)
	}
	hold.Release()
	if g.Stats().Waiters != 0 {
		t.Fatal("cancelled waiter leaked")
	}
	// Budget fully available again.
	if g.TryReserve(10) == nil {
		t.Fatal("budget not restored after cancel")
	}
}

func TestAllocationPressureFault(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	g := New(1 << 20, 0)
	faults.Enable("mem.reserve", faults.Failpoint{Mode: faults.Error})
	if g.TryReserve(1) != nil {
		t.Fatal("armed mem.reserve should refuse")
	}
	faults.Disable("mem.reserve")
	if g.TryReserve(1) == nil {
		t.Fatal("disarmed governor should grant")
	}
}

// TestConcurrentInvariant hammers the governor from many goroutines and
// checks, at every grant, that outstanding reservations never exceed the
// budget — the acceptance invariant for admission.
func TestConcurrentInvariant(t *testing.T) {
	const budget = 1000
	g := New(budget, 64)
	var outstanding atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				n := 1 + rng.Int63n(budget/2)
				r, err := g.Reserve(context.Background(), n)
				if err != nil {
					if !errors.Is(err, ErrShed) {
						t.Error(err)
					}
					continue
				}
				if total := outstanding.Add(n); total > budget {
					t.Errorf("outstanding %d > budget %d", total, budget)
				}
				outstanding.Add(-n)
				r.Release()
			}
		}(int64(w))
	}
	wg.Wait()
	if st := g.Stats(); st.Reserved != 0 {
		t.Fatalf("leaked %d reserved bytes", st.Reserved)
	}
}
