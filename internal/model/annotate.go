package model

import (
	"matstore/internal/plan"
	"matstore/internal/storage"
)

// This file annotates physical plans with per-node cost predictions: the
// same Figure 1–6 operator formulas the plan-level SelectionCost composes,
// but attached to the individual nodes of an internal/plan tree so that
// DB.Explain can show the model's prediction next to each node's observed
// execution — making advise/execution discrepancies attributable to a
// specific operator rather than a whole plan.

// AnnotatePlan walks the plan tree and fills every node's Modeled cost from
// the analytical model, deriving selectivities from catalog statistics
// (column min/max) and position-run lengths from the column sort flags.
// hot=false charges full scan I/O (the cold-start case).
func (m Constants) AnnotatePlan(p *plan.Plan, hot bool) {
	a := &annotator{m: m, hot: hot, p: p, accessed: map[string]bool{}}
	root := p.Root
	switch {
	case p.JoinProbe() != nil:
		a.join(root, p.JoinProbe())

	case root.Kind == plan.KindMerge:
		frac, rlp := a.pos(root.Children[0])
		matched := frac * a.tuples()
		for _, ds3 := range root.Children[1:] {
			cs := a.stats(ds3.Column)
			reuse := a.accessed[ds3.Col] && !p.Spec.DisableMultiColumn
			cpu, io := m.DS3(cs, matched, rlp, frac, reuse)
			setCost(ds3, cpu, io)
		}
		cpu := m.Merge(matched, len(root.Children)-1) + m.OutputIteration(matched)
		setCost(root, cpu, 0)

	case root.Kind == plan.KindAggregate && root.Children[0].PositionsDomain():
		frac, _ := a.pos(root.Children[0])
		matched := frac * a.tuples()
		groups := a.groups(frac)
		key := a.stats(root.MatColumns[0])
		// Aggregation directly on compressed mini-columns: walking key runs
		// plus emitting group tuples (the lmParallel/lmPipelined agg term).
		cpu := matched/key.rl()*(m.TICCOL+m.FC) + groups*m.TICTUP + m.OutputIteration(groups)
		setCost(root, cpu, 0)

	default:
		out := a.tuple(root.Children[0])
		if root.Kind == plan.KindAggregate {
			groups := a.groups(out / a.tuples())
			setCost(root, out*(m.TICTUP+m.FC)+groups*m.TICTUP+m.OutputIteration(groups), 0)
		} else {
			setCost(root, m.OutputIteration(out), 0)
		}
	}
}

type annotator struct {
	m   Constants
	hot bool
	p   *plan.Plan
	// accessed tracks columns the position subtree touched (their blocks
	// are pool-resident for DS3, the multi-column free-reuse case).
	accessed map[string]bool
}

// join annotates a join tree (PROJECT over JOINPROBE) with the Section 4.3
// cost terms: the blocking build over the inner table, the outer position
// scan (annotated by pos), the batched probe with its per-strategy payload
// access, and output iteration at the root. Output cardinality is estimated
// as the surviving outer fraction times the inner table's average matches
// per key (tuples over distinct keys — exact for the paper's FK join).
func (a *annotator) join(root, probe *plan.Node) {
	build := probe.Children[1]
	m := a.m

	keyStats := a.stats(build.Column)
	payloadStats := make([]ColumnStats, len(build.RightCols))
	for i, c := range build.RightCols {
		payloadStats[i] = a.stats(c)
	}
	cpu, io := m.JoinBuild(keyStats, payloadStats, build.RightStrategy)
	setCost(build, cpu, io)

	frac, rlp := a.pos(probe.Children[0])
	probes := frac * a.tuples()
	matchPerKey := 1.0
	if d := build.Column.Distinct(); d > 0 {
		matchPerKey = keyStats.Tuples / float64(d)
	}
	out := probes * matchPerKey

	cpu, io = m.JoinProbe(probes, out, len(probe.LeftCols), payloadStats, build.RightStrategy, keyStats.Tuples)
	// The batched probe-key gather plus the outer payload gathers: a DS3 per
	// column at the surviving positions (free re-access when the position
	// scan already touched the column — the predicated join key's mini-column
	// is retained by the multi-column optimization).
	keyReuse := a.accessed[probe.Col] && !a.p.Spec.DisableMultiColumn
	dcpu, dio := m.DS3(a.stats(probe.Column), probes, rlp, frac, keyReuse)
	cpu += dcpu
	io += dio
	for i, c := range probe.LeftCols {
		reuse := a.accessed[probe.OutCols[i]] && !a.p.Spec.DisableMultiColumn
		dcpu, dio := m.DS3(a.stats(c), probes, rlp, frac, reuse)
		cpu += dcpu
		io += dio
	}
	setCost(probe, cpu, io)
	setCost(root, m.OutputIteration(out), 0)
}

func (a *annotator) tuples() float64 {
	if a.p.Spec.Tuples <= 0 {
		return 1 // avoid 0/0 on empty projections; costs degenerate to ~0
	}
	return float64(a.p.Spec.Tuples)
}

// pos annotates a position-domain subtree bottom-up, returning the fraction
// of the projection's tuples surviving and the estimated position-run
// length of the produced list.
func (a *annotator) pos(n *plan.Node) (frac, rlp float64) {
	switch n.Kind {
	case plan.KindPosAll:
		setCost(n, 0, 0)
		return 1, a.tuples()

	case plan.KindDS1:
		cs := a.stats(n.Column)
		sf := a.conjSF(n)
		cpu, io := a.m.DS1(cs, sf)
		setCost(n, cpu, io)
		a.accessed[n.Col] = true
		return sf, EstimatePosRuns(cs, sf, n.Column.Sorted(), 1)

	case plan.KindAND:
		lists := make([]PosList, len(n.Children))
		frac = 1
		rlp = 0
		for i, c := range n.Children {
			f, rl := a.pos(c)
			lists[i] = PosList{Positions: f * a.tuples(), RunLen: rl}
			frac *= f
			if rlp == 0 || rl < rlp {
				rlp = rl
			}
		}
		setCost(n, a.m.AND(lists...), 0)
		return frac, rlp

	case plan.KindFilterAt:
		inFrac, inRlp := a.pos(n.Children[0])
		cs := a.stats(n.Column)
		sf := a.conjSF(n)
		poslist := inFrac * a.tuples()
		// DS3 over this column at the incoming positions plus a predicate
		// application per extracted value (the lmPipelined narrowing term).
		cpu, io := a.m.DS3(cs, poslist, inRlp, inFrac, false)
		cpu += poslist * a.m.FC
		setCost(n, cpu, io)
		a.accessed[n.Col] = true
		frac = inFrac * sf
		if own := EstimatePosRuns(cs, sf, n.Column.Sorted(), 1); own < inRlp {
			return frac, own
		}
		return frac, inRlp

	default:
		setCost(n, 0, 0)
		return 1, 1
	}
}

// tuple annotates a tuple-domain subtree bottom-up, returning the number of
// early-materialized tuples flowing out.
func (a *annotator) tuple(n *plan.Node) float64 {
	switch n.Kind {
	case plan.KindDS2:
		cs := a.stats(n.Column)
		sf := a.conjSF(n)
		cpu, io := a.m.DS2(cs, sf)
		setCost(n, cpu, io)
		return sf * cs.Tuples

	case plan.KindDS4:
		in := a.tuple(n.Children[0])
		cs := a.stats(n.Column)
		sf := a.conjSF(n)
		cpu, io := a.m.DS4(cs, in, sf)
		// Pipelined block skipping: only the fraction of this column's
		// blocks containing surviving positions is read and iterated.
		skip := in / a.tuples()
		if skip > 1 {
			skip = 1
		}
		cpu -= (1 - skip) * cs.Blocks * a.m.BIC
		io *= skip
		setCost(n, cpu, io)
		return in * sf

	case plan.KindSPC:
		cols := make([]ColumnStats, len(n.SPCColumns))
		sfs := make([]float64, len(n.SPCColumns))
		for i, c := range n.SPCColumns {
			cols[i] = a.stats(c)
			sfs[i] = 1
		}
		out := a.tuples()
		for _, f := range n.SPCFilters {
			lo, hi := n.SPCColumns[f.Col].MinMax()
			sf := f.Pred.Selectivity(lo, hi)
			sfs[f.Col] *= sf
			out *= sf
		}
		cpu, io := a.m.SPC(cols, sfs)
		setCost(n, cpu, io)
		return out

	default:
		setCost(n, 0, 0)
		return 0
	}
}

// conjSF estimates the selectivity of a node's (possibly fused) predicate
// conjunction against its column's min/max statistics. The simplified form
// is used so a fused interval pair is estimated as one interval, not as the
// product of two overlapping half-bounds.
func (a *annotator) conjSF(n *plan.Node) float64 {
	preds := n.ExecPreds()
	if len(preds) == 0 {
		return 1
	}
	lo, hi := n.Column.MinMax()
	sf := 1.0
	for _, p := range preds {
		sf *= p.Selectivity(lo, hi)
	}
	return sf
}

// groups estimates the aggregation's group count: the group-by column's
// distinct count scaled by the surviving fraction, at least one.
func (a *annotator) groups(frac float64) float64 {
	c := a.findColumn(a.p.Spec.GroupBy)
	if c == nil {
		return 1
	}
	g := float64(c.Distinct()) * frac
	if g < 1 {
		return 1
	}
	return g
}

func (a *annotator) stats(c *storage.Column) ColumnStats {
	f := 0.0
	if a.hot {
		f = 1.0
	}
	return ColumnStats{
		Blocks: float64(c.NumBlocks()),
		Tuples: float64(c.TupleCount()),
		RunLen: c.AvgRunLen(),
		F:      f,
	}
}

func setCost(n *plan.Node, cpu, io float64) {
	n.Modeled = plan.Cost{CPU: cpu, IO: io}
	n.HasModel = true
}

// findColumn locates the resolved handle of a named column anywhere in the
// plan (scan/extract/widen nodes, SPC leaves, and an Aggregate root's
// mat-columns — the only place an LM aggregation's group-by column appears
// when it carries no filter).
func (a *annotator) findColumn(name string) *storage.Column {
	if root := a.p.Root; root.Kind == plan.KindAggregate {
		for i, matName := range a.p.Spec.MatCols {
			if matName == name && i < len(root.MatColumns) {
				return root.MatColumns[i]
			}
		}
	}
	var found *storage.Column
	plan.Walk(a.p.Root, func(n *plan.Node) {
		if found != nil {
			return
		}
		if n.Col == name && n.Column != nil {
			found = n.Column
			return
		}
		for i, spcName := range n.SPCNames {
			if spcName == name {
				found = n.SPCColumns[i]
				return
			}
		}
	})
	return found
}
