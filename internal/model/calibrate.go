package model

import (
	"fmt"
	"math"

	"matstore/internal/plan"
)

// This file closes the loop between the analytical model and the machine it
// actually runs on: instead of trusting Table 2's Pentium-4-era constants
// (or the bottom-up micro-measurements of MeasureConstants), Calibrate
// refits BIC, TICTUP, TICCOL and FC by least squares over the
// modeled-vs-observed per-node counters that DB.Explain already collects.
//
// Every Figure 1–6 CPU formula is (up to one negligible cross term in AND)
// linear in the four CPU constants, so an annotated node's predicted cost is
// a dot product feature·constants, where the feature vector depends only on
// catalog statistics and query shape. CollectObservations extracts those
// feature vectors by annotating the plan with unit-basis constant sets; the
// node's observed self-time (Observed.Nanos) is the regression target.
// Calibrate then solves the ridge-regularized normal equations, pulling
// toward the prior where the workload leaves a constant unconstrained, and
// never returns constants that fit the observations worse than the prior.

// CPUConstants names the calibrated constants in feature order.
var CPUConstants = [4]string{"BIC", "TICTUP", "TICCOL", "FC"}

// Observation is one (feature vector, observed time) pair: a plan node's
// modeled cost decomposed per CPU constant, against its observed execution
// time in microseconds.
type Observation struct {
	// Node labels the originating operator (diagnostics only).
	Node string
	// Features[i] is the modeled cost contribution per unit of CPUConstants[i]
	// (µs per µs of constant), so modeled ≈ Features·{BIC,TICTUP,TICCOL,FC}.
	Features [4]float64
	// ObservedUS is the node's observed self-time in microseconds.
	ObservedUS float64
}

// predict returns the modeled cost of the observation under c.
func (o Observation) predict(c Constants) float64 {
	return o.Features[0]*c.BIC + o.Features[1]*c.TICTUP +
		o.Features[2]*c.TICCOL + o.Features[3]*c.FC
}

// basis returns a constant set with exactly one CPU constant set to 1 µs
// (index into CPUConstants; -1 zeroes all four). I/O terms are neutralized:
// the annotator runs hot (F=1) so SEEK/READ contribute nothing, and PF=1
// avoids a 0/0 in the scan I/O formula.
func basis(i int) Constants {
	c := Constants{PF: 1, WordSize: 64}
	switch i {
	case 0:
		c.BIC = 1
	case 1:
		c.TICTUP = 1
	case 2:
		c.TICCOL = 1
	case 3:
		c.FC = 1
	}
	return c
}

// CollectObservations extracts one Observation per executed node of an
// observed plan run (a DB.Explain execution): the node's per-constant model
// features via basis annotations, against its observed self-time. Nodes that
// never executed, carry no model, or have an all-zero feature vector (e.g.
// ALLPOS) are skipped. The plan is left re-annotated with restore.
func CollectObservations(p *plan.Plan, restore Constants) []Observation {
	type nodeFeat struct {
		n *plan.Node
		f [4]float64
	}
	var nodes []nodeFeat
	plan.Walk(p.Root, func(n *plan.Node) {
		nodes = append(nodes, nodeFeat{n: n})
	})
	for i := 0; i < 4; i++ {
		basis(i).AnnotatePlan(p, true)
		for j := range nodes {
			if nodes[j].n.HasModel {
				nodes[j].f[i] = nodes[j].n.Modeled.Total()
			}
		}
	}
	restore.AnnotatePlan(p, true)

	var obs []Observation
	for _, nf := range nodes {
		if !nf.n.HasModel || nf.n.Obs.Chunks.Load() == 0 {
			continue
		}
		if nf.f[0] == 0 && nf.f[1] == 0 && nf.f[2] == 0 && nf.f[3] == 0 {
			continue
		}
		obs = append(obs, Observation{
			Node:       nf.n.Kind.String() + " " + nf.n.Col,
			Features:   nf.f,
			ObservedUS: float64(nf.n.Obs.Nanos.Load()) / 1e3,
		})
	}
	return obs
}

// CalibrationReport describes one Calibrate run: the constants before and
// after, and the model's root-mean-square per-observation error under each.
type CalibrationReport struct {
	// Observations is the number of (node, time) pairs fitted.
	Observations int
	// Prior and Fitted are the constants before and after the refit.
	Prior, Fitted Constants
	// PriorErrUS and FittedErrUS are the RMS modeled-vs-observed error per
	// observation (µs) under the prior and fitted constants.
	PriorErrUS, FittedErrUS float64
}

func (r CalibrationReport) String() string {
	return fmt.Sprintf(
		"calibrated over %d node observations: rms error %.1fµs -> %.1fµs\n"+
			"  BIC    %.4f -> %.6f µs\n  TICTUP %.4f -> %.6f µs\n"+
			"  TICCOL %.4f -> %.6f µs\n  FC     %.4f -> %.6f µs\n",
		r.Observations, r.PriorErrUS, r.FittedErrUS,
		r.Prior.BIC, r.Fitted.BIC, r.Prior.TICTUP, r.Fitted.TICTUP,
		r.Prior.TICCOL, r.Fitted.TICCOL, r.Prior.FC, r.Fitted.FC)
}

// rmsError returns the RMS modeled-vs-observed error of c over obs.
func rmsError(obs []Observation, c Constants) float64 {
	if len(obs) == 0 {
		return 0
	}
	var sse float64
	for _, o := range obs {
		d := o.predict(c) - o.ObservedUS
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(obs)))
}

// Calibrate refits the four CPU constants to the observations by
// least squares, keeping prior's I/O and word-size constants (SEEK, READ,
// PF, WordSize) untouched. The solve is ridge-regularized toward the prior,
// so a constant the workload never exercises (a zero feature column) keeps
// its prior value instead of collapsing to zero, and negative solutions —
// possible under collinear features — are clamped back to the prior. If the
// fit somehow explains the observations worse than the prior (degenerate
// inputs), the prior is returned unchanged; the fitted constants are
// therefore never worse on the given workload.
func Calibrate(obs []Observation, prior Constants) (Constants, CalibrationReport) {
	rep := CalibrationReport{
		Observations: len(obs),
		Prior:        prior,
		Fitted:       prior,
		PriorErrUS:   rmsError(obs, prior),
		FittedErrUS:  rmsError(obs, prior),
	}
	if len(obs) == 0 {
		return prior, rep
	}

	// Normal equations: A = XᵀX + λI, b = Xᵀy + λ·prior.
	var A [4][4]float64
	var b [4]float64
	for _, o := range obs {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				A[i][j] += o.Features[i] * o.Features[j]
			}
			b[i] += o.Features[i] * o.ObservedUS
		}
	}
	// Column equilibration: block counts number in the tens while tuple
	// counts number in the millions, so the raw normal equations are wildly
	// ill-conditioned. Scale each column to unit energy (sᵢ = √A[i][i]),
	// solve in the scaled space, and scale back. A column the workload never
	// exercises has zero energy; its scaled row is pure ridge, which pins
	// that constant to the prior.
	var s [4]float64
	for i := 0; i < 4; i++ {
		if s[i] = math.Sqrt(A[i][i]); s[i] == 0 {
			s[i] = 1
		}
	}
	pv := [4]float64{prior.BIC, prior.TICTUP, prior.TICCOL, prior.FC}
	const lambda = 1e-8
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			A[i][j] /= s[i] * s[j]
		}
		b[i] = b[i]/s[i] + lambda*pv[i]*s[i]
		A[i][i] += lambda
	}

	w, ok := solve4(A, b)
	if !ok {
		return prior, rep
	}
	for i := 0; i < 4; i++ {
		w[i] /= s[i]
	}
	fitted := prior
	assign := []*float64{&fitted.BIC, &fitted.TICTUP, &fitted.TICCOL, &fitted.FC}
	for i := 0; i < 4; i++ {
		if !math.IsInf(w[i], 0) && !math.IsNaN(w[i]) && w[i] > 0 {
			*assign[i] = w[i]
		}
	}
	fittedErr := rmsError(obs, fitted)
	if fittedErr > rep.PriorErrUS {
		return prior, rep
	}
	rep.Fitted = fitted
	rep.FittedErrUS = fittedErr
	return fitted, rep
}

// solve4 solves the 4×4 system A·w = b by Gaussian elimination with partial
// pivoting; ok is false when A is singular to working precision.
func solve4(A [4][4]float64, b [4]float64) (w [4]float64, ok bool) {
	const n = 4
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-300 {
			return w, false
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		w[r] = b[r]
		for c := r + 1; c < n; c++ {
			w[r] -= A[r][c] * w[c]
		}
		w[r] /= A[r][r]
	}
	return w, true
}
