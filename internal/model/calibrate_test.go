package model

import (
	"math"
	"testing"
)

// synthObs generates observations whose observed times are exactly the
// model's prediction under truth — the recoverability fixture.
func synthObs(truth Constants) []Observation {
	feats := [][4]float64{
		{10, 0, 60000, 60000},     // DS1-like: blocks*BIC, tuples*(TICCOL+FC)
		{10, 1200, 60000, 61200},  // DS2-like
		{0, 0, 8000, 4000},        // DS3-like
		{50, 180000, 0, 120000},   // DS4-like
		{60, 60000, 0, 120000},    // SPC-like
		{0, 0, 9000, 3000},        // AND-like
		{0, 1200, 0, 2400},        // merge/output-like
		{5, 30000, 30000, 30000},  // join build-like
		{0, 90000, 45000, 45000},  // join probe-like
		{25, 600, 150000, 150600}, // fused-scan-like
	}
	obs := make([]Observation, len(feats))
	for i, f := range feats {
		obs[i] = Observation{Features: f}
		obs[i].ObservedUS = obs[i].predict(truth)
	}
	return obs
}

// TestCalibrateRecoversConstants: fitting exact synthetic observations
// recovers the generating constants and drives the error to ~0.
func TestCalibrateRecoversConstants(t *testing.T) {
	truth := Default()
	truth.BIC, truth.TICTUP, truth.TICCOL, truth.FC = 0.004, 0.012, 0.0021, 0.0017
	obs := synthObs(truth)

	fitted, rep := Calibrate(obs, Paper)
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"BIC", fitted.BIC, truth.BIC},
		{"TICTUP", fitted.TICTUP, truth.TICTUP},
		{"TICCOL", fitted.TICCOL, truth.TICCOL},
		{"FC", fitted.FC, truth.FC},
	} {
		if math.Abs(c.got-c.want)/c.want > 0.02 {
			t.Errorf("fitted %s = %v, want ~%v", c.name, c.got, c.want)
		}
	}
	if rep.Observations != len(obs) {
		t.Errorf("report observations = %d, want %d", rep.Observations, len(obs))
	}
	if rep.FittedErrUS >= rep.PriorErrUS {
		t.Errorf("fit did not reduce error: %v -> %v", rep.PriorErrUS, rep.FittedErrUS)
	}
	if rep.PriorErrUS <= 0 || rep.FittedErrUS > rep.PriorErrUS/100 {
		t.Errorf("fit on exact data should be near-perfect: prior=%v fitted=%v",
			rep.PriorErrUS, rep.FittedErrUS)
	}
	// I/O and word-size constants ride along from the prior untouched.
	if fitted.SEEK != Paper.SEEK || fitted.READ != Paper.READ || fitted.WordSize != Paper.WordSize {
		t.Errorf("fit touched non-CPU constants: %+v", fitted)
	}
}

// TestCalibrateNeverWorseThanPrior: with degenerate observations (a single
// contradictory pair) the result must fit no worse than the prior, and an
// empty observation set returns the prior unchanged.
func TestCalibrateNeverWorseThanPrior(t *testing.T) {
	fitted, rep := Calibrate(nil, Paper)
	if fitted != Paper || rep.Observations != 0 {
		t.Errorf("empty fit changed constants: %+v", rep)
	}

	// Two observations with identical features but wildly different observed
	// times: no constants fit both; the solver must still not regress.
	obs := []Observation{
		{Features: [4]float64{10, 10, 10, 10}, ObservedUS: 1},
		{Features: [4]float64{10, 10, 10, 10}, ObservedUS: 100000},
	}
	fitted, rep = Calibrate(obs, Paper)
	if rep.FittedErrUS > rep.PriorErrUS {
		t.Errorf("fit regressed: %v -> %v", rep.PriorErrUS, rep.FittedErrUS)
	}
	for _, v := range []float64{fitted.BIC, fitted.TICTUP, fitted.TICCOL, fitted.FC} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("fitted constant out of range: %v (%+v)", v, fitted)
		}
	}
}

// TestCalibrateUnconstrainedConstantKeepsPrior: a workload that never
// exercises TICTUP (zero feature column) must leave it at the prior instead
// of collapsing it to zero.
func TestCalibrateUnconstrainedConstantKeepsPrior(t *testing.T) {
	truth := Paper
	truth.BIC, truth.TICCOL, truth.FC = 0.002, 0.001, 0.0005
	var obs []Observation
	for _, f := range [][4]float64{
		{10, 0, 60000, 20000},
		{0, 0, 8000, 4000},
		{25, 0, 15000, 50000},
		{5, 0, 100000, 1000},
	} {
		o := Observation{Features: f}
		o.ObservedUS = o.predict(truth)
		obs = append(obs, o)
	}
	fitted, _ := Calibrate(obs, Paper)
	if math.Abs(fitted.TICTUP-Paper.TICTUP)/Paper.TICTUP > 0.05 {
		t.Errorf("unconstrained TICTUP drifted: %v, want ~%v", fitted.TICTUP, Paper.TICTUP)
	}
	if math.Abs(fitted.BIC-truth.BIC)/truth.BIC > 0.05 {
		t.Errorf("constrained BIC not recovered: %v, want ~%v", fitted.BIC, truth.BIC)
	}
}
