// Package model implements the paper's analytical cost model (Section 3):
// the operator cost formulas of Figures 1–6 over the notation of Table 1,
// the measured constants of Table 2, plan-level cost composition for all
// four materialization strategies, and the strategy advisor the paper
// motivates ("an analytical model that can be used, for example, in a query
// optimizer to select a materialization strategy").
//
// All costs are in microseconds (as in Table 2). CPU and I/O components are
// reported separately; I/O is the modelled disk time and is zero for
// buffer-resident fractions (the F term).
package model

import (
	"time"
)

// Constants are the machine-specific cost-model constants of Table 2.
type Constants struct {
	// BIC is the CPU time of a getNext() call on a block iterator, µs.
	BIC float64
	// TICTUP is the CPU time of a getNext() call on a tuple iterator, µs.
	TICTUP float64
	// TICCOL is the CPU time of a getNext() call on a column iterator, µs.
	TICCOL float64
	// FC is the cost of a function call, µs.
	FC float64
	// PF is the prefetch size in blocks.
	PF float64
	// SEEK is the disk seek time, µs.
	SEEK float64
	// READ is the time to read one block from disk, µs.
	READ float64
	// WordSize is the number of positions intersected per instruction when
	// ANDing bit-string position lists. The paper's hardware used 32; this
	// implementation uses 64-bit words.
	WordSize float64
}

// Paper holds the constants of Table 2 (Pentium 4 era), with the paper's
// 32-bit word size.
var Paper = Constants{
	BIC:      0.020,
	TICTUP:   0.065,
	TICCOL:   0.014,
	FC:       0.009,
	PF:       1,
	SEEK:     2500,
	READ:     1000,
	WordSize: 32,
}

// Default returns the constants used when none are calibrated: the paper's
// Table 2 values with a 64-bit word size.
func Default() Constants {
	c := Paper
	c.WordSize = 64
	return c
}

// Micros converts a cost in µs to a time.Duration.
func Micros(us float64) time.Duration { return time.Duration(us * float64(time.Microsecond)) }

//go:noinline
func sink(x int64) int64 { return x + 1 }

// MeasureConstants measures BIC, TICTUP, TICCOL and FC on the host machine
// by running the small code segments each constant stands for (as the paper
// did: "obtained by running the small segments of code that only performed
// the variable in question"). SEEK/READ/PF keep their Table 2 defaults
// since experiments run through the OS page cache. Calibrate (calibrate.go)
// is the complementary top-down refit: it fits the same constants to whole
// observed executions instead of isolated micro-segments.
func MeasureConstants() Constants {
	c := Default()
	c.FC = measureFC()
	c.TICCOL = measureTICCOL()
	c.TICTUP = measureTICTUP()
	c.BIC = measureBIC()
	return c
}

const calN = 1 << 20

// measureFC times a non-inlinable function call.
func measureFC() float64 {
	var acc int64
	start := time.Now()
	for i := int64(0); i < calN; i++ {
		acc = sink(acc)
	}
	el := time.Since(start)
	_ = acc
	return float64(el.Nanoseconds()) / float64(calN) / 1e3
}

// measureTICCOL times per-value iteration over a column-oriented vector.
func measureTICCOL() float64 {
	vals := make([]int64, calN)
	for i := range vals {
		vals[i] = int64(i)
	}
	var acc int64
	start := time.Now()
	for _, v := range vals {
		acc += v
	}
	el := time.Since(start)
	_ = acc
	return float64(el.Nanoseconds()) / float64(calN) / 1e3
}

// measureTICTUP times per-tuple iteration: gathering a two-attribute tuple
// from parallel arrays through a tuple-at-a-time interface.
func measureTICTUP() float64 {
	const n = calN / 4
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(i)
		b[i] = int64(i) * 2
	}
	type tuple struct{ x, y int64 }
	var acc int64
	next := func(i int) tuple { return tuple{a[i], b[i]} } // tuple iterator getNext
	start := time.Now()
	for i := 0; i < n; i++ {
		t := next(i)
		acc += t.x + t.y
	}
	el := time.Since(start)
	_ = acc
	return float64(el.Nanoseconds()) / float64(n) / 1e3
}

// blockIter is a minimal block iterator matching the engine's dispatch
// shape (an interface method call per block).
type blockIter interface{ next() (int64, bool) }

type countingIter struct{ i, n int64 }

func (it *countingIter) next() (int64, bool) {
	if it.i >= it.n {
		return 0, false
	}
	it.i++
	return it.i, true
}

// measureBIC times a getNext() call through a block-iterator interface.
func measureBIC() float64 {
	var it blockIter = &countingIter{n: calN}
	var acc int64
	start := time.Now()
	for {
		v, ok := it.next()
		if !ok {
			break
		}
		acc += v
	}
	el := time.Since(start)
	_ = acc
	return float64(el.Nanoseconds()) / float64(calN) / 1e3
}
