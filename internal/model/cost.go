package model

// This file implements the operator cost formulas of Figures 1–6, using the
// Table 1 notation:
//
//	|Ci|        number of disk blocks of column i      -> ColumnStats.Blocks
//	||Ci||      number of tuples of column i           -> ColumnStats.Tuples
//	||POSLIST|| number of positions in a position list
//	F           fraction of the column in the buffer pool
//	SF          predicate selectivity factor
//	RL          average run length (RLc for columns, RLp for position lists)
//
// Each function returns cost in microseconds, CPU and I/O separately.

// ColumnStats describes one stored column to the model.
type ColumnStats struct {
	// Blocks is |Ci|.
	Blocks float64
	// Tuples is ||Ci||.
	Tuples float64
	// RunLen is RLc, the average run length of the encoded column (1 for
	// uncompressed data).
	RunLen float64
	// F is the fraction of the column's pages resident in the buffer pool.
	F float64
}

func (c ColumnStats) rl() float64 {
	if c.RunLen < 1 {
		return 1
	}
	return c.RunLen
}

// scanIO is the I/O term shared by full-scan cases (Figures 1, 3-ish, 6):
// (|Ci|/PF * SEEK + |Ci| * READ) * (1 - F).
func (m Constants) scanIO(c ColumnStats) float64 {
	return (c.Blocks/m.PF*m.SEEK + c.Blocks*m.READ) * (1 - c.F)
}

// DS1 is Data Scan Case 1 (Figure 1): read a column, apply a predicate with
// selectivity sf, output positions.
//
//	CPU = |Ci|*BIC + ||Ci||*(TICCOL+FC)/RL + SF*||Ci||*FC
//	IO  = (|Ci|/PF*SEEK + |Ci|*READ)*(1-F)
func (m Constants) DS1(c ColumnStats, sf float64) (cpu, io float64) {
	cpu = c.Blocks*m.BIC +
		c.Tuples*(m.TICCOL+m.FC)/c.rl() +
		sf*c.Tuples*m.FC
	return cpu, m.scanIO(c)
}

// DS2 is Case 2 (Figure 1 variant): like DS1 but outputting (position,
// value) pairs; step 5 pays TICTUP+FC per qualifying tuple (the cost of
// gluing positions and values together).
func (m Constants) DS2(c ColumnStats, sf float64) (cpu, io float64) {
	cpu = c.Blocks*m.BIC +
		c.Tuples*(m.TICCOL+m.FC)/c.rl() +
		sf*c.Tuples*(m.TICTUP+m.FC)
	return cpu, m.scanIO(c)
}

// DS3 is Case 3 (Figure 2): read a column filtered by a position list of
// ||POSLIST|| entries with average position-run length rlp, output values.
//
//	CPU = |Ci|*BIC + (POSLIST/RLp)*TICCOL + (POSLIST/RLp)*(TICCOL+FC)
//	IO  = (|Ci|/PF*SEEK + SF*|Ci|*READ)*(1-F), and 0 if already accessed
//
// accessed=true is the multi-column case: the column was touched earlier in
// the plan, so F=1 and IO→0.
func (m Constants) DS3(c ColumnStats, poslist, rlp, sf float64, accessed bool) (cpu, io float64) {
	if rlp < 1 {
		rlp = 1
	}
	cpu = c.Blocks*m.BIC +
		poslist/rlp*m.TICCOL +
		poslist/rlp*(m.TICCOL+m.FC)
	if accessed {
		return cpu, 0
	}
	io = (c.Blocks/m.PF*m.SEEK + sf*c.Blocks*m.READ) * (1 - c.F)
	return cpu, io
}

// DS4 is Case 4 (Figure 3): read a column, jump to the position of each of
// ||EM|| early-materialized input tuples, apply a predicate with
// selectivity sf, and merge passing values into wider tuples.
//
//	CPU = |Ci|*BIC + ||EM||*TICTUP + ||EM||*((FC+TICTUP)+FC) + SF*||EM||*TICTUP
//	IO  = (|Ci|/PF*SEEK + |Ci|*READ)*(1-F)
func (m Constants) DS4(c ColumnStats, em, sf float64) (cpu, io float64) {
	cpu = c.Blocks*m.BIC +
		em*m.TICTUP +
		em*((m.FC+m.TICTUP)+m.FC) +
		sf*em*m.TICTUP
	return cpu, m.scanIO(c)
}

// PosList describes one AND input position list.
type PosList struct {
	// Positions is ||inpos_i||.
	Positions float64
	// RunLen is RLp_i, the average run length; for bit-string inputs use
	// Constants.WordSize (the paper's Case 2 substitutes ||inpos||/32).
	RunLen float64
}

// BitPosList builds the AND-input descriptor for a bit-string list over n
// positions: word-at-a-time processing makes the effective run length the
// machine word size.
func (m Constants) BitPosList(n float64) PosList { return PosList{Positions: n, RunLen: m.WordSize} }

// AND is the position-intersection operator (Figure 4), over k input lists:
//
//	COST = Σ TICCOL*||inpos_i||/RLp_i + M*(k-1)*FC + M*TICCOL*FC
//	M    = max(||inpos_i||/RLp_i)
//
// It is a streaming operator with no I/O.
func (m Constants) AND(ins ...PosList) float64 {
	if len(ins) < 2 {
		return 0
	}
	var sum, max float64
	for _, in := range ins {
		rl := in.RunLen
		if rl < 1 {
			rl = 1
		}
		units := in.Positions / rl
		sum += m.TICCOL * units
		if units > max {
			max = units
		}
	}
	k := float64(len(ins))
	return sum + max*(k-1)*m.FC + max*m.TICCOL*m.FC
}

// Merge is the n-ary tuple construction operator (Figure 5) over k value
// streams of n values each:
//
//	COST = n*k*FC (vector access) + n*k*FC (array output)
func (m Constants) Merge(n float64, k int) float64 {
	return n*float64(k)*m.FC + n*float64(k)*m.FC
}

// SPC is the scan-predicate-construct leaf (Figure 6) over k columns with
// per-column predicate selectivities sfs (1.0 for unpredicated columns).
// Predicates short-circuit in order, so column i's per-tuple work is scaled
// by the product of the preceding selectivities:
//
//	CPU = Σ_i |Ci|*BIC + Σ_i ||Ci||*FC*Π_{j<i}(SFj) + ||Ck||*TICTUP*Π_j(SFj)
//	IO  = Σ_i (|Ci|/PF*SEEK + |Ci|*READ)
func (m Constants) SPC(cols []ColumnStats, sfs []float64) (cpu, io float64) {
	prefix := 1.0
	allSF := 1.0
	for _, sf := range sfs {
		allSF *= sf
	}
	for i, c := range cols {
		cpu += c.Blocks * m.BIC
		cpu += c.Tuples * m.FC * prefix
		if i < len(sfs) {
			prefix *= sfs[i]
		}
		io += (c.Blocks/m.PF*m.SEEK + c.Blocks*m.READ) * (1 - c.F)
	}
	if n := len(cols); n > 0 {
		cpu += cols[n-1].Tuples * m.TICTUP * allSF
	}
	return cpu, io
}

// OutputIteration is the per-query cost both the model and the experiments
// add to iterate over result tuples: numOutTuples * TICTUP.
func (m Constants) OutputIteration(numOut float64) float64 { return numOut * m.TICTUP }
