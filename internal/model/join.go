package model

import "matstore/internal/operators"

// This file composes the Figure 1–6 operator formulas into the join cost
// terms of Section 4.3, per inner-table materialization strategy. The paper
// frames the join's right-side choice exactly like the selection strategies:
// constructing right tuples before the join (EM) pays tuple construction at
// build; sending the right table as compressed multi-columns defers the
// payload extraction to each probe match; sending only the join column (pure
// LM) pays an extra non-merge positional join after the probe, because right
// positions emerge in left order.

// JoinBuild predicts the blocking hash-build phase over the inner table:
// a full scan of the key column (DS1-style iteration) plus one hash insert
// per tuple, and the per-strategy payload materialization —
//
//	right-materialized: each payload column is scanned, decompressed and
//	  constructed into position-addressable arrays (TICCOL + TICTUP per
//	  tuple, the Section 2.1.2 early-construction cost);
//	right-multicolumn: each payload column's blocks are read and retained
//	  compressed (block iteration only);
//	right-singlecolumn: nothing beyond the key scan.
func (m Constants) JoinBuild(key ColumnStats, payload []ColumnStats, rs operators.RightStrategy) (cpu, io float64) {
	cpu = key.Blocks*m.BIC +
		key.Tuples*(m.TICCOL+m.FC)/key.rl() +
		key.Tuples*m.TICTUP // hash insert per key
	io = m.scanIO(key)
	switch rs {
	case operators.RightMaterialized:
		for _, c := range payload {
			cpu += c.Blocks*m.BIC + c.Tuples*m.TICCOL/c.rl() + c.Tuples*m.TICTUP
			io += m.scanIO(c)
		}
	case operators.RightMultiColumn:
		for _, c := range payload {
			cpu += c.Blocks * m.BIC
			io += m.scanIO(c)
		}
	}
	return cpu, io
}

// JoinInputs carries everything the end-to-end join cost needs, derived
// from catalog statistics (DB.AdviseJoin) or picked directly (table tests).
type JoinInputs struct {
	// Outer is the outer (probing) key column; Key the inner key column;
	// Payload the inner payload columns.
	Outer   ColumnStats
	Key     ColumnStats
	Payload []ColumnStats
	// SF is the outer predicate's selectivity; MatchPerKey the inner table's
	// average matches per key (inner tuples over distinct keys — exact for
	// the paper's FK join).
	SF          float64
	MatchPerKey float64
	// NumLeftCols is the number of outer payload columns glued per match.
	NumLeftCols int
}

// Probes returns the predicted probe count (outer tuples surviving SF).
func (in JoinInputs) Probes() float64 { return in.SF * in.Outer.Tuples }

// Out returns the predicted output cardinality.
func (in JoinInputs) Out() float64 { return in.Probes() * in.MatchPerKey }

// JoinCost composes the Section 4.3 terms into one end-to-end prediction
// for an inner-table materialization strategy: the outer key scan (DS1),
// the blocking build, the streaming probe with its per-strategy payload
// access, and output iteration — the quantity Figure 13 measures.
func (m Constants) JoinCost(in JoinInputs, rs operators.RightStrategy) Cost {
	var c Cost
	c = c.Add(m.DS1(in.Outer, in.SF))
	c = c.Add(m.JoinBuild(in.Key, in.Payload, rs))
	c = c.Add(m.JoinProbe(in.Probes(), in.Out(), in.NumLeftCols, in.Payload, rs, in.Key.Tuples))
	c = c.Add(m.OutputIteration(in.Out()), 0)
	return c
}

// JoinStrategies lists the inner-table strategies in presentation order.
var JoinStrategies = []operators.RightStrategy{
	operators.RightMaterialized, operators.RightMultiColumn, operators.RightSingleColumn,
}

// AdviseJoin returns the inner-table materialization strategy with the
// lowest predicted total cost — the Figure 13 winner at these inputs — and
// its cost.
func (m Constants) AdviseJoin(in JoinInputs) (operators.RightStrategy, Cost) {
	best := operators.RightMaterialized
	var bestCost Cost
	for i, rs := range JoinStrategies {
		c := m.JoinCost(in, rs)
		if i == 0 || c.Total() < bestCost.Total() {
			best, bestCost = rs, c
		}
	}
	return best, bestCost
}

// JoinProbe predicts the streaming probe phase, excluding the outer-table
// position scan (the DS1 child carries its own cost): probes hash lookups
// (FC each), output-tuple construction over numLeftCols+len(payload)
// attributes (TICTUP per glued value), and the per-strategy right payload
// access —
//
//	right-materialized: a direct array index per output value (FC);
//	right-multicolumn: a compressed mini-column extraction per output value
//	  (TICCOL + FC);
//	right-singlecolumn: the deferred positional join — a DS3 over each
//	  payload column at the out positions with run length 1 (probe order is
//	  left order, so jumps are out-of-order and no merge join applies).
//
// rightTuples scales the deferred fetch's I/O by the touched fraction of
// each payload column.
func (m Constants) JoinProbe(probes, out float64, numLeftCols int, payload []ColumnStats, rs operators.RightStrategy, rightTuples float64) (cpu, io float64) {
	cpu = probes * m.FC // hash lookup (partition route + bucket probe)
	cpu += out * float64(numLeftCols+len(payload)) * m.TICTUP
	switch rs {
	case operators.RightMaterialized:
		cpu += out * float64(len(payload)) * m.FC
	case operators.RightMultiColumn:
		cpu += out * float64(len(payload)) * (m.TICCOL + m.FC)
	case operators.RightSingleColumn:
		sf := 1.0
		if rightTuples > 0 && out < rightTuples {
			sf = out / rightTuples
		}
		for _, c := range payload {
			dcpu, dio := m.DS3(c, out, 1, sf, false)
			cpu += dcpu
			io += dio
		}
	}
	return cpu, io
}
