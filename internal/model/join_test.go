package model

import (
	"testing"

	"matstore/internal/operators"
)

// TestJoinBuildCostOrdering pins the Section 4.3 build-side ordering: early
// materialization of the payload costs the most at build, multi-column pays
// only block reads, single-column only the key scan.
func TestJoinBuildCostOrdering(t *testing.T) {
	m := Paper
	key := ColumnStats{Blocks: 100, Tuples: 800_000, RunLen: 1}
	payload := []ColumnStats{{Blocks: 100, Tuples: 800_000, RunLen: 1}}
	total := func(rs operators.RightStrategy) float64 {
		cpu, io := m.JoinBuild(key, payload, rs)
		return cpu + io
	}
	mat := total(operators.RightMaterialized)
	mc := total(operators.RightMultiColumn)
	sc := total(operators.RightSingleColumn)
	if !(mat > mc && mc > sc && sc > 0) {
		t.Errorf("build cost ordering violated: materialized=%.0f multicolumn=%.0f singlecolumn=%.0f", mat, mc, sc)
	}
}

// TestJoinProbeCostOrdering pins the probe-side inversion: single-column
// pays the deferred positional join per output tuple, so at equal output it
// costs the most, while the materialized build's direct index is cheapest.
func TestJoinProbeCostOrdering(t *testing.T) {
	m := Paper
	payload := []ColumnStats{{Blocks: 100, Tuples: 800_000, RunLen: 1}}
	total := func(rs operators.RightStrategy) float64 {
		cpu, io := m.JoinProbe(100_000, 100_000, 1, payload, rs, 800_000)
		return cpu + io
	}
	mat := total(operators.RightMaterialized)
	mc := total(operators.RightMultiColumn)
	sc := total(operators.RightSingleColumn)
	if !(sc > mc && mc > mat && mat > 0) {
		t.Errorf("probe cost ordering violated: singlecolumn=%.0f multicolumn=%.0f materialized=%.0f", sc, mc, mat)
	}
	// More probes cost more.
	few, _ := m.JoinProbe(1_000, 1_000, 1, payload, operators.RightMaterialized, 800_000)
	many, _ := m.JoinProbe(500_000, 500_000, 1, payload, operators.RightMaterialized, 800_000)
	if many <= few {
		t.Errorf("probe cost not monotone in probes: %.0f <= %.0f", many, few)
	}
}
