package model

import (
	"testing"

	"matstore/internal/operators"
)

// TestJoinBuildCostOrdering pins the Section 4.3 build-side ordering: early
// materialization of the payload costs the most at build, multi-column pays
// only block reads, single-column only the key scan.
func TestJoinBuildCostOrdering(t *testing.T) {
	m := Paper
	key := ColumnStats{Blocks: 100, Tuples: 800_000, RunLen: 1}
	payload := []ColumnStats{{Blocks: 100, Tuples: 800_000, RunLen: 1}}
	total := func(rs operators.RightStrategy) float64 {
		cpu, io := m.JoinBuild(key, payload, rs)
		return cpu + io
	}
	mat := total(operators.RightMaterialized)
	mc := total(operators.RightMultiColumn)
	sc := total(operators.RightSingleColumn)
	if !(mat > mc && mc > sc && sc > 0) {
		t.Errorf("build cost ordering violated: materialized=%.0f multicolumn=%.0f singlecolumn=%.0f", mat, mc, sc)
	}
}

// TestJoinProbeCostOrdering pins the probe-side inversion: single-column
// pays the deferred positional join per output tuple, so at equal output it
// costs the most, while the materialized build's direct index is cheapest.
func TestJoinProbeCostOrdering(t *testing.T) {
	m := Paper
	payload := []ColumnStats{{Blocks: 100, Tuples: 800_000, RunLen: 1}}
	total := func(rs operators.RightStrategy) float64 {
		cpu, io := m.JoinProbe(100_000, 100_000, 1, payload, rs, 800_000)
		return cpu + io
	}
	mat := total(operators.RightMaterialized)
	mc := total(operators.RightMultiColumn)
	sc := total(operators.RightSingleColumn)
	if !(sc > mc && mc > mat && mat > 0) {
		t.Errorf("probe cost ordering violated: singlecolumn=%.0f multicolumn=%.0f materialized=%.0f", sc, mc, mat)
	}
	// More probes cost more.
	few, _ := m.JoinProbe(1_000, 1_000, 1, payload, operators.RightMaterialized, 800_000)
	many, _ := m.JoinProbe(500_000, 500_000, 1, payload, operators.RightMaterialized, 800_000)
	if many <= few {
		t.Errorf("probe cost not monotone in probes: %.0f <= %.0f", many, few)
	}
}

// joinInputs builds the Figure 13 experiment shape: a 10:1 orders ⋈ customer
// FK join with one payload column per side, at outer selectivity sf.
func joinInputs(sf float64, hot bool) JoinInputs {
	f := 0.0
	if hot {
		f = 1
	}
	return JoinInputs{
		Outer:       ColumnStats{Blocks: 2000, Tuples: 1_500_000, RunLen: 1, F: f},
		Key:         ColumnStats{Blocks: 200, Tuples: 150_000, RunLen: 1, F: f},
		Payload:     []ColumnStats{{Blocks: 200, Tuples: 150_000, RunLen: 1, F: f}},
		SF:          sf,
		MatchPerKey: 10,
		NumLeftCols: 1,
	}
}

// TestAdviseJoinFigure13Shape pins the advisor's ordering of the three
// inner-table strategies across the selectivity sweep — the qualitative
// shape of Figure 13. Cold (full scan I/O charged), the three regimes
// appear in order: sending only the join column wins when almost nothing is
// probed, the compressed multi-column hybrid wins the low-selectivity band,
// and early materialization wins once output volume amortizes its build.
func TestAdviseJoinFigure13Shape(t *testing.T) {
	m := Paper
	cold := []struct {
		sf   float64
		want operators.RightStrategy
	}{
		{0.0001, operators.RightSingleColumn},
		{0.001, operators.RightSingleColumn},
		{0.02, operators.RightMultiColumn},
		{0.05, operators.RightMultiColumn},
		{0.3, operators.RightMaterialized},
		{1.0, operators.RightMaterialized},
	}
	for _, tc := range cold {
		best, cost := m.AdviseJoin(joinInputs(tc.sf, false))
		if best != tc.want {
			t.Errorf("cold sf=%v: advisor chose %v, want %v", tc.sf, best, tc.want)
		}
		if cost.Total() <= 0 {
			t.Errorf("cold sf=%v: nonpositive best cost %v", tc.sf, cost)
		}
	}

	// Warm pool: I/O vanishes, so the single-column strategy's cheap build
	// loses its edge, but the low/high split must remain — materialized never
	// wins the lowest point and always wins full selectivity.
	lowBest, _ := m.AdviseJoin(joinInputs(0.001, true))
	if lowBest == operators.RightMaterialized {
		t.Errorf("warm sf=0.001: materialized should not win the low end")
	}
	highBest, _ := m.AdviseJoin(joinInputs(1, true))
	if highBest != operators.RightMaterialized {
		t.Errorf("warm sf=1: advisor chose %v, want right-materialized", highBest)
	}

	// The ordering must flip exactly once between materialized and the
	// cheaper builds as selectivity rises (all cost curves are affine in SF,
	// Figure 13's straight lines).
	prevMatBest := false
	flips := 0
	for _, sf := range []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		best, _ := m.AdviseJoin(joinInputs(sf, true))
		matBest := best == operators.RightMaterialized
		if matBest != prevMatBest {
			flips++
		}
		prevMatBest = matBest
	}
	if flips != 1 {
		t.Errorf("materialized should take over exactly once across the sweep, flipped %d times", flips)
	}
}

// TestJoinCostMonotoneInSelectivity: every strategy's end-to-end cost grows
// with selectivity (more probes, more output).
func TestJoinCostMonotoneInSelectivity(t *testing.T) {
	m := Paper
	for _, rs := range JoinStrategies {
		prev := -1.0
		for _, sf := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
			c := m.JoinCost(joinInputs(sf, true), rs).Total()
			if c <= prev {
				t.Errorf("%v: cost not monotone at sf=%v (%.0f <= %.0f)", rs, sf, c, prev)
			}
			prev = c
		}
	}
}
