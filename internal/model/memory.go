package model

import "matstore/internal/operators"

// This file is the memory half of the cost model: where cost.go predicts the
// paper's time terms, EstimateJoinMemory predicts the resident bytes a join's
// blocking hash-build side will pin, from the same catalog statistics. The
// admission governor sizes byte reservations with it — an over-estimate
// wastes budget headroom, an under-estimate risks the OOM the governor
// exists to prevent, so the formula mirrors the build's actual accounting
// (PartitionedTable.memBytes) term by term.

// Sizing constants mirroring the build's resident-footprint accounting: a Go
// map bucket entry for a distinct key (header + key + slice header), one
// position per tuple in the bucket lists, one dense int64 per tuple per
// materialized payload column, and retained compressed blocks for the
// multi-column strategy.
const (
	bytesPerDistinctKey = 48
	bytesPerPosition    = 8
	bytesPerDenseValue  = 8
	bytesPerBlock       = 64 * 1024
)

// EstimateJoinMemory predicts the resident heap bytes of a partitioned hash
// build over an inner table with the given tuple count, distinct key count,
// and per-payload-column block counts, under one materialization strategy:
//
//	right-materialized: hash entries + one dense array per payload column;
//	right-multicolumn: hash entries + every payload block retained compressed;
//	right-singlecolumn: hash entries only (payload stays on disk, fetched
//	  by the deferred positional join).
//
// distinct <= 0 falls back to tuples (unique-key worst case for the bucket
// map). The estimate is what admission reserves for an in-memory grant, and
// what the spill planner divides by the partition count to pick the resident
// share.
func EstimateJoinMemory(tuples, distinct int64, payloadBlocks []int64, rs operators.RightStrategy) int64 {
	if tuples <= 0 {
		return 0
	}
	if distinct <= 0 || distinct > tuples {
		distinct = tuples
	}
	bytes := distinct*bytesPerDistinctKey + tuples*bytesPerPosition
	switch rs {
	case operators.RightMaterialized:
		bytes += tuples * bytesPerDenseValue * int64(len(payloadBlocks))
	case operators.RightMultiColumn:
		for _, b := range payloadBlocks {
			bytes += b * bytesPerBlock
		}
	}
	return bytes
}
