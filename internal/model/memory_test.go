package model

import (
	"testing"

	"matstore/internal/operators"
)

// TestEstimateJoinMemory pins the memory model's shape: strategies order
// single-column < materialized-with-payload, multi-column scales with block
// counts, and degenerate inputs are safe.
func TestEstimateJoinMemory(t *testing.T) {
	single := EstimateJoinMemory(10_000, 300, []int64{4, 4}, operators.RightSingleColumn)
	mat := EstimateJoinMemory(10_000, 300, []int64{4, 4}, operators.RightMaterialized)
	multi := EstimateJoinMemory(10_000, 300, []int64{4, 4}, operators.RightMultiColumn)

	if single <= 0 {
		t.Fatalf("single-column estimate = %d, want > 0 (hash entries)", single)
	}
	if want := int64(300*bytesPerDistinctKey + 10_000*bytesPerPosition); single != want {
		t.Errorf("single-column = %d, want %d", single, want)
	}
	if mat != single+2*10_000*bytesPerDenseValue {
		t.Errorf("materialized = %d, want single %d + dense arrays", mat, single)
	}
	if multi != single+8*bytesPerBlock {
		t.Errorf("multi-column = %d, want single %d + 8 retained blocks", multi, single)
	}

	// Unknown distinct count falls back to the unique-key worst case.
	worst := EstimateJoinMemory(1000, 0, nil, operators.RightSingleColumn)
	if want := int64(1000*bytesPerDistinctKey + 1000*bytesPerPosition); worst != want {
		t.Errorf("distinct=0 fallback = %d, want %d", worst, want)
	}
	// A distinct count above tuples (stale stats) clamps too.
	if got := EstimateJoinMemory(1000, 5000, nil, operators.RightSingleColumn); got != worst {
		t.Errorf("distinct>tuples = %d, want clamped %d", got, worst)
	}
	if got := EstimateJoinMemory(0, 0, nil, operators.RightMaterialized); got != 0 {
		t.Errorf("empty table estimate = %d, want 0", got)
	}
}
