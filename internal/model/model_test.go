package model

import (
	"math"
	"testing"

	"matstore/internal/core"
)

// close enough for hand-computed formula checks
func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestDS1Formula(t *testing.T) {
	m := Paper
	c := ColumnStats{Blocks: 5, Tuples: 26726, RunLen: 10, F: 0}
	cpu, io := m.DS1(c, 0.5)
	wantCPU := 5*m.BIC + 26726*(m.TICCOL+m.FC)/10 + 0.5*26726*m.FC
	wantIO := (5/m.PF*m.SEEK + 5*m.READ) * 1
	if !approx(cpu, wantCPU) || !approx(io, wantIO) {
		t.Errorf("DS1 = %v,%v want %v,%v", cpu, io, wantCPU, wantIO)
	}
	// Fully buffered column has zero I/O.
	c.F = 1
	if _, io := m.DS1(c, 0.5); io != 0 {
		t.Errorf("DS1 with F=1: io = %v", io)
	}
}

func TestDS2CostsMoreThanDS1(t *testing.T) {
	m := Paper
	c := ColumnStats{Blocks: 5, Tuples: 10000, RunLen: 1}
	cpu1, _ := m.DS1(c, 0.5)
	cpu2, _ := m.DS2(c, 0.5)
	if cpu2 <= cpu1 {
		t.Errorf("DS2 cpu %v should exceed DS1 cpu %v (gluing positions and values)", cpu2, cpu1)
	}
	wantDelta := 0.5 * 10000 * (m.TICTUP + m.FC - m.FC)
	if !approx(cpu2-cpu1, wantDelta) {
		t.Errorf("DS2-DS1 = %v, want %v", cpu2-cpu1, wantDelta)
	}
}

func TestDS3Formula(t *testing.T) {
	m := Paper
	c := ColumnStats{Blocks: 10, Tuples: 80000, RunLen: 4}
	cpu, io := m.DS3(c, 4000, 8, 0.05, false)
	wantCPU := 10*m.BIC + 4000/8.0*m.TICCOL + 4000/8.0*(m.TICCOL+m.FC)
	wantIO := 10/m.PF*m.SEEK + 0.05*10*m.READ
	if !approx(cpu, wantCPU) || !approx(io, wantIO) {
		t.Errorf("DS3 = %v,%v want %v,%v", cpu, io, wantCPU, wantIO)
	}
	// Multi-column reuse: IO -> 0.
	if _, io := m.DS3(c, 4000, 8, 0.05, true); io != 0 {
		t.Errorf("DS3 accessed: io = %v", io)
	}
}

func TestDS4Formula(t *testing.T) {
	m := Paper
	c := ColumnStats{Blocks: 7, Tuples: 50000, RunLen: 1}
	cpu, io := m.DS4(c, 2000, 0.3)
	wantCPU := 7*m.BIC + 2000*m.TICTUP + 2000*(m.FC+m.TICTUP+m.FC) + 0.3*2000*m.TICTUP
	if !approx(cpu, wantCPU) {
		t.Errorf("DS4 cpu = %v, want %v", cpu, wantCPU)
	}
	if io <= 0 {
		t.Error("DS4 must pay full scan IO")
	}
}

func TestANDFormula(t *testing.T) {
	m := Paper
	a := PosList{Positions: 1000, RunLen: 10}
	b := PosList{Positions: 500, RunLen: 1}
	got := m.AND(a, b)
	mx := 500.0 // max(1000/10=100, 500/1=500)
	want := m.TICCOL*100 + m.TICCOL*500 + mx*1*m.FC + mx*m.TICCOL*m.FC
	if !approx(got, want) {
		t.Errorf("AND = %v, want %v", got, want)
	}
	if m.AND(a) != 0 {
		t.Error("AND of one input should be free")
	}
}

func TestANDBitLists(t *testing.T) {
	m := Paper // WordSize 32
	bits := m.BitPosList(3200)
	if bits.RunLen != 32 {
		t.Errorf("bit-list run length = %v, want word size 32", bits.RunLen)
	}
	cost32 := m.AND(bits, bits)
	m64 := Default() // WordSize 64
	cost64 := m64.AND(m64.BitPosList(3200), m64.BitPosList(3200))
	if cost64 >= cost32 {
		t.Errorf("64-bit AND (%v) should be cheaper than 32-bit (%v)", cost64, cost32)
	}
}

func TestMergeFormula(t *testing.T) {
	m := Paper
	if got, want := m.Merge(1000, 2), 1000*2*m.FC*2; !approx(got, want) {
		t.Errorf("Merge = %v, want %v", got, want)
	}
}

func TestSPCFormula(t *testing.T) {
	m := Paper
	cols := []ColumnStats{{Blocks: 2, Tuples: 1000}, {Blocks: 4, Tuples: 1000}}
	sfs := []float64{0.1, 0.5}
	cpu, io := m.SPC(cols, sfs)
	wantCPU := 2*m.BIC + 4*m.BIC + // block iteration
		1000*m.FC + // col 1 predicate on all tuples
		1000*m.FC*0.1 + // col 2 predicate on survivors
		1000*m.TICTUP*0.05 // construct only the passing tuples
	wantIO := (2/m.PF*m.SEEK + 2*m.READ) + (4/m.PF*m.SEEK + 4*m.READ)
	if !approx(cpu, wantCPU) || !approx(io, wantIO) {
		t.Errorf("SPC = %v,%v want %v,%v", cpu, io, wantCPU, wantIO)
	}
}

// lineitemInputs models the paper's Section 3.7 configuration: RLE shipdate
// (1 block, 3800 tuples... scaled here to the full-column counts) and RLE
// linenum.
func lineitemInputs(sfA float64, agg bool) SelectionInputs {
	return SelectionInputs{
		A:           ColumnStats{Blocks: 1, Tuples: 60000, RunLen: 23.75, F: 0},
		B:           ColumnStats{Blocks: 5, Tuples: 60000, RunLen: 8, F: 0},
		SFA:         sfA,
		SFB:         0.96,
		PosRunsA:    EstimatePosRuns(ColumnStats{Tuples: 60000}, sfA, true, 3),
		PosRunsB:    EstimatePosRuns(ColumnStats{Tuples: 60000}, 0.96, true, 3*2526),
		Aggregating: agg,
		Groups:      2526 * sfA,
	}
}

func TestSelectionCostMonotoneInSelectivity(t *testing.T) {
	m := Paper
	for _, s := range core.Strategies {
		last := -1.0
		for _, sf := range []float64{0.01, 0.1, 0.3, 0.6, 0.9, 1.0} {
			c := m.SelectionCost(s, lineitemInputs(sf, false)).Total()
			if c < last {
				t.Errorf("%v: cost not monotone in selectivity (sf=%v: %v < %v)", s, sf, c, last)
			}
			last = c
		}
	}
}

func TestLMBeatsEMOnCompressedAggregation(t *testing.T) {
	// Figure 12(b): with RLE data and aggregation, LM should win across the
	// selectivity range.
	m := Paper
	for _, sf := range []float64{0.1, 0.5, 0.9} {
		in := lineitemInputs(sf, true)
		lm := m.SelectionCost(core.LMParallel, in).Total()
		em := m.SelectionCost(core.EMParallel, in).Total()
		if lm >= em {
			t.Errorf("sf=%v: LM-parallel (%v) should beat EM-parallel (%v) for RLE aggregation", sf, lm, em)
		}
	}
}

func TestAdvisePrefersLMAtLowSelectivity(t *testing.T) {
	m := Paper
	s, _ := m.Advise(lineitemInputs(0.01, false))
	if s == core.EMParallel {
		t.Errorf("Advise at 1%% selectivity chose %v; expected a pipelined/late strategy", s)
	}
	// The paper's heuristic: aggregation -> LM.
	s, _ = m.Advise(lineitemInputs(0.5, true))
	if s != core.LMParallel && s != core.LMPipelined {
		t.Errorf("Advise for aggregation chose %v, want an LM strategy", s)
	}
}

func TestEstimatePosRuns(t *testing.T) {
	c := ColumnStats{Tuples: 60000}
	if got := EstimatePosRuns(c, 0.5, true, 3); !approx(got, 10000) {
		t.Errorf("sorted runs = %v, want 10000", got)
	}
	if got := EstimatePosRuns(c, 0, true, 3); got != 1 {
		t.Errorf("zero-sf runs = %v", got)
	}
	if got := EstimatePosRuns(c, 0.5, false, 0); !approx(got, 2) {
		t.Errorf("unsorted runs = %v, want 2", got)
	}
	if got := EstimatePosRuns(c, 1, false, 0); got != 60000 {
		t.Errorf("sf=1 unsorted = %v, want all", got)
	}
}

func TestMeasureConstantsProducesSaneConstants(t *testing.T) {
	c := MeasureConstants()
	for name, v := range map[string]float64{
		"BIC": c.BIC, "TICTUP": c.TICTUP, "TICCOL": c.TICCOL, "FC": c.FC,
	} {
		// Modern hardware: each should be sub-microsecond but positive.
		if v <= 0 || v > 1.0 {
			t.Errorf("calibrated %s = %vµs out of sane range (0, 1]", name, v)
		}
	}
	if c.WordSize != 64 {
		t.Errorf("WordSize = %v, want 64", c.WordSize)
	}
}

func TestCostArithmetic(t *testing.T) {
	c := Cost{CPU: 10, IO: 5}
	if c.Total() != 15 {
		t.Errorf("Total = %v", c.Total())
	}
	c = c.Add(1, 2)
	if c.CPU != 11 || c.IO != 7 {
		t.Errorf("Add = %+v", c)
	}
	if Micros(1500) != 1500000 {
		t.Errorf("Micros = %v", Micros(1500))
	}
}
