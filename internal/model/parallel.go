package model

import "matstore/internal/core"

// This file extends the paper's single-threaded analytical model to
// morsel-parallel execution. The decomposition follows the executor: the
// plan body (data sources, AND, per-morsel merge/aggregation) runs on W
// workers over disjoint block ranges, while a serial coordinator tail
// remains — recombining per-morsel partials and iterating the output — and
// the I/O terms model a single disk arm, which parallel workers share
// rather than multiply (an Amdahl split with the paper's own cost terms).

// parallelTail returns the CPU (µs) that stays on the coordinator at any
// worker count: the final result iteration plus, for aggregations, emitting
// the sorted group tuples.
func (m Constants) parallelTail(in SelectionInputs) float64 {
	tail := m.OutputIteration(in.outTuples())
	if in.Aggregating {
		tail += in.Groups * m.TICTUP
	}
	return tail
}

// parallelMergeOverhead returns the extra CPU (µs) parallel execution adds
// that serial execution never pays: concatenating per-morsel row partials
// (one extra copy of every output value — the Figure 5 merge formula
// reused), or folding W partial aggregate states (each contributes up to
// Groups entries).
func (m Constants) parallelMergeOverhead(in SelectionInputs, w float64) float64 {
	if in.Aggregating {
		return w * in.Groups * m.TICTUP
	}
	return m.Merge(in.outTuples(), 2)
}

// ParallelSelectionCost predicts the cost of the selection under strategy s
// at the given worker count: the morsel-parallel plan CPU divides across
// workers, the coordinator tail and partial-merge overhead do not, and the
// I/O term is unchanged (one disk arm serves all workers; with a warm pool,
// F=1 and the term is zero anyway). workers <= 1 reproduces SelectionCost.
func (m Constants) ParallelSelectionCost(s core.Strategy, in SelectionInputs, workers int) Cost {
	c := m.SelectionCost(s, in)
	if workers <= 1 {
		return c
	}
	w := float64(workers)
	tail := m.parallelTail(in)
	body := c.CPU - tail
	if body < 0 {
		body = 0
	}
	c.CPU = body/w + tail + m.parallelMergeOverhead(in, w)
	return c
}

// AdviseParallel returns the strategy with the lowest predicted total cost
// at the given worker count. Parallelism can move the crossover: strategies
// whose serial disadvantage is plan-body CPU (e.g. EM-parallel's eager
// tuple construction) regain ground as W grows, while coordinator-tail
// costs (output iteration) stay fixed.
func (m Constants) AdviseParallel(in SelectionInputs, workers int) (core.Strategy, Cost) {
	best := core.EMParallel
	bestCost := m.ParallelSelectionCost(best, in, workers)
	for _, s := range []core.Strategy{core.EMPipelined, core.LMPipelined, core.LMParallel} {
		if c := m.ParallelSelectionCost(s, in, workers); c.Total() < bestCost.Total() {
			best, bestCost = s, c
		}
	}
	return best, bestCost
}

// Speedup returns the predicted parallel speedup of strategy s at the given
// worker count (serial total / parallel total).
func (m Constants) Speedup(s core.Strategy, in SelectionInputs, workers int) float64 {
	serial := m.SelectionCost(s, in).Total()
	par := m.ParallelSelectionCost(s, in, workers).Total()
	if par <= 0 {
		return 1
	}
	return serial / par
}
