package model

import (
	"testing"

	"matstore/internal/core"
)

func parallelInputs(agg bool) SelectionInputs {
	col := ColumnStats{Blocks: 100, Tuples: 800_000, RunLen: 1, F: 1}
	in := SelectionInputs{
		A: col, B: col, SFA: 0.1, SFB: 0.96,
		PosRunsA: 100, PosRunsB: 10,
	}
	if agg {
		in.Aggregating = true
		in.Groups = 50
	}
	return in
}

func TestParallelCostMatchesSerialAtOneWorker(t *testing.T) {
	in := parallelInputs(false)
	m := Default()
	for _, s := range core.Strategies {
		serial := m.SelectionCost(s, in)
		for _, w := range []int{0, 1} {
			if got := m.ParallelSelectionCost(s, in, w); got != serial {
				t.Errorf("%v workers=%d: %v, want serial %v", s, w, got, serial)
			}
		}
	}
}

func TestParallelCostDecreasesWithWorkers(t *testing.T) {
	m := Default()
	for _, agg := range []bool{false, true} {
		in := parallelInputs(agg)
		for _, s := range core.Strategies {
			prev := m.ParallelSelectionCost(s, in, 1).Total()
			for _, w := range []int{2, 4, 8} {
				cur := m.ParallelSelectionCost(s, in, w).Total()
				if cur >= prev {
					t.Errorf("agg=%v %v: cost at %d workers (%.1f) not below previous (%.1f)",
						agg, s, w, cur, prev)
				}
				prev = cur
			}
		}
	}
}

func TestParallelCostKeepsIOUnscaled(t *testing.T) {
	// Cold pool: the disk-arm term must not divide across workers.
	in := parallelInputs(false)
	in.A.F = 0
	in.B.F = 0
	m := Default()
	for _, s := range core.Strategies {
		serial := m.SelectionCost(s, in)
		par := m.ParallelSelectionCost(s, in, 8)
		if par.IO != serial.IO {
			t.Errorf("%v: parallel IO %.1f, serial IO %.1f", s, par.IO, serial.IO)
		}
	}
}

func TestParallelSpeedupBoundedByWorkers(t *testing.T) {
	m := Default()
	in := parallelInputs(false)
	for _, s := range core.Strategies {
		for _, w := range []int{2, 4, 16} {
			sp := m.Speedup(s, in, w)
			if sp <= 1 || sp > float64(w) {
				t.Errorf("%v: speedup at %d workers = %.2f, want in (1, %d]", s, w, sp, w)
			}
		}
	}
}

func TestAdviseParallelPicksMinimum(t *testing.T) {
	m := Default()
	for _, agg := range []bool{false, true} {
		in := parallelInputs(agg)
		for _, w := range []int{1, 4} {
			best, bestCost := m.AdviseParallel(in, w)
			for _, s := range core.Strategies {
				if c := m.ParallelSelectionCost(s, in, w); c.Total() < bestCost.Total() {
					t.Errorf("agg=%v workers=%d: Best=%v(%.1f) but %v is cheaper (%.1f)",
						agg, w, best, bestCost.Total(), s, c.Total())
				}
			}
		}
	}
}
