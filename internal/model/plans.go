package model

import (
	"fmt"

	"matstore/internal/core"
)

// SelectionInputs describes the paper's two-predicate selection query
//
//	SELECT A, B FROM proj WHERE predA(A) AND predB(B)
//	[GROUP BY A -> SELECT A, SUM(B)]
//
// to the plan-level model. A is the first (pipelined) predicate column.
type SelectionInputs struct {
	A, B ColumnStats
	// SFA and SFB are the predicate selectivities.
	SFA, SFB float64
	// PosRunsA is RLp for the position list produced by A's predicate: the
	// average run length of matching positions. For predicates over sorted
	// or RLE data matches are contiguous, so this is large; for unsorted
	// data it approaches 1.
	PosRunsA float64
	// PosRunsB is the same for B's predicate output.
	PosRunsB float64
	// Aggregating adds a SUM(B) GROUP BY A on top.
	Aggregating bool
	// Groups is the expected number of groups (used for the aggregation
	// output size; ignored unless Aggregating).
	Groups float64
}

func (in SelectionInputs) outTuples() float64 {
	if in.Aggregating {
		return in.Groups
	}
	return in.SFA * in.SFB * in.A.Tuples
}

// Cost is a decomposed plan cost in microseconds.
type Cost struct {
	CPU float64
	IO  float64
}

// Total returns CPU+IO.
func (c Cost) Total() float64 { return c.CPU + c.IO }

// Add accumulates another cost.
func (c Cost) Add(cpu, io float64) Cost { return Cost{c.CPU + cpu, c.IO + io} }

func (c Cost) String() string { return fmt.Sprintf("cpu=%.0fµs io=%.0fµs", c.CPU, c.IO) }

// SelectionCost predicts the cost of running the selection under the given
// strategy, composing the Figure 1–6 operator formulas the same way the
// executor composes the operators (Section 3.5 plans).
func (m Constants) SelectionCost(s core.Strategy, in SelectionInputs) Cost {
	switch s {
	case core.EMParallel:
		return m.emParallel(in)
	case core.EMPipelined:
		return m.emPipelined(in)
	case core.LMParallel:
		return m.lmParallel(in)
	case core.LMPipelined:
		return m.lmPipelined(in)
	default:
		return Cost{}
	}
}

// emParallel: SPC over both columns, then aggregation or output iteration.
func (m Constants) emParallel(in SelectionInputs) Cost {
	var c Cost
	cpu, io := m.SPC([]ColumnStats{in.A, in.B}, []float64{in.SFA, in.SFB})
	c = c.Add(cpu, io)
	c = c.Add(m.aggOrIterate(in, in.SFA*in.SFB*in.A.Tuples), 0)
	return c
}

// emPipelined: DS2 on A producing (pos,val) tuples, DS4 on B widening them.
func (m Constants) emPipelined(in SelectionInputs) Cost {
	var c Cost
	cpu, io := m.DS2(in.A, in.SFA)
	c = c.Add(cpu, io)
	em := in.SFA * in.A.Tuples
	cpu, io = m.DS4(in.B, em, in.SFB)
	// Pipelined block skipping: only the fraction of B's blocks containing
	// qualifying positions is read and iterated. With clustered matches
	// (sorted first column) that fraction approaches SFA.
	skip := in.SFA
	if skip > 1 {
		skip = 1
	}
	cpu -= (1 - skip) * in.B.Blocks * m.BIC
	io *= skip
	c = c.Add(cpu, io)
	c = c.Add(m.aggOrIterate(in, em*in.SFB), 0)
	return c
}

// lmParallel: DS1 on A and B, AND, DS3 on A and B from multi-columns,
// MERGE, then aggregation or output iteration.
func (m Constants) lmParallel(in SelectionInputs) Cost {
	var c Cost
	cpu, io := m.DS1(in.A, in.SFA)
	c = c.Add(cpu, io)
	cpu, io = m.DS1(in.B, in.SFB)
	c = c.Add(cpu, io)
	c = c.Add(m.AND(
		PosList{Positions: in.SFA * in.A.Tuples, RunLen: in.PosRunsA},
		PosList{Positions: in.SFB * in.B.Tuples, RunLen: in.PosRunsB},
	), 0)
	matched := in.SFA * in.SFB * in.A.Tuples
	rlp := in.PosRunsA
	if in.PosRunsB < rlp {
		rlp = in.PosRunsB
	}
	if in.Aggregating {
		// Aggregation operates directly on the compressed mini-columns: the
		// per-run cost of walking key runs plus emitting group tuples.
		c = c.Add(matched/in.A.rl()*(m.TICCOL+m.FC)+in.Groups*m.TICTUP, 0)
		c = c.Add(m.OutputIteration(in.Groups), 0)
		return c
	}
	cpu, io = m.DS3(in.A, matched, rlp, in.SFA*in.SFB, true)
	c = c.Add(cpu, io)
	cpu, io = m.DS3(in.B, matched, rlp, in.SFA*in.SFB, true)
	c = c.Add(cpu, io)
	c = c.Add(m.Merge(matched, 2), 0)
	c = c.Add(m.OutputIteration(matched), 0)
	return c
}

// lmPipelined: DS1 on A; DS3+predicate on B restricted to A's positions
// (which also skips B blocks outside those positions); DS3 value extraction
// at the final positions; MERGE.
func (m Constants) lmPipelined(in SelectionInputs) Cost {
	var c Cost
	cpu, io := m.DS1(in.A, in.SFA)
	c = c.Add(cpu, io)
	posA := in.SFA * in.A.Tuples
	// DS3 over B at A's positions plus a predicate application per value.
	cpu, io = m.DS3(in.B, posA, in.PosRunsA, in.SFA, false)
	cpu += posA * m.FC // predicate on the extracted subset
	c = c.Add(cpu, io)
	matched := in.SFA * in.SFB * in.A.Tuples
	rlp := in.PosRunsA
	if in.PosRunsB < rlp {
		rlp = in.PosRunsB
	}
	if in.Aggregating {
		c = c.Add(matched/in.A.rl()*(m.TICCOL+m.FC)+in.Groups*m.TICTUP, 0)
		c = c.Add(m.OutputIteration(in.Groups), 0)
		return c
	}
	cpu, io = m.DS3(in.A, matched, rlp, in.SFA*in.SFB, true)
	c = c.Add(cpu, io)
	cpu, io = m.DS3(in.B, matched, rlp, in.SFA*in.SFB, true)
	c = c.Add(cpu, io)
	c = c.Add(m.Merge(matched, 2), 0)
	c = c.Add(m.OutputIteration(matched), 0)
	return c
}

// aggOrIterate returns the post-plan CPU for EM strategies: hash
// aggregation over constructed tuples plus group iteration, or plain output
// iteration.
func (m Constants) aggOrIterate(in SelectionInputs, tuples float64) float64 {
	if in.Aggregating {
		return tuples*(m.TICTUP+m.FC) + in.Groups*m.TICTUP + m.OutputIteration(in.Groups)
	}
	return m.OutputIteration(tuples)
}

// Advise returns the strategy with the lowest predicted total cost — the
// optimizer decision procedure the paper proposes.
func (m Constants) Advise(in SelectionInputs) (core.Strategy, Cost) {
	best := core.EMParallel
	bestCost := m.SelectionCost(best, in)
	for _, s := range []core.Strategy{core.EMPipelined, core.LMPipelined, core.LMParallel} {
		if c := m.SelectionCost(s, in); c.Total() < bestCost.Total() {
			best, bestCost = s, c
		}
	}
	return best, bestCost
}

// EstimatePosRuns estimates RLp, the average run length of the position
// list produced by a predicate with selectivity sf over a column: for
// sorted/RLE columns matches are contiguous within each sorted segment
// (clusters estimates how many such segments the matches split across,
// e.g. the number of primary-sort-key groups when the column is the
// secondary sort key); for unsorted columns runs average ~1/(1-sf)
// (geometric runs of independent matches).
func EstimatePosRuns(c ColumnStats, sf float64, sorted bool, clusters float64) float64 {
	if sf <= 0 {
		return 1
	}
	if sorted {
		if clusters < 1 {
			clusters = 1
		}
		rl := sf * c.Tuples / clusters
		if rl < 1 {
			return 1
		}
		return rl
	}
	if sf >= 1 {
		return c.Tuples
	}
	return 1 / (1 - sf)
}
