// Package multicol implements the multi-column data structure of Section
// 3.6: an in-memory horizontal partition of a subset of a relation's
// attributes, consisting of a covering position range, an array of
// mini-columns (one per attribute, kept in native compressed form), and a
// position descriptor marking which positions within the range remain valid
// as predicates are applied.
//
// ANDing multi-columns intersects their descriptors and takes the union of
// their mini-columns (pointer copies, zero cost) — which is what lets a DS3
// operator downstream produce values without re-accessing the column.
package multicol

import (
	"fmt"
	"sort"

	"matstore/internal/encoding"
	"matstore/internal/positions"
)

// MultiColumn is one horizontal partition flowing up a late-materialization
// plan.
type MultiColumn struct {
	cov   positions.Range
	desc  positions.Set
	names []string
	minis map[string]encoding.MiniColumn
}

// New creates a multi-column covering cov with all positions initially
// valid (a full-range descriptor), holding no mini-columns yet.
func New(cov positions.Range) *MultiColumn {
	return &MultiColumn{
		cov:   cov,
		desc:  positions.NewRanges(cov),
		minis: make(map[string]encoding.MiniColumn),
	}
}

// Covering returns the covering position range.
func (m *MultiColumn) Covering() positions.Range { return m.cov }

// Descriptor returns the current position descriptor.
func (m *MultiColumn) Descriptor() positions.Set { return m.desc }

// SetDescriptor replaces the position descriptor (e.g. after a data source
// applies its predicate). The mini-columns remain untouched, exactly as the
// paper describes.
func (m *MultiColumn) SetDescriptor(desc positions.Set) { m.desc = desc }

// ValidCount returns the number of valid positions.
func (m *MultiColumn) ValidCount() int64 { return m.desc.Count() }

// Attach adds (or replaces) the mini-column for an attribute. The
// mini-column must cover the multi-column's range.
func (m *MultiColumn) Attach(name string, mc encoding.MiniColumn) {
	if mc.Covering() != m.cov && !mc.Covering().Empty() {
		panic(fmt.Sprintf("multicol: mini-column %s covers %v, multi-column covers %v",
			name, mc.Covering(), m.cov))
	}
	if _, dup := m.minis[name]; !dup {
		m.names = append(m.names, name)
	}
	m.minis[name] = mc
}

// Mini returns the mini-column for an attribute, if attached.
func (m *MultiColumn) Mini(name string) (encoding.MiniColumn, bool) {
	mc, ok := m.minis[name]
	return mc, ok
}

// Degree returns the number of attached mini-columns (the paper's "degree"
// of a multi-column).
func (m *MultiColumn) Degree() int { return len(m.minis) }

// Names returns the attached attribute names, sorted.
func (m *MultiColumn) Names() []string {
	out := append([]string(nil), m.names...)
	sort.Strings(out)
	return out
}

// And combines two multi-columns with identical covering ranges: the result
// descriptor is the intersection of the inputs' descriptors, and the result
// mini-column set is the union of the inputs' (pointer copies).
func And(a, b *MultiColumn) *MultiColumn {
	if a.cov != b.cov {
		panic(fmt.Sprintf("multicol: And over mismatched covers %v vs %v", a.cov, b.cov))
	}
	out := &MultiColumn{
		cov:   a.cov,
		desc:  positions.And(a.desc, b.desc),
		minis: make(map[string]encoding.MiniColumn, len(a.minis)+len(b.minis)),
	}
	for _, n := range a.names {
		out.Attach(n, a.minis[n])
	}
	for _, n := range b.names {
		if _, dup := out.minis[n]; !dup {
			out.Attach(n, b.minis[n])
		}
	}
	return out
}

// AndAll folds And over several multi-columns.
func AndAll(ms ...*MultiColumn) *MultiColumn {
	if len(ms) == 0 {
		panic("multicol: AndAll of nothing")
	}
	out := ms[0]
	for _, m := range ms[1:] {
		out = And(out, m)
	}
	return out
}
