package multicol

import (
	"reflect"
	"testing"

	"matstore/internal/encoding"
	"matstore/internal/positions"
)

func rangeOf(s, e int64) positions.Range { return positions.Range{Start: s, End: e} }

func TestNewStartsFullyValid(t *testing.T) {
	m := New(rangeOf(0, 100))
	if m.Covering() != rangeOf(0, 100) {
		t.Errorf("Covering = %v", m.Covering())
	}
	if m.ValidCount() != 100 {
		t.Errorf("ValidCount = %d, want all positions valid initially", m.ValidCount())
	}
	if m.Degree() != 0 {
		t.Errorf("Degree = %d", m.Degree())
	}
}

func TestAttachAndLookup(t *testing.T) {
	m := New(rangeOf(0, 4))
	mini := encoding.PlainMiniFromValues(0, []int64{1, 2, 3, 4})
	m.Attach("a", mini)
	got, ok := m.Mini("a")
	if !ok || got != encoding.MiniColumn(mini) {
		t.Error("Mini(a) lookup failed")
	}
	if _, ok := m.Mini("b"); ok {
		t.Error("Mini(b) should not exist")
	}
	if m.Degree() != 1 {
		t.Errorf("Degree = %d", m.Degree())
	}
	// Replacing does not change degree.
	m.Attach("a", encoding.PlainMiniFromValues(0, []int64{9, 9, 9, 9}))
	if m.Degree() != 1 {
		t.Errorf("Degree after replace = %d", m.Degree())
	}
	if !reflect.DeepEqual(m.Names(), []string{"a"}) {
		t.Errorf("Names = %v", m.Names())
	}
}

func TestAttachMismatchedCoverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched mini-column cover accepted")
		}
	}()
	m := New(rangeOf(0, 4))
	m.Attach("a", encoding.PlainMiniFromValues(0, []int64{1, 2}))
}

func TestSetDescriptorLeavesMinisUntouched(t *testing.T) {
	m := New(rangeOf(0, 4))
	mini := encoding.PlainMiniFromValues(0, []int64{1, 2, 3, 4})
	m.Attach("a", mini)
	m.SetDescriptor(positions.NewRanges(rangeOf(1, 3)))
	if m.ValidCount() != 2 {
		t.Errorf("ValidCount = %d", m.ValidCount())
	}
	got, _ := m.Mini("a")
	if got != encoding.MiniColumn(mini) {
		t.Error("descriptor replacement touched the mini-column")
	}
}

// TestAnd checks the paper's multi-column AND semantics: descriptor
// intersection plus mini-column union by pointer copy.
func TestAnd(t *testing.T) {
	a := New(rangeOf(0, 8))
	miniA := encoding.RLEMiniFromValues(0, []int64{5, 5, 5, 5, 6, 6, 6, 6})
	a.Attach("x", miniA)
	a.SetDescriptor(positions.NewRanges(rangeOf(0, 6)))

	b := New(rangeOf(0, 8))
	miniB := encoding.PlainMiniFromValues(0, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	b.Attach("y", miniB)
	b.SetDescriptor(positions.NewRanges(rangeOf(4, 8)))

	out := And(a, b)
	if out.Covering() != rangeOf(0, 8) {
		t.Errorf("Covering = %v", out.Covering())
	}
	if !positions.Equal(out.Descriptor(), positions.NewRanges(rangeOf(4, 6))) {
		t.Errorf("Descriptor = %v", positions.Slice(out.Descriptor()))
	}
	gx, ok := out.Mini("x")
	if !ok || gx != encoding.MiniColumn(miniA) {
		t.Error("mini x not carried by pointer")
	}
	gy, ok := out.Mini("y")
	if !ok || gy != encoding.MiniColumn(miniB) {
		t.Error("mini y not carried by pointer")
	}
	if out.Degree() != 2 {
		t.Errorf("Degree = %d", out.Degree())
	}
}

func TestAndDuplicateAttributeKeepsFirst(t *testing.T) {
	a := New(rangeOf(0, 4))
	miniA := encoding.PlainMiniFromValues(0, []int64{1, 1, 1, 1})
	a.Attach("x", miniA)
	b := New(rangeOf(0, 4))
	b.Attach("x", encoding.PlainMiniFromValues(0, []int64{2, 2, 2, 2}))
	out := And(a, b)
	got, _ := out.Mini("x")
	if got != encoding.MiniColumn(miniA) {
		t.Error("duplicate attribute did not keep the left operand's mini")
	}
}

func TestAndMismatchedCoversPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched covers accepted")
		}
	}()
	And(New(rangeOf(0, 4)), New(rangeOf(0, 8)))
}

func TestAndAll(t *testing.T) {
	ms := make([]*MultiColumn, 3)
	for i := range ms {
		ms[i] = New(rangeOf(0, 10))
		ms[i].SetDescriptor(positions.NewRanges(rangeOf(int64(i), int64(i)+5)))
	}
	out := AndAll(ms...)
	if !positions.Equal(out.Descriptor(), positions.NewRanges(rangeOf(2, 5))) {
		t.Errorf("AndAll descriptor = %v", positions.Slice(out.Descriptor()))
	}
	single := AndAll(ms[0])
	if single != ms[0] {
		t.Error("AndAll of one should return it unchanged")
	}
}

func TestAndAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AndAll() accepted")
		}
	}()
	AndAll()
}
