package obs

import (
	"context"
	"testing"
)

// BenchmarkSpanDisabledPath pins the disabled-tracing contract: with no
// trace attached to the context, the full instrumentation sequence a request
// phase pays — context lookup, child span, attribute, end — is nil checks
// only: 0 allocs/op, no clock read.
func BenchmarkSpanDisabledPath(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span := SpanFromContext(ctx)
		c := span.Child("phase")
		c.SetAttr("k", i)
		c.End()
	}
}

// BenchmarkSpanEnabledPath is the paired cost when a trace IS attached.
func BenchmarkSpanEnabledPath(b *testing.B) {
	tr := NewTrace("", "bench")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span := SpanFromContext(ctx)
		c := span.Child("phase")
		c.SetAttr("k", i)
		c.End()
	}
}

// BenchmarkHistogramObserve pins the hot-path metric cost: a handful of
// atomics, 0 allocs/op.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.NewHistogram("bench_seconds", "bench", LatencyBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 1e6)
	}
}
