package obs

import "context"

type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the current span. A nil span
// returns ctx unchanged, so the disabled path allocates nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil when no trace is
// attached. Nil feeds straight into the nil-safe Span methods.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
