package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Logger writes structured JSON lines: {"ts":...,"level":...,"msg":...}
// plus base fields (With) and per-call key/value pairs, in call order —
// field order is deterministic so smoke tests can grep lines. A nil Logger
// is a no-op, so instrumented code never branches on "is logging on".
type Logger struct {
	mu   *sync.Mutex
	w    io.Writer
	base []byte // pre-encoded `,"k":v` pairs stamped on every line
}

// NewLogger returns a logger writing one JSON object per line to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w}
}

// With returns a logger stamping the given key/value pairs (alternating
// key, value) on every line. The parent's writer and mutex are shared, so
// derived loggers interleave safely.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	base := append([]byte(nil), l.base...)
	return &Logger{mu: l.mu, w: l.w, base: appendKV(base, kv)}
}

// Info writes a level=info line.
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv) }

// Error writes a level=error line.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv) }

func (l *Logger) log(level, msg string, kv []any) {
	if l == nil {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	buf = strconv.AppendQuote(buf, time.Now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":`...)
	buf = strconv.AppendQuote(buf, level)
	buf = append(buf, `,"msg":`...)
	buf = strconv.AppendQuote(buf, msg)
	buf = append(buf, l.base...)
	buf = appendKV(buf, kv)
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}

// appendKV encodes alternating key/value pairs as `,"k":v` JSON fragments.
// Values marshal through encoding/json; a value that fails to marshal is
// rendered as its error string rather than dropping the line.
func appendKV(buf []byte, kv []any) []byte {
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = "badkey"
		}
		buf = append(buf, ',')
		buf = strconv.AppendQuote(buf, key)
		buf = append(buf, ':')
		raw, err := json.Marshal(kv[i+1])
		if err != nil {
			raw, _ = json.Marshal(err.Error())
		}
		buf = append(buf, raw...)
	}
	return buf
}
