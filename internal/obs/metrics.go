package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Hand-rolled Prometheus-text metrics: counters, gauges and fixed-bucket
// histograms behind one Registry that renders the text exposition format
// (the /metrics wire format) deterministically. No client library — the
// serving stack needs exactly three primitives and a writer, and the
// container bakes in no dependencies.
//
// Hot-path cost: Counter.Add and Histogram.Observe are a handful of atomic
// operations and allocate nothing. Vec lookups (label resolution) build a
// key string — callers on allocation-sensitive paths pre-resolve with With()
// at construction time and hold the child.

// Sample is one rendered series: full name (with any _bucket/_sum/_count
// suffix), ordered labels, value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label is one name="value" pair.
type Label struct{ Key, Value string }

type metricFamily interface {
	desc() (name, help, typ string)
	samples() []Sample
}

// Registry holds metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families []metricFamily
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(f metricFamily) {
	r.mu.Lock()
	r.families = append(r.families, f)
	r.mu.Unlock()
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

type counterFamily struct {
	name, help string
	c          Counter
}

func (f *counterFamily) desc() (string, string, string) { return f.name, f.help, "counter" }
func (f *counterFamily) samples() []Sample {
	return []Sample{{Name: f.name, Value: float64(f.c.Value())}}
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := &counterFamily{name: name, help: help}
	r.register(f)
	return &f.c
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	kids       map[string]*Counter
}

func (v *CounterVec) desc() (string, string, string) { return v.name, v.help, "counter" }

// With returns (creating if needed) the child counter for the label values.
// The lookup builds a key string; pre-resolve outside hot loops.
func (v *CounterVec) With(values ...string) *Counter {
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[key]; ok {
		return c
	}
	c := &Counter{}
	v.kids[key] = c
	return c
}

// Snapshot returns the vec's current series — the /stats-style summary hook
// for callers that want the counts without a full text scrape.
func (v *CounterVec) Snapshot() []Sample { return v.samples() }

func (v *CounterVec) samples() []Sample {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, Sample{Name: v.name, Labels: zipLabels(v.labels, k), Value: float64(v.kids[k].Value())})
	}
	return out
}

func zipLabels(names []string, key string) []Label {
	values := strings.Split(key, "\x00")
	ls := make([]Label, len(names))
	for i, n := range names {
		val := ""
		if i < len(values) {
			val = values[i]
		}
		ls[i] = Label{Key: n, Value: val}
	}
	return ls
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, kids: map[string]*Counter{}}
	r.register(v)
	return v
}

type gaugeFunc struct {
	name, help string
	fn         func() float64
}

func (f *gaugeFunc) desc() (string, string, string) { return f.name, f.help, "gauge" }
func (f *gaugeFunc) samples() []Sample {
	return []Sample{{Name: f.name, Value: f.fn()}}
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFunc{name: name, help: help, fn: fn})
}

type constMetric struct {
	name, help, typ string
	labels          []string
	collect         func(emit func(values []string, v float64))
}

func (f *constMetric) desc() (string, string, string) { return f.name, f.help, f.typ }
func (f *constMetric) samples() []Sample {
	var out []Sample
	f.collect(func(values []string, v float64) {
		out = append(out, Sample{Name: f.name, Labels: zipLabels(f.labels, strings.Join(values, "\x00")), Value: v})
	})
	sort.Slice(out, func(i, j int) bool { return labelsLess(out[i].Labels, out[j].Labels) })
	return out
}

func labelsLess(a, b []Label) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i].Value != b[i].Value {
			return a[i].Value < b[i].Value
		}
	}
	return len(a) < len(b)
}

// NewCollector registers a family whose series are derived at scrape time
// from existing stats snapshots (avoids double-instrumenting subsystems
// that already count): collect is called per scrape and emits each series'
// label values and value. typ is "counter" or "gauge".
func (r *Registry) NewCollector(name, help, typ string, labels []string, collect func(emit func(values []string, v float64))) {
	r.register(&constMetric{name: name, help: help, typ: typ, labels: labels, collect: collect})
}

// Histogram is a fixed-bucket histogram: atomic per-bucket counts plus a
// CAS-maintained float sum. Observe is allocation-free.
type Histogram struct {
	upper   []float64 // ascending upper bounds; the implicit last bucket is +Inf
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{upper: up, counts: make([]atomic.Int64, len(up)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total observation count.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// bucketSamples renders the cumulative _bucket/_sum/_count series.
func (h *Histogram) bucketSamples(name string, base []Label) []Sample {
	out := make([]Sample, 0, len(h.upper)+3)
	var cum int64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		out = append(out, Sample{
			Name:   name + "_bucket",
			Labels: append(append([]Label{}, base...), Label{Key: "le", Value: formatFloat(ub)}),
			Value:  float64(cum),
		})
	}
	cum += h.counts[len(h.upper)].Load()
	out = append(out, Sample{
		Name:   name + "_bucket",
		Labels: append(append([]Label{}, base...), Label{Key: "le", Value: "+Inf"}),
		Value:  float64(cum),
	})
	out = append(out, Sample{Name: name + "_sum", Labels: base, Value: math.Float64frombits(h.sumBits.Load())})
	out = append(out, Sample{Name: name + "_count", Labels: base, Value: float64(cum)})
	return out
}

type histogramFamily struct {
	name, help string
	h          *Histogram
}

func (f *histogramFamily) desc() (string, string, string) { return f.name, f.help, "histogram" }
func (f *histogramFamily) samples() []Sample              { return f.h.bucketSamples(f.name, nil) }

// NewHistogram registers an unlabeled histogram over the given bucket upper
// bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := &histogramFamily{name: name, help: help, h: newHistogram(buckets)}
	r.register(f)
	return f.h
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.Mutex
	kids       map[string]*Histogram
}

func (v *HistogramVec) desc() (string, string, string) { return v.name, v.help, "histogram" }

// With returns (creating if needed) the child histogram for the label
// values. Pre-resolve outside hot loops.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.kids[key]; ok {
		return h
	}
	h := newHistogram(v.buckets)
	v.kids[key] = h
	return h
}

func (v *HistogramVec) samples() []Sample {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Sample
	for _, k := range keys {
		out = append(out, v.kids[k].bucketSamples(v.name, zipLabels(v.labels, k))...)
	}
	return out
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{name: name, help: help, labels: labels, buckets: buckets, kids: map[string]*Histogram{}}
	r.register(v)
	return v
}

// LatencyBuckets is the fixed log-scale (1-2.5-5 per decade) latency bucket
// ladder in seconds, 100µs through 10s — wide enough for cache hits and
// spilled fan-outs on the same axis.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05,
		0.1, 0.25, 0.5,
		1, 2.5, 5, 10,
	}
}

// ExpBuckets returns count buckets starting at start, each factor× the
// previous — e.g. ExpBuckets(1, 2, 7) = 1,2,4,8,16,32,64 for worker grants.
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Gather snapshots every family's samples in family registration units,
// sorted by family name (stable across scrapes: series order within a
// family is deterministic by construction).
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	fams := append([]metricFamily(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool {
		ni, _, _ := fams[i].desc()
		nj, _, _ := fams[j].desc()
		return ni < nj
	})
	var out []Sample
	for _, f := range fams {
		out = append(out, f.samples()...)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE per family, then each series.
// Output is deterministic for a fixed set of observed label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]metricFamily(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool {
		ni, _, _ := fams[i].desc()
		nj, _, _ := fams[j].desc()
		return ni < nj
	})
	var b strings.Builder
	for _, f := range fams {
		name, help, typ := f.desc()
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		for _, s := range f.samples() {
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Key)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ParsePrometheus parses text in the Prometheus exposition format back into
// samples, validating the format as it goes: every series must follow a
// # TYPE line for its family, label syntax must be well-formed, and values
// must parse as floats. It is the round-trip half of the /metrics contract
// test (and deliberately strict — a malformed exposition fails loudly).
func ParsePrometheus(text string) ([]Sample, error) {
	var out []Sample
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unknown comment %q", ln+1, line)
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if familyOf(s.Name, typed) == "" {
			return nil, fmt.Errorf("line %d: series %q has no preceding # TYPE", ln+1, s.Name)
		}
		out = append(out, s)
	}
	return out, nil
}

// familyOf resolves a series name to its typed family, accounting for
// histogram suffixes.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return ""
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed series line %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		body, tail := rest[1:end], rest[end+1:]
		for len(body) > 0 {
			eq := strings.Index(body, "=\"")
			if eq < 0 {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			key := body[:eq]
			body = body[eq+2:]
			var val strings.Builder
			i := 0
			for ; i < len(body); i++ {
				if body[i] == '\\' && i+1 < len(body) {
					i++
					switch body[i] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(body[i])
					}
					continue
				}
				if body[i] == '"' {
					break
				}
				val.WriteByte(body[i])
			}
			if i >= len(body) {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			s.Labels = append(s.Labels, Label{Key: key, Value: val.String()})
			body = strings.TrimPrefix(body[i+1:], ",")
		}
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	var v float64
	switch rest {
	case "+Inf":
		v = math.Inf(1)
	case "-Inf":
		v = math.Inf(-1)
	default:
		var err error
		if v, err = strconv.ParseFloat(rest, 64); err != nil {
			return s, fmt.Errorf("bad value %q: %w", rest, err)
		}
	}
	s.Value = v
	return s, nil
}
