package obs

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []float64{0.001, 0.01, 0.1})
	// Prometheus buckets are upper-inclusive: an observation exactly on a
	// bound lands in that bucket.
	h.Observe(0.0005) // bucket 0
	h.Observe(0.001)  // bucket 0 (le=0.001 inclusive)
	h.Observe(0.0011) // bucket 1
	h.Observe(0.1)    // bucket 2
	h.Observe(99)     // +Inf
	want := []int64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	samples := r.Gather()
	// Cumulative rendering: le=0.001 → 2, le=0.01 → 3, le=0.1 → 4, +Inf → 5.
	wantCum := map[string]float64{"0.001": 2, "0.01": 3, "0.1": 4, "+Inf": 5}
	for _, s := range samples {
		if s.Name != "lat_bucket" {
			continue
		}
		le := s.Labels[len(s.Labels)-1].Value
		if s.Value != wantCum[le] {
			t.Fatalf("le=%s cum = %v, want %v", le, s.Value, wantCum[le])
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", LatencyBuckets())
	var wg sync.WaitGroup
	const workers, per = 8, 1024
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%16) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var wantSum float64
	for i := 0; i < 16; i++ {
		wantSum += float64(i) * 0.001
	}
	wantSum *= workers * per / 16
	gotSum := math.Float64frombits(h.sumBits.Load())
	if math.Abs(gotSum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", gotSum, wantSum)
	}
}

// TestPrometheusRoundTrip pins the /metrics wire contract: rendering the
// registry and parsing the text back must reproduce the Gather() samples
// exactly — names, label sets, values — and rendering twice must be
// byte-identical (deterministic ordering).
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cs_queries_total", "total queries")
	c.Add(7)
	cv := r.NewCounterVec("cs_requests_total", "requests by endpoint", "endpoint", "outcome")
	cv.With("/query", "ok").Add(3)
	cv.With("/join", "error").Inc()
	r.NewGaugeFunc("cs_uptime_seconds", "uptime", func() float64 { return 12.5 })
	h := r.NewHistogram("cs_request_seconds", "request latency", LatencyBuckets())
	h.Observe(0.003)
	h.Observe(0.2)
	hv := r.NewHistogramVec("cs_shard_request_seconds", "shard latency", []float64{0.01, 0.1}, "shard")
	hv.With("0").Observe(0.05)
	r.NewCollector("cs_cache_events_total", "cache events", "counter", []string{"cache", "event"},
		func(emit func([]string, float64)) {
			emit([]string{"result", "hit"}, 4)
			emit([]string{"result", `mi"ss\strange`}, 2)
		})

	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("rendering is not deterministic")
	}
	parsed, err := ParsePrometheus(b1.String())
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, b1.String())
	}
	want := r.Gather()
	if len(parsed) != len(want) {
		t.Fatalf("parsed %d samples, want %d", len(parsed), len(want))
	}
	for i := range want {
		if parsed[i].Name != want[i].Name || !reflect.DeepEqual(parsed[i].Labels, want[i].Labels) {
			t.Fatalf("sample %d: parsed %+v, want %+v", i, parsed[i], want[i])
		}
		// +Inf compares by equality; finite values must round-trip exactly
		// through the 'g' formatting.
		if parsed[i].Value != want[i].Value && !(math.IsInf(parsed[i].Value, 1) && math.IsInf(want[i].Value, 1)) {
			t.Fatalf("sample %d %s: parsed %v, want %v", i, want[i].Name, parsed[i].Value, want[i].Value)
		}
	}
	// Histogram invariants in the rendered text: cumulative buckets are
	// non-decreasing and _count equals the +Inf bucket.
	var lastCum float64
	var infCum, count float64
	for _, s := range parsed {
		if s.Name == "cs_request_seconds_bucket" {
			if s.Value < lastCum {
				t.Fatalf("bucket series decreases: %v after %v", s.Value, lastCum)
			}
			lastCum = s.Value
			if s.Labels[len(s.Labels)-1].Value == "+Inf" {
				infCum = s.Value
			}
		}
		if s.Name == "cs_request_seconds_count" {
			count = s.Value
		}
	}
	if infCum != 2 || count != 2 {
		t.Fatalf("+Inf cum %v and count %v, want 2", infCum, count)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"cs_x 1\n",                                  // no TYPE line
		"# TYPE cs_x counter\ncs_x notanumber\n",    // bad value
		"# TYPE cs_x counter\ncs_x{oops 1\n",        // unterminated labels
		"# TYPE cs_x wibble\ncs_x 1\n",              // unknown type
		"# TYPE cs_x counter\n# WHAT cs_x\ncs_x 1ically\n", // unknown comment
	} {
		if _, err := ParsePrometheus(bad); err == nil {
			t.Fatalf("ParsePrometheus(%q) accepted malformed input", bad)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 7)
	want := []float64{1, 2, 4, 8, 16, 32, 64}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExpBuckets = %v", got)
	}
}
