// Package obs is the serving stack's observability kit: request-scoped
// trace span trees threaded through context.Context, a hand-rolled
// Prometheus-text metrics registry (counters, gauges, log-scale latency
// histograms), and a structured JSON line logger. No external dependencies —
// the whole package is standard library only — and every tracing entry point
// is nil-receiver safe, so code instruments unconditionally and a request
// without a trace attached pays no allocation and no clock read.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Version is the build version stamped into /stats, /healthz and log lines.
const Version = "0.10.0"

// Trace is one request's span tree. The root span is created with the
// trace; children hang off it via Span.Child. All mutation goes through the
// trace mutex, so concurrent fan-out goroutines can open sibling spans.
type Trace struct {
	id    string
	start time.Time
	mu    sync.Mutex
	root  *Span
}

// NewTrace starts a trace. id "" generates a fresh 16-hex-char id (a
// propagated X-CS-Trace-Id header passes the upstream id through instead).
func NewTrace(id, rootName string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	t := &Trace{id: id, start: time.Now()}
	t.root = &Span{trace: t, name: rootName, start: t.start}
	return t
}

// NewTraceID returns a random 16-hex-char trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id is still
		// a valid (if non-unique) id.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace id.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Span is one timed region of a trace. All methods are nil-receiver safe
// no-ops, so instrumentation sites never branch on "is tracing on": with no
// trace attached, SpanFromContext returns nil and every call below costs a
// nil check.
type Span struct {
	trace    *Trace
	name     string
	start    time.Time
	durNanos int64
	attrs    []Attr
	children []*Span
	// grafted holds remote sub-trees (a shard's decoded span tree) adopted
	// into this span's children at render time. Their start offsets are
	// remote-clock-local.
	grafted []*SpanJSON
}

// Attr is one span attribute (ordered, unlike a map, so rendering is
// deterministic).
type Attr struct {
	Key   string
	Value any
}

// Child opens a sub-span starting now. Returns nil (a no-op span) when s is
// nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, name: name, start: time.Now()}
	s.trace.mu.Lock()
	s.children = append(s.children, c)
	s.trace.mu.Unlock()
	return c
}

// End closes the span at now. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start).Nanoseconds()
	s.trace.mu.Lock()
	if s.durNanos == 0 {
		s.durNanos = d
	}
	s.trace.mu.Unlock()
}

// EndDur closes the span with an explicit duration — used for synthetic
// spans reconstructed from accumulated counters (per-plan-node observed
// nanos) rather than wall-clocked in place.
func (s *Span) EndDur(nanos int64) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.durNanos = nanos
	s.trace.mu.Unlock()
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.trace.mu.Unlock()
}

// Graft adopts a remote sub-tree (e.g. a shard's decoded trace root) as a
// child of this span. The sub-tree renders verbatim; its start offsets are
// relative to the remote clock.
func (s *Span) Graft(child *SpanJSON) {
	if s == nil || child == nil {
		return
	}
	s.trace.mu.Lock()
	s.grafted = append(s.grafted, child)
	s.trace.mu.Unlock()
}

// SpanJSON is the wire/response form of a span: the name, the start offset
// from the trace root (ns), the duration (ns), sparse attributes and
// children. It is both what "trace": true responses embed and what the
// coordinator decodes from shard responses to graft into its own tree.
type SpanJSON struct {
	Name     string         `json:"name"`
	StartNS  int64          `json:"start_ns"`
	DurNS    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// TraceJSON is the wire/response form of a whole trace.
type TraceJSON struct {
	ID   string    `json:"trace_id"`
	Root *SpanJSON `json:"root"`
}

// JSON renders the trace for a response. Unfinished spans render with the
// duration they have reached so far.
func (t *Trace) JSON() *TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceJSON{ID: t.id, Root: t.root.jsonLocked(t.start)}
}

func (s *Span) jsonLocked(traceStart time.Time) *SpanJSON {
	out := &SpanJSON{
		Name:    s.name,
		StartNS: s.start.Sub(traceStart).Nanoseconds(),
		DurNS:   s.durNanos,
	}
	if out.DurNS == 0 {
		out.DurNS = time.Since(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.jsonLocked(traceStart))
	}
	out.Children = append(out.Children, s.grafted...)
	return out
}

// Find returns the first span in the tree (depth-first) whose name matches
// pred, or nil. Test and slow-query-log helper.
func (sj *SpanJSON) Find(pred func(*SpanJSON) bool) *SpanJSON {
	if sj == nil {
		return nil
	}
	if pred(sj) {
		return sj
	}
	for _, c := range sj.Children {
		if hit := c.Find(pred); hit != nil {
			return hit
		}
	}
	return nil
}
