package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	s.End()
	s.EndDur(5)
	s.SetAttr("k", 1)
	s.Graft(&SpanJSON{Name: "x"})
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil || tr.JSON() != nil {
		t.Fatal("nil trace accessors must be zero")
	}
}

func TestSpanFromBareContext(t *testing.T) {
	if s := SpanFromContext(context.Background()); s != nil {
		t.Fatalf("bare context span = %v, want nil", s)
	}
	// Attaching a nil span must not wrap the context (zero-alloc contract).
	ctx := context.Background()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("ContextWithSpan(nil) must return ctx unchanged")
	}
}

func TestTraceTreeJSON(t *testing.T) {
	tr := NewTrace("cafe", "/query")
	root := tr.Root()
	a := root.Child("admission")
	a.SetAttr("grant", 2)
	a.End()
	b := root.Child("execute")
	n := b.Child("DS1 scan shipdate")
	n.SetAttr("rows", int64(100))
	n.EndDur(1234)
	b.End()
	root.End()

	j := tr.JSON()
	if j.ID != "cafe" {
		t.Fatalf("id = %q", j.ID)
	}
	if j.Root.Name != "/query" || len(j.Root.Children) != 2 {
		t.Fatalf("root = %+v", j.Root)
	}
	if j.Root.Children[0].Name != "admission" || j.Root.Children[0].Attrs["grant"] != 2 {
		t.Fatalf("admission span = %+v", j.Root.Children[0])
	}
	node := j.Root.Find(func(s *SpanJSON) bool { return s.Name == "DS1 scan shipdate" })
	if node == nil || node.DurNS != 1234 {
		t.Fatalf("node span = %+v", node)
	}
	// Strict nesting at the sequential level: root wall covers its children.
	if j.Root.DurNS < j.Root.Children[0].DurNS+j.Root.Children[1].DurNS {
		t.Fatalf("root %dns < children sum", j.Root.DurNS)
	}
	// Round-trips through encoding/json (the response embedding).
	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "cafe" || back.Root.Children[1].Children[0].Name != "DS1 scan shipdate" {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestSpanGraft(t *testing.T) {
	tr := NewTrace("", "/join")
	sh := tr.Root().Child("shard 0")
	sh.Graft(&SpanJSON{Name: "/join", DurNS: 42, Children: []*SpanJSON{{Name: "admission", DurNS: 1}}})
	sh.End()
	tr.Root().End()
	j := tr.JSON()
	if len(j.ID) != 16 {
		t.Fatalf("generated id %q, want 16 hex chars", j.ID)
	}
	remote := j.Root.Children[0].Children[0]
	if remote.Name != "/join" || remote.DurNS != 42 || remote.Children[0].Name != "admission" {
		t.Fatalf("grafted sub-tree = %+v", remote)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTrace("", "root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := tr.Root().Child("c")
				c.SetAttr("i", j)
				c.End()
			}
		}()
	}
	wg.Wait()
	tr.Root().End()
	if got := len(tr.JSON().Root.Children); got != 800 {
		t.Fatalf("children = %d, want 800", got)
	}
}

func TestUnendedSpanRendersElapsed(t *testing.T) {
	tr := NewTrace("", "root")
	tr.Root().Child("open")
	time.Sleep(time.Millisecond)
	j := tr.JSON()
	if j.Root.Children[0].DurNS <= 0 {
		t.Fatalf("open span duration = %d, want elapsed > 0", j.Root.Children[0].DurNS)
	}
}

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf).With("app", "test")
	lg.Info("served", "trace_id", "abc", "status", 200)
	lg.Error("boom", "err", "nope")
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var doc map[string]any
	if err := json.Unmarshal(lines[0], &doc); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if doc["level"] != "info" || doc["msg"] != "served" || doc["app"] != "test" || doc["trace_id"] != "abc" {
		t.Fatalf("line 1 = %v", doc)
	}
	if err := json.Unmarshal(lines[1], &doc); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if doc["level"] != "error" || doc["err"] != "nope" {
		t.Fatalf("line 2 = %v", doc)
	}
	// Nil logger is a no-op.
	var nl *Logger
	nl.Info("dropped")
	nl.With("k", "v").Error("dropped")
}
