package operators

import (
	"fmt"
	"sort"

	"matstore/internal/encoding"
	"matstore/internal/positions"
	"matstore/internal/rows"
)

// AggFunc is an aggregate function over a group's values.
type AggFunc uint8

const (
	// AggSum is SUM(col) — the paper's experiment aggregate.
	AggSum AggFunc = iota
	// AggCount is COUNT(col).
	AggCount
	// AggAvg is AVG(col), reported as the truncated integer quotient.
	AggAvg
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// ParseAggFunc converts a string such as "sum" to an AggFunc.
func ParseAggFunc(s string) (AggFunc, error) {
	switch s {
	case "sum", "SUM":
		return AggSum, nil
	case "count", "COUNT":
		return AggCount, nil
	case "avg", "AVG":
		return AggAvg, nil
	case "min", "MIN":
		return AggMin, nil
	case "max", "MAX":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("operators: unknown aggregate %q", s)
	}
}

// Aggregator implements FN(val) GROUP BY key over int64 keys. It accepts
// input either tuple-at-a-time (the EM path: constructed tuples flow into
// the aggregator) or run-at-a-time (the LM path: whole compressed runs
// contribute pre-aggregated statistics without any tuple ever being
// constructed — Section 4.2's "operate directly on compressed data").
type Aggregator struct {
	// Fn selects the emitted aggregate; all statistics are maintained so
	// the same pass can serve any function.
	Fn AggFunc
	m  map[int64]encoding.RunStats
	// TuplesIn counts tuple-at-a-time contributions (EM accounting).
	TuplesIn int64
	// RunsIn counts run-at-a-time contributions (LM accounting).
	RunsIn int64
}

// NewAggregator returns an empty aggregator for fn.
func NewAggregator(fn AggFunc) *Aggregator {
	return &Aggregator{Fn: fn, m: make(map[int64]encoding.RunStats)}
}

// NewSumAggregator returns an empty SUM aggregator.
func NewSumAggregator() *Aggregator { return NewAggregator(AggSum) }

func (a *Aggregator) add(key int64, st encoding.RunStats) {
	cur, ok := a.m[key]
	if !ok || cur.Count == 0 {
		a.m[key] = st
		return
	}
	cur.Sum += st.Sum
	cur.Count += st.Count
	if st.Min < cur.Min {
		cur.Min = st.Min
	}
	if st.Max > cur.Max {
		cur.Max = st.Max
	}
	a.m[key] = cur
}

// AddTuple contributes one constructed tuple.
func (a *Aggregator) AddTuple(key, val int64) {
	a.add(key, encoding.RunStats{Sum: val, Count: 1, Min: val, Max: val})
	a.TuplesIn++
}

// AddBatch contributes aligned key/value vectors.
func (a *Aggregator) AddBatch(keys, vals []int64) {
	for i := range keys {
		a.add(keys[i], encoding.RunStats{Sum: vals[i], Count: 1, Min: vals[i], Max: vals[i]})
	}
	a.TuplesIn += int64(len(keys))
}

// AddRun contributes pre-aggregated statistics for key (one compressed
// run's worth of work in a single call).
func (a *Aggregator) AddRun(key int64, st encoding.RunStats) {
	if st.Count == 0 {
		return
	}
	a.add(key, st)
	a.RunsIn++
}

// Groups returns the number of distinct keys seen.
func (a *Aggregator) Groups() int { return len(a.m) }

// Mergeable is the mergeable-state contract the morsel-parallel executor
// relies on: a per-worker partial result that can absorb another partial
// computed over a disjoint position range. Merging any partition of the
// input must yield the same state as processing the input in one shot.
// (Row partials merge through rows.Result.Append and position partials
// through positions.Concat; the aggregator is the operator whose state
// needs this contract.)
type Mergeable[T any] interface {
	Merge(other T)
}

var _ Mergeable[*Aggregator] = (*Aggregator)(nil)

// Merge absorbs another aggregator's partial state: per-key statistics
// combine exactly (sums and counts add, min/max fold), so merging N
// per-morsel partials equals single-shot aggregation for every AggFunc.
// The other aggregator must not be used afterwards.
func (a *Aggregator) Merge(other *Aggregator) {
	if other == nil {
		return
	}
	for k, st := range other.m {
		a.add(k, st)
	}
	a.TuplesIn += other.TuplesIn
	a.RunsIn += other.RunsIn
}

// GroupStats is one group's mergeable aggregate state in wire form: the
// Sum/Count/Min/Max statistics a shard exports for key so a coordinator can
// absorb partials from disjoint row ranges and re-emit — the network form
// of the same Merge contract the morsel executor uses in memory. Emitted
// aggregate VALUES cannot merge across shards (AVG loses its count), so the
// wire format ships the statistics, never the emitted rows.
type GroupStats struct {
	Key   int64 `json:"key"`
	Sum   int64 `json:"sum"`
	Count int64 `json:"count"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// ExportGroups returns the aggregator's per-group state sorted by key —
// the partial a shard ships to the coordinator.
func (a *Aggregator) ExportGroups() []GroupStats {
	out := make([]GroupStats, 0, len(a.m))
	for k, st := range a.m {
		out = append(out, GroupStats{Key: k, Sum: st.Sum, Count: st.Count, Min: st.Min, Max: st.Max})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// AbsorbGroups merges exported per-group partials into the aggregator,
// exactly as Merge would absorb the aggregator they came from.
func (a *Aggregator) AbsorbGroups(gs []GroupStats) {
	for _, g := range gs {
		if g.Count == 0 {
			continue
		}
		a.add(g.Key, encoding.RunStats{Sum: g.Sum, Count: g.Count, Min: g.Min, Max: g.Max})
	}
}

// Emit materializes the aggregate result, sorted by key, with the given
// output column names. These are the only tuples an LM aggregation plan
// ever constructs.
func (a *Aggregator) Emit(keyName, outName string) *rows.Result {
	keys := make([]int64, 0, len(a.m))
	for k := range a.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	res := rows.NewResult(keyName, outName)
	for _, k := range keys {
		st := a.m[k]
		var v int64
		switch a.Fn {
		case AggSum:
			v = st.Sum
		case AggCount:
			v = st.Count
		case AggAvg:
			v = st.Sum / st.Count
		case AggMin:
			v = st.Min
		case AggMax:
			v = st.Max
		}
		res.AppendRow(k, v)
	}
	return res
}

// AggregateCompressedChunk aggregates one chunk entirely on compressed
// data: keyMC supplies group keys, valMC the aggregated values, and desc
// the valid positions. No tuples are constructed:
//
//   - RLE keys contribute one AddRun per (run ∩ descriptor-run) overlap,
//     with the value side folded by StatsRange (which itself multiplies
//     value×length for RLE values and popcounts for bit-vector values).
//   - Bit-vector keys contribute one AddRun per distinct key value, using
//     bit-string ∧ descriptor.
//   - Plain keys fall back to value-at-a-time accumulation within
//     descriptor runs.
func AggregateCompressedChunk(a *Aggregator, keyMC, valMC encoding.MiniColumn, desc positions.Set) {
	switch key := keyMC.(type) {
	case *encoding.RLEMini:
		triples := key.Triples()
		ti := 0
		it := desc.Runs()
		for {
			r, ok := it.Next()
			if !ok {
				return
			}
			for ti < len(triples) && triples[ti].End() <= r.Start {
				ti++
			}
			for tj := ti; tj < len(triples) && triples[tj].Start < r.End; tj++ {
				o := triples[tj].Cover().Intersect(r)
				if o.Empty() {
					continue
				}
				a.AddRun(triples[tj].Value, encoding.StatsRange(valMC, o))
			}
		}
	case *encoding.BVMini:
		for i, v := range key.DistinctValues() {
			ps := positions.And(key.BitString(i), desc)
			if ps.Count() == 0 {
				continue
			}
			a.AddRun(v, encoding.StatsSet(valMC, ps))
		}
	default:
		var keyBuf, valBuf []int64
		it := desc.Runs()
		for {
			r, ok := it.Next()
			if !ok {
				return
			}
			keyBuf = keyMC.Extract(keyBuf[:0], positions.Ranges{r})
			valBuf = valMC.Extract(valBuf[:0], positions.Ranges{r})
			for i := range keyBuf {
				a.add(keyBuf[i], encoding.RunStats{Sum: valBuf[i], Count: 1, Min: valBuf[i], Max: valBuf[i]})
			}
			a.RunsIn++
		}
	}
}
