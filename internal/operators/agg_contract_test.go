package operators

import (
	"reflect"
	"testing"
)

// Merge-contract invariants in isolation: the scatter-gather coordinator
// re-merges shard partials with exactly this contract (Aggregator.Merge in
// wire form via ExportGroups/AbsorbGroups), so these tests pin the
// properties the distributed merge depends on — partition- and
// order-insensitivity, and export/absorb ≡ Merge — independent of any
// executor or HTTP machinery.

// contractKeys/contractVals is a small stream with repeated keys, negative
// values and a key whose values straddle any partition boundary.
var (
	contractKeys = []int64{3, 1, 3, 2, 1, 3, 2, 2, 1, 3, 5, 5, 1, 2, 3, 4}
	contractVals = []int64{10, -4, 7, 0, 22, -9, 5, 5, 1, 3, 100, -100, 8, 2, 6, 41}
)

var contractFns = []AggFunc{AggSum, AggCount, AggAvg, AggMin, AggMax}

// buildPartials splits the stream at the given cut points into independent
// per-partition aggregators — what each shard (or morsel) computes locally.
func buildPartials(fn AggFunc, cuts []int) []*Aggregator {
	var parts []*Aggregator
	prev := 0
	for _, cut := range append(cuts, len(contractKeys)) {
		a := NewAggregator(fn)
		a.AddBatch(contractKeys[prev:cut], contractVals[prev:cut])
		parts = append(parts, a)
		prev = cut
	}
	return parts
}

func singleShot(fn AggFunc) *Aggregator {
	a := NewAggregator(fn)
	a.AddBatch(contractKeys, contractVals)
	return a
}

// TestAggregatorMergeOrderAndPartitionInvariance pins the contract: merging
// ANY partition of the input, in ANY merge order, emits exactly the
// single-shot result for every aggregate function (AVG included, the
// function that breaks if emitted values are merged instead of statistics).
func TestAggregatorMergeOrderAndPartitionInvariance(t *testing.T) {
	partitions := [][]int{{8}, {4, 8, 12}, {1, 2, 3, 5, 13}}
	orders := [][]int{nil, {3, 1, 0, 2}, {2, 3, 0, 1}}
	for _, fn := range contractFns {
		want := singleShot(fn).Emit("k", "v")
		for _, cuts := range partitions {
			for _, order := range orders {
				parts := buildPartials(fn, cuts)
				if order != nil && len(order) != len(parts) {
					continue
				}
				merged := NewAggregator(fn)
				if order == nil {
					for _, p := range parts {
						merged.Merge(p)
					}
				} else {
					for _, i := range order {
						merged.Merge(parts[i])
					}
				}
				got := merged.Emit("k", "v")
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%v cuts=%v order=%v: merged emit %+v, single-shot %+v",
						fn, cuts, order, got, want)
				}
			}
		}
	}
}

// TestExportAbsorbGroupsEqualsMerge pins the wire form: absorbing every
// partial's exported GroupStats into a fresh aggregator emits exactly what
// in-memory Merge emits — the coordinator's cross-shard merge IS the
// executor's merge.
func TestExportAbsorbGroupsEqualsMerge(t *testing.T) {
	for _, fn := range contractFns {
		want := singleShot(fn).Emit("k", "v")
		absorbed := NewAggregator(fn)
		for _, p := range buildPartials(fn, []int{4, 8, 12}) {
			absorbed.AbsorbGroups(p.ExportGroups())
		}
		got := absorbed.Emit("k", "v")
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: absorb-exported emit %+v, want %+v", fn, got, want)
		}
	}
}

// TestExportGroupsSortedAndStable: exports are sorted by key and carry the
// exact per-key statistics, and zero-count groups are ignored on absorb.
func TestExportGroupsSortedAndStable(t *testing.T) {
	a := NewAggregator(AggSum)
	a.AddTuple(7, 3)
	a.AddTuple(-2, 10)
	a.AddTuple(7, -1)
	gs := a.ExportGroups()
	if len(gs) != 2 || gs[0].Key != -2 || gs[1].Key != 7 {
		t.Fatalf("exported groups %+v, want keys [-2 7]", gs)
	}
	if gs[1].Sum != 2 || gs[1].Count != 2 || gs[1].Min != -1 || gs[1].Max != 3 {
		t.Errorf("key 7 stats %+v", gs[1])
	}
	b := NewAggregator(AggSum)
	b.AbsorbGroups([]GroupStats{{Key: 9, Count: 0, Sum: 999}})
	if b.Groups() != 0 {
		t.Error("zero-count group was absorbed")
	}
}
