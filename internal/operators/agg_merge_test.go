package operators

import (
	"math/rand"
	"reflect"
	"testing"

	"matstore/internal/encoding"
)

// aggFuncs lists every aggregate function under test.
var aggFuncs = []AggFunc{AggSum, AggCount, AggAvg, AggMin, AggMax}

// splitPoints cuts n tuples into parts at the given fractions, allowing
// empty parts (an empty morsel contributes an empty partial).
func splitIndexes(n int, cuts []float64) [][2]int {
	var out [][2]int
	prev := 0
	for _, f := range cuts {
		end := int(f * float64(n))
		if end < prev {
			end = prev
		}
		out = append(out, [2]int{prev, end})
		prev = end
	}
	out = append(out, [2]int{prev, n})
	return out
}

// TestAggregatorMergeEqualsSingleShot checks the mergeable-state contract:
// merging N per-morsel partial aggregators equals aggregating the whole
// input in one shot, for every aggregate function, grouped and ungrouped.
func TestAggregatorMergeEqualsSingleShot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	makeKeys := func(distinct int64) []int64 {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63n(distinct)
		}
		return keys
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(2001) - 1000 // include negatives
	}

	for _, tc := range []struct {
		name string
		keys []int64
	}{
		{"grouped", makeKeys(37)},
		{"ungrouped", make([]int64, n)}, // single group: key 0 everywhere
	} {
		for _, fn := range aggFuncs {
			// Single shot.
			whole := NewAggregator(fn)
			whole.AddBatch(tc.keys, vals)
			want := whole.Emit("k", "v")

			// Partitioned with empty morsels at the front, middle, and end.
			parts := splitIndexes(n, []float64{0, 0.13, 0.13, 0.5, 0.9, 1})
			merged := NewAggregator(fn)
			for _, p := range parts {
				pt := NewAggregator(fn)
				pt.AddBatch(tc.keys[p[0]:p[1]], vals[p[0]:p[1]])
				merged.Merge(pt)
			}
			got := merged.Emit("k", "v")

			if !reflect.DeepEqual(got.Cols, want.Cols) {
				t.Errorf("%s/%v: merged partials disagree with single shot", tc.name, fn)
			}
			if merged.Groups() != whole.Groups() {
				t.Errorf("%s/%v: groups %d, want %d", tc.name, fn, merged.Groups(), whole.Groups())
			}
			if merged.TuplesIn != whole.TuplesIn {
				t.Errorf("%s/%v: TuplesIn %d, want %d", tc.name, fn, merged.TuplesIn, whole.TuplesIn)
			}
		}
	}
}

// TestAggregatorMergeSingleGroupEdge exercises the single-group edge case
// where only one partial has seen the group.
func TestAggregatorMergeSingleGroupEdge(t *testing.T) {
	for _, fn := range aggFuncs {
		a := NewAggregator(fn)
		b := NewAggregator(fn)
		b.AddTuple(42, -5)
		b.AddTuple(42, 9)
		a.Merge(b)
		got := a.Emit("k", "v")
		want := map[AggFunc]int64{AggSum: 4, AggCount: 2, AggAvg: 2, AggMin: -5, AggMax: 9}[fn]
		if got.NumRows() != 1 || got.Cols[0][0] != 42 || got.Cols[1][0] != want {
			t.Errorf("%v: Emit = %v rows, key=%v val=%v, want 42/%d",
				fn, got.NumRows(), got.Cols[0], got.Cols[1], want)
		}
	}
}

// TestAggregatorMergeEmptyPartials checks that empty (and nil) partials are
// harmless in any position of the merge order.
func TestAggregatorMergeEmptyPartials(t *testing.T) {
	a := NewAggregator(AggSum)
	a.Merge(NewAggregator(AggSum)) // empty into empty
	a.Merge(nil)
	if a.Groups() != 0 {
		t.Fatalf("groups = %d after empty merges", a.Groups())
	}
	b := NewAggregator(AggSum)
	b.AddTuple(1, 10)
	a.Merge(b)
	a.Merge(NewAggregator(AggSum)) // empty after data
	res := a.Emit("k", "v")
	if res.NumRows() != 1 || res.Cols[1][0] != 10 {
		t.Errorf("Emit = %+v", res)
	}
}

// TestAggregatorMergeRunStates checks merging of run-at-a-time (LM) partial
// states, including pre-aggregated runs split across partials.
func TestAggregatorMergeRunStates(t *testing.T) {
	whole := NewAggregator(AggMin)
	whole.AddRun(3, encoding.RunStats{Sum: 60, Count: 4, Min: 5, Max: 30})
	whole.AddRun(3, encoding.RunStats{Sum: 7, Count: 2, Min: 2, Max: 5})
	whole.AddRun(8, encoding.RunStats{Sum: 11, Count: 1, Min: 11, Max: 11})

	a := NewAggregator(AggMin)
	a.AddRun(3, encoding.RunStats{Sum: 60, Count: 4, Min: 5, Max: 30})
	b := NewAggregator(AggMin)
	b.AddRun(3, encoding.RunStats{Sum: 7, Count: 2, Min: 2, Max: 5})
	b.AddRun(8, encoding.RunStats{Sum: 11, Count: 1, Min: 11, Max: 11})
	a.Merge(b)

	if !reflect.DeepEqual(a.Emit("k", "v").Cols, whole.Emit("k", "v").Cols) {
		t.Error("run-state merge disagrees with single shot")
	}
	if a.RunsIn != whole.RunsIn {
		t.Errorf("RunsIn = %d, want %d", a.RunsIn, whole.RunsIn)
	}
}
