package operators

import (
	"container/list"
	"os"
	"sync"

	"matstore/internal/storage"
)

// This file is the shared join-build cache: the operators-level
// generalization of plan.Plan.ReuseBuild. Where ReuseBuild retains ONE
// partitioned hash side inside one plan, the BuildCache shares retained
// builds ACROSS queries and sessions, keyed on what the build physically
// depends on — the inner projection, its key column, the payload schema and
// materialization strategy, the requested partition override and the chunk
// size. Entries are byte-accounted (PartitionedTable.SizeBytes), evicted
// least-recently-used under a memory budget, and invalidated wholesale by
// bumping the projection's generation (the hook a data reload uses).
//
// Concurrency: lookups and inserts are mutex-guarded; a miss registers an
// in-flight slot so concurrent requests for the same key wait for the one
// build instead of racing duplicate scans (single-flight). The cached
// *PartitionedTable is read-only after build, so handing one table to many
// concurrent probes is safe.

// BuildKey identifies one retained join build. Partitions is the plan's
// requested override (0 = derive from the worker count), not the resolved
// count: probe results are byte-identical at every partition count, so a
// build first produced under 4 workers serves later 1-worker queries.
type BuildKey struct {
	Proj       string
	KeyCol     string
	Payload    string // payload column names, comma-joined
	Strategy   RightStrategy
	Partitions int
	ChunkSize  int64
}

// RetainedBuild is a shared handle on one cached partitioned hash side.
type RetainedBuild struct {
	Key   BuildKey
	Table *PartitionedTable
	// Bytes is the entry's accounted size.
	Bytes int64
	gen   uint64
}

// BuildCacheStats are the cache's cumulative counters.
type BuildCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// WaitedBuilds counts misses that waited for another request's in-flight
	// build of the same key instead of building their own.
	WaitedBuilds int64 `json:"waited_builds"`
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
	Capacity     int64 `json:"capacity_bytes"`
	// Demotion counters: evictions written to disk instead of dropped,
	// lookups served by rehydrating a demoted entry, and demote/rehydrate
	// failures (which degrade to a plain eviction or a fresh build).
	Demotions      int64 `json:"demotions"`
	DemotedHits    int64 `json:"demoted_hits"`
	DemoteFailures int64 `json:"demote_failures"`
	DemotedEntries int   `json:"demoted_entries"`
	DemotedBytes   int64 `json:"demoted_bytes"`
}

// BuildCache is a keyed LRU cache of retained join builds under a byte
// budget, with per-projection generation invalidation.
type BuildCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	entries  map[BuildKey]*list.Element // of *RetainedBuild
	lru      *list.List                 // front = most recent
	inflight map[BuildKey]*buildFlight
	gens     map[string]uint64
	stats    BuildCacheStats

	// Demotion tier (EnableDemotion): evicted builds persist their hash
	// entries to disk instead of vanishing, under their own byte budget.
	demoteDir    string
	demotedCap   int64
	demotedBytes int64
	demoted      map[BuildKey]*list.Element // of *demotedBuild
	demotedLRU   *list.List
}

// demotedBuild is one evicted build living on disk. The stored-column
// handles are retained so rehydration can re-window payload without a
// catalog lookup.
type demotedBuild struct {
	key     BuildKey
	path    string
	bytes   int64
	gen     uint64
	cols    []*storage.Column
	payload []string
}

// buildFlight is one in-progress build other requests can wait on.
type buildFlight struct {
	done chan struct{}
	rt   *PartitionedTable
	err  error
}

// NewBuildCache returns a cache bounded to capacity bytes (<= 0 means
// unbounded).
func NewBuildCache(capacity int64) *BuildCache {
	return &BuildCache{
		capacity:   capacity,
		entries:    make(map[BuildKey]*list.Element),
		lru:        list.New(),
		inflight:   make(map[BuildKey]*buildFlight),
		gens:       make(map[string]uint64),
		demoted:    make(map[BuildKey]*list.Element),
		demotedLRU: list.New(),
	}
}

// EnableDemotion turns eviction into demotion: evicted builds write their
// hash entries to spill-format files under dir, bounded by capBytes of disk
// (<= 0 means 8x the in-memory budget). Demoted entries rehydrate on the
// next lookup of their key, so warm keys stay probeable past the byte budget.
func (c *BuildCache) EnableDemotion(dir string, capBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if capBytes <= 0 {
		capBytes = 8 * c.capacity
	}
	c.demoteDir = dir
	c.demotedCap = capBytes
}

// Stats returns a snapshot of the cache counters.
func (c *BuildCache) Stats() BuildCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Bytes = c.bytes
	st.Capacity = c.capacity
	st.DemotedEntries = len(c.demoted)
	st.DemotedBytes = c.demotedBytes
	return st
}

// Generation returns the projection's current generation.
func (c *BuildCache) Generation(proj string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[proj]
}

// Invalidate bumps the projection's generation and drops every cached build
// over it: the hook a data reload (or projection rewrite) calls so no query
// probes a stale hash side.
func (c *BuildCache) Invalidate(proj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[proj]++
	for key, el := range c.entries {
		if key.Proj == proj {
			c.removeLocked(el)
			c.stats.Invalidations++
		}
	}
	for key, el := range c.demoted {
		if key.Proj == proj {
			c.removeDemotedLocked(el)
			c.stats.Invalidations++
		}
	}
}

// GetOrBuild returns the cached table for key, building (and caching) it via
// build on a miss. The second return reports a cache hit. Concurrent misses
// on one key share a single build. A failed build caches nothing, and a
// build overtaken by an Invalidate is neither cached nor handed to requests
// that started after the invalidation.
func (c *BuildCache) GetOrBuild(key BuildKey, build func() (*PartitionedTable, error)) (*PartitionedTable, bool, error) {
	for {
		c.mu.Lock()
		gen := c.gens[key.Proj]
		if el, ok := c.entries[key]; ok {
			rb := el.Value.(*RetainedBuild)
			if rb.gen == gen {
				c.lru.MoveToFront(el)
				c.stats.Hits++
				c.mu.Unlock()
				return rb.Table, true, nil
			}
			// Stale generation (Invalidate removes eagerly; this guards a
			// racy bump between lookup phases).
			c.removeLocked(el)
		}
		if fl, ok := c.inflight[key]; ok {
			// Wait for the in-flight build of this key, then retry from the
			// top: the flight may have been started before an Invalidate, so
			// only the generation-checked cache entry (or a fresh build) may
			// serve this request — never fl.rt directly.
			c.stats.WaitedBuilds++
			c.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, false, fl.err
			}
			continue
		}
		if el, ok := c.demoted[key]; ok {
			db := el.Value.(*demotedBuild)
			if db.gen != gen {
				c.removeDemotedLocked(el)
			} else if rt, ok := c.rehydrate(key, gen, db); ok {
				// rehydrate reacquired and released c.mu; a success means the
				// table is cached under the checked generation.
				return rt, true, nil
			}
			// Rehydration failed or went stale: the demoted record is gone;
			// retry from the top and fall through to a fresh build.
			continue
		}
		fl := &buildFlight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.stats.Misses++
		c.mu.Unlock()

		rt, err := build()
		fl.rt, fl.err = rt, err

		c.mu.Lock()
		delete(c.inflight, key)
		stale := err == nil && c.gens[key.Proj] != gen
		if err == nil && !stale {
			c.insertLocked(key, gen, rt)
		}
		c.mu.Unlock()
		close(fl.done)
		if err != nil {
			return nil, false, err
		}
		if stale {
			// The projection changed under the build: rebuild against the
			// new generation rather than serving stale data.
			continue
		}
		return rt, false, nil
	}
}

// rehydrate loads a demoted build back into the resident tier under the
// single-flight protocol (concurrent lookups of the key wait on the flight
// rather than re-reading the file). Called with c.mu held; returns with c.mu
// released. ok=false means the demoted record has been dropped (failed read
// or stale generation) and the caller should retry, falling through to a
// fresh build.
func (c *BuildCache) rehydrate(key BuildKey, gen uint64, db *demotedBuild) (*PartitionedTable, bool) {
	fl := &buildFlight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	rt, err := LoadDemoted(db.path, db.cols, db.payload)

	c.mu.Lock()
	delete(c.inflight, key)
	// An Invalidate may have removed the record (and file) while we read it.
	present := false
	if el, ok := c.demoted[key]; ok && el.Value.(*demotedBuild) == db {
		c.removeDemotedLocked(el)
		present = true
	}
	ok := err == nil && present && c.gens[key.Proj] == gen
	if ok {
		c.insertLocked(key, gen, rt)
		c.stats.Hits++
		c.stats.DemotedHits++
	} else if err != nil {
		c.stats.DemoteFailures++
	}
	c.mu.Unlock()
	close(fl.done)
	if !ok {
		return nil, false
	}
	return rt, true
}

// insertLocked adds a built table, evicting least-recently-used entries
// until the budget holds. A table larger than the whole budget is served but
// not retained.
func (c *BuildCache) insertLocked(key BuildKey, gen uint64, rt *PartitionedTable) {
	if c.capacity > 0 && rt.SizeBytes > c.capacity {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	rb := &RetainedBuild{Key: key, Table: rt, Bytes: rt.SizeBytes, gen: gen}
	c.entries[key] = c.lru.PushFront(rb)
	c.bytes += rb.Bytes
	for c.capacity > 0 && c.bytes > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.evictLocked(back)
	}
}

// evictLocked removes the entry and, when demotion is enabled, persists its
// hash entries to disk first. A failed demote degrades to a plain eviction.
// The write happens under c.mu: demote files are hash entries only (no
// payload), so the IO is proportional to key cardinality, not table bytes.
func (c *BuildCache) evictLocked(el *list.Element) {
	rb := el.Value.(*RetainedBuild)
	c.removeLocked(el)
	c.stats.Evictions++
	if c.demoteDir == "" || rb.Table.DeferredPayload() {
		return
	}
	path, bytes, err := WriteDemoted(rb.Table, c.demoteDir)
	if err != nil {
		c.stats.DemoteFailures++
		return
	}
	db := &demotedBuild{key: rb.Key, path: path, bytes: bytes, gen: rb.gen,
		cols: rb.Table.cols, payload: rb.Table.payload}
	if old, ok := c.demoted[rb.Key]; ok {
		c.removeDemotedLocked(old)
	}
	c.demoted[rb.Key] = c.demotedLRU.PushFront(db)
	c.demotedBytes += bytes
	c.stats.Demotions++
	for c.demotedCap > 0 && c.demotedBytes > c.demotedCap {
		back := c.demotedLRU.Back()
		if back == nil {
			break
		}
		c.removeDemotedLocked(back)
	}
}

func (c *BuildCache) removeDemotedLocked(el *list.Element) {
	db := el.Value.(*demotedBuild)
	c.demotedLRU.Remove(el)
	delete(c.demoted, db.key)
	c.demotedBytes -= db.bytes
	os.Remove(db.path)
}

func (c *BuildCache) removeLocked(el *list.Element) {
	rb := el.Value.(*RetainedBuild)
	c.lru.Remove(el)
	delete(c.entries, rb.Key)
	c.bytes -= rb.Bytes
}
