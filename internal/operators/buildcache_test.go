package operators

import (
	"errors"
	"sync"
	"testing"
)

func bcKey(proj string, partitions int) BuildKey {
	return BuildKey{Proj: proj, KeyCol: "k", Payload: "p", Strategy: RightMaterialized,
		Partitions: partitions, ChunkSize: 1024}
}

func fakeTable(bytes int64) *PartitionedTable {
	return &PartitionedTable{SizeBytes: bytes, Tuples: bytes / 8}
}

// TestBuildCacheHitMiss: a miss builds once, the repeat hits without calling
// build, and distinct keys build separately.
func TestBuildCacheHitMiss(t *testing.T) {
	c := NewBuildCache(1 << 20)
	calls := 0
	build := func() (*PartitionedTable, error) { calls++; return fakeTable(100), nil }

	rt1, hit, err := c.GetOrBuild(bcKey("a", 0), build)
	if err != nil || hit || calls != 1 {
		t.Fatalf("first get: hit=%v calls=%d err=%v", hit, calls, err)
	}
	rt2, hit, err := c.GetOrBuild(bcKey("a", 0), func() (*PartitionedTable, error) {
		t.Fatal("repeat invoked build")
		return nil, nil
	})
	if err != nil || !hit || rt2 != rt1 {
		t.Fatalf("repeat: hit=%v same=%v err=%v", hit, rt2 == rt1, err)
	}
	if _, hit, _ = c.GetOrBuild(bcKey("a", 8), build); hit {
		t.Error("different partition override hit the cache")
	}
	if _, hit, _ = c.GetOrBuild(bcKey("b", 0), build); hit {
		t.Error("different projection hit the cache")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 3 || st.Bytes != 300 {
		t.Errorf("stats = %+v, want 1 hit, 3 misses, 3 entries, 300 bytes", st)
	}
}

// TestBuildCacheLRUEviction: inserts over the byte budget evict the least
// recently used entries; touching an entry protects it.
func TestBuildCacheLRUEviction(t *testing.T) {
	c := NewBuildCache(250)
	mk := func(proj string) {
		c.GetOrBuild(bcKey(proj, 0), func() (*PartitionedTable, error) { return fakeTable(100), nil })
	}
	mk("a")
	mk("b")
	// Touch "a" so "b" is the LRU victim.
	if _, hit, _ := c.GetOrBuild(bcKey("a", 0), func() (*PartitionedTable, error) { return fakeTable(100), nil }); !hit {
		t.Fatal("touch of a missed")
	}
	mk("c") // 300 bytes > 250: evicts b
	if _, hit, _ := c.GetOrBuild(bcKey("b", 0), func() (*PartitionedTable, error) { return fakeTable(100), nil }); hit {
		t.Error("LRU victim b still cached")
	}
	st := c.Stats()
	if st.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", st.Evictions)
	}
	if st.Bytes > 250 {
		t.Errorf("cache bytes %d exceed capacity 250", st.Bytes)
	}
	// An entry larger than the whole budget is served but never retained.
	if _, hit, _ := c.GetOrBuild(bcKey("huge", 0), func() (*PartitionedTable, error) { return fakeTable(1000), nil }); hit {
		t.Error("oversized build reported as hit")
	}
	if _, hit, _ := c.GetOrBuild(bcKey("huge", 0), func() (*PartitionedTable, error) { return fakeTable(1000), nil }); hit {
		t.Error("oversized build was retained")
	}
}

// TestBuildCacheGenerationInvalidation: bumping a projection's generation
// drops its entries and only its entries.
func TestBuildCacheGenerationInvalidation(t *testing.T) {
	c := NewBuildCache(0) // unbounded
	build := func() (*PartitionedTable, error) { return fakeTable(64), nil }
	c.GetOrBuild(bcKey("a", 0), build)
	c.GetOrBuild(bcKey("b", 0), build)
	if g := c.Generation("a"); g != 0 {
		t.Fatalf("fresh generation = %d", g)
	}
	c.Invalidate("a")
	if g := c.Generation("a"); g != 1 {
		t.Errorf("generation after bump = %d, want 1", g)
	}
	if _, hit, _ := c.GetOrBuild(bcKey("a", 0), build); hit {
		t.Error("invalidated entry hit")
	}
	if _, hit, _ := c.GetOrBuild(bcKey("b", 0), build); !hit {
		t.Error("unrelated projection's entry was dropped")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

// TestBuildCacheErrorNotCached: a failing build is returned to the caller
// and retains nothing.
func TestBuildCacheErrorNotCached(t *testing.T) {
	c := NewBuildCache(0)
	boom := errors.New("scan failed")
	if _, _, err := c.GetOrBuild(bcKey("a", 0), func() (*PartitionedTable, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	calls := 0
	if _, hit, err := c.GetOrBuild(bcKey("a", 0), func() (*PartitionedTable, error) {
		calls++
		return fakeTable(10), nil
	}); err != nil || hit || calls != 1 {
		t.Errorf("retry after failure: hit=%v calls=%d err=%v", hit, calls, err)
	}
}

// TestBuildCacheSingleFlight: concurrent misses on one key share a single
// build instead of racing duplicate scans.
func TestBuildCacheSingleFlight(t *testing.T) {
	c := NewBuildCache(0)
	var mu sync.Mutex
	calls := 0
	gate := make(chan struct{})
	build := func() (*PartitionedTable, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-gate
		return fakeTable(32), nil
	}
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*PartitionedTable, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt, _, err := c.GetOrBuild(bcKey("a", 0), build)
			if err != nil {
				t.Error(err)
			}
			results[i] = rt
		}(i)
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Errorf("build ran %d times for one key", calls)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different table", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single flight)", st.Misses)
	}
}

// TestBuildCacheWaiterSeesInvalidation: a request that starts after an
// Invalidate must never be served a build that began before it — the waiter
// re-checks the generation after the shared flight completes and rebuilds.
func TestBuildCacheWaiterSeesInvalidation(t *testing.T) {
	c := NewBuildCache(0)
	gate := make(chan struct{})
	started := make(chan struct{})
	stale := fakeTable(8)
	fresh := fakeTable(16)
	builderGot := make(chan *PartitionedTable, 1)
	go func() {
		// The build func is invoked again if its result went stale: the
		// first call blocks on the gate and returns the doomed table, the
		// retry returns fresh data.
		calls := 0
		rt, _, err := c.GetOrBuild(bcKey("a", 0), func() (*PartitionedTable, error) {
			calls++
			if calls == 1 {
				close(started)
				<-gate
				return stale, nil
			}
			return fresh, nil
		})
		if err != nil {
			t.Error(err)
		}
		builderGot <- rt
	}()
	<-started
	c.Invalidate("a") // the in-flight build is now of a dead generation
	done := make(chan *PartitionedTable, 1)
	go func() {
		rt, _, err := c.GetOrBuild(bcKey("a", 0), func() (*PartitionedTable, error) { return fresh, nil })
		if err != nil {
			t.Error(err)
		}
		done <- rt
	}()
	close(gate)
	if rt := <-done; rt == stale {
		t.Error("post-invalidation request was served the pre-invalidation build")
	}
	if rt := <-builderGot; rt == stale {
		t.Error("the overtaken builder itself was served its stale table")
	}
	// The stale table must not have been retained either.
	if rt, hit, _ := c.GetOrBuild(bcKey("a", 0), func() (*PartitionedTable, error) { return fresh, nil }); hit && rt == stale {
		t.Error("stale build was cached across the generation bump")
	}
}
