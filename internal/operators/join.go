package operators

import (
	"fmt"

	"matstore/internal/datasource"
	"matstore/internal/encoding"
	"matstore/internal/exec"
	"matstore/internal/positions"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

// RightStrategy selects how the inner (right) table is materialized for a
// hash join, matching the three curves of Figure 13.
type RightStrategy uint8

const (
	// RightMaterialized constructs right tuples before the join (EM): every
	// payload column is decompressed at build time into row-addressable
	// arrays, so a probe match reads its payload with a direct index.
	RightMaterialized RightStrategy = iota
	// RightMultiColumn sends the right table as multi-columns: payload
	// mini-columns are retained compressed in memory, and values are
	// extracted as probes match (the hybrid of Section 4.3).
	RightMultiColumn
	// RightSingleColumn sends only the join-predicate column (pure LM): the
	// join emits right positions, and payloads are fetched after the join
	// by jumping to out-of-order positions in the stored column — the extra
	// non-merge positional join the paper charges this strategy for.
	RightSingleColumn
)

func (s RightStrategy) String() string {
	switch s {
	case RightMaterialized:
		return "right-materialized"
	case RightMultiColumn:
		return "right-multicolumn"
	case RightSingleColumn:
		return "right-singlecolumn"
	default:
		return fmt.Sprintf("right-strategy(%d)", uint8(s))
	}
}

// ParseRightStrategy converts a string (as used by CLI flags) to a
// RightStrategy.
func ParseRightStrategy(s string) (RightStrategy, error) {
	switch s {
	case "right-materialized", "materialized", "em":
		return RightMaterialized, nil
	case "right-multicolumn", "multicolumn", "mc":
		return RightMultiColumn, nil
	case "right-singlecolumn", "singlecolumn", "lm", "sc":
		return RightSingleColumn, nil
	default:
		return 0, fmt.Errorf("operators: unknown right strategy %q", s)
	}
}

// RightTable is the built (inner) side of a hash join.
type RightTable struct {
	strategy  RightStrategy
	payload   []string
	keyToPos  map[int64][]int64
	dense     [][]int64               // RightMaterialized: payload[c][rightPos]
	chunks    [][]encoding.MiniColumn // RightMultiColumn: [chunk][payloadIdx]
	chunkSize int64
	cols      []*storage.Column // RightSingleColumn: deferred fetch targets
	// BuildTuples counts right tuples materialized during build.
	BuildTuples int64
}

// BuildRightTable scans the right projection's key column (and, per
// strategy, its payload columns) and builds the hash side serially. Since
// the radix-partitioned build (radix.go) took over the plan-executor join
// path, this is the retained reference implementation: the differential
// suite pins the parallel build byte-identical to it, and
// core.Options.SerialJoinBuild routes joins back through it for the
// ablation benchmark.
func BuildRightTable(p *storage.Projection, key string, payload []string, strat RightStrategy, chunkSize int64) (*RightTable, error) {
	keyCol, err := p.Column(key)
	if err != nil {
		return nil, err
	}
	rt := &RightTable{
		strategy:  strat,
		payload:   payload,
		keyToPos:  make(map[int64][]int64, p.TupleCount()),
		chunkSize: chunkSize,
	}
	payloadCols := make([]*storage.Column, len(payload))
	for i, name := range payload {
		if payloadCols[i], err = p.Column(name); err != nil {
			return nil, err
		}
	}
	switch strat {
	case RightMaterialized:
		rt.dense = make([][]int64, len(payload))
	case RightSingleColumn:
		rt.cols = payloadCols
	}

	ch := datasource.NewChunker(keyCol.Extent(), chunkSize)
	var keyBuf []int64
	for ci := 0; ci < ch.NumChunks(); ci++ {
		r := ch.Chunk(ci)
		mc, err := keyCol.Window(r)
		if err != nil {
			return nil, err
		}
		keyBuf = mc.Decompress(keyBuf[:0])
		for i, k := range keyBuf {
			rt.keyToPos[k] = append(rt.keyToPos[k], r.Start+int64(i))
		}
		switch strat {
		case RightMaterialized:
			// Construct right tuples now (early materialization): payload
			// columns are decompressed into position-addressable arrays.
			for c := range payloadCols {
				pm, err := payloadCols[c].Window(r)
				if err != nil {
					return nil, err
				}
				rt.dense[c] = pm.Decompress(rt.dense[c])
			}
			rt.BuildTuples += int64(len(keyBuf))
		case RightMultiColumn:
			// Retain the payload mini-columns, compressed, in memory.
			minis := make([]encoding.MiniColumn, len(payloadCols))
			for c := range payloadCols {
				if minis[c], err = payloadCols[c].Window(r); err != nil {
					return nil, err
				}
			}
			rt.chunks = append(rt.chunks, minis)
		}
	}
	return rt, nil
}

// Probe returns the right positions matching key (nil if none).
func (rt *RightTable) Probe(key int64) []int64 { return rt.keyToPos[key] }

// JoinStats reports join-side work counters.
type JoinStats struct {
	// LeftProbes is the number of left tuples passing the left predicate
	// and probed against the hash table.
	LeftProbes int64
	// Workers is the effective probe-phase worker count.
	Workers int
	// Morsels is the number of outer-table morsels probed.
	Morsels int
	// OutputTuples is the number of join result tuples.
	OutputTuples int64
	// RightBuildTuples is the number of right tuples constructed at build.
	RightBuildTuples int64
	// DeferredFetches is the number of out-of-order position jumps into
	// stored right columns (single-column strategy only).
	DeferredFetches int64
	// Partitions is the radix partition count of the hash build (0 on the
	// serial-build reference path).
	Partitions int
	// BuildWorkers and BuildMorsels describe the parallel build phase (0 on
	// the serial-build reference path).
	BuildWorkers int
	BuildMorsels int
	// BuildCacheHit reports that the build phase was satisfied from a shared
	// retained build (the service-level build cache or Plan.ReuseBuild)
	// instead of scanning the inner table.
	BuildCacheHit bool
	// Spilled reports a Grace spill-mode run: the build ran under a byte
	// budget with SpilledParts partitions on disk (SpillBytes total) and all
	// right payload deferred to the stored columns. SpillProbes counts the
	// probes resolved partition-at-a-time from spilled partitions.
	Spilled      bool
	SpilledParts int
	SpillBytes   int64
	SpillProbes  int64
	// SpillWriteNanos is the wall time the build spent writing spill frames
	// (trace/slow-log attribution of disk time vs hash time).
	SpillWriteNanos int64
}

// JoinSpec describes one hash join: the outer (left) table's key column
// with an optional predicate, the left payload columns to output, and a
// built right table.
type JoinSpec struct {
	LeftKey     *storage.Column
	LeftPred    pred.Predicate
	LeftOutputs []NamedColumn
	Right       *RightTable
	ChunkSize   int64
	// Workers is the probe-phase parallelism (0 = one worker per CPU): the
	// outer table is split into chunk-aligned morsels probed concurrently
	// against the shared read-only hash side, and per-morsel outputs are
	// concatenated in block order.
	Workers int
}

// NamedColumn pairs an output name with its stored column.
type NamedColumn struct {
	Name string
	Col  *storage.Column
}

// RunHashJoin executes the join chunk-at-a-time over the left table. The
// output schema is the left output columns followed by the right payload
// columns. For the single-column right strategy the right payload columns
// are filled in a post-pass via out-of-order position fetches — positions
// emerge from the probe in left order, not right order, so no merge join on
// position is possible (Section 4.3).
func RunHashJoin(spec JoinSpec) (*rows.Result, JoinStats, error) {
	var stats JoinStats
	rt := spec.Right
	stats.RightBuildTuples = rt.BuildTuples
	outNames := make([]string, 0, len(spec.LeftOutputs)+len(rt.payload))
	for _, nc := range spec.LeftOutputs {
		outNames = append(outNames, nc.Name)
	}
	outNames = append(outNames, rt.payload...)
	deferred := rt.strategy == RightSingleColumn

	// Probe phase: morsels of the outer table probe the (read-only) hash
	// side concurrently; each produces a partial result plus, for the
	// single-column strategy, its slice of the deferred right-position list.
	workers := exec.Resolve(spec.Workers)
	morsels := exec.Morsels(spec.LeftKey.Extent(), spec.ChunkSize, workers)
	if workers > len(morsels) {
		workers = len(morsels)
	}
	stats.Workers = workers
	stats.Morsels = len(morsels)
	type probePartial struct {
		res     *rows.Result
		pending []int64
		stats   JoinStats
	}
	parts := make([]*probePartial, len(morsels))
	err := exec.Run(workers, len(morsels), func(i int) error {
		pt := &probePartial{res: rows.NewResult(outNames...)}
		if err := probeMorsel(spec, morsels[i], outNames, pt.res, &pt.pending, &pt.stats); err != nil {
			return err
		}
		parts[i] = pt
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	if len(parts) == 0 {
		// Empty outer table: no morsels to probe; the join result is empty.
		parts = []*probePartial{{res: rows.NewResult(outNames...)}}
	}

	// Merge in morsel order: result rows concatenate in left block order,
	// and the deferred position list concatenates alongside so pending[i]
	// stays the right position of result row i.
	res := parts[0].res
	rightPosPending := parts[0].pending
	stats.LeftProbes += parts[0].stats.LeftProbes
	stats.OutputTuples += parts[0].stats.OutputTuples
	for _, pt := range parts[1:] {
		if err := res.Append(pt.res); err != nil {
			return nil, stats, err
		}
		rightPosPending = append(rightPosPending, pt.pending...)
		stats.LeftProbes += pt.stats.LeftProbes
		stats.OutputTuples += pt.stats.OutputTuples
	}

	if deferred && len(rightPosPending) > 0 {
		// Post-join fetch of right payloads at out-of-order positions. The
		// positions emerge in left probe order, so no merge join on position
		// is possible — but the fetch itself is batched: one block-pinned
		// gather per payload column walks the stored column in block order
		// and scatters values back to probe order, instead of paying a block
		// search plus a buffer-pool lock round-trip per (tuple, column).
		base := len(spec.LeftOutputs)
		var vals []int64
		for c := range rt.payload {
			var err error
			vals, err = rt.cols[c].GatherUnordered(rightPosPending, vals[:0])
			if err != nil {
				return nil, stats, err
			}
			copy(res.Cols[base+c], vals)
			stats.DeferredFetches += int64(len(rightPosPending))
		}
	}
	return res, stats, nil
}

// probeMorsel runs the chunk-at-a-time probe loop over one morsel of the
// outer table, appending matches to res (and, for the single-column
// strategy, right positions to *pending, aligned with res rows).
func probeMorsel(spec JoinSpec, morsel positions.Range, outNames []string, res *rows.Result, pending *[]int64, stats *JoinStats) error {
	rt := spec.Right
	ch := datasource.NewChunker(morsel, spec.ChunkSize)
	ds1 := datasource.DS1{Col: spec.LeftKey, Pred: spec.LeftPred}
	var keyBuf []int64
	row := make([]int64, len(outNames))
	base := len(spec.LeftOutputs)
	for ci := 0; ci < ch.NumChunks(); ci++ {
		r := ch.Chunk(ci)
		ps, _, err := ds1.ScanChunk(r)
		if err != nil {
			return err
		}
		if ps.Count() == 0 {
			continue
		}
		// Window the left output columns only for chunks with matches.
		leftMinis := make([]encoding.MiniColumn, len(spec.LeftOutputs))
		for i, nc := range spec.LeftOutputs {
			if leftMinis[i], err = nc.Col.Window(r); err != nil {
				return err
			}
		}
		keyMini, err := spec.LeftKey.Window(r)
		if err != nil {
			return err
		}
		it := ps.Runs()
		for {
			run, ok := it.Next()
			if !ok {
				break
			}
			keyBuf = keyMini.Extract(keyBuf[:0], positions.Ranges{run})
			for i, k := range keyBuf {
				pos := run.Start + int64(i)
				stats.LeftProbes++
				for _, rpos := range rt.Probe(k) {
					for c := range spec.LeftOutputs {
						row[c] = leftMinis[c].ValueAt(pos)
					}
					switch rt.strategy {
					case RightMaterialized:
						for c := range rt.payload {
							row[base+c] = rt.dense[c][rpos]
						}
					case RightMultiColumn:
						minis := rt.chunks[rpos/rt.chunkSize]
						for c := range rt.payload {
							row[base+c] = minis[c].ValueAt(rpos)
						}
					default:
						for c := range rt.payload {
							row[base+c] = 0 // filled in post-pass
						}
						*pending = append(*pending, rpos)
					}
					res.AppendRow(row...)
					stats.OutputTuples++
				}
			}
		}
	}
	return nil
}
