// Package operators implements the query-plan operators above the data
// sources: the n-ary MERGE tuple constructor (Section 3.4), the SPC
// scan-predicate-construct leaf (Section 3.4), aggregation that can operate
// directly on compressed data (Section 4.2), and the hash join with the
// three inner-table materialization strategies of Section 4.3. Position
// intersection (the AND operator of Section 3.3) lives in
// internal/positions and internal/multicol, since it is pure position
// algebra.
package operators

import (
	"fmt"

	"matstore/internal/rows"
)

// Merger is the n-ary MERGE operator: it combines k aligned value streams
// (one per output attribute, all extracted at the same positions) into
// k-ary output tuples. It sits at the top of LM plans; its cost is the
// tuple-construction cost the analytical model charges in Figure 5.
type Merger struct {
	res *rows.Result
	// TuplesConstructed counts output tuples built, for the harness's
	// tuple-construction accounting.
	TuplesConstructed int64
}

// NewMerger returns a Merger producing the given output schema.
func NewMerger(outCols ...string) *Merger {
	return &Merger{res: rows.NewResult(outCols...)}
}

// MergeChunk appends one chunk's aligned value vectors. Every vector must
// have the same length and the arity must match the output schema.
func (m *Merger) MergeChunk(cols ...[]int64) error {
	if len(cols) != len(m.res.Cols) {
		return fmt.Errorf("operators: merge arity %d, want %d", len(cols), len(m.res.Cols))
	}
	n := -1
	for _, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("operators: merge input lengths differ (%d vs %d)", len(c), n)
		}
	}
	for i, c := range cols {
		m.res.Cols[i] = append(m.res.Cols[i], c...)
	}
	m.TuplesConstructed += int64(n)
	return nil
}

// Result returns the accumulated output.
func (m *Merger) Result() *rows.Result { return m.res }
