package operators

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/positions"
	"matstore/internal/pred"
	"matstore/internal/storage"
)

func TestMergerBasics(t *testing.T) {
	m := NewMerger("a", "b")
	if err := m.MergeChunk([]int64{1, 2}, []int64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := m.MergeChunk([]int64{3}, []int64{30}); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.NumRows() != 3 || m.TuplesConstructed != 3 {
		t.Errorf("rows=%d constructed=%d", res.NumRows(), m.TuplesConstructed)
	}
	if !reflect.DeepEqual(res.Row(2), []int64{3, 30}) {
		t.Errorf("Row(2) = %v", res.Row(2))
	}
}

func TestMergerErrors(t *testing.T) {
	m := NewMerger("a", "b")
	if err := m.MergeChunk([]int64{1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := m.MergeChunk([]int64{1, 2}, []int64{10}); err == nil {
		t.Error("ragged inputs accepted")
	}
}

func TestSPCChunk(t *testing.T) {
	cols := [][]int64{
		{1, 2, 3, 4, 5},      // col 0
		{10, 20, 30, 40, 50}, // col 1
	}
	dst := make([][]int64, 2) // output schema: col1 then col0
	n := SPCChunk(cols,
		[]IndexedPred{{Col: 0, Pred: pred.AtLeast(2)}, {Col: 1, Pred: pred.LessThan(50)}},
		[]int{1, 0}, dst)
	if n != 3 {
		t.Fatalf("constructed = %d", n)
	}
	if !reflect.DeepEqual(dst[0], []int64{20, 30, 40}) {
		t.Errorf("dst[0] = %v", dst[0])
	}
	if !reflect.DeepEqual(dst[1], []int64{2, 3, 4}) {
		t.Errorf("dst[1] = %v", dst[1])
	}
	// Appends accumulate across chunks.
	n = SPCChunk([][]int64{{9}, {10}}, nil, []int{1, 0}, dst)
	if n != 1 || len(dst[0]) != 4 {
		t.Errorf("accumulation broken: n=%d len=%d", n, len(dst[0]))
	}
}

func TestSPCChunkShortCircuit(t *testing.T) {
	cols := [][]int64{{1, 1}, {5, 5}}
	dst := make([][]int64, 1)
	n := SPCChunk(cols, []IndexedPred{{Col: 0, Pred: pred.Equals(99)}}, []int{0}, dst)
	if n != 0 || len(dst[0]) != 0 {
		t.Error("rows leaked through failing predicate")
	}
	if SPCChunk(nil, nil, nil, dst) != 0 {
		t.Error("empty input mishandled")
	}
}

func TestSumAggregatorTupleAndRunAgree(t *testing.T) {
	a := NewSumAggregator()
	a.AddTuple(1, 10)
	a.AddTuple(1, 5)
	a.AddTuple(2, 7)
	a.AddBatch([]int64{2, 3}, []int64{3, 100})

	b := NewSumAggregator()
	b.AddRun(1, encoding.RunStats{Sum: 15, Count: 2, Min: 5, Max: 10})
	b.AddRun(2, encoding.RunStats{Sum: 10, Count: 2, Min: 3, Max: 7})
	b.AddRun(3, encoding.RunStats{Sum: 100, Count: 1, Min: 100, Max: 100})

	ra := a.Emit("k", "s")
	rb := b.Emit("k", "s")
	if !reflect.DeepEqual(ra.Cols, rb.Cols) {
		t.Errorf("tuple-wise %v vs run-wise %v", ra.Cols, rb.Cols)
	}
	if a.TuplesIn != 5 || b.RunsIn != 3 {
		t.Errorf("counters: tuples=%d runs=%d", a.TuplesIn, b.RunsIn)
	}
	if a.Groups() != 3 {
		t.Errorf("Groups = %d", a.Groups())
	}
	// Emit is sorted by key.
	k, _ := ra.Col("k")
	if !reflect.DeepEqual(k, []int64{1, 2, 3}) {
		t.Errorf("keys = %v", k)
	}
}

// TestAggregateCompressedChunkAllKeyEncodings verifies aggregation directly
// on compressed data matches a naive recompute for every (key, value)
// encoding pair.
func TestAggregateCompressedChunkAllKeyEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 600
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i / 97) // sorted key with runs
		vals[i] = int64(rng.Intn(100))
	}
	desc := positions.NewRanges(
		positions.Range{Start: 50, End: 300},
		positions.Range{Start: 400, End: 550},
	)
	want := map[int64]int64{}
	for i := 0; i < n; i++ {
		if desc.Contains(int64(i)) {
			want[keys[i]] += vals[i]
		}
	}
	keyMinis := []encoding.MiniColumn{
		encoding.PlainMiniFromValues(0, keys),
		encoding.RLEMiniFromValues(0, keys),
		encoding.BVMiniFromValues(0, keys),
	}
	valMinis := []encoding.MiniColumn{
		encoding.PlainMiniFromValues(0, vals),
		encoding.RLEMiniFromValues(0, vals),
		encoding.BVMiniFromValues(0, vals),
	}
	for _, km := range keyMinis {
		for _, vm := range valMinis {
			a := NewSumAggregator()
			AggregateCompressedChunk(a, km, vm, desc)
			if a.Groups() != len(want) {
				t.Fatalf("key=%v val=%v: groups %d, want %d", km.Kind(), vm.Kind(), a.Groups(), len(want))
			}
			res := a.Emit("k", "s")
			k, _ := res.Col("k")
			s, _ := res.Col("s")
			for i := range k {
				if want[k[i]] != s[i] {
					t.Fatalf("key=%v val=%v: group %d sum %d, want %d",
						km.Kind(), vm.Kind(), k[i], s[i], want[k[i]])
				}
			}
		}
	}
}

func TestAggregateCompressedChunkEmptyDesc(t *testing.T) {
	a := NewSumAggregator()
	km := encoding.RLEMiniFromValues(0, []int64{1, 1, 2, 2})
	vm := encoding.PlainMiniFromValues(0, []int64{1, 2, 3, 4})
	AggregateCompressedChunk(a, km, vm, positions.Empty{})
	if a.Groups() != 0 {
		t.Errorf("Groups = %d", a.Groups())
	}
}

// joinFixture builds tiny left/right projections for join unit tests.
func joinFixture(t *testing.T) (left, right *storage.Projection) {
	t.Helper()
	pool := buffer.New(0)
	ldir := filepath.Join(t.TempDir(), "left")
	lw, err := storage.NewProjectionWriter(ldir, "left", nil, []storage.ColumnSpec{
		{Name: "k", Encoding: encoding.Plain},
		{Name: "payload", Encoding: encoding.Plain},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Left: keys with duplicates and misses.
	for i, k := range []int64{0, 2, 2, 5, 9, 1} {
		if err := lw.AppendRow(k, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	rdir := filepath.Join(t.TempDir(), "right")
	rw, err := storage.NewProjectionWriter(rdir, "right", nil, []storage.ColumnSpec{
		{Name: "k", Encoding: encoding.Plain},
		{Name: "val", Encoding: encoding.Plain},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Right: keys 0..3, with key 2 duplicated.
	for i, k := range []int64{0, 1, 2, 2, 3} {
		if err := rw.AppendRow(k, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	lp, err := storage.OpenProjection(ldir, pool)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := storage.OpenProjection(rdir, pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lp.Close(); rp.Close() })
	return lp, rp
}

func TestHashJoinAllRightStrategies(t *testing.T) {
	left, right := joinFixture(t)
	leftKey, _ := left.Column("k")
	leftPayload, _ := left.Column("payload")
	// Expected: left rows with key 0,2,2,1 match; key 2 matches two right rows.
	wantLeft := []int64{100, 101, 101, 102, 102, 105}
	wantRight := []int64{1000, 1002, 1003, 1002, 1003, 1001}
	for _, rs := range []RightStrategy{RightMaterialized, RightMultiColumn, RightSingleColumn} {
		rt, err := BuildRightTable(right, "k", []string{"val"}, rs, 64)
		if err != nil {
			t.Fatal(err)
		}
		res, stats, err := RunHashJoin(JoinSpec{
			LeftKey:     leftKey,
			LeftPred:    pred.MatchAll,
			LeftOutputs: []NamedColumn{{Name: "payload", Col: leftPayload}},
			Right:       rt,
			ChunkSize:   64,
		})
		if err != nil {
			t.Fatalf("%v: %v", rs, err)
		}
		gotLeft, _ := res.Col("payload")
		gotRight, _ := res.Col("val")
		if !reflect.DeepEqual(gotLeft, wantLeft) || !reflect.DeepEqual(gotRight, wantRight) {
			t.Errorf("%v: got %v/%v, want %v/%v", rs, gotLeft, gotRight, wantLeft, wantRight)
		}
		if stats.OutputTuples != 6 || stats.LeftProbes != 6 {
			t.Errorf("%v: stats = %+v", rs, stats)
		}
		switch rs {
		case RightMaterialized:
			if stats.RightBuildTuples != 5 {
				t.Errorf("materialized build tuples = %d", stats.RightBuildTuples)
			}
		case RightSingleColumn:
			if stats.DeferredFetches != 6 {
				t.Errorf("deferred fetches = %d", stats.DeferredFetches)
			}
		}
	}
}

func TestHashJoinLeftPredicate(t *testing.T) {
	left, right := joinFixture(t)
	leftKey, _ := left.Column("k")
	leftPayload, _ := left.Column("payload")
	rt, err := BuildRightTable(right, "k", []string{"val"}, RightMaterialized, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunHashJoin(JoinSpec{
		LeftKey:     leftKey,
		LeftPred:    pred.LessThan(2), // keys 0 and 1 only
		LeftOutputs: []NamedColumn{{Name: "payload", Col: leftPayload}},
		Right:       rt,
		ChunkSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || stats.LeftProbes != 2 {
		t.Errorf("rows=%d probes=%d, want 2/2", res.NumRows(), stats.LeftProbes)
	}
}

func TestHashJoinEmptyLeft(t *testing.T) {
	left, right := joinFixture(t)
	leftKey, _ := left.Column("k")
	rt, err := BuildRightTable(right, "k", []string{"val"}, RightMultiColumn, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunHashJoin(JoinSpec{
		LeftKey:   leftKey,
		LeftPred:  pred.Predicate{Op: pred.None},
		Right:     rt,
		ChunkSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestRightStrategyString(t *testing.T) {
	for rs, want := range map[RightStrategy]string{
		RightMaterialized: "right-materialized",
		RightMultiColumn:  "right-multicolumn",
		RightSingleColumn: "right-singlecolumn",
	} {
		if rs.String() != want {
			t.Errorf("%d.String() = %q", rs, rs.String())
		}
	}
}
