package operators

import (
	"matstore/internal/datasource"
	"matstore/internal/encoding"
	"matstore/internal/exec"
	"matstore/internal/storage"
)

// This file is the radix-partitioned parallel hash build that replaces the
// serial BuildRightTable on the plan-executor join path (the serial build in
// join.go survives as the differential-test reference and the ablation
// benchmark's baseline). Workers scan the inner key column morsel-parallel,
// routing every (key, position) pair into a per-morsel × per-partition
// buffer by a radix of the key hash; a barrier later builds one small hash
// table per partition with no locks, each partition owned by exactly one
// worker. Because the buffers are indexed by morsel and concatenated in
// morsel order, the position lists inside every hash bucket come out in
// ascending position order — exactly the order the serial build's scan
// produces — so probe results are byte-identical at every worker and
// partition count.

// HashKey mixes a join key into a full-width hash (the 64-bit finalizer of
// MurmurHash3). The low bits select the radix partition, so the mix must
// spread nearby keys — dense foreign-key domains are the common case.
func HashKey(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// PartitionOf maps a key to its shard under the key-partitioned storage
// layout (storage.PartitionHashName): HashKey reduced modulo the shard
// count. Modulo rather than a mask — shard counts need not be powers of
// two. Generation and coordination must agree on this function exactly, or
// co-partitioned joins would probe the wrong shard.
func PartitionOf(key int64, shards int) int {
	return int(HashKey(key) % uint64(shards))
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ResolvePartitions picks the radix partition count: an explicit override is
// rounded up to a power of two (the radix mask needs one); otherwise the
// next power of two of the worker count, so every build worker can own at
// least one partition during the lock-free table-build phase.
func ResolvePartitions(workers, override int) int {
	if override > 0 {
		return NextPow2(override)
	}
	if workers < 1 {
		workers = 1
	}
	return NextPow2(workers)
}

// PartitionedTable is the radix-partitioned inner side of a hash join: one
// hash table per partition, plus the per-strategy payload storage of
// RightTable (dense arrays, retained mini-columns, or deferred column
// handles).
type PartitionedTable struct {
	strategy  RightStrategy
	payload   []string
	mask      uint64
	tables    []map[int64][]int64
	dense     [][]int64               // RightMaterialized: payload[c][rightPos]
	chunks    [][]encoding.MiniColumn // RightMultiColumn: [chunk][payloadIdx]
	chunkSize int64
	cols      []*storage.Column // RightSingleColumn: deferred fetch targets

	// BuildTuples counts right tuples materialized during build.
	BuildTuples int64
	// Tuples is the inner table's tuple count (every build scans them all).
	Tuples int64
	// Partitions, BuildWorkers and BuildMorsels describe the build phase.
	Partitions   int
	BuildWorkers int
	BuildMorsels int
	// SizeBytes estimates the table's resident heap footprint (hash buckets
	// plus the per-strategy payload storage) — the accounting unit of the
	// shared build cache's memory budget.
	SizeBytes int64
	// SpilledParts and SpillBytes describe the Grace spill share of a
	// budget-bounded build (zero for fully in-memory builds);
	// SpillWriteNanos is the wall time spent in spill frame writes during
	// the build (a trace/slow-log attribute separating disk time from hash
	// time).
	SpilledParts    int
	SpillBytes      int64
	SpillWriteNanos int64

	// spill is non-nil for budget-bounded builds (see spill.go): partitions
	// past spill.resident live in temp files and all payload access defers
	// to the stored columns.
	spill *spillState
}

// Strategy returns the inner-table materialization strategy built.
func (rt *PartitionedTable) Strategy() RightStrategy { return rt.strategy }

// Spilled reports whether this is a budget-bounded Grace build whose
// partitions (and temp files) live only as long as the run that built it —
// such a table must never be reused or cached across runs.
func (rt *PartitionedTable) Spilled() bool { return rt.spill != nil }

// Payload returns the payload column names.
func (rt *PartitionedTable) Payload() []string { return rt.payload }

// Probe returns the right positions matching key in ascending position
// order (nil if none). Safe for concurrent use: the tables are read-only
// after build.
func (rt *PartitionedTable) Probe(key int64) []int64 {
	return rt.tables[HashKey(key)&rt.mask][key]
}

// DenseValue returns payload column c's value at a right position
// (RightMaterialized only).
func (rt *PartitionedTable) DenseValue(c int, pos int64) int64 { return rt.dense[c][pos] }

// PayloadMinis returns the retained compressed mini-columns of the chunk
// holding a right position (RightMultiColumn only).
func (rt *PartitionedTable) PayloadMinis(pos int64) []encoding.MiniColumn {
	return rt.chunks[pos/rt.chunkSize]
}

// DeferredCol returns payload column c's stored-column handle for the
// post-join positional fetch (RightSingleColumn only).
func (rt *PartitionedTable) DeferredCol(c int) *storage.Column { return rt.cols[c] }

// buildEntry is one scanned (key, right position) pair awaiting its
// partition's table build.
type buildEntry struct {
	key, pos int64
}

// BuildPartitioned scans the inner key column (and, per strategy, its
// payload columns) morsel-parallel and builds the radix-partitioned hash
// side. workers is the resolved worker count; partitions <= 0 derives the
// partition count from it. The same chunkSize as the probe side keeps the
// multi-column chunk addressing aligned.
func BuildPartitioned(key *storage.Column, payloadCols []*storage.Column, payload []string, strat RightStrategy, chunkSize int64, workers, partitions int) (*PartitionedTable, error) {
	extent := key.Extent()
	if workers < 1 {
		workers = 1
	}
	p := ResolvePartitions(workers, partitions)
	rt := &PartitionedTable{
		strategy:   strat,
		payload:    payload,
		mask:       uint64(p - 1),
		tables:     make([]map[int64][]int64, p),
		chunkSize:  chunkSize,
		// Retain the stored-column handles for every strategy: the deferred
		// single-column fetch needs them at probe time, and build-cache
		// demotion needs them to rehydrate payload without a rescan.
		cols:       payloadCols,
		Tuples:     extent.Len(),
		Partitions: p,
	}
	numChunks := (extent.Len() + chunkSize - 1) / chunkSize
	switch strat {
	case RightMaterialized:
		// Construct right tuples at build (early materialization): each
		// payload column decompresses into one position-addressable array.
		// Morsels fill disjoint ranges of the shared arrays, so no locks.
		rt.dense = make([][]int64, len(payloadCols))
		for c := range payloadCols {
			rt.dense[c] = make([]int64, extent.Len())
		}
	case RightMultiColumn:
		// Retain the payload mini-columns, compressed, in memory. Chunks are
		// morsel-aligned, so each slot is written by exactly one worker.
		rt.chunks = make([][]encoding.MiniColumn, numChunks)
	case RightSingleColumn:
		rt.cols = payloadCols
	}

	morsels := exec.Morsels(extent, chunkSize, workers)
	if workers > len(morsels) {
		workers = len(morsels)
	}
	if workers < 1 {
		workers = 1
	}
	rt.BuildWorkers = workers
	rt.BuildMorsels = len(morsels)

	// Phase 1: morsel-parallel partitioning scan. Buffers are indexed by
	// (morsel, partition) so phase 2 can concatenate them in morsel order,
	// reproducing the serial build's ascending-position bucket order.
	perMorsel := make([][][]buildEntry, len(morsels))
	buildTuples := make([]int64, len(morsels))
	err := exec.Run(workers, len(morsels), func(i int) error {
		bufs := make([][]buildEntry, p)
		ch := datasource.NewChunker(morsels[i], chunkSize)
		var keyBuf []int64
		for ci := 0; ci < ch.NumChunks(); ci++ {
			r := ch.Chunk(ci)
			mc, err := key.Window(r)
			if err != nil {
				return err
			}
			keyBuf = mc.Decompress(keyBuf[:0])
			for j, k := range keyBuf {
				pt := HashKey(k) & rt.mask
				bufs[pt] = append(bufs[pt], buildEntry{key: k, pos: r.Start + int64(j)})
			}
			switch strat {
			case RightMaterialized:
				for c := range payloadCols {
					pm, err := payloadCols[c].Window(r)
					if err != nil {
						return err
					}
					dst := rt.dense[c][r.Start:r.Start:r.End]
					pm.Decompress(dst)
				}
				buildTuples[i] += int64(len(keyBuf))
			case RightMultiColumn:
				minis := make([]encoding.MiniColumn, len(payloadCols))
				for c := range payloadCols {
					var err error
					if minis[c], err = payloadCols[c].Window(r); err != nil {
						return err
					}
				}
				rt.chunks[r.Start/chunkSize] = minis
			}
		}
		perMorsel[i] = bufs
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, n := range buildTuples {
		rt.BuildTuples += n
	}

	// Phase 2 (after the scan barrier): one hash table per partition, built
	// lock-free — each partition is owned by a single worker, and morsel
	// order concatenation keeps bucket position lists ascending.
	if err := exec.Run(workers, p, func(pt int) error {
		n := 0
		for m := range perMorsel {
			n += len(perMorsel[m][pt])
		}
		tbl := make(map[int64][]int64, n)
		for m := range perMorsel {
			for _, e := range perMorsel[m][pt] {
				tbl[e.key] = append(tbl[e.key], e.pos)
			}
		}
		rt.tables[pt] = tbl
		return nil
	}); err != nil {
		return nil, err
	}
	rt.SizeBytes = rt.memBytes()
	return rt, nil
}

// memBytes estimates the built table's heap footprint: hash buckets (map
// header overhead per key plus the position list) and the per-strategy
// payload storage. Deferred column handles (single-column) weigh nothing —
// they point at the stored files.
func (rt *PartitionedTable) memBytes() int64 {
	var b int64
	for _, tbl := range rt.tables {
		b += 48 * int64(len(tbl)) // map bucket + key + slice header
		for _, poss := range tbl {
			b += 8 * int64(len(poss))
		}
	}
	for _, col := range rt.dense {
		b += 8 * int64(len(col))
	}
	for _, minis := range rt.chunks {
		for _, m := range minis {
			if m != nil {
				b += m.MemBytes()
			}
		}
	}
	return b
}
