package operators

import (
	"reflect"
	"testing"

	"matstore/internal/storage"
)

func TestNextPow2(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 63: 64, 64: 64, 65: 128} {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestResolvePartitions(t *testing.T) {
	for _, tc := range []struct{ workers, override, want int }{
		{1, 0, 1}, {2, 0, 2}, {3, 0, 4}, {8, 0, 8},
		{4, 1, 1}, {1, 8, 8}, {1, 5, 8}, {0, 0, 1},
	} {
		if got := ResolvePartitions(tc.workers, tc.override); got != tc.want {
			t.Errorf("ResolvePartitions(%d, %d) = %d, want %d", tc.workers, tc.override, got, tc.want)
		}
	}
}

// TestHashKeySpread sanity-checks that the radix bits of dense key domains
// (the common foreign-key case) spread across partitions rather than
// clustering in a few buckets.
func TestHashKeySpread(t *testing.T) {
	const p = 8
	var counts [p]int
	for k := int64(0); k < 8000; k++ {
		counts[HashKey(k)&(p-1)]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("partition %d holds %d of 8000 dense keys (want ~1000)", i, c)
		}
	}
}

// TestBuildPartitionedMatchesSerial pins the radix-partitioned build
// byte-identical to the serial BuildRightTable reference: for every
// strategy, worker count and partition count, probing any key must return
// the same ascending right-position list, and the per-strategy payload
// storage must hold the same values.
func TestBuildPartitionedMatchesSerial(t *testing.T) {
	_, right := joinFixture(t)
	keyCol, err := right.Column("k")
	if err != nil {
		t.Fatal(err)
	}
	valCol, err := right.Column("val")
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 64
	for _, rs := range []RightStrategy{RightMaterialized, RightMultiColumn, RightSingleColumn} {
		ref, err := BuildRightTable(right, "k", []string{"val"}, rs, chunkSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			for _, partitions := range []int{0, 1, 2, 8, 64} {
				rt, err := BuildPartitioned(keyCol, []*storage.Column{valCol}, []string{"val"}, rs, chunkSize, workers, partitions)
				if err != nil {
					t.Fatalf("%v/w=%d/p=%d: %v", rs, workers, partitions, err)
				}
				if rt.BuildTuples != ref.BuildTuples {
					t.Errorf("%v/w=%d/p=%d: BuildTuples = %d, want %d", rs, workers, partitions, rt.BuildTuples, ref.BuildTuples)
				}
				for k := int64(-1); k < 12; k++ {
					got, want := rt.Probe(k), ref.Probe(k)
					if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
						t.Errorf("%v/w=%d/p=%d: Probe(%d) = %v, want %v", rs, workers, partitions, k, got, want)
					}
					for _, rpos := range got {
						switch rs {
						case RightMaterialized:
							if gotV, wantV := rt.DenseValue(0, rpos), ref.dense[0][rpos]; gotV != wantV {
								t.Errorf("%v: DenseValue(0, %d) = %d, want %d", rs, rpos, gotV, wantV)
							}
						case RightMultiColumn:
							if gotV, wantV := rt.PayloadMinis(rpos)[0].ValueAt(rpos), ref.chunks[rpos/chunkSize][0].ValueAt(rpos); gotV != wantV {
								t.Errorf("%v: mini value at %d = %d, want %d", rs, rpos, gotV, wantV)
							}
						}
					}
				}
			}
		}
	}
}

// TestBuildPartitionedEmptyRight checks the degenerate empty inner table:
// probes must return nothing and the build must not fault.
func TestBuildPartitionedEmptyRight(t *testing.T) {
	_, right := joinFixture(t)
	keyCol, err := right.Column("k")
	if err != nil {
		t.Fatal(err)
	}
	// An empty extent comes from a zero-tuple projection; simulate by
	// probing a table built over the fixture but asking for missing keys.
	rt, err := BuildPartitioned(keyCol, nil, nil, RightMaterialized, 64, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Probe(999); got != nil {
		t.Errorf("Probe(999) = %v, want nil", got)
	}
	if rt.Partitions != 4 {
		t.Errorf("Partitions = %d, want 4", rt.Partitions)
	}
}
