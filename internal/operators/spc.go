package operators

import (
	"matstore/internal/pred"
)

// IndexedPred applies Pred to column index Col of an SPC input.
type IndexedPred struct {
	Col  int
	Pred pred.Predicate
}

// SPCChunk is the Scan-Predicate-Construct leaf of EM-parallel plans
// (Figure 6 of the paper): it walks k decompressed column vectors in
// lockstep, applies every predicate to each row, and constructs an output
// tuple for the rows where all predicates pass. Predicates short-circuit in
// order, mirroring the model's Π SF_j term: the j-th column's values are
// touched only for rows that survived predicates 1..j-1.
//
// cols are full-chunk decompressed vectors (EM decompresses early — that is
// the point); outIdx selects which input columns feed each output column.
// Constructed tuples are appended column-wise directly into dst (which must
// have len(outIdx) columns); the number of constructed tuples is returned.
func SPCChunk(cols [][]int64, filters []IndexedPred, outIdx []int, dst [][]int64) int64 {
	if len(cols) == 0 {
		return 0
	}
	n := len(cols[0])
	var constructed int64
rowLoop:
	for i := 0; i < n; i++ {
		for _, f := range filters {
			if !f.Pred.Match(cols[f.Col][i]) {
				continue rowLoop
			}
		}
		for c, idx := range outIdx {
			dst[c] = append(dst[c], cols[idx][i])
		}
		constructed++
	}
	return constructed
}
