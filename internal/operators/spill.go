package operators

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"matstore/internal/datasource"
	"matstore/internal/encoding"
	"matstore/internal/exec"
	"matstore/internal/faults"
	"matstore/internal/storage"
)

// This file is the Grace spill path of the radix join build. When the memory
// governor denies an in-memory reservation, the build runs under a byte
// budget: partitions that fit stay resident (normal hash tables), partitions
// over the share stream their (key, position) pairs to per-partition temp
// files as checksummed plain blocks — the same internal/encoding format the
// stored columns use, with no decompression or expansion of payload data.
// The probe handles resident partitions inline and spilled partitions
// partition-at-a-time afterwards (see internal/plan), reproducing the exact
// output order of the in-memory path, so spilled results are byte-identical
// at every budget and worker count.
//
// In spill mode ALL right-payload access is deferred to the stored column
// files (forced late materialization): the spill files carry only hash
// entries, never payload, because the payload already lives on disk in
// compressed block form. The same insight drives build-cache demotion: a
// demoted entry persists only the hash entries and rehydrates its payload by
// re-windowing the stored columns.

// SpillFilePrefix names every spill artifact (partition files and demoted
// builds) so a startup sweep can remove orphans from a crashed process.
const SpillFilePrefix = "spill-"

// SpillDirName is the conventional spill directory under a database dir.
const SpillDirName = ".spill"

// SpillDir returns the conventional spill directory for a database dir.
func SpillDir(dbDir string) string { return filepath.Join(dbDir, SpillDirName) }

// SweepSpillDir removes orphaned spill files left by a previous crash.
// A missing directory is not an error. Returns the number of files removed.
func SweepSpillDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || len(e.Name()) < len(SpillFilePrefix) || e.Name()[:len(SpillFilePrefix)] != SpillFilePrefix {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// SpillConfig parameterizes one spill-mode build.
type SpillConfig struct {
	// BudgetBytes bounds the resident (in-memory) share of the build.
	BudgetBytes int64
	// EstBytes is the predicted full in-memory size (model.EstimateJoinMemory);
	// the resident partition count is BudgetBytes / (EstBytes / partitions).
	EstBytes int64
	// Dir holds the per-partition temp files (created if missing).
	Dir string
}

// spillPartition is one cold partition's temp file. Writers from different
// morsels interleave frames under mu; the probe-side load sorts entries by
// position, so the on-disk frame order never affects results.
type spillPartition struct {
	mu         sync.Mutex
	f          *os.File
	path       string
	entries    int64
	bytes      int64
	writeNanos int64
}

// spillState marks a table as spill-built: partitions >= resident live on
// disk, and all payload access is deferred to the stored columns.
type spillState struct {
	dir      string
	resident int
	parts    []*spillPartition // nil below resident
	release  sync.Once
}

// DeferredPayload reports whether this table was built in spill mode, where
// every right-payload value is fetched post-merge from the stored columns.
func (rt *PartitionedTable) DeferredPayload() bool { return rt.spill != nil }

// SpilledPartition reports whether partition pt lives on disk.
func (rt *PartitionedTable) SpilledPartition(pt int) bool {
	return rt.spill != nil && pt >= rt.spill.resident
}

// ResidentPartitions returns the number of in-memory partitions (equals
// Partitions for non-spill builds).
func (rt *PartitionedTable) ResidentPartitions() int {
	if rt.spill == nil {
		return rt.Partitions
	}
	return rt.spill.resident
}

// KeyPartition returns the radix partition a key routes to.
func (rt *PartitionedTable) KeyPartition(key int64) int { return int(HashKey(key) & rt.mask) }

// ReleaseSpill closes and removes the table's spill files. Idempotent; a
// no-op for in-memory builds. The plan executor calls it when the run
// finishes (success, error, or cancellation).
func (rt *PartitionedTable) ReleaseSpill() {
	if rt == nil || rt.spill == nil {
		return
	}
	rt.spill.release.Do(func() {
		for _, sp := range rt.spill.parts {
			if sp == nil {
				continue
			}
			if sp.f != nil {
				sp.f.Close()
			}
			os.Remove(sp.path)
		}
	})
}

// spillAwareWrite writes buf honoring the site's armed failpoint: a short
// write flushes a truncated prefix (so the file really is torn on disk)
// before returning the injected error.
func spillAwareWrite(f *os.File, site string, buf []byte) error {
	if n, err := faults.WriteOutcome(site, len(buf)); err != nil {
		if n > 0 {
			f.Write(buf[:n])
		}
		return fmt.Errorf("%s: %w", site, err)
	}
	_, err := f.Write(buf)
	return err
}

// writeFrame appends one (keys, positions) frame — two plain blocks — to the
// partition file. len(keys) == len(poss) <= encoding.PlainBlockCap.
func (sp *spillPartition) writeFrame(site string, keys, poss []int64, blockBuf []byte) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	start := time.Now()
	encoding.EncodePlainBlock(blockBuf, sp.entries, keys)
	if err := spillAwareWrite(sp.f, site, blockBuf); err != nil {
		return err
	}
	encoding.EncodePlainBlock(blockBuf, sp.entries, poss)
	if err := spillAwareWrite(sp.f, site, blockBuf); err != nil {
		return err
	}
	sp.entries += int64(len(keys))
	sp.bytes += 2 * encoding.BlockSize
	sp.writeNanos += time.Since(start).Nanoseconds()
	return nil
}

// readEntryFrames reads every (key, position) frame from r, verifying block
// checksums. site names the fault-injection point for read errors.
func readEntryFrames(r io.Reader, site string) ([]buildEntry, error) {
	buf := make([]byte, encoding.BlockSize)
	var out []buildEntry
	for {
		if err := faults.Check(site); err != nil {
			return nil, fmt.Errorf("%s: %w", site, err)
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("spill frame: %w", err)
		}
		kb, err := encoding.DecodePlainBlock(buf)
		if err != nil {
			return nil, fmt.Errorf("spill key block: %w", err)
		}
		keys := append([]int64(nil), kb.Vals...)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("spill frame truncated: %w", err)
		}
		pb, err := encoding.DecodePlainBlock(buf)
		if err != nil {
			return nil, fmt.Errorf("spill position block: %w", err)
		}
		if len(pb.Vals) != len(keys) {
			return nil, fmt.Errorf("spill frame: %d keys vs %d positions", len(keys), len(pb.Vals))
		}
		for i, k := range keys {
			out = append(out, buildEntry{key: k, pos: pb.Vals[i]})
		}
	}
}

// LoadSpilledPartition reads one spilled partition back and builds its hash
// table. Entries are sorted by position first, so bucket position lists come
// out ascending regardless of how morsel flushes interleaved in the file —
// the same order the in-memory build produces. The caller probes the table
// and drops it before loading the next partition (partition-at-a-time).
func (rt *PartitionedTable) LoadSpilledPartition(pt int) (map[int64][]int64, error) {
	sp := rt.spill.parts[pt]
	if sp == nil {
		return nil, fmt.Errorf("partition %d is resident", pt)
	}
	f, err := os.Open(sp.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	entries, err := readEntryFrames(f, "spill.read")
	if err != nil {
		return nil, err
	}
	if int64(len(entries)) != sp.entries {
		return nil, fmt.Errorf("spill partition %d: %d entries on disk, wrote %d", pt, len(entries), sp.entries)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pos < entries[j].pos })
	tbl := make(map[int64][]int64, len(entries))
	for _, e := range entries {
		tbl[e.key] = append(tbl[e.key], e.pos)
	}
	return tbl, nil
}

// residentShare derives how many partitions fit the budget, assuming the
// estimate spreads evenly (radix hashing does).
func residentShare(partitions int, cfg SpillConfig) int {
	if cfg.BudgetBytes <= 0 {
		return 0
	}
	perPart := cfg.EstBytes / int64(partitions)
	if perPart < 1 {
		perPart = 1
	}
	resident := int(cfg.BudgetBytes / perPart)
	if resident > partitions {
		resident = partitions
	}
	if resident < 0 {
		resident = 0
	}
	return resident
}

// BuildPartitionedSpill is the budget-bounded variant of BuildPartitioned:
// it scans only the key column (payload is deferred to the stored columns),
// keeps the first residentShare partitions as in-memory hash tables, and
// streams the rest to per-partition temp files. Cancellation is observed
// between chunks; every error path removes the temp files before returning.
func BuildPartitionedSpill(ctx context.Context, key *storage.Column, payloadCols []*storage.Column, payload []string, strat RightStrategy, chunkSize int64, workers, partitions int, cfg SpillConfig) (*PartitionedTable, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	extent := key.Extent()
	if workers < 1 {
		workers = 1
	}
	p := ResolvePartitions(workers, partitions)
	resident := residentShare(p, cfg)
	rt := &PartitionedTable{
		strategy:   strat,
		payload:    payload,
		mask:       uint64(p - 1),
		tables:     make([]map[int64][]int64, p),
		chunkSize:  chunkSize,
		cols:       payloadCols,
		Tuples:     extent.Len(),
		Partitions: p,
		spill:      &spillState{dir: cfg.Dir, resident: resident, parts: make([]*spillPartition, p)},
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	for i := resident; i < p; i++ {
		if err := faults.Check("spill.create"); err != nil {
			rt.ReleaseSpill()
			return nil, fmt.Errorf("spill.create: %w", err)
		}
		f, err := os.CreateTemp(cfg.Dir, SpillFilePrefix+"part-*.tmp")
		if err != nil {
			rt.ReleaseSpill()
			return nil, err
		}
		rt.spill.parts[i] = &spillPartition{f: f, path: f.Name()}
	}

	morsels := exec.Morsels(extent, chunkSize, workers)
	if workers > len(morsels) {
		workers = len(morsels)
	}
	if workers < 1 {
		workers = 1
	}
	rt.BuildWorkers = workers
	rt.BuildMorsels = len(morsels)

	// Phase 1: morsel-parallel partitioning scan of the key column. Resident
	// partitions buffer per (morsel, partition) exactly like the in-memory
	// build; cold partitions accumulate up to a plain block's worth and flush
	// frames under the partition lock.
	perMorsel := make([][][]buildEntry, len(morsels))
	err := exec.Run(workers, len(morsels), func(i int) error {
		bufs := make([][]buildEntry, resident)
		spillKeys := make([][]int64, p)
		spillPoss := make([][]int64, p)
		blockBuf := make([]byte, encoding.BlockSize)
		flush := func(pt int) error {
			if len(spillKeys[pt]) == 0 {
				return nil
			}
			if err := rt.spill.parts[pt].writeFrame("spill.write", spillKeys[pt], spillPoss[pt], blockBuf); err != nil {
				return err
			}
			spillKeys[pt] = spillKeys[pt][:0]
			spillPoss[pt] = spillPoss[pt][:0]
			return nil
		}
		ch := datasource.NewChunker(morsels[i], chunkSize)
		var keyBuf []int64
		for ci := 0; ci < ch.NumChunks(); ci++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			r := ch.Chunk(ci)
			mc, err := key.Window(r)
			if err != nil {
				return err
			}
			keyBuf = mc.Decompress(keyBuf[:0])
			for j, k := range keyBuf {
				pt := int(HashKey(k) & rt.mask)
				if pt < resident {
					bufs[pt] = append(bufs[pt], buildEntry{key: k, pos: r.Start + int64(j)})
					continue
				}
				spillKeys[pt] = append(spillKeys[pt], k)
				spillPoss[pt] = append(spillPoss[pt], r.Start+int64(j))
				if len(spillKeys[pt]) == encoding.PlainBlockCap {
					if err := flush(pt); err != nil {
						return err
					}
				}
			}
		}
		for pt := resident; pt < p; pt++ {
			if err := flush(pt); err != nil {
				return err
			}
		}
		perMorsel[i] = bufs
		return nil
	})
	if err != nil {
		rt.ReleaseSpill()
		return nil, err
	}

	// Phase 2: hash tables for resident partitions only, morsel order
	// concatenation keeping bucket position lists ascending.
	if resident > 0 {
		if err := exec.Run(workers, resident, func(pt int) error {
			n := 0
			for m := range perMorsel {
				n += len(perMorsel[m][pt])
			}
			tbl := make(map[int64][]int64, n)
			for m := range perMorsel {
				for _, e := range perMorsel[m][pt] {
					tbl[e.key] = append(tbl[e.key], e.pos)
				}
			}
			rt.tables[pt] = tbl
			return nil
		}); err != nil {
			rt.ReleaseSpill()
			return nil, err
		}
	}
	rt.SizeBytes = rt.memBytes()
	for i := resident; i < p; i++ {
		rt.SpillBytes += rt.spill.parts[i].bytes
		rt.SpillWriteNanos += rt.spill.parts[i].writeNanos
	}
	rt.SpilledParts = p - resident
	return rt, nil
}

// demotedMagic guards demoted-build files against stray spill partitions.
const demotedMagic = 0x53504c31 // "SPL1"

// WriteDemoted persists an in-memory build's hash entries to a spill-format
// file so the build cache can keep warm keys probeable past its byte budget.
// Payload is NOT written: it rehydrates from the stored columns, which
// already hold it on disk in compressed block form. Returns the file path
// and its size.
func WriteDemoted(rt *PartitionedTable, dir string) (string, int64, error) {
	if rt.spill != nil {
		return "", 0, fmt.Errorf("refusing to demote a spill-built table")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	f, err := os.CreateTemp(dir, SpillFilePrefix+"demote-*.tmp")
	if err != nil {
		return "", 0, err
	}
	path := f.Name()
	fail := func(err error) (string, int64, error) {
		f.Close()
		os.Remove(path)
		return "", 0, err
	}
	var entryCount int64
	for _, tbl := range rt.tables {
		for _, poss := range tbl {
			entryCount += int64(len(poss))
		}
	}
	blockBuf := make([]byte, encoding.BlockSize)
	meta := []int64{demotedMagic, int64(rt.strategy), rt.Tuples, int64(rt.Partitions),
		rt.chunkSize, int64(len(rt.payload)), entryCount,
		rt.BuildTuples, int64(rt.BuildWorkers), int64(rt.BuildMorsels)}
	encoding.EncodePlainBlock(blockBuf, 0, meta)
	if err := spillAwareWrite(f, "cache.demote", blockBuf); err != nil {
		return fail(err)
	}
	var keys, poss []int64
	var written int64 = encoding.BlockSize
	flush := func() error {
		if len(keys) == 0 {
			return nil
		}
		encoding.EncodePlainBlock(blockBuf, 0, keys)
		if err := spillAwareWrite(f, "cache.demote", blockBuf); err != nil {
			return err
		}
		encoding.EncodePlainBlock(blockBuf, 0, poss)
		if err := spillAwareWrite(f, "cache.demote", blockBuf); err != nil {
			return err
		}
		written += 2 * encoding.BlockSize
		keys, poss = keys[:0], poss[:0]
		return nil
	}
	// Bucket-by-bucket streaming keeps each bucket's ascending position order
	// contiguous in the file; the load rebuilds buckets in file order, so the
	// rehydrated table probes identically.
	for _, tbl := range rt.tables {
		for k, ps := range tbl {
			for _, pos := range ps {
				keys = append(keys, k)
				poss = append(poss, pos)
				if len(keys) == encoding.PlainBlockCap {
					if err := flush(); err != nil {
						return fail(err)
					}
				}
			}
		}
	}
	if err := flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", 0, err
	}
	return path, written, nil
}

// LoadDemoted rehydrates a demoted build into a normal in-memory
// PartitionedTable: hash entries from the file, payload re-windowed (or
// re-decompressed) from the stored columns per the original strategy.
func LoadDemoted(path string, payloadCols []*storage.Column, payload []string) (*PartitionedTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, encoding.BlockSize)
	if err := faults.Check("cache.rehydrate"); err != nil {
		return nil, fmt.Errorf("cache.rehydrate: %w", err)
	}
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("demoted meta: %w", err)
	}
	mb, err := encoding.DecodePlainBlock(buf)
	if err != nil {
		return nil, fmt.Errorf("demoted meta: %w", err)
	}
	if len(mb.Vals) != 10 || mb.Vals[0] != demotedMagic {
		return nil, fmt.Errorf("demoted meta: bad header")
	}
	strat := RightStrategy(mb.Vals[1])
	tuples, p := mb.Vals[2], int(mb.Vals[3])
	chunkSize, npayload, entryCount := mb.Vals[4], int(mb.Vals[5]), mb.Vals[6]
	if npayload != len(payloadCols) {
		return nil, fmt.Errorf("demoted build: %d payload cols on disk, %d supplied", npayload, len(payloadCols))
	}
	entries, err := readEntryFrames(f, "cache.rehydrate")
	if err != nil {
		return nil, err
	}
	if int64(len(entries)) != entryCount {
		return nil, fmt.Errorf("demoted build: %d entries, want %d", len(entries), entryCount)
	}
	rt := &PartitionedTable{
		strategy:     strat,
		payload:      payload,
		mask:         uint64(p - 1),
		tables:       make([]map[int64][]int64, p),
		chunkSize:    chunkSize,
		cols:         payloadCols,
		Tuples:       tuples,
		Partitions:   p,
		BuildTuples:  mb.Vals[7],
		BuildWorkers: int(mb.Vals[8]),
		BuildMorsels: int(mb.Vals[9]),
	}
	for i := range rt.tables {
		rt.tables[i] = map[int64][]int64{}
	}
	// File order is bucket-contiguous with ascending positions inside each
	// bucket, so appending in file order rebuilds identical bucket lists.
	for _, e := range entries {
		pt := HashKey(e.key) & rt.mask
		rt.tables[pt][e.key] = append(rt.tables[pt][e.key], e.pos)
	}
	numChunks := (tuples + chunkSize - 1) / chunkSize
	switch strat {
	case RightMaterialized:
		rt.dense = make([][]int64, len(payloadCols))
		for c := range payloadCols {
			rt.dense[c] = make([]int64, tuples)
			ch := datasource.NewChunker(payloadCols[c].Extent(), chunkSize)
			for ci := 0; ci < ch.NumChunks(); ci++ {
				r := ch.Chunk(ci)
				pm, err := payloadCols[c].Window(r)
				if err != nil {
					return nil, err
				}
				pm.Decompress(rt.dense[c][r.Start:r.Start:r.End])
			}
		}
	case RightMultiColumn:
		rt.chunks = make([][]encoding.MiniColumn, numChunks)
		ch := datasource.NewChunker(payloadCols[0].Extent(), chunkSize)
		for ci := 0; ci < ch.NumChunks(); ci++ {
			r := ch.Chunk(ci)
			minis := make([]encoding.MiniColumn, len(payloadCols))
			for c := range payloadCols {
				if minis[c], err = payloadCols[c].Window(r); err != nil {
					return nil, err
				}
			}
			rt.chunks[r.Start/chunkSize] = minis
		}
	}
	rt.SizeBytes = rt.memBytes()
	return rt, nil
}
