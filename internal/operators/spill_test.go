package operators

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/faults"
	"matstore/internal/storage"
)

// spillFixture builds a right projection big enough to span many chunks and
// spill frames: 3000 rows, keys 0..299 (each repeated 10x), val = 1000+i.
func spillFixture(t *testing.T) *storage.Projection {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "right")
	w, err := storage.NewProjectionWriter(dir, "right", nil, []storage.ColumnSpec{
		{Name: "k", Encoding: encoding.Plain},
		{Name: "val", Encoding: encoding.Plain},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := w.AppendRow(int64(i%300), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := storage.OpenProjection(dir, buffer.New(0))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func spillCols(t *testing.T, p *storage.Projection) (key, val *storage.Column) {
	t.Helper()
	key, err := p.Column("k")
	if err != nil {
		t.Fatal(err)
	}
	val, err = p.Column("val")
	if err != nil {
		t.Fatal(err)
	}
	return key, val
}

func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, SpillFilePrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestSpillBuildMatchesInMemory pins the Grace build against the in-memory
// reference at every budget: resident partitions probe identically, and
// spilled partitions, loaded back partition-at-a-time, hold exactly the
// reference's ascending bucket lists.
func TestSpillBuildMatchesInMemory(t *testing.T) {
	right := spillFixture(t)
	keyCol, valCol := spillCols(t, right)
	const chunkSize = 64
	ref, err := BuildPartitioned(keyCol, []*storage.Column{valCol}, []string{"val"}, RightSingleColumn, chunkSize, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 1, ref.SizeBytes / 2, ref.SizeBytes * 100} {
		dir := t.TempDir()
		cfg := SpillConfig{BudgetBytes: budget, EstBytes: ref.SizeBytes, Dir: dir}
		rt, err := BuildPartitionedSpill(context.Background(), keyCol, []*storage.Column{valCol}, []string{"val"}, RightSingleColumn, chunkSize, 4, 8, cfg)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !rt.DeferredPayload() {
			t.Fatal("spill build must defer payload")
		}
		if rt.SpilledParts != rt.Partitions-rt.ResidentPartitions() {
			t.Fatalf("SpilledParts = %d, resident %d of %d", rt.SpilledParts, rt.ResidentPartitions(), rt.Partitions)
		}
		spilledTables := map[int]map[int64][]int64{}
		for pt := rt.ResidentPartitions(); pt < rt.Partitions; pt++ {
			tbl, err := rt.LoadSpilledPartition(pt)
			if err != nil {
				t.Fatalf("budget %d: load partition %d: %v", budget, pt, err)
			}
			spilledTables[pt] = tbl
		}
		for k := int64(-5); k < 320; k++ {
			want := ref.Probe(k)
			var got []int64
			if pt := rt.KeyPartition(k); rt.SpilledPartition(pt) {
				got = spilledTables[pt][k]
			} else {
				got = rt.Probe(k)
			}
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("budget %d: key %d: got %v, want %v", budget, k, got, want)
			}
		}
		if budget == 0 && rt.SpillBytes == 0 {
			t.Fatal("zero budget should have spilled bytes")
		}
		rt.ReleaseSpill()
		rt.ReleaseSpill() // idempotent
		if files := spillFiles(t, dir); len(files) != 0 {
			t.Fatalf("budget %d: leaked spill files %v", budget, files)
		}
	}
}

// TestSpillBuildFaults arms each disk failpoint and checks the build fails
// cleanly: a propagated error and zero temp files left behind.
func TestSpillBuildFaults(t *testing.T) {
	right := spillFixture(t)
	keyCol, valCol := spillCols(t, right)
	for _, site := range []string{"spill.create", "spill.write"} {
		for _, mode := range []faults.Mode{faults.Error, faults.ShortWrite} {
			faults.Reset()
			faults.Enable(site, faults.Failpoint{Mode: mode})
			dir := t.TempDir()
			cfg := SpillConfig{BudgetBytes: 1, EstBytes: 1 << 20, Dir: dir}
			_, err := BuildPartitionedSpill(context.Background(), keyCol, []*storage.Column{valCol}, []string{"val"}, RightSingleColumn, 64, 2, 8, cfg)
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("%s/%v: err = %v, want injected", site, mode, err)
			}
			if files := spillFiles(t, dir); len(files) != 0 {
				t.Fatalf("%s/%v: leaked %v", site, mode, files)
			}
		}
	}
	faults.Reset()

	// Cancellation mid-build: also no leaked files.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	_, err := BuildPartitionedSpill(ctx, keyCol, []*storage.Column{valCol}, nil, RightSingleColumn, 64, 2, 8,
		SpillConfig{BudgetBytes: 1, EstBytes: 1 << 20, Dir: dir})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: %v", err)
	}
	if files := spillFiles(t, dir); len(files) != 0 {
		t.Fatalf("cancelled build leaked %v", files)
	}
}

// TestSpillReadFault arms the probe-side read failpoint: the load errors and
// the files are still released cleanly.
func TestSpillReadFault(t *testing.T) {
	right := spillFixture(t)
	keyCol, valCol := spillCols(t, right)
	dir := t.TempDir()
	rt, err := BuildPartitionedSpill(context.Background(), keyCol, []*storage.Column{valCol}, []string{"val"}, RightSingleColumn, 64, 2, 8,
		SpillConfig{BudgetBytes: 1, EstBytes: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	faults.Reset()
	faults.Enable("spill.read", faults.Failpoint{Mode: faults.Error})
	if _, err := rt.LoadSpilledPartition(rt.Partitions - 1); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("load under read fault: %v", err)
	}
	faults.Reset()
	rt.ReleaseSpill()
	if files := spillFiles(t, dir); len(files) != 0 {
		t.Fatalf("leaked %v", files)
	}
}

// TestDemotedRoundTrip writes an in-memory build to the demoted on-disk form
// and rehydrates it: probes and payload values must match for every strategy.
func TestDemotedRoundTrip(t *testing.T) {
	right := spillFixture(t)
	keyCol, valCol := spillCols(t, right)
	const chunkSize = 64
	cols, payload := []*storage.Column{valCol}, []string{"val"}
	for _, rs := range []RightStrategy{RightMaterialized, RightMultiColumn, RightSingleColumn} {
		ref, err := BuildPartitioned(keyCol, cols, payload, rs, chunkSize, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		path, bytes, err := WriteDemoted(ref, dir)
		if err != nil {
			t.Fatalf("%v: demote: %v", rs, err)
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() != bytes {
			t.Fatalf("%v: demoted file %v size %v, want %d", rs, err, fi, bytes)
		}
		rt, err := LoadDemoted(path, cols, payload)
		if err != nil {
			t.Fatalf("%v: rehydrate: %v", rs, err)
		}
		if rt.Strategy() != rs || rt.Tuples != ref.Tuples || rt.Partitions != ref.Partitions {
			t.Fatalf("%v: rehydrated shape %v/%d/%d", rs, rt.Strategy(), rt.Tuples, rt.Partitions)
		}
		for k := int64(-5); k < 320; k++ {
			got, want := rt.Probe(k), ref.Probe(k)
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("%v: Probe(%d) = %v, want %v", rs, k, got, want)
			}
			for _, rpos := range got {
				switch rs {
				case RightMaterialized:
					if rt.DenseValue(0, rpos) != ref.DenseValue(0, rpos) {
						t.Fatalf("%v: dense value mismatch at %d", rs, rpos)
					}
				case RightMultiColumn:
					if rt.PayloadMinis(rpos)[0].ValueAt(rpos) != ref.PayloadMinis(rpos)[0].ValueAt(rpos) {
						t.Fatalf("%v: mini value mismatch at %d", rs, rpos)
					}
				}
			}
		}
	}
}

// TestDemoteFaults: a demote-write fault leaves no file; a rehydrate fault
// propagates.
func TestDemoteFaults(t *testing.T) {
	right := spillFixture(t)
	keyCol, valCol := spillCols(t, right)
	ref, err := BuildPartitioned(keyCol, []*storage.Column{valCol}, []string{"val"}, RightSingleColumn, 64, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	faults.Reset()
	defer faults.Reset()
	faults.Enable("cache.demote", faults.Failpoint{Mode: faults.ShortWrite})
	dir := t.TempDir()
	if _, _, err := WriteDemoted(ref, dir); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("demote under fault: %v", err)
	}
	if files := spillFiles(t, dir); len(files) != 0 {
		t.Fatalf("failed demote leaked %v", files)
	}
	faults.Reset()
	path, _, err := WriteDemoted(ref, dir)
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable("cache.rehydrate", faults.Failpoint{Mode: faults.Error})
	if _, err := LoadDemoted(path, []*storage.Column{valCol}, []string{"val"}); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("rehydrate under fault: %v", err)
	}
}

// TestBuildCacheDemotion: an evicted build is demoted to disk and the next
// lookup of its key rehydrates it (a hit, no rebuild); Invalidate removes
// demoted files too.
func TestBuildCacheDemotion(t *testing.T) {
	right := spillFixture(t)
	keyCol, valCol := spillCols(t, right)
	cols, payload := []*storage.Column{valCol}, []string{"val"}
	build := func() (*PartitionedTable, error) {
		return BuildPartitioned(keyCol, cols, payload, RightSingleColumn, 64, 2, 4)
	}
	probeOne, err := build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c := NewBuildCache(probeOne.SizeBytes + probeOne.SizeBytes/2) // room for one
	c.EnableDemotion(dir, 0)
	keyA := BuildKey{Proj: "right", KeyCol: "k", Payload: "val", Strategy: RightSingleColumn, Partitions: 4, ChunkSize: 64}
	keyB := keyA
	keyB.Partitions = 8
	builds := 0
	counted := func() (*PartitionedTable, error) { builds++; return build() }
	if _, hit, err := c.GetOrBuild(keyA, counted); err != nil || hit {
		t.Fatalf("first build: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.GetOrBuild(keyB, counted); err != nil || hit {
		t.Fatalf("second build: hit=%v err=%v", hit, err)
	}
	st := c.Stats()
	if st.Demotions != 1 || st.DemotedEntries != 1 {
		t.Fatalf("after eviction: %+v", st)
	}
	if files := spillFiles(t, dir); len(files) != 1 {
		t.Fatalf("demoted files = %v", files)
	}
	rt, hit, err := c.GetOrBuild(keyA, counted)
	if err != nil || !hit {
		t.Fatalf("rehydrate lookup: hit=%v err=%v", hit, err)
	}
	if builds != 2 {
		t.Fatalf("rehydration rebuilt: %d builds", builds)
	}
	if got, want := rt.Probe(7), probeOne.Probe(7); !reflect.DeepEqual(got, want) {
		t.Fatalf("rehydrated probe = %v, want %v", got, want)
	}
	// Rehydrating keyA re-inserted it, which evicted (and demoted) keyB: the
	// demoted tier holds keyB now.
	st = c.Stats()
	if st.DemotedHits != 1 || st.DemotedEntries != 1 || st.Demotions != 2 {
		t.Fatalf("after rehydrate: %+v", st)
	}
	c.Invalidate("right")
	if files := spillFiles(t, dir); len(files) != 0 {
		t.Fatalf("invalidate left demoted files %v", files)
	}
	if st := c.Stats(); st.DemotedEntries != 0 || st.DemotedBytes != 0 {
		t.Fatalf("after invalidate: %+v", st)
	}
}

// TestSweepSpillDir plants orphaned spill files (a crashed process's
// leftovers) and checks the startup sweep removes exactly them.
func TestSweepSpillDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{SpillFilePrefix + "part-123.tmp", SpillFilePrefix + "demote-9.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "not-a-spill-file")
	if err := os.WriteFile(keep, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := SweepSpillDir(dir)
	if err != nil || n != 2 {
		t.Fatalf("sweep = %d, %v; want 2", n, err)
	}
	if files := spillFiles(t, dir); len(files) != 0 {
		t.Fatalf("sweep left %v", files)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("sweep removed a non-spill file")
	}
	if n, err := SweepSpillDir(filepath.Join(dir, "missing")); n != 0 || err != nil {
		t.Fatalf("missing dir sweep = %d, %v", n, err)
	}
}
