package plan

import (
	"context"
	"strings"
	"time"

	"matstore/internal/datasource"
	"matstore/internal/multicol"
	"matstore/internal/operators"
	"matstore/internal/positions"
	"matstore/internal/rows"
	"matstore/internal/storage"
)

// This file is the join half of the generic morsel executor: the blocking
// build-barrier phase that radix-partitions the inner table before any probe
// morsel starts, the streaming probe interpreter that runs inside the same
// morsel loop as every other plan shape, and the deferred right-payload
// post-pass of the single-column strategy. The probe side is fully batched:
// outer keys and outer payload values are gathered per chunk through the
// multi-column's retained mini-columns or the block-pinned
// storage.Column.GatherAt path — never a per-row ValueAt — and joined rows
// are emitted column-wise.

// runJoinBuild executes the plan's build-barrier phase: the inner table is
// scanned morsel-parallel into radix partitions and one hash table is built
// per partition, all through the same exec scheduler the probe morsels use.
// Nothing streams until the build completes. The returned table flows
// through the run explicitly (node state is only a ReuseBuild cache behind
// the plan's build mutex), so concurrent Run calls on a shared plan each
// probe the table their own build phase produced.
func (p *Plan) runJoinBuild(ctx context.Context, build *Node, workers int, stats *RunStats, observe bool, spill *operators.SpillConfig) (*operators.PartitionedTable, error) {
	if spill != nil {
		// Grace spill mode: a budget-bounded, run-private build. It bypasses
		// both the node's ReuseBuild slot and the shared build cache — the
		// table owns temp files whose lifetime is exactly this run, and
		// sharing them would race concurrent probes against file removal.
		start := obsStart(observe)
		rt, err := operators.BuildPartitionedSpill(ctx,
			build.Column, build.RightCols, build.RightPayload,
			build.RightStrategy, p.Spec.ChunkSize, workers, build.Partitions, *spill)
		if err != nil {
			return nil, err
		}
		if observe {
			build.Obs.add(rt.Tuples, time.Since(start).Nanoseconds())
			// Retain for the EXPLAIN renderer only: the reuse fast path below
			// skips Spilled() tables, whose temp files die with this run.
			p.buildMu.Lock()
			build.built = rt
			p.buildMu.Unlock()
		}
		stats.Join.RightBuildTuples = rt.BuildTuples
		stats.Join.Partitions = rt.Partitions
		stats.Join.BuildWorkers = rt.BuildWorkers
		stats.Join.BuildMorsels = rt.BuildMorsels
		stats.Join.Spilled = true
		stats.Join.SpilledParts = rt.SpilledParts
		stats.Join.SpillBytes = rt.SpillBytes
		stats.Join.SpillWriteNanos = rt.SpillWriteNanos
		return rt, nil
	}
	p.buildMu.Lock()
	rt := build.built
	cached := rt != nil && p.ReuseBuild && !rt.Spilled()
	if !cached {
		start := obsStart(observe)
		buildFn := func() (*operators.PartitionedTable, error) {
			return operators.BuildPartitioned(
				build.Column, build.RightCols, build.RightPayload,
				build.RightStrategy, p.Spec.ChunkSize, workers, build.Partitions)
		}
		var err error
		if p.Builds != nil {
			// Shared retained-build path: the cache either hands back a table
			// another query already built (no inner-table scan at all) or
			// builds one and retains it for the next query.
			rt, cached, err = p.Builds.GetOrBuild(p.buildKey(build), buildFn)
		} else {
			rt, err = buildFn()
		}
		if err != nil {
			p.buildMu.Unlock()
			return nil, err
		}
		// Retain the table on the node only for the readers that need it —
		// the ReuseBuild fast path above and the EXPLAIN renderer (observe).
		// Unconditional retention would pin one hash side per plan held by
		// the service plan cache, outside the build cache's byte budget.
		if p.ReuseBuild || observe {
			build.built = rt
		}
		if observe {
			build.Obs.add(rt.Tuples, time.Since(start).Nanoseconds())
		}
	}
	p.buildMu.Unlock()
	stats.Join.RightBuildTuples = rt.BuildTuples
	stats.Join.Partitions = rt.Partitions
	stats.Join.BuildWorkers = rt.BuildWorkers
	stats.Join.BuildMorsels = rt.BuildMorsels
	stats.Join.BuildCacheHit = cached
	return rt, nil
}

// buildKey derives the shared-cache identity of a JOINBUILD node: everything
// the built table's contents depend on. The partition override (not the
// resolved count) keys the entry — results are byte-identical at every
// partition count, so a build produced under one worker count serves all.
func (p *Plan) buildKey(build *Node) operators.BuildKey {
	return operators.BuildKey{
		Proj:       build.Proj,
		KeyCol:     build.Col,
		Payload:    strings.Join(build.RightPayload, ","),
		Strategy:   build.RightStrategy,
		Partitions: build.Partitions,
		ChunkSize:  p.Spec.ChunkSize,
	}
}

// runJoinProbeMorsel interprets one outer-table morsel of a join tree: the
// position subtree (DS1 on the outer key, or ALLPOS) yields each chunk's
// surviving positions; probe keys and outer payload values are gathered
// batched at those positions; each key routes to its radix partition's hash
// table; and matches emit column-wise into the morsel's partial result. For
// the single-column strategy, matched right positions accumulate in
// pt.pending (aligned with result rows) for the post-merge deferred fetch.
func (p *Plan) runJoinProbeMorsel(r positions.Range, pt *partial, rt *operators.PartitionedTable, observe bool) error {
	probe := p.Root.Children[0]
	posNode := probe.Children[0]
	pt.res = rows.NewResult(p.Spec.OutNames...)
	base := len(probe.LeftCols)
	payload := rt.Payload()

	st := &morselState{}
	ch := datasource.NewChunker(r, p.Spec.ChunkSize)
	var keyBuf []int64
	leftBufs := make([][]int64, base)
	var matchIdx []int32
	var matchPos []int64
	for ci := 0; ci < ch.NumChunks(); ci++ {
		cr := ch.Chunk(ci)
		mc := multicol.New(cr)
		desc, skipped, err := p.evalPositions(posNode, cr, mc, pt, st, observe)
		if err != nil {
			return err
		}
		if skipped || desc == nil || desc.Count() == 0 {
			continue
		}
		pt.matched = append(pt.matched, desc)

		// Batched key gather: from the scan's retained mini-column when the
		// multi-column covers it, else the block-pinned gather.
		start := obsStart(observe)
		if keyBuf, err = p.gatherAt(mc, probe.Col, probe.Column, desc, keyBuf[:0]); err != nil {
			return err
		}
		// Batched outer payload gather at the same surviving positions.
		for c, col := range probe.LeftCols {
			if leftBufs[c], err = p.gatherAt(mc, probe.OutCols[c], col, desc, leftBufs[c][:0]); err != nil {
				return err
			}
		}

		// Probe: route each key to its partition; collect (chunk-local key
		// index, right position) match pairs. In spill mode, keys landing in
		// a spilled partition are recorded as deferred probes with the rows
		// emitted so far as their insertion anchor — pass B resolves them
		// partition-at-a-time and re-interleaves, reproducing this loop's
		// output order exactly.
		matchIdx, matchPos = matchIdx[:0], matchPos[:0]
		if rt.DeferredPayload() {
			if pt.spillLeft == nil {
				pt.spillLeft = make([][]int64, base)
			}
			emitted := int64(pt.res.NumRows())
			for i, k := range keyBuf {
				if sp := rt.KeyPartition(k); rt.SpilledPartition(sp) {
					pt.spillAnchors = append(pt.spillAnchors, emitted+int64(len(matchIdx)))
					pt.spillKeys = append(pt.spillKeys, k)
					for c := range probe.LeftCols {
						pt.spillLeft[c] = append(pt.spillLeft[c], leftBufs[c][i])
					}
					continue
				}
				for _, rpos := range rt.Probe(k) {
					matchIdx = append(matchIdx, int32(i))
					matchPos = append(matchPos, rpos)
				}
			}
		} else {
			for i, k := range keyBuf {
				for _, rpos := range rt.Probe(k) {
					matchIdx = append(matchIdx, int32(i))
					matchPos = append(matchPos, rpos)
				}
			}
		}
		pt.stats.Join.LeftProbes += int64(len(keyBuf))
		if len(matchIdx) == 0 {
			if observe {
				probe.Obs.add(0, time.Since(start).Nanoseconds())
			}
			continue
		}

		// Column-wise emission: outer payload by match index, inner payload
		// per strategy (dense array, retained compressed minis, or zeros
		// awaiting the deferred batched fetch).
		for c := range probe.LeftCols {
			col, vals := pt.res.Cols[c], leftBufs[c]
			for _, i := range matchIdx {
				col = append(col, vals[i])
			}
			pt.res.Cols[c] = col
		}
		switch {
		case rt.DeferredPayload():
			// Spill mode defers ALL right payload to the stored columns (the
			// on-disk spill carries only hash entries): zeros now, one batched
			// fetch over the merged pending list after pass B.
			for c := range payload {
				col := pt.res.Cols[base+c]
				for range matchPos {
					col = append(col, 0)
				}
				pt.res.Cols[base+c] = col
			}
			pt.pending = append(pt.pending, matchPos...)
		case rt.Strategy() == operators.RightMaterialized:
			for c := range payload {
				col := pt.res.Cols[base+c]
				for _, rpos := range matchPos {
					col = append(col, rt.DenseValue(c, rpos))
				}
				pt.res.Cols[base+c] = col
			}
		case rt.Strategy() == operators.RightMultiColumn:
			for c := range payload {
				col := pt.res.Cols[base+c]
				for _, rpos := range matchPos {
					col = append(col, rt.PayloadMinis(rpos)[c].ValueAt(rpos))
				}
				pt.res.Cols[base+c] = col
			}
		default:
			for c := range payload {
				col := pt.res.Cols[base+c]
				for range matchPos {
					col = append(col, 0) // filled by the deferred post-pass
				}
				pt.res.Cols[base+c] = col
			}
			pt.pending = append(pt.pending, matchPos...)
		}
		pt.stats.Join.OutputTuples += int64(len(matchIdx))
		if observe {
			probe.Obs.add(int64(len(matchIdx)), time.Since(start).Nanoseconds())
		}
	}
	return nil
}

// gatherAt extracts a column's values at the surviving positions of one
// chunk: from the multi-column's retained mini when available (zero
// re-access), otherwise through the batched block-pinned gather.
func (p *Plan) gatherAt(mc *multicol.MultiColumn, name string, col *storage.Column, desc positions.Set, dst []int64) ([]int64, error) {
	if mini, ok := mc.Mini(name); ok && !p.Spec.DisableMultiColumn {
		return datasource.DS3{}.ValuesFromMini(mini, desc, dst), nil
	}
	return datasource.DS3{Col: col}.ValuesGather(desc, dst)
}

// joinDeferredFetch is the single-column strategy's post-join positional
// fetch: right positions emerge from the probe in left order, so no merge
// join on position is possible (Section 4.3) — but the fetch is batched, one
// block-pinned GatherUnordered per payload column over the merged pending
// list, scattering values back into the already-emitted result rows.
func (p *Plan) joinDeferredFetch(probe *Node, rt *operators.PartitionedTable, res *rows.Result, pending []int64, stats *RunStats, observe bool) error {
	deferred := rt.Strategy() == operators.RightSingleColumn || rt.DeferredPayload()
	if !deferred || len(pending) == 0 {
		return nil
	}
	base := len(probe.LeftCols)
	start := obsStart(observe)
	var vals []int64
	for c := range rt.Payload() {
		var err error
		vals, err = rt.DeferredCol(c).GatherUnordered(pending, vals[:0])
		if err != nil {
			return err
		}
		copy(res.Cols[base+c], vals)
		stats.Join.DeferredFetches += int64(len(pending))
	}
	obsNanos(&probe.Obs, start, observe)
	return nil
}
