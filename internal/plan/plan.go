// Package plan defines the physical-plan layer: a small IR of operator
// nodes — the paper's data-source cases (DS1–DS4), the SPC leaf, position
// AND, DS3 value extraction, MERGE, tuple widening and aggregation — from
// which the four materialization strategies are composed as explicit node
// trees, plus one generic morsel-parallel executor that runs any such tree.
//
// The strategies of internal/core are plan *builders*: each assembles a
// different tree over the same node vocabulary (EM-pipelined chains DS2→DS4,
// EM-parallel plants an SPC leaf, LM-parallel ANDs DS1 scans, LM-pipelined
// chains DS1→DS3+pred), and the executor here interprets whichever shape it
// is handed, chunk-at-a-time inside chunk-aligned morsels. This is the
// plan/kernel separation of MorphStore and Rozenberg's column-store model:
// the tree states WHAT is composed, the compiled kernels underneath
// (internal/pred, internal/kernels) do the work.
//
// Every node carries two annotation slots: the analytical model's predicted
// cost (filled by internal/model's AnnotatePlan) and observed execution
// counters (filled when a plan runs with observation enabled), which is what
// DB.Explain renders side by side.
package plan

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"matstore/internal/operators"
	"matstore/internal/pred"
	"matstore/internal/storage"
)

// Kind identifies a physical operator node.
type Kind uint8

const (
	// KindDS1 scans a column with a predicate conjunction, producing
	// positions (data-source case 1).
	KindDS1 Kind = iota
	// KindDS2 scans a column with a predicate conjunction, producing early
	// (position, value) tuples (case 2) — the EM-pipelined leaf.
	KindDS2
	// KindDS3 extracts a column's values at the surviving positions
	// (case 3); a Merge or Aggregate parent supplies the position input.
	KindDS3
	// KindDS4 jumps to the positions of early-materialized input tuples,
	// applies its predicates and widens the passing tuples (case 4).
	KindDS4
	// KindSPC is the scan-predicate-construct leaf of EM-parallel plans:
	// all columns scanned in lockstep, tuples constructed at the bottom.
	KindSPC
	// KindAND intersects its children's position sets (Section 3.3).
	KindAND
	// KindFilterAt narrows an incoming position set by predicates over one
	// column (the DS3+predicate step of pipelined LM plans).
	KindFilterAt
	// KindPosAll produces the chunk's full position range (no filters).
	KindPosAll
	// KindMerge is the n-ary MERGE tuple constructor over DS3 extractions.
	KindMerge
	// KindProject emits a tuple batch's output columns into the result.
	KindProject
	// KindAggregate folds its input (tuples or positions+columns) into
	// grouped aggregates.
	KindAggregate
	// KindJoinBuild is the blocking hash-build side of an equi-join: a
	// radix-partitioned, morsel-parallel scan of the inner key column into
	// per-partition hash tables, with the inner payload materialized per the
	// node's RightStrategy (Section 4.3). It runs in the plan's build-barrier
	// phase, before any probe morsel starts.
	KindJoinBuild
	// KindJoinProbe streams outer-table positions (Children[0]) against the
	// built hash side (Children[1]), gathering probe keys and outer payload
	// values batched per chunk and emitting joined tuples.
	KindJoinProbe
)

func (k Kind) String() string {
	switch k {
	case KindDS1:
		return "DS1"
	case KindDS2:
		return "DS2"
	case KindDS3:
		return "DS3"
	case KindDS4:
		return "DS4"
	case KindSPC:
		return "SPC"
	case KindAND:
		return "AND"
	case KindFilterAt:
		return "DS3+PRED"
	case KindPosAll:
		return "ALLPOS"
	case KindMerge:
		return "MERGE"
	case KindProject:
		return "PROJECT"
	case KindAggregate:
		return "AGG"
	case KindJoinBuild:
		return "JOINBUILD"
	case KindJoinProbe:
		return "JOINPROBE"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Cost is a modeled node cost in microseconds, CPU and I/O separately.
type Cost struct {
	CPU float64
	IO  float64
}

// Total returns CPU+IO.
func (c Cost) Total() float64 { return c.CPU + c.IO }

// Observed is a node's execution counters, accumulated across all chunks of
// all morsels (atomically — morsels run on concurrent workers).
type Observed struct {
	// Rows is the number of rows/positions/tuples the node produced.
	Rows atomic.Int64
	// Nanos is the node's own accumulated execution time (children's
	// evaluation excluded).
	Nanos atomic.Int64
	// Chunks is the number of chunk invocations.
	Chunks atomic.Int64
}

func (o *Observed) add(rows, nanos int64) {
	o.Rows.Add(rows)
	o.Nanos.Add(nanos)
	o.Chunks.Add(1)
}

// Node is one physical operator. The meaning of Children depends on Kind:
// Merge and Aggregate over positions take the position subtree as
// Children[0] (Merge's remaining children are its DS3 extractions); DS4,
// FilterAt, Project and tuple-domain Aggregate take their single input as
// Children[0]; AND takes its position inputs; leaves have none.
type Node struct {
	Kind     Kind
	Children []*Node

	// Col and Column name and resolve the column of scan/extract/widen
	// nodes.
	Col    string
	Column *storage.Column
	// Preds is the node's predicate conjunction as written in the query
	// (k>1 means a fused multi-predicate scan). execPreds is the simplified
	// form actually executed.
	Preds     []pred.Predicate
	execPreds []pred.Predicate

	// SPC leaf configuration.
	SPCNames   []string
	SPCColumns []*storage.Column
	SPCFilters []operators.IndexedPred
	SPCOutIdx  []int

	// OutCols are the emitted column names (Merge, Project).
	OutCols []string
	// GroupBy/AggCol/Agg configure an Aggregate node.
	GroupBy, AggCol string
	Agg             operators.AggFunc
	// MatColumns are the resolved Spec.MatCols handles of a
	// position-domain Aggregate node (which re-windows a mini-column when
	// the multi-column optimization is disabled or did not cover it).
	MatColumns []*storage.Column

	// Join-node configuration. A JoinBuild node names the inner key in Col
	// (Column resolves it) and carries the payload schema and materialization
	// strategy; Partitions overrides the radix partition count (0 derives the
	// next power of two of the worker count at run time). A JoinProbe node
	// names the outer key in Col and its outer payload in OutCols/LeftCols.
	// Proj names the inner projection a JoinBuild scans — the identity a
	// shared build cache keys on.
	Proj          string
	RightStrategy operators.RightStrategy
	RightPayload  []string
	RightCols     []*storage.Column
	Partitions    int
	// LeftCols are the probe node's resolved outer payload columns (aligned
	// with OutCols).
	LeftCols []*storage.Column
	// built caches the most recent build-barrier phase's partitioned hash
	// side (guarded by the owning Plan's buildMu): the ReuseBuild fast path
	// and the EXPLAIN renderer read it; execution itself threads the table
	// through the run, so concurrent Run calls never share it implicitly.
	built *operators.PartitionedTable

	// Modeled is the analytical model's cost prediction for this node
	// (valid when HasModel; set by model.AnnotatePlan).
	Modeled  Cost
	HasModel bool
	// Obs accumulates observed execution counters when the plan runs with
	// observation enabled.
	Obs Observed
}

// ExecPreds returns the simplified predicate conjunction the node executes
// (the pred.SimplifyConj form of Preds).
func (n *Node) ExecPreds() []pred.Predicate { return n.execPreds }

// Fused reports whether the node evaluates a fused multi-predicate
// conjunction (more than one predicate as written).
func (n *Node) Fused() bool { return len(n.Preds) > 1 }

// NewDS1 builds a DS1 position-scan leaf.
func NewDS1(col string, c *storage.Column, preds []pred.Predicate) *Node {
	return &Node{Kind: KindDS1, Col: col, Column: c, Preds: preds, execPreds: simplify(preds)}
}

// NewDS2 builds a DS2 early-materialization scan leaf.
func NewDS2(col string, c *storage.Column, preds []pred.Predicate) *Node {
	return &Node{Kind: KindDS2, Col: col, Column: c, Preds: preds, execPreds: simplify(preds)}
}

// NewDS3 builds a DS3 value-extraction node (positions supplied by the
// Merge/Aggregate parent).
func NewDS3(col string, c *storage.Column) *Node {
	return &Node{Kind: KindDS3, Col: col, Column: c}
}

// NewDS4 builds a DS4 widening node over a tuple-domain child. Empty preds
// widen unconditionally (a pure output column).
func NewDS4(col string, c *storage.Column, preds []pred.Predicate, child *Node) *Node {
	return &Node{Kind: KindDS4, Col: col, Column: c, Preds: preds, execPreds: simplify(preds), Children: []*Node{child}}
}

// NewSPC builds the scan-predicate-construct leaf.
func NewSPC(names []string, cols []*storage.Column, filters []operators.IndexedPred, outIdx []int) *Node {
	return &Node{Kind: KindSPC, SPCNames: names, SPCColumns: cols, SPCFilters: filters, SPCOutIdx: outIdx}
}

// NewAND builds a position-intersection node.
func NewAND(children ...*Node) *Node {
	return &Node{Kind: KindAND, Children: children}
}

// NewFilterAt builds a DS3+predicate position-narrowing node.
func NewFilterAt(col string, c *storage.Column, preds []pred.Predicate, child *Node) *Node {
	return &Node{Kind: KindFilterAt, Col: col, Column: c, Preds: preds, execPreds: simplify(preds), Children: []*Node{child}}
}

// NewPosAll builds the filterless full-range position source.
func NewPosAll() *Node { return &Node{Kind: KindPosAll} }

// NewMerge builds the MERGE tuple constructor: pos is the position subtree,
// extracts the DS3 children (one per output column, aligned with outCols).
func NewMerge(pos *Node, extracts []*Node, outCols []string) *Node {
	return &Node{Kind: KindMerge, Children: append([]*Node{pos}, extracts...), OutCols: outCols}
}

// NewProject builds the result-emission root over a tuple-domain child.
func NewProject(child *Node, outCols []string) *Node {
	return &Node{Kind: KindProject, Children: []*Node{child}, OutCols: outCols}
}

// NewAggregate builds an aggregation root. The child is either a tuple
// subtree (EM) or a position subtree (LM, aggregating directly on
// compressed mini-columns).
func NewAggregate(child *Node, groupBy, aggCol string, fn operators.AggFunc) *Node {
	return &Node{Kind: KindAggregate, Children: []*Node{child}, GroupBy: groupBy, AggCol: aggCol, Agg: fn}
}

// NewJoinBuild builds the blocking inner-side hash-build node. partitions
// overrides the radix partition count (0 = next power of two of the run's
// worker count).
func NewJoinBuild(keyCol string, key *storage.Column, payload []string, payloadCols []*storage.Column, rs operators.RightStrategy, partitions int) *Node {
	return &Node{
		Kind: KindJoinBuild, Col: keyCol, Column: key,
		RightPayload: payload, RightCols: payloadCols,
		RightStrategy: rs, Partitions: partitions,
	}
}

// NewJoinProbe builds the streaming probe node: pos is the outer-table
// position subtree (a DS1 scan of the outer key, or ALLPOS when the join
// carries no outer predicate), build the JoinBuild node it probes into.
// leftOut/leftCols are the outer payload columns emitted per match.
func NewJoinProbe(keyCol string, key *storage.Column, leftOut []string, leftCols []*storage.Column, pos, build *Node) *Node {
	return &Node{
		Kind: KindJoinProbe, Col: keyCol, Column: key,
		OutCols: leftOut, LeftCols: leftCols,
		Children: []*Node{pos, build},
	}
}

func simplify(ps []pred.Predicate) []pred.Predicate {
	if len(ps) == 0 {
		return nil
	}
	return pred.SimplifyConj(ps)
}

// PositionsDomain reports whether the node produces a position set.
func (n *Node) PositionsDomain() bool {
	switch n.Kind {
	case KindDS1, KindAND, KindFilterAt, KindPosAll:
		return true
	}
	return false
}

// Walk visits n and every descendant in depth-first order.
func Walk(n *Node, fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// label renders the node's operator description (without annotations).
func (n *Node) label() string {
	preds := func() string {
		if len(n.Preds) == 0 {
			return ""
		}
		parts := make([]string, len(n.Preds))
		for i, p := range n.Preds {
			parts[i] = n.Col + " " + p.String()
		}
		s := " (" + strings.Join(parts, " AND ") + ")"
		if n.Fused() {
			s += fmt.Sprintf(" [fused x%d]", len(n.Preds))
		}
		return s
	}
	switch n.Kind {
	case KindDS1:
		return "DS1 scan " + n.Col + preds()
	case KindDS2:
		return "DS2 scan " + n.Col + preds()
	case KindDS3:
		return "DS3 extract " + n.Col
	case KindDS4:
		if len(n.Preds) == 0 {
			return "DS4 widen " + n.Col
		}
		return "DS4 widen+filter " + n.Col + preds()
	case KindSPC:
		var fs []string
		for _, f := range n.SPCFilters {
			fs = append(fs, n.SPCNames[f.Col]+" "+f.Pred.String())
		}
		s := "SPC scan (" + strings.Join(n.SPCNames, ", ") + ")"
		if len(fs) > 0 {
			s += " where " + strings.Join(fs, " AND ")
		}
		return s
	case KindAND:
		return fmt.Sprintf("AND (%d position lists)", len(n.Children))
	case KindFilterAt:
		return "DS3+pred filter " + n.Col + preds()
	case KindPosAll:
		return "ALL positions"
	case KindMerge:
		return "MERGE out=(" + strings.Join(n.OutCols, ", ") + ")"
	case KindProject:
		return "PROJECT (" + strings.Join(n.OutCols, ", ") + ")"
	case KindAggregate:
		return fmt.Sprintf("AGG %v(%s) group by %s", n.Agg, n.AggCol, n.GroupBy)
	case KindJoinBuild:
		return fmt.Sprintf("JOINBUILD %s [radix, %s] payload=(%s)",
			n.Col, n.RightStrategy, strings.Join(n.RightPayload, ", "))
	case KindJoinProbe:
		return fmt.Sprintf("JOINPROBE %s = %s [batched gather]", n.Col, n.Children[1].Col)
	default:
		return n.Kind.String()
	}
}

// Spec carries the query-shape and executor configuration a plan needs at
// run time, resolved once at build time.
type Spec struct {
	// OutNames is the result schema.
	OutNames []string
	// Output lists the projected columns of a selection (EM emission order).
	Output []string
	// GroupBy/AggCol/Agg describe the aggregation; Aggregating gates them.
	GroupBy, AggCol string
	Agg             operators.AggFunc
	Aggregating     bool
	// MatCols are the columns materialized at the top of LM plans.
	MatCols []string
	// Tuples is the projection's tuple count (the position-space extent).
	Tuples int64
	// ChunkSize is the horizontal-partition width in positions.
	ChunkSize int64
	// DisableMultiColumn / ForceBitmap / UseZoneIndex mirror core.Options.
	DisableMultiColumn bool
	ForceBitmap        bool
	UseZoneIndex       bool
}

// Plan is an executable physical plan: a node tree plus its run-time spec.
type Plan struct {
	// Label names the strategy that built the plan (display only).
	Label string
	Root  *Node
	Spec  Spec

	// ReuseBuild keeps a join plan's partitioned hash side across Run calls
	// instead of rebuilding it per run — the probe-isolation switch for
	// benchmarks; Builds generalizes it across plans.
	ReuseBuild bool

	// Builds, when set, routes the build-barrier phase through a shared
	// retained-build source (the service layer's keyed join-build cache), so
	// repeated joins over one inner table share a single partitioned hash
	// side across queries and sessions. The returned tables are read-only
	// after build, so sharing them between concurrent probes is safe.
	Builds BuildSource

	// observed records that the plan has run with observation enabled (so
	// Render shows observed counters).
	observed bool

	// skewBits carries the previous run's observed per-morsel selectivity
	// skew (float64 bits) into the next run's morsel sizing
	// (exec.AdaptiveMorselsPerWorker). Atomic so concurrent Run calls on a
	// shared plan stay race-free.
	skewBits atomic.Uint64
	// buildMu serializes the build-barrier phase's access to the JOINBUILD
	// node's cached hash side.
	buildMu sync.Mutex
}

// BuildSource provides shared retained join builds: GetOrBuild returns the
// table cached under key (hit=true) or builds, retains and returns a fresh
// one via build. Implementations must be safe for concurrent use; the
// canonical one is operators.BuildCache.
type BuildSource interface {
	GetOrBuild(key operators.BuildKey, build func() (*operators.PartitionedTable, error)) (*operators.PartitionedTable, bool, error)
}

// JoinProbe returns the plan's probe node, or nil when the plan is not a
// join tree (join plans are always PROJECT over JOINPROBE).
func (p *Plan) JoinProbe() *Node {
	if p.Root != nil && p.Root.Kind == KindProject &&
		len(p.Root.Children) == 1 && p.Root.Children[0].Kind == KindJoinProbe {
		return p.Root.Children[0]
	}
	return nil
}

// ObservedSkew returns the per-morsel selectivity skew (coefficient of
// variation of matched density) recorded by the plan's most recent parallel
// run, 0 before any observation.
func (p *Plan) ObservedSkew() float64 { return math.Float64frombits(p.skewBits.Load()) }
