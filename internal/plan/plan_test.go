package plan

import (
	"strings"
	"testing"

	"matstore/internal/pred"
)

func TestNodeLabelsAndWalk(t *testing.T) {
	ds1 := NewDS1("a", nil, []pred.Predicate{pred.AtLeast(1), pred.LessThan(9)})
	if !ds1.Fused() {
		t.Error("two-predicate DS1 should report fused")
	}
	// The executed conjunction is the simplified form: one interval.
	if got := ds1.ExecPreds(); len(got) != 1 || got[0] != pred.InRange(1, 9) {
		t.Errorf("ExecPreds = %v", got)
	}
	if !strings.Contains(ds1.label(), "[fused x2]") {
		t.Errorf("label = %q", ds1.label())
	}
	and := NewAND(ds1, NewDS1("b", nil, []pred.Predicate{pred.Equals(3)}))
	root := NewMerge(and, []*Node{NewDS3("a", nil), NewDS3("b", nil)}, []string{"a", "b"})
	var kinds []Kind
	Walk(root, func(n *Node) { kinds = append(kinds, n.Kind) })
	want := []Kind{KindMerge, KindAND, KindDS1, KindDS1, KindDS3, KindDS3}
	if len(kinds) != len(want) {
		t.Fatalf("walk visited %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("walk order %v, want %v", kinds, want)
		}
	}
	for _, n := range []*Node{ds1, and, root} {
		if n.PositionsDomain() != (n.Kind != KindMerge) {
			t.Errorf("%v PositionsDomain = %v", n.Kind, n.PositionsDomain())
		}
	}
}

func TestModeledTotalAndShape(t *testing.T) {
	ds1 := NewDS1("a", nil, []pred.Predicate{pred.LessThan(5)})
	ds1.Modeled = Cost{CPU: 10, IO: 2}
	ds1.HasModel = true
	root := NewMerge(ds1, []*Node{NewDS3("a", nil)}, []string{"a"})
	root.Modeled = Cost{CPU: 3}
	root.HasModel = true
	p := &Plan{Label: "test", Root: root, Spec: Spec{OutNames: []string{"a"}}}
	if got := p.ModeledTotal(); got.CPU != 13 || got.IO != 2 {
		t.Errorf("ModeledTotal = %+v", got)
	}
	shape := p.Shape()
	for _, wantLine := range []string{"test plan", "MERGE out=(a)", "├─ DS1 scan a (a < 5)", "└─ DS3 extract a"} {
		if !strings.Contains(shape, wantLine) {
			t.Errorf("shape missing %q:\n%s", wantLine, shape)
		}
	}
	if strings.Contains(shape, "model:") {
		t.Error("Shape must not include annotations")
	}
	if !strings.Contains(p.Render(), "model: cpu=10µs io=2µs") {
		t.Errorf("Render missing model annotation:\n%s", p.Render())
	}
}
