package plan

import (
	"fmt"
	"strings"
	"time"
)

// Render returns the plan as an indented node tree, one line per node, with
// the analytical model's per-node prediction and — after a Run with
// observation enabled — the observed per-node counters side by side. This
// is the payload of DB.Explain: when the model's ranking disagrees with
// reality, the node whose modeled and observed columns diverge is the
// culprit.
func (p *Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s plan\n", p.Label)
	p.renderNode(&b, p.Root, "", "", "")
	return b.String()
}

func (p *Plan) renderNode(b *strings.Builder, n *Node, selfPrefix, childPrefix, branch string) {
	line := selfPrefix + branch + n.label()
	pad := 46
	if len(line)+2 > pad {
		pad = len(line) + 2
	}
	fmt.Fprintf(b, "%-*s%s\n", pad, line, p.annotations(n))
	for i, c := range n.Children {
		last := i == len(n.Children)-1
		cb, cp := "├─ ", "│  "
		if last {
			cb, cp = "└─ ", "   "
		}
		p.renderNode(b, c, childPrefix, childPrefix+cp, cb)
	}
}

// annotations renders the modeled and observed columns for one node.
func (p *Plan) annotations(n *Node) string {
	var parts []string
	if n.HasModel {
		parts = append(parts, fmt.Sprintf("model: cpu=%.0fµs io=%.0fµs", n.Modeled.CPU, n.Modeled.IO))
	}
	if p.observed {
		obs := fmt.Sprintf("obs: rows=%d", n.Obs.Rows.Load())
		if ns := n.Obs.Nanos.Load(); ns > 0 {
			obs += fmt.Sprintf(" time=%v", time.Duration(ns).Round(time.Microsecond))
		}
		if ch := n.Obs.Chunks.Load(); ch > 0 {
			obs += fmt.Sprintf(" chunks=%d", ch)
		}
		if n.Kind == KindJoinBuild && n.built != nil {
			obs += fmt.Sprintf(" partitions=%d build_workers=%d", n.built.Partitions, n.built.BuildWorkers)
			if n.built.SpilledParts > 0 {
				obs += fmt.Sprintf(" spilled=%d/%d spill_bytes=%d",
					n.built.SpilledParts, n.built.Partitions, n.built.SpillBytes)
			}
		}
		parts = append(parts, obs)
	}
	if len(parts) == 0 {
		return ""
	}
	return "[" + strings.Join(parts, " | ") + "]"
}

// ModeledTotal sums the per-node modeled costs over the whole tree (valid
// for the annotated subset).
func (p *Plan) ModeledTotal() Cost {
	var total Cost
	Walk(p.Root, func(n *Node) {
		if n.HasModel {
			total.CPU += n.Modeled.CPU
			total.IO += n.Modeled.IO
		}
	})
	return total
}

// Shape returns the rendered tree without annotations — the stable golden
// form plan-builder tests pin.
func (p *Plan) Shape() string {
	saved := p.observed
	p.observed = false
	var b strings.Builder
	fmt.Fprintf(&b, "%s plan\n", p.Label)
	shapeNode(&b, p.Root, "", "")
	p.observed = saved
	return b.String()
}

func shapeNode(b *strings.Builder, n *Node, childPrefix, branch string) {
	b.WriteString(strings.TrimRight(branch+n.label(), " ") + "\n")
	for i, c := range n.Children {
		last := i == len(n.Children)-1
		cb, cp := childPrefix+"├─ ", childPrefix+"│  "
		if last {
			cb, cp = childPrefix+"└─ ", childPrefix+"   "
		}
		shapeNode(b, c, cp, cb)
	}
}
