package plan

import (
	"context"
	"fmt"
	"math"
	"time"

	"matstore/internal/datasource"
	"matstore/internal/encoding"
	"matstore/internal/exec"
	"matstore/internal/multicol"
	"matstore/internal/obs"
	"matstore/internal/operators"
	"matstore/internal/positions"
	"matstore/internal/rows"
)

// This file is the single generic morsel executor: it runs ANY plan tree —
// whichever of the four strategy shapes (or a future hybrid) the builder
// assembled — by interpreting the tree chunk-at-a-time inside chunk-aligned
// morsels. The per-strategy driver loops that used to live in
// internal/core/select_em.go and select_lm.go are replaced by three small
// interpreters keyed off the tree's domain: a position-domain walk (both LM
// strategies), a tuple-domain chain walk (EM-pipelined), and the SPC leaf
// (EM-parallel). Morsel scheduling, partial accumulation and the
// deterministic merge are shared by all of them.

// RunStats aggregates a plan execution's counters.
type RunStats struct {
	TuplesConstructed int64
	PositionsMatched  int64
	ChunksSkipped     int64
	Groups            int
	Workers           int
	Morsels           int
	// AggState is the run's final merged aggregator (aggregating plans
	// only). It holds the per-group mergeable statistics behind the emitted
	// result — the partial a shard exports so a scatter-gather coordinator
	// can absorb disjoint-range partials and re-emit.
	AggState *operators.Aggregator
	// Join carries the join-specific counters of a join tree (zero for
	// selection/aggregation plans).
	Join operators.JoinStats
}

// partial is one morsel's private execution state: an aggregator or a
// columnar result (never both), plus counter deltas. Partials merge in
// morsel order, which makes parallel output byte-identical to serial output.
type partial struct {
	agg     *operators.Aggregator
	res     *rows.Result
	matched []positions.Set
	// pending is a join probe's deferred right positions (single-column
	// strategy, and every strategy in spill mode), aligned with res rows;
	// partials concatenate in morsel order so pending[i] stays the right
	// position of result row i.
	pending []int64
	// Spill-mode deferred probes: keys that routed to a spilled partition.
	// spillAnchors[j] is the partial's emitted row count at the moment probe
	// j was seen — the insertion point that reproduces the in-memory output
	// order; spillLeft[c][j] is the probe's outer payload value for column c.
	spillAnchors []int64
	spillKeys    []int64
	spillLeft    [][]int64
	stats        RunStats
}

// init allocates the partial's accumulator for the spec's shape and returns
// both slots (one of them nil).
func (pt *partial) init(s Spec) (*operators.Aggregator, *rows.Result) {
	if s.Aggregating {
		pt.agg = operators.NewAggregator(s.Agg)
		return pt.agg, nil
	}
	pt.res = rows.NewResult(s.OutNames...)
	return nil, pt.res
}

// RunOptions parameterizes RunWith beyond the worker request: an optional
// context (checked between morsels, between spill chunks and between spilled
// partitions, so cancellation releases workers and temp files promptly), the
// EXPLAIN observation flag, and an optional Grace spill configuration for
// the join build (set by the service when the memory governor denies an
// in-memory reservation).
type RunOptions struct {
	Ctx     context.Context
	Observe bool
	// Spill forces the join build into budget-bounded spill mode. Spilled
	// results are byte-identical to in-memory execution; the temp files are
	// removed when the run returns, on every path.
	Spill *operators.SpillConfig
	// Trace is the parent span for this run's phase spans (join build,
	// morsel execution, merge, spill assembly) plus one synthetic span per
	// plan node from the Observed counters. Nil (the default) adds no spans
	// and no clock reads beyond Observe's. Callers that set Trace should
	// also set Observe, or the node spans will carry zero counters.
	Trace *obs.Span
}

// Run executes the plan morsel-parallel across the given worker request
// (0 = one worker per CPU, 1 = serial chunk-at-a-time) and merges the
// per-morsel partials deterministically. With observe set, every node
// accumulates observed rows/time counters for EXPLAIN.
//
// Join trees add a build-barrier phase: the JOINBUILD node's partitioned
// hash side is constructed (itself morsel-parallel) before the streaming
// probe morsels start, and the single-column strategy's deferred payload
// fetch runs batched after the merge.
func (p *Plan) Run(parallelism int, observe bool) (*rows.Result, RunStats, error) {
	return p.RunWith(parallelism, RunOptions{Observe: observe})
}

// RunWith is Run with a context and an optional spill configuration.
func (p *Plan) RunWith(parallelism int, opt RunOptions) (*rows.Result, RunStats, error) {
	ctx, observe := opt.Ctx, opt.Observe
	if ctx == nil {
		ctx = context.Background()
	}
	if observe {
		p.observed = true
	}
	var stats RunStats
	workers := exec.Resolve(parallelism)
	probe := p.JoinProbe()
	var built *operators.PartitionedTable
	if probe != nil {
		var err error
		bspan := opt.Trace.Child("join.build")
		if built, err = p.runJoinBuild(ctx, probe.Children[1], workers, &stats, observe, opt.Spill); err != nil {
			return nil, RunStats{}, err
		}
		bspan.SetAttr("build_tuples", stats.Join.RightBuildTuples)
		bspan.SetAttr("partitions", stats.Join.Partitions)
		if stats.Join.BuildCacheHit {
			bspan.SetAttr("build_cache_hit", true)
		}
		if stats.Join.Spilled {
			bspan.SetAttr("spilled_parts", stats.Join.SpilledParts)
			bspan.SetAttr("spill_bytes", stats.Join.SpillBytes)
			bspan.SetAttr("spill_write_ns", stats.Join.SpillWriteNanos)
		}
		bspan.End()
		// A spill-built table owns temp files; they are removed when the run
		// finishes, success or not (no-op for in-memory builds, which may be
		// shared through the build cache).
		defer built.ReleaseSpill()
	}
	extent := positions.Range{Start: 0, End: p.Spec.Tuples}
	// Morsel sizing adapts to the previous run's observed per-morsel
	// selectivity skew (first run: the static default carving).
	perWorker := exec.AdaptiveMorselsPerWorker(p.ObservedSkew())
	morsels := exec.MorselsN(extent, p.Spec.ChunkSize, workers, perWorker)
	parts := make([]*partial, len(morsels))
	mspan := opt.Trace.Child("morsels")
	mspan.SetAttr("parallel", true)
	mspan.SetAttr("workers", workers)
	mspan.SetAttr("morsels", len(morsels))
	err := exec.Run(workers, len(morsels), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		pt := &partial{}
		if err := p.runMorsel(morsels[i], pt, built, observe); err != nil {
			return err
		}
		parts[i] = pt
		return nil
	})
	if err != nil {
		return nil, RunStats{}, err
	}
	mspan.End()
	if len(parts) == 0 {
		// Empty projection: no morsels exist, so synthesize one empty
		// partial and let the merge produce a valid empty result.
		pt := &partial{}
		pt.init(p.Spec)
		parts = []*partial{pt}
	}
	p.updateSkew(morsels, parts)
	gspan := opt.Trace.Child("merge")
	res := mergePartials(p.Spec, parts, &stats)
	if probe != nil {
		var pending []int64
		if len(parts) == 1 {
			pending = parts[0].pending
		} else {
			for _, pt := range parts {
				pending = append(pending, pt.pending...)
			}
		}
		if built.DeferredPayload() {
			// Pass B of the Grace join: resolve the probes that routed to
			// spilled partitions, partition-at-a-time, and re-interleave their
			// matches at the recorded anchors.
			aspan := gspan.Child("spill.assemble")
			if res, pending, err = p.assembleSpillMatches(ctx, probe, built, res, parts, pending, &stats); err != nil {
				return nil, RunStats{}, err
			}
			aspan.End()
		}
		if err := p.joinDeferredFetch(probe, built, res, pending, &stats, observe); err != nil {
			return nil, RunStats{}, err
		}
	}
	gspan.End()
	if workers > len(morsels) {
		workers = len(morsels) // a worker without a morsel never runs
	}
	stats.Workers = workers
	stats.Morsels = len(morsels)
	stats.Join.Workers = stats.Workers
	stats.Join.Morsels = stats.Morsels
	if observe {
		// Root cardinality is only known after the merge.
		switch p.Root.Kind {
		case KindAggregate:
			p.Root.Obs.Rows.Store(int64(stats.Groups))
		default:
			p.Root.Obs.Rows.Store(int64(res.NumRows()))
		}
	}
	// Synthetic per-node spans from the final Observed counters (after the
	// merge and deferred fetch, which still add to them).
	attachNodeSpans(mspan, p.Root)
	return res, stats, nil
}

// updateSkew records the run's per-morsel selectivity skew — the
// coefficient of variation of matched-position density across morsels — for
// the next run's adaptive morsel sizing. Serial runs (one morsel) carry no
// skew signal and leave the previous observation in place.
func (p *Plan) updateSkew(morsels []positions.Range, parts []*partial) {
	if len(morsels) < 2 || len(parts) != len(morsels) {
		return
	}
	dens := make([]float64, len(parts))
	var mean float64
	for i, pt := range parts {
		matched := pt.stats.PositionsMatched
		for _, d := range pt.matched {
			matched += d.Count()
		}
		dens[i] = float64(matched) / float64(morsels[i].Len())
		mean += dens[i]
	}
	mean /= float64(len(dens))
	if mean <= 0 {
		p.skewBits.Store(math.Float64bits(0))
		return
	}
	var variance float64
	for _, d := range dens {
		variance += (d - mean) * (d - mean)
	}
	variance /= float64(len(dens))
	p.skewBits.Store(math.Float64bits(math.Sqrt(variance) / mean))
}

// mergePartials recombines per-morsel partials deterministically: aggregate
// states merge through the mergeable-state contract and emit sorted by key;
// row partials concatenate in morsel (block) order. A lone partial is
// adopted wholesale, so serial execution does no extra copying.
func mergePartials(s Spec, parts []*partial, stats *RunStats) *rows.Result {
	var matched []positions.Set
	for _, pt := range parts {
		stats.TuplesConstructed += pt.stats.TuplesConstructed
		stats.PositionsMatched += pt.stats.PositionsMatched
		stats.ChunksSkipped += pt.stats.ChunksSkipped
		stats.Join.LeftProbes += pt.stats.Join.LeftProbes
		stats.Join.OutputTuples += pt.stats.Join.OutputTuples
		matched = append(matched, pt.matched...)
	}
	if len(matched) > 0 {
		// Positions-domain merge: per-chunk descriptors, already in block
		// order across morsels, concatenate into the query's matched
		// position set; its cardinality is the PositionsMatched stat.
		stats.PositionsMatched += positions.Concat(matched...).Count()
	}
	if s.Aggregating {
		agg := parts[0].agg
		for _, pt := range parts[1:] {
			agg.Merge(pt.agg)
		}
		res := agg.Emit(s.OutNames[0], s.OutNames[1])
		stats.Groups = agg.Groups()
		stats.AggState = agg
		stats.TuplesConstructed += int64(res.NumRows())
		return res
	}
	res := parts[0].res
	for _, pt := range parts[1:] {
		if err := res.Append(pt.res); err != nil {
			// Partials are built from the same query schema; a mismatch is a
			// programming error, not a runtime condition.
			panic("plan: " + err.Error())
		}
	}
	return res
}

// runMorsel dispatches the morsel to the interpreter matching the tree's
// domain. built is the run's partitioned hash side (join trees only).
func (p *Plan) runMorsel(r positions.Range, pt *partial, built *operators.PartitionedTable, observe bool) error {
	root := p.Root
	if len(root.Children) == 0 {
		return fmt.Errorf("plan: root %v has no input", root.Kind)
	}
	child := root.Children[0]
	switch {
	case root.Kind == KindMerge, root.Kind == KindAggregate && child.PositionsDomain():
		return p.runPositionsMorsel(r, pt, observe)
	case child.Kind == KindJoinProbe:
		return p.runJoinProbeMorsel(r, pt, built, observe)
	case child.Kind == KindSPC:
		return p.runSPCMorsel(r, pt, observe)
	default:
		return p.runTupleMorsel(r, pt, observe)
	}
}

// morselState is per-morsel interpreter state shared across chunks: the
// adaptive FilterAt policies (one per narrowing node, fed by the previous
// chunk's candidate density) and the per-node compiled DS1 scans (fused
// conjunction kernels compile once per morsel, not per chunk).
type morselState struct {
	adaptive map[*Node]*encoding.AdaptiveFilterAt
	scans    map[*Node]*datasource.DS1
}

func (st *morselState) policy(n *Node) *encoding.AdaptiveFilterAt {
	if st.adaptive == nil {
		st.adaptive = make(map[*Node]*encoding.AdaptiveFilterAt)
	}
	pol, ok := st.adaptive[n]
	if !ok {
		pol = &encoding.AdaptiveFilterAt{}
		st.adaptive[n] = pol
	}
	return pol
}

// ds1 returns the morsel's compiled DS1 for a scan node.
func (st *morselState) ds1(n *Node, s Spec) *datasource.DS1 {
	if st.scans == nil {
		st.scans = make(map[*Node]*datasource.DS1)
	}
	ds, ok := st.scans[n]
	if !ok {
		ds = &datasource.DS1{
			Col: n.Column, Preds: n.execPreds,
			ForceBitmap:  s.ForceBitmap,
			UseZoneIndex: s.UseZoneIndex,
		}
		ds.CompilePreds()
		st.scans[n] = ds
	}
	return ds
}

// runPositionsMorsel interprets position-domain trees: both LM strategies.
// The position subtree (DS1 scans, AND, DS3+pred narrowing) produces each
// chunk's surviving descriptor; the Merge root extracts and merges values,
// the Aggregate root folds compressed mini-columns directly.
func (p *Plan) runPositionsMorsel(r positions.Range, pt *partial, observe bool) error {
	root := p.Root
	posNode := root.Children[0]
	var agg *operators.Aggregator
	var merger *operators.Merger
	var extracts []*Node
	if p.Spec.Aggregating {
		agg = operators.NewAggregator(p.Spec.Agg)
		pt.agg = agg
	} else {
		// The morsel's MERGE accumulates the partial's result (adopted as
		// pt.res below); per-morsel results concatenate in block order at
		// the top.
		merger = operators.NewMerger(p.Spec.OutNames...)
		extracts = root.Children[1:]
	}

	st := &morselState{}
	ch := datasource.NewChunker(r, p.Spec.ChunkSize)
	valBufs := make([][]int64, len(p.Spec.MatCols))
	for ci := 0; ci < ch.NumChunks(); ci++ {
		cr := ch.Chunk(ci)
		mc := multicol.New(cr)
		desc, skipped, err := p.evalPositions(posNode, cr, mc, pt, st, observe)
		if err != nil {
			return err
		}
		if skipped {
			continue
		}
		if desc == nil || desc.Count() == 0 {
			continue
		}
		mc.SetDescriptor(desc)
		pt.matched = append(pt.matched, desc)

		if p.Spec.Aggregating {
			// Aggregate directly on compressed data; no tuples constructed.
			// The aggregator consumes whole mini-columns, so a missing mini
			// is re-windowed rather than gathered.
			start := obsStart(observe)
			minis := make([]encoding.MiniColumn, len(p.Spec.MatCols))
			for i, name := range p.Spec.MatCols {
				mini, ok := mc.Mini(name)
				if !ok || p.Spec.DisableMultiColumn {
					var err error
					if mini, err = root.MatColumns[i].Window(cr); err != nil {
						return err
					}
				}
				minis[i] = mini
			}
			operators.AggregateCompressedChunk(agg, minis[0], minis[1], desc)
			obsNanos(&root.Obs, start, observe)
			continue
		}

		// Materialization: DS3 per needed column — from the multi-column's
		// mini-columns when available (zero re-access); otherwise the
		// batched block-pinned gather touches only the blocks holding
		// surviving positions instead of re-windowing the whole chunk.
		for i, n := range extracts {
			start := obsStart(observe)
			if mini, ok := mc.Mini(n.Col); ok && !p.Spec.DisableMultiColumn {
				valBufs[i] = datasource.DS3{}.ValuesFromMini(mini, desc, valBufs[i][:0])
			} else {
				var err error
				ds3 := datasource.DS3{Col: n.Column}
				if valBufs[i], err = ds3.ValuesGather(desc, valBufs[i][:0]); err != nil {
					return err
				}
			}
			if observe {
				n.Obs.add(int64(len(valBufs[i])), time.Since(start).Nanoseconds())
			}
		}
		start := obsStart(observe)
		if err := merger.MergeChunk(valBufs...); err != nil {
			return err
		}
		obsNanos(&root.Obs, start, observe)
	}

	if !p.Spec.Aggregating {
		pt.stats.TuplesConstructed += merger.TuplesConstructed
		pt.res = merger.Result()
	}
	return nil
}

// evalPositions evaluates a position-domain subtree for one chunk,
// attaching every scanned mini-column to the chunk's multi-column. The
// skipped return reports pipelined chunk skipping: a narrowing node whose
// input ran dry skips the remaining columns' blocks entirely (counted once
// per chunk).
func (p *Plan) evalPositions(n *Node, cr positions.Range, mc *multicol.MultiColumn, pt *partial, st *morselState, observe bool) (positions.Set, bool, error) {
	switch n.Kind {
	case KindPosAll:
		set := positions.Set(positions.NewRanges(cr))
		if observe {
			n.Obs.add(set.Count(), 0)
		}
		return set, false, nil

	case KindDS1:
		start := obsStart(observe)
		ps, mini, err := st.ds1(n, p.Spec).ScanChunk(cr)
		if err != nil {
			return nil, false, err
		}
		if mini != nil {
			mc.Attach(n.Col, mini)
		}
		if observe {
			n.Obs.add(ps.Count(), time.Since(start).Nanoseconds())
		}
		return ps, false, nil

	case KindAND:
		sets := make([]positions.Set, len(n.Children))
		for i, c := range n.Children {
			s, _, err := p.evalPositions(c, cr, mc, pt, st, observe)
			if err != nil {
				return nil, false, err
			}
			sets[i] = s
		}
		start := obsStart(observe)
		set := positions.AndAll(sets...)
		if observe {
			n.Obs.add(set.Count(), time.Since(start).Nanoseconds())
		}
		return set, false, nil

	case KindFilterAt:
		in, skipped, err := p.evalPositions(n.Children[0], cr, mc, pt, st, observe)
		if err != nil || skipped {
			return nil, skipped, err
		}
		if in.Count() == 0 {
			// Pipelined block skipping: this column's blocks (and every
			// column above) are never read for this chunk.
			pt.stats.ChunksSkipped++
			return nil, true, nil
		}
		start := obsStart(observe)
		mini, err := n.Column.Window(cr)
		if err != nil {
			return nil, false, err
		}
		mc.Attach(n.Col, mini)
		set := encoding.FilterAtFused(mini, in, n.execPreds, st.policy(n))
		if observe {
			n.Obs.add(set.Count(), time.Since(start).Nanoseconds())
		}
		return set, false, nil

	default:
		return nil, false, fmt.Errorf("plan: %v is not a position-domain node", n.Kind)
	}
}

// runTupleMorsel interprets the EM-pipelined chain: a DS2 leaf producing
// early (position, value) tuples, widened (and filtered) by each DS4 node in
// order, emitted into the result or aggregator at the top. Chunks whose
// batch runs empty skip the remaining columns' blocks.
func (p *Plan) runTupleMorsel(r positions.Range, pt *partial, observe bool) error {
	agg, res := pt.init(p.Spec)
	// Flatten the chain leaf-first: root.Children[0] is the topmost DS4 (or
	// the DS2 itself for single-column plans).
	var chain []*Node
	for n := p.Root.Children[0]; n != nil; {
		chain = append(chain, n)
		if len(n.Children) > 0 {
			n = n.Children[0]
		} else {
			n = nil
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if chain[0].Kind != KindDS2 {
		return fmt.Errorf("plan: tuple chain leaf is %v, want DS2", chain[0].Kind)
	}
	// Compile the chain's data sources once per morsel: the DS2 leaf plus
	// one DS4 (with pre-compiled fused matcher) per widening node.
	ds2 := datasource.DS2{Col: chain[0].Column, Preds: chain[0].execPreds}
	ds2.CompilePreds()
	ds4s := make([]datasource.DS4, len(chain))
	for i, n := range chain[1:] {
		ds4s[i+1] = datasource.DS4{Col: n.Column, Preds: n.execPreds}
		ds4s[i+1].CompilePred()
	}
	var valBuf []int64
	ch := datasource.NewChunker(r, p.Spec.ChunkSize)
	for ci := 0; ci < ch.NumChunks(); ci++ {
		cr := ch.Chunk(ci)
		start := obsStart(observe)
		batch, err := ds2.ScanChunk(cr, chain[0].Col)
		if err != nil {
			return err
		}
		pt.stats.TuplesConstructed += int64(batch.Len())
		if observe {
			chain[0].Obs.add(int64(batch.Len()), time.Since(start).Nanoseconds())
		}
		skipped := false
		for i := 1; i < len(chain); i++ {
			if batch.Len() == 0 {
				pt.stats.ChunksSkipped++
				skipped = true
				break
			}
			// DS4 widening via the batched block-pinned gather: one fetch
			// for the whole batch's positions instead of a per-tuple jump,
			// touching only the blocks that hold surviving positions.
			start := obsStart(observe)
			batch, valBuf, err = ds4s[i].ExtendChunkBatched(batch, chain[i].Col, valBuf)
			if err != nil {
				return err
			}
			pt.stats.TuplesConstructed += int64(batch.Len())
			if observe {
				chain[i].Obs.add(int64(batch.Len()), time.Since(start).Nanoseconds())
			}
		}
		if skipped || batch.Len() == 0 {
			continue
		}
		pt.stats.PositionsMatched += int64(batch.Len())
		start = obsStart(observe)
		if err := emitBatch(batch, p.Spec, agg, res); err != nil {
			return err
		}
		obsNanos(&p.Root.Obs, start, observe)
	}
	return nil
}

// runSPCMorsel interprets the EM-parallel leaf: every column's chunk is
// decompressed into a value vector, predicates applied row-wise in lockstep
// (the retained scalar reference — deliberately unfused), and tuples
// constructed at the very bottom of the plan.
func (p *Plan) runSPCMorsel(r positions.Range, pt *partial, observe bool) error {
	agg, res := pt.init(p.Spec)
	spc := p.Root.Children[0]
	ch := datasource.NewChunker(r, p.Spec.ChunkSize)
	// Scratch buffers are per-morsel (workers share nothing but the pool).
	scratch := make([][]int64, len(spc.SPCColumns))
	// SPC constructs tuples column-wise straight into the result (or, for
	// aggregations, into per-chunk key/value vectors feeding the hash
	// aggregator).
	aggDst := make([][]int64, 2)
	for ci := 0; ci < ch.NumChunks(); ci++ {
		cr := ch.Chunk(ci)
		start := obsStart(observe)
		// EM decompresses early: every column's chunk becomes a value
		// vector before predicate evaluation (Section 2.1.2's cost).
		for i, c := range spc.SPCColumns {
			mini, err := c.Window(cr)
			if err != nil {
				return err
			}
			scratch[i] = mini.Decompress(scratch[i][:0])
		}
		var constructed int64
		if p.Spec.Aggregating {
			aggDst[0] = aggDst[0][:0]
			aggDst[1] = aggDst[1][:0]
			constructed = operators.SPCChunk(scratch, spc.SPCFilters, spc.SPCOutIdx, aggDst)
			agg.AddBatch(aggDst[0], aggDst[1])
		} else {
			constructed = operators.SPCChunk(scratch, spc.SPCFilters, spc.SPCOutIdx, res.Cols)
		}
		pt.stats.TuplesConstructed += constructed
		pt.stats.PositionsMatched += constructed
		if observe {
			spc.Obs.add(constructed, time.Since(start).Nanoseconds())
		}
	}
	return nil
}

// emitBatch routes a constructed-tuple batch into the aggregator or the
// result, in output order.
func emitBatch(batch *rows.Batch, s Spec, agg *operators.Aggregator, res *rows.Result) error {
	if s.Aggregating {
		keys, err := batch.Col(s.GroupBy)
		if err != nil {
			return err
		}
		vals, err := batch.Col(s.AggCol)
		if err != nil {
			return err
		}
		agg.AddBatch(keys, vals)
		return nil
	}
	for i, name := range s.Output {
		vals, err := batch.Col(name)
		if err != nil {
			return err
		}
		res.Cols[i] = append(res.Cols[i], vals...)
	}
	return nil
}

// obsStart returns the timing anchor for an observed section (zero when
// observation is off, so the fast path never calls the clock).
func obsStart(observe bool) time.Time {
	if !observe {
		return time.Time{}
	}
	return time.Now()
}

// obsNanos accumulates elapsed time on a node without touching its row
// counter (used for root nodes, whose cardinality is set once at the end).
func obsNanos(o *Observed, start time.Time, observe bool) {
	if observe {
		o.Nanos.Add(time.Since(start).Nanoseconds())
	}
}
