package plan

import (
	"context"
	"fmt"
	"sort"

	"matstore/internal/operators"
	"matstore/internal/rows"
)

// This file is pass B of the Grace spill join: resolving the probes whose
// keys routed to spilled partitions. Pass A (the streaming probe morsels)
// emitted resident matches in the usual order and recorded each deferred
// probe with an anchor — the rows its partial had emitted at the moment the
// probe was seen. Since every outer row's matches come wholly from one
// partition, the in-memory output is exactly the base rows with each
// deferred probe's matches inserted at its anchor, in probe order, bucket
// positions ascending. Pass B loads each spilled partition once (bounded
// memory: one partition's hash table at a time), probes the deferred keys,
// and re-interleaves — which is why spilled results are byte-identical to
// the in-memory path at every budget and worker count.

// spillInsert is one deferred match awaiting re-insertion: seq orders probes
// globally (morsel order, then within-chunk key order), anchor is the global
// base-result row the matches precede, rpos the matched right position.
type spillInsert struct {
	seq    int
	anchor int64
	rpos   int64
}

// assembleSpillMatches resolves deferred probes partition-at-a-time and
// rebuilds the result with their matches inserted at the recorded anchors.
// Returns the new result and its aligned pending list (one deferred right
// position per row — in spill mode all payload is deferred).
func (p *Plan) assembleSpillMatches(ctx context.Context, probe *Node, rt *operators.PartitionedTable, res *rows.Result, parts []*partial, basePending []int64, stats *RunStats) (*rows.Result, []int64, error) {
	base := len(probe.LeftCols)

	// Concatenate the per-partial deferred probes in morsel order, converting
	// local anchors to global row numbers via each partial's emitted-row
	// count (stats.Join.OutputTuples counts exactly the rows the partial
	// emitted; parts[0].res is aliased by the merged result, so its row count
	// cannot be read after the merge).
	var keys, anchors []int64
	left := make([][]int64, base)
	var offset int64
	for _, pt := range parts {
		for _, a := range pt.spillAnchors {
			anchors = append(anchors, offset+a)
		}
		keys = append(keys, pt.spillKeys...)
		for c := 0; c < base && pt.spillLeft != nil; c++ {
			left[c] = append(left[c], pt.spillLeft[c]...)
		}
		offset += pt.stats.Join.OutputTuples
	}
	if len(keys) == 0 {
		return res, basePending, nil
	}
	stats.Join.SpillProbes += int64(len(keys))

	// Group deferred probes by partition, then load each spilled partition
	// once and probe its keys. The partition table is dropped before the
	// next loads — the whole point of Grace probing.
	byPart := make(map[int][]int)
	for s, k := range keys {
		byPart[rt.KeyPartition(k)] = append(byPart[rt.KeyPartition(k)], s)
	}
	var inserts []spillInsert
	for pt := rt.ResidentPartitions(); pt < rt.Partitions; pt++ {
		seqs := byPart[pt]
		if len(seqs) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		tbl, err := rt.LoadSpilledPartition(pt)
		if err != nil {
			return nil, nil, err
		}
		for _, s := range seqs {
			for _, rpos := range tbl[keys[s]] {
				inserts = append(inserts, spillInsert{seq: s, anchor: anchors[s], rpos: rpos})
			}
		}
	}
	if len(inserts) == 0 {
		return res, basePending, nil
	}
	// Stable by seq: matches of one probe keep their ascending bucket order,
	// probes at one anchor keep their key order.
	sort.SliceStable(inserts, func(i, j int) bool { return inserts[i].seq < inserts[j].seq })

	nb := int64(res.NumRows())
	if int64(len(basePending)) != nb {
		return nil, nil, fmt.Errorf("plan: spill pending misaligned: %d for %d rows", len(basePending), nb)
	}
	out := rows.NewResult(p.Spec.OutNames...)
	total := int(nb) + len(inserts)
	for c := range out.Cols {
		out.Cols[c] = make([]int64, 0, total)
	}
	pending := make([]int64, 0, total)
	// Anchors are non-decreasing in seq, so one walk interleaves everything.
	ii := 0
	for g := int64(0); g <= nb; g++ {
		for ii < len(inserts) && inserts[ii].anchor == g {
			ins := inserts[ii]
			for c := 0; c < base; c++ {
				out.Cols[c] = append(out.Cols[c], left[c][ins.seq])
			}
			for c := base; c < len(out.Cols); c++ {
				out.Cols[c] = append(out.Cols[c], 0)
			}
			pending = append(pending, ins.rpos)
			ii++
		}
		if g < nb {
			for c := range out.Cols {
				out.Cols[c] = append(out.Cols[c], res.Cols[c][g])
			}
			pending = append(pending, basePending[g])
		}
	}
	if ii != len(inserts) {
		return nil, nil, fmt.Errorf("plan: %d spill inserts unplaced", len(inserts)-ii)
	}
	stats.Join.OutputTuples += int64(len(inserts))
	stats.TuplesConstructed += int64(len(inserts))
	return out, pending, nil
}
