package plan

import "matstore/internal/obs"

// attachNodeSpans renders the plan tree's Observed counters as one synthetic
// span per node under parent, mirroring the tree shape. These spans are
// accumulators, not wall-clock intervals — a node's Nanos sums its own work
// across all chunks of all concurrent morsels, so sibling durations overlap
// and may exceed the parent's wall time. Each carries attr "accum": true so
// trace consumers (and the strict-nesting test) treat them accordingly.
func attachNodeSpans(parent *obs.Span, n *Node) {
	if parent == nil || n == nil {
		return
	}
	sp := parent.Child(n.label())
	sp.SetAttr("accum", true)
	sp.SetAttr("rows", n.Obs.Rows.Load())
	if chunks := n.Obs.Chunks.Load(); chunks > 0 {
		sp.SetAttr("chunks", chunks)
	}
	if n.HasModel {
		sp.SetAttr("model_us", n.Modeled.Total())
	}
	sp.EndDur(n.Obs.Nanos.Load())
	for _, c := range n.Children {
		attachNodeSpans(sp, c)
	}
}
