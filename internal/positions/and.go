package positions

// This file implements the AND operator cases of Section 3.3:
//
//	Case 1: range inputs, range output.
//	Case 2: bit-list inputs, bit-list output (word-at-a-time AND).
//	Case 3: mixed inputs: ranges are intersected first, bit-lists ANDed,
//	        then the single range list is applied to the bit-list.
//
// And() dispatches to the fast path for each representation pair and falls
// back to a generic run-merge that works across any pair.

// And returns the intersection of a and b, choosing the output
// representation per the paper: ranges×ranges yields ranges; any operand
// that is a bitmap yields a bitmap; list operands yield lists.
func And(a, b Set) Set {
	if a.Kind() == KindEmpty || b.Kind() == KindEmpty {
		return Empty{}
	}
	cov := a.Covering().Intersect(b.Covering())
	if cov.Empty() {
		return Empty{}
	}
	switch x := a.(type) {
	case Ranges:
		switch y := b.(type) {
		case Ranges:
			return andRanges(x, y)
		case *Bitmap:
			return andRangesBitmap(x, y)
		case List:
			return andRangesList(x, y)
		}
	case *Bitmap:
		switch y := b.(type) {
		case *Bitmap:
			return andBitmaps(x, y)
		case Ranges:
			return andRangesBitmap(y, x)
		case List:
			return andBitmapList(x, y)
		}
	case List:
		switch y := b.(type) {
		case List:
			return andLists(x, y)
		case Ranges:
			return andRangesList(y, x)
		case *Bitmap:
			return andBitmapList(y, x)
		}
	}
	return andGeneric(a, b)
}

// AndAll intersects an arbitrary number of sets. Per the paper's Case 3, all
// range-represented inputs are intersected together first (cheap), then
// bit-lists are ANDed word-parallel, then the two intermediates combined.
func AndAll(sets ...Set) Set {
	if len(sets) == 0 {
		return Empty{}
	}
	var ranged Set
	var bits Set
	var others []Set
	for _, s := range sets {
		switch s.Kind() {
		case KindEmpty:
			return Empty{}
		case KindRanges:
			if ranged == nil {
				ranged = s
			} else {
				ranged = And(ranged, s)
			}
		case KindBitmap:
			if bits == nil {
				bits = s
			} else {
				bits = And(bits, s)
			}
		default:
			others = append(others, s)
		}
	}
	out := ranged
	if bits != nil {
		if out == nil {
			out = bits
		} else {
			out = And(out, bits)
		}
	}
	for _, s := range others {
		if out == nil {
			out = s
		} else {
			out = And(out, s)
		}
	}
	if out == nil {
		return Empty{}
	}
	return out
}

// andRanges is AND Case 1: a standard ordered merge of two disjoint-sorted
// range sequences.
func andRanges(a, b Ranges) Set {
	out := make(Ranges, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		r := a[i].Intersect(b[j])
		if !r.Empty() {
			out = append(out, r)
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	if len(out) == 0 {
		return Empty{}
	}
	return out
}

// andBitmaps is AND Case 2: a word-at-a-time AND. When the operand extents
// coincide (the common case: chunk-aligned descriptors) this is a single
// pass over the word arrays; otherwise the overlap window is intersected
// word-by-word with shifting handled via the 64-alignment invariant.
func andBitmaps(a, b *Bitmap) Set {
	if a.start == b.start && a.nbits == b.nbits {
		out := a.Clone()
		out.AndWith(b)
		return out
	}
	cov := a.Covering().Intersect(b.Covering())
	if cov.Empty() {
		return Empty{}
	}
	// Both starts are 64-aligned, so the overlap window begins at a word
	// boundary in each operand.
	start := cov.Start &^ 63
	out := NewBitmap(start, cov.End-start)
	ao := (start - a.start) >> 6
	bo := (start - b.start) >> 6
	for w := range out.words {
		var aw, bw uint64
		if ai := ao + int64(w); ai >= 0 && ai < int64(len(a.words)) {
			aw = a.words[ai]
		}
		if bi := bo + int64(w); bi >= 0 && bi < int64(len(b.words)) {
			bw = b.words[bi]
		}
		out.words[w] = aw & bw
	}
	out.clampTail()
	return out
}

// clampTail zeroes any bits at or beyond nbits in the final word, preserving
// the invariant that trailing bits are clear.
func (b *Bitmap) clampTail() {
	if b.nbits%64 == 0 || len(b.words) == 0 {
		return
	}
	b.words[len(b.words)-1] &= ^uint64(0) >> uint(64-b.nbits%64)
}

// andRangesBitmap is the range×bit-string case the paper highlights as
// especially cheap: the result is the subset of the bit-string covered by
// the ranges. Output is a bitmap.
func andRangesBitmap(rs Ranges, bm *Bitmap) Set {
	cov := rs.Covering().Intersect(bm.Covering())
	if cov.Empty() {
		return Empty{}
	}
	start := cov.Start &^ 63
	out := NewBitmap(start, cov.End-start)
	for _, r := range rs {
		rr := r.Intersect(cov)
		if rr.Empty() {
			continue
		}
		copyBits(out, bm, rr)
	}
	out.clampTail()
	return out
}

// copyBits ORs the bits of src within window into dst. Both bitmaps are
// 64-aligned; window need not be.
func copyBits(dst, src *Bitmap, window Range) {
	for p := window.Start; p < window.End; {
		si := p - src.start
		di := p - dst.start
		// Process up to the next word boundary of the more constrained index.
		w := src.words[si>>6]
		// Bits of w from si&63 upward correspond to positions p, p+1, ...
		avail := 64 - si&63
		if rem := window.End - p; rem < avail {
			avail = rem
		}
		chunk := (w >> uint(si&63)) & maskLow(avail)
		// Place chunk at bit offset di&63; may straddle two destination words.
		dst.words[di>>6] |= chunk << uint(di&63)
		if spill := avail - (64 - di&63); spill > 0 {
			dst.words[di>>6+1] |= chunk >> uint(64-di&63)
		}
		p += avail
	}
}

func maskLow(n int64) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

func andRangesList(rs Ranges, l List) Set {
	out := make(List, 0, min(len(l), int(rs.Count())))
	i := 0
	for _, p := range l {
		for i < len(rs) && rs[i].End <= p {
			i++
		}
		if i >= len(rs) {
			break
		}
		if rs[i].Contains(p) {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return Empty{}
	}
	return out
}

func andBitmapList(bm *Bitmap, l List) Set {
	out := make(List, 0, len(l))
	for _, p := range l {
		if bm.Contains(p) {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return Empty{}
	}
	return out
}

func andLists(a, b List) Set {
	out := make(List, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	if len(out) == 0 {
		return Empty{}
	}
	return out
}

// andGeneric merges run iterators; it is the fallback for any representation
// pair without a dedicated fast path.
func andGeneric(a, b Set) Set {
	var bld Builder
	ai, bi := a.Runs(), b.Runs()
	ar, aok := ai.Next()
	br, bok := bi.Next()
	for aok && bok {
		if r := ar.Intersect(br); !r.Empty() {
			bld.AddRange(r)
		}
		if ar.End < br.End {
			ar, aok = ai.Next()
		} else {
			br, bok = bi.Next()
		}
	}
	return bld.Build()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
