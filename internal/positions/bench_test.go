package positions

import "testing"

// Micro-benchmarks for the Section 3.3 position-intersection primitives.

func benchBitmaps(n int64) (*Bitmap, *Bitmap) {
	a := NewBitmap(0, n)
	b := NewBitmap(0, n)
	for i := int64(0); i < n; i += 2 {
		a.Set(i)
	}
	for i := int64(0); i < n; i += 3 {
		b.Set(i)
	}
	return a, b
}

func BenchmarkAndBitmapBitmap(b *testing.B) {
	x, y := benchBitmaps(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if And(x, y).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAndRangesRanges(b *testing.B) {
	x := make(Ranges, 0, 512)
	y := make(Ranges, 0, 512)
	for i := int64(0); i < 512; i++ {
		x = append(x, Range{i * 128, i*128 + 100})
		y = append(y, Range{i*128 + 50, i*128 + 120})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if And(x, y).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAndRangesBitmap(b *testing.B) {
	bm, _ := benchBitmaps(1 << 16)
	rs := NewRanges(Range{100, 30000}, Range{40000, 60000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if And(rs, bm).Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBitmapRunIteration(b *testing.B) {
	bm, _ := benchBitmaps(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := bm.Runs()
		var n int64
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			n += r.Len()
		}
		if n == 0 {
			b.Fatal("no runs")
		}
	}
}

func BenchmarkBuilderRangesOutput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(Range{0, 1 << 16})
		for p := int64(0); p < 1<<16; p += 1024 {
			bld.AddRange(Range{p, p + 512})
		}
		if bld.Build().Count() == 0 {
			b.Fatal("empty")
		}
	}
}
