package positions

// Builder accumulates positions (as runs or single positions, in ascending
// order) and chooses an output representation: ranges when the result is a
// few long runs, a list when the result is sparse single positions, and a
// bitmap otherwise. A data source applying a predicate to a chunk uses one
// Builder per chunk; the representation decision mirrors the paper's
// observation that predicate outputs over sorted/RLE data are ranges while
// outputs over unsorted data are bit-strings.
type Builder struct {
	runs    Ranges
	lastEnd int64
	count   int64
	// forceBitmap requests bitmap output regardless of shape (ablation hook).
	forceBitmap bool
	// extent, when non-empty, fixes the covering range of a bitmap output.
	extent Range
}

// NewBuilder returns a Builder whose bitmap output (if chosen) covers extent.
func NewBuilder(extent Range) *Builder {
	return &Builder{extent: extent, lastEnd: -1}
}

// ForceBitmap makes Build always return a bitmap covering the extent.
func (b *Builder) ForceBitmap() { b.forceBitmap = true }

// Add appends a single position, which must be >= any previously added
// position (equal adjacent adds coalesce).
func (b *Builder) Add(pos int64) { b.AddRange(Range{pos, pos + 1}) }

// AddRange appends a run. Runs must arrive in ascending order; adjacent or
// overlapping runs are coalesced.
func (b *Builder) AddRange(r Range) {
	if r.Empty() {
		return
	}
	if n := len(b.runs); n > 0 && r.Start <= b.runs[n-1].End {
		if r.End > b.runs[n-1].End {
			b.count += r.End - b.runs[n-1].End
			b.runs[n-1].End = r.End
		}
		return
	}
	b.runs = append(b.runs, r)
	b.count += r.Len()
}

// Count returns the number of positions added so far.
func (b *Builder) Count() int64 { return b.count }

// Build returns the accumulated set in the chosen representation.
//
// Heuristics: empty → Empty; forced → bitmap; avg run length >= 4 or few
// runs → Ranges; all runs singletons and sparse → List; otherwise bitmap.
func (b *Builder) Build() Set {
	if b.count == 0 {
		return Empty{}
	}
	if b.forceBitmap {
		return b.buildBitmap()
	}
	nRuns := int64(len(b.runs))
	if b.count >= nRuns*4 || nRuns <= 4 {
		return b.runs
	}
	if b.count == nRuns && b.count <= 1024 {
		out := make(List, 0, b.count)
		for _, r := range b.runs {
			out = append(out, r.Start)
		}
		return out
	}
	return b.buildBitmap()
}

func (b *Builder) buildBitmap() Set {
	ext := b.extent
	if ext.Empty() {
		ext = Range{b.runs[0].Start, b.runs[len(b.runs)-1].End}
	}
	start := ext.Start &^ 63
	bm := NewBitmap(start, ext.End-start)
	for _, r := range b.runs {
		bm.SetRange(r)
	}
	return bm
}

// ToBitmap converts any set to a bitmap covering extent (which must contain
// the set).
func ToBitmap(s Set, extent Range) *Bitmap {
	start := extent.Start &^ 63
	bm := NewBitmap(start, extent.End-start)
	it := s.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return bm
		}
		bm.SetRange(r)
	}
}

// ToList converts any set to an explicit position list.
func ToList(s Set) List {
	if l, ok := s.(List); ok {
		return l
	}
	return List(Slice(s))
}

// ToRanges converts any set to its run decomposition.
func ToRanges(s Set) Ranges {
	if r, ok := s.(Ranges); ok {
		return r
	}
	var out Ranges
	it := s.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Equal reports whether two sets contain exactly the same positions.
func Equal(a, b Set) bool {
	if a.Count() != b.Count() {
		return false
	}
	ai, bi := a.Runs(), b.Runs()
	for {
		ar, aok := ai.Next()
		br, bok := bi.Next()
		if aok != bok {
			return false
		}
		if !aok {
			return true
		}
		if ar != br {
			return false
		}
	}
}
