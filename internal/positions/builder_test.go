package positions

import "testing"

// TestBuilderBuildHeuristics pins Build's representation choice at the
// documented thresholds: empty → Empty; forced → bitmap; avg run length ≥ 4
// OR ≤ 4 runs → Ranges; all-singleton and ≤ 1024 positions → List;
// otherwise bitmap. Each case states which rule it sits on (and, for the
// boundary cases, which side).
func TestBuilderBuildHeuristics(t *testing.T) {
	const extent = 1 << 16
	// addRuns(b, n, len, stride) adds n runs of the given length, spaced
	// stride apart starting at 0.
	addRuns := func(b *Builder, n, length, stride int64) {
		for i := int64(0); i < n; i++ {
			b.AddRange(Range{i * stride, i*stride + length})
		}
	}
	for _, tc := range []struct {
		name  string
		setup func(b *Builder)
		want  Kind
		count int64
	}{
		{
			name:  "empty",
			setup: func(b *Builder) {},
			want:  KindEmpty,
		},
		{
			name:  "empty-forced-still-empty",
			setup: func(b *Builder) { b.ForceBitmap() },
			want:  KindEmpty,
		},
		{
			name:  "forced-bitmap-overrides-range-shape",
			setup: func(b *Builder) { b.ForceBitmap(); addRuns(b, 2, 1000, 2000) },
			want:  KindBitmap,
			count: 2000,
		},
		{
			name:  "avg-run-exactly-4-ranges", // count == 4·runs sits on the ≥ side
			setup: func(b *Builder) { addRuns(b, 100, 4, 8) },
			want:  KindRanges,
			count: 400,
		},
		{
			name:  "avg-run-just-under-4-many-runs-bitmap", // 100 runs of 3: count < 4·runs, not singletons
			setup: func(b *Builder) { addRuns(b, 100, 3, 8) },
			want:  KindBitmap,
			count: 300,
		},
		{
			name:  "four-short-runs-ranges", // ≤ 4 runs wins even with avg run length 1
			setup: func(b *Builder) { addRuns(b, 4, 1, 10) },
			want:  KindRanges,
			count: 4,
		},
		{
			name:  "five-singletons-list", // > 4 runs, all singletons, sparse → List
			setup: func(b *Builder) { addRuns(b, 5, 1, 10) },
			want:  KindList,
			count: 5,
		},
		{
			name:  "singletons-at-list-cutoff", // exactly 1024 singletons stay a List
			setup: func(b *Builder) { addRuns(b, 1024, 1, 11) },
			want:  KindList,
			count: 1024,
		},
		{
			name:  "singletons-past-list-cutoff-bitmap", // 1025 singletons overflow to bitmap
			setup: func(b *Builder) { addRuns(b, 1025, 1, 11) },
			want:  KindBitmap,
			count: 1025,
		},
		{
			name:  "one-long-run-ranges",
			setup: func(b *Builder) { b.AddRange(Range{100, 60000}) },
			want:  KindRanges,
			count: 59900,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(Range{0, extent})
			tc.setup(b)
			got := b.Build()
			if got.Kind() != tc.want {
				t.Fatalf("Build() kind = %v, want %v", got.Kind(), tc.want)
			}
			if got.Count() != tc.count {
				t.Fatalf("Build() count = %d, want %d", got.Count(), tc.count)
			}
			if b.Count() != tc.count {
				t.Fatalf("Builder.Count() = %d, want %d", b.Count(), tc.count)
			}
			if tc.want == KindBitmap {
				// Bitmap output covers the builder's extent (64-aligned start).
				if cov := got.Covering(); cov != (Range{0, extent}) {
					t.Fatalf("bitmap covering = %v, want [0,%d)", cov, extent)
				}
			}
		})
	}
}

// TestBuilderBitmapExtentFallback: a builder with no fixed extent derives
// its forced-bitmap cover from the added runs, 64-aligning the start.
func TestBuilderBitmapExtentFallback(t *testing.T) {
	var b Builder
	b.ForceBitmap()
	b.AddRange(Range{70, 80})
	b.AddRange(Range{200, 300})
	got := b.Build()
	if got.Kind() != KindBitmap {
		t.Fatalf("kind = %v", got.Kind())
	}
	bm := got.(*Bitmap)
	if bm.Start() != 64 || bm.Covering().End != 300 {
		t.Fatalf("bitmap spans [%d,%d), want [64,300)", bm.Start(), bm.Covering().End)
	}
	if !Equal(got, NewRanges(Range{70, 80}, Range{200, 300})) {
		t.Fatal("bitmap contents differ from added runs")
	}
}
