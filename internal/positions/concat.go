package positions

import "fmt"

// Concat merges position sets over strictly increasing, non-overlapping
// covering ranges into one set — the positions-domain merge of the
// morsel-parallel executor: each worker produces a position list over its
// own block range, and concatenating the per-morsel lists in block order
// reproduces exactly the list a sequential scan would have built.
//
// Inputs must be ordered by covering range (each set's positions strictly
// after the previous set's); empty sets are skipped wherever they appear.
// Fast paths keep the natural representations: all-Ranges inputs append
// without conversion (coalescing at the seams), all-List inputs append, and
// mixed or bitmap inputs fall back to a run-order Builder, which re-picks
// the best representation for the combined shape.
func Concat(parts ...Set) Set {
	live := parts[:0]
	var last int64 = -1 << 62
	for _, p := range parts {
		if p == nil || p.Count() == 0 {
			continue
		}
		cov := p.Covering()
		if cov.Start < last {
			panic(fmt.Sprintf("positions: Concat input covering %v overlaps previous end %d", cov, last))
		}
		last = cov.End
		live = append(live, p)
	}
	switch len(live) {
	case 0:
		return Empty{}
	case 1:
		return live[0]
	}

	allRanges, allLists := true, true
	for _, p := range live {
		switch p.Kind() {
		case KindRanges:
			allLists = false
		case KindList:
			allRanges = false
		default:
			allRanges, allLists = false, false
		}
	}
	if allRanges {
		out := make(Ranges, 0, len(live)*2)
		for _, p := range live {
			for _, r := range p.(Ranges) {
				if n := len(out); n > 0 && r.Start <= out[n-1].End {
					// Coalesce runs that touch at a morsel seam.
					if r.End > out[n-1].End {
						out[n-1].End = r.End
					}
					continue
				}
				out = append(out, r)
			}
		}
		return out
	}
	if allLists {
		var n int64
		for _, p := range live {
			n += p.Count()
		}
		out := make(List, 0, n)
		for _, p := range live {
			out = append(out, p.(List)...)
		}
		return out
	}
	b := NewBuilder(Range{live[0].Covering().Start, live[len(live)-1].Covering().End})
	for _, p := range live {
		it := p.Runs()
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			b.AddRange(r)
		}
	}
	return b.Build()
}
