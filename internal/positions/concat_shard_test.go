package positions

import "testing"

// Shard-boundary concat invariant: the scatter-gather coordinator
// concatenates per-shard position partials in shard order exactly as the
// morsel executor concatenates per-morsel partials in block order. Splitting
// the position space at a shard boundary and concatenating the pieces must
// reproduce the unsplit set bit for bit, for every representation mix — the
// property that makes shard-order row concat equal global row order.

// setsEqual compares two position sets by exhaustive run iteration.
func setsEqual(a, b Set) bool {
	if a.Count() != b.Count() {
		return false
	}
	ra, rb := a.Runs(), b.Runs()
	for {
		x, okA := ra.Next()
		y, okB := rb.Next()
		if okA != okB {
			return false
		}
		if !okA {
			return true
		}
		if x != y {
			return false
		}
	}
}

// clip returns the subset of s inside [lo, hi) — what one shard holds of a
// global position set.
func clip(s Set, lo, hi int64) Set {
	b := NewBuilder(Range{Start: lo, End: hi})
	it := s.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		o := r.Intersect(Range{Start: lo, End: hi})
		if !o.Empty() {
			b.AddRange(o)
		}
	}
	return b.Build()
}

// TestConcatAcrossShardBoundaries: for several global sets and several
// shard carvings, concatenating the per-shard clips in shard order equals
// the unsplit set.
func TestConcatAcrossShardBoundaries(t *testing.T) {
	globals := map[string]Set{
		"ranges": NewRanges(Range{Start: 10, End: 300}, Range{Start: 500, End: 700}, Range{Start: 1000, End: 1024}),
		"list":   NewList(1, 63, 64, 65, 200, 511, 512, 513, 900, 1023),
		"dense":  NewRanges(Range{Start: 0, End: 1024}),
	}
	carvings := [][]int64{
		{0, 512, 1024},
		{0, 64, 128, 1024},
		{0, 256, 512, 768, 1024},
		{0, 1024}, // one shard: concat of one piece is the piece
	}
	for name, g := range globals {
		for _, cuts := range carvings {
			var parts []Set
			for i := 0; i+1 < len(cuts); i++ {
				parts = append(parts, clip(g, cuts[i], cuts[i+1]))
			}
			got := Concat(parts...)
			if !setsEqual(got, g) {
				t.Errorf("%s carved at %v: concat %v != original %v", name, cuts, got, g)
			}
		}
	}
}

// TestConcatEmptyShards: shards holding no matching positions (pruned or
// empty-range shards) drop out of the concat without disturbing order.
func TestConcatEmptyShards(t *testing.T) {
	g := NewRanges(Range{Start: 100, End: 200})
	got := Concat(Empty{}, clip(g, 0, 512), Empty{}, clip(g, 512, 1024), Empty{})
	if !setsEqual(got, g) {
		t.Errorf("concat with empty shards = %v, want %v", got, g)
	}
}
