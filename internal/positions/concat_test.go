package positions

import "testing"

func TestConcatRanges(t *testing.T) {
	a := NewRanges(Range{0, 10}, Range{20, 30})
	b := NewRanges(Range{40, 50})
	got := Concat(a, b)
	want := NewRanges(Range{0, 10}, Range{20, 30}, Range{40, 50})
	if !Equal(got, want) {
		t.Errorf("Concat = %v, want %v", got, want)
	}
	if got.Kind() != KindRanges {
		t.Errorf("Concat kind = %v, want ranges", got.Kind())
	}
}

func TestConcatCoalescesSeam(t *testing.T) {
	// A run ending exactly at a morsel boundary continues in the next
	// morsel: the concatenation must coalesce it, matching what a
	// sequential builder over the whole extent would produce.
	a := NewRanges(Range{0, 64})
	b := NewRanges(Range{64, 128})
	got := Concat(a, b)
	if got.Kind() != KindRanges {
		t.Fatalf("kind = %v", got.Kind())
	}
	rs := got.(Ranges)
	if len(rs) != 1 || rs[0] != (Range{0, 128}) {
		t.Errorf("Concat = %v, want one run [0,128)", rs)
	}
}

func TestConcatLists(t *testing.T) {
	got := Concat(NewList(1, 5, 9), NewList(100, 200), NewList(300))
	want := NewList(1, 5, 9, 100, 200, 300)
	if !Equal(got, want) {
		t.Errorf("Concat = %v, want %v", got, want)
	}
	if got.Kind() != KindList {
		t.Errorf("kind = %v, want list", got.Kind())
	}
}

func TestConcatMixedRepresentations(t *testing.T) {
	bm := NewBitmap(64, 64)
	bm.Set(70)
	bm.Set(100)
	got := Concat(NewRanges(Range{0, 10}), bm, NewList(130, 140))
	want := NewList(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 70, 100, 130, 140)
	if !Equal(got, want) {
		t.Errorf("Concat = %v, want %v", Slice(got), Slice(want))
	}
}

func TestConcatSkipsEmpty(t *testing.T) {
	got := Concat(Empty{}, NewRanges(Range{5, 10}), Empty{}, nil, NewRanges(Range{20, 25}))
	want := NewRanges(Range{5, 10}, Range{20, 25})
	if !Equal(got, want) {
		t.Errorf("Concat = %v, want %v", got, want)
	}
}

func TestConcatAllEmpty(t *testing.T) {
	if got := Concat(Empty{}, Empty{}); got.Count() != 0 {
		t.Errorf("Concat of empties has %d positions", got.Count())
	}
	if got := Concat(); got.Count() != 0 {
		t.Errorf("Concat of nothing has %d positions", got.Count())
	}
}

func TestConcatSingleInputPassesThrough(t *testing.T) {
	in := NewList(3, 7)
	if got := Concat(Empty{}, in); !Equal(got, in) {
		t.Errorf("Concat = %v", got)
	}
}

func TestConcatRejectsOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping Concat did not panic")
		}
	}()
	Concat(NewRanges(Range{0, 100}), NewRanges(Range{50, 150}))
}

func TestConcatMatchesSequentialBuilder(t *testing.T) {
	// Build the same position stream once sequentially and once as three
	// per-morsel sets; Concat of the parts must equal the sequential set.
	runs := []Range{{0, 5}, {63, 65}, {100, 130}, {128, 140}, {300, 301}, {512, 600}}
	seq := NewBuilder(Range{0, 640})
	for _, r := range runs {
		seq.AddRange(r)
	}
	morsels := []Range{{0, 128}, {128, 512}, {512, 640}}
	parts := make([]Set, len(morsels))
	for i, m := range morsels {
		b := NewBuilder(m)
		for _, r := range runs {
			b.AddRange(r.Intersect(m))
		}
		parts[i] = b.Build()
	}
	if got, want := Concat(parts...), seq.Build(); !Equal(got, want) {
		t.Errorf("Concat = %v, want %v", Slice(got), Slice(want))
	}
}
