// Package positions implements the position-set representations used by the
// late-materialization executor: position ranges, explicit position lists,
// and bitmaps (bit-strings), together with the intersection (AND) machinery
// described in Section 3.3 of Abadi et al., "Materialization Strategies in a
// Column-Oriented DBMS" (ICDE 2007).
//
// Positions are 0-based ordinal offsets of values within a column. All three
// representations describe the same abstraction — a finite set of positions —
// and every operator in the executor is written against the Set interface,
// with fast paths for the concrete representation pairs the paper calls out
// (range×range → range, bitmap×bitmap → word-at-a-time AND, range×bitmap →
// bitmap slice).
package positions

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Range is a half-open interval [Start, End) of positions. The zero Range is
// empty.
type Range struct {
	Start int64
	End   int64
}

// Len returns the number of positions covered by r.
func (r Range) Len() int64 {
	if r.End <= r.Start {
		return 0
	}
	return r.End - r.Start
}

// Empty reports whether r covers no positions.
func (r Range) Empty() bool { return r.End <= r.Start }

// Contains reports whether pos lies within r.
func (r Range) Contains(pos int64) bool { return pos >= r.Start && pos < r.End }

// Intersect returns the overlap of r and o (possibly empty).
func (r Range) Intersect(o Range) Range {
	s, e := r.Start, r.End
	if o.Start > s {
		s = o.Start
	}
	if o.End < e {
		e = o.End
	}
	if e < s {
		e = s
	}
	return Range{s, e}
}

// Union returns the smallest range covering both r and o.
func (r Range) Union(o Range) Range {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	s, e := r.Start, r.End
	if o.Start < s {
		s = o.Start
	}
	if o.End > e {
		e = o.End
	}
	return Range{s, e}
}

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// Kind identifies the concrete representation of a Set.
type Kind uint8

const (
	// KindEmpty is the canonical empty set.
	KindEmpty Kind = iota
	// KindRanges is a sorted sequence of disjoint position ranges.
	KindRanges
	// KindList is a sorted list of individual positions.
	KindList
	// KindBitmap is a bit-string with one bit per position.
	KindBitmap
)

func (k Kind) String() string {
	switch k {
	case KindEmpty:
		return "empty"
	case KindRanges:
		return "ranges"
	case KindList:
		return "list"
	case KindBitmap:
		return "bitmap"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Set is a finite set of column positions. Implementations are immutable once
// built; operators share them freely across chunks.
type Set interface {
	// Kind reports the concrete representation.
	Kind() Kind
	// Count returns the number of positions in the set.
	Count() int64
	// Covering returns the smallest range containing every position
	// (the zero Range for an empty set).
	Covering() Range
	// Contains reports membership of a single position.
	Contains(pos int64) bool
	// Runs returns an iterator over maximal runs of consecutive positions,
	// in ascending order.
	Runs() *RunIter
}

// Empty is the empty position set.
type Empty struct{}

// Kind returns KindEmpty.
func (Empty) Kind() Kind { return KindEmpty }

// Count returns 0.
func (Empty) Count() int64 { return 0 }

// Covering returns the zero range.
func (Empty) Covering() Range { return Range{} }

// Contains returns false.
func (Empty) Contains(int64) bool { return false }

// Runs returns an exhausted iterator.
func (Empty) Runs() *RunIter { return &RunIter{} }

// Ranges is a sorted sequence of disjoint, non-adjacent, non-empty ranges.
// A single-element Ranges is the paper's "position range" representation;
// multi-element Ranges arise naturally from predicates over RLE columns.
type Ranges []Range

// NewRanges builds a Ranges set from arbitrary input ranges: they are sorted,
// empty ranges dropped, and overlapping or adjacent ranges coalesced.
func NewRanges(rs ...Range) Ranges {
	out := make(Ranges, 0, len(rs))
	for _, r := range rs {
		if !r.Empty() {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.Start <= merged[n-1].End {
			if r.End > merged[n-1].End {
				merged[n-1].End = r.End
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// Kind returns KindRanges.
func (rs Ranges) Kind() Kind { return KindRanges }

// Count returns the total number of positions across all ranges.
func (rs Ranges) Count() int64 {
	var n int64
	for _, r := range rs {
		n += r.Len()
	}
	return n
}

// Covering returns the range from the first start to the last end.
func (rs Ranges) Covering() Range {
	if len(rs) == 0 {
		return Range{}
	}
	return Range{rs[0].Start, rs[len(rs)-1].End}
}

// Contains performs a binary search for pos.
func (rs Ranges) Contains(pos int64) bool {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].End > pos })
	return i < len(rs) && rs[i].Contains(pos)
}

// Runs iterates the ranges directly.
func (rs Ranges) Runs() *RunIter { return &RunIter{ranges: rs} }

func (rs Ranges) String() string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// List is a sorted list of distinct positions. It is the paper's "listed
// positions" descriptor, useful when few positions inside a chunk are valid.
type List []int64

// NewList builds a List from arbitrary positions, sorting and deduplicating.
func NewList(pos ...int64) List {
	out := append(List(nil), pos...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, p := range out {
		if i == 0 || p != out[i-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup
}

// Kind returns KindList.
func (l List) Kind() Kind { return KindList }

// Count returns the list length.
func (l List) Count() int64 { return int64(len(l)) }

// Covering spans the first to last position.
func (l List) Covering() Range {
	if len(l) == 0 {
		return Range{}
	}
	return Range{l[0], l[len(l)-1] + 1}
}

// Contains performs a binary search.
func (l List) Contains(pos int64) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= pos })
	return i < len(l) && l[i] == pos
}

// Runs coalesces consecutive positions into runs on the fly.
func (l List) Runs() *RunIter { return &RunIter{list: l} }

// Bitmap is a bit-string position descriptor: bit i set means position
// start+i is in the set. The start is always 64-aligned in this codebase
// (chunks and bit-vector blocks are 64-aligned), which keeps bitmap-bitmap
// ANDs word-parallel.
type Bitmap struct {
	start int64
	nbits int64
	words []uint64
}

// NewBitmap returns an all-zero bitmap covering [start, start+nbits).
// start must be 64-aligned.
func NewBitmap(start, nbits int64) *Bitmap {
	if start%64 != 0 {
		panic(fmt.Sprintf("positions: bitmap start %d not 64-aligned", start))
	}
	if nbits < 0 {
		panic("positions: negative bitmap size")
	}
	return &Bitmap{start: start, nbits: nbits, words: make([]uint64, (nbits+63)/64)}
}

// BitmapFromWords wraps an existing word slice as a bitmap without copying.
// Callers must not mutate words afterwards. Trailing bits beyond nbits must
// be zero.
func BitmapFromWords(start, nbits int64, words []uint64) *Bitmap {
	if start%64 != 0 {
		panic(fmt.Sprintf("positions: bitmap start %d not 64-aligned", start))
	}
	if int64(len(words)) < (nbits+63)/64 {
		panic("positions: word slice too short for bitmap")
	}
	return &Bitmap{start: start, nbits: nbits, words: words[:(nbits+63)/64]}
}

// Start returns the position of bit 0.
func (b *Bitmap) Start() int64 { return b.start }

// NBits returns the number of addressable bits.
func (b *Bitmap) NBits() int64 { return b.nbits }

// Words exposes the underlying storage (read-only by convention).
func (b *Bitmap) Words() []uint64 { return b.words }

// NumWords returns the number of 64-bit words backing the bitmap.
func (b *Bitmap) NumWords() int64 { return int64(len(b.words)) }

// OrWordAt ORs w into word wi of the bitmap: bit j of w corresponds to
// position Start()+64*wi+j. It is the word-append primitive scan kernels use
// to emit 64 comparison results at a time straight into the final position
// representation. Bits beyond NBits must be zero in w.
func (b *Bitmap) OrWordAt(wi int64, w uint64) { b.words[wi] |= w }

// SetWordAt overwrites word wi of the bitmap with w. Bits beyond NBits must
// be zero in w.
func (b *Bitmap) SetWordAt(wi int64, w uint64) { b.words[wi] = w }

// Set marks position pos as present. pos must lie within the bitmap extent.
func (b *Bitmap) Set(pos int64) {
	i := pos - b.start
	if i < 0 || i >= b.nbits {
		panic(fmt.Sprintf("positions: Set(%d) outside bitmap %v", pos, b.Covering()))
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// SetRange marks every position in r as present. r must lie within the
// bitmap extent.
func (b *Bitmap) SetRange(r Range) {
	if r.Empty() {
		return
	}
	lo, hi := r.Start-b.start, r.End-b.start
	if lo < 0 || hi > b.nbits {
		panic(fmt.Sprintf("positions: SetRange(%v) outside bitmap [%d,%d)", r, b.start, b.start+b.nbits))
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if lw == hw {
		b.words[lw] |= loMask & hiMask
		return
	}
	b.words[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		b.words[w] = ^uint64(0)
	}
	b.words[hw] |= hiMask
}

// Kind returns KindBitmap.
func (b *Bitmap) Kind() Kind { return KindBitmap }

// Count popcounts the words.
func (b *Bitmap) Count() int64 {
	var n int
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return int64(n)
}

// Covering returns the extent of the bitmap (not the min/max set bit): the
// paper's position descriptor semantics, where the covering range is a
// property of the chunk, not of which bits happen to be set.
func (b *Bitmap) Covering() Range { return Range{b.start, b.start + b.nbits} }

// Contains tests a single bit.
func (b *Bitmap) Contains(pos int64) bool {
	i := pos - b.start
	if i < 0 || i >= b.nbits {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Runs iterates maximal runs of set bits.
func (b *Bitmap) Runs() *RunIter { return &RunIter{bm: b, bmPos: 0} }

// Or sets every bit of o in b. The two bitmaps must have identical extents.
func (b *Bitmap) Or(o *Bitmap) {
	if b.start != o.start || b.nbits != o.nbits {
		panic("positions: Or on mismatched bitmaps")
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// AndWith clears every bit of b not present in o. Extents must match.
func (b *Bitmap) AndWith(o *Bitmap) {
	if b.start != o.start || b.nbits != o.nbits {
		panic("positions: AndWith on mismatched bitmaps")
	}
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// Clone returns a deep copy of b.
func (b *Bitmap) Clone() *Bitmap {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &Bitmap{start: b.start, nbits: b.nbits, words: words}
}

// RunIter iterates over maximal runs of consecutive positions in a Set, in
// ascending order. It is the single iteration abstraction shared by all
// representations, which keeps RLE-friendly operators representation-blind.
type RunIter struct {
	ranges Ranges
	ri     int

	list List
	li   int

	bm    *Bitmap
	bmPos int64
}

// Next returns the next run and true, or a zero Range and false when the
// iterator is exhausted.
func (it *RunIter) Next() (Range, bool) {
	switch {
	case it.ranges != nil:
		if it.ri >= len(it.ranges) {
			return Range{}, false
		}
		r := it.ranges[it.ri]
		it.ri++
		return r, true
	case it.list != nil:
		if it.li >= len(it.list) {
			return Range{}, false
		}
		start := it.list[it.li]
		end := start + 1
		it.li++
		for it.li < len(it.list) && it.list[it.li] == end {
			end++
			it.li++
		}
		return Range{start, end}, true
	case it.bm != nil:
		return it.nextBitmapRun()
	default:
		return Range{}, false
	}
}

func (it *RunIter) nextBitmapRun() (Range, bool) {
	b := it.bm
	i := it.bmPos
	// Find the next set bit at or after i.
	for i < b.nbits {
		w := b.words[i>>6] >> uint(i&63)
		if w == 0 {
			i = (i>>6 + 1) << 6
			continue
		}
		i += int64(bits.TrailingZeros64(w))
		break
	}
	if i >= b.nbits {
		it.bmPos = b.nbits
		return Range{}, false
	}
	start := i
	// Find the next clear bit after start. The complement of a shifted word
	// has artificial set bits above the valid region, so mask those off
	// before testing.
	for i < b.nbits {
		nw := ^(b.words[i>>6] >> uint(i&63))
		if valid := 64 - i&63; valid < 64 {
			nw &= (1 << uint(valid)) - 1
		}
		if nw == 0 {
			i = (i>>6 + 1) << 6
			continue
		}
		i += int64(bits.TrailingZeros64(nw))
		break
	}
	if i > b.nbits {
		i = b.nbits
	}
	it.bmPos = i
	return Range{b.start + start, b.start + i}, true
}

// Slice materializes every position in s into a []int64, mainly for tests
// and small result sets.
func Slice(s Set) []int64 {
	out := make([]int64, 0, s.Count())
	it := s.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		for p := r.Start; p < r.End; p++ {
			out = append(out, p)
		}
	}
}
