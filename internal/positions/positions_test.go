package positions

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestRangeBasics(t *testing.T) {
	r := Range{10, 20}
	if got := r.Len(); got != 10 {
		t.Errorf("Len = %d, want 10", got)
	}
	if r.Empty() {
		t.Error("non-empty range reported empty")
	}
	if !r.Contains(10) || r.Contains(20) || r.Contains(9) {
		t.Error("Contains wrong at boundaries")
	}
	if (Range{5, 5}).Len() != 0 || !(Range{7, 3}).Empty() {
		t.Error("degenerate ranges mishandled")
	}
	if got := (Range{0, 10}).Intersect(Range{5, 15}); got != (Range{5, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := (Range{0, 10}).Intersect(Range{20, 30}); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	if got := (Range{0, 5}).Union(Range{10, 20}); got != (Range{0, 20}) {
		t.Errorf("Union = %v", got)
	}
	if got := (Range{}).Union(Range{3, 4}); got != (Range{3, 4}) {
		t.Errorf("Union with empty = %v", got)
	}
}

func TestEmptySet(t *testing.T) {
	var e Empty
	if e.Count() != 0 || e.Contains(0) || e.Kind() != KindEmpty {
		t.Error("Empty set misbehaves")
	}
	if _, ok := e.Runs().Next(); ok {
		t.Error("Empty runs iterator yielded a run")
	}
}

func TestNewRangesCoalesce(t *testing.T) {
	rs := NewRanges(Range{5, 10}, Range{0, 3}, Range{3, 5}, Range{20, 20}, Range{8, 12})
	want := Ranges{{0, 12}}
	if !reflect.DeepEqual(rs, want) {
		t.Errorf("NewRanges = %v, want %v", rs, want)
	}
	if rs.Count() != 12 {
		t.Errorf("Count = %d, want 12", rs.Count())
	}
}

func TestRangesContains(t *testing.T) {
	rs := NewRanges(Range{0, 5}, Range{10, 15})
	for _, tc := range []struct {
		pos  int64
		want bool
	}{{0, true}, {4, true}, {5, false}, {9, false}, {10, true}, {14, true}, {15, false}, {-1, false}} {
		if got := rs.Contains(tc.pos); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.pos, got, tc.want)
		}
	}
	if got := rs.Covering(); got != (Range{0, 15}) {
		t.Errorf("Covering = %v", got)
	}
}

func TestListBasics(t *testing.T) {
	l := NewList(5, 3, 3, 9, 1)
	want := List{1, 3, 5, 9}
	if !reflect.DeepEqual(l, want) {
		t.Errorf("NewList = %v, want %v", l, want)
	}
	if !l.Contains(5) || l.Contains(4) {
		t.Error("List.Contains wrong")
	}
	if l.Covering() != (Range{1, 10}) {
		t.Errorf("Covering = %v", l.Covering())
	}
}

func TestListRunsCoalesce(t *testing.T) {
	l := List{1, 2, 3, 7, 9, 10}
	it := l.Runs()
	var got []Range
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	want := []Range{{1, 4}, {7, 8}, {9, 11}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("runs = %v, want %v", got, want)
	}
}

func TestBitmapSetAndRuns(t *testing.T) {
	b := NewBitmap(64, 200)
	b.Set(64)
	b.Set(65)
	b.SetRange(Range{100, 140})
	b.Set(263)
	if !b.Contains(64) || !b.Contains(139) || b.Contains(140) || b.Contains(66) {
		t.Error("bitmap membership wrong")
	}
	if got := b.Count(); got != 43 {
		t.Errorf("Count = %d, want 43", got)
	}
	var got []Range
	it := b.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	want := []Range{{64, 66}, {100, 140}, {263, 264}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("runs = %v, want %v", got, want)
	}
}

func TestBitmapSetRangeWordSpanning(t *testing.T) {
	b := NewBitmap(0, 256)
	b.SetRange(Range{60, 200})
	if got := b.Count(); got != 140 {
		t.Errorf("Count = %d, want 140", got)
	}
	for p := int64(0); p < 256; p++ {
		want := p >= 60 && p < 200
		if b.Contains(p) != want {
			t.Fatalf("Contains(%d) = %v, want %v", p, b.Contains(p), want)
		}
	}
}

func TestBitmapOrAnd(t *testing.T) {
	a := NewBitmap(0, 128)
	a.SetRange(Range{0, 64})
	b := NewBitmap(0, 128)
	b.SetRange(Range{32, 96})
	c := a.Clone()
	c.Or(b)
	if c.Count() != 96 {
		t.Errorf("Or count = %d, want 96", c.Count())
	}
	a.AndWith(b)
	if a.Count() != 32 {
		t.Errorf("And count = %d, want 32", a.Count())
	}
	if !a.Contains(32) || !a.Contains(63) || a.Contains(64) || a.Contains(31) {
		t.Error("And bits wrong")
	}
}

func TestBitmapAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unaligned bitmap start")
		}
	}()
	NewBitmap(3, 10)
}

func TestAndRangesRanges(t *testing.T) {
	a := NewRanges(Range{0, 10}, Range{20, 30})
	b := NewRanges(Range{5, 25})
	got := And(a, b)
	if got.Kind() != KindRanges {
		t.Fatalf("kind = %v, want ranges (paper AND case 1)", got.Kind())
	}
	want := Ranges{{5, 10}, {20, 25}}
	if !reflect.DeepEqual(ToRanges(got), want) {
		t.Errorf("And = %v, want %v", got, want)
	}
}

func TestAndBitmapBitmapAligned(t *testing.T) {
	a := NewBitmap(0, 256)
	a.SetRange(Range{0, 100})
	b := NewBitmap(0, 256)
	b.SetRange(Range{50, 150})
	got := And(a, b)
	if got.Kind() != KindBitmap {
		t.Fatalf("kind = %v, want bitmap (paper AND case 2)", got.Kind())
	}
	if !Equal(got, NewRanges(Range{50, 100})) {
		t.Errorf("And = %v", Slice(got))
	}
}

func TestAndBitmapBitmapMisaligned(t *testing.T) {
	a := NewBitmap(0, 512)
	a.SetRange(Range{10, 500})
	b := NewBitmap(128, 512)
	b.SetRange(Range{130, 600})
	got := And(a, b)
	if !Equal(got, NewRanges(Range{130, 500})) {
		t.Errorf("And = %v", Slice(got))
	}
}

func TestAndRangeBitmap(t *testing.T) {
	rs := NewRanges(Range{10, 80}, Range{100, 120})
	bm := NewBitmap(0, 192)
	for p := int64(0); p < 192; p += 2 {
		bm.Set(p)
	}
	got := And(rs, bm)
	if got.Kind() != KindBitmap {
		t.Fatalf("kind = %v, want bitmap (paper AND case 3)", got.Kind())
	}
	for p := int64(0); p < 192; p++ {
		want := p%2 == 0 && (p >= 10 && p < 80 || p >= 100 && p < 120)
		if got.Contains(p) != want {
			t.Fatalf("Contains(%d) = %v, want %v", p, got.Contains(p), want)
		}
	}
}

func TestAndLists(t *testing.T) {
	got := And(List{1, 3, 5, 7}, List{3, 4, 5, 9})
	if !reflect.DeepEqual(ToList(got), List{3, 5}) {
		t.Errorf("And = %v", got)
	}
}

func TestAndMixedListRanges(t *testing.T) {
	got := And(NewRanges(Range{0, 5}), List{2, 4, 8})
	if !reflect.DeepEqual(ToList(got), List{2, 4}) {
		t.Errorf("And = %v", got)
	}
	got = And(List{2, 4, 8}, NewRanges(Range{0, 5}))
	if !reflect.DeepEqual(ToList(got), List{2, 4}) {
		t.Errorf("And (swapped) = %v", got)
	}
}

func TestAndEmptyOperands(t *testing.T) {
	if And(Empty{}, NewRanges(Range{0, 5})).Kind() != KindEmpty {
		t.Error("And with empty not empty")
	}
	if And(NewRanges(Range{0, 5}), NewRanges(Range{10, 20})).Kind() != KindEmpty {
		t.Error("And of disjoint ranges not empty")
	}
}

func TestAndAllThreeWay(t *testing.T) {
	a := NewRanges(Range{0, 100})
	b := ToBitmap(NewRanges(Range{50, 150}), Range{0, 192})
	c := List{40, 60, 70, 160}
	got := AndAll(a, b, c)
	if !reflect.DeepEqual(ToList(got), List{60, 70}) {
		t.Errorf("AndAll = %v", Slice(got))
	}
}

func TestAndAllEdge(t *testing.T) {
	if AndAll().Kind() != KindEmpty {
		t.Error("AndAll() not empty")
	}
	s := NewRanges(Range{1, 4})
	if !Equal(AndAll(s), s) {
		t.Error("AndAll single operand changed set")
	}
	if AndAll(s, Empty{}).Kind() != KindEmpty {
		t.Error("AndAll with empty operand not empty")
	}
}

func TestBuilderRepresentationChoice(t *testing.T) {
	// Long runs -> ranges.
	b := NewBuilder(Range{0, 1024})
	b.AddRange(Range{0, 100})
	b.AddRange(Range{200, 300})
	if got := b.Build(); got.Kind() != KindRanges {
		t.Errorf("long runs -> %v, want ranges", got.Kind())
	}
	// Sparse singletons -> list.
	b = NewBuilder(Range{0, 1024})
	for p := int64(0); p < 40; p += 7 {
		b.Add(p)
	}
	if got := b.Build(); got.Kind() != KindList {
		t.Errorf("sparse singletons -> %v, want list", got.Kind())
	}
	// Forced bitmap.
	b = NewBuilder(Range{0, 1024})
	b.ForceBitmap()
	b.AddRange(Range{5, 600})
	got := b.Build()
	if got.Kind() != KindBitmap {
		t.Errorf("forced -> %v, want bitmap", got.Kind())
	}
	if got.Count() != 595 {
		t.Errorf("count = %d, want 595", got.Count())
	}
	// Empty.
	if got := NewBuilder(Range{0, 64}).Build(); got.Kind() != KindEmpty {
		t.Errorf("empty build -> %v", got.Kind())
	}
}

func TestBuilderCoalesces(t *testing.T) {
	b := NewBuilder(Range{0, 128})
	b.Add(3)
	b.Add(4)
	b.AddRange(Range{5, 9})
	b.AddRange(Range{7, 12})
	got := b.Build()
	if !Equal(got, NewRanges(Range{3, 12})) {
		t.Errorf("Build = %v", Slice(got))
	}
	if b.Count() != 9 {
		t.Errorf("Count = %d, want 9", b.Count())
	}
}

func TestConversionsRoundTrip(t *testing.T) {
	orig := NewRanges(Range{3, 9}, Range{64, 130}, Range{200, 201})
	bm := ToBitmap(orig, Range{0, 256})
	if !Equal(orig, bm) {
		t.Error("ranges->bitmap lost positions")
	}
	l := ToList(bm)
	if !Equal(l, orig) {
		t.Error("bitmap->list lost positions")
	}
	rs := ToRanges(l)
	if !reflect.DeepEqual(rs, orig) {
		t.Errorf("list->ranges = %v, want %v", rs, orig)
	}
}

func TestEqual(t *testing.T) {
	a := NewRanges(Range{0, 5})
	b := ToBitmap(a, Range{0, 64})
	if !Equal(a, b) {
		t.Error("equivalent sets reported unequal")
	}
	c := NewRanges(Range{0, 6})
	if Equal(a, c) {
		t.Error("different sets reported equal")
	}
	d := NewRanges(Range{0, 2}, Range{3, 6})
	if Equal(c, d) {
		t.Error("same count, different sets reported equal")
	}
}

func TestSlice(t *testing.T) {
	s := NewRanges(Range{2, 4}, Range{9, 10})
	if got := Slice(s); !reflect.DeepEqual(got, []int64{2, 3, 9}) {
		t.Errorf("Slice = %v", got)
	}
}

// randomSet builds a random position set over [0, n) in a random
// representation, returning both the Set and the reference boolean slice.
func randomSet(rng *rand.Rand, n int64) (Set, []bool) {
	ref := make([]bool, n)
	density := rng.Float64()
	for i := range ref {
		ref[i] = rng.Float64() < density
	}
	switch rng.Intn(3) {
	case 0:
		var b Builder
		for i := int64(0); i < n; i++ {
			if ref[i] {
				b.Add(i)
			}
		}
		s := b.Build()
		if rs, ok := s.(Ranges); ok {
			return rs, ref
		}
		return ToRanges(s), ref
	case 1:
		var l List
		for i := int64(0); i < n; i++ {
			if ref[i] {
				l = append(l, i)
			}
		}
		if len(l) == 0 {
			return Empty{}, ref
		}
		return l, ref
	default:
		bm := NewBitmap(0, n)
		for i := int64(0); i < n; i++ {
			if ref[i] {
				bm.Set(i)
			}
		}
		return bm, ref
	}
}

// TestAndPropertyRandom is a property test: And over any representation pair
// must agree with naive boolean intersection.
func TestAndPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 512
	for iter := 0; iter < 300; iter++ {
		a, aref := randomSet(rng, n)
		b, bref := randomSet(rng, n)
		got := And(a, b)
		for i := int64(0); i < n; i++ {
			want := aref[i] && bref[i]
			if got.Contains(i) != want {
				t.Fatalf("iter %d (%v×%v): Contains(%d) = %v, want %v",
					iter, a.Kind(), b.Kind(), i, got.Contains(i), want)
			}
		}
		var wantCount int64
		for i := int64(0); i < n; i++ {
			if aref[i] && bref[i] {
				wantCount++
			}
		}
		if got.Count() != wantCount {
			t.Fatalf("iter %d: Count = %d, want %d", iter, got.Count(), wantCount)
		}
	}
}

// TestRunsPropertyRandom checks that run iteration reproduces membership
// exactly for every representation.
func TestRunsPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 512
	for iter := 0; iter < 200; iter++ {
		s, ref := randomSet(rng, n)
		got := make([]bool, n)
		it := s.Runs()
		last := int64(-1)
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			if r.Start <= last {
				t.Fatalf("runs not strictly ascending/merged: %v after end %d", r, last)
			}
			last = r.End
			for p := r.Start; p < r.End; p++ {
				got[p] = true
			}
		}
		for i := int64(0); i < n; i++ {
			if got[i] != ref[i] {
				t.Fatalf("iter %d (%v): position %d mismatch", iter, s.Kind(), i)
			}
		}
	}
}

func TestAndAllPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 256
	for iter := 0; iter < 100; iter++ {
		k := 2 + rng.Intn(3)
		sets := make([]Set, k)
		refs := make([][]bool, k)
		for i := range sets {
			sets[i], refs[i] = randomSet(rng, n)
		}
		got := AndAll(sets...)
		for p := int64(0); p < n; p++ {
			want := true
			for _, ref := range refs {
				want = want && ref[p]
			}
			if got.Contains(p) != want {
				t.Fatalf("iter %d: position %d mismatch", iter, p)
			}
		}
	}
}
