package pred

// This file implements predicate compilation: turning a Predicate into a
// specialized tight-loop kernel with no per-value operator dispatch. The
// engine's scan loops previously called Predicate.Match — a 9-way switch —
// once per value; a compiled kernel hoists the switch out of the loop
// entirely and emits 64 comparison results at a time as one uint64 bitmap
// word, so filter output lands directly in the bit-string representation
// the position layer uses (MorphStore-style format-direct operators).

// Kernel is a compiled vectorized predicate. Calling k(vals, out) evaluates
// the predicate over vals and stores the results as a little-endian bitmap:
// bit i of out[i/64] is set iff vals[i] matches. out must hold at least
// (len(vals)+63)/64 words; exactly that many words are fully overwritten,
// with trailing bits of the last word zeroed.
type Kernel func(vals []int64, out []uint64)

// Matcher is a compiled scalar predicate: one branch per call, no operator
// switch. It is the right shape for gather-then-filter loops (DS4) and
// run-at-a-time kernels where values arrive one at a time.
type Matcher func(int64) bool

// Compile returns the vectorized kernel for p. The returned kernel is
// reusable and safe for concurrent use.
func Compile(p Predicate) Kernel {
	switch p.Op {
	case All:
		return kernelAll
	case None:
		return kernelNone
	case Lt:
		return kernelLt(p.A)
	case Le:
		if p.A == maxInt64 {
			return kernelAll
		}
		return kernelLt(p.A + 1) // v <= a  ⇔  v < a+1
	case Eq:
		return kernelEq(p.A)
	case Ne:
		return kernelNe(p.A)
	case Ge:
		return kernelGe(p.A)
	case Gt:
		if p.A == maxInt64 {
			return kernelNone
		}
		return kernelGe(p.A + 1) // v > a  ⇔  v >= a+1
	case Between:
		return kernelBetween(p.A, p.B)
	default:
		return kernelNone
	}
}

const (
	minInt64 = int64(-1) << 63
	maxInt64 = int64(^uint64(0) >> 1)
)

// The full-word loops below all share one shape: 64 values per output word,
// evaluated through four independent 16-bit accumulators. A single
// accumulator serializes on its own OR chain (~2.3 cycles/value measured);
// four independent chains recombined with three shift-ORs at the end let the
// CPU overlap compare/OR across lanes (~1.1 cycles/value), which is where
// the kernels' 2-5x win over the per-value dispatch loop comes from.

func kernelLt(a int64) Kernel {
	if a == minInt64 {
		return kernelNone // Lt(MinInt64) matches nothing
	}
	return func(vals []int64, out []uint64) {
		k := 0
		for len(vals) >= 64 {
			c := vals[:64:64]
			var w0, w1, w2, w3 uint64
			for j := 0; j < 16; j++ {
				if c[j] < a {
					w0 |= 1 << uint(j)
				}
				if c[16+j] < a {
					w1 |= 1 << uint(j)
				}
				if c[32+j] < a {
					w2 |= 1 << uint(j)
				}
				if c[48+j] < a {
					w3 |= 1 << uint(j)
				}
			}
			out[k] = w0 | w1<<16 | w2<<32 | w3<<48
			k++
			vals = vals[64:]
		}
		if len(vals) > 0 {
			var w uint64
			for j, v := range vals {
				if v < a {
					w |= 1 << uint(j)
				}
			}
			out[k] = w
		}
	}
}

func kernelGe(a int64) Kernel {
	return func(vals []int64, out []uint64) {
		k := 0
		for len(vals) >= 64 {
			c := vals[:64:64]
			var w0, w1, w2, w3 uint64
			for j := 0; j < 16; j++ {
				if c[j] >= a {
					w0 |= 1 << uint(j)
				}
				if c[16+j] >= a {
					w1 |= 1 << uint(j)
				}
				if c[32+j] >= a {
					w2 |= 1 << uint(j)
				}
				if c[48+j] >= a {
					w3 |= 1 << uint(j)
				}
			}
			out[k] = w0 | w1<<16 | w2<<32 | w3<<48
			k++
			vals = vals[64:]
		}
		if len(vals) > 0 {
			var w uint64
			for j, v := range vals {
				if v >= a {
					w |= 1 << uint(j)
				}
			}
			out[k] = w
		}
	}
}

func kernelEq(a int64) Kernel {
	return func(vals []int64, out []uint64) {
		k := 0
		for len(vals) >= 64 {
			c := vals[:64:64]
			var w0, w1, w2, w3 uint64
			for j := 0; j < 16; j++ {
				if c[j] == a {
					w0 |= 1 << uint(j)
				}
				if c[16+j] == a {
					w1 |= 1 << uint(j)
				}
				if c[32+j] == a {
					w2 |= 1 << uint(j)
				}
				if c[48+j] == a {
					w3 |= 1 << uint(j)
				}
			}
			out[k] = w0 | w1<<16 | w2<<32 | w3<<48
			k++
			vals = vals[64:]
		}
		if len(vals) > 0 {
			var w uint64
			for j, v := range vals {
				if v == a {
					w |= 1 << uint(j)
				}
			}
			out[k] = w
		}
	}
}

func kernelNe(a int64) Kernel {
	return func(vals []int64, out []uint64) {
		k := 0
		for len(vals) >= 64 {
			c := vals[:64:64]
			var w0, w1, w2, w3 uint64
			for j := 0; j < 16; j++ {
				if c[j] != a {
					w0 |= 1 << uint(j)
				}
				if c[16+j] != a {
					w1 |= 1 << uint(j)
				}
				if c[32+j] != a {
					w2 |= 1 << uint(j)
				}
				if c[48+j] != a {
					w3 |= 1 << uint(j)
				}
			}
			out[k] = w0 | w1<<16 | w2<<32 | w3<<48
			k++
			vals = vals[64:]
		}
		if len(vals) > 0 {
			var w uint64
			for j, v := range vals {
				if v != a {
					w |= 1 << uint(j)
				}
			}
			out[k] = w
		}
	}
}

func kernelBetween(a, b int64) Kernel {
	if b <= a {
		return kernelNone // empty interval
	}
	// a <= v < b as ONE unsigned compare: XOR-ing the sign bit maps int64
	// order onto uint64 order, so v lies in [a, b) iff u(v)-u(a) < u(b)-u(a)
	// (out-of-range v wraps the subtraction past the span). The compound
	// `v >= a && v < b` costs two data-dependent branches per value — ~3x
	// slower on random data than the single-compare kernels; this form is a
	// single compare like them.
	const sign = uint64(1) << 63
	ua := uint64(a) ^ sign
	span := (uint64(b) ^ sign) - ua
	return func(vals []int64, out []uint64) {
		k := 0
		for len(vals) >= 64 {
			c := vals[:64:64]
			var w0, w1, w2, w3 uint64
			for j := 0; j < 16; j++ {
				if (uint64(c[j])^sign)-ua < span {
					w0 |= 1 << uint(j)
				}
				if (uint64(c[16+j])^sign)-ua < span {
					w1 |= 1 << uint(j)
				}
				if (uint64(c[32+j])^sign)-ua < span {
					w2 |= 1 << uint(j)
				}
				if (uint64(c[48+j])^sign)-ua < span {
					w3 |= 1 << uint(j)
				}
			}
			out[k] = w0 | w1<<16 | w2<<32 | w3<<48
			k++
			vals = vals[64:]
		}
		if len(vals) > 0 {
			var w uint64
			for j, v := range vals {
				if (uint64(v)^sign)-ua < span {
					w |= 1 << uint(j)
				}
			}
			out[k] = w
		}
	}
}

func kernelAll(vals []int64, out []uint64) {
	n := len(vals)
	k := 0
	for ; n >= 64; n -= 64 {
		out[k] = ^uint64(0)
		k++
	}
	if n > 0 {
		out[k] = (1 << uint(n)) - 1
	}
}

func kernelNone(vals []int64, out []uint64) {
	for k := 0; k < (len(vals)+63)/64; k++ {
		out[k] = 0
	}
}

// CompileMatcher returns the scalar compiled form of p.
func CompileMatcher(p Predicate) Matcher {
	switch p.Op {
	case All:
		return func(int64) bool { return true }
	case Lt:
		a := p.A
		return func(v int64) bool { return v < a }
	case Le:
		a := p.A
		return func(v int64) bool { return v <= a }
	case Eq:
		a := p.A
		return func(v int64) bool { return v == a }
	case Ne:
		a := p.A
		return func(v int64) bool { return v != a }
	case Ge:
		a := p.A
		return func(v int64) bool { return v >= a }
	case Gt:
		a := p.A
		return func(v int64) bool { return v > a }
	case Between:
		a, b := p.A, p.B
		return func(v int64) bool { return v >= a && v < b }
	default:
		return func(int64) bool { return false }
	}
}

// Interval returns the closed accepted value interval [lo, hi] of an
// interval-shaped predicate, or ok=false for predicates whose accepted set
// is not a single contiguous interval (Ne, None, and degenerate empty
// intervals). It powers run-at-a-time kernels over RLE data, the contiguous
// distinct-value range lookup over bit-vector data, and the storage layer's
// zone-map skipping.
func (p Predicate) Interval() (lo, hi int64, ok bool) {
	switch p.Op {
	case All:
		return minInt64, maxInt64, true
	case Lt:
		if p.A == minInt64 { // empty interval; avoid underflow
			return 0, 0, false
		}
		return minInt64, p.A - 1, true
	case Le:
		return minInt64, p.A, true
	case Eq:
		return p.A, p.A, true
	case Ge:
		return p.A, maxInt64, true
	case Gt:
		if p.A == maxInt64 { // empty interval; avoid overflow
			return 0, 0, false
		}
		return p.A + 1, maxInt64, true
	case Between:
		if p.B == minInt64 {
			return 0, 0, false
		}
		return p.A, p.B - 1, true
	default:
		return 0, 0, false
	}
}
