package pred

import (
	"math/rand"
	"testing"
)

// compilePreds enumerates predicates across every op, including the integer
// boundary constants where the compiled rewrites (Le→Lt, Gt→Ge) could wrap.
func compilePreds() []Predicate {
	consts := []int64{minInt64, minInt64 + 1, -100, -1, 0, 1, 3, 100, maxInt64 - 1, maxInt64}
	preds := []Predicate{MatchAll, {Op: None}}
	for _, a := range consts {
		for _, op := range []Op{Lt, Le, Eq, Ne, Ge, Gt} {
			preds = append(preds, Predicate{Op: op, A: a})
		}
		for _, b := range consts {
			preds = append(preds, Predicate{Op: Between, A: a, B: b})
		}
	}
	return preds
}

func compileVals(rng *rand.Rand, n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		switch rng.Intn(4) {
		case 0:
			vals[i] = rng.Int63n(7) - 3 // small values near the test constants
		case 1:
			vals[i] = []int64{minInt64, minInt64 + 1, maxInt64 - 1, maxInt64, 100, -100}[rng.Intn(6)]
		default:
			vals[i] = rng.Int63() - rng.Int63()
		}
	}
	return vals
}

// TestCompileKernelMatchesScalar checks bit-for-bit agreement between the
// compiled word kernel and the interpreted Predicate.Match, across vector
// lengths that exercise the full-word loop, the partial tail, and the empty
// input.
func TestCompileKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200, 1024} {
		vals := compileVals(rng, n)
		out := make([]uint64, (n+63)/64+1)
		for _, p := range compilePreds() {
			for i := range out {
				out[i] = ^uint64(0) // poison: kernels must overwrite their words
			}
			k := Compile(p)
			k(vals, out)
			for i, v := range vals {
				want := p.Match(v)
				got := out[i/64]&(1<<uint(i%64)) != 0
				if got != want {
					t.Fatalf("n=%d pred=%v vals[%d]=%d: kernel=%v match=%v", n, p, i, v, got, want)
				}
			}
			// Trailing bits of the last written word must be zero.
			if n%64 != 0 {
				if hi := out[n/64] >> uint(n%64); hi != 0 {
					t.Fatalf("n=%d pred=%v: trailing bits set: %#x", n, p, hi)
				}
			}
			// The word beyond the kernel's output region must be untouched.
			if nw := (n + 63) / 64; out[nw] != ^uint64(0) {
				t.Fatalf("n=%d pred=%v: kernel wrote past its output region", n, p)
			}
		}
	}
}

// TestCompileMatcherMatchesScalar checks the scalar compiled form.
func TestCompileMatcherMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	vals := compileVals(rng, 512)
	for _, p := range compilePreds() {
		m := CompileMatcher(p)
		for _, v := range vals {
			if m(v) != p.Match(v) {
				t.Fatalf("pred=%v v=%d: matcher=%v match=%v", p, v, m(v), p.Match(v))
			}
		}
	}
}

// TestIntervalMatchesScalar checks that the accepted interval, when one
// exists, agrees with Match at and around its endpoints, and that
// non-interval predicates are reported as such.
func TestIntervalMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	vals := compileVals(rng, 512)
	for _, p := range compilePreds() {
		lo, hi, ok := p.Interval()
		if !ok {
			if p.Op != Ne && p.Op != None {
				// The only inherently non-interval ops are Ne and None;
				// everything else may opt out only when its accepted set is
				// empty (wrap guards), in which case Match must reject all.
				for _, v := range vals {
					if p.Match(v) {
						t.Fatalf("pred=%v: no interval but Match(%d)=true", p, v)
					}
				}
			}
			continue
		}
		for _, v := range vals {
			if in := v >= lo && v <= hi; in != p.Match(v) {
				t.Fatalf("pred=%v interval=[%d,%d] v=%d: interval=%v match=%v", p, lo, hi, v, in, p.Match(v))
			}
		}
	}
}
