package pred

// This file implements multi-predicate fusion: evaluating a conjunction of
// k SARGable predicates over the same column in a single pass over the data.
// Without fusion, k predicates over one column cost k scans producing k
// position bitmaps that are then ANDed; a fused kernel loads each value once,
// evaluates every predicate, and ANDs the comparison words in registers, so
// no intermediate bitmap is ever materialized.
//
// Fusion happens in two stages. SimplifyConj first reduces the conjunction
// algebraically: every interval-shaped predicate (Lt/Le/Eq/Ge/Gt/Between/All)
// intersects into a single interval, so the common case — a range query
// written as two half-bounds — collapses to ONE compiled kernel, which is the
// biggest win available. Only non-interval residue (Ne) keeps the conjunction
// k-ary, and CompileFused then composes the compiled kernels tile-at-a-time:
// values stream through all k kernels while they sit in L1, and the result
// words are ANDed on the stack.

// fusedTileVals is the number of values a fused kernel pushes through all
// member kernels before advancing: 2048 values (16KB) keep the tile resident
// in L1 across the k passes, and the 32 result words of the scratch tile live
// on the stack.
const fusedTileVals = 2048

// SimplifyConj reduces a predicate conjunction to a minimal equivalent list:
// interval-shaped predicates are intersected into at most one predicate,
// trivial conjuncts are dropped, Ne conjuncts at the interval boundary shrink
// the interval, and any contradiction collapses to a single None. The result
// is never empty and preserves the conjunction's exact accepted set.
func SimplifyConj(ps []Predicate) []Predicate {
	none := []Predicate{{Op: None}}
	lo, hi := minInt64, maxInt64
	var nes []int64
	for _, p := range ps {
		if p.Op == All {
			continue
		}
		if p.Op == Ne {
			nes = append(nes, p.A)
			continue
		}
		l, h, ok := p.Interval()
		if !ok {
			// None, or a degenerate empty interval (Lt minInt64 etc).
			return none
		}
		if l > lo {
			lo = l
		}
		if h < hi {
			hi = h
		}
	}
	if lo > hi {
		return none
	}
	// Ne conjuncts at the interval boundary shrink the interval; iterate to a
	// fixed point so chains like [3,5] != 3 != 4 collapse fully.
	for changed := true; changed; {
		changed = false
		for i, a := range nes {
			if a == lo {
				if lo == maxInt64 {
					return none
				}
				lo++
				nes[i] = nes[len(nes)-1]
				nes = nes[:len(nes)-1]
				changed = true
				break
			}
			if a == hi {
				if hi == minInt64 {
					return none
				}
				hi--
				nes[i] = nes[len(nes)-1]
				nes = nes[:len(nes)-1]
				changed = true
				break
			}
		}
		if lo > hi {
			return none
		}
	}
	var out []Predicate
	if p, ok := intervalPredicate(lo, hi); ok {
		out = append(out, p)
	}
	for _, a := range nes {
		if a < lo || a > hi {
			continue // vacuously true given the interval
		}
		out = append(out, NotEquals(a))
	}
	if len(out) == 0 {
		return []Predicate{MatchAll}
	}
	return out
}

// intervalPredicate returns the canonical predicate accepting exactly
// [lo, hi], or ok=false when the interval is unbounded on both sides (i.e.
// the predicate would be All and can be dropped).
func intervalPredicate(lo, hi int64) (Predicate, bool) {
	switch {
	case lo == minInt64 && hi == maxInt64:
		return Predicate{}, false
	case lo == hi:
		return Equals(lo), true
	case lo == minInt64:
		return AtMost(hi), true
	case hi == maxInt64:
		return AtLeast(lo), true
	default:
		return InRange(lo, hi+1), true // hi < maxInt64 here, no overflow
	}
}

// CompileFused returns one vectorized kernel evaluating the conjunction of
// ps in a single pass. After algebraic simplification the common interval
// conjunction compiles to a single ordinary kernel; a residual k-ary
// conjunction streams tiles of values through the k member kernels while the
// tile is L1-resident, AND-ing the comparison words on the stack — no
// per-predicate bitmap is materialized. The returned kernel follows the
// Kernel contract (fully overwrites its output words) and is safe for
// concurrent use.
func CompileFused(ps []Predicate) Kernel {
	ps = SimplifyConj(ps)
	if len(ps) == 1 {
		return Compile(ps[0])
	}
	ks := make([]Kernel, len(ps))
	for i, p := range ps {
		ks[i] = Compile(p)
	}
	return func(vals []int64, out []uint64) {
		var tmp [fusedTileVals / 64]uint64
		k := 0
		for len(vals) > 0 {
			n := len(vals)
			if n > fusedTileVals {
				n = fusedTileVals
			}
			nw := (n + 63) / 64
			ks[0](vals[:n], out[k:k+nw])
			for _, kr := range ks[1:] {
				kr(vals[:n], tmp[:nw])
				for i, w := range tmp[:nw] {
					out[k+i] &= w
				}
			}
			vals = vals[n:]
			k += nw
		}
	}
}

// CompileFusedMatcher returns the scalar compiled form of the conjunction of
// ps: one call evaluates all k predicates (short-circuiting), for
// gather-then-filter loops and sparse position filtering.
func CompileFusedMatcher(ps []Predicate) Matcher {
	ps = SimplifyConj(ps)
	if len(ps) == 1 {
		return CompileMatcher(ps[0])
	}
	if len(ps) == 2 {
		a, b := CompileMatcher(ps[0]), CompileMatcher(ps[1])
		return func(v int64) bool { return a(v) && b(v) }
	}
	ms := make([]Matcher, len(ps))
	for i, p := range ps {
		ms[i] = CompileMatcher(p)
	}
	return func(v int64) bool {
		for _, m := range ms {
			if !m(v) {
				return false
			}
		}
		return true
	}
}

// MatchConj reports whether v satisfies every predicate in ps (the scalar
// reference for the fused paths).
func MatchConj(ps []Predicate, v int64) bool {
	for _, p := range ps {
		if !p.Match(v) {
			return false
		}
	}
	return true
}
