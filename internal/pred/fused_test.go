package pred

import (
	"math/rand"
	"testing"
)

// randPred draws a predicate over roughly [0, 100), including boundary and
// out-of-domain constants and every operator.
func randPred(rng *rand.Rand) Predicate {
	a := rng.Int63n(104) - 2
	b := rng.Int63n(104) - 2
	switch rng.Intn(9) {
	case 0:
		return MatchAll
	case 1:
		return LessThan(a)
	case 2:
		return AtMost(a)
	case 3:
		return Equals(a)
	case 4:
		return NotEquals(a)
	case 5:
		return AtLeast(a)
	case 6:
		return GreaterThan(a)
	case 7:
		return InRange(a, b)
	default:
		return Predicate{Op: None}
	}
}

// TestSimplifyConjEquivalence: the simplified conjunction must accept exactly
// the same values as the original, over the whole relevant domain.
func TestSimplifyConjEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		k := 1 + rng.Intn(4)
		ps := make([]Predicate, k)
		for i := range ps {
			ps[i] = randPred(rng)
		}
		simp := SimplifyConj(ps)
		if len(simp) == 0 {
			t.Fatalf("SimplifyConj(%v) returned empty list", ps)
		}
		for v := int64(-3); v < 105; v++ {
			if got, want := MatchConj(simp, v), MatchConj(ps, v); got != want {
				t.Fatalf("SimplifyConj(%v) = %v: value %d got %v want %v", ps, simp, v, got, want)
			}
		}
	}
}

// TestSimplifyConjBoundaryShrink covers the Ne-at-boundary interval shrink
// and full collapse.
func TestSimplifyConjBoundaryShrink(t *testing.T) {
	cases := []struct {
		in   []Predicate
		want []Predicate
	}{
		{[]Predicate{AtLeast(3), AtMost(5), NotEquals(3), NotEquals(4)}, []Predicate{Equals(5)}},
		{[]Predicate{Equals(7), NotEquals(7)}, []Predicate{{Op: None}}},
		{[]Predicate{AtLeast(10), AtMost(5)}, []Predicate{{Op: None}}},
		{[]Predicate{GreaterThan(2), LessThan(10)}, []Predicate{InRange(3, 10)}},
		{[]Predicate{MatchAll, MatchAll}, []Predicate{MatchAll}},
		{[]Predicate{LessThan(10), NotEquals(50)}, []Predicate{AtMost(9)}},
	}
	for _, c := range cases {
		got := SimplifyConj(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SimplifyConj(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SimplifyConj(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// TestCompileFusedDifferential: the fused kernel must emit exactly the AND of
// the individual compiled kernels' bitmaps, for random conjunctions over
// random value slices whose lengths hit every tail and tile boundary.
func TestCompileFusedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	lengths := []int{0, 1, 63, 64, 65, 127, 1000, fusedTileVals - 1, fusedTileVals, fusedTileVals + 1, 3*fusedTileVals + 17}
	for iter := 0; iter < 60; iter++ {
		k := 1 + rng.Intn(4)
		ps := make([]Predicate, k)
		for i := range ps {
			ps[i] = randPred(rng)
		}
		fused := CompileFused(ps)
		n := lengths[iter%len(lengths)]
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(104) - 2
		}
		nw := (n + 63) / 64
		got := make([]uint64, nw)
		fused(vals, got)
		// Reference: AND of individually compiled kernels.
		want := make([]uint64, nw)
		tmp := make([]uint64, nw)
		for i, p := range ps {
			Compile(p)(vals, tmp)
			if i == 0 {
				copy(want, tmp)
			} else {
				for j := range want {
					want[j] &= tmp[j]
				}
			}
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("CompileFused(%v) n=%d word %d = %#x, want %#x", ps, n, j, got[j], want[j])
			}
		}
		// And against the scalar conjunction.
		for i, v := range vals {
			bit := got[i/64]>>(uint(i)%64)&1 == 1
			if bit != MatchConj(ps, v) {
				t.Fatalf("CompileFused(%v) vals[%d]=%d: bit %v, scalar %v", ps, i, v, bit, MatchConj(ps, v))
			}
		}
	}
}

// TestCompileFusedMatcher checks the scalar fused matcher against the
// reference conjunction.
func TestCompileFusedMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.Intn(4)
		ps := make([]Predicate, k)
		for i := range ps {
			ps[i] = randPred(rng)
		}
		m := CompileFusedMatcher(ps)
		for v := int64(-3); v < 105; v++ {
			if m(v) != MatchConj(ps, v) {
				t.Fatalf("CompileFusedMatcher(%v)(%d) = %v, want %v", ps, v, m(v), MatchConj(ps, v))
			}
		}
	}
}
