// Package pred implements the SARGable predicates accepted by every data
// source in the engine (Selinger et al.'s "search arguments", as referenced
// in Section 1.1 of the paper). A predicate is a simple comparison against
// one or two int64 constants, which is exactly the class of predicates the
// paper's data sources push into column scans.
package pred

import "fmt"

// Op is a comparison operator.
type Op uint8

const (
	// All matches every value (the absent-predicate case).
	All Op = iota
	// Lt matches v < A.
	Lt
	// Le matches v <= A.
	Le
	// Eq matches v == A.
	Eq
	// Ne matches v != A.
	Ne
	// Ge matches v >= A.
	Ge
	// Gt matches v > A.
	Gt
	// Between matches A <= v < B (half-open, matching position-range
	// conventions elsewhere in the engine).
	Between
	// None matches no value (useful for tests and degenerate plans).
	None
)

func (o Op) String() string {
	switch o {
	case All:
		return "all"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "!="
	case Ge:
		return ">="
	case Gt:
		return ">"
	case Between:
		return "between"
	case None:
		return "none"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Predicate is a SARGable single-column predicate. The zero Predicate
// matches every value.
type Predicate struct {
	Op Op
	A  int64
	B  int64 // upper bound for Between
}

// MatchAll is the predicate that accepts every value.
var MatchAll = Predicate{Op: All}

// LessThan returns the predicate v < a.
func LessThan(a int64) Predicate { return Predicate{Op: Lt, A: a} }

// AtMost returns the predicate v <= a.
func AtMost(a int64) Predicate { return Predicate{Op: Le, A: a} }

// Equals returns the predicate v == a.
func Equals(a int64) Predicate { return Predicate{Op: Eq, A: a} }

// NotEquals returns the predicate v != a.
func NotEquals(a int64) Predicate { return Predicate{Op: Ne, A: a} }

// AtLeast returns the predicate v >= a.
func AtLeast(a int64) Predicate { return Predicate{Op: Ge, A: a} }

// GreaterThan returns the predicate v > a.
func GreaterThan(a int64) Predicate { return Predicate{Op: Gt, A: a} }

// InRange returns the predicate a <= v < b.
func InRange(a, b int64) Predicate { return Predicate{Op: Between, A: a, B: b} }

// Match reports whether v satisfies p.
func (p Predicate) Match(v int64) bool {
	switch p.Op {
	case All:
		return true
	case Lt:
		return v < p.A
	case Le:
		return v <= p.A
	case Eq:
		return v == p.A
	case Ne:
		return v != p.A
	case Ge:
		return v >= p.A
	case Gt:
		return v > p.A
	case Between:
		return v >= p.A && v < p.B
	case None:
		return false
	default:
		return false
	}
}

// Trivial reports whether p matches everything.
func (p Predicate) Trivial() bool { return p.Op == All }

func (p Predicate) String() string {
	switch p.Op {
	case All:
		return "true"
	case None:
		return "false"
	case Between:
		return fmt.Sprintf("in [%d,%d)", p.A, p.B)
	default:
		return fmt.Sprintf("%s %d", p.Op, p.A)
	}
}

// Selectivity estimates the fraction of values in [lo, hi] (inclusive,
// assumed uniform) that satisfy p. It is the SF term of the paper's
// analytical model when column min/max statistics are available.
func (p Predicate) Selectivity(lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	n := float64(hi - lo + 1)
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	switch p.Op {
	case All:
		return 1
	case None:
		return 0
	case Lt:
		return clamp(float64(p.A-lo) / n)
	case Le:
		return clamp(float64(p.A-lo+1) / n)
	case Eq:
		if p.A < lo || p.A > hi {
			return 0
		}
		return 1 / n
	case Ne:
		if p.A < lo || p.A > hi {
			return 1
		}
		return clamp(1 - 1/n)
	case Ge:
		return clamp(float64(hi-p.A+1) / n)
	case Gt:
		return clamp(float64(hi-p.A) / n)
	case Between:
		lo2, hi2 := p.A, p.B-1
		if lo2 < lo {
			lo2 = lo
		}
		if hi2 > hi {
			hi2 = hi
		}
		if hi2 < lo2 {
			return 0
		}
		return clamp(float64(hi2-lo2+1) / n)
	default:
		return 0
	}
}
