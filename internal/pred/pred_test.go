package pred

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatch(t *testing.T) {
	for _, tc := range []struct {
		p    Predicate
		v    int64
		want bool
	}{
		{MatchAll, 123, true},
		{Predicate{}, -5, true}, // zero value matches all
		{LessThan(10), 9, true},
		{LessThan(10), 10, false},
		{AtMost(10), 10, true},
		{AtMost(10), 11, false},
		{Equals(7), 7, true},
		{Equals(7), 8, false},
		{Predicate{Op: Ne, A: 7}, 8, true},
		{Predicate{Op: Ne, A: 7}, 7, false},
		{AtLeast(3), 3, true},
		{AtLeast(3), 2, false},
		{GreaterThan(3), 4, true},
		{GreaterThan(3), 3, false},
		{InRange(5, 10), 5, true},
		{InRange(5, 10), 9, true},
		{InRange(5, 10), 10, false},
		{Predicate{Op: None}, 0, false},
	} {
		if got := tc.p.Match(tc.v); got != tc.want {
			t.Errorf("(%v).Match(%d) = %v, want %v", tc.p, tc.v, got, tc.want)
		}
	}
}

func TestTrivial(t *testing.T) {
	if !MatchAll.Trivial() || LessThan(3).Trivial() {
		t.Error("Trivial wrong")
	}
}

func TestSelectivityExact(t *testing.T) {
	// Domain [0, 99], 100 values.
	for _, tc := range []struct {
		p    Predicate
		want float64
	}{
		{MatchAll, 1},
		{Predicate{Op: None}, 0},
		{LessThan(50), 0.5},
		{LessThan(0), 0},
		{LessThan(1000), 1},
		{AtMost(49), 0.5},
		{Equals(3), 0.01},
		{Equals(-1), 0},
		{AtLeast(90), 0.1},
		{GreaterThan(89), 0.1},
		{InRange(10, 30), 0.2},
		{InRange(-10, 5), 0.05},
		{Predicate{Op: Ne, A: 5}, 0.99},
	} {
		if got := tc.p.Selectivity(0, 99); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("(%v).Selectivity = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := LessThan(5).Selectivity(10, 5); got != 0 {
		t.Errorf("inverted domain selectivity = %v", got)
	}
}

// TestSelectivityMatchesCountQuick verifies the selectivity estimate is the
// exact match fraction over a dense uniform domain.
func TestSelectivityMatchesCountQuick(t *testing.T) {
	f := func(op uint8, a int8) bool {
		p := Predicate{Op: Op(op % 7), A: int64(a)}
		if p.Op == Between {
			p.B = p.A + 10
		}
		lo, hi := int64(-50), int64(49)
		var matches int
		for v := lo; v <= hi; v++ {
			if p.Match(v) {
				matches++
			}
		}
		want := float64(matches) / 100
		return math.Abs(p.Selectivity(lo, hi)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	for _, tc := range []struct {
		p    Predicate
		want string
	}{
		{MatchAll, "true"},
		{Predicate{Op: None}, "false"},
		{LessThan(5), "< 5"},
		{InRange(1, 3), "in [1,3)"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}
