// Package rows defines the materialized-tuple containers exchanged by
// early-materialization operators and returned as query results. A Batch is
// a block of constructed tuples in columnar layout (position column plus one
// value column per materialized attribute) — the "intermediate tuple
// representation" that EM plans build up one attribute at a time.
package rows

import "fmt"

// Batch is a set of (partially) constructed tuples: Pos[i] is the original
// column position of tuple i, and Cols[c][i] its value for the c-th
// materialized attribute. Names[c] labels attribute c.
type Batch struct {
	Names []string
	Pos   []int64
	Cols  [][]int64
}

// NewBatch returns an empty batch with the given attribute names.
func NewBatch(names ...string) *Batch {
	return &Batch{Names: names, Cols: make([][]int64, len(names))}
}

// Len returns the number of tuples.
func (b *Batch) Len() int { return len(b.Pos) }

// Col returns the values of the named attribute.
func (b *Batch) Col(name string) ([]int64, error) {
	for i, n := range b.Names {
		if n == name {
			return b.Cols[i], nil
		}
	}
	return nil, fmt.Errorf("rows: batch has no column %q", name)
}

// HasCol reports whether the batch carries the named attribute.
func (b *Batch) HasCol(name string) bool {
	for _, n := range b.Names {
		if n == name {
			return true
		}
	}
	return false
}

// Append adds one tuple. vals must parallel Names.
func (b *Batch) Append(pos int64, vals ...int64) {
	if len(vals) != len(b.Cols) {
		panic(fmt.Sprintf("rows: Append got %d values, want %d", len(vals), len(b.Cols)))
	}
	b.Pos = append(b.Pos, pos)
	for i, v := range vals {
		b.Cols[i] = append(b.Cols[i], v)
	}
}

// Reset clears the batch for reuse, keeping capacity.
func (b *Batch) Reset() {
	b.Pos = b.Pos[:0]
	for i := range b.Cols {
		b.Cols[i] = b.Cols[i][:0]
	}
}

// Result is a completed query result in columnar layout.
type Result struct {
	Columns []string
	Cols    [][]int64
}

// NewResult allocates an empty result with the given output schema.
func NewResult(columns ...string) *Result {
	return &Result{Columns: columns, Cols: make([][]int64, len(columns))}
}

// NumRows returns the number of result tuples.
func (r *Result) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return len(r.Cols[0])
}

// Col returns the values of the named output column.
func (r *Result) Col(name string) ([]int64, error) {
	for i, n := range r.Columns {
		if n == name {
			return r.Cols[i], nil
		}
	}
	return nil, fmt.Errorf("rows: result has no column %q", name)
}

// Append concatenates another result with the same schema onto r — the
// rows-domain merge of the morsel-parallel executor. Partial results are
// appended in morsel order (ascending starting position), which reproduces
// the row order of a sequential scan.
func (r *Result) Append(o *Result) error {
	if len(o.Cols) != len(r.Cols) {
		return fmt.Errorf("rows: append arity %d, want %d", len(o.Cols), len(r.Cols))
	}
	for i, n := range o.Columns {
		if r.Columns[i] != n {
			return fmt.Errorf("rows: append column %d is %q, want %q", i, n, r.Columns[i])
		}
	}
	for i := range r.Cols {
		r.Cols[i] = append(r.Cols[i], o.Cols[i]...)
	}
	return nil
}

// Row materializes row i (mainly for tests and display).
func (r *Result) Row(i int) []int64 {
	out := make([]int64, len(r.Cols))
	for c := range r.Cols {
		out[c] = r.Cols[c][i]
	}
	return out
}

// AppendRow adds one output tuple.
func (r *Result) AppendRow(vals ...int64) {
	if len(vals) != len(r.Cols) {
		panic(fmt.Sprintf("rows: AppendRow got %d values, want %d", len(vals), len(r.Cols)))
	}
	for i, v := range vals {
		r.Cols[i] = append(r.Cols[i], v)
	}
}
