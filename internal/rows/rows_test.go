package rows

import (
	"reflect"
	"testing"
)

func TestBatchBasics(t *testing.T) {
	b := NewBatch("a", "b")
	if b.Len() != 0 {
		t.Fatal("new batch not empty")
	}
	b.Append(10, 1, 2)
	b.Append(20, 3, 4)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	av, err := b.Col("a")
	if err != nil || !reflect.DeepEqual(av, []int64{1, 3}) {
		t.Errorf("Col(a) = %v, %v", av, err)
	}
	bv, _ := b.Col("b")
	if !reflect.DeepEqual(bv, []int64{2, 4}) {
		t.Errorf("Col(b) = %v", bv)
	}
	if !reflect.DeepEqual(b.Pos, []int64{10, 20}) {
		t.Errorf("Pos = %v", b.Pos)
	}
	if !b.HasCol("a") || b.HasCol("z") {
		t.Error("HasCol wrong")
	}
	if _, err := b.Col("z"); err == nil {
		t.Error("missing column lookup succeeded")
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch("a")
	b.Append(1, 5)
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset left tuples")
	}
	b.Append(2, 7)
	v, _ := b.Col("a")
	if !reflect.DeepEqual(v, []int64{7}) {
		t.Errorf("after reset+append: %v", v)
	}
}

func TestBatchAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong arity accepted")
		}
	}()
	NewBatch("a", "b").Append(0, 1)
}

func TestResultBasics(t *testing.T) {
	r := NewResult("x", "y")
	if r.NumRows() != 0 {
		t.Fatal("new result not empty")
	}
	r.AppendRow(1, 2)
	r.AppendRow(3, 4)
	if r.NumRows() != 2 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	if !reflect.DeepEqual(r.Row(1), []int64{3, 4}) {
		t.Errorf("Row(1) = %v", r.Row(1))
	}
	x, err := r.Col("x")
	if err != nil || !reflect.DeepEqual(x, []int64{1, 3}) {
		t.Errorf("Col(x) = %v, %v", x, err)
	}
	if _, err := r.Col("nope"); err == nil {
		t.Error("missing column lookup succeeded")
	}
}

func TestResultZeroColumns(t *testing.T) {
	r := NewResult()
	if r.NumRows() != 0 {
		t.Error("zero-column result rows != 0")
	}
}

func TestResultAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong arity accepted")
		}
	}()
	NewResult("x").AppendRow(1, 2)
}

func TestResultAppendResult(t *testing.T) {
	a := NewResult("x", "y")
	a.AppendRow(1, 10)
	a.AppendRow(2, 20)
	b := NewResult("x", "y")
	b.AppendRow(3, 30)
	if err := a.Append(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 3 || a.Cols[0][2] != 3 || a.Cols[1][2] != 30 {
		t.Errorf("after Append: %+v", a)
	}
	// Appending an empty partial is a no-op.
	if err := a.Append(NewResult("x", "y")); err != nil || a.NumRows() != 3 {
		t.Errorf("empty append: rows=%d err=%v", a.NumRows(), err)
	}
}

func TestResultAppendSchemaMismatch(t *testing.T) {
	a := NewResult("x", "y")
	if err := a.Append(NewResult("x")); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := a.Append(NewResult("x", "z")); err == nil {
		t.Error("column-name mismatch accepted")
	}
}
