package service

import (
	"context"
	"math"
	"sync"
	"time"

	"matstore/internal/exec"
)

// The governor is the service's admission controller and worker-budget
// arbiter. Admission bounds how many requests are in flight at once
// (requests past the limit queue FIFO-ish on the monitor); the worker
// budget is the global exec pool allowance divided across the in-flight
// queries. Each admitted query is granted a derated parallelism which it
// passes to plan.Plan.Run as the morsel worker count; the grant is clamped
// so the sum of grants NEVER exceeds the budget. A query that cannot get
// even one worker waits for a release, so P concurrent queries never
// oversubscribe the pool.
//
// Grant sizing is workload-aware: when the caller supplies the analytical
// model's cost estimate, the desired width is ceil(cost / GrantSliceMicros)
// — a predicted-big scan asks for many workers, a point lookup for one —
// clamped to [1, budget]. Without an estimate the desired width falls back
// to the uniform fair share of the budget. Either way the final grant is
// min(requested, desired, workers free), which is what keeps the sum of
// grants provably within the budget.
type governor struct {
	mu   sync.Mutex
	cond *sync.Cond

	slots  int // remaining admission slots
	budget int // global worker budget
	inUse  int // workers currently granted
	// inflight counts admitted queries (holding or awaiting workers) — the
	// denominator of the fair-share fallback.
	inflight int
	// sliceUS is the modeled-µs-per-worker slice of cost-aware grant sizing
	// (<= 0 disables it; the fair share is used for every request).
	sliceUS float64

	// Counters (guarded by mu; snapshot via snapshot()).
	admitted, completed, aborted int64
	queuedAdmission              int64
	queuedWorkers                int64
	grantsSum                    int64
	maxInflight, peakInUse       int
	// Wait time is accumulated per cond.Wait episode — a request that never
	// blocks contributes exactly zero, however long the mutex handoff took.
	admissionWaitNanos int64
	workerWaitNanos    int64
	runningNanos       int64
}

func newGovernor(maxConcurrent, budget int, sliceUS float64) *governor {
	g := &governor{slots: maxConcurrent, budget: budget, sliceUS: sliceUS}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// admitInfo describes one successful admission.
type admitInfo struct {
	// Grant is the granted (derated) morsel parallelism.
	Grant int
	// AdmissionWait and WorkerWait are the time actually spent blocked in
	// cond.Wait at each stage (zero when the request never queued).
	AdmissionWait time.Duration
	WorkerWait    time.Duration
}

// admit blocks until an admission slot and at least one worker are free,
// then grants the query its derated parallelism. want <= 0 requests the full
// desired width (the "auto" parallelism of Query.Parallelism); costUS is the
// analytical model's total cost estimate for the request (<= 0 when
// unavailable). Cancelling ctx aborts the wait at either stage with ctx's
// error and undoes all accounting; on success the caller must defer release.
func (g *governor) admit(ctx context.Context, want int, costUS float64) (info admitInfo, release func(), err error) {
	if err = ctx.Err(); err != nil {
		return info, nil, err
	}
	// A cancel must kick every waiter off the monitor so the cancelled one
	// can observe ctx.Err; Broadcast is cheap and wrong-wakeups re-check
	// their predicates.
	stop := context.AfterFunc(ctx, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer stop()

	g.mu.Lock()
	if g.slots == 0 {
		g.queuedAdmission++
		for g.slots == 0 {
			if err = ctx.Err(); err != nil {
				g.mu.Unlock()
				return info, nil, err
			}
			t := time.Now()
			g.cond.Wait()
			w := time.Since(t)
			info.AdmissionWait += w
			g.admissionWaitNanos += w.Nanoseconds()
		}
	}
	if err = ctx.Err(); err != nil {
		g.mu.Unlock()
		return info, nil, err
	}
	g.slots--
	g.admitted++
	g.inflight++
	if g.inflight > g.maxInflight {
		g.maxInflight = g.inflight
	}

	if g.inUse >= g.budget {
		g.queuedWorkers++
		for g.inUse >= g.budget {
			if err = ctx.Err(); err != nil {
				// Undo admission: the slot goes back and the request counts
				// as aborted, not completed.
				g.slots++
				g.inflight--
				g.admitted--
				g.aborted++
				g.cond.Broadcast()
				g.mu.Unlock()
				return info, nil, err
			}
			t := time.Now()
			g.cond.Wait()
			w := time.Since(t)
			info.WorkerWait += w
			g.workerWaitNanos += w.Nanoseconds()
		}
	}
	if want <= 0 || want > g.budget {
		want = g.budget
	}
	desired := exec.Share(g.budget, g.inflight)
	if costUS > 0 && g.sliceUS > 0 {
		desired = int(math.Ceil(costUS / g.sliceUS))
		if desired < 1 {
			desired = 1
		}
		if desired > g.budget {
			desired = g.budget
		}
	}
	grant := desired
	if grant > want {
		grant = want
	}
	if free := g.budget - g.inUse; grant > free {
		grant = free // the wait above guarantees free >= 1
	}
	g.inUse += grant
	if g.inUse > g.peakInUse {
		g.peakInUse = g.inUse
	}
	g.grantsSum += int64(grant)
	info.Grant = grant
	granted := time.Now()
	g.mu.Unlock()

	var once sync.Once
	release = func() {
		once.Do(func() {
			g.mu.Lock()
			g.inUse -= grant
			g.inflight--
			g.slots++
			g.completed++
			g.runningNanos += time.Since(granted).Nanoseconds()
			g.cond.Broadcast()
			g.mu.Unlock()
		})
	}
	return info, release, nil
}

// AdmissionStats is a snapshot of the governor's counters.
type AdmissionStats struct {
	// Admitted and Completed count requests through the gate; Aborted counts
	// requests whose context was cancelled while they queued.
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Aborted   int64 `json:"aborted"`
	// InFlight and MaxInFlight describe concurrent load.
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`
	// QueuedAdmission counts requests that waited for an admission slot;
	// QueuedWorkers counts admitted requests that waited for a worker.
	QueuedAdmission int64 `json:"queued_admission"`
	QueuedWorkers   int64 `json:"queued_workers"`
	// WorkerBudget is the configured global budget; WorkersInUse and
	// PeakWorkersInUse track grants against it (peak never exceeds budget).
	WorkerBudget     int `json:"worker_budget"`
	WorkersInUse     int `json:"workers_in_use"`
	PeakWorkersInUse int `json:"peak_workers_in_use"`
	// WorkersGranted sums every query's granted parallelism;
	// WorkersGranted/Completed is the mean per-query derated width.
	WorkersGranted int64 `json:"workers_granted"`
	// AdmissionWaitNanos and WorkerWaitNanos are time spent actually blocked
	// at each stage of the gate (cond.Wait episodes only — a request that
	// never queues contributes zero); QueuedNanos is their sum.
	AdmissionWaitNanos int64 `json:"admission_wait_nanos"`
	WorkerWaitNanos    int64 `json:"worker_wait_nanos"`
	QueuedNanos        int64 `json:"queued_nanos"`
	// RunningNanos is request wall time from grant to release.
	RunningNanos int64 `json:"running_nanos"`
}

func (g *governor) snapshot() AdmissionStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return AdmissionStats{
		Admitted:           g.admitted,
		Completed:          g.completed,
		Aborted:            g.aborted,
		InFlight:           g.inflight,
		MaxInFlight:        g.maxInflight,
		QueuedAdmission:    g.queuedAdmission,
		QueuedWorkers:      g.queuedWorkers,
		WorkerBudget:       g.budget,
		WorkersInUse:       g.inUse,
		PeakWorkersInUse:   g.peakInUse,
		WorkersGranted:     g.grantsSum,
		AdmissionWaitNanos: g.admissionWaitNanos,
		WorkerWaitNanos:    g.workerWaitNanos,
		QueuedNanos:        g.admissionWaitNanos + g.workerWaitNanos,
		RunningNanos:       g.runningNanos,
	}
}
