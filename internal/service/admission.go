package service

import (
	"sync"
	"time"

	"matstore/internal/exec"
)

// The governor is the service's admission controller and worker-budget
// arbiter. Admission bounds how many requests are in flight at once
// (requests past the limit queue FIFO-ish on the monitor); the worker
// budget is the global exec pool allowance divided across the in-flight
// queries. Each admitted query is granted a derated parallelism — its fair
// share of the budget at admission time, clamped so the sum of grants NEVER
// exceeds the budget — which it passes to plan.Plan.Run as the morsel worker
// count. A query that cannot get even one worker waits for a release, so P
// concurrent queries never oversubscribe the pool.
type governor struct {
	mu   sync.Mutex
	cond *sync.Cond

	slots  int // remaining admission slots
	budget int // global worker budget
	inUse  int // workers currently granted
	// inflight counts admitted queries (holding or awaiting workers) — the
	// denominator of the fair share.
	inflight int

	// Counters (guarded by mu; snapshot via snapshot()).
	admitted, completed       int64
	queuedAdmission           int64
	queuedWorkers             int64
	grantsSum                 int64
	maxInflight, peakInUse    int
	queuedNanos, runningNanos int64
}

func newGovernor(maxConcurrent, budget int) *governor {
	g := &governor{slots: maxConcurrent, budget: budget}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// admit blocks until an admission slot and at least one worker are free,
// then grants the query its derated parallelism: min(requested, fair share
// of the budget, workers still unclaimed). want <= 0 requests the full fair
// share (the "auto" parallelism of Query.Parallelism). It returns the grant
// and the release closure the query must defer.
func (g *governor) admit(want int) (grant int, release func(), queued time.Duration) {
	start := time.Now()
	g.mu.Lock()
	if g.slots == 0 {
		g.queuedAdmission++
		for g.slots == 0 {
			g.cond.Wait()
		}
	}
	g.slots--
	g.admitted++
	g.inflight++
	if g.inflight > g.maxInflight {
		g.maxInflight = g.inflight
	}

	if g.inUse >= g.budget {
		g.queuedWorkers++
		for g.inUse >= g.budget {
			g.cond.Wait()
		}
	}
	if want <= 0 || want > g.budget {
		want = g.budget
	}
	grant = exec.Share(g.budget, g.inflight)
	if grant > want {
		grant = want
	}
	if free := g.budget - g.inUse; grant > free {
		grant = free // the wait above guarantees free >= 1
	}
	g.inUse += grant
	if g.inUse > g.peakInUse {
		g.peakInUse = g.inUse
	}
	g.grantsSum += int64(grant)
	queued = time.Since(start)
	g.queuedNanos += queued.Nanoseconds()
	g.mu.Unlock()

	var once sync.Once
	release = func() {
		once.Do(func() {
			g.mu.Lock()
			g.inUse -= grant
			g.inflight--
			g.slots++
			g.completed++
			g.runningNanos += time.Since(start).Nanoseconds() - queued.Nanoseconds()
			g.cond.Broadcast()
			g.mu.Unlock()
		})
	}
	return grant, release, queued
}

// AdmissionStats is a snapshot of the governor's counters.
type AdmissionStats struct {
	// Admitted and Completed count requests through the gate.
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	// InFlight and MaxInFlight describe concurrent load.
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`
	// QueuedAdmission counts requests that waited for an admission slot;
	// QueuedWorkers counts admitted requests that waited for a worker.
	QueuedAdmission int64 `json:"queued_admission"`
	QueuedWorkers   int64 `json:"queued_workers"`
	// WorkerBudget is the configured global budget; WorkersInUse and
	// PeakWorkersInUse track grants against it (peak never exceeds budget).
	WorkerBudget     int `json:"worker_budget"`
	WorkersInUse     int `json:"workers_in_use"`
	PeakWorkersInUse int `json:"peak_workers_in_use"`
	// WorkersGranted sums every query's granted parallelism;
	// WorkersGranted/Completed is the mean per-query derated width.
	WorkersGranted int64 `json:"workers_granted"`
	// QueuedNanos and RunningNanos split request wall time at the gate.
	QueuedNanos  int64 `json:"queued_nanos"`
	RunningNanos int64 `json:"running_nanos"`
}

func (g *governor) snapshot() AdmissionStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return AdmissionStats{
		Admitted:         g.admitted,
		Completed:        g.completed,
		InFlight:         g.inflight,
		MaxInFlight:      g.maxInflight,
		QueuedAdmission:  g.queuedAdmission,
		QueuedWorkers:    g.queuedWorkers,
		WorkerBudget:     g.budget,
		WorkersInUse:     g.inUse,
		PeakWorkersInUse: g.peakInUse,
		WorkersGranted:   g.grantsSum,
		QueuedNanos:      g.queuedNanos,
		RunningNanos:     g.runningNanos,
	}
}
