// White-box governor suite: admission fairness under Broadcast wakeups,
// context-cancelled waits at both stages with accounting undo, cost-aware
// grant sizing, and the wait-episode-only queue-time accounting. Runs under
// -race via `go test -race ./internal/...`.
package service

import (
	"context"
	"sync"
	"testing"
	"time"
)

// poll spins until cond() holds or the deadline passes.
func poll(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGovernorFairnessAllAdmitted: many more requests than slots, all queued
// on the monitor's Broadcast, must all eventually admit and complete with
// the slot/worker books balanced.
func TestGovernorFairnessAllAdmitted(t *testing.T) {
	g := newGovernor(2, 4, 0)
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, release, err := g.admit(context.Background(), 0, 0)
			if err != nil {
				errs[i] = err
				return
			}
			if info.Grant < 1 || info.Grant > 4 {
				t.Errorf("grant %d outside [1, 4]", info.Grant)
			}
			time.Sleep(50 * time.Microsecond) // hold the grant briefly
			release()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := g.snapshot()
	if st.Admitted != n || st.Completed != n || st.Aborted != 0 {
		t.Errorf("admitted/completed/aborted = %d/%d/%d, want %d/%d/0",
			st.Admitted, st.Completed, st.Aborted, n, n)
	}
	if st.InFlight != 0 || st.WorkersInUse != 0 {
		t.Errorf("governor leaked: in_flight=%d workers_in_use=%d", st.InFlight, st.WorkersInUse)
	}
	if st.PeakWorkersInUse > 4 {
		t.Errorf("peak workers %d exceeds budget 4", st.PeakWorkersInUse)
	}
}

// TestGovernorCancelWhileQueuedForSlot: a request cancelled while waiting
// for an admission slot aborts with ctx's error, restores nothing it never
// took, and leaves the gate usable.
func TestGovernorCancelWhileQueuedForSlot(t *testing.T) {
	g := newGovernor(1, 1, 0)
	_, release, err := g.admit(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.admit(ctx, 1, 0)
		done <- err
	}()
	poll(t, "queued waiter", func() bool {
		return g.snapshot().QueuedAdmission == 1
	})
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled admit returned %v, want context.Canceled", err)
	}
	release()

	// The gate still works and the books balance.
	_, release2, err := g.admit(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	release2()
	st := g.snapshot()
	if st.Admitted != 2 || st.Completed != 2 {
		t.Errorf("admitted/completed = %d/%d, want 2/2", st.Admitted, st.Completed)
	}
	if st.InFlight != 0 || st.WorkersInUse != 0 || g.slotsForTest() != 1 {
		t.Errorf("gate left unbalanced: %+v slots=%d", st, g.slotsForTest())
	}
}

// TestGovernorCancelWhileQueuedForWorkers: a request that holds an admission
// slot but is cancelled waiting for a worker gives the slot back and counts
// as aborted, not admitted.
func TestGovernorCancelWhileQueuedForWorkers(t *testing.T) {
	g := newGovernor(4, 1, 0)
	_, release, err := g.admit(context.Background(), 1, 0) // takes the only worker
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.admit(ctx, 1, 0)
		done <- err
	}()
	poll(t, "worker waiter", func() bool {
		return g.snapshot().QueuedWorkers == 1
	})
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled admit returned %v, want context.Canceled", err)
	}
	release()

	st := g.snapshot()
	if st.Aborted != 1 || st.Admitted != 1 || st.Completed != 1 {
		t.Errorf("aborted/admitted/completed = %d/%d/%d, want 1/1/1",
			st.Aborted, st.Admitted, st.Completed)
	}
	if st.InFlight != 0 || st.WorkersInUse != 0 || g.slotsForTest() != 4 {
		t.Errorf("abort did not restore the books: %+v slots=%d", st, g.slotsForTest())
	}
	if st.WorkerWaitNanos == 0 {
		t.Error("worker wait was not accounted")
	}
}

// TestGovernorPreCancelled: an already-cancelled context never enters the
// gate.
func TestGovernorPreCancelled(t *testing.T) {
	g := newGovernor(1, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.admit(ctx, 1, 0); err != context.Canceled {
		t.Fatalf("pre-cancelled admit returned %v", err)
	}
	if st := g.snapshot(); st.Admitted != 0 {
		t.Errorf("pre-cancelled request was admitted: %+v", st)
	}
}

// TestGovernorNoWaitNoQueueTime pins the accounting fix: a request that
// sails through an idle gate must charge exactly zero queue time — wait time
// accumulates only across actual cond.Wait episodes, never mutex handoffs.
func TestGovernorNoWaitNoQueueTime(t *testing.T) {
	g := newGovernor(4, 4, 0)
	for i := 0; i < 10; i++ {
		info, release, err := g.admit(context.Background(), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if info.AdmissionWait != 0 || info.WorkerWait != 0 {
			t.Errorf("idle-gate admit reported waits %v/%v, want 0/0",
				info.AdmissionWait, info.WorkerWait)
		}
		release()
	}
	st := g.snapshot()
	if st.AdmissionWaitNanos != 0 || st.WorkerWaitNanos != 0 || st.QueuedNanos != 0 {
		t.Errorf("idle gate accumulated queue time: admission=%d worker=%d total=%d",
			st.AdmissionWaitNanos, st.WorkerWaitNanos, st.QueuedNanos)
	}
	if st.QueuedAdmission != 0 || st.QueuedWorkers != 0 {
		t.Errorf("idle gate counted queued requests: %+v", st)
	}
}

// TestGovernorCostAwareGrants: with a 100µs slice, a request modeled at
// 1000µs asks for 10 workers (clamped to the budget) while a 50µs point
// lookup gets exactly one — and without an estimate the fair share applies.
func TestGovernorCostAwareGrants(t *testing.T) {
	g := newGovernor(8, 8, 100)
	cases := []struct {
		costUS float64
		want   int
	}{
		{50, 1},   // under one slice: a single worker
		{250, 3},  // ceil(250/100)
		{1000, 8}, // clamped to the budget
		{1e9, 8},  // absurd estimates still clamp
		{0, 8},    // no estimate: fair share (sole in-flight request)
		{-1, 8},   // negative estimate treated as absent
	}
	for _, c := range cases {
		info, release, err := g.admit(context.Background(), 0, c.costUS)
		if err != nil {
			t.Fatal(err)
		}
		if info.Grant != c.want {
			t.Errorf("cost %vµs granted %d workers, want %d", c.costUS, info.Grant, c.want)
		}
		release()
	}
	// Disabled sizing (slice <= 0) always falls back to the fair share.
	g = newGovernor(8, 8, -1)
	info, release, err := g.admit(context.Background(), 0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if info.Grant != 8 {
		t.Errorf("disabled sizing granted %d, want fair share 8", info.Grant)
	}
	release()
}

// TestGovernorGrantSumNeverExceedsBudget: concurrent cost-sized admissions
// keep the sum of grants within the budget even when every request wants the
// whole budget.
func TestGovernorGrantSumNeverExceedsBudget(t *testing.T) {
	g := newGovernor(16, 4, 100)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, release, err := g.admit(context.Background(), 0, 5000)
			if err != nil {
				t.Error(err)
				return
			}
			time.Sleep(20 * time.Microsecond)
			release()
		}()
	}
	wg.Wait()
	st := g.snapshot()
	if st.PeakWorkersInUse > 4 {
		t.Errorf("peak workers %d exceeds budget 4", st.PeakWorkersInUse)
	}
	if st.WorkersInUse != 0 || st.InFlight != 0 {
		t.Errorf("governor leaked: %+v", st)
	}
}

// slotsForTest reads the free-slot count (white-box).
func (g *governor) slotsForTest() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.slots
}
