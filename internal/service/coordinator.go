package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"matstore"
	"matstore/internal/obs"
	"matstore/internal/operators"
	"matstore/internal/storage"
)

// Scatter-gather coordinator: one process fronting N shard engines, each an
// ordinary csserve over one shard directory of a csgen -shards layout. The
// coordinator loads ONLY metadata at startup (shards.json plus every
// shard's per-projection meta.json) — shard data is never touched here —
// and serves the same /query, /join and /explain endpoints by fanning
// requests out over the shard HTTP endpoints in parallel and merging the
// partials with the exact deterministic contract the morsel executor uses
// in memory:
//
//   - range-sharded selection/join row partials concatenate in shard order
//     (shard order IS global row order, so this is rows.Result.Append
//     across the wire); row counts and output checksums add;
//   - key-partitioned partials arrive tagged with each row's global row id
//     (the hidden storage.RowIDColumn, requested via rowids=true) and are
//     k-way merged by ascending row id — each shard's rows are a
//     global-order subsequence, so the merge restores exactly the global
//     interleaving;
//   - aggregation partials ship mergeable per-group statistics
//     (operators.GroupStats, requested via partial=true) which the
//     coordinator absorbs into a fresh Aggregator and re-emits sorted by
//     key — emitted aggregate values do not merge (AVG loses its count),
//     the statistics do. When the group-by key IS the partition key the
//     statistics wire is skipped entirely: group keys are disjoint across
//     shards, so shards ship finalized rows that concat and sort by key
//     (the finalization pushdown);
//   - explain trees concatenate with per-shard row-range (or hash-scheme)
//     headers.
//
// Because the merge contract is the executor's, coordinator responses are
// byte-identical to the single-process engine at every shard count.
//
// Routing: sharded projections fan out to every shard whose row range is
// non-empty (key-partitioned projections: every shard), minus shards whose
// column min/max statistics refute every predicate (zone-map pruning lifted
// to shard granularity); replicated projections round-robin to a single
// shard. Joins run shard-local against the replicated right side (left
// sharded) or route to one shard (left replicated); a sharded right side is
// accepted only when both sides are CO-PARTITIONED — hash-partitioned on
// the join keys under the same scheme with equal shard counts — in which
// case the join fans out as N shard-local joins with no inner replication;
// any other sharded right side is rejected up front with a 400 naming the
// incompatibility.

// DefaultShardTimeout bounds one shard request when the config leaves it 0.
const DefaultShardTimeout = 30 * time.Second

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// ShardTimeout is the per-shard fan-out timeout (0 = 30s). A shard that
	// misses it turns the whole request into 504.
	ShardTimeout time.Duration
	// Client overrides the HTTP client used for shard requests (nil = a
	// default client; the per-request timeout still comes from ShardTimeout).
	Client *http.Client
	// Logger receives structured JSON log lines (slow queries, fan-out
	// failures). Nil disables logging.
	Logger *obs.Logger
	// SlowQueryMicros is the slow-query log threshold (0 = disabled), as in
	// Config.
	SlowQueryMicros int64
}

// shardNode is one shard's routing state: its endpoint plus the
// per-projection catalog records read at startup.
type shardNode struct {
	url   string
	metas map[string]storage.ProjectionMeta
}

// Coordinator fans requests over shard engines and merges the partials.
type Coordinator struct {
	manifest *storage.ShardManifest
	shards   []shardNode
	client   *http.Client
	timeout  time.Duration

	start   time.Time
	metrics *coordMetrics
	logger  *obs.Logger
	slowUS  int64

	queries       atomic.Int64
	fannedOut     atomic.Int64 // requests that went to more than one shard
	routedSingle  atomic.Int64 // requests answered by exactly one shard
	shardRequests atomic.Int64 // total shard HTTP requests issued
	prunedShards  atomic.Int64 // shards skipped by min/max statistics
	shardErrors   atomic.Int64 // shard requests that failed or timed out
	aggMerges     atomic.Int64 // partial aggregations absorbed and re-emitted
	copartJoins   atomic.Int64 // joins fanned out co-partitioned (no inner replication)
	finalizedAggs atomic.Int64 // partition-key aggregations merged from finalized rows
	rowidMerges   atomic.Int64 // key-partitioned fan-outs k-way merged by row id
	rr            atomic.Int64 // round-robin cursor for replicated routing
}

// NewCoordinator loads the shard manifest and every shard's projection
// metadata from a csgen -shards root and binds shard k to endpoints[k]
// (base URLs such as http://127.0.0.1:9101). No shard data is read.
func NewCoordinator(root string, endpoints []string, cfg CoordinatorConfig) (*Coordinator, error) {
	m, err := storage.LoadShardManifest(root)
	if err != nil {
		return nil, err
	}
	if len(endpoints) != m.NumShards {
		return nil, fmt.Errorf("service: manifest has %d shards but %d endpoints given", m.NumShards, len(endpoints))
	}
	c := &Coordinator{
		manifest: m,
		client:   cfg.Client,
		timeout:  cfg.ShardTimeout,
		start:    time.Now(),
		logger:   cfg.Logger,
		slowUS:   cfg.SlowQueryMicros,
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.timeout <= 0 {
		c.timeout = DefaultShardTimeout
	}
	for k, ep := range endpoints {
		dir := filepath.Join(root, m.Dirs[k])
		projs, err := storage.ListProjectionDirs(dir)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		node := shardNode{url: ep, metas: make(map[string]storage.ProjectionMeta, len(projs))}
		for _, p := range projs {
			meta, err := storage.ReadProjectionMeta(filepath.Join(dir, p))
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", k, err)
			}
			node.metas[p] = meta
		}
		c.shards = append(c.shards, node)
	}
	c.metrics = newCoordMetrics(c, c.start)
	return c, nil
}

// Manifest returns the loaded shard manifest.
func (c *Coordinator) Manifest() *storage.ShardManifest { return c.manifest }

// Metrics returns the coordinator's Prometheus registry (the /metrics
// backing).
func (c *Coordinator) Metrics() *obs.Registry { return c.metrics.reg }

// httpError carries a fan-out failure back to the front-end: a status, a
// response body (the failing shard's, when there is one) and an optional
// Retry-After value to propagate.
type httpError struct {
	status     int
	body       []byte
	message    string
	retryAfter string
}

func (e *httpError) write(w http.ResponseWriter) {
	if e.retryAfter != "" {
		w.Header().Set("Retry-After", e.retryAfter)
	}
	if len(e.body) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(e.status)
		_, _ = w.Write(e.body)
		return
	}
	writeError(w, e.status, errors.New(e.message))
}

// shardReply is one shard's raw fan-out result.
type shardReply struct {
	shard      int
	status     int
	body       []byte
	retryAfter string
	err        error
}

// fanout POSTs body to path on the given shards in parallel, each under the
// per-shard timeout, and returns the replies in shard order. The error
// return folds per-shard failures into one front-end failure, scanned in
// shard order so the mapping is deterministic: a transport fault is 502, a
// timeout 504, a shard 503 propagates as 503 carrying the LARGEST
// Retry-After any shedding shard advertised (retrying sooner than the
// slowest shard recovers would just shed again), and any other non-200
// shard status (400, 500) passes through with the shard's body.
// When span is non-nil, each shard call opens a sibling "shard k" child span
// (the trace mutex makes concurrent sibling creation safe) and the shard's
// own span tree — returned inline in its traced response body, under the
// same trace id propagated via X-CS-Trace-Id — is grafted beneath it, so the
// coordinator's tree embeds every shard's admission and per-plan-node spans.
func (c *Coordinator) fanout(ctx context.Context, path string, body any, shards []int, tid string, span *obs.Span) ([]shardReply, *httpError) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, &httpError{status: http.StatusInternalServerError, message: err.Error()}
	}
	replies := make([]shardReply, len(shards))
	var wg sync.WaitGroup
	for i, k := range shards {
		wg.Add(1)
		go func(i, k int) {
			defer wg.Done()
			sspan := span.Child("shard " + shardLabel(k))
			sspan.SetAttr("shard", k)
			sspan.SetAttr("url", c.shards[k].url)
			replies[i] = c.callShard(ctx, path, raw, k, tid)
			if rep := &replies[i]; span != nil && rep.err == nil && rep.status == http.StatusOK {
				var t struct {
					Trace *obs.TraceJSON `json:"trace"`
				}
				if json.Unmarshal(rep.body, &t) == nil && t.Trace != nil {
					sspan.SetAttr("shard_trace_id", t.Trace.ID)
					sspan.Graft(t.Trace.Root)
				}
			}
			sspan.End()
		}(i, k)
	}
	wg.Wait()

	var shed *httpError
	for _, r := range replies {
		switch {
		case r.err != nil:
			c.shardErrors.Add(1)
			status := http.StatusBadGateway
			if errors.Is(r.err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
			return nil, &httpError{status: status, message: fmt.Sprintf("shard %d: %v", r.shard, r.err)}
		case r.status == http.StatusServiceUnavailable:
			c.shardErrors.Add(1)
			if shed == nil || retryAfterSeconds(r.retryAfter) > retryAfterSeconds(shed.retryAfter) {
				shed = &httpError{status: r.status, body: r.body, retryAfter: r.retryAfter}
			}
		case r.status != http.StatusOK:
			c.shardErrors.Add(1)
			return nil, &httpError{status: r.status, body: r.body}
		}
	}
	if shed != nil {
		return nil, shed
	}
	return replies, nil
}

func (c *Coordinator) callShard(ctx context.Context, path string, body []byte, k int, tid string) shardReply {
	c.shardRequests.Add(1)
	start := time.Now()
	defer func() { c.metrics.shardLatency[k].Observe(time.Since(start).Seconds()) }()
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.shards[k].url+path, bytes.NewReader(body))
	if err != nil {
		return shardReply{shard: k, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if tid != "" {
		req.Header.Set(TraceIDHeader, tid)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		return shardReply{shard: k, err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return shardReply{shard: k, err: err}
	}
	return shardReply{shard: k, status: resp.StatusCode, body: raw, retryAfter: resp.Header.Get("Retry-After")}
}

func retryAfterSeconds(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}

// shardsFor routes a request over a projection: a sharded projection fans
// out to every shard holding rows (a non-empty row range, or any shard of a
// key-partitioned placement) whose column min/max statistics cannot refute
// the predicates (shard-level zone-map pruning); a replicated projection
// round-robins to one shard. At least one shard is always returned so
// fully-pruned requests still produce a well-formed empty result.
func (c *Coordinator) shardsFor(proj string, filters []matstore.Filter) ([]int, error) {
	pl, ok := c.manifest.Placement(proj)
	if !ok {
		return nil, fmt.Errorf("projection %q not in shard manifest", proj)
	}
	if !pl.Sharded {
		return []int{int(c.rr.Add(1)-1) % len(c.shards)}, nil
	}
	var out []int
	for k := range c.shards {
		if !pl.KeyPartitioned() && (k >= len(pl.Ranges) || pl.Ranges[k].Len() == 0) {
			continue
		}
		if c.pruneShard(k, proj, filters) {
			c.prunedShards.Add(1)
			continue
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out, nil
}

// pruneShard reports that shard k provably holds no row of proj matching
// every filter, using the per-shard catalog min/max (the same test the
// executor's zone index applies per block, lifted to shard granularity).
// Conservative: unknown columns and non-interval predicates never prune.
func (c *Coordinator) pruneShard(k int, proj string, filters []matstore.Filter) bool {
	meta, ok := c.shards[k].metas[proj]
	if !ok {
		return false
	}
	for _, f := range filters {
		lo, hi, ok := f.Pred.Interval()
		if !ok {
			continue
		}
		for _, cm := range meta.Columns {
			if cm.Name != f.Col {
				continue
			}
			if hi < cm.Min || lo > cm.Max {
				return true
			}
			break
		}
	}
	return false
}

// Handler returns the coordinator's HTTP mux: the same endpoint surface as
// a shard engine, so clients (and the csserve client mode) are oblivious to
// whether they talk to one engine or a fleet.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	m := c.metrics
	mux.Handle("/query", instrument(m.requests, m.latency, "query", c.handleQuery))
	mux.Handle("/join", instrument(m.requests, m.latency, "join", c.handleJoin))
	mux.Handle("/explain", instrument(m.requests, m.latency, "explain", c.handleExplain))
	mux.Handle("/stats", instrument(m.requests, m.latency, "stats", c.handleStats))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writePrometheus(w, m.reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		body := healthBody(c.start)
		body["role"] = "coordinator"
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { c.handleReady(w, r) })
	return mux
}

// startTrace attaches a new coordinator trace when the request asked for one.
func (c *Coordinator) startTrace(tid, root string, want bool) *obs.Trace {
	if !want {
		return nil
	}
	c.metrics.traced.Inc()
	return obs.NewTrace(tid, root)
}

// noteSlow is the coordinator's slow-query record (see Server.noteSlow).
func (c *Coordinator) noteSlow(endpoint, tid, shape string, wall time.Duration, shards int, tr *obs.Trace) {
	if c.slowUS <= 0 || wall < time.Duration(c.slowUS)*time.Microsecond {
		return
	}
	c.metrics.slow.Inc()
	kv := []any{"trace_id", tid, "endpoint", endpoint, "shape", shape,
		"wall_us", wall.Microseconds(), "shards", shards}
	if tj := tr.JSON(); tj != nil {
		kv = append(kv, "phases", spanSummary(tj.Root))
	}
	c.logger.Info("slow query", kv...)
}

// logFanoutError records a failed scatter-gather in the structured log.
func (c *Coordinator) logFanoutError(endpoint, tid string, herr *httpError) {
	msg := herr.message
	if msg == "" {
		msg = string(herr.body)
	}
	c.logger.Error("fanout failed", "trace_id", tid, "endpoint", endpoint,
		"status", herr.status, "error", msg)
}

// resolveLimit applies the request limit convention (0 = the default cap,
// negative = all rows) once at the coordinator; shards always receive an
// explicit limit.
func resolveLimit(limit int) int {
	if limit == 0 {
		return defaultRowLimit
	}
	return limit
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tid := ensureTraceID(w, r)
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.queries.Add(1)
	filters, err := parseWhereList(req.Where)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	shards, err := c.shardsFor(req.Projection, filters)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(shards) == 1 {
		// Single-shard routes (replicated projections, fully-pruned or
		// one-shard layouts) pass through: the shard's response IS the
		// global response (a traced one carries the shard's own span tree
		// under the propagated trace id).
		c.routedSingle.Add(1)
		c.passthrough(w, r.Context(), "/query", req, shards[0], tid)
		return
	}
	c.fannedOut.Add(1)
	tr := c.startTrace(tid, "coordinator.query", req.Trace)

	pl, _ := c.manifest.Placement(req.Projection)
	keyPart := pl.KeyPartitioned()
	aggregating := req.GroupBy != "" && req.AggCol != ""
	// Finalization pushdown: when the group-by key IS the partition key,
	// group keys are disjoint across shards — no group spans two shards — so
	// each shard's finalized rows are the global answer for its groups. No
	// statistics wire, no AbsorbGroups pass.
	finalized := aggregating && keyPart && req.GroupBy == pl.Partition.Column
	var fn operators.AggFunc
	if aggregating && !finalized && req.Agg != "" {
		if fn, err = operators.ParseAggFunc(req.Agg); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	lim := resolveLimit(req.Limit)
	shardReq := req
	// Limit pushdown: each shard's rows are a global-order prefix source
	// (range shards: shard order is global order; key-partitioned shards:
	// a global-order subsequence, so any of the first lim global rows has
	// fewer than lim predecessors on its own shard). Finalized aggregations
	// push the limit too — shards emit sorted by key, and the global
	// smallest lim keys are among the union of per-shard smallest lim.
	// Statistics-merged aggregations need every group regardless.
	shardReq.Limit = lim
	switch {
	case finalized:
		// Plain aggregation on each shard: finalized rows, sorted by key.
	case aggregating:
		shardReq.Partial = true
		shardReq.Limit = -1
	case keyPart:
		shardReq.RowIDs = true
	default:
		shardReq.Partial = true
	}
	fspan := tr.Root().Child("fanout")
	fspan.SetAttr("parallel", true)
	fspan.SetAttr("shards", len(shards))
	replies, herr := c.fanout(r.Context(), "/query", shardReq, shards, tid, fspan)
	fspan.End()
	if herr != nil {
		c.logFanoutError("query", tid, herr)
		herr.write(w)
		return
	}
	parts := make([]*QueryResponse, len(replies))
	for i, rep := range replies {
		parts[i] = new(QueryResponse)
		if err := json.Unmarshal(rep.body, parts[i]); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %d: bad response: %w", rep.shard, err))
			return
		}
	}
	gspan := tr.Root().Child("merge")
	var resp *QueryResponse
	switch {
	case finalized:
		resp = mergeFinalizedAggParts(parts, lim)
		c.finalizedAggs.Add(1)
		gspan.SetAttr("kind", "finalized_agg")
	case aggregating:
		resp = mergeAggParts(parts, fn, lim)
		c.aggMerges.Add(1)
		gspan.SetAttr("kind", "agg_statistics")
	case keyPart:
		resp = mergeRowIDParts(parts, lim)
		c.rowidMerges.Add(1)
		gspan.SetAttr("kind", "rowid_kway")
	default:
		resp = mergeRowParts(parts, lim)
		gspan.SetAttr("kind", "concat")
	}
	gspan.SetAttr("rows", resp.RowCount)
	gspan.End()
	resp.Wall = time.Since(start).Nanoseconds()
	if tr != nil {
		tr.Root().End()
		resp.Trace = tr.JSON()
	}
	c.noteSlow("query", tid, req.shape(), time.Since(start), len(shards), tr)
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tid := ensureTraceID(w, r)
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.queries.Add(1)
	filters, err := parseWhereList(req.Where)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	leftPl, lok := c.manifest.Placement(req.Left)
	rightPl, rok := c.manifest.Placement(req.Right)
	if !lok || !rok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("join tables %q, %q must both be in the shard manifest", req.Left, req.Right))
		return
	}
	// Shard-local join correctness: every shard probes its slice of the
	// outer table against everything its key could match. Two ways to get
	// that: the inner side is replicated (every shard holds the full inner
	// table), or both sides are CO-PARTITIONED on the join keys — the same
	// hash scheme with equal shard counts puts every matching inner row on
	// the probing row's own shard, so no replication is needed. Anything
	// else with a sharded right side cannot run shard-local (or there is
	// only one shard and locality is trivial).
	copart := copartitioned(leftPl, rightPl, req.LeftKey, req.RightKey)
	if rightPl.Sharded && c.manifest.NumShards > 1 && !copart {
		writeError(w, http.StatusBadRequest, copartitionError(req, leftPl, rightPl))
		return
	}
	var shards []int
	if leftPl.Sharded {
		if shards, err = c.shardsFor(req.Left, filters); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		shards = []int{int(c.rr.Add(1)-1) % len(c.shards)}
	}
	if len(shards) == 1 {
		c.routedSingle.Add(1)
		c.passthrough(w, r.Context(), "/join", req, shards[0], tid)
		return
	}
	c.fannedOut.Add(1)
	if copart {
		c.copartJoins.Add(1)
	}
	tr := c.startTrace(tid, "coordinator.join", req.Trace)

	lim := resolveLimit(req.Limit)
	shardReq := req
	shardReq.Limit = lim
	if leftPl.KeyPartitioned() {
		shardReq.RowIDs = true
	}
	fspan := tr.Root().Child("fanout")
	fspan.SetAttr("parallel", true)
	fspan.SetAttr("shards", len(shards))
	fspan.SetAttr("copartitioned", copart)
	replies, herr := c.fanout(r.Context(), "/join", shardReq, shards, tid, fspan)
	fspan.End()
	if herr != nil {
		c.logFanoutError("join", tid, herr)
		herr.write(w)
		return
	}
	parts := make([]*QueryResponse, len(replies))
	for i, rep := range replies {
		parts[i] = new(QueryResponse)
		if err := json.Unmarshal(rep.body, parts[i]); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %d: bad response: %w", rep.shard, err))
			return
		}
	}
	gspan := tr.Root().Child("merge")
	var resp *QueryResponse
	if leftPl.KeyPartitioned() {
		resp = mergeRowIDParts(parts, lim)
		c.rowidMerges.Add(1)
		gspan.SetAttr("kind", "rowid_kway")
	} else {
		resp = mergeRowParts(parts, lim)
		gspan.SetAttr("kind", "concat")
	}
	gspan.SetAttr("rows", resp.RowCount)
	gspan.End()
	resp.Wall = time.Since(start).Nanoseconds()
	if tr != nil {
		tr.Root().End()
		resp.Trace = tr.JSON()
	}
	c.noteSlow("join", tid, req.shape(), time.Since(start), len(shards), tr)
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tid := ensureTraceID(w, r)
	var raw json.RawMessage
	if !decodeBody(w, r, &raw) {
		return
	}
	c.queries.Add(1)
	var probe struct {
		Projection string `json:"projection"`
		Left       string `json:"left"`
		Right      string `json:"right"`
		Trace      bool   `json:"trace"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	outer := probe.Projection
	if probe.Right != "" {
		outer = probe.Left
	}
	pl, ok := c.manifest.Placement(outer)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("projection %q not in shard manifest", outer))
		return
	}
	// Explain fans to every shard holding rows — no pruning, the point is
	// to see each shard's plan — and concatenates the trees under per-shard
	// global row-range (or hash-scheme) headers.
	var shards []int
	switch {
	case pl.KeyPartitioned():
		for k := range c.shards {
			shards = append(shards, k)
		}
	case pl.Sharded:
		for k, rg := range pl.Ranges {
			if rg.Len() > 0 {
				shards = append(shards, k)
			}
		}
		if len(shards) == 0 {
			shards = []int{0}
		}
	default:
		shards = []int{int(c.rr.Add(1)-1) % len(c.shards)}
	}
	if len(shards) == 1 {
		c.routedSingle.Add(1)
		c.passthrough(w, r.Context(), "/explain", raw, shards[0], tid)
		return
	}
	c.fannedOut.Add(1)
	tr := c.startTrace(tid, "coordinator.explain", probe.Trace)
	fspan := tr.Root().Child("fanout")
	fspan.SetAttr("parallel", true)
	fspan.SetAttr("shards", len(shards))
	replies, herr := c.fanout(r.Context(), "/explain", raw, shards, tid, fspan)
	fspan.End()
	if herr != nil {
		c.logFanoutError("explain", tid, herr)
		herr.write(w)
		return
	}
	merged := ExplainResponse{}
	var tree bytes.Buffer
	for i, rep := range replies {
		var ex ExplainResponse
		if err := json.Unmarshal(rep.body, &ex); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %d: bad response: %w", rep.shard, err))
			return
		}
		k := shards[i]
		if pl.KeyPartitioned() {
			fmt.Fprintf(&tree, "── shard %d: %s hash(%s) mod %d == %d @ %s ──\n%s",
				k, outer, pl.Partition.Column, pl.Partition.Shards, k, c.shards[k].url, ex.Tree)
		} else {
			rg := pl.Ranges[k]
			fmt.Fprintf(&tree, "── shard %d: %s rows [%d,%d) @ %s ──\n%s",
				k, outer, rg.Start, rg.End, c.shards[k].url, ex.Tree)
		}
		if i == 0 {
			merged.Strategy = ex.Strategy
		}
		merged.ModeledUS += ex.ModeledUS
		merged.Workers += ex.Workers
		// RowCount sums shard partials; for aggregations this counts
		// per-shard groups, an upper bound on the merged group count.
		merged.RowCount += ex.RowCount
	}
	merged.Tree = tree.String()
	merged.Wall = time.Since(start).Nanoseconds()
	if tr != nil {
		tr.Root().End()
		merged.Trace = tr.JSON()
	}
	writeJSON(w, http.StatusOK, merged)
}

// passthrough forwards one request to a single shard and relays the
// response verbatim (status, Retry-After, body). A traced request's span
// tree comes back inside the shard's body under the propagated trace id, so
// relaying verbatim preserves it.
func (c *Coordinator) passthrough(w http.ResponseWriter, ctx context.Context, path string, body any, shard int, tid string) {
	raw, err := json.Marshal(body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	rep := c.callShard(ctx, path, raw, shard, tid)
	if rep.err != nil {
		c.shardErrors.Add(1)
		status := http.StatusBadGateway
		if errors.Is(rep.err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, fmt.Errorf("shard %d: %w", shard, rep.err))
		return
	}
	if rep.status != http.StatusOK {
		c.shardErrors.Add(1)
	}
	if rep.retryAfter != "" {
		w.Header().Set("Retry-After", rep.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rep.status)
	_, _ = w.Write(rep.body)
}

// copartitioned reports whether a join's two sides are co-partitioned on
// its join keys: both hash-partitioned on exactly those keys under the same
// hash scheme with equal shard counts, so shard k's left rows can only
// match shard k's right rows.
func copartitioned(leftPl, rightPl storage.ShardPlacement, leftKey, rightKey string) bool {
	return leftPl.KeyPartitioned() && rightPl.KeyPartitioned() &&
		leftPl.Partition.Column == leftKey &&
		rightPl.Partition.Column == rightKey &&
		leftPl.Partition.Shards == rightPl.Partition.Shards &&
		leftPl.Partition.Hash == rightPl.Partition.Hash
}

// copartitionError explains exactly why a sharded right side cannot join
// shard-locally: which projection lacks compatible partitioning, on which
// column, and any shard-count or hash-scheme mismatch.
func copartitionError(req JoinRequest, leftPl, rightPl storage.ShardPlacement) error {
	desc := func(name, key string, pl storage.ShardPlacement) string {
		switch {
		case pl.KeyPartitioned() && pl.Partition.Column != key:
			return fmt.Sprintf("%q is partitioned on %q, not its join key %q", name, pl.Partition.Column, key)
		case pl.KeyPartitioned():
			return fmt.Sprintf("%q is partitioned on %q into %d shards (%s)", name, pl.Partition.Column, pl.Partition.Shards, pl.Partition.Hash)
		case pl.Sharded:
			return fmt.Sprintf("%q is range-sharded with no partition key", name)
		default:
			return fmt.Sprintf("%q is replicated", name)
		}
	}
	detail := desc(req.Left, req.LeftKey, leftPl) + "; " + desc(req.Right, req.RightKey, rightPl)
	if leftPl.KeyPartitioned() && rightPl.KeyPartitioned() && leftPl.Partition.Shards != rightPl.Partition.Shards {
		detail += fmt.Sprintf("; shard counts differ (%d vs %d)", leftPl.Partition.Shards, rightPl.Partition.Shards)
	}
	return fmt.Errorf(
		"join right side %q is sharded without co-partitioning on the join keys (%s.%s = %s.%s): %s. "+
			"Shard-local joins need the right side replicated, or both sides hash-partitioned on the join keys "+
			"with equal shard counts (csgen -shards N -partition-key %s.%s,%s.%s)",
		req.Right, req.Left, req.LeftKey, req.Right, req.RightKey, detail,
		req.Left, req.LeftKey, req.Right, req.RightKey)
}

// mergeRowParts merges selection/join partials: rows concatenate in shard
// order (shard order is global row order) truncated to the limit, row
// counts and checksums add (each shard's checksum folds ALL its output
// rows, so the sum equals the single-engine fold), cache-hit flags AND
// (the merged response came from caches only if every partial did), and
// execution counters sum.
func mergeRowParts(parts []*QueryResponse, limit int) *QueryResponse {
	out := &QueryResponse{
		Columns:        parts[0].Columns,
		Strategy:       parts[0].Strategy,
		Rows:           [][]int64{},
		ResultCacheHit: true,
		PlanCacheHit:   true,
		BuildCacheHit:  true,
	}
	for _, p := range parts {
		take := p.Rows
		if limit > 0 {
			if room := limit - len(out.Rows); len(take) > room {
				take = take[:room]
			}
		}
		out.Rows = append(out.Rows, take...)
		sumPartCounters(out, p)
	}
	return out
}

// sumPartCounters folds one shard partial's counters into the merged
// response: row counts, checksums and execution counters add, queue time
// takes the max (shards queue concurrently), cache-hit flags AND, spill
// flags OR.
func sumPartCounters(out, p *QueryResponse) {
	out.RowCount += p.RowCount
	out.Checksum += p.Checksum
	out.Workers += p.Workers
	out.Morsels += p.Morsels
	if p.Queued > out.Queued {
		out.Queued = p.Queued
	}
	out.EstCostUS += p.EstCostUS
	out.ResultCacheHit = out.ResultCacheHit && p.ResultCacheHit
	out.PlanCacheHit = out.PlanCacheHit && p.PlanCacheHit
	out.BuildCacheHit = out.BuildCacheHit && p.BuildCacheHit
	out.Partitions += p.Partitions
	out.Probes += p.Probes
	out.BuildTuples += p.BuildTuples
	out.DeferredFetches += p.DeferredFetches
	out.ReservedBytes += p.ReservedBytes
	out.Spilled = out.Spilled || p.Spilled
	out.SpilledPartitions += p.SpilledPartitions
	out.SpillBytes += p.SpillBytes
}

// mergeRowIDParts merges key-partitioned selection/join partials: each
// shard's rows are a global-order subsequence tagged with global row ids,
// so a k-way merge by ascending row id restores exactly the global row
// order (every global row lives on exactly one shard — ids never collide
// across partials). Counters fold as in mergeRowParts.
func mergeRowIDParts(parts []*QueryResponse, limit int) *QueryResponse {
	out := &QueryResponse{
		Columns:        parts[0].Columns,
		Strategy:       parts[0].Strategy,
		Rows:           [][]int64{},
		ResultCacheHit: true,
		PlanCacheHit:   true,
		BuildCacheHit:  true,
	}
	idx := make([]int, len(parts))
	for limit <= 0 || len(out.Rows) < limit {
		best := -1
		for p, part := range parts {
			if idx[p] >= len(part.Rows) || idx[p] >= len(part.RowIDs) {
				continue
			}
			if best < 0 || part.RowIDs[idx[p]] < parts[best].RowIDs[idx[best]] {
				best = p
			}
		}
		if best < 0 {
			break
		}
		out.Rows = append(out.Rows, parts[best].Rows[idx[best]])
		idx[best]++
	}
	for _, p := range parts {
		sumPartCounters(out, p)
	}
	return out
}

// mergeFinalizedAggParts merges a partition-key aggregation: group keys are
// disjoint across shards, so the shards' finalized rows (each sorted by
// key) concat in shard order and one coordinator-side sort by the group-key
// column restores the global key order — no statistics shipped, no
// AbsorbGroups pass, and the payload is the final rows instead of
// per-group sum/count/min/max. Row counts and checksums add exactly
// because no group spans two shards.
func mergeFinalizedAggParts(parts []*QueryResponse, limit int) *QueryResponse {
	out := &QueryResponse{
		Columns:        parts[0].Columns,
		Strategy:       parts[0].Strategy,
		Rows:           [][]int64{},
		ResultCacheHit: true,
		PlanCacheHit:   true,
		BuildCacheHit:  true,
	}
	for _, p := range parts {
		out.Rows = append(out.Rows, p.Rows...)
		sumPartCounters(out, p)
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i][0] < out.Rows[j][0] })
	if limit > 0 && len(out.Rows) > limit {
		out.Rows = out.Rows[:limit]
	}
	return out
}

// mergeAggParts merges aggregation partials: every shard's exported
// per-group statistics are absorbed into one fresh Aggregator — the wire
// form of the executor's Aggregator.Merge — and re-emitted sorted by key,
// identical to aggregating the un-sharded table. The checksum is recomputed
// by folding the merged output exactly as the engine's result drain does.
func mergeAggParts(parts []*QueryResponse, fn operators.AggFunc, limit int) *QueryResponse {
	agg := operators.NewAggregator(fn)
	for _, p := range parts {
		agg.AbsorbGroups(p.Groups)
	}
	cols := parts[0].Columns
	res := agg.Emit(cols[0], cols[1])
	n := res.NumRows()
	var checksum int64
	for i := 0; i < n; i++ {
		for c := range res.Cols {
			checksum += res.Cols[c][i]
		}
	}
	shown := n
	if limit > 0 && shown > limit {
		shown = limit
	}
	rows := make([][]int64, shown)
	for i := range rows {
		rows[i] = res.Row(i)
	}
	out := &QueryResponse{
		Columns:        cols,
		Strategy:       parts[0].Strategy,
		Rows:           rows,
		RowCount:       n,
		Checksum:       checksum,
		ResultCacheHit: true,
		PlanCacheHit:   true,
	}
	for _, p := range parts {
		out.Workers += p.Workers
		out.Morsels += p.Morsels
		if p.Queued > out.Queued {
			out.Queued = p.Queued
		}
		out.EstCostUS += p.EstCostUS
		out.ResultCacheHit = out.ResultCacheHit && p.ResultCacheHit
		out.PlanCacheHit = out.PlanCacheHit && p.PlanCacheHit
	}
	return out
}

// CoordinatorStats is the coordinator's /stats snapshot: its own fan-out
// counters, every shard's live Stats, and a field-wise numeric sum of the
// shard snapshots.
type CoordinatorStats struct {
	NumShards     int      `json:"num_shards"`
	Endpoints     []string `json:"endpoints"`
	Queries       int64    `json:"queries"`
	FannedOut     int64    `json:"fanned_out"`
	RoutedSingle  int64    `json:"routed_single"`
	ShardRequests int64    `json:"shard_requests"`
	PrunedShards  int64    `json:"pruned_shards"`
	ShardErrors   int64    `json:"shard_errors"`
	AggMerges     int64    `json:"agg_merges"`
	// CopartJoins counts joins fanned out shard-local with no inner
	// replication (both sides co-partitioned on the join keys); the ci smoke
	// greps it. FinalizedAggs counts partition-key aggregations merged from
	// finalized shard rows (no statistics wire); RowIDMerges counts
	// key-partitioned fan-outs restored to global row order by row id.
	CopartJoins   int64 `json:"copartitioned_joins"`
	FinalizedAggs int64 `json:"finalized_aggs"`
	RowIDMerges   int64 `json:"rowid_merges"`
	// Shards holds each shard's own /stats document (null for a shard that
	// did not answer); ShardTotals is their field-wise numeric sum.
	Shards      []json.RawMessage `json:"shards"`
	ShardTotals map[string]any    `json:"shard_totals"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	st := CoordinatorStats{
		NumShards:     c.manifest.NumShards,
		Queries:       c.queries.Load(),
		FannedOut:     c.fannedOut.Load(),
		RoutedSingle:  c.routedSingle.Load(),
		ShardRequests: c.shardRequests.Load(),
		PrunedShards:  c.prunedShards.Load(),
		ShardErrors:   c.shardErrors.Load(),
		AggMerges:     c.aggMerges.Load(),
		CopartJoins:   c.copartJoins.Load(),
		FinalizedAggs: c.finalizedAggs.Load(),
		RowIDMerges:   c.rowidMerges.Load(),
		Shards:        make([]json.RawMessage, len(c.shards)),
		ShardTotals:   map[string]any{},
	}
	var wg sync.WaitGroup
	for k := range c.shards {
		st.Endpoints = append(st.Endpoints, c.shards[k].url)
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.shards[k].url+"/stats", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			st.Shards[k] = raw
		}(k)
	}
	wg.Wait()
	for _, raw := range st.Shards {
		if raw == nil {
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			continue
		}
		sumJSONNumbers(st.ShardTotals, doc)
	}
	writeJSON(w, http.StatusOK, st)
}

// sumJSONNumbers folds src's numeric fields into dst, recursing through
// nested objects — the shard-count-agnostic way to aggregate shard /stats
// documents without hand-maintaining a field list.
func sumJSONNumbers(dst map[string]any, src map[string]any) {
	for k, v := range src {
		switch sv := v.(type) {
		case float64:
			cur, _ := dst[k].(float64)
			dst[k] = cur + sv
		case map[string]any:
			sub, ok := dst[k].(map[string]any)
			if !ok {
				sub = map[string]any{}
				dst[k] = sub
			}
			sumJSONNumbers(sub, sv)
		}
	}
}

// handleReady reports coordinator readiness: ready only when EVERY shard's
// /readyz answers 200, so a load balancer stops routing to the coordinator
// while any shard drains or sheds — a scatter-gather request needs all of
// them.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	type shardReady struct {
		Shard int    `json:"shard"`
		URL   string `json:"url"`
		Ready bool   `json:"ready"`
	}
	out := make([]shardReady, len(c.shards))
	var wg sync.WaitGroup
	for k := range c.shards {
		out[k] = shardReady{Shard: k, URL: c.shards[k].url}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.shards[k].url+"/readyz", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			resp.Body.Close()
			out[k].Ready = resp.StatusCode == http.StatusOK
		}(k)
	}
	wg.Wait()
	ready := true
	for _, s := range out {
		ready = ready && s.Ready
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "shards": out})
}

// sortedProjections returns the manifest's projection names sorted (log and
// test helper).
func (c *Coordinator) sortedProjections() []string {
	names := make([]string, 0, len(c.manifest.Projections))
	for name := range c.manifest.Projections {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders a one-line coordinator description.
func (c *Coordinator) String() string {
	return fmt.Sprintf("service.Coordinator{shards=%d, projections=%v, timeout=%s}",
		c.manifest.NumShards, c.sortedProjections(), c.timeout)
}
