package service

import (
	"strings"
	"testing"

	"matstore/internal/storage"
)

// TestCopartitionErrorNamesMismatch pins the diagnostic text of every
// incompatible-right-side shape, including the shard-count mismatch that a
// single valid manifest cannot produce (both schemes must match its shard
// count) but a federation of differently-generated layouts could.
func TestCopartitionErrorNamesMismatch(t *testing.T) {
	keyed := func(col string, shards int) storage.ShardPlacement {
		return storage.ShardPlacement{Sharded: true, Partition: &storage.PartitionScheme{
			Column: col, Hash: storage.PartitionHashName, Shards: shards,
		}}
	}
	req := JoinRequest{Left: "orders", Right: "customer", LeftKey: "custkey", RightKey: "custkey"}

	cases := []struct {
		name     string
		left     storage.ShardPlacement
		right    storage.ShardPlacement
		wantSubs []string
	}{
		{
			"shard counts differ",
			keyed("custkey", 2), keyed("custkey", 4),
			[]string{"shard counts differ (2 vs 4)", `"orders" is partitioned on "custkey" into 2 shards`},
		},
		{
			"wrong partition column",
			keyed("shipdate", 2), keyed("custkey", 2),
			[]string{`"orders" is partitioned on "shipdate", not its join key "custkey"`},
		},
		{
			"range-sharded right",
			keyed("custkey", 2), storage.ShardPlacement{Sharded: true},
			[]string{`"customer" is range-sharded with no partition key`},
		},
		{
			"replicated left",
			storage.ShardPlacement{}, keyed("nationcode", 2),
			[]string{`"orders" is replicated`, `"customer" is partitioned on "nationcode", not its join key "custkey"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := copartitionError(req, tc.left, tc.right).Error()
			for _, sub := range append(tc.wantSubs, "-partition-key orders.custkey,customer.custkey") {
				if !strings.Contains(msg, sub) {
					t.Errorf("error %q\nmissing %q", msg, sub)
				}
			}
		})
	}
}
