// Coordinator differential suite: every scatter-gather response must be
// byte-identical (rows, row order, row count, checksum) to a single-process
// engine over the un-sharded directory, at shard counts {1,2,4} and
// parallelism {1,4}. Runs under -race via `go test -race ./internal/...`.
package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"matstore"
	"matstore/internal/core"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

var (
	shardedOnce sync.Once
	shardedRoot string
	shardedErr  error

	keypartOnce sync.Once
	keypartRoot string
	keypartErr  error
)

// shardedData generates one sharded layout per shard count, from the SAME
// generator config as the shared single-directory dataset, under a common
// temp root removed by TestMain.
func shardedData(t *testing.T) string {
	t.Helper()
	shardedOnce.Do(func() {
		shardedRoot, shardedErr = os.MkdirTemp("", "matstore-shard-test")
		if shardedErr != nil {
			return
		}
		for _, n := range []int{1, 2, 4} {
			dir := fmt.Sprintf("%s/s%d", shardedRoot, n)
			if shardedErr = os.MkdirAll(dir, 0o755); shardedErr != nil {
				return
			}
			if _, shardedErr = tpch.GenerateSharded(dir, tpch.Config{Scale: 0.002, Seed: 5}, n); shardedErr != nil {
				return
			}
		}
	})
	if shardedErr != nil {
		t.Fatal(shardedErr)
	}
	return shardedRoot
}

// keypartData generates one MIXED layout per shard count from the same
// generator config: orders and customer hash-partitioned on custkey (their
// join key), lineitem still range-sharded — the composition the coordinator
// must route per projection.
func keypartData(t *testing.T) string {
	t.Helper()
	keypartOnce.Do(func() {
		keypartRoot, keypartErr = os.MkdirTemp("", "matstore-keypart-test")
		if keypartErr != nil {
			return
		}
		layout := tpch.ShardLayout{PartitionKeys: map[string]string{
			tpch.OrdersProj:   tpch.ColCustkey,
			tpch.CustomerProj: tpch.ColCustkey,
		}}
		for _, n := range []int{1, 2, 4} {
			dir := fmt.Sprintf("%s/s%d", keypartRoot, n)
			if keypartErr = os.MkdirAll(dir, 0o755); keypartErr != nil {
				return
			}
			if _, keypartErr = tpch.GenerateShardedLayout(dir, tpch.Config{Scale: 0.002, Seed: 5}, n, layout); keypartErr != nil {
				return
			}
		}
	})
	if keypartErr != nil {
		t.Fatal(keypartErr)
	}
	return keypartRoot
}

// fleet is a running scatter-gather deployment: one engine per shard behind
// httptest plus a coordinator fronting them.
type fleet struct {
	Coord *service.Coordinator
	URL   string // coordinator endpoint
}

// newFleet boots shard engines over root/s<shards>/shard-* and a
// coordinator over them. Engines run with a small chunk size so even the
// 12k-row test tables split into many morsels.
func newFleet(t *testing.T, shards int, coordCfg service.CoordinatorConfig) *fleet {
	t.Helper()
	return newFleetAt(t, fmt.Sprintf("%s/s%d", shardedData(t), shards), shards, coordCfg)
}

// newKeypartFleet boots a fleet over the mixed key-partitioned layout.
func newKeypartFleet(t *testing.T, shards int, coordCfg service.CoordinatorConfig) *fleet {
	t.Helper()
	return newFleetAt(t, fmt.Sprintf("%s/s%d", keypartData(t), shards), shards, coordCfg)
}

func newFleetAt(t *testing.T, root string, shards int, coordCfg service.CoordinatorConfig) *fleet {
	t.Helper()
	var endpoints []string
	for k := 0; k < shards; k++ {
		db, err := matstore.Open(fmt.Sprintf("%s/shard-%03d", root, k),
			matstore.Options{Exec: core.Options{ChunkSize: 1024}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		srv := service.New(db, service.Config{WorkerBudget: 2, MaxConcurrent: 4})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		endpoints = append(endpoints, ts.URL)
	}
	coord, err := service.NewCoordinator(root, endpoints, coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	return &fleet{Coord: coord, URL: ts.URL}
}

// singleEngine serves the un-sharded shared dataset — the differential
// reference.
func singleEngine(t *testing.T) string {
	t.Helper()
	srv := newServer(t, service.Config{WorkerBudget: 2, MaxConcurrent: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestCoordinatorDifferential is the tentpole acceptance suite: a mixed
// request set (selections across strategies, SUM/AVG/COUNT aggregations,
// joins against the replicated inner table, replicated-projection queries,
// limit pushdown) through coordinators at shard counts {1,2,4}, each
// request at parallelism {1,4}, versus the single-process engine. Rows, row
// order, row counts and checksums must match exactly.
func TestCoordinatorDifferential(t *testing.T) {
	single := singleEngine(t)
	type req struct {
		name string
		path string
		body string // %d is the parallelism slot
	}
	reqs := []req{
		{"sel-lm", "/query", `{"projection":"lineitem","output":["shipdate","linenum"],"where":["shipdate<400","linenum<7"],"strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"sel-em", "/query", `{"projection":"lineitem","output":["shipdate","quantity"],"where":["shipdate<1200"],"strategy":"em-pipelined","parallelism":%d,"limit":-1}`},
		{"sel-limit", "/query", `{"projection":"lineitem","output":["shipdate"],"where":["shipdate<2000"],"strategy":"lm-parallel","parallelism":%d,"limit":7}`},
		{"agg-sum", "/query", `{"projection":"lineitem","groupby":"returnflag","aggcol":"quantity","agg":"sum","strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"agg-avg", "/query", `{"projection":"lineitem","groupby":"returnflag","aggcol":"quantity","agg":"avg","where":["shipdate<1500"],"strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"agg-count", "/query", `{"projection":"lineitem","groupby":"linenum","aggcol":"quantity","agg":"count","strategy":"em-parallel","parallelism":%d,"limit":-1}`},
		{"agg-min", "/query", `{"projection":"orders","groupby":"custkey","aggcol":"shipdate","agg":"min","where":["custkey<40"],"strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"replicated", "/query", `{"projection":"customer","output":["custkey","nationcode"],"where":["custkey<25"],"strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"join", "/join", `{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"where":["custkey<100"],"rightstrategy":"right-materialized","parallelism":%d,"limit":-1}`},
		{"join-limit", "/join", `{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"rightstrategy":"right-multicolumn","parallelism":%d,"limit":9}`},
	}
	for _, shards := range []int{1, 2, 4} {
		fl := newFleet(t, shards, service.CoordinatorConfig{})
		for _, r := range reqs {
			for _, par := range []int{1, 4} {
				body := fmt.Sprintf(r.body, par)
				var want, got service.QueryResponse
				postJSON(t, single+r.path, body, &want)
				postJSON(t, fl.URL+r.path, body, &got)
				label := fmt.Sprintf("shards=%d par=%d %s", shards, par, r.name)
				if !reflect.DeepEqual(got.Columns, want.Columns) {
					t.Errorf("%s: columns %v, want %v", label, got.Columns, want.Columns)
				}
				if !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Errorf("%s: rows differ (%d vs %d shown)", label, len(got.Rows), len(want.Rows))
				}
				if got.RowCount != want.RowCount || got.Checksum != want.Checksum {
					t.Errorf("%s: rows/checksum %d/%d, want %d/%d",
						label, got.RowCount, got.Checksum, want.RowCount, want.Checksum)
				}
			}
		}
	}
}

// TestCoordinatorExplain: explain fans out and concatenates per-shard trees
// under global row-range headers; single-shard layouts pass through.
func TestCoordinatorExplain(t *testing.T) {
	fl := newFleet(t, 2, service.CoordinatorConfig{})
	var ex service.ExplainResponse
	postJSON(t, fl.URL+"/explain",
		`{"projection":"lineitem","output":["shipdate"],"where":["shipdate<400"],"strategy":"lm-parallel"}`, &ex)
	if !strings.Contains(ex.Tree, "shard 0") || !strings.Contains(ex.Tree, "shard 1") {
		t.Errorf("fanned explain tree lacks shard headers:\n%s", ex.Tree)
	}
	if !strings.Contains(ex.Tree, "rows [0,") {
		t.Errorf("explain tree lacks global row ranges:\n%s", ex.Tree)
	}
	if ex.ModeledUS <= 0 || ex.Strategy == "" {
		t.Errorf("merged explain missing modeled cost or strategy: %+v", ex)
	}
	// Join explain routes by the outer table (sharded → fan out).
	var jex service.ExplainResponse
	postJSON(t, fl.URL+"/explain",
		`{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"rightstrategy":"right-materialized"}`, &jex)
	if !strings.Contains(jex.Tree, "shard 1") {
		t.Errorf("join explain did not fan out:\n%s", jex.Tree)
	}

	// Key-partitioned projections label each shard with its hash scheme
	// instead of a row range.
	kfl := newKeypartFleet(t, 2, service.CoordinatorConfig{})
	var kex service.ExplainResponse
	postJSON(t, kfl.URL+"/explain",
		`{"projection":"orders","output":["custkey"],"where":["custkey<100"],"strategy":"lm-parallel"}`, &kex)
	if !strings.Contains(kex.Tree, "hash(custkey) mod 2 == 1") {
		t.Errorf("key-partitioned explain lacks hash-scheme headers:\n%s", kex.Tree)
	}
}

// TestCoordinatorPruning: a predicate refuted by a shard's min/max
// statistics prunes that shard from the fan-out (the sort column's value
// ranges barely overlap across shards), with results still exact.
func TestCoordinatorPruning(t *testing.T) {
	single := singleEngine(t)
	fl := newFleet(t, 2, service.CoordinatorConfig{})
	// lineitem is sorted by returnflag, so shard 1's returnflag min exceeds
	// a tight low-range predicate's upper bound: returnflag<1 prunes shard 1
	// (shard 0 spans flags [0,1], shard 1 flags [1,2]).
	m := fl.Coord.Manifest()
	pl, _ := m.Placement(tpch.LineitemProj)
	if !pl.Sharded || pl.Ranges[1].Len() == 0 {
		t.Skip("layout did not shard lineitem into two populated shards")
	}
	body := `{"projection":"lineitem","output":["shipdate","linenum"],"where":["returnflag<1"],"strategy":"lm-parallel","limit":-1}`
	var want, got service.QueryResponse
	postJSON(t, single+"/query", body, &want)
	postJSON(t, fl.URL+"/query", body, &got)
	if !reflect.DeepEqual(got.Rows, want.Rows) || got.Checksum != want.Checksum {
		t.Errorf("pruned query differs: %d/%d rows, checksum %d/%d",
			len(got.Rows), len(want.Rows), got.Checksum, want.Checksum)
	}
	var st service.CoordinatorStats
	getJSON(t, fl.URL+"/stats", &st)
	if st.PrunedShards == 0 {
		t.Error("low-range predicate pruned no shards")
	}
	if st.ShardRequests == 0 || st.Queries == 0 {
		t.Errorf("fan-out counters not accounted: %+v", st)
	}
}

// TestCoordinatorStatsAndReady: /stats aggregates shard snapshots and
// /readyz requires every shard ready.
func TestCoordinatorStatsAndReady(t *testing.T) {
	fl := newFleet(t, 2, service.CoordinatorConfig{})
	var q service.QueryResponse
	postJSON(t, fl.URL+"/query",
		`{"projection":"lineitem","output":["shipdate"],"where":["shipdate<400"],"limit":-1}`, &q)

	var st service.CoordinatorStats
	getJSON(t, fl.URL+"/stats", &st)
	if st.NumShards != 2 || len(st.Shards) != 2 {
		t.Fatalf("stats shards = %d/%d", st.NumShards, len(st.Shards))
	}
	queries, ok := st.ShardTotals["queries"].(float64)
	if !ok || queries < 1 {
		t.Errorf("shard totals did not sum queries: %v", st.ShardTotals["queries"])
	}
	if st.FannedOut+st.RoutedSingle == 0 {
		t.Error("no routing recorded")
	}

	resp, err := http.Get(fl.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz = %d with all shards up", resp.StatusCode)
	}
}

// TestCoordinatorShardFailures: per-shard timeouts map to 504, refused
// connections to 502, and a shedding shard's 503 propagates with the
// largest Retry-After.
func TestCoordinatorShardFailures(t *testing.T) {
	root := fmt.Sprintf("%s/s2", shardedData(t))

	// Stub shards: 0 sheds with Retry-After 3, 1 sheds with Retry-After 7.
	shed := func(after string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", after)
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"shed"}`)
		}))
	}
	s0, s1 := shed("3"), shed("7")
	defer s0.Close()
	defer s1.Close()
	coord, err := service.NewCoordinator(root, []string{s0.URL, s1.URL}, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	body := `{"projection":"lineitem","output":["shipdate"],"where":["shipdate<3000"],"limit":-1}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "7" {
		t.Errorf("shedding shards: HTTP %d Retry-After %q, want 503 with 7",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Slow shard past the fan-out timeout: 504.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, `{}`)
	}))
	defer slow.Close()
	coord2, err := service.NewCoordinator(root, []string{slow.URL, slow.URL}, service.CoordinatorConfig{ShardTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(coord2.Handler())
	defer ts2.Close()
	resp2, err := http.Post(ts2.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("slow shards: HTTP %d, want 504", resp2.StatusCode)
	}

	// Dead shard: 502.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	coord3, err := service.NewCoordinator(root, []string{deadURL, deadURL}, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(coord3.Handler())
	defer ts3.Close()
	resp3, err := http.Post(ts3.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadGateway {
		t.Errorf("dead shards: HTTP %d, want 502", resp3.StatusCode)
	}
}

// TestCoordinatorRejectsShardedRightJoin: a join whose inner table is
// sharded (here: lineitem as the right side) is a 400 up front — shard-local
// joins need a replicated inner table.
func TestCoordinatorRejectsShardedRightJoin(t *testing.T) {
	fl := newFleet(t, 2, service.CoordinatorConfig{})
	body := `{"left":"orders","right":"lineitem","leftkey":"custkey","rightkey":"linenum","leftout":["shipdate"],"rightout":["quantity"]}`
	resp, err := http.Post(fl.URL+"/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sharded-right join: HTTP %d, want 400", resp.StatusCode)
	}
	var e map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e["error"], "replicated") {
		t.Errorf("error %q does not explain the replication requirement", e["error"])
	}
}

// TestCoordinatorKeyPartitionedDifferential is the key-partitioned half of
// the tentpole acceptance suite: selections merged back into global row
// order by row id, co-partitioned joins running shard-local with NO inner
// replication, partition-key aggregations merged from finalized shard rows,
// and non-partition-key aggregations still taking the statistics wire — all
// byte-identical to the single-process engine at shard counts {1,2,4} ×
// parallelism {1,4}, over a mixed layout (lineitem stays range-sharded).
func TestCoordinatorKeyPartitionedDifferential(t *testing.T) {
	single := singleEngine(t)
	type req struct {
		name string
		path string
		body string // %d is the parallelism slot
	}
	reqs := []req{
		{"sel-orders", "/query", `{"projection":"orders","output":["custkey","shipdate"],"where":["custkey<100"],"strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"sel-orders-em", "/query", `{"projection":"orders","output":["shipdate"],"where":["shipdate<1500"],"strategy":"em-pipelined","parallelism":%d,"limit":-1}`},
		{"sel-limit", "/query", `{"projection":"orders","output":["custkey","shipdate"],"where":["custkey<200"],"strategy":"lm-parallel","parallelism":%d,"limit":7}`},
		{"sel-customer", "/query", `{"projection":"customer","output":["custkey","nationcode"],"where":["custkey<50"],"strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"sel-lineitem-range", "/query", `{"projection":"lineitem","output":["shipdate","linenum"],"where":["shipdate<400"],"strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"agg-finalized-min", "/query", `{"projection":"orders","groupby":"custkey","aggcol":"shipdate","agg":"min","strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"agg-finalized-sum", "/query", `{"projection":"orders","groupby":"custkey","aggcol":"shipdate","agg":"sum","where":["shipdate<1500"],"strategy":"lm-parallel","parallelism":%d,"limit":-1}`},
		{"agg-finalized-limit", "/query", `{"projection":"orders","groupby":"custkey","aggcol":"shipdate","agg":"avg","parallelism":%d,"limit":11}`},
		{"agg-stats-wire", "/query", `{"projection":"orders","groupby":"shipdate","aggcol":"custkey","agg":"count","where":["shipdate<600"],"parallelism":%d,"limit":-1}`},
		{"join-copart", "/join", `{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"where":["custkey<120"],"rightstrategy":"right-materialized","parallelism":%d,"limit":-1}`},
		{"join-copart-limit", "/join", `{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"rightstrategy":"right-multicolumn","parallelism":%d,"limit":9}`},
	}
	for _, shards := range []int{1, 2, 4} {
		fl := newKeypartFleet(t, shards, service.CoordinatorConfig{})
		for _, r := range reqs {
			for _, par := range []int{1, 4} {
				body := fmt.Sprintf(r.body, par)
				var want, got service.QueryResponse
				postJSON(t, single+r.path, body, &want)
				postJSON(t, fl.URL+r.path, body, &got)
				label := fmt.Sprintf("keypart shards=%d par=%d %s", shards, par, r.name)
				if !reflect.DeepEqual(got.Columns, want.Columns) {
					t.Errorf("%s: columns %v, want %v", label, got.Columns, want.Columns)
				}
				if !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Errorf("%s: rows differ (%d vs %d shown)", label, len(got.Rows), len(want.Rows))
				}
				if got.RowCount != want.RowCount || got.Checksum != want.Checksum {
					t.Errorf("%s: rows/checksum %d/%d, want %d/%d",
						label, got.RowCount, got.Checksum, want.RowCount, want.Checksum)
				}
			}
		}
		// Multi-shard fleets must have exercised every key-partitioned merge
		// path: row-id merges, finalized-aggregation pushdowns, and
		// co-partitioned joins with no inner replication.
		if shards > 1 {
			var st service.CoordinatorStats
			getJSON(t, fl.URL+"/stats", &st)
			if st.RowIDMerges == 0 {
				t.Errorf("shards=%d: no row-id merges recorded", shards)
			}
			if st.FinalizedAggs == 0 {
				t.Errorf("shards=%d: no finalized aggregation pushdowns recorded", shards)
			}
			if st.CopartJoins == 0 {
				t.Errorf("shards=%d: no co-partitioned joins recorded", shards)
			}
			if st.AggMerges == 0 {
				t.Errorf("shards=%d: non-partition-key aggregation skipped the statistics wire", shards)
			}
		}
	}
}

// TestCoordinatorCopartitionErrors: a sharded right side without compatible
// partitioning is a 400 whose message names the offending projection, its
// actual partitioning, and the join key it would need.
func TestCoordinatorCopartitionErrors(t *testing.T) {
	fl := newKeypartFleet(t, 2, service.CoordinatorConfig{})
	post400 := func(t *testing.T, body string) string {
		t.Helper()
		resp, err := http.Post(fl.URL+"/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("incompatible join: HTTP %d, want 400", resp.StatusCode)
		}
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return e["error"]
	}
	t.Run("range-sharded right", func(t *testing.T) {
		// lineitem is range-sharded in the mixed layout: not co-partitionable.
		msg := post400(t, `{"left":"orders","right":"lineitem","leftkey":"custkey","rightkey":"linenum","leftout":["shipdate"],"rightout":["quantity"]}`)
		for _, wantSub := range []string{`"lineitem"`, "range-sharded", "replicated", "-partition-key"} {
			if !strings.Contains(msg, wantSub) {
				t.Errorf("error %q does not mention %q", msg, wantSub)
			}
		}
	})
	t.Run("partitioned on the wrong column", func(t *testing.T) {
		// Both sides are partitioned, but the left joins on shipdate while its
		// partition key is custkey: the message must name the mismatch.
		msg := post400(t, `{"left":"orders","right":"customer","leftkey":"shipdate","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"]}`)
		if !strings.Contains(msg, `partitioned on "custkey", not its join key "shipdate"`) {
			t.Errorf("error %q does not name the partition-column mismatch", msg)
		}
	})
}

// TestCoordinatorKeyPartitionedAllPruned: a predicate below every shard's
// key minimum prunes ALL shards of a key-partitioned projection; the
// coordinator still answers with a well-formed empty response via a
// single-shard passthrough, so fanned_out stays 0.
func TestCoordinatorKeyPartitionedAllPruned(t *testing.T) {
	fl := newKeypartFleet(t, 2, service.CoordinatorConfig{})
	var got service.QueryResponse
	postJSON(t, fl.URL+"/query",
		`{"projection":"orders","output":["custkey","shipdate"],"where":["custkey<0"],"strategy":"lm-parallel","limit":-1}`, &got)
	if len(got.Rows) != 0 || got.RowCount != 0 || got.Checksum != 0 {
		t.Errorf("all-pruned query not empty: %d rows shown, count %d, checksum %d",
			len(got.Rows), got.RowCount, got.Checksum)
	}
	if !reflect.DeepEqual(got.Columns, []string{"custkey", "shipdate"}) {
		t.Errorf("all-pruned response lost its columns: %v", got.Columns)
	}
	var st service.CoordinatorStats
	getJSON(t, fl.URL+"/stats", &st)
	if st.PrunedShards < 2 {
		t.Errorf("pruned_shards = %d, want both shards pruned", st.PrunedShards)
	}
	if st.FannedOut != 0 {
		t.Errorf("fanned_out = %d after a fully-pruned query, want 0", st.FannedOut)
	}
	if st.RoutedSingle == 0 {
		t.Error("fully-pruned query did not route to a fallback shard")
	}
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}
