//go:build faultinject

package service_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"matstore"
	"matstore/internal/faults"
	"matstore/internal/memory"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// Extended fault-injection suite, built with -tags faultinject (ci.sh runs
// it after the regular pass): scenarios that stretch timing with slow-IO
// faults or hammer the governor with more concurrency than the default
// suite, proving shed-under-saturation and cache-demotion fault paths keep
// the server serving.

// TestFaultinjectSaturationShedsAndKeepsServing drives more concurrent
// spilling joins than the memory governor can queue, with slow-IO faults
// stretching each spill so the pile-up is real: some requests shed with
// memory.ErrShed, every non-shed request returns the byte-identical result,
// and afterwards the governor has fully drained.
func TestFaultinjectSaturationShedsAndKeepsServing(t *testing.T) {
	defer faults.Reset()
	spillDir := t.TempDir()
	srv := newServer(t, service.Config{
		WorkerBudget: 4,
		// 4 KiB: every join's spill grant is the whole budget, so governed
		// joins serialize and latecomers queue up to the waiter cap.
		MemoryBudgetBytes: 4 << 10,
		SpillDir:          spillDir,
		ResultCacheBytes:  -1,
	})
	q := matstore.JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    matstore.MatchAll,
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
	ref, err := srv.NewSession().Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, q, matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Stats.Join.Spilled {
		t.Fatal("fixture join did not spill")
	}

	faults.Enable("spill.write", faults.Failpoint{Mode: faults.Slow, Delay: 20 * time.Millisecond})
	const requests = 64 // well past the budget holder + 32-deep wait queue
	var wg sync.WaitGroup
	errs := make([]error, requests)
	results := make([]*matstore.Result, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := srv.NewSession().Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, q, matstore.RightMaterialized)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = out.Res
		}(i)
	}
	wg.Wait()
	faults.Reset()

	shed, served := 0, 0
	for i := 0; i < requests; i++ {
		switch {
		case errs[i] == nil:
			served++
			if !reflect.DeepEqual(results[i].Cols, ref.Res.Cols) {
				t.Fatalf("request %d: result differs under saturation", i)
			}
		case errors.Is(errs[i], memory.ErrShed):
			shed++
		default:
			t.Fatalf("request %d: unexpected error %v", i, errs[i])
		}
	}
	if shed == 0 {
		t.Error("no request shed past the waiter cap")
	}
	if served == 0 {
		t.Error("no request served under saturation")
	}
	t.Logf("saturation: %d served, %d shed", served, shed)

	st := srv.Stats()
	if st.Memory.Reserved != 0 {
		t.Errorf("governor did not drain: %d bytes reserved", st.Memory.Reserved)
	}
	if st.Memory.Shed != int64(shed) {
		t.Errorf("stats shed_count = %d, observed %d", st.Memory.Shed, shed)
	}
	if st.Memory.PeakReserved > 4<<10 {
		t.Errorf("peak reserved %d exceeded the 4 KiB budget", st.Memory.PeakReserved)
	}
	assertNoSpillFiles(t, spillDir)
}

// TestFaultinjectCacheDemotionFaults arms the build-cache demotion and
// rehydration fault sites while alternating join shapes churn a build cache
// sized for one entry: a failed demotion just counts (the evicted build is
// dropped), a failed rehydration falls back to a fresh build — results stay
// byte-identical throughout and no temp files leak.
func TestFaultinjectCacheDemotionFaults(t *testing.T) {
	defer faults.Reset()
	baseGoroutines := runtime.NumGoroutine()
	spillDir := t.TempDir()
	srv := newServer(t, service.Config{
		WorkerBudget:      2,
		MemoryBudgetBytes: 1 << 30,  // plenty: joins run in memory, builds cache
		BuildCacheBytes:   24 << 10, // one ~17 KiB customer build fits, two don't
		SpillDir:          spillDir,
		ResultCacheBytes:  -1,
	})
	sess := srv.NewSession()
	q := matstore.JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    matstore.MatchAll,
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
	// Two shapes with distinct build keys: alternating them evicts (and so
	// demotes) the other's build every time.
	strats := []matstore.RightStrategy{matstore.RightMaterialized, matstore.RightMultiColumn}
	want := make([]*matstore.Result, len(strats))
	for i, rs := range strats {
		out, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, q, rs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out.Res
	}

	for _, site := range []string{"cache.demote", "cache.rehydrate"} {
		faults.Enable(site, faults.Failpoint{Mode: faults.Error})
		for round := 0; round < 3; round++ {
			for i, rs := range strats {
				out, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, q, rs)
				if err != nil {
					t.Fatalf("%s round %d: %v", site, round, err)
				}
				if !reflect.DeepEqual(out.Res.Cols, want[i].Cols) {
					t.Fatalf("%s round %d: result differs with fault armed", site, round)
				}
			}
		}
		faults.Reset()
	}
	st := srv.Stats()
	if st.BuildCache.Demotions == 0 && st.BuildCache.DemoteFailures == 0 {
		t.Errorf("churn produced no demotion activity: %+v", st.BuildCache)
	}
	if st.Memory.Reserved != 0 {
		t.Errorf("reservations leaked: %d", st.Memory.Reserved)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseGoroutines+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+2 {
		t.Errorf("goroutines did not settle: %d, started with %d", n, baseGoroutines)
	}
}
