package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"matstore"
	"matstore/internal/memory"
	"matstore/internal/obs"
	"matstore/internal/operators"
	"matstore/internal/storage"
)

// TraceIDHeader carries the request's trace id: the coordinator stamps it on
// shard requests so a shard's span tree grafts into the coordinator's under
// one id, and every response echoes it for correlation.
const TraceIDHeader = "X-CS-Trace-Id"

// HTTP front-end: JSON endpoints over a Server. Every request runs through
// a fresh session and the admission gate.
//
//	POST /query   {projection, output, where, groupby, aggcol, agg,
//	               strategy, parallelism, limit}
//	POST /join    {left, right, leftkey, rightkey, where, leftout, rightout,
//	               rightstrategy, parallelism, limit}
//	POST /explain query body (join body when "right" is set) -> plan tree
//	GET  /stats   admission, worker and cache counters
//
// where is a list of "col<op>value" strings (ParseWhere syntax); /join
// accepts at most one, over the outer join key. strategy accepts the four
// strategy names or "advise" (the cost model picks); rightstrategy accepts
// the three right-side names or "advise" (the Section 4.3 terms pick).

// QueryRequest is the /query (and selection /explain) body.
type QueryRequest struct {
	Projection  string   `json:"projection"`
	Output      []string `json:"output,omitempty"`
	Where       []string `json:"where,omitempty"`
	GroupBy     string   `json:"groupby,omitempty"`
	AggCol      string   `json:"aggcol,omitempty"`
	Agg         string   `json:"agg,omitempty"`
	Strategy    string   `json:"strategy,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	Limit       int      `json:"limit,omitempty"`
	// Partial marks a scatter-gather shard request: an aggregating query
	// answers with the mergeable per-group statistics (groups) instead of
	// emitted rows, because emitted aggregate values do not merge across
	// shards (AVG loses its count). Selections are unaffected — their row
	// partials concatenate and their checksums add.
	Partial bool `json:"partial,omitempty"`
	// RowIDs marks a shard request over a key-partitioned projection: the
	// engine reads the hidden storage.RowIDColumn alongside the requested
	// outputs and ships each shown row's global row id in rowids (stripping
	// the column from columns/rows/checksum), so the coordinator can k-way
	// merge the shards' global-order subsequences back into global row order.
	RowIDs bool `json:"rowids,omitempty"`
	// Trace requests a span tree: the response's trace field carries the
	// request's full timing breakdown (admission, caches, per-plan-node
	// execution; through the coordinator, each shard's sub-tree).
	Trace bool `json:"trace,omitempty"`
}

// JoinRequest is the /join (and join /explain) body.
type JoinRequest struct {
	Left          string   `json:"left"`
	Right         string   `json:"right"`
	LeftKey       string   `json:"leftkey"`
	RightKey      string   `json:"rightkey"`
	Where         []string `json:"where,omitempty"`
	LeftOutput    []string `json:"leftout,omitempty"`
	RightOutput   []string `json:"rightout,omitempty"`
	RightStrategy string   `json:"rightstrategy,omitempty"`
	Parallelism   int      `json:"parallelism,omitempty"`
	Limit         int      `json:"limit,omitempty"`
	// RowIDs: as in QueryRequest, over the left (outer) projection — the
	// hidden row-id column rides the left output list through the probe.
	RowIDs bool `json:"rowids,omitempty"`
	// Trace: as in QueryRequest.
	Trace bool `json:"trace,omitempty"`
}

// QueryResponse is the /query and /join response.
type QueryResponse struct {
	Columns  []string  `json:"columns"`
	Rows     [][]int64 `json:"rows"`
	RowCount int       `json:"row_count"`
	Checksum int64     `json:"checksum"`
	Strategy string    `json:"strategy"`
	Wall     int64     `json:"wall_nanos"`
	Workers  int       `json:"workers"`
	Morsels  int       `json:"morsels"`
	Queued   int64     `json:"queued_nanos"`
	Session  int64     `json:"session"`
	// EstCostUS is the model estimate the admission grant sizer used.
	EstCostUS float64 `json:"est_cost_us"`
	// Cache reuse flags: the ci smoke greps result_cache_hit on a repeated
	// query and build_cache_hit on a repeated join.
	ResultCacheHit bool `json:"result_cache_hit"`
	PlanCacheHit   bool `json:"plan_cache_hit"`
	BuildCacheHit  bool `json:"build_cache_hit"`
	// Groups is a partial aggregation's exported per-group mergeable
	// statistics (set only for partial=true aggregating requests, which omit
	// rows); the coordinator absorbs every shard's groups and re-emits.
	Groups []operators.GroupStats `json:"groups,omitempty"`
	// RowIDs parallels Rows for rowids=true requests: each shown row's
	// global row id, the coordinator's merge key.
	RowIDs []int64 `json:"rowids,omitempty"`
	// Join-only counters.
	Partitions      int   `json:"partitions,omitempty"`
	Probes          int64 `json:"probes,omitempty"`
	BuildTuples     int64 `json:"build_tuples,omitempty"`
	DeferredFetches int64 `json:"deferred_fetches,omitempty"`
	// Memory-governance fields: the byte reservation the request held, and
	// whether the governor forced the join's build side into Grace spill mode
	// (the ci smoke greps "spilled":true under a tiny budget).
	ReservedBytes     int64 `json:"reserved_bytes,omitempty"`
	Spilled           bool  `json:"spilled,omitempty"`
	SpilledPartitions int   `json:"spilled_partitions,omitempty"`
	SpillBytes        int64 `json:"spill_bytes,omitempty"`
	// Trace is the request's span tree, present only when the request asked
	// for one — omitempty keeps untraced responses byte-identical to before
	// tracing existed.
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// ExplainResponse is the /explain response.
type ExplainResponse struct {
	Strategy  string         `json:"strategy"`
	Tree      string         `json:"tree"`
	ModeledUS float64        `json:"modeled_total_us"`
	Wall      int64          `json:"wall_nanos"`
	Workers   int            `json:"workers"`
	RowCount  int            `json:"row_count"`
	Trace     *obs.TraceJSON `json:"trace,omitempty"`
}

const defaultRowLimit = 100

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	m := s.metrics
	mux.Handle("/query", instrument(m.requests, m.latency, "query", s.handleQuery))
	mux.Handle("/join", instrument(m.requests, m.latency, "join", s.handleJoin))
	mux.Handle("/explain", instrument(m.requests, m.latency, "explain", s.handleExplain))
	mux.Handle("/stats", instrument(m.requests, m.latency, "stats",
		func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.Stats())
		}))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writePrometheus(w, m.reg)
	})
	// Liveness: the process is up and serving HTTP — always 200.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthBody(s.start))
	})
	// Readiness: 503 while draining (SIGTERM received, connections finishing)
	// or under memory pressure (requests queued for byte reservations), so a
	// load balancer routes around this instance before requests pile up.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		draining, pressured := s.Draining(), s.MemoryPressured()
		status := http.StatusOK
		if draining || pressured {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]bool{
			"ready":           status == http.StatusOK,
			"draining":        draining,
			"memory_pressure": pressured,
		})
	})
	return mux
}

// statusWriter records the status an instrumented handler wrote so the
// middleware can label its metrics by outcome.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps an endpoint handler to count requests and observe latency
// by endpoint × outcome. Shared by the engine server and the coordinator.
func instrument(requests *obs.CounterVec, latency *obs.HistogramVec, endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := outcomeOf(status)
		requests.With(endpoint, outcome).Inc()
		latency.With(endpoint, outcome).Observe(time.Since(start).Seconds())
	})
}

// writePrometheus serves a registry in Prometheus text exposition format.
func writePrometheus(w http.ResponseWriter, reg *obs.Registry) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}

// healthBody is the enriched /healthz payload both serving processes return.
func healthBody(start time.Time) map[string]any {
	return map[string]any{
		"status":         "ok",
		"version":        obs.Version,
		"go":             runtime.Version(),
		"pid":            os.Getpid(),
		"uptime_seconds": time.Since(start).Seconds(),
	}
}

// ensureTraceID resolves the request's trace id — the propagated
// X-CS-Trace-Id header when present (a coordinator fan-out), a fresh random
// id otherwise — and echoes it on the response so every reply is
// correlatable even when no span tree was requested.
func ensureTraceID(w http.ResponseWriter, r *http.Request) string {
	tid := r.Header.Get(TraceIDHeader)
	if tid == "" {
		tid = obs.NewTraceID()
	}
	w.Header().Set(TraceIDHeader, tid)
	return tid
}

func (r QueryRequest) build() (matstore.Query, error) {
	filters, err := parseWhereList(r.Where)
	if err != nil {
		return matstore.Query{}, err
	}
	q := matstore.Query{
		Output:      r.Output,
		Filters:     filters,
		GroupBy:     r.GroupBy,
		AggCol:      r.AggCol,
		Parallelism: r.Parallelism,
	}
	if r.Agg != "" {
		if q.Agg, err = matstore.ParseAggFunc(r.Agg); err != nil {
			return matstore.Query{}, err
		}
	}
	return q, nil
}

// strategyFor resolves the request strategy, consulting the cost model for
// "advise" (the advisor needs at least one filter; it falls back to
// LM-parallel otherwise, the paper's all-round default).
func (s *Server) strategyFor(name, projection string, q matstore.Query) (matstore.Strategy, error) {
	switch name {
	case "", "advise":
		if name == "advise" && len(q.Filters) > 0 {
			adv, err := s.db.AdviseParallel(projection, q, s.cfg.WorkerBudget)
			if err != nil {
				return 0, err
			}
			return adv.Best, nil
		}
		return matstore.LMParallel, nil
	default:
		return matstore.ParseStrategy(name)
	}
}

// startTrace attaches a new trace to ctx when the request asked for one.
func (s *Server) startTrace(ctx context.Context, tid, root string, want bool) (context.Context, *obs.Trace) {
	if !want {
		return ctx, nil
	}
	s.metrics.traced.Inc()
	tr := obs.NewTrace(tid, root)
	return obs.ContextWithSpan(ctx, tr.Root()), tr
}

// noteSlow emits the structured slow-query record — query shape, trace
// summary and the modeled-vs-observed delta — once wall time crosses the
// configured threshold.
func (s *Server) noteSlow(endpoint, tid, shape string, wall time.Duration, modeledUS float64, tr *obs.Trace) {
	th := s.cfg.SlowQueryMicros
	if th <= 0 || wall < time.Duration(th)*time.Microsecond {
		return
	}
	s.metrics.slow.Inc()
	kv := []any{"trace_id", tid, "endpoint", endpoint, "shape", shape,
		"wall_us", wall.Microseconds(), "modeled_us", int64(modeledUS),
		"delta_us", wall.Microseconds() - int64(modeledUS)}
	if tj := tr.JSON(); tj != nil {
		kv = append(kv, "phases", spanSummary(tj.Root))
	}
	s.logger.Info("slow query", kv...)
}

// spanSummary renders a compact trace summary: each top-level phase with
// its duration in µs.
func spanSummary(root *obs.SpanJSON) string {
	if root == nil {
		return ""
	}
	var b strings.Builder
	for i, c := range root.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%dus", c.Name, c.DurNS/1000)
	}
	return b.String()
}

// shape renders the request compactly for the slow-query log.
func (r QueryRequest) shape() string {
	sh := "select " + r.Projection
	if len(r.Where) > 0 {
		sh += " where " + strings.Join(r.Where, ",")
	}
	if r.GroupBy != "" {
		sh += " groupby " + r.GroupBy
	}
	if r.Agg != "" {
		sh += " agg " + r.Agg
	}
	return sh
}

func (r JoinRequest) shape() string {
	sh := fmt.Sprintf("join %s x %s on %s=%s", r.Left, r.Right, r.LeftKey, r.RightKey)
	if len(r.Where) > 0 {
		sh += " where " + strings.Join(r.Where, ",")
	}
	return sh
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tid := ensureTraceID(w, r)
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	q, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rowids := req.RowIDs && req.GroupBy == "" && req.AggCol == ""
	if rowids {
		q.Output = append(append([]string{}, q.Output...), storage.RowIDColumn)
	}
	strat, err := s.strategyFor(req.Strategy, req.Projection, q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, tr := s.startTrace(r.Context(), tid, "query", req.Trace)
	out, err := s.NewSession().Select(ctx, req.Projection, q, strat)
	if err != nil {
		s.logger.Error("query failed", "trace_id", tid, "endpoint", "query",
			"shape", req.shape(), "error", err.Error())
		writeServiceError(w, err)
		return
	}
	resp := baseResponse(out.Res, out.Stats, out.Info, req.Limit)
	resp.Strategy = out.Stats.Strategy.String()
	if req.Partial && out.Stats.AggState != nil {
		// Shard partial of an aggregation: ship the mergeable group
		// statistics, not the emitted rows.
		resp.Groups = out.Stats.AggState.ExportGroups()
		resp.Rows = nil
	}
	if rowids {
		stripRowIDs(resp, out.Res, len(req.Output))
	}
	if tr != nil {
		tr.Root().End()
		resp.Trace = tr.JSON()
	}
	s.noteSlow("query", tid, req.shape(), out.Stats.Wall, out.Info.EstCostUS, tr)
	writeJSON(w, http.StatusOK, resp)
}

func (r JoinRequest) build() (matstore.JoinQuery, error) {
	q := matstore.JoinQuery{
		LeftKey:     r.LeftKey,
		LeftPred:    matstore.MatchAll,
		LeftOutput:  r.LeftOutput,
		RightKey:    r.RightKey,
		RightOutput: r.RightOutput,
		Parallelism: r.Parallelism,
	}
	filters, err := parseWhereList(r.Where)
	if err != nil {
		return q, err
	}
	switch len(filters) {
	case 0:
	case 1:
		if filters[0].Col != q.LeftKey {
			return q, fmt.Errorf("join where must predicate the outer join key %q, got %q", q.LeftKey, filters[0].Col)
		}
		q.LeftPred = filters[0].Pred
	default:
		return q, fmt.Errorf("join accepts at most one where predicate, got %d", len(filters))
	}
	return q, nil
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	tid := ensureTraceID(w, r)
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	q, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.RowIDs {
		q.LeftOutput = append(append([]string{}, q.LeftOutput...), storage.RowIDColumn)
	}
	rs, err := s.rightStrategyFor(req, q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, tr := s.startTrace(r.Context(), tid, "join", req.Trace)
	out, err := s.NewSession().Join(ctx, req.Left, req.Right, q, rs)
	if err != nil {
		s.logger.Error("join failed", "trace_id", tid, "endpoint", "join",
			"shape", req.shape(), "error", err.Error())
		writeServiceError(w, err)
		return
	}
	resp := baseResponse(out.Res, &out.Stats.Stats, out.Info, req.Limit)
	resp.Strategy = out.Stats.RightStrategy.String()
	resp.Partitions = out.Stats.Join.Partitions
	resp.Probes = out.Stats.Join.LeftProbes
	resp.BuildTuples = out.Stats.Join.RightBuildTuples
	resp.DeferredFetches = out.Stats.Join.DeferredFetches
	resp.ReservedBytes = out.Info.ReservedBytes
	resp.Spilled = out.Stats.Join.Spilled
	resp.SpilledPartitions = out.Stats.Join.SpilledParts
	resp.SpillBytes = out.Stats.Join.SpillBytes
	if req.RowIDs {
		stripRowIDs(resp, out.Res, len(req.LeftOutput))
	}
	if tr != nil {
		tr.Root().End()
		resp.Trace = tr.JSON()
	}
	s.noteSlow("join", tid, req.shape(), out.Stats.Stats.Wall, out.Info.EstCostUS, tr)
	writeJSON(w, http.StatusOK, resp)
}

// rightStrategyFor resolves the inner-table strategy, consulting the
// Section 4.3 cost terms for "advise".
func (s *Server) rightStrategyFor(req JoinRequest, q matstore.JoinQuery) (matstore.RightStrategy, error) {
	switch req.RightStrategy {
	case "":
		return matstore.RightMaterialized, nil
	case "advise":
		adv, err := s.db.AdviseJoin(req.Left, req.Right, q)
		if err != nil {
			return 0, err
		}
		return adv.Best, nil
	default:
		return matstore.ParseRightStrategy(req.RightStrategy)
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	tid := ensureTraceID(w, r)
	// One body shape for both: the join fields decide which explain runs.
	var probe struct {
		Right string `json:"right"`
		Trace bool   `json:"trace"`
	}
	var raw json.RawMessage
	if !decodeBody(w, r, &raw) {
		return
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, tr := s.startTrace(r.Context(), tid, "explain", probe.Trace)
	var (
		ex    *matstore.Explanation
		info  Info
		shape string
	)
	if probe.Right != "" {
		var req JoinRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		shape = req.shape()
		q, err := req.build()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rs, err := s.rightStrategyFor(req, q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if ex, info, err = s.NewSession().ExplainJoin(ctx, req.Left, req.Right, q, rs); err != nil {
			s.logger.Error("explain failed", "trace_id", tid, "endpoint", "explain",
				"shape", shape, "error", err.Error())
			writeServiceError(w, err)
			return
		}
	} else {
		var req QueryRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		shape = req.shape()
		q, err := req.build()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		strat, err := s.strategyFor(req.Strategy, req.Projection, q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if ex, info, err = s.NewSession().Explain(ctx, req.Projection, q, strat); err != nil {
			s.logger.Error("explain failed", "trace_id", tid, "endpoint", "explain",
				"shape", shape, "error", err.Error())
			writeServiceError(w, err)
			return
		}
	}
	resp := ExplainResponse{
		Strategy:  ex.Strategy.String(),
		Tree:      ex.String(),
		ModeledUS: ex.Modeled.Total(),
		Wall:      ex.Stats.Wall.Nanoseconds(),
		Workers:   info.Workers,
		RowCount:  ex.Result.NumRows(),
	}
	if tr != nil {
		tr.Root().End()
		resp.Trace = tr.JSON()
	}
	s.noteSlow("explain", tid, shape, ex.Stats.Wall, ex.Modeled.Total(), tr)
	writeJSON(w, http.StatusOK, resp)
}

func baseResponse(res *matstore.Result, stats *matstore.Stats, info Info, limit int) *QueryResponse {
	if limit == 0 {
		limit = defaultRowLimit
	}
	n := res.NumRows()
	shown := n
	if limit > 0 && shown > limit {
		shown = limit
	}
	rows := make([][]int64, shown)
	for i := range rows {
		rows[i] = res.Row(i)
	}
	return &QueryResponse{
		Columns:        res.Columns,
		Rows:           rows,
		RowCount:       n,
		Checksum:       stats.OutputChecksum,
		Wall:           stats.Wall.Nanoseconds(),
		Workers:        info.Workers,
		Morsels:        stats.Morsels,
		Queued:         info.Queued.Nanoseconds(),
		Session:        info.Session,
		EstCostUS:      info.EstCostUS,
		ResultCacheHit: info.ResultCacheHit,
		PlanCacheHit:   info.PlanCacheHit,
		BuildCacheHit:  info.BuildCacheHit,
	}
}

// stripRowIDs removes the hidden row-id column (at idx in the output list)
// from a response: each shown row's id moves into resp.RowIDs, the column
// name disappears, and the checksum drops the column's total over ALL
// result rows — the checksum covers every matching row, not just the shown
// ones — so shard checksums still sum to the single-engine value.
func stripRowIDs(resp *QueryResponse, res *matstore.Result, idx int) {
	var total int64
	for _, v := range res.Cols[idx] {
		total += v
	}
	resp.Checksum -= total
	cols := make([]string, 0, len(resp.Columns)-1)
	cols = append(cols, resp.Columns[:idx]...)
	cols = append(cols, resp.Columns[idx+1:]...)
	resp.Columns = cols
	resp.RowIDs = make([]int64, len(resp.Rows))
	for i, row := range resp.Rows {
		resp.RowIDs[i] = row[idx]
		resp.Rows[i] = append(row[:idx], row[idx+1:]...)
	}
}

func parseWhereList(where []string) ([]matstore.Filter, error) {
	var out []matstore.Filter
	for _, s := range where {
		f, err := matstore.ParsePredicateExpr(s)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost && r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	// Echo the trace id (set on the response header before any error can
	// occur) so a failing request is still correlatable with server logs.
	if tid := w.Header().Get(TraceIDHeader); tid != "" {
		body["trace_id"] = tid
	}
	writeJSON(w, status, body)
}

// writeServiceError maps a session error onto an HTTP status: request
// faults (RequestError: unknown projection/column, malformed shape) are 400,
// a cancelled or timed-out request context is 499 (the de-facto
// "client closed request" status), a memory-governor shed is 503 with a
// Retry-After hint (the correct backpressure signal for load balancers and
// retrying clients), and execution failures are 500 so monitoring and retry
// logic see a server fault.
func writeServiceError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var re *RequestError
	switch {
	case errors.As(err, &re):
		status = http.StatusBadRequest
	case errors.Is(err, memory.ErrShed):
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = 499
	}
	writeError(w, status, err)
}
