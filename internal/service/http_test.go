package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"matstore"
	"matstore/internal/service"
)

func postJSON(t *testing.T, url, body string, dst any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: HTTP %d (%v)", url, resp.StatusCode, e)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPEndpoints drives the full front-end over a real listener: /query
// against the direct engine result, /join twice for a build-cache hit,
// /explain for both plan shapes, and /stats for the counters.
func TestHTTPEndpoints(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// /query: result matches direct execution.
	var q service.QueryResponse
	postJSON(t, ts.URL+"/query",
		`{"projection":"lineitem","output":["shipdate","linenum"],"where":["shipdate<400","linenum<7"],"strategy":"lm-parallel","limit":5}`, &q)
	ref := openDB(t)
	res, stats, err := ref.Select("lineitem", matstore.Query{
		Output: []string{"shipdate", "linenum"},
		Filters: []matstore.Filter{
			{Col: "shipdate", Pred: matstore.LessThan(400)},
			{Col: "linenum", Pred: matstore.LessThan(7)},
		},
		Parallelism: 1,
	}, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if q.RowCount != res.NumRows() || q.Checksum != stats.OutputChecksum {
		t.Errorf("served rows/checksum %d/%d, direct %d/%d", q.RowCount, q.Checksum, res.NumRows(), stats.OutputChecksum)
	}
	if len(q.Rows) != 5 || len(q.Columns) != 2 {
		t.Errorf("limited response shape: %d rows, %v columns", len(q.Rows), q.Columns)
	}
	if q.Workers < 1 || q.Workers > 2 {
		t.Errorf("served workers = %d, budget 2", q.Workers)
	}

	// /query with the advisor picking the strategy.
	var adv service.QueryResponse
	postJSON(t, ts.URL+"/query",
		`{"projection":"lineitem","output":["shipdate"],"where":["shipdate<400"],"strategy":"advise"}`, &adv)
	if adv.Strategy == "" {
		t.Error("advised query reported no strategy")
	}

	// /join twice: the repeat must report a build-cache hit.
	join := `{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey",` +
		`"leftout":["shipdate"],"rightout":["nationcode"],"where":["custkey<100"],"rightstrategy":"right-materialized"}`
	var j1, j2 service.QueryResponse
	postJSON(t, ts.URL+"/join", join, &j1)
	postJSON(t, ts.URL+"/join", join, &j2)
	if j1.BuildCacheHit {
		t.Error("cold join reported build_cache_hit")
	}
	if !j2.BuildCacheHit || !j2.PlanCacheHit {
		t.Errorf("repeated join hits: build=%v plan=%v, want both", j2.BuildCacheHit, j2.PlanCacheHit)
	}
	if j1.RowCount != j2.RowCount || j1.Checksum != j2.Checksum {
		t.Errorf("cached join result differs: %d/%d vs %d/%d", j1.RowCount, j1.Checksum, j2.RowCount, j2.Checksum)
	}
	if j1.Partitions < 1 || j1.BuildTuples < 1 {
		t.Errorf("join counters missing: partitions=%d build_tuples=%d", j1.Partitions, j1.BuildTuples)
	}

	// /join with the Section 4.3 advisor.
	var ja service.QueryResponse
	postJSON(t, ts.URL+"/join",
		`{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey",`+
			`"leftout":["shipdate"],"rightout":["nationcode"],"where":["custkey<10"],"rightstrategy":"advise"}`, &ja)
	if ja.Strategy == "" {
		t.Error("advised join reported no strategy")
	}

	// /explain, selection and join shapes.
	var ex service.ExplainResponse
	postJSON(t, ts.URL+"/explain",
		`{"projection":"lineitem","output":["shipdate"],"where":["shipdate<400"],"strategy":"lm-pipelined"}`, &ex)
	if !strings.Contains(ex.Tree, "DS1") {
		t.Errorf("selection explain tree missing DS1:\n%s", ex.Tree)
	}
	var jex service.ExplainResponse
	postJSON(t, ts.URL+"/explain", join, &jex)
	if !strings.Contains(jex.Tree, "JOINBUILD") || !strings.Contains(jex.Tree, "JOINPROBE") {
		t.Errorf("join explain tree missing join nodes:\n%s", jex.Tree)
	}

	// /stats: admission and cache counters present and consistent.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.BuildCache.Hits < 1 {
		t.Errorf("stats build-cache hits = %d, want >= 1", st.BuildCache.Hits)
	}
	if st.Admission.Admitted != st.Admission.Completed || st.Admission.Admitted < 7 {
		t.Errorf("admission counters off: %+v", st.Admission)
	}
	if st.Admission.PeakWorkersInUse > 2 {
		t.Errorf("peak workers %d exceeds budget 2", st.Admission.PeakWorkersInUse)
	}

	// Errors surface as JSON with 4xx status.
	bad, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"projection":"nope","output":["x"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown projection: HTTP %d, want 400", bad.StatusCode)
	}
}
