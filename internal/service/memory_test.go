package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"matstore"
	"matstore/internal/faults"
	"matstore/internal/operators"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

// memoryJoinQueries is the join workload the memory-governance suite replays:
// every inner-table strategy, predicated and full-scan outer sides.
func memoryJoinQueries() []struct {
	name string
	q    matstore.JoinQuery
	rs   matstore.RightStrategy
} {
	var out []struct {
		name string
		q    matstore.JoinQuery
		rs   matstore.RightStrategy
	}
	for _, rs := range matstore.JoinStrategies {
		for _, withPred := range []bool{true, false} {
			q := matstore.JoinQuery{
				LeftKey:     tpch.ColCustkey,
				LeftPred:    matstore.MatchAll,
				LeftOutput:  []string{tpch.ColOrderShipdate},
				RightKey:    tpch.ColCustkey,
				RightOutput: []string{tpch.ColNationcode},
			}
			if withPred {
				q.LeftPred = matstore.LessThan(150)
			}
			out = append(out, struct {
				name string
				q    matstore.JoinQuery
				rs   matstore.RightStrategy
			}{fmt.Sprintf("%v/pred=%v", rs, withPred), q, rs})
		}
	}
	return out
}

// assertNoSpillFiles fails if dir still holds spill temp files.
func assertNoSpillFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), operators.SpillFilePrefix) {
			t.Errorf("leaked spill file %s", filepath.Join(dir, e.Name()))
		}
	}
}

// TestDifferentialSpillJoin is the memory-governance acceptance suite at the
// serving layer: the same join workload served under byte budgets that force
// full spilling, partial spilling and pure in-memory execution, at worker
// budgets 1 and 4, must return results byte-identical to ungoverned direct
// execution; reservations fully drain; no spill temp files survive.
func TestDifferentialSpillJoin(t *testing.T) {
	ref := openDB(t)
	queries := memoryJoinQueries()
	want := make([]*matstore.Result, len(queries))
	for i, jq := range queries {
		q := jq.q
		q.Parallelism = 1
		res, _, err := ref.Join(tpch.OrdersProj, tpch.CustomerProj, q, jq.rs)
		if err != nil {
			t.Fatalf("%s: %v", jq.name, err)
		}
		want[i] = res
	}

	// 1 KiB spills every partition; 8 KiB fits some partitions of the ~17 KiB
	// customer build but not all; 1 GiB admits everything in memory.
	for _, budget := range []int64{1 << 10, 8 << 10, 1 << 30} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("budget=%d/workers=%d", budget, workers), func(t *testing.T) {
				spillDir := t.TempDir()
				srv := newServer(t, service.Config{
					WorkerBudget:      workers,
					MemoryBudgetBytes: budget,
					SpillDir:          spillDir,
					ResultCacheBytes:  -1, // observe real executions
				})
				sess := srv.NewSession()
				spilled := 0
				for i, jq := range queries {
					out, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, jq.q, jq.rs)
					if err != nil {
						t.Fatalf("%s: %v", jq.name, err)
					}
					if !reflect.DeepEqual(out.Res.Cols, want[i].Cols) ||
						!reflect.DeepEqual(out.Res.Columns, want[i].Columns) {
						t.Errorf("%s: served result differs from ungoverned reference (%d vs %d rows)",
							jq.name, out.Res.NumRows(), want[i].NumRows())
					}
					if out.Stats.Join.Spilled {
						spilled++
					}
					if out.Info.ReservedBytes <= 0 {
						t.Errorf("%s: no memory reservation reported", jq.name)
					}
					if out.Info.ReservedBytes > budget {
						t.Errorf("%s: reservation %d exceeds budget %d", jq.name, out.Info.ReservedBytes, budget)
					}
				}
				st := srv.Stats()
				if budget == 1<<10 && spilled != len(queries) {
					t.Errorf("tiny budget: %d/%d joins spilled, want all", spilled, len(queries))
				}
				if budget == 1<<30 && spilled != 0 {
					t.Errorf("large budget: %d joins spilled, want none", spilled)
				}
				if spilled > 0 && (st.Memory.SpilledJoins != int64(spilled) || st.Memory.SpillBytes == 0) {
					t.Errorf("spill counters: %+v, want %d spilled joins with bytes", st.Memory, spilled)
				}
				if st.Memory.Reserved != 0 {
					t.Errorf("reservations leaked: %d bytes still held", st.Memory.Reserved)
				}
				if st.Memory.PeakReserved > budget {
					t.Errorf("peak reserved %d exceeded budget %d", st.Memory.PeakReserved, budget)
				}
				assertNoSpillFiles(t, spillDir)
			})
		}
	}
}

// TestJoinFaultCleanupAndRecovery injects disk faults into the spill path of
// a governed join and pins the robustness contract: the request fails with a
// clean error, the byte reservation is released, no temp files or goroutines
// leak — and the server keeps serving correct results once the fault clears.
func TestJoinFaultCleanupAndRecovery(t *testing.T) {
	defer faults.Reset()
	baseGoroutines := runtime.NumGoroutine()
	spillDir := t.TempDir()
	srv := newServer(t, service.Config{
		WorkerBudget:      2,
		MemoryBudgetBytes: 1 << 10, // every join spills
		SpillDir:          spillDir,
		ResultCacheBytes:  -1,
	})
	sess := srv.NewSession()
	q := matstore.JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    matstore.MatchAll,
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
	ref, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, q, matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Stats.Join.Spilled {
		t.Fatal("fixture join did not spill; fault sites would not be reached")
	}

	cases := []struct {
		site string
		fp   faults.Failpoint
	}{
		{"spill.create", faults.Failpoint{Mode: faults.Error}},
		{"spill.write", faults.Failpoint{Mode: faults.Error}},
		{"spill.write", faults.Failpoint{Mode: faults.ShortWrite}},
		{"spill.write", faults.Failpoint{Mode: faults.Error, After: 2}},
		{"spill.read", faults.Failpoint{Mode: faults.Error}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/mode=%d/after=%d", tc.site, tc.fp.Mode, tc.fp.After), func(t *testing.T) {
			faults.Enable(tc.site, tc.fp)
			_, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, q, matstore.RightMaterialized)
			faults.Reset()
			if err == nil {
				t.Fatalf("join succeeded with %s armed", tc.site)
			}
			st := srv.Stats()
			if st.Memory.Reserved != 0 {
				t.Errorf("reservation leaked after %s fault: %d bytes", tc.site, st.Memory.Reserved)
			}
			assertNoSpillFiles(t, spillDir)

			// The fault is cleared: the very next request must serve correctly.
			out, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, q, matstore.RightMaterialized)
			if err != nil {
				t.Fatalf("server did not recover after %s fault: %v", tc.site, err)
			}
			if !reflect.DeepEqual(out.Res.Cols, ref.Res.Cols) {
				t.Errorf("post-recovery result differs after %s fault", tc.site)
			}
		})
	}

	// Cancellation mid-request behaves like a fault: clean error, no leaks.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, q, matstore.RightMaterialized); err == nil {
		t.Error("cancelled join succeeded")
	}
	if st := srv.Stats(); st.Memory.Reserved != 0 {
		t.Errorf("cancelled join leaked %d reserved bytes", st.Memory.Reserved)
	}
	assertNoSpillFiles(t, spillDir)

	// Allocation pressure at the governor: TryReserve fails as if the budget
	// were gone, the join falls back to spill mode and still serves.
	faults.Enable("mem.reserve", faults.Failpoint{Mode: faults.Error})
	out, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, q, matstore.RightMaterialized)
	faults.Reset()
	if err != nil {
		t.Fatalf("join under allocation pressure: %v", err)
	}
	if !out.Stats.Join.Spilled {
		t.Error("allocation pressure did not force spill mode")
	}
	if !reflect.DeepEqual(out.Res.Cols, ref.Res.Cols) {
		t.Error("allocation-pressure result differs")
	}

	// No goroutines survive the faults (morsel workers are joined per run).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseGoroutines+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+2 {
		t.Errorf("goroutines did not settle: %d, started with %d", n, baseGoroutines)
	}
}

// TestHealthEndpoints pins /healthz (liveness: always 200) and /readyz
// (readiness: 503 once draining), including the drain flip MarkDraining
// performs on SIGTERM.
func TestHealthEndpoints(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		decodeInto(t, resp, &body)
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("/healthz = %d %v, want 200 ok", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Errorf("/readyz = %d %v, want 200 ready", code, body)
	}

	srv.MarkDraining()
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || body["ready"] != false || body["draining"] != true {
		t.Errorf("/readyz while draining = %d %v, want 503 draining", code, body)
	}
	// Liveness is unaffected by draining: the process is still up.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200", code)
	}
}

func decodeInto(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeResultCache pins the zero-row satellite: a query shape that
// matches nothing is cached in the negative LRU (separately byte-accounted),
// answered from cache on repeat, and invalidated like any other entry.
func TestNegativeResultCache(t *testing.T) {
	srv := newServer(t, fullConfig(2, 4))
	sess := srv.NewSession()
	q := matstore.Query{
		Output:  []string{tpch.ColShipdate},
		Filters: []matstore.Filter{{Col: tpch.ColShipdate, Pred: matstore.LessThan(0)}},
	}
	first, err := sess.Select(context.Background(), tpch.LineitemProj, q, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if first.Res.NumRows() != 0 {
		t.Fatalf("fixture query returned %d rows, want 0", first.Res.NumRows())
	}
	if first.Info.ResultCacheHit {
		t.Error("first execution reported a cache hit")
	}
	second, err := sess.Select(context.Background(), tpch.LineitemProj, q, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Info.ResultCacheHit {
		t.Error("repeated zero-row query missed the cache")
	}
	st := srv.Stats().ResultCache
	if st.NegativeHits != 1 || st.NegativeEntries != 1 || st.NegativeBytes <= 0 {
		t.Errorf("negative cache stats = hits %d entries %d bytes %d, want 1/1/>0",
			st.NegativeHits, st.NegativeEntries, st.NegativeBytes)
	}
	if st.Entries != 0 {
		t.Errorf("zero-row result filed in the main LRU (%d entries)", st.Entries)
	}

	// Invalidation drops negative entries too: the shape re-executes.
	srv.InvalidateProjection(tpch.LineitemProj)
	third, err := sess.Select(context.Background(), tpch.LineitemProj, q, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if third.Info.ResultCacheHit {
		t.Error("invalidated negative entry still served from cache")
	}
}
