package service

import (
	"os"
	"runtime"
	"time"

	"matstore/internal/obs"
)

// Prometheus-text metrics for the serving stack, over the hand-rolled
// internal/obs registry. Two instrumentation styles, chosen per signal:
//
//   - Live instruments (counters/histograms observed inline) for
//     distributions no snapshot can reconstruct: request latency by
//     endpoint × outcome, admission queue time, grant widths, shard
//     fan-out latency.
//   - Scrape-time collectors derived from the existing Stats() snapshots
//     for everything the subsystems already count (cache hits/misses/
//     evictions, memory reservations and sheds, spill bytes, shard
//     request totals) — no double accounting, no second code path to
//     keep consistent.
//
// All serving series share the cs_ prefix (column store).

// serverMetrics is one engine server's metric set.
type serverMetrics struct {
	reg *obs.Registry

	// requests/latency are observed by the HTTP instrument wrapper.
	requests *obs.CounterVec   // cs_requests_total{endpoint,outcome}
	latency  *obs.HistogramVec // cs_request_seconds{endpoint,outcome}

	// Session-path instruments (unlabeled: observed on the hot path).
	queueWait *obs.Histogram // cs_admission_queue_seconds
	grants    *obs.Histogram // cs_grant_workers
	traced    *obs.Counter   // cs_traced_requests_total
	slow      *obs.Counter   // cs_slow_queries_total
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.NewCounterVec("cs_requests_total",
			"HTTP requests served, by endpoint and outcome (ok/client_error/server_error/shed/cancelled).",
			"endpoint", "outcome"),
		latency: reg.NewHistogramVec("cs_request_seconds",
			"HTTP request latency in seconds, by endpoint and outcome.",
			obs.LatencyBuckets(), "endpoint", "outcome"),
		queueWait: reg.NewHistogram("cs_admission_queue_seconds",
			"Time requests spent blocked at the admission gate (slot wait plus worker wait).",
			obs.LatencyBuckets()),
		grants: reg.NewHistogram("cs_grant_workers",
			"Granted morsel parallelism per admitted request.",
			obs.ExpBuckets(1, 2, 8)),
		traced: reg.NewCounter("cs_traced_requests_total",
			"Requests that carried \"trace\": true and returned a span tree."),
		slow: reg.NewCounter("cs_slow_queries_total",
			"Requests whose wall time crossed the slow-query threshold."),
	}
	registerProcessMetrics(reg, s.start)

	// Everything below derives from the Stats() snapshot at scrape time.
	reg.NewGaugeFunc("cs_queries", "Total queries accepted by the service layer.",
		func() float64 { return float64(s.queries.Load()) })
	reg.NewGaugeFunc("cs_sessions", "Total sessions opened.",
		func() float64 { return float64(s.sessions.Load()) })
	reg.NewCollector("cs_cache_events_total",
		"Cache activity by cache (result/plan/build) and event (hit/miss/eviction/invalidation).",
		"counter", []string{"cache", "event"},
		func(emit func(values []string, v float64)) {
			st := s.Stats()
			emit([]string{"result", "hit"}, float64(st.ResultCache.Hits))
			emit([]string{"result", "miss"}, float64(st.ResultCache.Misses))
			emit([]string{"result", "eviction"}, float64(st.ResultCache.Evictions))
			emit([]string{"result", "invalidation"}, float64(st.ResultCache.Invalidations))
			emit([]string{"plan", "hit"}, float64(st.PlanCache.Hits))
			emit([]string{"plan", "miss"}, float64(st.PlanCache.Misses))
			emit([]string{"plan", "eviction"}, float64(st.PlanCache.Evictions))
			emit([]string{"build", "hit"}, float64(st.BuildCache.Hits))
			emit([]string{"build", "miss"}, float64(st.BuildCache.Misses))
			emit([]string{"build", "eviction"}, float64(st.BuildCache.Evictions))
			emit([]string{"build", "invalidation"}, float64(st.BuildCache.Invalidations))
		})
	reg.NewCollector("cs_admission",
		"Admission-gate counters by stage.", "counter", []string{"event"},
		func(emit func(values []string, v float64)) {
			a := s.gov.snapshot()
			emit([]string{"admitted"}, float64(a.Admitted))
			emit([]string{"completed"}, float64(a.Completed))
			emit([]string{"aborted"}, float64(a.Aborted))
			emit([]string{"queued_admission"}, float64(a.QueuedAdmission))
			emit([]string{"queued_workers"}, float64(a.QueuedWorkers))
		})
	reg.NewGaugeFunc("cs_workers_in_use", "Morsel workers currently granted.",
		func() float64 { return float64(s.gov.snapshot().WorkersInUse) })
	if s.mem != nil {
		reg.NewGaugeFunc("cs_memory_budget_bytes", "Configured memory-governor byte budget.",
			func() float64 { return float64(s.mem.Budget()) })
		reg.NewGaugeFunc("cs_memory_reserved_bytes", "Bytes currently reserved against the memory budget.",
			func() float64 { return float64(s.mem.Stats().Reserved) })
		reg.NewGaugeFunc("cs_memory_sheds_total", "Requests shed by the memory governor.",
			func() float64 { return float64(s.mem.Stats().Shed) })
		reg.NewGaugeFunc("cs_memory_wait_seconds_total", "Cumulative time requests spent queued for memory.",
			func() float64 { return float64(s.mem.Stats().WaitNanos) / 1e9 })
		reg.NewGaugeFunc("cs_spilled_joins_total", "Joins forced into Grace spill mode.",
			func() float64 { return float64(s.spilledJoins.Load()) })
		reg.NewGaugeFunc("cs_spill_bytes_total", "Bytes written to spill files by governed joins.",
			func() float64 { return float64(s.spillBytes.Load()) })
	}
	return m
}

// coordMetrics is the coordinator's metric set.
type coordMetrics struct {
	reg *obs.Registry

	requests *obs.CounterVec   // cs_requests_total{endpoint,outcome}
	latency  *obs.HistogramVec // cs_request_seconds{endpoint,outcome}
	// shardLatency is pre-resolved per shard index (With on the hot path
	// would build a key string per shard call).
	shardLatency []*obs.Histogram // cs_shard_request_seconds{shard}
	traced       *obs.Counter
	slow         *obs.Counter
}

func newCoordMetrics(c *Coordinator, start time.Time) *coordMetrics {
	reg := obs.NewRegistry()
	m := &coordMetrics{
		reg: reg,
		requests: reg.NewCounterVec("cs_requests_total",
			"HTTP requests served, by endpoint and outcome.", "endpoint", "outcome"),
		latency: reg.NewHistogramVec("cs_request_seconds",
			"HTTP request latency in seconds, by endpoint and outcome.",
			obs.LatencyBuckets(), "endpoint", "outcome"),
		traced: reg.NewCounter("cs_traced_requests_total",
			"Requests that carried \"trace\": true and returned a span tree."),
		slow: reg.NewCounter("cs_slow_queries_total",
			"Requests whose wall time crossed the slow-query threshold."),
	}
	shardLat := reg.NewHistogramVec("cs_shard_request_seconds",
		"Per-shard fan-out request latency in seconds.", obs.LatencyBuckets(), "shard")
	for k := range c.shards {
		m.shardLatency = append(m.shardLatency, shardLat.With(shardLabel(k)))
	}
	registerProcessMetrics(reg, start)
	reg.NewGaugeFunc("cs_coordinator_queries", "Queries accepted by the coordinator.",
		func() float64 { return float64(c.queries.Load()) })
	reg.NewCollector("cs_shard_requests",
		"Shard HTTP requests issued by the coordinator, by outcome (total/error).",
		"counter", []string{"outcome"},
		func(emit func(values []string, v float64)) {
			emit([]string{"total"}, float64(c.shardRequests.Load()))
			emit([]string{"error"}, float64(c.shardErrors.Load()))
		})
	reg.NewCollector("cs_coordinator_routing",
		"Coordinator routing decisions by kind.", "counter", []string{"kind"},
		func(emit func(values []string, v float64)) {
			emit([]string{"fanned_out"}, float64(c.fannedOut.Load()))
			emit([]string{"routed_single"}, float64(c.routedSingle.Load()))
			emit([]string{"pruned_shards"}, float64(c.prunedShards.Load()))
			emit([]string{"agg_merges"}, float64(c.aggMerges.Load()))
			emit([]string{"copartitioned_joins"}, float64(c.copartJoins.Load()))
			emit([]string{"finalized_aggs"}, float64(c.finalizedAggs.Load()))
			emit([]string{"rowid_merges"}, float64(c.rowidMerges.Load()))
		})
	return m
}

// shardLabel renders a shard index as its label value without fmt.
func shardLabel(k int) string {
	if k < 10 {
		return string(rune('0' + k))
	}
	return shardLabel(k/10) + string(rune('0'+k%10))
}

// registerProcessMetrics adds the build/uptime series every serving process
// exposes.
func registerProcessMetrics(reg *obs.Registry, start time.Time) {
	reg.NewGaugeFunc("cs_uptime_seconds", "Seconds since the process started serving.",
		func() float64 { return time.Since(start).Seconds() })
	reg.NewCollector("cs_build_info",
		"Build metadata: constant 1 labeled with version and Go runtime.",
		"gauge", []string{"version", "go"},
		func(emit func(values []string, v float64)) {
			emit([]string{obs.Version, runtime.Version()}, 1)
		})
	pid := float64(os.Getpid())
	reg.NewGaugeFunc("cs_process_pid", "Serving process id.", func() float64 { return pid })
}

// outcomeOf buckets an HTTP status for the request metrics' outcome label.
func outcomeOf(status int) string {
	switch {
	case status == 499:
		return "cancelled"
	case status == 503:
		return "shed"
	case status >= 500:
		return "server_error"
	case status >= 400:
		return "client_error"
	default:
		return "ok"
	}
}
