package service

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"matstore"
	"matstore/internal/plan"
)

// The plan cache skips BuildPlan/BuildJoinPlan for repeated query shapes: a
// plan is self-contained (columns resolved, chunk size and ablation switches
// captured at build time) and plan.Plan.Run is safe for concurrent callers
// (per-run partials, atomic node counters, a build mutex on the hash side),
// so one cached plan serves any number of concurrent sessions at any
// parallelism. Keys canonicalize the query shape; the executor's options are
// fixed per server, so they stay out of the key. Parallelism is a Run-time
// argument, not a plan property, so queries differing only in worker count
// share an entry.

// PlanCacheStats are the plan cache's cumulative counters.
type PlanCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

type planEntry struct {
	key string
	pl  *plan.Plan
}

// planCache is a mutex-guarded LRU of built plans, bounded by entry count.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // of *planEntry
	lru     *list.List
	stats   PlanCacheStats
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

func (c *planCache) get(key string) (*plan.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*planEntry).pl, true
}

func (c *planCache) put(key string, pl *plan.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent miss built the same plan; keep the existing entry so
		// in-flight runs and future hits share one.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&planEntry{key: key, pl: pl})
	for c.cap > 0 && c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*planEntry).key)
		c.stats.Evictions++
	}
}

// clear drops every entry (projection invalidation is conservative: plans
// pin resolved column handles).
func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
}

func (c *planCache) snapshot() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	st.Capacity = c.cap
	return st
}

// keyStr appends one user-supplied string length-prefixed, so names
// containing the key's own delimiters can never make two different request
// shapes collide on one entry (a collision would skip validation and serve
// the wrong cached plan).
func keyStr(b *strings.Builder, s string) {
	fmt.Fprintf(b, "%d:%s;", len(s), s)
}

// keyList appends a name list with its arity, length-prefixing each element.
func keyList(b *strings.Builder, items []string) {
	fmt.Fprintf(b, "%d[", len(items))
	for _, s := range items {
		keyStr(b, s)
	}
	b.WriteString("]")
}

// selectKey canonicalizes a selection/aggregation query shape. Filter order
// is semantically significant (it decides pipelined plan shape and fusion
// groups), so it is preserved, not sorted.
func selectKey(proj string, q matstore.Query, s matstore.Strategy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "s|%d|", s)
	keyStr(&b, proj)
	keyList(&b, q.Output)
	keyStr(&b, q.GroupBy)
	keyStr(&b, q.AggCol)
	fmt.Fprintf(&b, "fn=%d|", q.Agg)
	for _, f := range q.Filters {
		keyStr(&b, f.Col)
		fmt.Fprintf(&b, "%d %d %d;", f.Pred.Op, f.Pred.A, f.Pred.B)
	}
	return b.String()
}

// joinKey canonicalizes a join query shape.
func joinKey(left, right string, q matstore.JoinQuery, rs matstore.RightStrategy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "j|%d|", rs)
	keyStr(&b, left)
	keyStr(&b, right)
	keyStr(&b, q.LeftKey)
	fmt.Fprintf(&b, "%d %d %d|", q.LeftPred.Op, q.LeftPred.A, q.LeftPred.B)
	keyList(&b, q.LeftOutput)
	keyStr(&b, q.RightKey)
	keyList(&b, q.RightOutput)
	return b.String()
}
