package service

import (
	"container/list"
	"sync"

	"matstore"
)

// DefaultResultCacheBytes bounds the result cache when Config leaves it 0.
const DefaultResultCacheBytes = 32 << 20

// The result cache sits in front of the plan cache and the admission gate:
// a repeated identical request (same canonical shape, same projection
// generations) is answered from the cached Result without admitting to the
// worker pool at all — zero workers granted, zero morsels run. Because
// results are byte-identical at every parallelism level (the engine's core
// invariant), a cached response is indistinguishable from a fresh execution.
//
// Entries record the generation of every projection they read at the time
// the source run STARTED; InvalidateProjection bumps the generation, which
// both eagerly drops matching entries and lazily fails the generation check
// on lookup, so a bump between lookup and insert can never resurrect stale
// data.

// ResultCacheStats are the result cache's cumulative counters.
type ResultCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	Capacity      int64 `json:"capacity"`
}

// resultEntry is one cached response: the result plus the stats of the run
// that produced it (servable verbatim — wall time and worker count describe
// the original execution).
type resultEntry struct {
	key   string
	projs []string // projections the query read
	gens  []uint64 // generation of each at source-run start
	bytes int64

	res       *matstore.Result
	selStats  *matstore.Stats
	joinStats *matstore.JoinStats
}

// resultCache is a mutex-guarded, byte-accounted LRU of served responses
// with per-projection generation invalidation.
type resultCache struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	entries  map[string]*list.Element // of *resultEntry
	lru      *list.List
	gens     map[string]uint64
	stats    ResultCacheStats
}

func newResultCache(capBytes int64) *resultCache {
	return &resultCache{
		capBytes: capBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		gens:     make(map[string]uint64),
	}
}

// generations snapshots the current generation of each projection. Callers
// capture this BEFORE executing and pass it to put, so a bump during
// execution invalidates the insert rather than caching stale data.
func (c *resultCache) generations(projs []string) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	gens := make([]uint64, len(projs))
	for i, p := range projs {
		gens[i] = c.gens[p]
	}
	return gens
}

// get returns the cached entry for key if present and current.
func (c *resultCache) get(key string) (*resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	e := el.Value.(*resultEntry)
	for i, p := range e.projs {
		if c.gens[p] != e.gens[i] {
			// Stale under a generation bump that raced the eager sweep.
			c.removeLocked(el)
			c.stats.Invalidations++
			c.stats.Misses++
			return nil, false
		}
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return e, true
}

// put inserts a response produced by a run that started at the given
// generations. Oversized entries and entries whose generations have moved on
// are dropped; an existing entry for the key is replaced.
func (c *resultCache) put(e *resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.bytes > c.capBytes {
		return
	}
	for i, p := range e.projs {
		if c.gens[p] != e.gens[i] {
			return // invalidated while the source run executed
		}
	}
	if el, ok := c.entries[e.key]; ok {
		c.removeLocked(el)
	}
	c.entries[e.key] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.capBytes {
		back := c.lru.Back()
		c.removeLocked(back)
		c.stats.Evictions++
	}
}

// invalidate bumps proj's generation and eagerly drops every entry that read
// it (the generation check in get makes the sweep a byte-accounting courtesy,
// not a correctness requirement).
func (c *resultCache) invalidate(proj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[proj]++
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*resultEntry)
		for _, p := range e.projs {
			if p == proj {
				c.removeLocked(el)
				c.stats.Invalidations++
				break
			}
		}
		el = next
	}
}

func (c *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*resultEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

func (c *resultCache) snapshot() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	st.Bytes = c.bytes
	st.Capacity = c.capBytes
	return st
}

// resultBytes estimates a response's retained size: 8 bytes per cell plus a
// fixed per-entry overhead for headers, names and stats.
func resultBytes(key string, r *matstore.Result) int64 {
	cells := int64(0)
	for _, col := range r.Cols {
		cells += int64(len(col))
	}
	return 8*cells + int64(len(key)) + 256
}
