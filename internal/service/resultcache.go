package service

import (
	"container/list"
	"sync"

	"matstore"
)

// DefaultResultCacheBytes bounds the result cache when Config leaves it 0.
const DefaultResultCacheBytes = 32 << 20

// The result cache sits in front of the plan cache and the admission gate:
// a repeated identical request (same canonical shape, same projection
// generations) is answered from the cached Result without admitting to the
// worker pool at all — zero workers granted, zero morsels run. Because
// results are byte-identical at every parallelism level (the engine's core
// invariant), a cached response is indistinguishable from a fresh execution.
//
// Entries record the generation of every projection they read at the time
// the source run STARTED; InvalidateProjection bumps the generation, which
// both eagerly drops matching entries and lazily fails the generation check
// on lookup, so a bump between lookup and insert can never resurrect stale
// data.

// ResultCacheStats are the result cache's cumulative counters.
type ResultCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	Capacity      int64 `json:"capacity"`
	// CostSkips counts responses refused admission because their modeled
	// cost fell below the configured threshold: re-executing a cheap query
	// costs less than the cache space (and the evictions) its result would
	// consume, so only expensive results are worth remembering.
	CostSkips int64 `json:"cost_skips"`
	// Negative-cache counters: zero-row responses kept in their own small
	// byte-accounted LRU so heavy result traffic can't evict them (and their
	// tiny entries can't be used to churn the main cache).
	NegativeHits    int64 `json:"negative_hits"`
	NegativeEntries int   `json:"negative_entries"`
	NegativeBytes   int64 `json:"negative_bytes"`
}

// resultEntry is one cached response: the result plus the stats of the run
// that produced it (servable verbatim — wall time and worker count describe
// the original execution).
type resultEntry struct {
	key   string
	projs []string // projections the query read
	gens  []uint64 // generation of each at source-run start
	bytes int64
	// costUS is the analytical model's total cost estimate for the source
	// run (0 when unavailable) — the admission signal for the cost
	// threshold.
	costUS float64

	res       *matstore.Result
	selStats  *matstore.Stats
	joinStats *matstore.JoinStats
}

// resultCache is a mutex-guarded, byte-accounted LRU of served responses
// with per-projection generation invalidation. Zero-row responses live in a
// separate negative LRU under its own (much smaller) byte budget: a query
// shape that matches nothing is the cheapest possible answer to remember, and
// isolating those entries means bulk result traffic can never evict them.
type resultCache struct {
	mu       sync.Mutex
	capBytes int64
	// minCostUS is the admission threshold: responses whose modeled cost is
	// below it are not cached (0 admits everything). Entries with no cost
	// estimate are always admitted — an unknown cost is no evidence the
	// query is cheap.
	minCostUS float64
	bytes     int64
	entries   map[string]*list.Element // of *resultEntry
	lru       *list.List
	gens      map[string]uint64
	stats     ResultCacheStats

	negCap     int64
	negBytes   int64
	negEntries map[string]*list.Element // of *resultEntry, zero-row only
	negLRU     *list.List
}

func newResultCache(capBytes int64) *resultCache {
	negCap := capBytes / 8
	if negCap < 4096 {
		negCap = 4096
	}
	return &resultCache{
		capBytes:   capBytes,
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		gens:       make(map[string]uint64),
		negCap:     negCap,
		negEntries: make(map[string]*list.Element),
		negLRU:     list.New(),
	}
}

// generations snapshots the current generation of each projection. Callers
// capture this BEFORE executing and pass it to put, so a bump during
// execution invalidates the insert rather than caching stale data.
func (c *resultCache) generations(projs []string) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	gens := make([]uint64, len(projs))
	for i, p := range projs {
		gens[i] = c.gens[p]
	}
	return gens
}

// get returns the cached entry for key if present and current, consulting
// the main LRU then the negative (zero-row) LRU.
func (c *resultCache) get(key string) (*resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*resultEntry)
		if !c.currentLocked(e) {
			// Stale under a generation bump that raced the eager sweep.
			c.removeLocked(el)
			c.stats.Invalidations++
			c.stats.Misses++
			return nil, false
		}
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return e, true
	}
	if el, ok := c.negEntries[key]; ok {
		e := el.Value.(*resultEntry)
		if !c.currentLocked(e) {
			c.removeNegLocked(el)
			c.stats.Invalidations++
			c.stats.Misses++
			return nil, false
		}
		c.negLRU.MoveToFront(el)
		c.stats.Hits++
		c.stats.NegativeHits++
		return e, true
	}
	c.stats.Misses++
	return nil, false
}

// currentLocked reports whether every projection the entry read is still at
// the generation recorded when its source run started.
func (c *resultCache) currentLocked(e *resultEntry) bool {
	for i, p := range e.projs {
		if c.gens[p] != e.gens[i] {
			return false
		}
	}
	return true
}

// put inserts a response produced by a run that started at the given
// generations. Oversized entries and entries whose generations have moved on
// are dropped; an existing entry for the key is replaced.
func (c *resultCache) put(e *resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.currentLocked(e) {
		return // invalidated while the source run executed
	}
	if c.minCostUS > 0 && e.costUS > 0 && e.costUS < c.minCostUS {
		c.stats.CostSkips++
		return
	}
	if e.res != nil && e.res.NumRows() == 0 {
		c.putNegativeLocked(e)
		return
	}
	if e.bytes > c.capBytes {
		return
	}
	if el, ok := c.entries[e.key]; ok {
		c.removeLocked(el)
	}
	c.entries[e.key] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.capBytes {
		back := c.lru.Back()
		c.removeLocked(back)
		c.stats.Evictions++
	}
}

// putNegativeLocked files a zero-row response in the negative LRU.
func (c *resultCache) putNegativeLocked(e *resultEntry) {
	if e.bytes > c.negCap {
		return
	}
	if el, ok := c.negEntries[e.key]; ok {
		c.removeNegLocked(el)
	}
	c.negEntries[e.key] = c.negLRU.PushFront(e)
	c.negBytes += e.bytes
	for c.negBytes > c.negCap {
		c.removeNegLocked(c.negLRU.Back())
		c.stats.Evictions++
	}
}

// invalidate bumps proj's generation and eagerly drops every entry that read
// it (the generation check in get makes the sweep a byte-accounting courtesy,
// not a correctness requirement).
func (c *resultCache) invalidate(proj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[proj]++
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if readsProj(el.Value.(*resultEntry), proj) {
			c.removeLocked(el)
			c.stats.Invalidations++
		}
		el = next
	}
	for el := c.negLRU.Front(); el != nil; {
		next := el.Next()
		if readsProj(el.Value.(*resultEntry), proj) {
			c.removeNegLocked(el)
			c.stats.Invalidations++
		}
		el = next
	}
}

func readsProj(e *resultEntry, proj string) bool {
	for _, p := range e.projs {
		if p == proj {
			return true
		}
	}
	return false
}

func (c *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*resultEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

func (c *resultCache) removeNegLocked(el *list.Element) {
	e := el.Value.(*resultEntry)
	c.negLRU.Remove(el)
	delete(c.negEntries, e.key)
	c.negBytes -= e.bytes
}

func (c *resultCache) snapshot() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	st.Bytes = c.bytes
	st.Capacity = c.capBytes
	st.NegativeEntries = c.negLRU.Len()
	st.NegativeBytes = c.negBytes
	return st
}

// resultBytes estimates a response's retained size: 8 bytes per cell plus a
// fixed per-entry overhead for headers, names and stats.
func resultBytes(key string, r *matstore.Result) int64 {
	cells := int64(0)
	for _, col := range r.Cols {
		cells += int64(len(col))
	}
	return 8*cells + int64(len(key)) + 256
}
